// Package climate generates synthetic climate-model output standing in
// for the PCMDI simulation archives the paper analyses (§1: a
// high-resolution ocean model producing "a dozen multi-gigabyte files in
// a few hours"; §3: datasets of thousands of netCDF files).
//
// Fields are deterministic smooth functions of (time, lat, lon) with
// seasonal cycles, latitudinal gradients, storm-track noise and
// per-variable character, so visualizations and statistics look like
// climate data and regenerating a file always yields identical bytes.
// Real cdf files stay small (coarse grids); the catalog records the
// *logical* sizes of the multi-gigabyte originals so transfer experiments
// move realistic volumes through the virtual payload path.
package climate

import (
	"fmt"
	"math"
	"time"

	"esgrid/internal/cdf"
)

// Variable names produced by the generator, mirroring CMIP-style ids.
const (
	VarTemperature   = "tas" // near-surface air temperature, K
	VarPrecipitation = "pr"  // precipitation rate, mm/day
	VarCloudCover    = "clt" // total cloud fraction, %
)

// AllVariables lists the generated variables with descriptions, as the
// VCDAT browser shows them (Figure 2).
func AllVariables() map[string]string {
	return map[string]string{
		VarTemperature:   "near-surface air temperature (K)",
		VarPrecipitation: "precipitation rate (mm/day)",
		VarCloudCover:    "total cloud fraction (%)",
	}
}

// GridSpec describes the output grid.
type GridSpec struct {
	NLat, NLon int
	// StepsPerMonth is the number of time records per monthly file.
	StepsPerMonth int
}

// DefaultGrid is a coarse T21-ish grid keeping real files small.
var DefaultGrid = GridSpec{NLat: 32, NLon: 64, StepsPerMonth: 8}

// Model generates output for one named model run.
type Model struct {
	Name string
	Grid GridSpec
	seed uint64
}

// NewModel returns a generator for the given model name; fields derive
// deterministically from the name.
func NewModel(name string, grid GridSpec) *Model {
	var seed uint64 = 1469598103934665603
	for _, c := range name {
		seed ^= uint64(c)
		seed *= 1099511628211
	}
	return &Model{Name: name, Grid: grid, seed: seed}
}

// hash provides deterministic pseudo-noise in [-1, 1).
func (m *Model) hash(a, b, c int) float64 {
	x := m.seed ^ uint64(a)*2654435761 ^ uint64(b)*40503 ^ uint64(c)*2246822519
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%2000000)/1000000 - 1
}

// Temperature returns tas in Kelvin at fractional year t (e.g. 1998.5),
// latitude deg (-90..90), longitude deg (0..360).
func (m *Model) Temperature(t, lat, lon float64) float64 {
	season := math.Cos(2 * math.Pi * (t - math.Floor(t)))
	// Warmer at the equator; seasonal swing grows with |lat|, opposite
	// phase by hemisphere; land/sea-like zonal structure.
	base := 288 - 35*math.Pow(math.Abs(lat)/90, 1.5)
	seasonal := -12 * season * (lat / 90)
	zonal := 3 * math.Sin(3*lon*math.Pi/180+lat/20)
	noise := 1.5 * m.hash(int(t*1460), int(lat*10), int(lon*10))
	return base + seasonal + zonal + noise
}

// Precipitation returns pr in mm/day.
func (m *Model) Precipitation(t, lat, lon float64) float64 {
	itcz := 8 * math.Exp(-math.Pow((lat-5*math.Sin(2*math.Pi*t))/8, 2))
	storm := 3 * math.Exp(-math.Pow((math.Abs(lat)-45)/12, 2))
	zonal := 1 + 0.5*math.Sin(5*lon*math.Pi/180)
	noise := 0.8 * (1 + m.hash(int(t*1460)+7, int(lat*10), int(lon*10)))
	v := (itcz+storm)*zonal + noise
	if v < 0 {
		return 0
	}
	return v
}

// CloudCover returns clt in percent.
func (m *Model) CloudCover(t, lat, lon float64) float64 {
	pr := m.Precipitation(t, lat, lon)
	v := 30 + 6*pr + 10*m.hash(int(t*1460)+13, int(lat*10), int(lon*10))
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	return v
}

// value dispatches by variable name.
func (m *Model) value(varName string, t, lat, lon float64) (float64, error) {
	switch varName {
	case VarTemperature:
		return m.Temperature(t, lat, lon), nil
	case VarPrecipitation:
		return m.Precipitation(t, lat, lon), nil
	case VarCloudCover:
		return m.CloudCover(t, lat, lon), nil
	}
	return 0, fmt.Errorf("climate: unknown variable %q", varName)
}

// FileName returns the canonical logical file name for a model, variable
// and month, e.g. "pcm.tas.1998-03.nc".
func FileName(model, varName string, year, month int) string {
	return fmt.Sprintf("%s.%s.%04d-%02d.nc", model, varName, year, month)
}

// MonthlyFile materializes the cdf dataset for one variable-month.
func (m *Model) MonthlyFile(varName string, year, month int) (*cdf.File, error) {
	g := m.Grid
	f := cdf.New()
	f.Attrs["model"] = m.Name
	f.Attrs["institution"] = "PCMDI (synthetic reproduction)"
	f.Attrs["variable"] = varName
	f.Attrs["period"] = fmt.Sprintf("%04d-%02d", year, month)
	if err := f.AddDim("time", g.StepsPerMonth); err != nil {
		return nil, err
	}
	if err := f.AddDim("lat", g.NLat); err != nil {
		return nil, err
	}
	if err := f.AddDim("lon", g.NLon); err != nil {
		return nil, err
	}
	lats := make([]float64, g.NLat)
	for i := range lats {
		lats[i] = -90 + 180*(float64(i)+0.5)/float64(g.NLat)
	}
	lons := make([]float64, g.NLon)
	for i := range lons {
		lons[i] = 360 * float64(i) / float64(g.NLon)
	}
	times := make([]float64, g.StepsPerMonth)
	t0 := float64(year) + (float64(month)-1)/12
	for i := range times {
		times[i] = t0 + float64(i)/(12*float64(g.StepsPerMonth))
	}
	if err := f.AddVar("lat", cdf.Float64, []string{"lat"}, map[string]string{"units": "degrees_north"}, lats); err != nil {
		return nil, err
	}
	if err := f.AddVar("lon", cdf.Float64, []string{"lon"}, map[string]string{"units": "degrees_east"}, lons); err != nil {
		return nil, err
	}
	if err := f.AddVar("time", cdf.Float64, []string{"time"}, map[string]string{"units": "fractional_year"}, times); err != nil {
		return nil, err
	}
	data := make([]float64, g.StepsPerMonth*g.NLat*g.NLon)
	i := 0
	for _, t := range times {
		for _, la := range lats {
			for _, lo := range lons {
				v, err := m.value(varName, t, la, lo)
				if err != nil {
					return nil, err
				}
				data[i] = v
				i++
			}
		}
	}
	units := map[string]string{VarTemperature: "K", VarPrecipitation: "mm/day", VarCloudCover: "%"}
	if err := f.AddVar(varName, cdf.Float32, []string{"time", "lat", "lon"},
		map[string]string{"units": units[varName], "long_name": AllVariables()[varName]}, data); err != nil {
		return nil, err
	}
	return f, nil
}

// LogicalSizeBytes is the size the catalog advertises for a monthly file:
// the size the paper's high-resolution original would have, not the size
// of our coarse-grid stand-in. A dozen multi-gigabyte files in a few
// hours (§1) works out to roughly 2 GB per variable-month at the eddy-
// resolving resolution.
func LogicalSizeBytes(varName string) int64 {
	switch varName {
	case VarTemperature:
		return 2146435072 // just under 2^31: the pre-64-bit GridFTP limit
	case VarPrecipitation:
		return 1879048192
	case VarCloudCover:
		return 1610612736
	}
	return 1 << 30
}

// MonthsBetween enumerates (year, month) pairs over [from, to] inclusive.
func MonthsBetween(from, to time.Time) [][2]int {
	var out [][2]int
	y, mo := from.Year(), int(from.Month())
	for {
		out = append(out, [2]int{y, mo})
		if y == to.Year() && mo == int(to.Month()) {
			return out
		}
		mo++
		if mo > 12 {
			mo, y = 1, y+1
		}
	}
}
