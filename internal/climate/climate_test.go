package climate

import (
	"bytes"
	"testing"
	"time"

	"esgrid/internal/cdf"
)

func TestTemperaturePhysicallyPlausible(t *testing.T) {
	m := NewModel("pcm", DefaultGrid)
	for _, tc := range []struct {
		lat      float64
		min, max float64
	}{
		{0, 270, 310},   // tropics
		{80, 210, 285},  // arctic
		{-80, 210, 285}, // antarctic
	} {
		for _, tm := range []float64{1998.0, 1998.25, 1998.5, 1998.75} {
			v := m.Temperature(tm, tc.lat, 120)
			if v < tc.min || v > tc.max {
				t.Errorf("tas(lat=%v, t=%v) = %.1f K, want in [%v, %v]", tc.lat, tm, v, tc.min, tc.max)
			}
		}
	}
	// Tropics warmer than poles, always.
	if m.Temperature(1998.5, 0, 0) <= m.Temperature(1998.5, 85, 0) {
		t.Error("equator not warmer than pole")
	}
}

func TestSeasonalCycleOppositeHemispheres(t *testing.T) {
	m := NewModel("pcm", DefaultGrid)
	// January vs July at 60N and 60S, averaged over longitude to suppress
	// the zonal structure and noise.
	mean := func(tm, lat float64) float64 {
		var s float64
		for lon := 0.0; lon < 360; lon += 5 {
			s += m.Temperature(tm, lat, lon)
		}
		return s / 72
	}
	nJan, nJul := mean(1998.0, 60), mean(1998.5, 60)
	sJan, sJul := mean(1998.0, -60), mean(1998.5, -60)
	if nJul <= nJan {
		t.Errorf("northern summer (%.1f) not warmer than winter (%.1f)", nJul, nJan)
	}
	if sJan <= sJul {
		t.Errorf("southern summer (%.1f) not warmer than winter (%.1f)", sJan, sJul)
	}
}

func TestPrecipitationNonNegativeWithITCZ(t *testing.T) {
	m := NewModel("pcm", DefaultGrid)
	var eq, subtrop float64
	for lon := 0.0; lon < 360; lon += 5 {
		eq += m.Precipitation(1998.2, 5, lon)
		subtrop += m.Precipitation(1998.2, 25, lon)
		if v := m.Precipitation(1998.2, 25, lon); v < 0 {
			t.Fatalf("negative precipitation %v", v)
		}
	}
	if eq <= subtrop {
		t.Errorf("ITCZ precip (%.1f) not above subtropical dry zone (%.1f)", eq, subtrop)
	}
}

func TestCloudCoverBounds(t *testing.T) {
	m := NewModel("pcm", DefaultGrid)
	for lat := -90.0; lat <= 90; lat += 15 {
		for lon := 0.0; lon < 360; lon += 30 {
			v := m.CloudCover(1998.9, lat, lon)
			if v < 0 || v > 100 {
				t.Fatalf("clt(lat=%v, lon=%v) = %v, want 0..100", lat, lon, v)
			}
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := NewModel("pcm", DefaultGrid)
	b := NewModel("pcm", DefaultGrid)
	fa, err := a.MonthlyFile(VarTemperature, 1998, 3)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := b.MonthlyFile(VarTemperature, 1998, 3)
	var ba, bb bytes.Buffer
	fa.Encode(&ba)
	fb.Encode(&bb)
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("same model+month produced different bytes")
	}
	// Different model differs.
	c := NewModel("ccm3", DefaultGrid)
	fc, _ := c.MonthlyFile(VarTemperature, 1998, 3)
	var bc bytes.Buffer
	fc.Encode(&bc)
	if bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Fatal("different models produced identical bytes")
	}
}

func TestMonthlyFileStructure(t *testing.T) {
	m := NewModel("pcm", GridSpec{NLat: 8, NLon: 16, StepsPerMonth: 4})
	f, err := m.MonthlyFile(VarPrecipitation, 1999, 12)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := f.Shape(VarPrecipitation)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 4 || shape[1] != 8 || shape[2] != 16 {
		t.Fatalf("shape = %v", shape)
	}
	vi, _ := f.VarInfo(VarPrecipitation)
	if vi.Attrs["units"] != "mm/day" || vi.Type != cdf.Float32 {
		t.Fatalf("varinfo = %+v", vi)
	}
	if f.Attrs["period"] != "1999-12" {
		t.Fatalf("period attr = %q", f.Attrs["period"])
	}
	// Coordinate variables present.
	for _, v := range []string{"lat", "lon", "time"} {
		if _, err := f.VarInfo(v); err != nil {
			t.Errorf("missing coordinate var %s: %v", v, err)
		}
	}
}

func TestUnknownVariable(t *testing.T) {
	m := NewModel("pcm", DefaultGrid)
	if _, err := m.MonthlyFile("vorticity", 1998, 1); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestFileNameAndLogicalSize(t *testing.T) {
	if got := FileName("pcm", "tas", 1998, 3); got != "pcm.tas.1998-03.nc" {
		t.Fatalf("FileName = %q", got)
	}
	if s := LogicalSizeBytes(VarTemperature); s <= 1<<30 || s >= 1<<31 {
		t.Fatalf("tas logical size = %d, want just under 2GB", s)
	}
}

func TestMonthsBetween(t *testing.T) {
	from := time.Date(1998, 11, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(1999, 2, 1, 0, 0, 0, 0, time.UTC)
	got := MonthsBetween(from, to)
	want := [][2]int{{1998, 11}, {1998, 12}, {1999, 1}, {1999, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
