// Package chaos is a declarative, virtual-clock-driven fault-schedule
// subsystem: the failure scenarios that §8's SC'00 demo and the
// long-running replication runs survived — server crashes, network
// outages and degradations, tape-system stalls — expressed as data
// (Schedule) instead of ad-hoc code inside test bodies, executed by a
// Runner against injector interfaces that simnet, gridftp's hosts and
// the HRM expose, and audited afterwards by the Invariants checker.
//
// The package deliberately imports none of the simulated components;
// the small injector interfaces below are satisfied by *simnet.Link,
// *simnet.Host, *simnet.Net and *hrm.HRM, which keeps the fault model
// reusable against any future backend that exposes the same knobs.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// Provenance site tag(s) for the delays this package schedules on
// the virtual clock (flight-recorder attribution).
var siteFault = vtime.RegisterSite("chaos.fault")

// Kind names a fault type.
type Kind string

// The fault vocabulary. Every kind maps onto a concrete failure the
// paper's deployment saw: routers dropping links, congestion crushing
// throughput, packet-loss storms, servers power-cycling, the mass
// storage system wedging on a tape mount, and control channels reset
// mid-session.
const (
	// KindLinkDown takes a link fully down for Duration; in-flight
	// connections crossing it are reset.
	KindLinkDown Kind = "link.down"
	// KindLinkDegrade multiplies a link's capacity by Factor for
	// Duration (congestion; no connection resets).
	KindLinkDegrade Kind = "link.degrade"
	// KindLinkFlap cycles a link down/up Count times across Duration.
	KindLinkFlap Kind = "link.flap"
	// KindLossBurst sets a link's packet-loss rate to Factor for
	// Duration, then restores the previous rate.
	KindLossBurst Kind = "loss.burst"
	// KindHostCrash crashes a host for Duration: all its connections
	// reset, new dials fail, then it reboots with disk state preserved.
	KindHostCrash Kind = "host.crash"
	// KindHRMStall adds Delay of tape-machinery stall to every staging
	// on a target HRM for Duration (a stuck mount robot).
	KindHRMStall Kind = "hrm.stall"
	// KindHRMError makes a target HRM fail every staging for Duration.
	KindHRMError Kind = "hrm.error"
	// KindDNSOutage takes the directory/DNS service down for Duration.
	KindDNSOutage Kind = "dns.outage"
	// KindCtrlReset resets a host's connections once at Start (a
	// control-channel RST without the crash).
	KindCtrlReset Kind = "ctrl.reset"
)

// Fault is one scheduled failure.
type Fault struct {
	Kind   Kind
	Target string        // link name "a-b", host name, or stager name; "" for dns.outage
	Start  time.Duration // offset from Runner.Apply
	// Duration is how long the fault holds before the runner heals it.
	// Ignored by ctrl.reset (instantaneous).
	Duration time.Duration
	// Factor is the capacity multiplier (link.degrade) or loss rate
	// (loss.burst).
	Factor float64
	// Count is the number of down/up cycles for link.flap.
	Count int
	// Delay is the injected stall per staging for hrm.stall.
	Delay time.Duration
}

func (f Fault) String() string {
	return fmt.Sprintf("%s(%s)@%v+%v", f.Kind, f.Target, f.Start, f.Duration)
}

// Schedule is a fault scenario: the declarative replacement for
// hand-rolled SetUp/SetCapacityFactor calls sprinkled through tests.
type Schedule []Fault

// LinkInjector is the link-level fault surface (*simnet.Link).
type LinkInjector interface {
	SetUp(up, reset bool)
	SetCapacityFactor(f float64)
	SetLossRate(p float64)
	LossRate() float64
}

// HostInjector is the host-level fault surface (*simnet.Host).
type HostInjector interface {
	SetDown(down bool)
	ResetConns(reason string) int
}

// DNSInjector is the name-service fault surface (*simnet.Net).
type DNSInjector interface {
	SetDNS(up bool)
}

// Stager is the mass-storage fault surface (*hrm.HRM).
type Stager interface {
	SetStageDelay(d time.Duration)
	SetStageError(err error)
}

// ErrStagingFault is what an hrm.error fault makes staging return.
var ErrStagingFault = errors.New("chaos: mass storage system unavailable")

// Targets registers the named injection points a Runner may act on.
type Targets struct {
	links   map[string]LinkInjector
	hosts   map[string]HostInjector
	stagers map[string]Stager
	dns     DNSInjector
}

// NewTargets returns an empty registry.
func NewTargets() *Targets {
	return &Targets{
		links:   map[string]LinkInjector{},
		hosts:   map[string]HostInjector{},
		stagers: map[string]Stager{},
	}
}

// AddLink registers a link injector under name (conventionally "a-b").
func (t *Targets) AddLink(name string, l LinkInjector) *Targets { t.links[name] = l; return t }

// AddHost registers a host injector.
func (t *Targets) AddHost(name string, h HostInjector) *Targets { t.hosts[name] = h; return t }

// AddStager registers a mass-storage injector.
func (t *Targets) AddStager(name string, s Stager) *Targets { t.stagers[name] = s; return t }

// SetDNS registers the name-service injector.
func (t *Targets) SetDNS(d DNSInjector) *Targets { t.dns = d; return t }

// LinkNames returns registered link names, sorted.
func (t *Targets) LinkNames() []string { return sortedKeys(t.links) }

// HostNames returns registered host names, sorted.
func (t *Targets) HostNames() []string { return sortedKeys(t.hosts) }

// StagerNames returns registered stager names, sorted.
func (t *Targets) StagerNames() []string { return sortedKeys(t.stagers) }

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Runner executes Schedules on the virtual clock, emitting chaos.*
// NetLogger events for every injection and heal so the Invariants
// checker (and a human reading the ULM stream) can line faults up
// against transfer activity.
type Runner struct {
	clk     vtime.Clock
	log     *netlogger.Log
	targets *Targets

	mu          sync.Mutex
	activations int
}

// NewRunner returns a Runner driving targets on clk. log may be nil.
func NewRunner(clk vtime.Clock, log *netlogger.Log, targets *Targets) *Runner {
	return &Runner{clk: clk, log: log, targets: targets}
}

// Activations reports how many fault injections have fired so far (a
// flap counts each down transition).
func (r *Runner) Activations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activations
}

func (r *Runner) emit(name string, f Fault, kv ...string) {
	if r.log == nil {
		return
	}
	all := append([]string{"kind", string(f.Kind), "target", f.Target}, kv...)
	r.log.Emit("chaos", name, all...)
}

func (r *Runner) activated() {
	r.mu.Lock()
	r.activations++
	r.mu.Unlock()
}

// Validate checks that every fault is well-formed and its target is
// registered.
func (r *Runner) Validate(s Schedule) error {
	for i, f := range s {
		if f.Start < 0 || f.Duration < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative time", i, f)
		}
		switch f.Kind {
		case KindLinkDown, KindLinkDegrade, KindLinkFlap, KindLossBurst:
			if _, ok := r.targets.links[f.Target]; !ok {
				return fmt.Errorf("chaos: fault %d (%s): unknown link %q", i, f, f.Target)
			}
			if f.Kind == KindLinkDegrade && (f.Factor < 0 || f.Factor >= 1) {
				return fmt.Errorf("chaos: fault %d (%s): degrade factor %v outside [0,1)", i, f, f.Factor)
			}
			if f.Kind == KindLossBurst && (f.Factor <= 0 || f.Factor > 1) {
				return fmt.Errorf("chaos: fault %d (%s): loss rate %v outside (0,1]", i, f, f.Factor)
			}
			if f.Kind == KindLinkFlap && f.Count < 1 {
				return fmt.Errorf("chaos: fault %d (%s): flap needs Count >= 1", i, f)
			}
		case KindHostCrash, KindCtrlReset:
			if _, ok := r.targets.hosts[f.Target]; !ok {
				return fmt.Errorf("chaos: fault %d (%s): unknown host %q", i, f, f.Target)
			}
		case KindHRMStall, KindHRMError:
			if _, ok := r.targets.stagers[f.Target]; !ok {
				return fmt.Errorf("chaos: fault %d (%s): unknown stager %q", i, f, f.Target)
			}
			if f.Kind == KindHRMStall && f.Delay <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): stall needs Delay > 0", i, f)
			}
		case KindDNSOutage:
			if r.targets.dns == nil {
				return fmt.Errorf("chaos: fault %d (%s): no DNS injector registered", i, f)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// Apply validates s and schedules every fault (and its heal) on the
// clock, relative to now. It returns immediately; the faults fire as
// virtual time advances.
func (r *Runner) Apply(s Schedule) error {
	if err := r.Validate(s); err != nil {
		return err
	}
	for _, f := range s {
		f := f
		switch f.Kind {
		case KindLinkDown:
			link := r.targets.links[f.Target]
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f)
				link.SetUp(false, true)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				link.SetUp(true, false)
			})
		case KindLinkDegrade:
			link := r.targets.links[f.Target]
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f, "factor", fmt.Sprint(f.Factor))
				link.SetCapacityFactor(f.Factor)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				link.SetCapacityFactor(1)
			})
		case KindLinkFlap:
			link := r.targets.links[f.Target]
			// Count down/up cycles spread evenly across Duration: down
			// for the first half of each cycle, up for the second.
			cycle := f.Duration / time.Duration(f.Count)
			for c := 0; c < f.Count; c++ {
				c := c
				down := f.Start + time.Duration(c)*cycle
				r.at(down, func() {
					r.activated()
					r.emit("chaos.fault.start", f, "cycle", fmt.Sprint(c+1))
					link.SetUp(false, true)
				})
				r.at(down+cycle/2, func() {
					r.emit("chaos.fault.end", f, "cycle", fmt.Sprint(c+1))
					link.SetUp(true, false)
				})
			}
		case KindLossBurst:
			link := r.targets.links[f.Target]
			// prior is written by the start callback and read by the end
			// callback; clock callbacks may run on different goroutines,
			// so share it under the runner mutex.
			prior := new(float64)
			r.at(f.Start, func() {
				r.mu.Lock()
				*prior = link.LossRate()
				r.mu.Unlock()
				r.activated()
				r.emit("chaos.fault.start", f, "loss", fmt.Sprint(f.Factor))
				link.SetLossRate(f.Factor)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				r.mu.Lock()
				p := *prior
				r.mu.Unlock()
				link.SetLossRate(p)
			})
		case KindHostCrash:
			host := r.targets.hosts[f.Target]
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f)
				host.SetDown(true)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				host.SetDown(false)
			})
		case KindCtrlReset:
			host := r.targets.hosts[f.Target]
			r.at(f.Start, func() {
				r.activated()
				n := host.ResetConns(string(f.Kind))
				r.emit("chaos.fault.start", f, "conns", fmt.Sprint(n))
				r.emit("chaos.fault.end", f)
			})
		case KindHRMStall:
			st := r.targets.stagers[f.Target]
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f, "delay", f.Delay.String())
				st.SetStageDelay(f.Delay)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				st.SetStageDelay(0)
			})
		case KindHRMError:
			st := r.targets.stagers[f.Target]
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f)
				st.SetStageError(ErrStagingFault)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				st.SetStageError(nil)
			})
		case KindDNSOutage:
			dns := r.targets.dns
			r.at(f.Start, func() {
				r.activated()
				r.emit("chaos.fault.start", f)
				dns.SetDNS(false)
			})
			r.at(f.Start+f.Duration, func() {
				r.emit("chaos.fault.end", f)
				dns.SetDNS(true)
			})
		}
	}
	return nil
}

func (r *Runner) at(d time.Duration, fn func()) {
	vtime.AfterFuncTagged(r.clk, siteFault, d, fn)
}
