package chaos

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// fakeLink records injector calls.
type fakeLink struct {
	up       bool
	resets   int
	factor   float64
	loss     float64
	upDowns  []bool
	factors  []float64
	losses   []float64
	lossRate float64
}

func newFakeLink() *fakeLink { return &fakeLink{up: true, factor: 1, lossRate: 0.001} }

func (l *fakeLink) SetUp(up, reset bool) {
	l.up = up
	if reset {
		l.resets++
	}
	l.upDowns = append(l.upDowns, up)
}
func (l *fakeLink) SetCapacityFactor(f float64) { l.factor = f; l.factors = append(l.factors, f) }
func (l *fakeLink) SetLossRate(p float64)       { l.loss = p; l.losses = append(l.losses, p) }
func (l *fakeLink) LossRate() float64 {
	if len(l.losses) > 0 {
		return l.loss
	}
	return l.lossRate
}

type fakeHost struct {
	down   bool
	resets int
}

func (h *fakeHost) SetDown(down bool) { h.down = down }
func (h *fakeHost) ResetConns(reason string) int {
	h.resets++
	return 3
}

type fakeStager struct {
	delay time.Duration
	err   error
}

func (s *fakeStager) SetStageDelay(d time.Duration) { s.delay = d }
func (s *fakeStager) SetStageError(err error)       { s.err = err }

type fakeDNS struct{ up bool }

func (d *fakeDNS) SetDNS(up bool) { d.up = up }

func harness() (*vtime.Sim, *netlogger.Log, *Targets, *fakeLink, *fakeHost, *fakeStager, *fakeDNS) {
	clk := vtime.NewSim(1)
	log := netlogger.NewLog(clk)
	link, host, st, dns := newFakeLink(), &fakeHost{}, &fakeStager{}, &fakeDNS{up: true}
	t := NewTargets().AddLink("a-b", link).AddHost("srv", host).AddStager("hpss", st)
	t.SetDNS(dns)
	return clk, log, t, link, host, st, dns
}

func TestValidateRejectsBadFaults(t *testing.T) {
	clk, log, targets, _, _, _, _ := harness()
	r := NewRunner(clk, log, targets)
	cases := []struct {
		name string
		f    Fault
	}{
		{"unknown kind", Fault{Kind: "nope", Target: "a-b"}},
		{"unknown link", Fault{Kind: KindLinkDown, Target: "x-y"}},
		{"unknown host", Fault{Kind: KindHostCrash, Target: "ghost"}},
		{"unknown stager", Fault{Kind: KindHRMStall, Target: "tape0", Delay: time.Second}},
		{"negative start", Fault{Kind: KindLinkDown, Target: "a-b", Start: -time.Second}},
		{"degrade factor 1", Fault{Kind: KindLinkDegrade, Target: "a-b", Factor: 1}},
		{"loss rate 0", Fault{Kind: KindLossBurst, Target: "a-b"}},
		{"flap count 0", Fault{Kind: KindLinkFlap, Target: "a-b"}},
		{"stall delay 0", Fault{Kind: KindHRMStall, Target: "hpss"}},
	}
	for _, tc := range cases {
		if err := r.Validate(Schedule{tc.f}); err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.f)
		}
	}
	if err := r.Apply(Schedule{{Kind: "nope"}}); err == nil {
		t.Error("Apply accepted an invalid schedule")
	}
}

func TestRunnerExecutesSchedule(t *testing.T) {
	clk, log, targets, link, host, st, dns := harness()
	r := NewRunner(clk, log, targets)
	sched := Schedule{
		{Kind: KindLinkDown, Target: "a-b", Start: 1 * time.Second, Duration: 2 * time.Second},
		{Kind: KindLinkDegrade, Target: "a-b", Start: 5 * time.Second, Duration: 2 * time.Second, Factor: 0.1},
		{Kind: KindLossBurst, Target: "a-b", Start: 10 * time.Second, Duration: 2 * time.Second, Factor: 0.05},
		{Kind: KindLinkFlap, Target: "a-b", Start: 15 * time.Second, Duration: 4 * time.Second, Count: 2},
		{Kind: KindHostCrash, Target: "srv", Start: 20 * time.Second, Duration: 3 * time.Second},
		{Kind: KindCtrlReset, Target: "srv", Start: 25 * time.Second},
		{Kind: KindHRMStall, Target: "hpss", Start: 30 * time.Second, Duration: 2 * time.Second, Delay: 10 * time.Second},
		{Kind: KindHRMError, Target: "hpss", Start: 35 * time.Second, Duration: 2 * time.Second},
		{Kind: KindDNSOutage, Start: 40 * time.Second, Duration: 2 * time.Second},
	}
	var (
		midDown    bool
		midFactor  float64
		midLoss    float64
		midCrash   bool
		midDelay   time.Duration
		midErr     error
		midDNSDown bool
	)
	clk.Run(func() {
		if err := r.Apply(sched); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		clk.Sleep(2 * time.Second)
		midDown = !link.up
		clk.Sleep(4 * time.Second) // t=6s
		midFactor = link.factor
		clk.Sleep(5 * time.Second) // t=11s
		midLoss = link.loss
		clk.Sleep(10 * time.Second) // t=21s
		midCrash = host.down
		clk.Sleep(10 * time.Second) // t=31s
		midDelay = st.delay
		clk.Sleep(5 * time.Second) // t=36s
		midErr = st.err
		clk.Sleep(5 * time.Second) // t=41s
		midDNSDown = !dns.up
		clk.Sleep(30 * time.Second)
	})
	if !midDown {
		t.Error("link not down during link.down")
	}
	if midFactor != 0.1 {
		t.Errorf("capacity factor during degrade = %v, want 0.1", midFactor)
	}
	if midLoss != 0.05 {
		t.Errorf("loss during burst = %v, want 0.05", midLoss)
	}
	if !midCrash {
		t.Error("host not down during host.crash")
	}
	if midDelay != 10*time.Second {
		t.Errorf("stage delay during stall = %v, want 10s", midDelay)
	}
	if midErr == nil {
		t.Error("no stage error during hrm.error")
	}
	if !midDNSDown {
		t.Error("DNS not down during dns.outage")
	}

	// Everything healed at the end.
	if !link.up || link.factor != 1 || link.loss != 0.001 {
		t.Errorf("link not healed: up=%v factor=%v loss=%v", link.up, link.factor, link.loss)
	}
	if host.down || st.delay != 0 || st.err != nil || !dns.up {
		t.Errorf("targets not healed: host.down=%v delay=%v err=%v dns=%v",
			host.down, st.delay, st.err, dns.up)
	}
	if host.resets != 1 {
		t.Errorf("ctrl.reset reset conns %d times, want 1", host.resets)
	}
	// Flap: 2 extra down transitions + link.down's = 3 resets.
	if link.resets != 3 {
		t.Errorf("link saw %d resets, want 3 (1 down + 2 flap cycles)", link.resets)
	}
	// Activations: 8 single faults + 2 flap cycles = 10.
	if got := r.Activations(); got != 10 {
		t.Errorf("Activations = %d, want 10", got)
	}
	// Paired chaos.* events: every start has an end.
	var starts, ends int
	for _, ev := range log.Events() {
		switch ev.Name {
		case "chaos.fault.start":
			starts++
		case "chaos.fault.end":
			ends++
		}
	}
	if starts != 10 || ends != 10 {
		t.Errorf("events: %d starts / %d ends, want 10/10", starts, ends)
	}
}

func TestRandomScheduleDeterministicAndMixed(t *testing.T) {
	cfg := RandomConfig{
		Horizon: 10 * time.Minute,
		Faults:  12,
		Links:   []string{"a-b", "b-c"},
		Hosts:   []string{"srv"},
		Stagers: []string{"hpss"},
		DNS:     true,
	}
	s1 := RandomSchedule(42, cfg)
	s2 := RandomSchedule(42, cfg)
	if len(s1) != 12 {
		t.Fatalf("len = %d, want 12", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("equal seeds diverge at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	if s3 := RandomSchedule(43, cfg); len(s3) == len(s1) {
		same := true
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
	if kinds := s1.Kinds(); len(kinds) < 4 {
		t.Errorf("12 faults over all target types mixed only %d kinds: %v", len(kinds), kinds)
	}
	for i := 1; i < len(s1); i++ {
		if s1[i].Start < s1[i-1].Start {
			t.Fatalf("schedule not sorted by start")
		}
	}
	// All faults land inside the usable window and are validatable.
	clk := vtime.NewSim(1)
	targets := NewTargets()
	for _, l := range cfg.Links {
		targets.AddLink(l, newFakeLink())
	}
	targets.AddHost("srv", &fakeHost{}).AddStager("hpss", &fakeStager{})
	targets.SetDNS(&fakeDNS{})
	if err := NewRunner(clk, nil, targets).Validate(s1); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	for _, f := range s1 {
		if f.Start < cfg.Horizon/20 || f.Start > 3*cfg.Horizon/4 {
			t.Errorf("fault start %v outside [0.05,0.75]·horizon", f.Start)
		}
	}
}

func restartEvent(file string, exts []gridftp.Extent) netlogger.Event {
	var sum int64
	for _, e := range exts {
		sum += e.Len
	}
	return netlogger.Event{Name: "rm.restart", Fields: map[string]string{
		"file":    file,
		"bytes":   strconv.FormatInt(sum, 10),
		"extents": gridftp.FormatRanges(exts),
	}}
}

func TestInvariantsCleanRun(t *testing.T) {
	inv := Invariants{MaxRefetchBytesPerFault: 1 << 20, RetryBackoff: time.Second}
	files := []FileResult{{
		Name: "f1", Size: 100, RequestedBytes: 100, Attempts: 1, Done: true,
		GotHash: "h", WantHash: "h",
	}}
	events := []netlogger.Event{restartEvent("f1", []gridftp.Extent{{Off: 0, Len: 100}})}
	rep := inv.Check(files, events, nil, 0)
	if err := rep.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if rep.RefetchBytes != 0 {
		t.Errorf("RefetchBytes = %d, want 0", rep.RefetchBytes)
	}
}

func TestInvariantsCatchViolations(t *testing.T) {
	inv := Invariants{MaxRefetchBytesPerFault: 10, RetryBackoff: time.Second}
	cases := []struct {
		name   string
		files  []FileResult
		events []netlogger.Event
		faults int
		want   string
	}{
		{
			"incomplete",
			[]FileResult{{Name: "f", Size: 10, Err: "boom"}},
			nil, 0, "did not complete",
		},
		{
			"hash mismatch",
			[]FileResult{{Name: "f", Size: 10, RequestedBytes: 10, Attempts: 1, Done: true, GotHash: "a", WantHash: "b"}},
			nil, 0, "hash mismatch",
		},
		{
			"refetch on clean run",
			[]FileResult{{Name: "f", Size: 10, RequestedBytes: 15, Attempts: 2, Done: true, GotHash: "h", WantHash: "h"}},
			nil, 0, "re-fetched 5 bytes > bound 0",
		},
		{
			"refetch over bound",
			[]FileResult{{Name: "f", Size: 10, RequestedBytes: 40, Attempts: 2, Done: true, GotHash: "h", WantHash: "h"}},
			nil, 2, "re-fetched 30 bytes > bound 20",
		},
		{
			"overlapping restart extents",
			[]FileResult{{Name: "f", Size: 10, RequestedBytes: 10, Attempts: 1, Done: true, GotHash: "h", WantHash: "h"}},
			[]netlogger.Event{restartEvent("f", []gridftp.Extent{{Off: 0, Len: 6}, {Off: 4, Len: 6}})},
			1, "overlap",
		},
		{
			"non-monotone restart",
			[]FileResult{{Name: "f", Size: 20, RequestedBytes: 30, Attempts: 2, Done: true, GotHash: "h", WantHash: "h"}},
			[]netlogger.Event{
				restartEvent("f", []gridftp.Extent{{Off: 0, Len: 10}}),
				restartEvent("f", []gridftp.Extent{{Off: 5, Len: 15}}),
			},
			1, "outside attempt",
		},
	}
	for _, tc := range cases {
		rep := inv.Check(tc.files, tc.events, nil, tc.faults)
		err := rep.Err()
		if err == nil {
			t.Errorf("%s: no violation reported", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestInvariantsRetrySpanAccounting(t *testing.T) {
	inv := Invariants{MaxRefetchBytesPerFault: 1 << 20, RetryBackoff: 2 * time.Second}
	files := []FileResult{{
		Name: "f", Size: 10, RequestedBytes: 12, Attempts: 3, Done: true,
		GotHash: "h", WantHash: "h",
	}}
	mkSpan := func(d time.Duration) netlogger.SpanRecord {
		return netlogger.SpanRecord{Stage: netlogger.StageRetry, Start: vtime.Epoch, End: vtime.Epoch.Add(d), Done: true}
	}
	good := []netlogger.SpanRecord{mkSpan(2 * time.Second), mkSpan(2 * time.Second)}
	if err := inv.Check(files, nil, good, 1).Err(); err != nil {
		t.Errorf("exact accounting flagged: %v", err)
	}
	short := []netlogger.SpanRecord{mkSpan(2 * time.Second)}
	if err := inv.Check(files, nil, short, 1).Err(); err == nil {
		t.Error("missing retry span not flagged")
	} else if !strings.Contains(err.Error(), "retry spans total") {
		t.Errorf("wrong violation: %v", err)
	}
}
