package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
)

// FileResult is one transferred file's outcome, as the experiment
// harness observed it (RM status + content hashes).
type FileResult struct {
	Name           string
	Size           int64
	RequestedBytes int64 // Σ extents requested across attempts (rm.FileStatus)
	Attempts       int
	Done           bool
	Err            string
	GotHash        string // hash of the bytes that landed at the destination
	WantHash       string // hash of the source content
}

// Invariants configures the post-run recovery-correctness audit.
type Invariants struct {
	// MaxRefetchBytesPerFault bounds total re-fetched bytes (requested
	// minus size, summed over files) at this many bytes per fault
	// activation. With zero activations the bound is exactly zero:
	// extent restart must never re-request landed data on a clean run.
	MaxRefetchBytesPerFault int64
	// RetryBackoff is the RM's configured backoff; each retry span must
	// account for exactly this much wall time.
	RetryBackoff time.Duration
	// Slack absorbs rounding in the retry-span accounting.
	Slack time.Duration
}

// Report is the audit outcome.
type Report struct {
	Violations    []string
	Files         int
	Restarts      int           // rm.restart events beyond each file's first attempt
	RefetchBytes  int64         // Σ max(0, RequestedBytes − Size)
	RetrySpanTime time.Duration // Σ StageRetry span durations
	ExpectedRetry time.Duration // Σ (Attempts−1) · RetryBackoff
}

// Err returns nil when every invariant held, else one error listing all
// violations.
func (r Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: %d invariant violation(s): %v", len(r.Violations), r.Violations)
}

// Check audits a finished run: every request completed, content matches
// the source, re-fetch overhead is bounded by the number of injected
// faults, restart markers are well-formed and monotone, and retry spans
// account for the backoff the RM was configured to pay.
func (inv Invariants) Check(files []FileResult, events []netlogger.Event, spans []netlogger.SpanRecord, activations int) Report {
	rep := Report{Files: len(files)}
	bad := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// 1. Completion + 2. content-hash equality.
	totalAttempts := 0
	for _, f := range files {
		totalAttempts += f.Attempts
		if !f.Done {
			bad("%s: did not complete: %s", f.Name, f.Err)
			continue
		}
		if f.GotHash != f.WantHash {
			bad("%s: content hash mismatch: got %s want %s", f.Name, f.GotHash, f.WantHash)
		}
		if f.RequestedBytes < f.Size {
			bad("%s: requested %d bytes < size %d", f.Name, f.RequestedBytes, f.Size)
		}
		rep.RefetchBytes += max64(0, f.RequestedBytes-f.Size)
	}

	// 3. Re-fetch overhead bounded by fault count.
	bound := inv.MaxRefetchBytesPerFault * int64(activations)
	if rep.RefetchBytes > bound {
		bad("re-fetched %d bytes > bound %d (%d per fault × %d faults)",
			rep.RefetchBytes, bound, inv.MaxRefetchBytesPerFault, activations)
	}

	// 4. Restart markers: per file, each rm.restart's extents must be
	// sorted and non-overlapping, and coverage must shrink monotonically
	// — a later attempt never asks for bytes an earlier attempt did not.
	restarts := restartsByFile(events)
	for _, name := range sortedKeys(restarts) {
		var prev []gridftp.Extent
		for i, ev := range restarts[name] {
			exts, err := parseRestart(ev)
			if err != nil {
				bad("%s: restart %d: %v", name, i, err)
				continue
			}
			if i > 0 {
				rep.Restarts++
			}
			if err := wellFormed(exts); err != nil {
				bad("%s: restart %d: %v", name, i, err)
			}
			if i > 0 && !containedIn(exts, prev) {
				bad("%s: restart %d requests bytes outside attempt %d's extents (%s ⊄ %s)",
					name, i, i-1, gridftp.FormatRanges(exts), gridftp.FormatRanges(prev))
			}
			if len(exts) > 0 {
				prev = exts
			}
		}
	}

	// 5. Retry spans account for the wall time lost to faults: the RM
	// pays exactly RetryBackoff per extra attempt, in a traced
	// StageRetry span.
	for _, sp := range spans {
		if sp.Stage == netlogger.StageRetry {
			rep.RetrySpanTime += sp.Dur()
		}
	}
	rep.ExpectedRetry = time.Duration(totalAttempts-len(files)) * inv.RetryBackoff
	if inv.RetryBackoff > 0 {
		diff := rep.RetrySpanTime - rep.ExpectedRetry
		if diff < 0 {
			diff = -diff
		}
		if diff > inv.Slack {
			bad("retry spans total %v but %d extra attempt(s) × %v backoff = %v",
				rep.RetrySpanTime, totalAttempts-len(files), inv.RetryBackoff, rep.ExpectedRetry)
		}
	}
	return rep
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// restartsByFile collects rm.restart events per file, in log order.
func restartsByFile(events []netlogger.Event) map[string][]netlogger.Event {
	out := map[string][]netlogger.Event{}
	for _, ev := range events {
		if ev.Name == "rm.restart" {
			out[ev.Fields["file"]] = append(out[ev.Fields["file"]], ev)
		}
	}
	return out
}

func parseRestart(ev netlogger.Event) ([]gridftp.Extent, error) {
	spec := ev.Fields["extents"]
	if spec == "" {
		// Fully covered already; the attempt had nothing to request.
		return nil, nil
	}
	exts, err := gridftp.ParseRanges(spec)
	if err != nil {
		return nil, fmt.Errorf("unparseable restart marker %q: %v", spec, err)
	}
	var sum int64
	for _, e := range exts {
		sum += e.Len
	}
	if b, err := strconv.ParseInt(ev.Fields["bytes"], 10, 64); err == nil && b != sum {
		return exts, fmt.Errorf("restart marker bytes=%d but extents sum to %d", b, sum)
	}
	return exts, nil
}

// wellFormed checks extents are sorted by offset and non-overlapping.
func wellFormed(exts []gridftp.Extent) error {
	for i := 1; i < len(exts); i++ {
		if exts[i].Off < exts[i-1].Off {
			return fmt.Errorf("extents not sorted: %s", gridftp.FormatRanges(exts))
		}
		if exts[i-1].Off+exts[i-1].Len > exts[i].Off {
			return fmt.Errorf("extents overlap: %s", gridftp.FormatRanges(exts))
		}
	}
	return nil
}

// containedIn reports whether every byte of exts lies inside the
// coverage of within.
func containedIn(exts, within []gridftp.Extent) bool {
	if len(within) == 0 {
		return len(exts) == 0
	}
	w := append([]gridftp.Extent(nil), within...)
	sort.Slice(w, func(i, j int) bool { return w[i].Off < w[j].Off })
	for _, e := range exts {
		covered := false
		for _, c := range w {
			if e.Off >= c.Off && e.Off+e.Len <= c.Off+c.Len {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
