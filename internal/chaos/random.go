package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// RandomConfig bounds a generated schedule.
type RandomConfig struct {
	// Horizon is the expected experiment length; fault start times fall
	// in [0.05, 0.75]·Horizon so every fault lands while transfers are
	// plausibly still running and heals before retry budgets drain.
	Horizon time.Duration
	// Faults is how many faults to draw.
	Faults int
	// Links, Hosts, Stagers name the eligible targets; empty slices
	// remove those fault kinds from the draw.
	Links   []string
	Hosts   []string
	Stagers []string
	// DNS enables dns.outage faults.
	DNS bool
	// MaxOutage caps any single fault's duration; it should stay well
	// under the victims' retry budget or completion is not recoverable.
	MaxOutage time.Duration
}

// RandomSchedule draws a reproducible schedule from seed: equal seeds
// and configs yield identical schedules, so a failing soak run is
// replayed from the one-line seed in its failure message.
func RandomSchedule(seed int64, cfg RandomConfig) Schedule {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * time.Minute
	}
	if cfg.MaxOutage <= 0 || cfg.MaxOutage > cfg.Horizon {
		cfg.MaxOutage = cfg.Horizon / 20
	}
	rng := rand.New(rand.NewSource(seed))

	var kinds []Kind
	if len(cfg.Links) > 0 {
		kinds = append(kinds, KindLinkDown, KindLinkDegrade, KindLinkFlap, KindLossBurst)
	}
	if len(cfg.Hosts) > 0 {
		kinds = append(kinds, KindHostCrash, KindCtrlReset)
	}
	if len(cfg.Stagers) > 0 {
		kinds = append(kinds, KindHRMStall, KindHRMError)
	}
	if cfg.DNS {
		kinds = append(kinds, KindDNSOutage)
	}
	if len(kinds) == 0 || cfg.Faults <= 0 {
		return nil
	}

	dur := func() time.Duration {
		// At least a second so the fault is observable; uniform up to
		// the cap.
		return time.Second + time.Duration(rng.Float64()*float64(cfg.MaxOutage-time.Second))
	}
	pick := func(names []string) string { return names[rng.Intn(len(names))] }

	s := make(Schedule, 0, cfg.Faults)
	for i := 0; i < cfg.Faults; i++ {
		f := Fault{
			Kind:  kinds[rng.Intn(len(kinds))],
			Start: time.Duration((0.05 + 0.70*rng.Float64()) * float64(cfg.Horizon)),
		}
		switch f.Kind {
		case KindLinkDown:
			f.Target, f.Duration = pick(cfg.Links), dur()
		case KindLinkDegrade:
			f.Target, f.Duration = pick(cfg.Links), dur()
			f.Factor = 0.05 + 0.25*rng.Float64()
		case KindLinkFlap:
			f.Target, f.Duration = pick(cfg.Links), dur()
			f.Count = 2 + rng.Intn(3)
		case KindLossBurst:
			f.Target, f.Duration = pick(cfg.Links), dur()
			f.Factor = 0.02 + 0.08*rng.Float64()
		case KindHostCrash:
			f.Target, f.Duration = pick(cfg.Hosts), dur()
		case KindCtrlReset:
			f.Target = pick(cfg.Hosts)
		case KindHRMStall:
			f.Target, f.Duration = pick(cfg.Stagers), dur()
			f.Delay = 5*time.Second + time.Duration(rng.Float64()*float64(20*time.Second))
		case KindHRMError:
			f.Target, f.Duration = pick(cfg.Stagers), dur()
		case KindDNSOutage:
			f.Duration = dur()
		}
		s = append(s, f)
	}
	// Sort by start (then kind/target) so the schedule reads like a
	// timeline and application order never depends on draw order.
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		return fmt.Sprint(s[i]) < fmt.Sprint(s[j])
	})
	return s
}

// Kinds returns the distinct fault kinds in s, sorted.
func (s Schedule) Kinds() []Kind {
	set := map[Kind]bool{}
	for _, f := range s {
		set[f.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
