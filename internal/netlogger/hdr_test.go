package netlogger

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestLogHistQuantiles(t *testing.T) {
	h := NewLogHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	// 1000 observations: 900 fast (10ms), 90 slow (2s), 10 very slow (30s):
	// exactly the shape whose p999 a mean (or a coarse digest) hides.
	for i := 0; i < 900; i++ {
		h.Observe(0.010)
	}
	for i := 0; i < 90; i++ {
		h.ObserveDuration(2 * time.Second)
	}
	for i := 0; i < 10; i++ {
		h.Observe(30.0)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 0.010 || h.Max() != 30.0 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	check := func(q, want float64) {
		t.Helper()
		got := h.Quantile(q)
		if got < want || got > want*1.04 { // upper bound within ~3% bucket error
			t.Fatalf("Quantile(%v) = %v, want [%v, %v]", q, got, want, want*1.04)
		}
	}
	check(0.50, 0.010)
	check(0.99, 2.0)
	check(0.999, 30.0)
	if got := h.Quantile(1); got != 30.0 {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
	tail := h.Tail()
	if tail.N != 1000 || tail.P999 < 2 || tail.Max != 30.0 {
		t.Fatalf("Tail = %+v", tail)
	}
	for _, want := range []string{"n=1000", "p50=", "p999="} {
		if !strings.Contains(tail.String(), want) {
			t.Fatalf("Tail.String() missing %q: %s", want, tail)
		}
	}
	// Out-of-range inputs clamp rather than panic.
	h.Observe(-5)
	if h.Min() != -5 {
		t.Fatalf("negative observation: min = %v", h.Min())
	}
	h.Observe(1e12) // beyond the int64-ns range
	if got, q0 := h.Quantile(-1), h.Quantile(0); got != q0 {
		t.Fatalf("Quantile(-1) = %v, want clamp to Quantile(0) = %v", got, q0)
	}
	if got := h.Quantile(2); got != h.Max() {
		t.Fatalf("Quantile(2) = %v, want max", got)
	}
}

// TestLogHistBucketMath verifies the bucket mapping is monotone, covers
// the full range, and bounds relative error by 1/32 per bucket.
func TestLogHistBucketMath(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1e6, 1e9, 1e12, 1e15, 1 << 62, 1<<63 - 1} {
		idx := hdrBucketOf(ns)
		if idx < prev {
			t.Fatalf("bucket index not monotone at ns=%d: %d < %d", ns, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= hdrBuckets {
			t.Fatalf("ns=%d maps out of range: %d", ns, idx)
		}
		hi := hdrUpperBound(idx)
		if hi < ns {
			t.Fatalf("upper bound %d below value %d (idx %d)", hi, ns, idx)
		}
		if ns >= hdrSubCount {
			if rel := float64(hi-ns) / float64(ns); rel > 1.0/hdrSubCount {
				t.Fatalf("ns=%d: bucket error %.4f exceeds 1/%d", ns, rel, hdrSubCount)
			}
		} else if hi != ns {
			t.Fatalf("small value %d not exact: upper %d", ns, hi)
		}
	}
	// Exhaustive upper-bound consistency: every bucket's upper edge maps
	// back to the same bucket, and +1 maps to the next.
	for idx := 0; idx < hdrBuckets-1; idx++ {
		hi := hdrUpperBound(idx)
		if hdrBucketOf(hi) != idx {
			t.Fatalf("upper bound of bucket %d maps to %d", idx, hdrBucketOf(hi))
		}
		if hdrBucketOf(hi+1) != idx+1 {
			t.Fatalf("bucket %d upper+1 maps to %d, want %d", idx, hdrBucketOf(hi+1), idx+1)
		}
	}
}

func TestLogHistDeterminism(t *testing.T) {
	mk := func() *LogHistogram {
		h := NewLogHistogram()
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%37) * 0.013)
		}
		return h
	}
	a, b := mk(), mk()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("quantile %v differs between identical histograms", q)
		}
	}
}

// TestLogHistObserveAllocFree pins the transfer-latency record path at
// zero allocations: the histogram is on the completion path of every
// simulated transfer.
func TestLogHistObserveAllocFree(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0.5)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.123)
	})
	if allocs > 0 {
		t.Errorf("LogHistogram.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestLogHistNilSafe(t *testing.T) {
	var h *LogHistogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram methods must no-op")
	}
	var r *Registry
	if r.LogHist("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
}

func TestRegistryLogHist(t *testing.T) {
	reg := NewRegistry(nil)
	h := reg.LogHist("rm.transfer.latency")
	if h == nil || reg.LogHist("rm.transfer.latency") != h {
		t.Fatal("LogHist must create once and share by name")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	var row string
	for _, r := range reg.Snapshot() {
		if r.Name == "rm.transfer.latency" {
			row = r.Kind + " " + r.Value
		}
	}
	if !strings.Contains(row, "loghist") || !strings.Contains(row, "p999=") {
		t.Fatalf("snapshot row malformed: %q", row)
	}
	if math.IsNaN(h.Mean()) {
		t.Fatal("mean NaN")
	}
}
