// Life-line analysis: turn a trace's span tree into the artifacts the
// paper built from NetLogger life-lines — a per-stage attribution of
// where each request's wall time went, the inter-file gap signature that
// exposed Figure 8's ~0.8 s TCP teardown pauses, an ASCII gantt chart,
// and ULM/JSONL/CSV exports of the raw event stream.
package netlogger

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageTotal is attributed time for one stage.
type StageTotal struct {
	Stage string
	Dur   time.Duration
}

// Gap is idle time between two consecutive data spans of a trace — the
// teardown/setup pause between files that the paper measured at ~0.8 s.
type Gap struct {
	After  SpanRecord // data span preceding the gap
	Before SpanRecord // data span following the gap
	Dur    time.Duration
}

// TraceAnalysis is the stage attribution of one trace.
type TraceAnalysis struct {
	TraceID    int
	Root       SpanRecord
	Spans      []SpanRecord // all spans of the trace, by ID
	Wall       time.Duration
	Stages     []StageTotal // nonzero stages, StageOrder first, then others by name
	Attributed time.Duration
	Other      time.Duration // wall time no staged span covers
	Coverage   float64       // Attributed / Wall
	Gaps       []Gap
}

// AnalyzeTrace attributes the wall time of the given trace to stages.
// Every instant of the root span's extent is assigned to the deepest
// finished span carrying a stage tag that covers it (ties broken by
// stage priority, then span ID); instants no staged span covers count as
// Other. By construction Attributed+Other == Wall exactly; Coverage
// reports the attributed fraction.
func AnalyzeTrace(spans []SpanRecord, traceID int) TraceAnalysis {
	a := TraceAnalysis{TraceID: traceID}
	depth := map[int]int{}
	parent := map[int]int{}
	for _, r := range spans {
		if r.TraceID != traceID {
			continue
		}
		a.Spans = append(a.Spans, r)
		parent[r.ID] = r.Parent
	}
	sort.Slice(a.Spans, func(i, j int) bool { return a.Spans[i].ID < a.Spans[j].ID })
	var depthOf func(id int) int
	depthOf = func(id int) int {
		if d, ok := depth[id]; ok {
			return d
		}
		p := parent[id]
		d := 0
		if p != 0 {
			d = depthOf(p) + 1
		}
		depth[id] = d
		return d
	}
	for _, r := range a.Spans {
		if r.Parent == 0 {
			a.Root = r
		}
		depthOf(r.ID)
	}
	if !a.Root.Done {
		return a
	}
	a.Wall = a.Root.Dur()

	// Staged, finished spans clipped to the root extent drive attribution.
	var staged []SpanRecord
	cuts := []time.Time{a.Root.Start, a.Root.End}
	for _, r := range a.Spans {
		if r.Stage == "" || !r.Done {
			continue
		}
		staged = append(staged, r)
		cuts = append(cuts, r.Start, r.End)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].Before(cuts[j]) })
	totals := map[string]time.Duration{}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if !hi.After(lo) || !lo.Before(a.Root.End) || !hi.After(a.Root.Start) {
			continue
		}
		if lo.Before(a.Root.Start) {
			lo = a.Root.Start
		}
		if hi.After(a.Root.End) {
			hi = a.Root.End
		}
		var best *SpanRecord
		for k := range staged {
			r := &staged[k]
			if r.Start.After(lo) || r.End.Before(hi) {
				continue
			}
			if best == nil || deeper(*r, *best, depth) {
				best = r
			}
		}
		if best != nil {
			totals[best.Stage] += hi.Sub(lo)
		}
	}
	for _, stage := range StageOrder {
		if d := totals[stage]; d > 0 {
			a.Stages = append(a.Stages, StageTotal{stage, d})
			a.Attributed += d
			delete(totals, stage)
		}
	}
	var extra []string
	for stage := range totals {
		extra = append(extra, stage)
	}
	sort.Strings(extra)
	for _, stage := range extra {
		a.Stages = append(a.Stages, StageTotal{stage, totals[stage]})
		a.Attributed += totals[stage]
	}
	a.Other = a.Wall - a.Attributed
	if a.Wall > 0 {
		a.Coverage = float64(a.Attributed) / float64(a.Wall)
	}

	// Gaps between consecutive data spans, in start order.
	var data []SpanRecord
	for _, r := range staged {
		if r.Stage == StageData {
			data = append(data, r)
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].Start.Before(data[j].Start) })
	for i := 1; i < len(data); i++ {
		if d := data[i].Start.Sub(data[i-1].End); d > 0 {
			a.Gaps = append(a.Gaps, Gap{After: data[i-1], Before: data[i], Dur: d})
		}
	}
	return a
}

// deeper reports whether span x should win attribution over span y:
// greater tree depth first, then higher stage priority, then higher ID
// (later-opened span).
func deeper(x, y SpanRecord, depth map[int]int) bool {
	if depth[x.ID] != depth[y.ID] {
		return depth[x.ID] > depth[y.ID]
	}
	if stagePriority[x.Stage] != stagePriority[y.Stage] {
		return stagePriority[x.Stage] > stagePriority[y.Stage]
	}
	return x.ID > y.ID
}

// MeanGap returns the mean inter-file gap (0 when there are none).
func (a TraceAnalysis) MeanGap() time.Duration {
	if len(a.Gaps) == 0 {
		return 0
	}
	var sum time.Duration
	for _, g := range a.Gaps {
		sum += g.Dur
	}
	return sum / time.Duration(len(a.Gaps))
}

// RenderStageTable formats the per-stage breakdown with percentages.
func (a TraceAnalysis) RenderStageTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %7s\n", "stage", "time", "share")
	for _, st := range a.Stages {
		share := 0.0
		if a.Wall > 0 {
			share = float64(st.Dur) / float64(a.Wall) * 100
		}
		fmt.Fprintf(&b, "%-16s %12s %6.2f%%\n", st.Stage, fmtDur(st.Dur), share)
	}
	otherShare := 0.0
	if a.Wall > 0 {
		otherShare = float64(a.Other) / float64(a.Wall) * 100
	}
	fmt.Fprintf(&b, "%-16s %12s %6.2f%%\n", "(other)", fmtDur(a.Other), otherShare)
	fmt.Fprintf(&b, "%-16s %12s %6.2f%%\n", "total", fmtDur(a.Wall), 100.0)
	return b.String()
}

// StagesCSV exports the breakdown as "stage,seconds,share" lines.
func (a TraceAnalysis) StagesCSV() string {
	var b strings.Builder
	b.WriteString("stage,seconds,share\n")
	for _, st := range a.Stages {
		share := 0.0
		if a.Wall > 0 {
			share = float64(st.Dur) / float64(a.Wall)
		}
		fmt.Fprintf(&b, "%s,%.6f,%.4f\n", st.Stage, st.Dur.Seconds(), share)
	}
	fmt.Fprintf(&b, "other,%.6f,%.4f\n", a.Other.Seconds(),
		1-a.Coverage)
	return b.String()
}

// RenderGantt draws the span tree as an ASCII life-line chart: one row
// per span in tree pre-order, indented labels on the left, '#' bars on a
// shared time axis spanning the root.
func (a TraceAnalysis) RenderGantt(width int) string {
	if width < 20 {
		width = 20
	}
	if !a.Root.Done || a.Wall <= 0 {
		return "(trace incomplete)\n"
	}
	children := map[int][]SpanRecord{}
	for _, r := range a.Spans {
		children[r.Parent] = append(children[r.Parent], r)
	}
	//esglint:unordered sorts each bucket in place; row order comes from walk(), not this loop
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if !cs[i].Start.Equal(cs[j].Start) {
				return cs[i].Start.Before(cs[j].Start)
			}
			return cs[i].ID < cs[j].ID
		})
	}
	labelW := 0
	var order []struct {
		r      SpanRecord
		indent int
	}
	var walk func(id, indent int)
	walk = func(id, indent int) {
		for _, c := range children[id] {
			order = append(order, struct {
				r      SpanRecord
				indent int
			}{c, indent})
			if w := indent*2 + len(ganttLabel(c)); w > labelW {
				labelW = w
			}
			walk(c.ID, indent+1)
		}
	}
	walk(0, 0)
	if labelW > 40 {
		labelW = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |%s|\n", labelW, "span [stage]",
		center(fmt.Sprintf("0 .. %s", fmtDur(a.Wall)), width))
	for _, row := range order {
		label := strings.Repeat("  ", row.indent) + ganttLabel(row.r)
		if len(label) > labelW {
			label = label[:labelW]
		}
		lo := int(float64(row.r.Start.Sub(a.Root.Start)) / float64(a.Wall) * float64(width))
		hi := int(float64(row.r.End.Sub(a.Root.Start)) / float64(a.Wall) * float64(width))
		if !row.r.Done {
			hi = width
		}
		if lo < 0 {
			lo = 0
		}
		if hi > width {
			hi = width
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			lo, hi = width-1, width
		}
		bar := strings.Repeat(".", lo) + strings.Repeat("#", hi-lo) +
			strings.Repeat(".", width-hi)
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, label, bar)
	}
	return b.String()
}

func ganttLabel(r SpanRecord) string {
	if r.Stage != "" {
		return fmt.Sprintf("%s [%s]", r.Name, r.Stage)
	}
	return r.Name
}

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-left-len(s))
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// ULM renders the event log in NetLogger's Universal Logger Message
// format: one "DATE=... HOST=... NL.EVNT=... k=v" line per event, fields
// in sorted key order. Values containing spaces are double-quoted. The
// output is deterministic for a deterministic event stream.
func (l *Log) ULM() string {
	var b strings.Builder
	for _, ev := range l.Events() {
		ts := ev.Time.UTC()
		fmt.Fprintf(&b, "DATE=%s.%06d HOST=%s NL.EVNT=%s",
			ts.Format("20060102150405"), ts.Nanosecond()/1000, ev.Host, ev.Name)
		keys := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := ev.Fields[k]
			if strings.ContainsAny(v, " \t") || v == "" {
				v = `"` + v + `"`
			}
			fmt.Fprintf(&b, " %s=%s", k, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSONL renders the event log as one JSON object per line with fixed
// keys (ts, host, event, fields). Map keys are emitted sorted by
// encoding/json, so equal logs serialize identically. The export is
// canonical: lines are ordered by timestamp, and events sharing an
// instant (goroutines woken by the same simulated event emit at the
// same virtual time, in whichever order the Go scheduler ran them) are
// tie-broken by their encoded form — equal-seed runs therefore export
// byte-identical streams, the property the determinism and
// pure-observer golden tests compare.
func (l *Log) JSONL() string {
	type rec struct {
		TS     string            `json:"ts"`
		Host   string            `json:"host"`
		Event  string            `json:"event"`
		Fields map[string]string `json:"fields,omitempty"`
	}
	events := l.Events()
	type row struct {
		t    time.Time
		line []byte
	}
	rows := make([]row, len(events))
	for i, ev := range events {
		line, _ := json.Marshal(rec{
			TS:     ev.Time.UTC().Format(time.RFC3339Nano),
			Host:   ev.Host,
			Event:  ev.Name,
			Fields: ev.Fields,
		})
		rows[i] = row{t: ev.Time, line: line}
	}
	// Append order is already time-ordered (one clock, monotone), so
	// the stable sort only reorders equal-instant runs.
	sort.SliceStable(rows, func(i, j int) bool {
		if !rows[i].t.Equal(rows[j].t) {
			return rows[i].t.Before(rows[j].t)
		}
		return string(rows[i].line) < string(rows[j].line)
	})
	var b strings.Builder
	for _, r := range rows {
		b.Write(r.line)
		b.WriteByte('\n')
	}
	return b.String()
}
