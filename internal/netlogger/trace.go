// Life-line tracing: causal spans linking a Request Manager submission to
// the replica selection, authentication, control exchanges, tape staging,
// data movement, and teardown it triggers across hosts. This is the
// NetLogger "life-line" methodology from the paper — the instrument that
// exposed the ~0.8 s per-file TCP teardown gap in Figure 8 — recast as an
// explicit span tree on the virtual clock.
//
// Trace and span IDs are small sequential integers handed out under a
// mutex. Under the deterministic simulation scheduler the same seed
// yields the same goroutine interleaving, so the IDs (and therefore the
// exported ULM/JSONL streams) are reproducible byte for byte.
package netlogger

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"esgrid/internal/vtime"
)

// Stage tags attached to spans. The analyzer attributes wall time to
// these stages; StagePriority orders them for reporting and tie-breaks.
const (
	StageQueue    = "queue"           // waiting for an RM concurrency slot
	StageSelect   = "replica-select"  // catalog lookup + NWS ranking
	StageAuth     = "auth"            // GSI handshake on a control channel
	StageControl  = "control"         // GridFTP control-channel session
	StageTape     = "stage-from-tape" // HRM staging MSS -> disk cache
	StageData     = "data"            // bytes moving on data channels
	StageTeardown = "teardown"        // QUIT + data-channel close
	StageRetry    = "retry"           // backoff between transfer attempts
)

// stagePriority ranks stages for attribution tie-breaks (higher wins when
// two staged spans of equal depth cover the same instant) and fixes the
// rendering order of breakdown tables.
var stagePriority = map[string]int{
	StageData:     8,
	StageTape:     7,
	StageAuth:     6,
	StageTeardown: 5,
	StageRetry:    4,
	StageControl:  3,
	StageSelect:   2,
	StageQueue:    1,
}

// StageOrder lists the known stages from highest to lowest priority.
var StageOrder = []string{
	StageData, StageTape, StageAuth, StageTeardown,
	StageRetry, StageControl, StageSelect, StageQueue,
}

// Tracer mints traces and records their spans. A nil *Tracer is a valid
// no-op: StartTrace returns nil and all Span methods accept nil
// receivers, so instrumented code needs no conditionals.
type Tracer struct {
	clk vtime.Clock
	log *Log // optional: span start/end events are mirrored here

	mu        sync.Mutex
	nextTrace int
	nextSpan  int
	spans     []*Span
}

// NewTracer returns a tracer stamping spans with clk. If log is non-nil
// every span start and finish is mirrored into it as a NetLogger event
// (name ".start"/".end" suffixed), which is what the ULM/JSONL exporters
// serialize.
func NewTracer(clk vtime.Clock, log *Log) *Tracer {
	return &Tracer{clk: clk, log: log}
}

// Span is one timed operation in a trace. Fields are written by the
// owning Tracer under its mutex; read them via Snapshot records.
type Span struct {
	tr     *Tracer
	trace  int
	id     int
	parent int // span ID of parent; 0 for a trace root
	name   string
	stage  string // "" for container spans carrying no stage
	host   string
	start  time.Time
	end    time.Time
	done   bool
	attrs  []string // alternating key, value
}

// SpanRecord is an immutable snapshot of a span for analysis.
type SpanRecord struct {
	TraceID int
	ID      int
	Parent  int
	Name    string
	Stage   string
	Host    string
	Start   time.Time
	End     time.Time
	Done    bool
	Attrs   []string
}

// Dur returns the span's duration (zero if unfinished).
func (r SpanRecord) Dur() time.Duration {
	if !r.Done {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Attr returns the value of the named attribute, or "".
func (r SpanRecord) Attr(key string) string {
	for i := 0; i+1 < len(r.Attrs); i += 2 {
		if r.Attrs[i] == key {
			return r.Attrs[i+1]
		}
	}
	return ""
}

// StartTrace mints a new trace and returns its root span.
func (t *Tracer) StartTrace(name, host string, kv ...string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTrace++
	s := &Span{
		tr:    t,
		trace: t.nextTrace,
		name:  name,
		host:  host,
		start: t.clk.Now(),
		attrs: append([]string(nil), kv...),
	}
	t.nextSpan++
	s.id = t.nextSpan
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	t.emit(s, ".start")
	return s
}

// Child opens a sub-span under s with the given stage tag (may be "" for
// a plain container). Safe on a nil receiver.
func (s *Span) Child(stage, name string, kv ...string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	c := &Span{
		tr:     t,
		trace:  s.trace,
		parent: s.id,
		name:   name,
		stage:  stage,
		host:   s.host,
		start:  t.clk.Now(),
		attrs:  append([]string(nil), kv...),
	}
	t.nextSpan++
	c.id = t.nextSpan
	t.spans = append(t.spans, c)
	t.mu.Unlock()
	t.emit(c, ".start")
	return c
}

// SetHost overrides the host a span (and events derived from it) is
// attributed to.
func (s *Span) SetHost(host string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.host = host
	s.tr.mu.Unlock()
}

// Annotate appends key/value attributes to the span.
func (s *Span) Annotate(kv ...string) {
	if s == nil || len(kv) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, kv...)
	s.tr.mu.Unlock()
}

// Finish closes the span at the current virtual instant. Double finishes
// are ignored.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.done {
		t.mu.Unlock()
		return
	}
	s.done = true
	s.end = t.clk.Now()
	t.mu.Unlock()
	t.emit(s, ".end")
}

// Context returns the wire form of the span identity, "<trace>.<span>",
// suitable for propagation as a GridFTP TRID parameter or an RPC field.
// A nil span yields "".
func (s *Span) Context() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%d.%d", s.trace, s.id)
}

// TraceID reports the trace the span belongs to (0 for nil).
func (s *Span) TraceID() int {
	if s == nil {
		return 0
	}
	return s.trace
}

func (t *Tracer) emit(s *Span, suffix string) {
	if t.log == nil {
		return
	}
	kv := []string{"trid", fmt.Sprintf("%d.%d", s.trace, s.id)}
	if s.stage != "" {
		kv = append(kv, "stage", s.stage)
	}
	t.mu.Lock()
	kv = append(kv, s.attrs...)
	host := s.host
	t.mu.Unlock()
	t.log.Emit(host, s.name+suffix, kv...)
}

// Snapshot returns immutable records of every span, sorted by
// (TraceID, ID) — a deterministic order under the sim scheduler.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, SpanRecord{
			TraceID: s.trace, ID: s.id, Parent: s.parent,
			Name: s.name, Stage: s.stage, Host: s.host,
			Start: s.start, End: s.end, Done: s.done,
			Attrs: append([]string(nil), s.attrs...),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TraceID != out[j].TraceID {
			return out[i].TraceID < out[j].TraceID
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TraceIDs lists the distinct trace IDs recorded, ascending.
func (t *Tracer) TraceIDs() []int {
	seen := map[int]bool{}
	var ids []int
	for _, r := range t.Snapshot() {
		if !seen[r.TraceID] {
			seen[r.TraceID] = true
			ids = append(ids, r.TraceID)
		}
	}
	sort.Ints(ids)
	return ids
}

// FormatAttrs renders alternating kv pairs as "k=v k=v" for display.
func FormatAttrs(kv []string) string {
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		fmt.Fprintf(&b, "%s=%s", kv[i], v)
	}
	return b.String()
}
