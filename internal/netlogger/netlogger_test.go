package netlogger

import (
	"math"
	"strings"
	"testing"
	"time"

	"esgrid/internal/vtime"
)

func TestLogEmitAndQuery(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		l := NewLog(clk)
		l.Emit("dal01", "transfer.start", "file", "a.nc", "size", "1024")
		clk.Sleep(time.Second)
		l.Emit("dal01", "transfer.end", "file", "a.nc")
		evs := l.Events()
		if len(evs) != 2 {
			t.Fatalf("events = %d", len(evs))
		}
		if evs[0].Fields["file"] != "a.nc" || evs[0].Fields["size"] != "1024" {
			t.Fatalf("fields = %v", evs[0].Fields)
		}
		if got := evs[1].Time.Sub(evs[0].Time); got != time.Second {
			t.Fatalf("timestamp delta = %v", got)
		}
		if n := len(l.Named("transfer.end")); n != 1 {
			t.Fatalf("Named = %d", n)
		}
	})
}

func TestLogSubscribe(t *testing.T) {
	clk := vtime.NewSim(9)
	clk.Run(func() {
		l := NewLog(clk)
		l.Emit("dal01", "before.subscribe")
		var got []Event
		l.Subscribe(func(ev Event) { got = append(got, ev) })
		l.Emit("dal01", "a", "k", "1")
		clk.Sleep(time.Second)
		l.Emit("lbl01", "b")
		if len(got) != 2 {
			t.Fatalf("delivered = %d, want 2 (pre-subscribe event excluded)", len(got))
		}
		if got[0].Name != "a" || got[0].Fields["k"] != "1" {
			t.Fatalf("first delivery = %+v", got[0])
		}
		if got[1].Name != "b" || got[1].Host != "lbl01" {
			t.Fatalf("second delivery = %+v", got[1])
		}
		if d := got[1].Time.Sub(got[0].Time); d != time.Second {
			t.Fatalf("timestamp delta = %v", d)
		}
		// Both subscribers see every event, in append order.
		var n int
		l.Subscribe(func(Event) { n++ })
		l.Emit("dal01", "c")
		if len(got) != 3 || n != 1 {
			t.Fatalf("fanout: got=%d n=%d", len(got), n)
		}
	})
}

func TestMeterRates(t *testing.T) {
	clk := vtime.NewSim(2)
	clk.Run(func() {
		// A counter that grows 100 bytes/s for 10s, stalls 10s, then
		// grows 300 bytes/s for 10s.
		start := clk.Now()
		counter := func() float64 {
			s := clk.Now().Sub(start).Seconds()
			switch {
			case s <= 10:
				return 100 * s
			case s <= 20:
				return 1000
			default:
				return 1000 + 300*(s-20)
			}
		}
		m := NewMeter(clk, 100*time.Millisecond, counter)
		clk.Sleep(30 * time.Second)
		m.Stop()
		if got := m.Total(); math.Abs(got-4000) > 50 {
			t.Fatalf("total = %v, want ~4000", got)
		}
		if got := m.AverageRate(); math.Abs(got-4000.0/30) > 5 {
			t.Fatalf("avg = %v, want ~133", got)
		}
		if got := m.PeakRate(time.Second); math.Abs(got-300) > 10 {
			t.Fatalf("peak@1s = %v, want ~300", got)
		}
		if got := m.PeakRate(20 * time.Second); got > 250 || got < 150 {
			t.Fatalf("peak@20s = %v, want between avg and burst", got)
		}
		series := m.RateSeries(time.Second)
		if len(series) < 28 || len(series) > 31 {
			t.Fatalf("series buckets = %d", len(series))
		}
		// The stall must show as near-zero buckets.
		zero := 0
		for _, p := range series {
			if p.V < 1 {
				zero++
			}
		}
		if zero < 8 {
			t.Fatalf("stall not visible: %d zero buckets", zero)
		}
	})
}

func TestMeterStopIdempotent(t *testing.T) {
	clk := vtime.NewSim(3)
	clk.Run(func() {
		m := NewMeter(clk, time.Second, func() float64 { return 0 })
		clk.Sleep(2 * time.Second)
		m.Stop()
		m.Stop()
	})
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4, 100})
	if st.N != 5 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 22 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.P50 != 3 {
		t.Fatalf("p50 = %v", st.P50)
	}
	// Floor-index percentile: index int(0.9*4) = 3.
	if st.P90 != 4 {
		t.Fatalf("p90 = %v", st.P90)
	}
	if st.P99 != 4 {
		t.Fatalf("p99 = %v", st.P99)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty stats")
	}
}

func TestSeriesCSVAndPlot(t *testing.T) {
	t0 := vtime.Epoch
	var s Series
	for i := 0; i < 60; i++ {
		v := 50.0
		if i > 30 {
			v = 100
		}
		s = append(s, Point{T: t0.Add(time.Duration(i) * time.Second), V: v})
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "seconds,value\n0.000,50\n") {
		t.Fatalf("csv head: %q", csv[:40])
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 61 {
		t.Fatal("csv row count")
	}
	plot := s.Plot("step function", "units", 60, 8)
	if !strings.Contains(plot, "step function") || !strings.Contains(plot, "#") {
		t.Fatalf("plot:\n%s", plot)
	}
	// Right half (higher values) must have taller columns than left half.
	lines := strings.Split(plot, "\n")
	top := lines[1]
	if !strings.Contains(top[40:], "#") || strings.Contains(top[12:30], "#") {
		t.Fatalf("plot shape wrong:\n%s", plot)
	}
	if (Series{}).Plot("empty", "u", 40, 6) == "" {
		t.Fatal("empty plot")
	}
	if (Series{}).CSV() != "" {
		t.Fatal("empty csv")
	}
}

func TestValues(t *testing.T) {
	s := Series{{V: 1}, {V: 2}}
	vs := s.Values()
	if len(vs) != 2 || vs[1] != 2 {
		t.Fatalf("values = %v", vs)
	}
}
