package netlogger

import (
	"strings"
	"testing"
	"time"

	"esgrid/internal/vtime"
)

func TestEmitOddKVRecordsTrailingKey(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		l := NewLog(clk)
		l.Emit("h", "ev", "a", "1", "dangling")
		evs := l.Events()
		if len(evs) != 1 {
			t.Fatalf("got %d events", len(evs))
		}
		if evs[0].Fields["a"] != "1" {
			t.Errorf("a=%q, want 1", evs[0].Fields["a"])
		}
		v, ok := evs[0].Fields["dangling"]
		if !ok || v != "" {
			t.Errorf("trailing key: got (%q,%v), want (\"\",true)", v, ok)
		}
	})
}

func TestRateSeriesEmitsPartialBucket(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		var bytes float64
		m := NewMeter(clk, 100*time.Millisecond, func() float64 { return bytes })
		// 2.5 s at a steady 1000 units/s with 1 s buckets: two full
		// buckets plus a 0.5 s partial that must not be dropped. The
		// increment precedes the sleep because the meter samples at its
		// timer's event position, ahead of goroutines woken at the same
		// instant.
		for i := 0; i < 25; i++ {
			bytes += 100
			clk.Sleep(100 * time.Millisecond)
		}
		m.Stop()
		s := m.RateSeries(time.Second)
		if len(s) != 3 {
			t.Fatalf("got %d buckets, want 3 (two full + partial): %v", len(s), s)
		}
		for i, p := range s {
			if p.V < 999 || p.V > 1001 {
				t.Errorf("bucket %d rate %.1f, want ~1000", i, p.V)
			}
		}
		// The partial bucket's timestamp is the last sample instant.
		if got := s[2].T.Sub(s[1].T); got != 500*time.Millisecond {
			t.Errorf("partial bucket span %v, want 500ms", got)
		}
	})
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("x", "h")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// All of these must be no-ops, not panics.
	c := sp.Child(StageData, "y")
	c.Annotate("k", "v")
	c.Finish()
	sp.Finish()
	if got := sp.Context(); got != "" {
		t.Errorf("nil span Context = %q, want \"\"", got)
	}
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot should be nil")
	}
}

func TestTracerSpanTreeAndEvents(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		log := NewLog(clk)
		tr := NewTracer(clk, log)
		root := tr.StartTrace("rm.request", "desk", "user", "alice")
		clk.Sleep(time.Second)
		ch := root.Child(StageData, "xfer", "file", "a.nc")
		clk.Sleep(2 * time.Second)
		ch.Annotate("bytes", "100")
		ch.Finish()
		clk.Sleep(time.Second)
		root.Finish()

		recs := tr.Snapshot()
		if len(recs) != 2 {
			t.Fatalf("got %d spans, want 2", len(recs))
		}
		if recs[0].Parent != 0 || recs[1].Parent != recs[0].ID {
			t.Errorf("bad parentage: %+v", recs)
		}
		if recs[1].Dur() != 2*time.Second {
			t.Errorf("child duration %v, want 2s", recs[1].Dur())
		}
		if recs[0].Attr("user") != "alice" || recs[1].Attr("bytes") != "100" {
			t.Errorf("attrs lost: %+v", recs)
		}
		if got := recs[1].Stage; got != StageData {
			t.Errorf("stage %q, want %q", got, StageData)
		}
		// Start/end events mirrored into the log, tagged with trid.
		starts := log.Named("xfer.start")
		ends := log.Named("xfer.end")
		if len(starts) != 1 || len(ends) != 1 {
			t.Fatalf("got %d starts, %d ends", len(starts), len(ends))
		}
		if starts[0].Fields["trid"] == "" || starts[0].Fields["stage"] != StageData {
			t.Errorf("start event fields: %v", starts[0].Fields)
		}
	})
}

func TestRegistryInstruments(t *testing.T) {
	clk := vtime.NewSim(1)
	r := NewRegistry(clk)
	r.Counter("rm.retries").Inc()
	r.Counter("rm.retries").Add(2)
	if got := r.Counter("rm.retries").Value(); got != 3 {
		t.Errorf("counter = %g, want 3", got)
	}
	g := r.Gauge("simnet.flows.active")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if g.Value() != 1 || g.Max() != 2 {
		t.Errorf("gauge value=%g max=%g, want 1/2", g.Value(), g.Max())
	}
	h := r.LogHist("gridftp.control.rtts")
	for _, v := range []float64{0.005, 0.05, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count %d, want 4", h.Count())
	}
	if got := h.Quantile(0.5); got < 0.05 || got > 0.052 {
		t.Errorf("p50 bucket bound %g, want ~0.05", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("p100 %g, want observed max 5", got)
	}
	out := r.Render()
	for _, want := range []string{"rm.retries", "simnet.flows.active", "gridftp.control.rtts", "counter", "gauge", "loghist"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// Nil registry hands out no-op instruments.
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Gauge("y").Set(1)
	nr.LogHist("z").Observe(1)
	if nr.Render() != "(no metrics)\n" && nr.Render() != "" {
		// nil registry renders the empty placeholder
		t.Errorf("nil registry render = %q", nr.Render())
	}
}

func TestAnalyzeTraceAttributionAndGaps(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		tr := NewTracer(clk, nil)
		root := tr.StartTrace("rm.request", "desk")
		// File 1: 1 s control wrapping 3 s data (deeper span wins).
		s1 := root.Child(StageControl, "session1")
		clk.Sleep(time.Second)
		d1 := s1.Child(StageData, "get1")
		clk.Sleep(3 * time.Second)
		d1.Finish()
		td := s1.Child(StageTeardown, "teardown1")
		clk.Sleep(800 * time.Millisecond) // the Figure 8 signature
		td.Finish()
		s1.Finish()
		// File 2 data span after the teardown gap.
		s2 := root.Child(StageControl, "session2")
		d2 := s2.Child(StageData, "get2")
		clk.Sleep(2 * time.Second)
		d2.Finish()
		s2.Finish()
		root.Finish()

		a := AnalyzeTrace(tr.Snapshot(), root.TraceID())
		if a.Wall != 6800*time.Millisecond {
			t.Fatalf("wall %v, want 6.8s", a.Wall)
		}
		want := map[string]time.Duration{
			StageData:     5 * time.Second,
			StageControl:  time.Second,
			StageTeardown: 800 * time.Millisecond,
		}
		got := map[string]time.Duration{}
		for _, st := range a.Stages {
			got[st.Stage] = st.Dur
		}
		for stage, d := range want {
			if got[stage] != d {
				t.Errorf("stage %s = %v, want %v", stage, got[stage], d)
			}
		}
		if a.Coverage < 0.999 {
			t.Errorf("coverage %.4f, want ~1", a.Coverage)
		}
		if a.Attributed+a.Other != a.Wall {
			t.Errorf("attributed %v + other %v != wall %v", a.Attributed, a.Other, a.Wall)
		}
		// The inter-file gap is the 0.8 s teardown pause.
		if len(a.Gaps) != 1 || a.Gaps[0].Dur != 800*time.Millisecond {
			t.Fatalf("gaps = %+v, want one 800ms gap", a.Gaps)
		}
		if a.MeanGap() != 800*time.Millisecond {
			t.Errorf("mean gap %v", a.MeanGap())
		}

		gantt := a.RenderGantt(60)
		for _, want := range []string{"session1 [control]", "get1 [data]", "teardown1 [teardown]", "#"} {
			if !strings.Contains(gantt, want) {
				t.Errorf("gantt missing %q:\n%s", want, gantt)
			}
		}
		table := a.RenderStageTable()
		if !strings.Contains(table, StageData) || !strings.Contains(table, "total") {
			t.Errorf("stage table:\n%s", table)
		}
		csv := a.StagesCSV()
		if !strings.Contains(csv, "data,5.000000") {
			t.Errorf("csv:\n%s", csv)
		}
	})
}

func TestULMAndJSONLExport(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		l := NewLog(clk)
		l.Emit("dal01", "transfer.start", "file", "a b.nc", "size", "1024")
		clk.Sleep(1500 * time.Millisecond)
		l.Emit("anl02", "transfer.end", "file", "a b.nc")
		ulm := l.ULM()
		lines := strings.Split(strings.TrimRight(ulm, "\n"), "\n")
		if len(lines) != 2 {
			t.Fatalf("ulm lines = %d: %q", len(lines), ulm)
		}
		if !strings.HasPrefix(lines[0], "DATE=20001106") {
			t.Errorf("ulm DATE prefix: %q", lines[0])
		}
		if !strings.Contains(lines[0], "NL.EVNT=transfer.start") ||
			!strings.Contains(lines[0], `file="a b.nc"`) ||
			!strings.Contains(lines[0], "HOST=dal01") {
			t.Errorf("ulm line: %q", lines[0])
		}
		// Fields in sorted key order: file before size.
		if strings.Index(lines[0], "file=") > strings.Index(lines[0], "size=") {
			t.Errorf("fields not sorted: %q", lines[0])
		}
		jl := l.JSONL()
		if !strings.Contains(jl, `"event":"transfer.end"`) || !strings.Contains(jl, `"host":"anl02"`) {
			t.Errorf("jsonl: %q", jl)
		}
	})
}
