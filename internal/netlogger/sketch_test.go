package netlogger

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// sketchSamples draws a deterministic latency population spanning the
// histogram's range: microseconds to minutes, heavy-tailed.
func sketchSamples(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 1e-6 * (1 + rng.ExpFloat64()*1e6*rng.Float64())
	}
	return out
}

func histOf(vals []float64) *LogHistogram {
	h := NewLogHistogram()
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHistSnapshotMergeOfSnapshotsEqualsSnapshotOfUnion(t *testing.T) {
	vals := sketchSamples(7, 3000)
	parts := [][]float64{vals[:500], vals[500:1700], vals[1700:]}
	var merged HistSnapshot
	for _, p := range parts {
		merged = merged.Merge(histOf(p).Snapshot())
	}
	union := histOf(vals).Snapshot()
	if !reflect.DeepEqual(merged, union) {
		t.Fatalf("merge of part snapshots != snapshot of union:\n%+v\n%+v", merged, union)
	}
}

func TestHistSnapshotMergeAssociativeCommutative(t *testing.T) {
	vals := sketchSamples(11, 2400)
	a := histOf(vals[:800]).Snapshot()
	b := histOf(vals[800:1600]).Snapshot()
	c := histOf(vals[1600:]).Snapshot()

	ab_c := a.Merge(b).Merge(c)
	a_bc := a.Merge(b.Merge(c))
	cba := c.Merge(b).Merge(a)
	if !reflect.DeepEqual(ab_c, a_bc) {
		t.Fatalf("associativity: (a⊕b)⊕c != a⊕(b⊕c)")
	}
	if string(encode(t, ab_c)) != string(encode(t, cba)) {
		t.Fatalf("commutativity: fold order changed encoded bytes")
	}
	// Zero snapshot is the identity on both sides.
	if !reflect.DeepEqual(a.Merge(HistSnapshot{}), a) || !reflect.DeepEqual(HistSnapshot{}.Merge(a), a) {
		t.Fatalf("zero snapshot is not a merge identity")
	}
}

func TestHistSnapshotQuantilesMatchLiveHistogram(t *testing.T) {
	vals := sketchSamples(13, 5000)
	h := histOf(vals)
	s := h.Snapshot()
	// The snapshot lives in the integer-nanosecond domain, so extremes
	// may truncate by under 1 ns relative to the live float view.
	const ns = 1e-9
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if live, snap := h.Quantile(q), s.Quantile(q); snap < live-ns || snap > live+ns {
			t.Errorf("q=%g: live %g != snapshot %g", q, live, snap)
		}
	}
	if h.Count() != s.N || s.Max() < h.Max()-ns || s.Max() > h.Max()+ns {
		t.Errorf("count/max mismatch: live (%d,%g) snapshot (%d,%g)",
			h.Count(), h.Max(), s.N, s.Max())
	}
	if got, want := s.Mean(), h.Mean(); got < want*0.999 || got > want*1.001 {
		t.Errorf("snapshot mean %g vs live %g", got, want)
	}
}

func TestHistSnapshotMergeInPlaceMatchesMerge(t *testing.T) {
	vals := sketchSamples(17, 2000)
	a := histOf(vals[:1000]).Snapshot()
	b := histOf(vals[1000:]).Snapshot()
	want := a.Merge(b)
	got, _ := a.clone().MergeInPlace(b, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeInPlace != Merge:\n%+v\n%+v", got, want)
	}
}

func TestHistSnapshotFoldAllocFree(t *testing.T) {
	children := make([]HistSnapshot, 16)
	for i := range children {
		children[i] = histOf(sketchSamples(int64(100+i), 400)).Snapshot()
	}
	// Steady state: the accumulator and workspace have seen one full
	// round, so every later fold reuses their storage.
	var acc HistSnapshot
	var scratch []BucketCount
	fold := func() {
		acc = HistSnapshot{Buckets: acc.Buckets[:0]}
		for _, c := range children {
			acc, scratch = acc.MergeInPlace(c, scratch)
		}
	}
	fold()
	fold()
	if n := testing.AllocsPerRun(50, fold); n != 0 {
		t.Fatalf("steady-state fold allocates %.1f/op, want 0", n)
	}
	want := HistSnapshot{}
	for _, c := range children {
		want = want.Merge(c)
	}
	if string(encode(t, acc)) != string(encode(t, want)) {
		t.Fatalf("alloc-free fold diverged from pure merge")
	}
}

func TestGaugeSummaryMerge(t *testing.T) {
	var g1, g2 Gauge
	g1.Set(3)
	g1.Add(2) // 5; min 3 max 5
	g2.Set(10)
	g2.Add(-9) // 1; min 1 max 10
	a, b := g1.Summary(), g2.Summary()
	m := a.Merge(b)
	if m.Last != 6 || m.Min != 1 || m.Max != 10 || m.N != 4 || m.Sum != 19 {
		t.Fatalf("merge = %+v", m)
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Fatalf("gauge merge not commutative")
	}
	if !reflect.DeepEqual(a.Merge(GaugeSummary{}), a) {
		t.Fatalf("zero gauge summary is not identity")
	}
}

func TestRegistryMergeableSortedAndComplete(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("z.bytes").Add(42)
	r.Counter("a.bytes").Add(1)
	r.Gauge("m.flows").Set(2)
	r.LogHist("stage.retr").ObserveDuration(250 * time.Millisecond)
	s := r.Mergeable()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.bytes" || s.Counters[1].Name != "z.bytes" {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].G.Last != 2 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Hists) != 1 || s.Hists[0].H.N != 1 {
		t.Fatalf("hists = %+v", s.Hists)
	}
	var nr *Registry
	if got := nr.Mergeable(); len(got.Counters)+len(got.Gauges)+len(got.Hists) != 0 {
		t.Fatalf("nil registry mergeable = %+v", got)
	}
}

func TestLogBucketDistance(t *testing.T) {
	if d := LogBucketDistance(1.0, 1.0); d != 0 {
		t.Errorf("equal values %d buckets apart", d)
	}
	// ~3% resolution: values within a sub-bucket are 0-1 apart, a 2x
	// gap is a full octave (32 sub-buckets) apart.
	if d := LogBucketDistance(1.0, 1.01); d > 1 {
		t.Errorf("1%% apart values %d buckets apart", d)
	}
	if d := LogBucketDistance(1.0, 2.0); d != 32 {
		t.Errorf("2x apart values %d buckets apart, want 32", d)
	}
}
