// Mergeable sketch snapshots: the wire form of the metrics registry's
// instruments. A telemetry tier folds child snapshots with Merge and
// re-exports the result — the fold is exact, not approximated twice,
// because a LogHistogram snapshot carries its raw bucket counts and the
// other instruments reduce to sums and extrema.
//
// Determinism contract: every accumulated field is an integer (bucket
// counts, observation counts, nanosecond sums/extrema) or a float64
// whose increments are integral in this codebase (byte counters, flow
// gauges). Integer addition is associative and commutative, and float64
// addition is exact on integers below 2^53 — so folding a set of
// snapshots yields bit-identical results in any association and any
// order. The telemetry plane's permuted-fold property tests pin this.
package netlogger

import "sort"

// BucketCount is one occupied log-histogram bucket.
type BucketCount struct {
	Idx int32 `json:"i"`
	N   int64 `json:"n"`
}

// HistSnapshot is the mergeable form of a LogHistogram: the occupied
// buckets (sorted by index) plus integer-nanosecond aggregates. The
// zero value is an empty snapshot and a valid Merge identity.
type HistSnapshot struct {
	N       int64         `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	MinNs   int64         `json:"min_ns"`
	MaxNs   int64         `json:"max_ns"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot captures the histogram's current state. The result shares no
// storage with the live histogram.
func (h *LogHistogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{N: h.n, SumNs: h.sumNs, MinNs: h.minNs, MaxNs: h.maxNs}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Idx: int32(i), N: c})
		}
	}
	return s
}

// Merge returns the snapshot of the union of the two observation sets.
// It is associative, commutative, and has the zero snapshot as
// identity; all arithmetic is integral, so any fold tree over the same
// multiset of snapshots produces bit-identical bytes.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out, _ := s.clone().MergeInPlace(o, nil)
	return out
}

func (s HistSnapshot) clone() HistSnapshot {
	s.Buckets = append([]BucketCount(nil), s.Buckets...)
	return s
}

// MergeInPlace folds o into s using scratch as the bucket workspace. It
// returns the merged snapshot (whose Buckets alias the workspace) and
// the displaced former bucket slice for reuse as the next call's
// workspace. Once the workspace has grown to the steady-state bucket
// population, the fold path allocates nothing — the property
// BenchmarkTelemetryFold guards.
func (s HistSnapshot) MergeInPlace(o HistSnapshot, scratch []BucketCount) (HistSnapshot, []BucketCount) {
	if o.N == 0 {
		return s, scratch
	}
	if s.N == 0 {
		s.MinNs, s.MaxNs = o.MinNs, o.MaxNs
	} else {
		if o.MinNs < s.MinNs {
			s.MinNs = o.MinNs
		}
		if o.MaxNs > s.MaxNs {
			s.MaxNs = o.MaxNs
		}
	}
	s.N += o.N
	s.SumNs += o.SumNs
	merged := mergeBuckets(scratch[:0], s.Buckets, o.Buckets)
	old := s.Buckets
	s.Buckets = merged
	return s, old
}

// mergeBuckets merges two Idx-sorted runs into dst (reused when its
// capacity suffices).
func mergeBuckets(dst, a, b []BucketCount) []BucketCount {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Idx < b[j].Idx:
			dst = append(dst, a[i])
			i++
		case a[i].Idx > b[j].Idx:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, BucketCount{Idx: a[i].Idx, N: a[i].N + b[j].N})
			i, j = i+1, j+1
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Mean returns the mean observation in seconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumNs) / 1e9 / float64(s.N)
}

// Max returns the observed maximum in seconds.
func (s HistSnapshot) Max() float64 { return float64(s.MaxNs) / 1e9 }

// Min returns the observed minimum in seconds.
func (s HistSnapshot) Min() float64 { return float64(s.MinNs) / 1e9 }

// Quantile mirrors LogHistogram.Quantile on the snapshot: the upper
// edge of the bucket holding the q-th ranked observation, clamped to
// the observed extremes.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.N-1))
	var seen int64
	for k, b := range s.Buckets {
		seen += b.N
		if seen > rank {
			if k == len(s.Buckets)-1 {
				return s.Max()
			}
			hi := float64(hdrUpperBound(int(b.Idx))) / 1e9
			if m := s.Max(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return s.Max()
}

// Tail snapshots the standard report quantiles.
func (s HistSnapshot) Tail() Tail {
	return Tail{
		N:    s.N,
		P50:  s.Quantile(0.50),
		P99:  s.Quantile(0.99),
		P999: s.Quantile(0.999),
		Max:  s.Max(),
	}
}

// LogBucketDistance returns how many log-histogram buckets apart two
// latencies (seconds) land — 0 means the sketch resolves them as equal.
// The S16 acceptance bound ("grid quantiles within one log-bucket of
// the flat-stream ground truth") is stated in this metric.
func LogBucketDistance(a, b float64) int {
	ia, ib := hdrBucketOf(clampNs(a)), hdrBucketOf(clampNs(b))
	if ia > ib {
		return ia - ib
	}
	return ib - ia
}

// GaugeSummary is the mergeable form of a Gauge. Last folds by
// summation: the grid-level "current level" of a distributed gauge
// (active flows, queue depths) is the sum of the per-host levels.
type GaugeSummary struct {
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
	N    int64   `json:"count"`
}

// Merge combines two gauge summaries (associative, commutative, zero
// identity — exact for integral-valued gauges).
func (g GaugeSummary) Merge(o GaugeSummary) GaugeSummary {
	if o.N == 0 {
		return g
	}
	if g.N == 0 {
		g.Min, g.Max = o.Min, o.Max
	} else {
		if o.Min < g.Min {
			g.Min = o.Min
		}
		if o.Max > g.Max {
			g.Max = o.Max
		}
	}
	g.Last += o.Last
	g.Sum += o.Sum
	g.N += o.N
	return g
}

// Summary captures the gauge's mergeable state.
func (g *Gauge) Summary() GaugeSummary {
	if g == nil {
		return GaugeSummary{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GaugeSummary{Last: g.v, Min: g.min, Max: g.max, Sum: g.sum, N: g.n}
}

// Snapshot reads the counter's mergeable state; counter snapshots merge
// by addition.
func (c *Counter) Snapshot() float64 { return c.Value() }

// NamedValue, NamedGauge, and NamedHist are name-keyed snapshot rows.
type NamedValue struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

type NamedGauge struct {
	Name string       `json:"name"`
	G    GaugeSummary `json:"g"`
}

type NamedHist struct {
	Name string       `json:"name"`
	H    HistSnapshot `json:"h"`
}

// RegistrySnapshot is the mergeable view of a whole registry: every
// instrument, sorted by name — the unit a telemetry leaf ships up the
// aggregation tree.
type RegistrySnapshot struct {
	Counters []NamedValue `json:"counters,omitempty"`
	Gauges   []NamedGauge `json:"gauges,omitempty"`
	Hists    []NamedHist  `json:"hists,omitempty"`
}

// Mergeable snapshots all instruments in sorted-name order.
func (r *Registry) Mergeable() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.Lock()
	var s RegistrySnapshot
	//esglint:unordered rows are sorted by name below before return
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, V: c.Snapshot()})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, G: g.Summary()})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, h := range r.hlogs {
		s.Hists = append(s.Hists, NamedHist{Name: name, H: h.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
