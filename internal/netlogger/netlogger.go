// Package netlogger reproduces the role NetLogger [Gunter et al. 2000]
// plays in the paper: instrumenting distributed transfers and turning the
// measurements into the bandwidth-versus-time series and summary rows the
// evaluation reports (Table 1's windowed peaks, Figure 8's 14-hour plot).
//
// A Log records timestamped structured events. A Meter samples a
// cumulative byte counter on a fixed virtual-time cadence and answers the
// questions the paper's instrumentation answered: peak rate over any
// 0.1 s window, peak over any 5 s window, sustained average, and total
// bytes moved. Series can be rendered as ASCII charts (the Figure 8
// analog) or exported as CSV.
package netlogger

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"esgrid/internal/vtime"
)

// Event is one structured log record.
type Event struct {
	Time   time.Time
	Host   string
	Name   string
	Fields map[string]string
}

// Log is an append-only event log, safe for concurrent use.
type Log struct {
	clk vtime.Clock

	mu     sync.Mutex
	events []Event
	subs   []func(Event)
}

// NewLog returns an empty log stamping events with clk.
func NewLog(clk vtime.Clock) *Log { return &Log{clk: clk} }

// Subscribe registers fn to receive every subsequently emitted event.
// Delivery is synchronous, on the emitting goroutine, in exact log-append
// order — the hook an online consumer (the monitor plane) needs to see
// the stream as it happens rather than post-hoc. fn must be fast and must
// not call Emit (the log's lock is held during delivery).
func (l *Log) Subscribe(fn func(Event)) {
	l.mu.Lock()
	l.subs = append(l.subs, fn)
	l.mu.Unlock()
}

// Emit appends an event. kv is alternating key, value pairs; a trailing
// key with no value is recorded with an empty value.
func (l *Log) Emit(host, name string, kv ...string) {
	ev := Event{Time: l.clk.Now(), Host: host, Name: name}
	if len(kv) > 0 {
		ev.Fields = make(map[string]string, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			if i+1 < len(kv) {
				ev.Fields[kv[i]] = kv[i+1]
			} else {
				ev.Fields[kv[i]] = ""
			}
		}
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	for _, fn := range l.subs {
		fn(ev)
	}
	l.mu.Unlock()
}

// Events returns a snapshot of all recorded events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Named returns the recorded events with the given name.
func (l *Log) Named(name string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered sequence of samples.
type Series []Point

// Meter periodically samples a cumulative counter (bytes transferred) and
// derives rate statistics from the samples.
type Meter struct {
	clk      vtime.Clock
	interval time.Duration
	sample   func() float64

	mu      sync.Mutex
	t0      time.Time
	samples []float64 // cumulative counter at t0 + i*interval
	lastAt  time.Time // instant of the most recent sample
	timer   vtime.Timer
	tickFn  func() // m.tick, bound once so re-arming never allocates
	stopped bool
}

// siteMeterSample tags the meter's sampling timer in event provenance.
var siteMeterSample = vtime.RegisterSite("netlogger.meter-sample")

// NewMeter starts sampling fn every interval on clk until Stop.
//
// Samples are taken from a timer callback, not a sleeping goroutine: an
// event callback runs at a fixed position in its instant's event order,
// whereas a woken goroutine's read interleaves with whatever other
// goroutines the same instant made runnable, in scheduler order. The
// counter value is the same either way, but the *fold point* of rate
// extrapolation is not, and folding a flow's progress in two steps
// instead of one rounds differently in the last float bits — enough to
// make two runs of the same seed disagree. The timer keeps every sample
// a pure function of the event history.
func NewMeter(clk vtime.Clock, interval time.Duration, fn func() float64) *Meter {
	m := &Meter{clk: clk, interval: interval, sample: fn, t0: clk.Now()}
	m.lastAt = m.t0
	m.samples = append(m.samples, fn())
	m.tickFn = m.tick
	m.timer = vtime.AfterFuncTagged(clk, siteMeterSample, interval, m.tickFn)
	return m
}

func (m *Meter) tick() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.lastAt = m.clk.Now()
	m.samples = append(m.samples, m.sample())
	// Periodic re-arm. On a Sim this is RearmFiring — a field write that
	// reuses the firing event's slot, so steady-state sampling allocates
	// nothing and m.timer's id stays valid for Stop. Elsewhere (Real
	// clock) it falls back to arming a fresh timer with the bound tickFn.
	if s, ok := m.clk.(*vtime.Sim); ok {
		s.RearmFiring(m.interval)
	} else {
		m.timer = vtime.AfterFuncTagged(m.clk, siteMeterSample, m.interval, m.tickFn)
	}
	m.mu.Unlock()
}

// Stop halts sampling after recording one final sample covering the tail
// since the last tick; if a tick already sampled at this very instant the
// final sample is skipped rather than duplicated.
func (m *Meter) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.stopped = true
	if m.timer != nil {
		m.timer.Stop()
	}
	if now := m.clk.Now(); !now.Equal(m.lastAt) {
		m.lastAt = now
		m.samples = append(m.samples, m.sample())
	}
}

// Interval returns the sampling cadence.
func (m *Meter) Interval() time.Duration { return m.interval }

func (m *Meter) snapshot() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(m.samples))
	copy(out, m.samples)
	return out
}

// Total returns the counter growth over the metered span.
func (m *Meter) Total() float64 {
	s := m.snapshot()
	if len(s) < 2 {
		return 0
	}
	return s[len(s)-1] - s[0]
}

// PeakRate returns the maximum average rate, in counter-units/second,
// observed over any contiguous window of the given duration (rounded to
// whole sampling intervals, minimum one).
func (m *Meter) PeakRate(window time.Duration) float64 {
	s := m.snapshot()
	k := int(window / m.interval)
	if k < 1 {
		k = 1
	}
	if len(s) <= k {
		if len(s) < 2 {
			return 0
		}
		k = len(s) - 1
	}
	span := (time.Duration(k) * m.interval).Seconds()
	var peak float64
	for i := 0; i+k < len(s); i++ {
		if r := (s[i+k] - s[i]) / span; r > peak {
			peak = r
		}
	}
	return peak
}

// AverageRate returns the mean rate over the whole metered span.
func (m *Meter) AverageRate() float64 {
	s := m.snapshot()
	if len(s) < 2 {
		return 0
	}
	span := (time.Duration(len(s)-1) * m.interval).Seconds()
	if span == 0 {
		return 0
	}
	return (s[len(s)-1] - s[0]) / span
}

// RateSeries returns the per-bucket average rate series, with buckets of
// the given duration (whole multiples of the sampling interval). A
// trailing partial bucket is emitted with its rate scaled to the span it
// actually covers, so the tail of the metered window is not dropped.
func (m *Meter) RateSeries(bucket time.Duration) Series {
	s := m.snapshot()
	k := int(bucket / m.interval)
	if k < 1 {
		k = 1
	}
	span := (time.Duration(k) * m.interval).Seconds()
	var out Series
	i := 0
	for ; i+k < len(s); i += k {
		out = append(out, Point{
			T: m.t0.Add(time.Duration(i+k) * m.interval),
			V: (s[i+k] - s[i]) / span,
		})
	}
	if rem := len(s) - 1 - i; rem > 0 {
		// Partial bucket: rem < k sampling intervals remain.
		partial := (time.Duration(rem) * m.interval).Seconds()
		out = append(out, Point{
			T: m.t0.Add(time.Duration(i+rem) * m.interval),
			V: (s[len(s)-1] - s[i]) / partial,
		})
	}
	return out
}

// Stats summarises a slice of values.
type Stats struct {
	N                int
	Mean, Min, Max   float64
	P50, P90, P99    float64
	StdDev, Sum, MAE float64 // MAE is vs the mean
}

// Summarize computes descriptive statistics of vs.
func Summarize(vs []float64) Stats {
	var st Stats
	st.N = len(vs)
	if st.N == 0 {
		return st
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	st.Min, st.Max = sorted[0], sorted[len(sorted)-1]
	for _, v := range vs {
		st.Sum += v
	}
	st.Mean = st.Sum / float64(st.N)
	for _, v := range vs {
		d := v - st.Mean
		st.StdDev += d * d
		if d < 0 {
			st.MAE -= d
		} else {
			st.MAE += d
		}
	}
	st.StdDev = math.Sqrt(st.StdDev / float64(st.N))
	st.MAE /= float64(st.N)
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	return st
}

// CSV renders a series as "seconds,value" lines (seconds relative to the
// first sample).
func (s Series) CSV() string {
	var b strings.Builder
	if len(s) == 0 {
		return ""
	}
	t0 := s[0].T
	b.WriteString("seconds,value\n")
	for _, p := range s {
		fmt.Fprintf(&b, "%.3f,%.6g\n", p.T.Sub(t0).Seconds(), p.V)
	}
	return b.String()
}

// Values extracts the sample values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

// Plot renders the series as an ASCII chart of the given size, in the
// spirit of Figure 8's bandwidth-over-time graph.
func (s Series) Plot(title, yunit string, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(s) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Downsample (average) into width columns.
	cols := make([]float64, width)
	counts := make([]int, width)
	t0, t1 := s[0].T, s[len(s)-1].T
	span := t1.Sub(t0).Seconds()
	if span <= 0 {
		span = 1
	}
	var ymax float64
	for _, p := range s {
		c := int(p.T.Sub(t0).Seconds() / span * float64(width-1))
		cols[c] += p.V
		counts[c]++
		if p.V > ymax {
			ymax = p.V
		}
	}
	for i := range cols {
		if counts[i] > 0 {
			cols[i] /= float64(counts[i])
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	for row := height - 1; row >= 0; row-- {
		lo := ymax * float64(row) / float64(height)
		if row == height-1 {
			fmt.Fprintf(&b, "%10.1f |", ymax)
		} else if row == 0 {
			fmt.Fprintf(&b, "%10.1f |", 0.0)
		} else {
			b.WriteString(strings.Repeat(" ", 10) + " |")
		}
		for c := 0; c < width; c++ {
			if counts[c] > 0 && cols[c] > lo {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  0s%*s%.0fs  (%s)\n", strings.Repeat(" ", 10),
		width-8, "", span, yunit)
	return b.String()
}
