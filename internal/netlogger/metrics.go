// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms sampled in virtual time. Components register instruments
// lazily by name (gridftp.control.rtts, rm.retries, simnet.flows.active,
// hrm.stage.wait, ...) and the registry renders a deterministic snapshot
// table for experiment reports. All three kinds are mergeable (sketch.go):
// host, site, and grid tiers report from this one sketch family.
//
// Like the tracer, a nil *Registry hands out nil instruments whose
// methods no-op, so instrumentation never needs guarding.
package netlogger

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"esgrid/internal/vtime"
)

// Registry owns named instruments. Instruments are created on first use
// and shared by name thereafter.
type Registry struct {
	clk vtime.Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hlogs    map[string]*LogHistogram
}

// NewRegistry returns an empty registry on clk.
func NewRegistry(clk vtime.Clock) *Registry {
	return &Registry{
		clk:      clk,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hlogs:    map[string]*LogHistogram{},
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value reads the counter (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous level that also tracks its extremes and the
// running sum/count of set levels, so a Summary (min/max/sum/count/last)
// can fold up the telemetry tree.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	min float64
	max float64
	sum float64
	n   int64
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.observeLocked(v)
	g.mu.Unlock()
}

// Add shifts the gauge by d (use negative d to decrement).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.observeLocked(g.v + d)
	g.mu.Unlock()
}

func (g *Gauge) observeLocked(v float64) {
	g.v = v
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if v > g.max {
		g.max = v
	}
	g.sum += v
	g.n++
}

// Value reads the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max reads the high-water mark.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// MetricSnapshot is one row of a registry snapshot.
type MetricSnapshot struct {
	Name  string
	Kind  string // "counter", "gauge", "loghist"
	Value string // rendered value
}

// Snapshot returns all instruments sorted by (kind-independent) name.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var rows []MetricSnapshot
	//esglint:unordered rows are sorted by name below before return
	for name, c := range r.counters {
		rows = append(rows, MetricSnapshot{name, "counter",
			fmt.Sprintf("%g", c.Value())})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, g := range r.gauges {
		rows = append(rows, MetricSnapshot{name, "gauge",
			fmt.Sprintf("%g (max %g)", g.Value(), g.Max())})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, h := range r.hlogs {
		rows = append(rows, MetricSnapshot{name, "loghist", h.Tail().String()})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Render formats the snapshot as an aligned table.
func (r *Registry) Render() string {
	rows := r.Snapshot()
	if len(rows) == 0 {
		return "(no metrics)\n"
	}
	nameW, kindW := len("metric"), len("type")
	for _, row := range rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
		if len(row.Kind) > kindW {
			kindW = len(row.Kind)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, "metric", kindW, "type", "value")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, row.Name, kindW, row.Kind, row.Value)
	}
	return b.String()
}
