// Metrics registry: named counters, gauges, and fixed-bucket histograms
// sampled in virtual time. Components register instruments lazily by
// name (gridftp.control.rtts, rm.retries, simnet.flows.active,
// hrm.stage.wait, ...) and the registry renders a deterministic snapshot
// table for experiment reports.
//
// Like the tracer, a nil *Registry hands out nil instruments whose
// methods no-op, so instrumentation never needs guarding.
package netlogger

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"esgrid/internal/vtime"
)

// Registry owns named instruments. Instruments are created on first use
// and shared by name thereafter.
type Registry struct {
	clk vtime.Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	hlogs    map[string]*LogHistogram
}

// NewRegistry returns an empty registry on clk.
func NewRegistry(clk vtime.Clock) *Registry {
	return &Registry{
		clk:      clk,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		hlogs:    map[string]*LogHistogram{},
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value reads the counter (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous level that also tracks its high-water mark.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	max float64
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Add shifts the gauge by d (use negative d to decrement).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
	g.mu.Unlock()
}

// Value reads the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max reads the high-water mark.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Histogram counts observations into fixed buckets with the given upper
// bounds (ascending); values above the last bound land in an overflow
// bucket.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is overflow
	n      int64
	sum    float64
	min    float64
	max    float64
}

// Histogram returns (creating if needed) the named histogram. The bucket
// bounds are fixed by the first caller; later callers share the existing
// instrument regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (q in [0,1]); values in the overflow bucket
// report the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n-1))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// MetricSnapshot is one row of a registry snapshot.
type MetricSnapshot struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value string // rendered value
}

// Snapshot returns all instruments sorted by (kind-independent) name.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var rows []MetricSnapshot
	//esglint:unordered rows are sorted by name below before return
	for name, c := range r.counters {
		rows = append(rows, MetricSnapshot{name, "counter",
			fmt.Sprintf("%g", c.Value())})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, g := range r.gauges {
		rows = append(rows, MetricSnapshot{name, "gauge",
			fmt.Sprintf("%g (max %g)", g.Value(), g.Max())})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, h := range r.hists {
		rows = append(rows, MetricSnapshot{name, "histogram",
			fmt.Sprintf("n=%d mean=%.6g p50<=%.6g p99<=%.6g max=%.6g",
				h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), func() float64 {
					h.mu.Lock()
					defer h.mu.Unlock()
					return h.max
				}())})
	}
	//esglint:unordered rows are sorted by name below before return
	for name, h := range r.hlogs {
		rows = append(rows, MetricSnapshot{name, "loghist", h.Tail().String()})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Render formats the snapshot as an aligned table.
func (r *Registry) Render() string {
	rows := r.Snapshot()
	if len(rows) == 0 {
		return "(no metrics)\n"
	}
	nameW, kindW := len("metric"), len("type")
	for _, row := range rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
		if len(row.Kind) > kindW {
			kindW = len(row.Kind)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, "metric", kindW, "type", "value")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, row.Name, kindW, row.Kind, row.Value)
	}
	return b.String()
}
