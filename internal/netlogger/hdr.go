// LogHistogram: an HDR-style log-bucketed latency histogram. Values
// (seconds) are mapped to nanoseconds and bucketed by the top six
// significant bits — log2 major buckets subdivided into 32 linear
// sub-buckets — so any quantile, p50 through p999, is answered with a
// bounded ~3% relative error over the full range from 1 ns to decades,
// in constant memory, with a zero-allocation Observe. Unlike a sampling
// sketch the mapping is deterministic, which the equal-seed replay
// tests require; it replaces the coarse geometric digests (×1.25
// growth, ~25% bucket error) the monitor previously used for stage
// latencies, whose error swamped the p99/p999 distinctions the scale
// experiments report.
package netlogger

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

const (
	hdrSubBits  = 5               // 32 linear sub-buckets per octave
	hdrSubCount = 1 << hdrSubBits // values below this index exactly
	hdrBuckets  = 32 * (64 - 5)   // max index for 63-bit ns + 1
)

// LogHistogram accumulates latency observations in seconds. The zero
// value is NOT ready to use — construct with NewLogHistogram (the
// bucket array is embedded, so sharing by value would tear counters).
type LogHistogram struct {
	mu     sync.Mutex
	counts [hdrBuckets]int64
	n      int64
	sum    float64
	min    float64
	max    float64
	// Integer-nanosecond mirrors of sum/min/max, kept so Snapshot is
	// all-integer and tier folds are bit-exact in any merge order.
	sumNs int64
	minNs int64
	maxNs int64
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// hdrBucketOf maps a nanosecond value to its bucket index: identity for
// values under 32, then 32·e + (ns>>e) with e chosen so ns>>e lands in
// [32, 64) — the top six significant bits of the value.
func hdrBucketOf(ns uint64) int {
	if ns < hdrSubCount {
		return int(ns)
	}
	e := uint(bits.Len64(ns)) - hdrSubBits - 1
	return int(e)<<hdrSubBits + int(ns>>e)
}

// hdrUpperBound returns the largest nanosecond value mapping to bucket
// idx (the bucket's inclusive upper edge).
func hdrUpperBound(idx int) uint64 {
	if idx < hdrSubCount {
		return uint64(idx)
	}
	e := uint(idx>>hdrSubBits) - 1
	m := uint64(idx&(hdrSubCount-1)) + hdrSubCount
	return (m+1)<<e - 1
}

// clampNs maps a latency in seconds to the histogram's nanosecond
// domain: negatives clamp to 0, overflows to the 63-bit bucket range.
func clampNs(v float64) uint64 {
	ns := v * 1e9
	if ns < 0 {
		return 0
	}
	if ns >= float64(uint64(1)<<63) {
		return 1<<63 - 1
	}
	return uint64(ns)
}

// Observe records one latency in seconds (negatives clamp to 0). It
// performs no allocation and is safe for concurrent use.
func (h *LogHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	un := clampNs(v)
	h.mu.Lock()
	h.counts[hdrBucketOf(un)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	if h.n == 0 || int64(un) < h.minNs {
		h.minNs = int64(un)
	}
	if h.n == 0 || int64(un) > h.maxNs {
		h.maxNs = int64(un)
	}
	h.n++
	h.sum += v
	h.sumNs += int64(un)
	h.mu.Unlock()
}

// ObserveDuration records one latency.
func (h *LogHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *LogHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean observation (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the observed extremes (0 when empty).
func (h *LogHistogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *LogHistogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound on the q-th quantile (q in [0,1]):
// the upper edge of the bucket holding that rank, clamped to the
// observed max — within ~3% of the true value by construction.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n-1))
	last := 0
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			last = i
			break
		}
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			if i == last {
				// The top occupied bucket's true upper edge is the
				// observed max (and may exceed it after ns clamping).
				return h.max
			}
			hi := float64(hdrUpperBound(i)) / 1e9
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Tail bundles the tail-latency row the experiments report instead of
// means: p50/p99/p999 and the observed max, in seconds.
type Tail struct {
	N                   int64
	P50, P99, P999, Max float64
}

// Tail snapshots the standard report quantiles.
func (h *LogHistogram) Tail() Tail {
	return Tail{
		N:    h.Count(),
		P50:  h.Quantile(0.50),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

// String renders the tail row ("n=… p50=… p99=… p999=… max=…", seconds).
func (t Tail) String() string {
	return fmt.Sprintf("n=%d p50=%.6g p99=%.6g p999=%.6g max=%.6g",
		t.N, t.P50, t.P99, t.P999, t.Max)
}

// LogHist returns (creating if needed) the named log histogram in the
// registry; it appears in Snapshot alongside the fixed-bucket kind.
func (r *Registry) LogHist(name string) *LogHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hlogs[name]
	if h == nil {
		h = NewLogHistogram()
		r.hlogs[name] = h
	}
	return h
}
