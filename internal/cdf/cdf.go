// Package cdf implements ESG's self-describing binary array format — the
// stand-in for netCDF, the format the paper's climate datasets use (§3:
// "thousands of individual data files stored in a self-describing binary
// format such as netCDF"). A file carries named dimensions, typed
// multidimensional variables with attributes, and global attributes, and
// supports hyperslab (rectangular subregion) reads without loading the
// whole variable, which is what the analysis layer needs for
// region/time-window extraction.
package cdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Magic identifies an ESG-CDF file.
var Magic = [4]byte{'E', 'S', 'G', 'C'}

// Type is a variable element type.
type Type uint8

// Supported element types.
const (
	Float64 Type = iota + 1
	Float32
	Int32
)

// Size returns the encoded byte width of the type.
func (t Type) Size() int {
	switch t {
	case Float64:
		return 8
	case Float32, Int32:
		return 4
	}
	return 0
}

func (t Type) String() string {
	switch t {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int32:
		return "int32"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Dim is a named dimension.
type Dim struct {
	Name string
	Len  int
}

// Var is a variable: a typed array over an ordered list of dimensions
// (row-major, last dimension fastest).
type Var struct {
	Name  string
	Type  Type
	Dims  []string
	Attrs map[string]string

	data []float64 // stored canonically as float64 in memory
}

// Errors returned by the package.
var (
	ErrBadMagic   = errors.New("cdf: not an ESG-CDF file")
	ErrNoSuchVar  = errors.New("cdf: no such variable")
	ErrNoSuchDim  = errors.New("cdf: no such dimension")
	ErrBadSlab    = errors.New("cdf: hyperslab out of range")
	ErrShape      = errors.New("cdf: data length does not match shape")
	ErrDupeName   = errors.New("cdf: duplicate name")
	errMalformed  = errors.New("cdf: malformed file")
	errDimUnknown = errors.New("cdf: variable references unknown dimension")
)

// File is an in-memory dataset, buildable and serializable.
type File struct {
	Dims   []Dim
	Attrs  map[string]string
	varsBy map[string]*Var
	vars   []*Var
}

// New returns an empty dataset.
func New() *File {
	return &File{Attrs: map[string]string{}, varsBy: map[string]*Var{}}
}

// AddDim defines a dimension.
func (f *File) AddDim(name string, n int) error {
	if n <= 0 {
		return fmt.Errorf("cdf: dimension %q has non-positive length %d", name, n)
	}
	if _, ok := f.dim(name); ok {
		return fmt.Errorf("%w: dimension %q", ErrDupeName, name)
	}
	f.Dims = append(f.Dims, Dim{name, n})
	return nil
}

func (f *File) dim(name string) (Dim, bool) {
	for _, d := range f.Dims {
		if d.Name == name {
			return d, true
		}
	}
	return Dim{}, false
}

// Shape returns the dimension lengths of a variable.
func (f *File) Shape(varName string) ([]int, error) {
	v, ok := f.varsBy[varName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVar, varName)
	}
	shape := make([]int, len(v.Dims))
	for i, dn := range v.Dims {
		d, ok := f.dim(dn)
		if !ok {
			return nil, fmt.Errorf("%w: %q", errDimUnknown, dn)
		}
		shape[i] = d.Len
	}
	return shape, nil
}

// AddVar defines a variable and stores its data (row-major, len must
// equal the product of its dimension lengths).
func (f *File) AddVar(name string, typ Type, dims []string, attrs map[string]string, data []float64) error {
	if _, dup := f.varsBy[name]; dup {
		return fmt.Errorf("%w: variable %q", ErrDupeName, name)
	}
	n := 1
	for _, dn := range dims {
		d, ok := f.dim(dn)
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchDim, dn)
		}
		n *= d.Len
	}
	if len(data) != n {
		return fmt.Errorf("%w: var %q needs %d values, got %d", ErrShape, name, n, len(data))
	}
	if attrs == nil {
		attrs = map[string]string{}
	}
	v := &Var{Name: name, Type: typ, Dims: append([]string(nil), dims...), Attrs: attrs, data: data}
	f.vars = append(f.vars, v)
	f.varsBy[name] = v
	return nil
}

// Vars lists variable names in definition order.
func (f *File) Vars() []string {
	out := make([]string, len(f.vars))
	for i, v := range f.vars {
		out[i] = v.Name
	}
	return out
}

// VarInfo returns the variable's metadata.
func (f *File) VarInfo(name string) (Var, error) {
	v, ok := f.varsBy[name]
	if !ok {
		return Var{}, fmt.Errorf("%w: %q", ErrNoSuchVar, name)
	}
	return Var{Name: v.Name, Type: v.Type, Dims: append([]string(nil), v.Dims...), Attrs: v.Attrs}, nil
}

// ReadAll returns a copy of the variable's full data.
func (f *File) ReadAll(name string) ([]float64, error) {
	v, ok := f.varsBy[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVar, name)
	}
	return append([]float64(nil), v.data...), nil
}

// ReadSlab extracts the hyperslab [start[i], start[i]+count[i]) over each
// dimension, returned row-major.
func (f *File) ReadSlab(name string, start, count []int) ([]float64, error) {
	v, ok := f.varsBy[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVar, name)
	}
	shape, err := f.Shape(name)
	if err != nil {
		return nil, err
	}
	if len(start) != len(shape) || len(count) != len(shape) {
		return nil, fmt.Errorf("%w: rank mismatch", ErrBadSlab)
	}
	total := 1
	for i := range shape {
		if start[i] < 0 || count[i] <= 0 || start[i]+count[i] > shape[i] {
			return nil, fmt.Errorf("%w: dim %d: [%d,%d) of %d", ErrBadSlab, i, start[i], start[i]+count[i], shape[i])
		}
		total *= count[i]
	}
	// Row-major strides.
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	out := make([]float64, 0, total)
	idx := make([]int, len(shape))
	for {
		off := 0
		for i := range idx {
			off += (start[i] + idx[i]) * strides[i]
		}
		// Copy the innermost contiguous run at once.
		last := len(shape) - 1
		run := count[last]
		out = append(out, v.data[off:off+run]...)
		// Advance the multi-index, skipping the innermost dimension.
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < count[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// --- serialization ---

// Encode writes the dataset in the ESG-CDF binary layout.
func (f *File) Encode(w io.Writer) error {
	bw := &countingWriter{w: w}
	write := func(v any) error { return binary.Write(bw, binary.BigEndian, v) }
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := write(uint32(len(f.Dims))); err != nil {
		return err
	}
	for _, d := range f.Dims {
		if err := writeString(bw, d.Name); err != nil {
			return err
		}
		if err := write(uint64(d.Len)); err != nil {
			return err
		}
	}
	if err := writeAttrs(bw, f.Attrs); err != nil {
		return err
	}
	if err := write(uint32(len(f.vars))); err != nil {
		return err
	}
	for _, v := range f.vars {
		if err := writeString(bw, v.Name); err != nil {
			return err
		}
		if err := write(uint8(v.Type)); err != nil {
			return err
		}
		if err := write(uint32(len(v.Dims))); err != nil {
			return err
		}
		for _, dn := range v.Dims {
			if err := writeString(bw, dn); err != nil {
				return err
			}
		}
		if err := writeAttrs(bw, v.Attrs); err != nil {
			return err
		}
		if err := write(uint64(len(v.data))); err != nil {
			return err
		}
		for _, x := range v.data {
			var err error
			switch v.Type {
			case Float64:
				err = write(math.Float64bits(x))
			case Float32:
				err = write(math.Float32bits(float32(x)))
			case Int32:
				err = write(int32(x))
			default:
				err = fmt.Errorf("cdf: unknown type %v", v.Type)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Decode parses a dataset from r.
func Decode(r io.Reader) (*File, error) {
	br := r
	read := func(v any) error { return binary.Read(br, binary.BigEndian, v) }
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	f := New()
	var ndims uint32
	if err := read(&ndims); err != nil {
		return nil, err
	}
	if ndims > 1<<16 {
		return nil, errMalformed
	}
	for i := uint32(0); i < ndims; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var n uint64
		if err := read(&n); err != nil {
			return nil, err
		}
		if err := f.AddDim(name, int(n)); err != nil {
			return nil, err
		}
	}
	attrs, err := readAttrs(br)
	if err != nil {
		return nil, err
	}
	f.Attrs = attrs
	var nvars uint32
	if err := read(&nvars); err != nil {
		return nil, err
	}
	if nvars > 1<<20 {
		return nil, errMalformed
	}
	for i := uint32(0); i < nvars; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var typ uint8
		if err := read(&typ); err != nil {
			return nil, err
		}
		var nd uint32
		if err := read(&nd); err != nil {
			return nil, err
		}
		if nd > 64 {
			return nil, errMalformed
		}
		dims := make([]string, nd)
		for j := range dims {
			if dims[j], err = readString(br); err != nil {
				return nil, err
			}
		}
		vattrs, err := readAttrs(br)
		if err != nil {
			return nil, err
		}
		var count uint64
		if err := read(&count); err != nil {
			return nil, err
		}
		if count > 1<<32 {
			return nil, errMalformed
		}
		data := make([]float64, count)
		switch Type(typ) {
		case Float64:
			for j := range data {
				var b uint64
				if err := read(&b); err != nil {
					return nil, err
				}
				data[j] = math.Float64frombits(b)
			}
		case Float32:
			for j := range data {
				var b uint32
				if err := read(&b); err != nil {
					return nil, err
				}
				data[j] = float64(math.Float32frombits(b))
			}
		case Int32:
			for j := range data {
				var b int32
				if err := read(&b); err != nil {
					return nil, err
				}
				data[j] = float64(b)
			}
		default:
			return nil, fmt.Errorf("%w: type %d", errMalformed, typ)
		}
		if err := f.AddVar(name, Type(typ), dims, vattrs, data); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.BigEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeAttrs(w io.Writer, attrs map[string]string) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(attrs))); err != nil {
		return err
	}
	// Deterministic order.
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		if err := writeString(w, k); err != nil {
			return err
		}
		if err := writeString(w, attrs[k]); err != nil {
			return err
		}
	}
	return nil
}

func readAttrs(r io.Reader) (map[string]string, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, errMalformed
	}
	out := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := readString(r)
		if err != nil {
			return nil, err
		}
		v, err := readString(r)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Summary renders a header description ("ncdump -h" style).
func (f *File) Summary() string {
	var b strings.Builder
	b.WriteString("dimensions:\n")
	for _, d := range f.Dims {
		fmt.Fprintf(&b, "\t%s = %d\n", d.Name, d.Len)
	}
	b.WriteString("variables:\n")
	for _, v := range f.vars {
		fmt.Fprintf(&b, "\t%s %s(%s)\n", v.Type, v.Name, strings.Join(v.Dims, ", "))
		for _, k := range sortedKeys(v.Attrs) {
			fmt.Fprintf(&b, "\t\t%s:%s = %q\n", v.Name, k, v.Attrs[k])
		}
	}
	if len(f.Attrs) > 0 {
		b.WriteString("// global attributes:\n")
		for _, k := range sortedKeys(f.Attrs) {
			fmt.Fprintf(&b, "\t:%s = %q\n", k, f.Attrs[k])
		}
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sortStrings(ks)
	return ks
}
