package cdf

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestFile(t *testing.T) *File {
	t.Helper()
	f := New()
	f.Attrs["model"] = "pcm"
	if err := f.AddDim("time", 4); err != nil {
		t.Fatal(err)
	}
	if err := f.AddDim("lat", 3); err != nil {
		t.Fatal(err)
	}
	if err := f.AddDim("lon", 5); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 4*3*5)
	for i := range data {
		data[i] = float64(i)
	}
	if err := f.AddVar("tas", Float64, []string{"time", "lat", "lon"},
		map[string]string{"units": "K"}, data); err != nil {
		t.Fatal(err)
	}
	lat := []float64{-45, 0, 45}
	if err := f.AddVar("lat", Float32, []string{"lat"}, nil, lat); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddVarShapeChecks(t *testing.T) {
	f := New()
	f.AddDim("x", 3)
	if err := f.AddVar("v", Float64, []string{"x"}, nil, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if err := f.AddVar("v", Float64, []string{"y"}, nil, nil); !errors.Is(err, ErrNoSuchDim) {
		t.Fatalf("err = %v, want ErrNoSuchDim", err)
	}
	f.AddVar("v", Float64, []string{"x"}, nil, []float64{1, 2, 3})
	if err := f.AddVar("v", Float64, []string{"x"}, nil, []float64{1, 2, 3}); !errors.Is(err, ErrDupeName) {
		t.Fatalf("err = %v, want ErrDupeName", err)
	}
}

func TestReadSlabFull(t *testing.T) {
	f := buildTestFile(t)
	got, err := f.ReadSlab("tas", []int{0, 0, 0}, []int{4, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 || got[0] != 0 || got[59] != 59 {
		t.Fatalf("full slab wrong: len=%d first=%v last=%v", len(got), got[0], got[59])
	}
}

func TestReadSlabInterior(t *testing.T) {
	f := buildTestFile(t)
	// time=2, lat=1..2, lon=1..3  -> offsets 2*15 + lat*5 + lon
	got, err := f.ReadSlab("tas", []int{2, 1, 1}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{36, 37, 38, 41, 42, 43}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slab[%d] = %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestReadSlabBounds(t *testing.T) {
	f := buildTestFile(t)
	cases := [][2][]int{
		{{0, 0, 0}, {5, 3, 5}},  // too long in time
		{{-1, 0, 0}, {1, 1, 1}}, // negative start
		{{0, 0, 0}, {0, 1, 1}},  // zero count
		{{3, 2, 4}, {1, 1, 2}},  // runs past lon end
		{{0, 0}, {1, 1}},        // rank mismatch
	}
	for _, c := range cases {
		if _, err := f.ReadSlab("tas", c[0], c[1]); !errors.Is(err, ErrBadSlab) {
			t.Errorf("ReadSlab(%v,%v) err = %v, want ErrBadSlab", c[0], c[1], err)
		}
	}
	if _, err := f.ReadSlab("nope", []int{0}, []int{1}); !errors.Is(err, ErrNoSuchVar) {
		t.Errorf("missing var err = %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Attrs["model"] != "pcm" {
		t.Fatal("global attr lost")
	}
	if len(g.Dims) != 3 || g.Dims[1].Name != "lat" || g.Dims[1].Len != 3 {
		t.Fatalf("dims = %v", g.Dims)
	}
	vi, err := g.VarInfo("tas")
	if err != nil {
		t.Fatal(err)
	}
	if vi.Attrs["units"] != "K" || vi.Type != Float64 {
		t.Fatalf("varinfo = %+v", vi)
	}
	a, _ := f.ReadAll("tas")
	b, _ := g.ReadAll("tas")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("data[%d]: %v != %v", i, a[i], b[i])
		}
	}
}

func TestFloat32PrecisionPreserved(t *testing.T) {
	f := New()
	f.AddDim("x", 2)
	f.AddVar("v", Float32, []string{"x"}, nil, []float64{1.5, -2.25})
	var buf bytes.Buffer
	f.Encode(&buf)
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.ReadAll("v")
	if got[0] != 1.5 || got[1] != -2.25 {
		t.Fatalf("float32 round trip: %v", got)
	}
}

func TestInt32Truncation(t *testing.T) {
	f := New()
	f.AddDim("x", 1)
	f.AddVar("v", Int32, []string{"x"}, nil, []float64{42})
	var buf bytes.Buffer
	f.Encode(&buf)
	g, _ := Decode(&buf)
	got, _ := g.ReadAll("v")
	if got[0] != 42 {
		t.Fatalf("int32 round trip: %v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NCDF0000"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode(bytes.NewReader(Magic[:])); err == nil {
		t.Fatal("truncated file decoded")
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	f := buildTestFile(t)
	s := f.Summary()
	for _, want := range []string{"time = 4", "lat = 3", "float64 tas(time, lat, lon)", `tas:units`, `"pcm"`} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// quick-check: encode/decode round trip preserves arbitrary float64 data
// and any in-range hyperslab equals the same region of the full array.
func TestQuickRoundTripAndSlabs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nt, ny, nx := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		f := New()
		f.AddDim("t", nt)
		f.AddDim("y", ny)
		f.AddDim("x", nx)
		data := make([]float64, nt*ny*nx)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		if err := f.AddVar("v", Float64, []string{"t", "y", "x"}, nil, data); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			return false
		}
		g, err := Decode(&buf)
		if err != nil {
			return false
		}
		// Random slab.
		st := []int{rng.Intn(nt), rng.Intn(ny), rng.Intn(nx)}
		ct := []int{1 + rng.Intn(nt-st[0]), 1 + rng.Intn(ny-st[1]), 1 + rng.Intn(nx-st[2])}
		slab, err := g.ReadSlab("v", st, ct)
		if err != nil {
			return false
		}
		i := 0
		for a := 0; a < ct[0]; a++ {
			for b := 0; b < ct[1]; b++ {
				for c := 0; c < ct[2]; c++ {
					want := data[(st[0]+a)*ny*nx+(st[1]+b)*nx+(st[2]+c)]
					if slab[i] != want && !(math.IsNaN(slab[i]) && math.IsNaN(want)) {
						return false
					}
					i++
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeMetadata(t *testing.T) {
	if Float64.Size() != 8 || Float32.Size() != 4 || Int32.Size() != 4 {
		t.Fatal("type sizes wrong")
	}
	if Type(99).Size() != 0 {
		t.Fatal("unknown type size")
	}
	if Float64.String() != "float64" || Type(99).String() == "" {
		t.Fatal("type strings wrong")
	}
}

func TestVarsOrder(t *testing.T) {
	f := buildTestFile(t)
	vars := f.Vars()
	if len(vars) != 2 || vars[0] != "tas" || vars[1] != "lat" {
		t.Fatalf("vars = %v", vars)
	}
}

func TestAddDimValidation(t *testing.T) {
	f := New()
	if err := f.AddDim("x", 0); err == nil {
		t.Fatal("zero-length dim accepted")
	}
	f.AddDim("x", 2)
	if err := f.AddDim("x", 3); !errors.Is(err, ErrDupeName) {
		t.Fatalf("dupe dim err = %v", err)
	}
}
