package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/telemetry"
	"esgrid/internal/vtime"
)

// --- S16: hierarchical telemetry — observer cost and sketch fidelity ---
//
// The paper's operators watched the SC'00 hour through NetLogger
// streams shipped host-by-host to one display (§3.4) — a flat observer
// path that scales with hosts. S16 measures the alternative this repo
// builds: hosts fold mergeable sketches locally, sites fold hosts, and
// a fanout-bounded tree folds sites to one grid root, so the traffic
// that crosses the wide area scales with sites while the root still
// answers grid-wide quantile queries. The sweep varies hosts at fixed
// sites (WAN bytes must stay near-flat) and sites at fixed hosts per
// site (WAN bytes must grow), checks the root's folded histogram is
// bit-identical to a flat fold of every host registry, checks grid
// quantiles land within one log-bucket of the exact sorted-sample
// ground truth, and replays one degraded run to show the SLO burn-rate
// alerts firing off the folded stream.

// TelemetryConfig parameterises the S16 sweep.
type TelemetryConfig struct {
	Seed  int64
	Ticks int
	// Cells lists (sites, hostsPerSite) sweep points; defaults cover
	// host-scaling at fixed sites and site-scaling at fixed hosts.
	Cells [][2]int
}

// TelemetryCell is one sweep point's measured outcome.
type TelemetryCell struct {
	Sites, HostsPer, Hosts int
	// WANBytes/WANFrames: traffic above the leaf tier — what actually
	// crosses the wide area to reach the observer.
	WANBytes, WANFrames int64
	// LeafBytes: the per-host reports that stay inside each site; a
	// flat NetLogger-style stream would ship these to the observer.
	LeafBytes   int64
	SketchExact bool // root fold == flat fold of all host registries
	// MaxQErrBuckets is the worst log-bucket distance between the grid
	// p50/p99/p999 and the exact sorted-sample quantiles.
	MaxQErrBuckets int
	GoodputBps     float64
}

// TelemetryResult is the full S16 run.
type TelemetryResult struct {
	Config TelemetryConfig
	Cells  []TelemetryCell
	// FanoutIdentical: the reference cell's grid snapshots and alert
	// stream are byte-identical at fanout 2, 4 and 8.
	FanoutIdentical bool
	// SLOAlerts counts burn-rate alerts from the degraded scenario;
	// ReplayJSONL is that scenario's full telemetry stream (grid
	// snapshots interleaved with alerts) for esgmon -grid -replay.
	SLOAlerts   int
	ReplayJSONL string
}

// telemetryRun is one plane execution plus its ground truth.
type telemetryRun struct {
	jsonl    string
	alerts   string
	lastSum  telemetry.Summary
	lastJSON string
	traffic  []telemetry.TierTraffic
	grids    []telemetry.GridSnapshot
	nAlerts  int
	samples  []float64 // every stage.retr observation, all hosts
	flatJSON string    // flat fold of all host registries
}

// runTelemetryPlane builds sites×hostsPer leaves behind site routers, a
// core, and an observer host; runs the plane for ticks; and returns the
// published streams plus the flat-fold ground truth.
func runTelemetryPlane(seed int64, sites, hostsPer, fanout, ticks int, slo telemetry.SLO, degrade bool) (telemetryRun, error) {
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	info, err := mds.New(ldapd.NewDir())
	if err != nil {
		return telemetryRun{}, err
	}
	p, err := telemetry.New(telemetry.Config{
		Clock: clk, Tick: time.Second, Ticks: ticks, Fanout: fanout,
		SLO: slo, Info: info,
	})
	if err != nil {
		return telemetryRun{}, err
	}

	root := n.AddHost("obs", simnet.HostConfig{})
	n.AddLink("obs", "core", simnet.LinkConfig{CapacityBps: 622e6, Delay: 5 * time.Millisecond})
	p.SetRoot(root)

	var regs []*netlogger.Registry
	for s := 0; s < sites; s++ {
		site := fmt.Sprintf("s%02d", s)
		router := "r" + site
		n.AddLink(router, "core", simnet.LinkConfig{CapacityBps: 622e6, Delay: 10 * time.Millisecond})
		agg := n.AddHost("ag"+site, simnet.HostConfig{})
		n.AddLink("ag"+site, router, simnet.LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})
		if err := p.AddSite(site, agg); err != nil {
			return telemetryRun{}, err
		}
		for h := 0; h < hostsPer; h++ {
			name := fmt.Sprintf("h%sx%03d", site, h)
			leaf := n.AddHost(name, simnet.HostConfig{})
			n.AddLink(name, router, simnet.LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})
			reg, err := p.AddLeaf(site, leaf, nil)
			if err != nil {
				return telemetryRun{}, err
			}
			regs = append(regs, reg)
		}
	}

	// Per-host workload: stage latencies and byte deliveries observed
	// mid-tick from per-host seeded streams. When degrading, site s00's
	// hosts turn slow and quiet after tick 1 so the grid SLO burns
	// through. perHost collects every stage.retr sample for the exact
	// ground truth; slot i is only written by leaf i's goroutine.
	perHost := make([][]float64, len(regs))
	workload := func(idx int, reg *netlogger.Registry) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(idx)))
		off := time.Duration(150+idx%700) * time.Millisecond
		slowSite := degrade && idx < hostsPer // site s00 hosts come first
		for i := 0; i < ticks; i++ {
			clk.Sleep(off)
			lat := 0.05 + rng.Float64()*1.1
			bytes := float64(2_000_000 + rng.Intn(1_000_000))
			if slowSite && i >= 1 {
				lat = 6 + rng.Float64()*4
				bytes = 1000
			}
			reg.LogHist("stage.retr").Observe(lat)
			perHost[idx] = append(perHost[idx], lat)
			reg.LogHist("stage.stor").Observe(0.02 + rng.ExpFloat64()*0.3)
			reg.Counter("bytes.total").Add(bytes)
			reg.Gauge("queue.depth").Set(float64(rng.Intn(12)))
			clk.Sleep(time.Second - off)
		}
	}

	var runErr error
	clk.Run(func() {
		if runErr = p.Start(); runErr != nil {
			return
		}
		for i, reg := range regs {
			i, reg := i, reg
			clk.Go(func() { workload(i, reg) })
		}
		runErr = p.Wait()
	})
	if runErr != nil {
		return telemetryRun{}, runErr
	}

	flat := telemetry.Summary{}
	for _, reg := range regs {
		flat = telemetry.Merge(flat, telemetry.Summary{Hosts: 1, RegistrySnapshot: reg.Mergeable()})
	}
	last := p.LastSummary()
	flat.Tick = last.Tick
	flatJSON, err := json.Marshal(flat)
	if err != nil {
		return telemetryRun{}, err
	}
	lastJSON, err := json.Marshal(last)
	if err != nil {
		return telemetryRun{}, err
	}

	var samples []float64
	for _, hs := range perHost {
		samples = append(samples, hs...)
	}
	return telemetryRun{
		jsonl: p.TelemetryJSONL(), alerts: p.AlertJSONL(),
		lastSum: last, lastJSON: string(lastJSON), flatJSON: string(flatJSON),
		traffic: p.Traffic(), grids: p.Grids(),
		nAlerts: len(p.Alerts()), samples: samples,
	}, nil
}

// exactQuantile is the sorted-sample ground truth the sketch is judged
// against.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// Same zero-based rank convention as LogHistogram.Quantile, so the
	// only divergence left to measure is the sketch's bucketing error.
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func (r telemetryRun) cell(sites, hostsPer int) TelemetryCell {
	c := TelemetryCell{Sites: sites, HostsPer: hostsPer, Hosts: sites * hostsPer}
	for _, t := range r.traffic {
		if t.Tier == "t0:leaf" {
			c.LeafBytes += t.Bytes
		} else {
			c.WANBytes += t.Bytes
			c.WANFrames += t.Frames
		}
	}
	c.SketchExact = r.lastJSON == r.flatJSON

	sorted := append([]float64(nil), r.samples...)
	sort.Float64s(sorted)
	if h, ok := r.lastSum.Hist("stage.retr"); ok {
		for _, q := range []float64{0.5, 0.99, 0.999} {
			d := netlogger.LogBucketDistance(h.Quantile(q), exactQuantile(sorted, q))
			if d > c.MaxQErrBuckets {
				c.MaxQErrBuckets = d
			}
		}
	} else {
		c.MaxQErrBuckets = -1
	}
	if len(r.grids) > 0 {
		c.GoodputBps = r.grids[len(r.grids)-1].GoodputBps
	}
	return c
}

// RunTelemetry executes the S16 sweep.
func RunTelemetry(cfg TelemetryConfig) (TelemetryResult, error) {
	if cfg.Ticks <= 0 {
		cfg.Ticks = 6
	}
	if len(cfg.Cells) == 0 {
		cfg.Cells = [][2]int{{4, 8}, {8, 8}, {16, 8}, {8, 16}, {8, 32}}
	}
	res := TelemetryResult{Config: cfg}

	for _, cell := range cfg.Cells {
		sites, hostsPer := cell[0], cell[1]
		run, err := runTelemetryPlane(cfg.Seed, sites, hostsPer, 4, cfg.Ticks, telemetry.SLO{}, false)
		if err != nil {
			return res, fmt.Errorf("cell %dx%d: %w", sites, hostsPer, err)
		}
		res.Cells = append(res.Cells, run.cell(sites, hostsPer))
	}

	// Determinism across tree shapes: same seed, same published bytes
	// at every fanout.
	res.FanoutIdentical = true
	var ref telemetryRun
	for i, fanout := range []int{2, 4, 8} {
		run, err := runTelemetryPlane(cfg.Seed, 8, 4, fanout, cfg.Ticks, telemetry.SLO{}, false)
		if err != nil {
			return res, fmt.Errorf("fanout %d: %w", fanout, err)
		}
		if i == 0 {
			ref = run
		} else if run.jsonl != ref.jsonl || run.alerts != ref.alerts || run.lastJSON != ref.lastJSON {
			res.FanoutIdentical = false
		}
	}

	// Degraded scenario: site s00 goes slow and quiet, the grid SLO
	// burns through, alerts land on the stream esgmon replays.
	slo := telemetry.SLO{StageP999Max: 4 * time.Second, GoodputMinBps: 8e6, Burn: 3}
	deg, err := runTelemetryPlane(cfg.Seed+1, 4, 4, 4, cfg.Ticks, slo, true)
	if err != nil {
		return res, fmt.Errorf("slo scenario: %w", err)
	}
	res.SLOAlerts = deg.nAlerts
	res.ReplayJSONL = deg.jsonl
	return res, nil
}

// Rows renders the S16 table.
func (r TelemetryResult) Rows() []Row {
	rows := []Row{}
	for _, c := range r.Cells {
		ratio := 0.0
		if c.LeafBytes > 0 {
			ratio = float64(c.WANBytes) / float64(c.LeafBytes)
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("%2d sites x %2d hosts", c.Sites, c.HostsPer),
			Value: fmt.Sprintf("WAN %7.1f KB (%3d fr)  flat %8.1f KB  ratio %.2f  exact=%v  qerr<=%d bkt  %s",
				float64(c.WANBytes)/1e3, c.WANFrames, float64(c.LeafBytes)/1e3,
				ratio, c.SketchExact, c.MaxQErrBuckets, mbps(c.GoodputBps)),
		})
	}
	rows = append(rows, Row{
		Label: "fanout determinism",
		Value: fmt.Sprintf("grid+alert streams byte-identical at fanout {2,4,8}: %v", r.FanoutIdentical),
	})
	rows = append(rows, Row{
		Label: "SLO burn scenario",
		Value: fmt.Sprintf("%d grid alerts after site s00 degrades (burn %d ticks)", r.SLOAlerts, 3),
	})
	return rows
}
