package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"esgrid/internal/chaos"
	"esgrid/internal/esgrpc"
	"esgrid/internal/flight"
	"esgrid/internal/gridftp"
	"esgrid/internal/hrm"
	"esgrid/internal/ldapd"
	"esgrid/internal/netlogger"
	"esgrid/internal/replica"
	"esgrid/internal/rm"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// ChaosConfig parameterizes S13: a multi-file replication on the
// Figure 8 topology (plus a tape-backed second replica site) run under
// an escalating randomized fault sweep, with every run audited by the
// chaos.Invariants checker.
type ChaosConfig struct {
	Seed     int64
	Files    int
	FileMB   int64
	NICBps   float64
	DiskBps  float64
	RTT      time.Duration
	LossRate float64
	// Levels is the fault sweep: one run per entry, injecting that many
	// randomized faults.
	Levels []int
	// MaxOutage caps a single fault's duration; it must stay well under
	// the retry budget (MaxAttempts × RetryBackoff) or completion is not
	// recoverable.
	MaxOutage    time.Duration
	RetryBackoff time.Duration
	MaxAttempts  int
	// WallProfile turns on the sampled wall-time core profiler for this
	// run (host-machine measurements: useful interactively via esgprof,
	// never part of the deterministic record stream).
	WallProfile bool
	// Workers sets the event core's parallel component executor width
	// (0 or 1 = sequential reference; results are byte-identical).
	Workers int
}

// DefaultChaosConfig keeps runs small enough for the test suite while
// still letting several faults land mid-transfer.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:         11,
		Files:        4,
		FileMB:       16,
		NICBps:       100e6,
		DiskBps:      82e6,
		RTT:          24 * time.Millisecond,
		LossRate:     3e-4,
		Levels:       []int{0, 2, 4, 8},
		MaxOutage:    4 * time.Second,
		RetryBackoff: time.Second,
		MaxAttempts:  30,
	}
}

// ChaosRun is one schedule execution: the raw material for both the
// sweep table and the invariant audit.
type ChaosRun struct {
	Elapsed     time.Duration
	Activations int
	Attempts    int // total transfer attempts across files
	Files       []chaos.FileResult
	Report      chaos.Report
	JSONL       string
	// Flight is the run's always-on flight recorder: the retained core
	// event window plus connection/allocator records, ready to dump when
	// an invariant audit fails or to walk a retry's provenance chain.
	Flight *flight.Recorder
	// Vitals is the core profiler's end-of-run snapshot (event core,
	// ring occupancy, CSR-cache hit rate).
	Vitals flight.Vitals
	// WallText is the rendered wall-attribution table when
	// Config.WallProfile was set (empty otherwise).
	WallText string
}

// flightDisabled turns off the always-on recorder for the
// pure-observer test, which proves an instrumented run and a bare run
// of the same seed produce byte-identical event streams. Never set
// outside tests.
var flightDisabled bool

// GoodputBps is useful payload delivered per wall second.
func (r ChaosRun) GoodputBps(totalBytes int64) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(totalBytes) * 8 / r.Elapsed.Seconds()
}

// ChaosLevel is one row of the fault sweep.
type ChaosLevel struct {
	Faults      int
	Activations int
	Elapsed     time.Duration
	GoodputBps  float64
	Overhead    time.Duration // wall time beyond the fault-free baseline
	Refetch     int64         // re-requested bytes beyond file sizes
	Attempts    int
}

// ChaosResult is the full S13 sweep.
type ChaosResult struct {
	Config     ChaosConfig
	TotalBytes int64
	Levels     []ChaosLevel
}

// Rows renders the fault-sweep table.
func (r ChaosResult) Rows() []Row {
	rows := []Row{
		{"Replication payload", fmt.Sprintf("%d files × %d MB", r.Config.Files, r.Config.FileMB)},
		{"Invariants", "completion + hash equality + bounded re-fetch: all levels pass"},
	}
	for _, lv := range r.Levels {
		rows = append(rows, Row{
			Label: fmt.Sprintf("%2d fault(s) (%d activations)", lv.Faults, lv.Activations),
			Value: fmt.Sprintf("%-8s goodput %-12s overhead %-8s refetch %6.2f MB  attempts %d",
				durSeconds(lv.Elapsed), mbps(lv.GoodputBps),
				durSeconds(lv.Overhead), float64(lv.Refetch)/(1<<20), lv.Attempts),
		})
	}
	return rows
}

// chaosContent generates the deterministic file body for file idx: real
// bytes, so destination hashes can be checked against the source.
func chaosContent(idx int, size int64) []byte {
	buf := make([]byte, size)
	x := uint32(2463534242) + uint32(idx)*97
	for i := range buf {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		buf[i] = byte(x)
	}
	return buf
}

func hashHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// RunChaosSchedule executes one replication run under the given fault
// schedule and audits it. The topology extends Figure 8's
// dallas/isp/anl path into a replication mesh: ncar (disk replica) and
// lbnl (tape-backed replica behind an HRM) both reach the anl
// destination through the isp node, and the RM falls over between them
// as faults land.
func RunChaosSchedule(cfg ChaosConfig, sched chaos.Schedule) (ChaosRun, error) {
	if cfg.Files <= 0 || cfg.FileMB <= 0 {
		return ChaosRun{}, fmt.Errorf("experiments: bad chaos config %+v", cfg)
	}
	clk := vtime.NewSim(cfg.Seed)
	clk.SetWorkers(cfg.Workers)
	n := simnet.New(clk)
	// The flight recorder rides along on every chaos run: core events via
	// the clock tap, connection transitions and allocator passes via the
	// simnet hook. It records only into preallocated rings, so it cannot
	// perturb the event stream (TestChaosFlightPureObserver pins this).
	rec := flight.New(0, 0)
	if !flightDisabled {
		rec.AttachCore(clk)
		n.AttachFlight(rec)
	}
	if cfg.WallProfile {
		clk.EnableWallProfile()
	}
	log := netlogger.NewLog(clk)
	tracer := netlogger.NewTracer(clk, log)
	metrics := netlogger.NewRegistry(clk)
	n.Instrument(log, metrics)

	n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("lbnl", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("anl", simnet.HostConfig{DefaultBufferBytes: 64 << 10, DiskBps: cfg.DiskBps})
	n.AddNode("isp")
	lNcar := n.AddLink("ncar", "isp", simnet.LinkConfig{CapacityBps: cfg.NICBps, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})
	lLbnl := n.AddLink("lbnl", "isp", simnet.LinkConfig{CapacityBps: cfg.NICBps, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})
	lAnl := n.AddLink("isp", "anl", simnet.LinkConfig{CapacityBps: 155e6, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})

	// Real content at both replica sites; the HRM at lbnl fronts the same
	// bytes with tape-staging semantics (its GridFTP server reads the
	// "disk cache" MemStore; the RM's hrm.stage RPC pays the tape time).
	size := cfg.FileMB << 20
	srcNcar, srcLbnl := gridftp.NewMemStore(), gridftp.NewMemStore()
	tape := hrm.New(clk, hrm.Config{
		Drives: 2, MountTime: 3 * time.Second, SeekTime: 500 * time.Millisecond,
		ReadBps: 200 << 20, CacheBytes: int64(cfg.Files+1) * size,
	})
	var names []string
	wantHash := map[string]string{}
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("pcm-%02d.nc", i)
		names = append(names, name)
		body := chaosContent(i, size)
		srcNcar.Put(name, body)
		srcLbnl.Put(name, body)
		wantHash[name] = hashHex(body)
		tape.AddTapeFile(hrm.TapeFile{Name: name, Size: size, Tape: fmt.Sprintf("T%d", i/2)})
	}

	dir := ldapd.NewDir()
	cat, err := replica.New(dir)
	if err != nil {
		return ChaosRun{}, err
	}
	if err := cat.CreateCollection("chaos", names); err != nil {
		return ChaosRun{}, err
	}
	if err := cat.AddLocation("chaos", replica.Location{
		Host: "ncar", Protocol: "gsiftp", Port: 2811, Path: "/d", Files: names,
	}); err != nil {
		return ChaosRun{}, err
	}
	if err := cat.AddLocation("chaos", replica.Location{
		Host: "lbnl", Protocol: "gsiftp", Port: 2811, Path: "/hpss", Files: names, Staged: true,
	}); err != nil {
		return ChaosRun{}, err
	}

	targets := chaos.NewTargets().
		AddLink("ncar-isp", lNcar).
		AddLink("lbnl-isp", lLbnl).
		AddLink("isp-anl", lAnl).
		AddHost("ncar", n.Host("ncar")).
		AddHost("lbnl", n.Host("lbnl")).
		AddStager("lbnl", tape)
	targets.SetDNS(n)
	runner := chaos.NewRunner(clk, log, targets)
	if err := runner.Validate(sched); err != nil {
		return ChaosRun{}, err
	}

	dest := gridftp.NewMemStore()
	run := ChaosRun{Flight: rec}
	var statuses []rm.FileStatus
	var rerr error
	clk.Run(func() {
		serve := func(host string, store gridftp.FileStore) bool {
			h := n.Host(host)
			srv, err := gridftp.NewServer(gridftp.Config{
				Clock: clk, Net: h, Host: host, Store: store, DiskBound: true,
				Log: log,
			})
			if err != nil {
				rerr = err
				return false
			}
			l, err := h.Listen(":2811")
			if err != nil {
				rerr = err
				return false
			}
			clk.Go(func() { srv.Serve(l) })
			return true
		}
		if !serve("ncar", srcNcar) || !serve("lbnl", srcLbnl) {
			return
		}
		rpc := esgrpc.NewServer(clk, nil)
		tape.RegisterRPC(rpc)
		rl, err := n.Host("lbnl").Listen(":4811")
		if err != nil {
			rerr = err
			return
		}
		clk.Go(func() { rpc.Serve(rl) })

		mgr, err := rm.New(rm.Config{
			Clock: clk, Net: n.Host("anl"), LocalHost: "anl", Replica: cat,
			DestStore: dest, Policy: rm.PolicyFirst,
			// A single stream and one file at a time keep equal-seed runs
			// byte-identical (see LifelineConfig); the chaos determinism
			// golden test depends on it.
			Parallelism: 1, BufferBytes: 1 << 20,
			CacheDataChannels: false,
			MaxConcurrent:     1,
			MaxAttempts:       cfg.MaxAttempts,
			RetryBackoff:      cfg.RetryBackoff,
			MonitorInterval:   time.Second,
			Log:               log,
			Tracer:            tracer,
			Metrics:           metrics,
		})
		if err != nil {
			rerr = err
			return
		}
		if err := runner.Apply(sched); err != nil {
			rerr = err
			return
		}
		var reqs []rm.FileRequest
		for _, f := range names {
			reqs = append(reqs, rm.FileRequest{Name: f, Size: size})
		}
		t0 := clk.Now()
		req, err := mgr.Submit("esg-user", "chaos", reqs)
		if err != nil {
			rerr = err
			return
		}
		rerr = req.Wait()
		run.Elapsed = clk.Now().Sub(t0)
		statuses = req.Status()
		// Let connection teardown drain before the run ends: the last
		// control conn's server side retires a FIN-drain after Wait
		// returns, and without this the conn.retired event would race
		// with Run's return instead of landing in the stream
		// deterministically.
		clk.Sleep(2 * time.Second)
	})
	// End-of-run profiler snapshot. CoreStats cycles the Sim's lock,
	// which also establishes the happens-before edge the recorder's
	// quiescence contract requires before reading its rings.
	run.Vitals = flight.Vitals{Core: clk.CoreStats(), Rec: rec.Stats()}
	run.Vitals.CSRHits, run.Vitals.CSRLookups = n.CSRStats()
	if cfg.WallProfile {
		run.WallText = flight.WallReport(clk)
	}
	if rerr != nil && statuses == nil {
		return run, rerr
	}

	run.Activations = runner.Activations()
	for _, st := range statuses {
		run.Attempts += st.Attempts
		fr := chaos.FileResult{
			Name: st.Name, Size: st.Size, RequestedBytes: st.RequestedBytes,
			Attempts: st.Attempts, Done: st.State == rm.StateDone, Err: st.Error,
			WantHash: wantHash[st.Name],
		}
		if body, ok := dest.Get(st.Name); ok {
			fr.GotHash = hashHex(body)
		}
		run.Files = append(run.Files, fr)
	}
	inv := chaos.Invariants{
		// A single activation can kill at most the one in-flight transfer
		// (MaxConcurrent=1), forcing at worst a whole-file re-request.
		MaxRefetchBytesPerFault: size,
		RetryBackoff:            cfg.RetryBackoff,
		Slack:                   time.Millisecond,
	}
	run.Report = inv.Check(run.Files, log.Events(), tracer.Snapshot(), run.Activations)
	run.JSONL = log.JSONL()
	return run, nil
}

// chaosHorizon estimates the clean-run wall time, so randomized fault
// start times land while transfers are still in flight.
func chaosHorizon(cfg ChaosConfig) time.Duration {
	perFile := time.Duration(float64(cfg.FileMB<<20)*8/cfg.DiskBps*float64(time.Second)) + 2*time.Second
	return time.Duration(cfg.Files) * perFile
}

// ChaosScheduleFor draws the randomized schedule for one sweep level.
// Equal (config, level) pairs always yield the same schedule, which is
// what lets a failed soak run be replayed from its printed seed.
func ChaosScheduleFor(cfg ChaosConfig, seed int64, faults int) chaos.Schedule {
	return chaos.RandomSchedule(seed, chaos.RandomConfig{
		Horizon:   chaosHorizon(cfg),
		Faults:    faults,
		Links:     []string{"ncar-isp", "lbnl-isp", "isp-anl"},
		Hosts:     []string{"ncar", "lbnl"},
		Stagers:   []string{"lbnl"},
		DNS:       true,
		MaxOutage: cfg.MaxOutage,
	})
}

// RunChaos executes the S13 fault sweep: one audited replication run
// per level, escalating the injected fault count.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if len(cfg.Levels) == 0 {
		cfg.Levels = []int{0, 2, 4, 8}
	}
	res := ChaosResult{Config: cfg, TotalBytes: int64(cfg.Files) * (cfg.FileMB << 20)}
	var baseline time.Duration
	for li, faults := range cfg.Levels {
		sched := ChaosScheduleFor(cfg, cfg.Seed*1000+int64(li), faults)
		run, err := RunChaosSchedule(cfg, sched)
		if err != nil {
			return res, fmt.Errorf("level %d (%d faults): %w", li, faults, err)
		}
		if err := run.Report.Err(); err != nil {
			return res, fmt.Errorf("level %d (%d faults): %w", li, faults, err)
		}
		if li == 0 {
			baseline = run.Elapsed
		}
		res.Levels = append(res.Levels, ChaosLevel{
			Faults:      faults,
			Activations: run.Activations,
			Elapsed:     run.Elapsed,
			GoodputBps:  run.GoodputBps(res.TotalBytes),
			Overhead:    run.Elapsed - baseline,
			Refetch:     run.Report.RefetchBytes,
			Attempts:    run.Attempts,
		})
	}
	return res, nil
}
