//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. See skipUnderRace in differential_test.go for why two of the
// differential tests are gated on it.
const raceEnabled = true
