package experiments

import (
	"fmt"
	"sync"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// --- S11: simulator scalability — N concurrent clients (DESIGN.md) ---
//
// The paper's testbed tops out at eight striped pairs, but an ESG
// deployment serves an entire community: hundreds to thousands of
// concurrent downloads across many sites. This sweep measures how the
// simulator itself scales with the incremental component-scoped
// allocator: N clients spread over N/8 independent sites, all
// downloading concurrently, reporting simulated seconds per wall-clock
// second at each population.

// ScaleResult records one client-count sweep. Lat holds the per-client
// download-latency tail (p50/p99/p999/max) at each population — the
// distribution a mean would flatten: under fair sharing the last
// arrivals at a saturated site see multiples of the median.
type ScaleResult struct {
	Clients     []int
	SimElapsed  []time.Duration
	WallElapsed []time.Duration
	Bytes       []int64
	AllocPasses []uint64
	AllocFlows  []uint64
	Lat         []netlogger.Tail
	FileBytes   int64
}

const scaleSiteClients = 8

// RunScale runs the sweep. Each site is a GridFTP server on a 1 Gb/s
// access link with up to 8 clients on 100 Mb/s links behind a shared
// site router; sites are disjoint, so the allocator sees one component
// per site regardless of total population. Loss is zero and client
// start times are staggered deterministically, so a given seed always
// produces the same event trace.
func RunScale(seed int64, clients []int, fileMB int64) (ScaleResult, error) {
	return RunScaleWorkers(seed, clients, fileMB, 0)
}

// RunScaleWorkers is RunScale with the event core's parallel component
// executor set to the given lane count (0 or 1 = sequential reference).
// Every reported value except WallElapsed is byte-identical across
// worker counts — that invariant is what differential_test.go pins.
func RunScaleWorkers(seed int64, clients []int, fileMB int64, workers int) (ScaleResult, error) {
	if len(clients) == 0 {
		clients = []int{16, 64, 256, 1024}
	}
	if fileMB <= 0 {
		fileMB = 8
	}
	res := ScaleResult{Clients: clients, FileBytes: fileMB << 20}
	for _, nClients := range clients {
		sim, wall, bytes, passes, visited, tail, err := runScaleOnce(seed, nClients, res.FileBytes, workers)
		if err != nil {
			return res, err
		}
		res.SimElapsed = append(res.SimElapsed, sim)
		res.WallElapsed = append(res.WallElapsed, wall)
		res.Bytes = append(res.Bytes, bytes)
		res.AllocPasses = append(res.AllocPasses, passes)
		res.AllocFlows = append(res.AllocFlows, visited)
		res.Lat = append(res.Lat, tail)
	}
	return res, nil
}

func runScaleOnce(seed int64, nClients int, fileBytes int64, workers int) (sim, wall time.Duration, bytes int64, passes, visited uint64, tail netlogger.Tail, err error) {
	clk := vtime.NewSim(seed)
	clk.SetWorkers(workers)
	n := simnet.New(clk)
	nSites := (nClients + scaleSiteClients - 1) / scaleSiteClients
	for s := 0; s < nSites; s++ {
		srv := fmt.Sprintf("srv%04d", s)
		rtr := fmt.Sprintf("rtr%04d", s)
		n.AddHost(srv, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddNode(rtr)
		n.AddLink(srv, rtr, simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	}
	for c := 0; c < nClients; c++ {
		cli := fmt.Sprintf("cli%04d", c)
		rtr := fmt.Sprintf("rtr%04d", c/scaleSiteClients)
		n.AddHost(cli, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(cli, rtr, simnet.LinkConfig{CapacityBps: 100e6, Delay: 4 * time.Millisecond})
	}
	store := gridftp.NewVirtualStore()
	store.Put("f", fileBytes)
	lat := netlogger.NewLogHistogram()

	var mu sync.Mutex
	var rerr error
	fail := func(e error) {
		mu.Lock()
		if rerr == nil {
			rerr = e
		}
		mu.Unlock()
	}
	wallStart := time.Now() //esglint:wallclock S11 reports the real wall cost of simulating the scaled run
	clk.Run(func() {
		for s := 0; s < nSites; s++ {
			host := n.Host(fmt.Sprintf("srv%04d", s))
			srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: host, Host: host.Name(), Store: store})
			if err != nil {
				fail(err)
				return
			}
			l, err := host.Listen(":2811")
			if err != nil {
				fail(err)
				return
			}
			clk.Go(func() { srv.Serve(l) })
		}
		wg := vtime.NewWaitGroup(clk)
		for c := 0; c < nClients; c++ {
			c := c
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				// Unique per-client stagger keeps arrivals ordered and the
				// trace deterministic without serializing the downloads.
				clk.Sleep(time.Duration(c) * 500 * time.Microsecond)
				t0 := clk.Now()
				addr := fmt.Sprintf("srv%04d:2811", c/scaleSiteClients)
				cli, err := gridftp.Dial(gridftp.ClientConfig{
					Clock: clk, Net: n.Host(fmt.Sprintf("cli%04d", c)),
					Parallelism: 2, BufferBytes: 1 << 20,
				}, addr)
				if err != nil {
					fail(err)
					return
				}
				defer cli.Close()
				sink := gridftp.NewVirtualSink(fileBytes)
				st, err := cli.Get("f", sink)
				if err != nil {
					fail(err)
					return
				}
				// Dial-to-last-byte latency for this client, in virtual
				// time: the per-client experience the tail row reports.
				lat.ObserveDuration(clk.Now().Sub(t0))
				mu.Lock()
				bytes += st.Bytes
				mu.Unlock()
			})
		}
		wg.Wait()
		sim = clk.Now().Sub(vtime.Epoch)
	})
	wall = time.Since(wallStart) //esglint:wallclock S11 reports the real wall cost of simulating the scaled run
	passes, visited = n.AllocStats()
	return sim, wall, bytes, passes, visited, lat.Tail(), rerr
}

// Rows formats the sweep.
func (r ScaleResult) Rows() []Row {
	rows := make([]Row, 0, len(r.Clients))
	for i, c := range r.Clients {
		simS := r.SimElapsed[i].Seconds()
		wallS := r.WallElapsed[i].Seconds()
		ratio := 0.0
		if wallS > 0 {
			ratio = simS / wallS
		}
		flowsPerPass := 0.0
		if r.AllocPasses[i] > 0 {
			flowsPerPass = float64(r.AllocFlows[i]) / float64(r.AllocPasses[i])
		}
		// Per-client latency as a tail, not a mean: at a saturated site
		// the p999 client's wait is what an operator would be paged for.
		t := r.Lat[i]
		rows = append(rows, Row{
			Label: fmt.Sprintf("%4d clients", c),
			Value: fmt.Sprintf("sim %-8s wall %-10s %8.0f sim-s/wall-s  lat p50 %-7s p99 %-7s p999 %-7s %.1f flows/pass",
				fmt.Sprintf("%.1fs", simS), r.WallElapsed[i].Round(time.Millisecond),
				ratio, fmtSeconds(t.P50), fmtSeconds(t.P99), fmtSeconds(t.P999), flowsPerPass),
		})
	}
	return rows
}

// fmtSeconds renders a latency in seconds with enough precision for
// sub-second tails.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.2fs", s) }
