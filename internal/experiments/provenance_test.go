package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"esgrid/internal/flight"
	"esgrid/internal/vtime"
)

// TestProvenanceChain is the S15 acceptance check: a chaos-forced RM
// retry must be explained end to end — the chain walks from the
// retry-backoff fire back through the retained core window to an
// upstream network/protocol event, without leaving the experiments
// layer to do it.
func TestProvenanceChain(t *testing.T) {
	res, err := RunProvenance(DefaultProvenanceConfig(), 8)
	if err != nil {
		t.Fatalf("RunProvenance: %v", err)
	}
	if res.Run.Attempts <= res.Config.Files {
		t.Errorf("diagnosed run had no retries: attempts %d for %d files",
			res.Run.Attempts, res.Config.Files)
	}
	if vtime.SiteName(res.Retry.Site) != "rm.retry-backoff" {
		t.Fatalf("retry record at wrong site %q", vtime.SiteName(res.Retry.Site))
	}
	if len(res.Chain) < 2 {
		t.Fatalf("chain too shallow to explain anything: %d hops\n%s", len(res.Chain), res.Chart)
	}
	// The last hop is the retry itself; everything before it is cause.
	last := res.Chain[len(res.Chain)-1]
	if last.Seq != res.Retry.Seq {
		t.Errorf("chain does not end at the retry: seq %d vs %d", last.Seq, res.Retry.Seq)
	}
	sites := res.ChainSites()
	upstream := false
	for _, s := range sites {
		if s != "rm.retry-backoff" {
			upstream = true
		}
	}
	if !upstream {
		t.Errorf("chain never leaves the retry site: %v\n%s", sites, res.Chart)
	}
	for _, want := range []string{"rm.retry-backoff", "seq="} {
		if !strings.Contains(res.Chart, want) {
			t.Errorf("rendered chain missing %q:\n%s", want, res.Chart)
		}
	}
	rows := res.Rows()
	if len(rows) < 5 {
		t.Errorf("summary rows = %d, want >= 5", len(rows))
	}
}

// TestProvenanceDeterminism: equal configs reproduce the identical
// chain — the property that makes a printed chain a replayable bug
// report rather than a one-off observation.
func TestProvenanceDeterminism(t *testing.T) {
	a, err := RunProvenance(DefaultProvenanceConfig(), 8)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunProvenance(DefaultProvenanceConfig(), 8)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Chart != b.Chart {
		t.Fatalf("equal-config chains diverge:\nA:\n%s\nB:\n%s", a.Chart, b.Chart)
	}
	if a.Retry.Seq != b.Retry.Seq || a.Records != b.Records {
		t.Fatalf("equal-config provenance diverges: seq %d/%d records %d/%d",
			a.Retry.Seq, b.Retry.Seq, a.Records, b.Records)
	}
}

// TestChaosFlightDumpDeterministic extends the equal-seed guarantee to
// the flight recorder itself: two runs of the same schedule must dump
// byte-identical JSONL (virtual timestamps only — wall time never
// enters a record).
func TestChaosFlightDumpDeterministic(t *testing.T) {
	cfg := soakConfig(91)
	sched := ChaosScheduleFor(cfg, 91, 6)
	a, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	da, db := a.Flight.Dump(), b.Flight.Dump()
	if len(da) == 0 {
		t.Fatal("flight dump empty — recorder not attached?")
	}
	if !bytes.Equal(da, db) {
		la, lb := splitLines(string(da)), splitLines(string(db))
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				t.Fatalf("equal-seed flight dumps diverge at line %d:\n  A: %s\n  B: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("equal-seed flight dump lengths differ: %d vs %d lines", len(la), len(lb))
	}
	// The dump round-trips through the parser into the same records.
	recs, err := flight.ParseDump(bytes.NewReader(da))
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if len(recs) != len(a.Flight.Records()) {
		t.Fatalf("round-trip lost records: %d vs %d", len(recs), len(a.Flight.Records()))
	}
}

// TestChaosFlightPureObserver proves the recorder cannot perturb the
// simulation: the same seed and schedule run bare (no tap, no simnet
// hook) and instrumented must produce byte-identical NetLogger streams
// and identical timing.
func TestChaosFlightPureObserver(t *testing.T) {
	cfg := soakConfig(92)
	sched := ChaosScheduleFor(cfg, 92, 6)
	inst, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	flightDisabled = true
	defer func() { flightDisabled = false }()
	bare, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("bare run: %v", err)
	}
	if inst.JSONL != bare.JSONL {
		t.Fatal("flight recorder perturbed the event stream: instrumented and bare JSONL differ")
	}
	if inst.Elapsed != bare.Elapsed || inst.Activations != bare.Activations {
		t.Fatalf("flight recorder perturbed timing: elapsed %v/%v activations %d/%d",
			inst.Elapsed, bare.Elapsed, inst.Activations, bare.Activations)
	}
	if inst.Flight.Stats().CoreWritten == 0 {
		t.Error("instrumented run recorded no core events")
	}
	if bare.Flight.Stats().CoreWritten != 0 {
		t.Error("bare run recorded core events despite detached tap")
	}
}

// TestFlightDumpOnFailure exercises the CI failure path end to end:
// dumpFlightOnFailure must land a parseable dump in $ESG_FLIGHT_DIR.
func TestFlightDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("ESG_FLIGHT_DIR", dir)
	cfg := soakConfig(93)
	run, err := RunChaosSchedule(cfg, ChaosScheduleFor(cfg, 93, 4))
	if err != nil {
		t.Fatalf("RunChaosSchedule: %v", err)
	}
	dumpFlightOnFailure(t, run, "exercise-seed93")
	path := filepath.Join(dir, "exercise-seed93.flight.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	defer f.Close()
	recs, err := flight.ParseDump(f)
	if err != nil {
		t.Fatalf("dump unparseable: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("dump carried no records")
	}
}
