// Package experiments regenerates every table and figure of the paper's
// evaluation (§7), plus the ablation/sweep experiments DESIGN.md derives
// from the paper's claims. Each experiment builds its own simulated
// testbed, replays the workload, and returns typed results that
// cmd/esgbench and the root benchmarks format as the paper's rows.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Gbps/Mbps format helpers.
func gbps(bps float64) string { return fmt.Sprintf("%.2f Gb/s", bps/1e9) }
func mbps(bps float64) string { return fmt.Sprintf("%.1f Mb/s", bps/1e6) }

// Row is one labeled result (a line of a paper table).
type Row struct {
	Label string
	Value string
}

// Table formats rows like the paper's Table 1.
func Table(title string, rows []Row) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	width := 0
	for _, r := range rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	b.WriteString(strings.Repeat("-", width+26) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r.Label, r.Value)
	}
	return b.String()
}

// durSeconds formats a duration in whole seconds.
func durSeconds(d time.Duration) string {
	return fmt.Sprintf("%.0fs", d.Seconds())
}
