package experiments

import (
	"fmt"
	"math"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
	"esgrid/internal/nws"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// measureGet runs one GridFTP fetch on a fresh two-host topology and
// returns the achieved rate in bits/s.
func measureGet(seed int64, linkBps float64, owd time.Duration, loss float64,
	fileBytes int64, parallelism, buffer int) (float64, error) {

	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddLink("src", "dst", simnet.LinkConfig{CapacityBps: linkBps, Delay: owd, LossRate: loss})
	store := gridftp.NewVirtualStore()
	store.Put("f", fileBytes)
	var rate float64
	var rerr error
	clk.Run(func() {
		src := n.Host("src")
		srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: src, Host: "src", Store: store})
		if err != nil {
			rerr = err
			return
		}
		l, err := src.Listen(":2811")
		if err != nil {
			rerr = err
			return
		}
		clk.Go(func() { srv.Serve(l) })
		cli, err := gridftp.Dial(gridftp.ClientConfig{
			Clock: clk, Net: n.Host("dst"), Parallelism: parallelism, BufferBytes: buffer,
		}, "src:2811")
		if err != nil {
			rerr = err
			return
		}
		defer cli.Close()
		sink := gridftp.NewVirtualSink(fileBytes)
		st, err := cli.Get("f", sink)
		if err != nil {
			rerr = err
			return
		}
		if err := sink.Complete(); err != nil {
			rerr = err
			return
		}
		rate = st.Bps()
	})
	return rate, rerr
}

// --- S1: parallel TCP streams under loss (§6.1, Qiu et al.) ---

// ParallelSweepResult maps stream counts to achieved rates, with and
// without loss.
type ParallelSweepResult struct {
	Streams   []int
	LossyBps  []float64
	CleanBps  []float64
	LossRate  float64
	FileBytes int64
}

// RunParallelSweep measures rate vs parallelism on a clean and a lossy
// 622 Mb/s, 30 ms-RTT path.
func RunParallelSweep(seed int64, fileMB int64, streams []int, loss float64) (ParallelSweepResult, error) {
	if len(streams) == 0 {
		streams = []int{1, 2, 4, 8, 16}
	}
	if loss == 0 {
		loss = 3e-4
	}
	res := ParallelSweepResult{Streams: streams, LossRate: loss, FileBytes: fileMB << 20}
	for _, p := range streams {
		lossy, err := measureGet(seed, 622e6, 15*time.Millisecond, loss, res.FileBytes, p, 1<<20)
		if err != nil {
			return res, err
		}
		clean, err := measureGet(seed+1, 622e6, 15*time.Millisecond, 0, res.FileBytes, p, 1<<20)
		if err != nil {
			return res, err
		}
		res.LossyBps = append(res.LossyBps, lossy)
		res.CleanBps = append(res.CleanBps, clean)
	}
	return res, nil
}

// Rows formats the sweep.
func (r ParallelSweepResult) Rows() []Row {
	rows := make([]Row, 0, len(r.Streams))
	for i, p := range r.Streams {
		rows = append(rows, Row{
			Label: fmt.Sprintf("%2d stream(s)", p),
			Value: fmt.Sprintf("lossy %-12s clean %s", mbps(r.LossyBps[i]), mbps(r.CleanBps[i])),
		})
	}
	return rows
}

// --- S2: TCP buffer (bandwidth x delay) sweep (§7) ---

// BufferSweepResult maps buffer sizes to rates at several RTTs.
type BufferSweepResult struct {
	Buffers []int
	RTTs    []time.Duration
	// Bps[i][j] is the rate with Buffers[i] at RTTs[j].
	Bps [][]float64
}

// RunBufferSweep measures rate vs socket buffer on a 622 Mb/s path.
func RunBufferSweep(seed int64, fileMB int64, buffers []int, rtts []time.Duration) (BufferSweepResult, error) {
	if len(buffers) == 0 {
		buffers = []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	}
	if len(rtts) == 0 {
		rtts = []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond}
	}
	res := BufferSweepResult{Buffers: buffers, RTTs: rtts}
	for _, b := range buffers {
		var row []float64
		for _, rtt := range rtts {
			rate, err := measureGet(seed, 622e6, rtt/2, 0, fileMB<<20, 1, b)
			if err != nil {
				return res, err
			}
			row = append(row, rate)
		}
		res.Bps = append(res.Bps, row)
	}
	return res, nil
}

// Rows formats the sweep.
func (r BufferSweepResult) Rows() []Row {
	rows := make([]Row, 0, len(r.Buffers))
	for i, b := range r.Buffers {
		val := ""
		for j, rtt := range r.RTTs {
			val += fmt.Sprintf("rtt=%-4s %-12s", rtt, mbps(r.Bps[i][j]))
		}
		rows = append(rows, Row{Label: fmt.Sprintf("buffer %4d KB", b>>10), Value: val})
	}
	return rows
}

// --- S3: striping across hosts (§6.1) ---

// StripeSweepResult maps stripe width to rate.
type StripeSweepResult struct {
	Stripes []int
	Bps     []float64
}

// RunStripeSweep measures a striped retrieval with k stripe nodes whose
// access links are 200 Mb/s each behind a 1.6 Gb/s WAN.
func RunStripeSweep(seed int64, fileMB int64, widths []int) (StripeSweepResult, error) {
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	res := StripeSweepResult{Stripes: widths}
	for _, k := range widths {
		rate, err := measureStriped(seed, fileMB<<20, k)
		if err != nil {
			return res, err
		}
		res.Bps = append(res.Bps, rate)
	}
	return res, nil
}

func measureStriped(seed int64, fileBytes int64, k int) (float64, error) {
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddNode("wan")
	n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 4 << 20})
	n.AddLink("dst", "wan", simnet.LinkConfig{CapacityBps: 1.6e9, Delay: 5 * time.Millisecond})
	n.AddHost("ctl", simnet.HostConfig{DefaultBufferBytes: 4 << 20})
	n.AddLink("ctl", "wan", simnet.LinkConfig{CapacityBps: 622e6, Delay: 5 * time.Millisecond})
	var nodes []gridftp.DataNode
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("node%02d", i)
		h := n.AddHost(name, simnet.HostConfig{DefaultBufferBytes: 4 << 20})
		n.AddLink(name, "wan", simnet.LinkConfig{CapacityBps: 200e6, Delay: 5 * time.Millisecond})
		nodes = append(nodes, gridftp.DataNode{Net: h, Host: name})
	}
	store := gridftp.NewVirtualStore()
	store.Put("f", fileBytes)
	var rate float64
	var rerr error
	clk.Run(func() {
		srv, err := gridftp.NewServer(gridftp.Config{
			Clock: clk, Net: n.Host("ctl"), Host: "ctl", Store: store, DataNodes: nodes,
		})
		if err != nil {
			rerr = err
			return
		}
		l, _ := n.Host("ctl").Listen(":2811")
		clk.Go(func() { srv.Serve(l) })
		cli, err := gridftp.Dial(gridftp.ClientConfig{
			Clock: clk, Net: n.Host("dst"), Parallelism: 2, Striped: true, BufferBytes: 4 << 20,
		}, "ctl:2811")
		if err != nil {
			rerr = err
			return
		}
		defer cli.Close()
		sink := gridftp.NewVirtualSink(fileBytes)
		st, err := cli.Get("f", sink)
		if err != nil {
			rerr = err
			return
		}
		rate = st.Bps()
	})
	return rate, rerr
}

// Rows formats the sweep.
func (r StripeSweepResult) Rows() []Row {
	rows := make([]Row, 0, len(r.Stripes))
	for i, k := range r.Stripes {
		rows = append(rows, Row{Label: fmt.Sprintf("%d stripe node(s)", k), Value: mbps(r.Bps[i])})
	}
	return rows
}

// --- S7: 64-bit large file support (§7) ---

// LargeFileResult compares one 8 GB session against the pre-64-bit
// workaround of four 2 GB-capped sessions.
type LargeFileResult struct {
	SingleBps  float64
	ChunkedBps float64
	FileBytes  int64
}

// RunLargeFile measures both strategies on a gigabit path.
func RunLargeFile(seed int64, gb int64) (LargeFileResult, error) {
	if gb <= 0 {
		gb = 8
	}
	res := LargeFileResult{FileBytes: gb << 30}
	single, err := measureGet(seed, 1e9, 10*time.Millisecond, 0, res.FileBytes, 4, 4<<20)
	if err != nil {
		return res, err
	}
	res.SingleBps = single

	// Chunked: a fresh session (dial + slow start) per 2 GB chunk.
	clk := vtime.NewSim(seed + 1)
	n := simnet.New(clk)
	n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddLink("src", "dst", simnet.LinkConfig{CapacityBps: 1e9, Delay: 10 * time.Millisecond})
	store := gridftp.NewVirtualStore()
	const chunk = int64(2047 << 20) // just under the 2^31 limit
	nChunks := int((res.FileBytes + chunk - 1) / chunk)
	store.Put("f", res.FileBytes)
	var rerr error
	clk.Run(func() {
		src := n.Host("src")
		srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: src, Host: "src", Store: store})
		if err != nil {
			rerr = err
			return
		}
		l, _ := src.Listen(":2811")
		clk.Go(func() { srv.Serve(l) })
		t0 := clk.Now()
		sink := gridftp.NewVirtualSink(res.FileBytes)
		for i := 0; i < nChunks; i++ {
			cli, err := gridftp.Dial(gridftp.ClientConfig{
				Clock: clk, Net: n.Host("dst"), Parallelism: 4, BufferBytes: 4 << 20,
			}, "src:2811")
			if err != nil {
				rerr = err
				return
			}
			off := int64(i) * chunk
			size := chunk
			if off+size > res.FileBytes {
				size = res.FileBytes - off
			}
			if _, err := cli.GetRanges("f", sink, []gridftp.Extent{{Off: off, Len: size}}); err != nil {
				cli.Close()
				rerr = err
				return
			}
			cli.Close()
		}
		if err := sink.Complete(); err != nil {
			rerr = err
			return
		}
		res.ChunkedBps = float64(res.FileBytes) * 8 / clk.Now().Sub(t0).Seconds()
	})
	return res, rerr
}

// Rows formats the comparison.
func (r LargeFileResult) Rows() []Row {
	return []Row{
		{fmt.Sprintf("single %d GB session (64-bit offsets)", r.FileBytes>>30), mbps(r.SingleBps)},
		{"chunked into <2 GB sessions (SC'00 limit)", mbps(r.ChunkedBps)},
	}
}

// --- S8: CPU model ablation — interrupt coalescing and jumbo frames (§7) ---

// CPUModelResult maps host configurations to achieved single-host rates.
type CPUModelResult struct {
	Labels []string
	Bps    []float64
}

// RunCPUModel measures a gigabit host's CPU-bound throughput under the
// remedies §7 discusses.
func RunCPUModel(seed int64, fileMB int64) (CPUModelResult, error) {
	cases := []struct {
		label    string
		coalesce float64
		mss      int
	}{
		{"no interrupt coalescing", 1, 0},
		{"interrupt coalescing x4", 4, 0},
		{"interrupt coalescing x16", 16, 0},
		{"jumbo frames, no coalescing", 1, simnet.JumboMSS},
	}
	var res CPUModelResult
	for _, c := range cases {
		clk := vtime.NewSim(seed)
		n := simnet.New(clk)
		n.AddHost("src", simnet.HostConfig{CPU: simnet.GigabitHostCPU(c.coalesce), DefaultBufferBytes: 4 << 20, MSS: c.mss})
		n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 4 << 20, MSS: c.mss})
		n.AddLink("src", "dst", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
		store := gridftp.NewVirtualStore()
		store.Put("f", fileMB<<20)
		var rate float64
		clk.Run(func() {
			src := n.Host("src")
			srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: src, Host: "src", Store: store})
			if err != nil {
				return
			}
			l, _ := src.Listen(":2811")
			clk.Go(func() { srv.Serve(l) })
			cli, err := gridftp.Dial(gridftp.ClientConfig{
				Clock: clk, Net: n.Host("dst"), Parallelism: 4, BufferBytes: 4 << 20,
			}, "src:2811")
			if err != nil {
				return
			}
			defer cli.Close()
			sink := gridftp.NewVirtualSink(fileMB << 20)
			st, err := cli.Get("f", sink)
			if err != nil {
				return
			}
			rate = st.Bps()
		})
		res.Labels = append(res.Labels, c.label)
		res.Bps = append(res.Bps, rate)
	}
	return res, nil
}

// Rows formats the ablation.
func (r CPUModelResult) Rows() []Row {
	rows := make([]Row, len(r.Labels))
	for i := range r.Labels {
		rows[i] = Row{Label: r.Labels[i], Value: mbps(r.Bps[i])}
	}
	return rows
}

// --- S9: NWS forecaster accuracy (§5) ---

// ForecasterResult reports per-method mean absolute error on a WAN-like
// bandwidth series, normalized by the series mean.
type ForecasterResult struct {
	Methods []string
	NMAE    []float64
	Best    string
}

// RunForecasters evaluates the battery on a synthetic series with the
// character of WAN available-bandwidth traces: diurnal drift, congestion
// episodes, measurement noise.
func RunForecasters(seed int64, samples int) (ForecasterResult, error) {
	if samples <= 0 {
		samples = 2000
	}
	clk := vtime.NewSim(seed)
	a := nws.NewAdaptive()
	var mean float64
	level := 100.0
	congested := false
	for i := 0; i < samples; i++ {
		// Diurnal drift.
		base := 100 + 30*math.Sin(2*math.Pi*float64(i)/500)
		// Congestion episodes arrive and clear at random.
		if congested {
			if clk.Rand() < 0.05 {
				congested = false
			}
		} else if clk.Rand() < 0.01 {
			congested = true
		}
		level = base
		if congested {
			level = base * 0.35
		}
		v := level * (1 + 0.08*(2*clk.Rand()-1))
		a.Observe(v)
		mean += v
	}
	mean /= float64(samples)
	errs := a.Errors()
	res := ForecasterResult{}
	for _, name := range []string{"last", "mean", "median", "ewma", "ar1"} {
		res.Methods = append(res.Methods, name)
		res.NMAE = append(res.NMAE, errs[name]/mean)
	}
	best, _ := a.Best()
	res.Methods = append(res.Methods, "adaptive (NWS)")
	res.NMAE = append(res.NMAE, a.MAE()/mean)
	res.Best = best
	return res, nil
}

// Rows formats the accuracy table.
func (r ForecasterResult) Rows() []Row {
	rows := make([]Row, len(r.Methods))
	for i := range r.Methods {
		rows[i] = Row{Label: r.Methods[i], Value: fmt.Sprintf("normalized MAE %.3f", r.NMAE[i])}
	}
	rows = append(rows, Row{Label: "selected by adaptive", Value: r.Best})
	return rows
}

// --- F8b: channel caching ablation ---

// ChannelCacheResult compares repeated transfers with and without data
// channel caching.
type ChannelCacheResult struct {
	Transfers   int
	ColdElapsed time.Duration
	WarmElapsed time.Duration
	ColdBps     float64
	WarmBps     float64
}

// RunChannelCache measures n back-to-back 64 MB transfers on a 622 Mb/s,
// 60 ms-RTT path, with GSI re-authentication per session in the cold
// case — the exact dip mechanism Figure 8's caption describes.
func RunChannelCache(seed int64, transfers int) (ChannelCacheResult, error) {
	if transfers <= 0 {
		transfers = 10
	}
	res := ChannelCacheResult{Transfers: transfers}
	run := func(cache bool) (time.Duration, error) {
		clk := vtime.NewSim(seed)
		n := simnet.New(clk)
		n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
		n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
		n.AddLink("src", "dst", simnet.LinkConfig{CapacityBps: 622e6, Delay: 30 * time.Millisecond})
		store := gridftp.NewVirtualStore()
		const file = int64(64) << 20
		store.Put("f", file)
		var elapsed time.Duration
		var rerr error
		clk.Run(func() {
			src := n.Host("src")
			srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: src, Host: "src", Store: store})
			if err != nil {
				rerr = err
				return
			}
			l, _ := src.Listen(":2811")
			clk.Go(func() { srv.Serve(l) })
			t0 := clk.Now()
			if cache {
				cli, err := gridftp.Dial(gridftp.ClientConfig{
					Clock: clk, Net: n.Host("dst"), Parallelism: 4, BufferBytes: 1 << 20, CacheDataChannels: true,
				}, "src:2811")
				if err != nil {
					rerr = err
					return
				}
				defer cli.Close()
				for i := 0; i < transfers; i++ {
					sink := gridftp.NewVirtualSink(file)
					if _, err := cli.Get("f", sink); err != nil {
						rerr = err
						return
					}
				}
			} else {
				for i := 0; i < transfers; i++ {
					cli, err := gridftp.Dial(gridftp.ClientConfig{
						Clock: clk, Net: n.Host("dst"), Parallelism: 4, BufferBytes: 1 << 20,
					}, "src:2811")
					if err != nil {
						rerr = err
						return
					}
					sink := gridftp.NewVirtualSink(file)
					if _, err := cli.Get("f", sink); err != nil {
						cli.Close()
						rerr = err
						return
					}
					cli.Close()
				}
			}
			elapsed = clk.Now().Sub(t0)
		})
		return elapsed, rerr
	}
	var err error
	if res.ColdElapsed, err = run(false); err != nil {
		return res, err
	}
	if res.WarmElapsed, err = run(true); err != nil {
		return res, err
	}
	total := float64(transfers) * float64(64<<20) * 8
	res.ColdBps = total / res.ColdElapsed.Seconds()
	res.WarmBps = total / res.WarmElapsed.Seconds()
	return res, nil
}

// Rows formats the ablation.
func (r ChannelCacheResult) Rows() []Row {
	return []Row{
		{"transfers", fmt.Sprint(r.Transfers)},
		{"without channel caching (SC'00)", fmt.Sprintf("%s  (%v)", mbps(r.ColdBps), r.ColdElapsed.Round(time.Millisecond))},
		{"with channel caching (post-SC'00)", fmt.Sprintf("%s  (%v)", mbps(r.WarmBps), r.WarmElapsed.Round(time.Millisecond))},
		{"speedup", fmt.Sprintf("%.2fx", r.WarmBps/r.ColdBps)},
	}
}

// rateOfSeries is a helper exposing mean of a series in bps.
func rateOfSeries(s netlogger.Series) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
