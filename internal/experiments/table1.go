package experiments

import (
	"fmt"
	"sync"
	"time"

	"esgrid/internal/flight"
	"esgrid/internal/gridftp"
	"esgrid/internal/gsi"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// Table1Config parameterizes the SC'00 striped-transfer experiment (§7,
// Table 1): eight Linux workstations in the Dallas convention center
// sending a 2 GB file, partitioned 256 MB per server, to eight
// workstations at LBNL, with a new copy of each partition started when
// the previous is 25% complete, at most four simultaneous TCP streams per
// server (32 total), 1 MB tuned buffers, across the HSCC/NTON
// infrastructure of Figure 7 (2.5 Gb/s OC-48, 1.5 Gb/s allowed).
type Table1Config struct {
	Seed          int64
	Servers       int           // striped servers per side (paper: 8)
	MaxStreams    int           // max simultaneous transfers per server (paper: 4)
	PartitionMB   int64         // per-server file partition (paper: 256 = 2 GB / 8)
	BufferBytes   int           // socket buffer (paper: 1 MB)
	Duration      time.Duration // metered span (paper: 1 hour)
	AllowedWANBps float64       // SCinet allowance (paper: 1.5 Gb/s)
	WANCapBps     float64       // underlying OC-48 (2.5 Gb/s)
	RTT           time.Duration // Dallas <-> Berkeley (paper: 10-20 ms)
	// HandshakeCost is the per-side GSI public-key time; the SC'00
	// implementation re-authenticated every transfer (§7: "costly
	// breakdown, restart, and re-authentication").
	HandshakeCost time.Duration
	// ShowFloorFaults replays the exhibition-floor conditions the paper
	// reports (§7/Figure 8 narrative: power failure, DNS problems,
	// backbone problems) scaled to the metered duration.
	ShowFloorFaults bool
	// CacheDataChannels enables the post-SC'00 fix (ablation; the Table 1
	// run itself used the caching-free implementation).
	CacheDataChannels bool
	// Coalesce is the interrupt-coalescing factor of the GigE NICs
	// (paper: "we were, in fact, using interrupt coalescing at SC").
	Coalesce float64
	// JumboFrames uses 9000-byte frames (paper: router did not support
	// them, so the baseline is standard frames).
	JumboFrames bool
	// WANLossRate is the baseline per-packet loss probability on the
	// shared SCinet/HSCC path during clean periods.
	WANLossRate float64
	// Show-floor congestion is bursty: the path alternates between clean
	// spells (WANLossRate) and congestion episodes (CongestedLossRate),
	// with exponentially distributed dwell times. This is what separates
	// the 0.1 s and 5 s peaks from the one-hour sustained average in
	// Table 1.
	CongestedLossRate  float64
	CleanDwellMean     time.Duration
	CongestedDwellMean time.Duration
	// Workers sets the event core's parallel component executor width
	// (0 or 1 = sequential reference). Output is byte-identical either
	// way; this only changes wall-clock cost.
	Workers int
}

// DefaultTable1Config reproduces the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Seed:               2000,
		Servers:            8,
		MaxStreams:         4,
		PartitionMB:        256,
		BufferBytes:        1 << 20,
		Duration:           time.Hour,
		AllowedWANBps:      2.5e9, // administrative 1.5 Gb/s was not policed
		WANCapBps:          2.5e9,
		RTT:                15 * time.Millisecond,
		HandshakeCost:      450 * time.Millisecond,
		ShowFloorFaults:    true,
		Coalesce:           4,
		WANLossRate:        1.4e-3,
		CongestedLossRate:  5e-3,
		CleanDwellMean:     4 * time.Second,
		CongestedDwellMean: 12 * time.Second,
	}
}

// Table1Result mirrors the rows of Table 1.
type Table1Result struct {
	Config           Table1Config
	PeakBps100ms     float64
	PeakBps5s        float64
	SustainedBps     float64
	TotalBytes       float64
	TransfersStarted int
	TransfersDone    int
	Series           netlogger.Series // 5s aggregate-rate series
	// Flight is the run's always-on flight recorder; the differential
	// suite compares its dump byte-for-byte across worker counts.
	Flight *flight.Recorder
}

// Rows renders the result as the paper's table rows.
func (r Table1Result) Rows() []Row {
	return []Row{
		{"Striped servers at source location", fmt.Sprint(r.Config.Servers)},
		{"Striped servers at destination location", fmt.Sprint(r.Config.Servers)},
		{"Maximum simultaneous TCP streams per server", fmt.Sprint(r.Config.MaxStreams)},
		{"Maximum simultaneous TCP streams overall", fmt.Sprint(r.Config.Servers * r.Config.MaxStreams)},
		{"Peak transfer rate over 0.1 seconds", gbps(r.PeakBps100ms)},
		{"Peak transfer rate over 5 seconds", gbps(r.PeakBps5s)},
		{fmt.Sprintf("Sustained transfer rate over %s", durSeconds(r.Config.Duration)), mbps(r.SustainedBps)},
		{fmt.Sprintf("Total data transferred in %s", durSeconds(r.Config.Duration)), fmt.Sprintf("%.1f Gbytes", r.TotalBytes/1e9)},
	}
}

// sc00CPU models the SC'00 workstations: year-2000 hosts whose gigabit
// TCP path runs out of CPU well below line rate (§7: "the CPU was running
// at near 100% capacity").
func sc00CPU(coalesce float64) *simnet.CPUConfig {
	return &simnet.CPUConfig{
		PerByte:  2.8e-8, // copy/checksum path: ~36 MB/s alone
		PerFrame: 1.1e-5, // interrupt service: ~90k frames/s alone
		Coalesce: coalesce,
	}
}

// RunTable1 executes the experiment and returns the measured rows.
func RunTable1(cfg Table1Config) (Table1Result, error) {
	if cfg.Servers <= 0 || cfg.MaxStreams <= 0 || cfg.Duration <= 0 {
		return Table1Result{}, fmt.Errorf("experiments: bad table1 config %+v", cfg)
	}
	clk := vtime.NewSim(cfg.Seed)
	clk.SetWorkers(cfg.Workers)
	n := simnet.New(clk)
	rec := flight.New(0, 0)
	rec.AttachCore(clk)
	n.AttachFlight(rec)

	// Topology per §7 and Figure 7: cluster switches dual-bonded to exit
	// routers, OC-48 across HSCC/NTON, a policy cap at the SCinet
	// allowance. GigE NICs as host access links.
	n.AddNode("dallas-sw")
	n.AddNode("berkeley-sw")
	n.AddNode("scinet")
	n.AddLink("dallas-sw", "scinet", simnet.LinkConfig{CapacityBps: 2e9, Delay: time.Millisecond / 2})
	// The allowance link models the 1.5 Gb/s share of the 2.5 Gb/s OC-48.
	wanCap := cfg.AllowedWANBps
	if wanCap <= 0 || wanCap > cfg.WANCapBps {
		wanCap = cfg.WANCapBps
	}
	wan := n.AddLink("scinet", "nton", simnet.LinkConfig{CapacityBps: wanCap, Delay: cfg.RTT/2 - 2*time.Millisecond, LossRate: cfg.WANLossRate})
	n.AddLink("nton", "berkeley-sw", simnet.LinkConfig{CapacityBps: 2e9, Delay: time.Millisecond / 2})

	cpu := sc00CPU(cfg.Coalesce)
	hostCfg := simnet.HostConfig{CPU: cpu, DefaultBufferBytes: 64 << 10}
	srcNames := make([]string, cfg.Servers)
	dstNames := make([]string, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		srcNames[i] = fmt.Sprintf("dal%02d", i)
		dstNames[i] = fmt.Sprintf("lbl%02d", i)
		n.AddHost(srcNames[i], hostCfg)
		n.AddLink(srcNames[i], "dallas-sw", simnet.LinkConfig{CapacityBps: 1e9, Delay: 100 * time.Microsecond})
		n.AddHost(dstNames[i], hostCfg)
		n.AddLink(dstNames[i], "berkeley-sw", simnet.LinkConfig{CapacityBps: 1e9, Delay: 100 * time.Microsecond})
	}

	// GSI: one CA; every transfer authenticates (no session reuse in the
	// SC'00 implementation).
	ca, err := gsi.NewCA("SC00-CA")
	if err != nil {
		return Table1Result{}, err
	}
	trust := gsi.NewTrustStore(ca)
	partition := cfg.PartitionMB << 20

	res := Table1Result{Config: cfg, Flight: rec}
	var mu sync.Mutex

	clk.Run(func() {
		// One GridFTP server per Dallas host serving its partition.
		for i := 0; i < cfg.Servers; i++ {
			host := n.Host(srcNames[i])
			store := gridftp.NewVirtualStore()
			store.Put("partition.dat", partition)
			id, err := ca.Issue("/CN="+srcNames[i], vtime.Epoch, 240*time.Hour)
			if err != nil {
				return
			}
			srv, err := gridftp.NewServer(gridftp.Config{
				Clock: clk, Net: host, Host: srcNames[i], Store: store,
				Auth: &gsi.Config{Identity: id, Trust: trust, Clock: clk, HandshakeCost: cfg.HandshakeCost},
			})
			if err != nil {
				return
			}
			l, err := host.Listen(":2811")
			if err != nil {
				return
			}
			clk.Go(func() { srv.Serve(l) })
		}

		// Aggregate byte meter across all pairs, 0.1 s samples as the
		// SciNET instrumentation provided.
		sample := func() float64 {
			var total float64
			for i := range srcNames {
				total += n.TotalBytesBetween(srcNames[i], dstNames[i])
			}
			return total
		}
		meter := netlogger.NewMeter(clk, 100*time.Millisecond, sample)
		// Table 1 meters a fixed window; transfers still in flight when
		// it closes drain outside the measurement.
		clk.AfterFunc(cfg.Duration, meter.Stop)

		if cfg.ShowFloorFaults {
			scheduleShowFloor(clk, n, wan, cfg.Duration)
		}
		if cfg.CongestedLossRate > cfg.WANLossRate && cfg.CleanDwellMean > 0 && cfg.CongestedDwellMean > 0 {
			startCongestionProcess(clk, wan, cfg)
		}

		stop := clk.Now().Add(cfg.Duration)
		wg := vtime.NewWaitGroup(clk)
		for i := 0; i < cfg.Servers; i++ {
			i := i
			wg.Go(func() {
				runPipelinedPair(clk, n, ca, trust, cfg, srcNames[i], dstNames[i], partition, stop, &mu, &res)
			})
		}
		wg.Wait()
		meter.Stop()

		res.PeakBps100ms = meter.PeakRate(100*time.Millisecond) * 8
		res.PeakBps5s = meter.PeakRate(5*time.Second) * 8
		res.SustainedBps = meter.AverageRate() * 8
		res.TotalBytes = meter.Total()
		res.Series = meter.RateSeries(5 * time.Second)
		for i := range res.Series {
			res.Series[i].V *= 8 // bytes/s -> bits/s
		}
	})
	return res, nil
}

// runPipelinedPair reproduces the §7 workload for one server pair: start
// a new copy of the partition whenever the newest transfer is 25%
// complete, keeping at most MaxStreams transfers in flight, until the
// metering window closes.
func runPipelinedPair(clk *vtime.Sim, n *simnet.Net, ca *gsi.CA, trust *gsi.TrustStore,
	cfg Table1Config, src, dst string, partition int64, stop time.Time,
	mu *sync.Mutex, res *Table1Result) {

	dstHost := n.Host(dst)
	id, err := ca.Issue("/CN=client-"+dst, vtime.Epoch, 240*time.Hour)
	if err != nil {
		return
	}
	auth := &gsi.Config{Identity: id, Trust: trust, Clock: clk, HandshakeCost: cfg.HandshakeCost}

	inflight := 0
	var imu sync.Mutex
	cond := clk.NewCond(&imu)

	// newest tracks the most recently started transfer's sink so the
	// spawner can watch its 25% threshold.
	var newest *gridftp.VirtualSink
	done := vtime.NewWaitGroup(clk)
	for clk.Now().Before(stop) {
		imu.Lock()
		for inflight >= cfg.MaxStreams {
			cond.Wait()
		}
		inflight++
		imu.Unlock()

		sink := gridftp.NewVirtualSink(partition)
		imu.Lock()
		newest = sink
		imu.Unlock()
		mu.Lock()
		res.TransfersStarted++
		mu.Unlock()

		done.Go(func() {
			defer func() {
				imu.Lock()
				inflight--
				cond.Broadcast()
				imu.Unlock()
			}()
			cli, err := gridftp.Dial(gridftp.ClientConfig{
				Clock: clk, Net: dstHost, Auth: auth,
				Parallelism:       1,
				BufferBytes:       cfg.BufferBytes,
				CacheDataChannels: cfg.CacheDataChannels,
			}, src+":2811")
			if err != nil {
				clk.Sleep(2 * time.Second) // outage: retry later
				return
			}
			defer cli.Close()
			if _, err := cli.Get("partition.dat", sink); err != nil {
				return // lost to a fault; the pipeline starts another
			}
			mu.Lock()
			res.TransfersDone++
			mu.Unlock()
		})

		// Wait until the newest transfer reaches 25% complete before
		// starting the next copy of the partition (§7).
		for clk.Now().Before(stop) {
			clk.Sleep(500 * time.Millisecond)
			imu.Lock()
			cur := newest
			idle := inflight == 0
			imu.Unlock()
			var got int64
			for _, e := range cur.Received() {
				got += e.Len
			}
			if got*4 >= partition || idle {
				break
			}
		}
	}
	done.Wait()
}

// startCongestionProcess alternates the WAN between clean spells and
// congestion episodes with exponential dwell times.
func startCongestionProcess(clk *vtime.Sim, wan *simnet.Link, cfg Table1Config) {
	congested := false
	var tick func()
	tick = func() {
		congested = !congested
		var dwell time.Duration
		if congested {
			wan.SetLossRate(cfg.CongestedLossRate)
			dwell = time.Duration(clk.RandExp(float64(cfg.CongestedDwellMean)))
		} else {
			wan.SetLossRate(cfg.WANLossRate)
			dwell = time.Duration(clk.RandExp(float64(cfg.CleanDwellMean)))
		}
		clk.AfterFunc(dwell, tick)
	}
	clk.AfterFunc(time.Duration(clk.RandExp(float64(cfg.CleanDwellMean))), tick)
}

// scheduleShowFloor injects the exhibition conditions the paper reports,
// scaled to the run duration: a brief SCinet power failure (connections
// reset), a DNS outage, and a backbone degradation.
func scheduleShowFloor(clk *vtime.Sim, n *simnet.Net, wan *simnet.Link, d time.Duration) {
	at := func(frac float64) time.Duration { return time.Duration(float64(d) * frac) }
	// Power failure: ~2% of the run, connections die.
	clk.AfterFunc(at(0.30), func() { wan.SetUp(false, true) })
	clk.AfterFunc(at(0.32), func() { wan.SetUp(true, true) })
	// DNS problems: ~5% of the run, no new sessions.
	clk.AfterFunc(at(0.55), func() { n.SetDNS(false) })
	clk.AfterFunc(at(0.60), func() { n.SetDNS(true) })
	// Backbone problems: ~10% of the run at one-quarter capacity.
	clk.AfterFunc(at(0.75), func() { wan.SetCapacityFactor(0.25) })
	clk.AfterFunc(at(0.85), func() { wan.SetCapacityFactor(1) })
}
