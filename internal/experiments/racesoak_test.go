package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestRaceSoak drives the parallel component executor through seeded
// chaos schedules with the fan engaged, as prey for the race detector:
// every flush that qualifies runs its per-component allocation passes on
// worker lanes, concurrently with the advancing goroutine waiting on the
// fan barrier, while faults force conservative sequential flushes in
// between — the exact handoff pattern a worker-pool bug would corrupt.
// The invariant audit still runs, but the point of this test is the
// schedule diversity under `-race`, not byte-identity (the differential
// suite owns that).
//
// Under a plain build the same schedules are already covered by
// TestChaosSoak and the differential suite, so the soak only runs when
// the race detector is on. `make race` (part of `make check`) runs a
// bounded smoke slice; `make race-soak` sets ESG_RACE_SOAK=full for all
// 25 schedules. A failed run's flight dump lands in $ESG_FLIGHT_DIR via
// dumpFlightOnFailure, next to its replay seed.
func TestRaceSoak(t *testing.T) {
	full := os.Getenv("ESG_RACE_SOAK") == "full"
	if !raceEnabled && !full {
		t.Skip("race-detector prey; covered by TestChaosSoak on plain builds (set ESG_RACE_SOAK=full to force)")
	}
	runs := 5 // smoke slice: keeps `make race` bounded on slow runners
	if full {
		runs = 25
	}
	const faults = 6
	for i := 0; i < runs; i++ {
		seed := int64(4000 + i)
		cfg := soakConfig(seed)
		// Workers >= 4 per the acceptance criteria; alternating widths
		// also exercises pool reconfiguration across runs.
		cfg.Workers = 4 + 4*int(seed%2)
		sched := ChaosScheduleFor(cfg, seed, faults)
		run, err := RunChaosSchedule(cfg, sched)
		if err != nil {
			t.Errorf("replay: ChaosScheduleFor(soakConfig(%d), %d, %d) workers=%d: run error: %v",
				seed, seed, faults, cfg.Workers, err)
			dumpFlightOnFailure(t, run, fmt.Sprintf("racesoak-seed%d", seed))
			continue
		}
		if err := run.Report.Err(); err != nil {
			t.Errorf("replay: ChaosScheduleFor(soakConfig(%d), %d, %d) workers=%d: %v",
				seed, seed, faults, cfg.Workers, err)
			dumpFlightOnFailure(t, run, fmt.Sprintf("racesoak-seed%d", seed))
		}
	}
}
