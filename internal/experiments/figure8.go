package experiments

import (
	"fmt"
	"time"

	"esgrid/internal/chaos"
	"esgrid/internal/flight"
	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// Figure8Config parameterizes the 14-hour reliability experiment of §7 /
// Figure 8: a Linux workstation with a 100 Mb/s NIC in Dallas repeatedly
// transferring a 2 GB file to a similar workstation at Argonne over
// commodity internet, with parallelism varied up to eight streams,
// bandwidth plateauing near 80 Mb/s (disk limited), and outages — a
// SCinet power failure, DNS problems, backbone problems — interrupting
// transfers that GridFTP then restarts.
type Figure8Config struct {
	Seed        int64
	Duration    time.Duration // paper: ~14 hours
	FileMB      int64         // paper: 2 GB
	NICBps      float64       // paper: 100 Mb/s
	DiskBps     float64       // paper: ~80 Mb/s effective
	RTT         time.Duration // Dallas <-> Chicago commodity path
	LossRate    float64       // commodity internet packet loss
	BufferBytes int
	// ParallelismSchedule cycles as the run progresses (paper: "varying
	// levels of parallelism, up to a maximum of eight streams").
	ParallelismSchedule []int
	// CacheDataChannels is the post-SC'00 ablation (F8b): reusing data
	// channels removes the inter-transfer dips.
	CacheDataChannels bool
	// Faults enables the outage schedule.
	Faults bool
	// Schedule overrides the default outage narrative with an explicit
	// chaos schedule (link target "commodity"). Nil with Faults set means
	// Figure8FaultSchedule(Duration).
	Schedule chaos.Schedule
	// HandshakeCost per side for each new session.
	HandshakeCost time.Duration
	// Bucket is the series resolution (default 60s).
	Bucket time.Duration
	// Workers sets the event core's parallel component executor width
	// (0 or 1 = sequential reference; results are byte-identical).
	Workers int
}

// DefaultFigure8Config reproduces the paper's run.
func DefaultFigure8Config() Figure8Config {
	return Figure8Config{
		Seed:                7,
		Duration:            14 * time.Hour,
		FileMB:              2048,
		NICBps:              100e6,
		DiskBps:             82e6,
		RTT:                 24 * time.Millisecond,
		LossRate:            3e-4,
		BufferBytes:         1 << 20,
		ParallelismSchedule: []int{1, 2, 4, 8, 4, 8, 2},
		Faults:              true,
		HandshakeCost:       450 * time.Millisecond,
		Bucket:              time.Minute,
	}
}

// Figure8Result carries the bandwidth-over-time series and summary
// statistics of the run.
type Figure8Result struct {
	Config        Figure8Config
	Series        netlogger.Series // bits/s per bucket
	MeanBps       float64
	PlateauBps    float64 // 90th percentile bucket rate
	Transfers     int
	Restarts      int
	ZeroBuckets   int // buckets with no progress (outages + dips)
	OutageBuckets int // buckets fully inside scheduled outages
	// Flight is the run's always-on flight recorder; the differential
	// suite compares its dump byte-for-byte across worker counts.
	Flight *flight.Recorder
}

// Rows summarizes the run.
func (r Figure8Result) Rows() []Row {
	return []Row{
		{"Duration", durSeconds(r.Config.Duration)},
		{"Completed transfers of 2 GB file", fmt.Sprint(r.Transfers)},
		{"Transfer restarts after failures", fmt.Sprint(r.Restarts)},
		{"Mean bandwidth", mbps(r.MeanBps)},
		{"Plateau bandwidth (p90 bucket)", mbps(r.PlateauBps)},
		{"Buckets with zero progress", fmt.Sprint(r.ZeroBuckets)},
	}
}

// Plot renders the Figure 8 analog chart.
func (r Figure8Result) Plot(width, height int) string {
	series := make(netlogger.Series, len(r.Series))
	for i, p := range r.Series {
		series[i] = netlogger.Point{T: p.T, V: p.V / 1e6}
	}
	return series.Plot(
		fmt.Sprintf("Figure 8: aggregate parallel bandwidth over %s (Mb/s)", r.Config.Duration),
		"Mb/s", width, height)
}

// RunFigure8 executes the experiment.
func RunFigure8(cfg Figure8Config) (Figure8Result, error) {
	if cfg.Duration <= 0 || cfg.FileMB <= 0 {
		return Figure8Result{}, fmt.Errorf("experiments: bad figure8 config %+v", cfg)
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = time.Minute
	}
	if len(cfg.ParallelismSchedule) == 0 {
		cfg.ParallelismSchedule = []int{8}
	}
	clk := vtime.NewSim(cfg.Seed)
	clk.SetWorkers(cfg.Workers)
	n := simnet.New(clk)
	rec := flight.New(0, 0)
	rec.AttachCore(clk)
	n.AttachFlight(rec)

	// Dallas workstation -> commodity internet -> ANL workstation. The
	// destination's disk bounds the useful rate (§7: "most likely due to
	// disk bandwidth limitations").
	n.AddHost("dallas", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("anl", simnet.HostConfig{DefaultBufferBytes: 64 << 10, DiskBps: cfg.DiskBps})
	n.AddNode("isp")
	n.AddLink("dallas", "isp", simnet.LinkConfig{CapacityBps: cfg.NICBps, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})
	commodity := n.AddLink("isp", "anl", simnet.LinkConfig{CapacityBps: 155e6, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})

	file := cfg.FileMB << 20
	store := gridftp.NewVirtualStore()
	store.Put("climate-2gb.dat", file)

	res := Figure8Result{Config: cfg, Flight: rec}
	clk.Run(func() {
		dallas := n.Host("dallas")
		srv, err := gridftp.NewServer(gridftp.Config{
			Clock: clk, Net: dallas, Host: "dallas", Store: store, DiskBound: true,
		})
		if err != nil {
			return
		}
		l, err := dallas.Listen(":2811")
		if err != nil {
			return
		}
		clk.Go(func() { srv.Serve(l) })

		meter := netlogger.NewMeter(clk, time.Second, func() float64 {
			return n.TotalBytesBetween("dallas", "anl")
		})

		if cfg.Faults {
			sched := cfg.Schedule
			if sched == nil {
				sched = Figure8FaultSchedule(cfg.Duration)
			}
			targets := chaos.NewTargets().AddLink("commodity", commodity).SetDNS(n)
			if err := chaos.NewRunner(clk, nil, targets).Apply(sched); err != nil {
				return
			}
		}

		anl := n.Host("anl")
		stop := clk.Now().Add(cfg.Duration)
		segment := cfg.Duration / time.Duration(len(cfg.ParallelismSchedule))
		start := clk.Now()
		var cached *gridftp.Client
		cachedP := 0
		for clk.Now().Before(stop) {
			idx := int(clk.Now().Sub(start) / segment)
			if idx >= len(cfg.ParallelismSchedule) {
				idx = len(cfg.ParallelismSchedule) - 1
			}
			p := cfg.ParallelismSchedule[idx]

			sink := gridftp.NewVirtualSink(file)
			attempts := 0
			// Reuse the session (and its cached data channels) when the
			// ablation enables it and parallelism is unchanged.
			if cached != nil && cachedP != p {
				cached.Close()
				cached = nil
			}
			mk := func() (*gridftp.Client, error) {
				if cached != nil {
					c := cached
					cached = nil
					return c, nil
				}
				return gridftp.Dial(gridftp.ClientConfig{
					Clock: clk, Net: anl,
					Parallelism:       p,
					BufferBytes:       cfg.BufferBytes,
					CacheDataChannels: cfg.CacheDataChannels,
					DiskBound:         true,
				}, "dallas:2811")
			}
			var cli *gridftp.Client
			var xferErr error
			for {
				c, err := mk()
				if err != nil {
					xferErr = err
				} else {
					cli = c
					missing := gridftp.MissingRanges(sink, file)
					if len(missing) == 1 && missing[0].Off == 0 && missing[0].Len == file {
						_, xferErr = cli.Get("climate-2gb.dat", sink)
					} else if len(missing) > 0 {
						_, xferErr = cli.GetRanges("climate-2gb.dat", sink, missing)
					} else {
						xferErr = nil
					}
				}
				if xferErr == nil {
					break
				}
				attempts++
				res.Restarts++
				if cli != nil {
					cli.Close()
					cli = nil
				}
				if !clk.Now().Before(stop) || attempts > 200 {
					break
				}
				clk.Sleep(5 * time.Second) // reconnection backoff
			}
			if xferErr == nil && sink.Complete() == nil {
				res.Transfers++
			}
			if cli != nil {
				if cfg.CacheDataChannels {
					cached = cli
					cachedP = p
				} else {
					cli.Close()
				}
			}
		}
		if cached != nil {
			cached.Close()
		}
		meter.Stop()
		res.Series = meter.RateSeries(cfg.Bucket)
		for i := range res.Series {
			res.Series[i].V *= 8
		}
		res.MeanBps = meter.AverageRate() * 8
		vals := res.Series.Values()
		st := netlogger.Summarize(vals)
		res.PlateauBps = st.P90
		for _, v := range vals {
			if v < 1e6 { // under 1 Mb/s counts as a stall bucket
				res.ZeroBuckets++
			}
		}
	})
	return res, nil
}

// Figure8FaultSchedule is the November 7, 2000 outage narrative the paper
// tells — a SCinet power failure, DNS problems, and backbone problems —
// expressed as a declarative chaos schedule placed proportionally across
// a run of length d. The commodity internet link is target "commodity".
func Figure8FaultSchedule(d time.Duration) chaos.Schedule {
	at := func(frac float64) time.Duration { return time.Duration(float64(d) * frac) }
	return chaos.Schedule{
		// Power failure for the SC network: connections die outright.
		{Kind: chaos.KindLinkDown, Target: "commodity", Start: at(0.18), Duration: at(0.02)},
		// DNS problems: no new sessions for a while.
		{Kind: chaos.KindDNSOutage, Start: at(0.42), Duration: at(0.03)},
		// Backbone problems on the exhibition floor: deep capacity loss.
		{Kind: chaos.KindLinkDegrade, Target: "commodity", Start: at(0.65), Duration: at(0.05), Factor: 0.1},
	}
}
