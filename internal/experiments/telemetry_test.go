package experiments

import (
	"strings"
	"testing"
)

func TestRunTelemetryS16(t *testing.T) {
	cfg := TelemetryConfig{
		Seed:  21,
		Ticks: 4,
		Cells: [][2]int{{2, 4}, {4, 4}, {4, 8}},
	}
	res, err := RunTelemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if !c.SketchExact {
			t.Errorf("%dx%d: root fold is not bit-identical to the flat fold", c.Sites, c.HostsPer)
		}
		if c.MaxQErrBuckets < 0 || c.MaxQErrBuckets > 1 {
			t.Errorf("%dx%d: quantile error %d log-buckets, want <=1", c.Sites, c.HostsPer, c.MaxQErrBuckets)
		}
		if c.WANBytes <= 0 || c.LeafBytes <= 0 || c.GoodputBps <= 0 {
			t.Errorf("%dx%d: empty measurements: %+v", c.Sites, c.HostsPer, c)
		}
	}

	// O(sites) observer path: doubling hosts per site barely moves the
	// WAN bytes (sketches fold, they do not concatenate), while the
	// intra-site leaf traffic — what a flat stream would ship to the
	// observer — scales with hosts.
	small, wide := res.Cells[1], res.Cells[2] // 4x4 vs 4x8
	if got := float64(wide.WANBytes) / float64(small.WANBytes); got > 1.5 {
		t.Errorf("WAN bytes grew %.2fx when hosts doubled at fixed sites", got)
	}
	if got := float64(wide.LeafBytes) / float64(small.LeafBytes); got < 1.7 {
		t.Errorf("leaf bytes grew only %.2fx when hosts doubled", got)
	}
	// Doubling sites at fixed hosts per site must grow the WAN path.
	few := res.Cells[0] // 2x4
	if got := float64(small.WANBytes) / float64(few.WANBytes); got < 1.5 {
		t.Errorf("WAN bytes grew only %.2fx when sites doubled", got)
	}

	if !res.FanoutIdentical {
		t.Error("published streams differ across tree fanouts")
	}
	if res.SLOAlerts == 0 {
		t.Error("degraded scenario fired no SLO alerts")
	}
	if !strings.Contains(res.ReplayJSONL, `"kind":"alert"`) ||
		!strings.Contains(res.ReplayJSONL, `"kind":"grid"`) {
		t.Error("replay stream missing grid or alert records")
	}
	if rows := res.Rows(); len(rows) != len(res.Cells)+2 {
		t.Fatalf("rows = %d", len(rows))
	}
}
