package experiments

import (
	"fmt"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/gsi"
	"esgrid/internal/ldapd"
	"esgrid/internal/netlogger"
	"esgrid/internal/replica"
	"esgrid/internal/rm"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// PaperTeardownGap is the inter-file pause the paper's NetLogger
// life-lines exposed in the Figure 8 run: ~0.8 s of TCP teardown and
// session re-setup between consecutive file transfers.
const PaperTeardownGap = 800 * time.Millisecond

// LifelineConfig parameterizes the S12 life-line experiment: a multi-file
// RM request over a Figure 8-style path, fully traced, with channel
// caching off so each file pays the teardown + setup pause between data
// phases — the signature the stage-attribution analyzer must expose.
type LifelineConfig struct {
	Seed          int64
	Files         int
	FileMB        int64
	NICBps        float64
	DiskBps       float64
	RTT           time.Duration
	LossRate      float64
	BufferBytes   int
	Parallelism   int
	HandshakeCost time.Duration // per GSI side, as in Figure 8
}

// DefaultLifelineConfig mirrors the Figure 8 testbed: a 100 Mb/s NIC,
// commodity RTT, disk-limited sink, authenticated sessions.
func DefaultLifelineConfig() LifelineConfig {
	return LifelineConfig{
		Seed:          7,
		Files:         4,
		FileMB:        96,
		NICBps:        100e6,
		DiskBps:       82e6,
		RTT:           24 * time.Millisecond,
		LossRate:      3e-4,
		BufferBytes: 1 << 20,
		// A single stream keeps the trace fully deterministic: with
		// parallel streams the sender's block distribution across data
		// conns is scheduler-dependent, which would change per-conn byte
		// counts between equal-seed runs.
		Parallelism:   1,
		HandshakeCost: 150 * time.Millisecond,
	}
}

// LifelineResult carries the trace, its stage attribution, and the
// rendered artifacts.
type LifelineResult struct {
	Config   LifelineConfig
	Elapsed  time.Duration
	Analysis netlogger.TraceAnalysis
	Gantt    string
	Stages   string // per-stage breakdown table
	Metrics  string // metrics registry snapshot
	ULM      string // NetLogger ULM event stream
	JSONL    string // JSONL event stream
	MeanGap  time.Duration
	Coverage float64
	Events   int
	Spans    int
}

// Rows summarizes the run next to the paper's observation.
func (r LifelineResult) Rows() []Row {
	rows := []Row{
		{"Files transferred", fmt.Sprint(r.Config.Files)},
		{"Request wall time", durSeconds(r.Elapsed)},
		{"Spans / events recorded", fmt.Sprintf("%d / %d", r.Spans, r.Events)},
		{"Stage attribution coverage", fmt.Sprintf("%.2f%% of wall time", 100*r.Coverage)},
	}
	for _, st := range r.Analysis.Stages {
		rows = append(rows, Row{
			Label: "  stage " + st.Stage,
			Value: fmt.Sprintf("%-9s (%4.1f%%)", durSeconds(st.Dur), 100*float64(st.Dur)/float64(r.Analysis.Wall)),
		})
	}
	rows = append(rows, Row{
		"Mean inter-file gap (teardown+setup)",
		fmt.Sprintf("%.2f s  (paper: ~%.1f s per file)", r.MeanGap.Seconds(), PaperTeardownGap.Seconds()),
	})
	return rows
}

// RunLifeline executes the traced multi-file request and analyzes its
// life-line.
func RunLifeline(cfg LifelineConfig) (LifelineResult, error) {
	if cfg.Files <= 0 || cfg.FileMB <= 0 {
		return LifelineResult{}, fmt.Errorf("experiments: bad lifeline config %+v", cfg)
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	clk := vtime.NewSim(cfg.Seed)
	n := simnet.New(clk)

	log := netlogger.NewLog(clk)
	tracer := netlogger.NewTracer(clk, log)
	metrics := netlogger.NewRegistry(clk)
	n.Instrument(log, metrics)

	n.AddHost("dallas", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("anl", simnet.HostConfig{DefaultBufferBytes: 64 << 10, DiskBps: cfg.DiskBps})
	n.AddNode("isp")
	n.AddLink("dallas", "isp", simnet.LinkConfig{CapacityBps: cfg.NICBps, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})
	n.AddLink("isp", "anl", simnet.LinkConfig{CapacityBps: 155e6, Delay: cfg.RTT / 4, LossRate: cfg.LossRate / 2})

	// GSI identities so sessions pay the authenticated setup the paper's
	// deployment paid.
	ca, err := gsi.NewCA("ESG-CA")
	if err != nil {
		return LifelineResult{}, err
	}
	trust := gsi.NewTrustStore(ca)
	srvID, err := ca.Issue("/CN=dallas", vtime.Epoch, 240*time.Hour)
	if err != nil {
		return LifelineResult{}, err
	}
	usrID, err := ca.Issue("/CN=esg-user", vtime.Epoch, 240*time.Hour)
	if err != nil {
		return LifelineResult{}, err
	}

	var names []string
	store := gridftp.NewVirtualStore()
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("pcm-%02d.nc", i)
		names = append(names, name)
		store.Put(name, cfg.FileMB<<20)
	}
	dir := ldapd.NewDir()
	cat, err := replica.New(dir)
	if err != nil {
		return LifelineResult{}, err
	}
	if err := cat.CreateCollection("lifeline", names); err != nil {
		return LifelineResult{}, err
	}
	if err := cat.AddLocation("lifeline", replica.Location{
		Host: "dallas", Protocol: "gsiftp", Port: 2811, Path: "/d", Files: names,
	}); err != nil {
		return LifelineResult{}, err
	}

	res := LifelineResult{Config: cfg}
	var rerr error
	clk.Run(func() {
		dallas := n.Host("dallas")
		srv, err := gridftp.NewServer(gridftp.Config{
			Clock: clk, Net: dallas, Host: "dallas", Store: store, DiskBound: true,
			Auth: &gsi.Config{Identity: srvID, Trust: trust, Clock: clk, HandshakeCost: cfg.HandshakeCost},
			Log:  log,
		})
		if err != nil {
			rerr = err
			return
		}
		l, err := dallas.Listen(":2811")
		if err != nil {
			rerr = err
			return
		}
		clk.Go(func() { srv.Serve(l) })

		mgr, err := rm.New(rm.Config{
			Clock: clk, Net: n.Host("anl"), LocalHost: "anl", Replica: cat,
			DestStore: gridftp.NewVirtualStore(), Policy: rm.PolicyFirst,
			Auth:        &gsi.Config{Identity: usrID, Trust: trust, Clock: clk, HandshakeCost: cfg.HandshakeCost},
			Parallelism: cfg.Parallelism, BufferBytes: cfg.BufferBytes,
			// Channel caching off and one transfer at a time: each file
			// pays the full teardown + setup pause, the Figure 8 gap.
			CacheDataChannels: false,
			MaxConcurrent:     1,
			MonitorInterval:   250 * time.Millisecond,
			Log:               log,
			Tracer:            tracer,
			Metrics:           metrics,
		})
		if err != nil {
			rerr = err
			return
		}
		var reqs []rm.FileRequest
		for _, f := range names {
			reqs = append(reqs, rm.FileRequest{Name: f, Size: cfg.FileMB << 20})
		}
		t0 := clk.Now()
		req, err := mgr.Submit("esg-user", "lifeline", reqs)
		if err != nil {
			rerr = err
			return
		}
		if err := req.Wait(); err != nil {
			rerr = err
			return
		}
		res.Elapsed = clk.Now().Sub(t0)
	})
	if rerr != nil {
		return res, rerr
	}

	spans := tracer.Snapshot()
	res.Spans = len(spans)
	res.Events = len(log.Events())
	res.Analysis = netlogger.AnalyzeTrace(spans, 1)
	res.Coverage = res.Analysis.Coverage
	res.MeanGap = res.Analysis.MeanGap()
	res.Gantt = res.Analysis.RenderGantt(96)
	res.Stages = res.Analysis.RenderStageTable()
	res.Metrics = metrics.Render()
	res.ULM = log.ULM()
	res.JSONL = log.JSONL()
	return res, nil
}
