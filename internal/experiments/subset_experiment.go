package experiments

import (
	"fmt"
	"time"

	"esgrid/internal/climate"
	"esgrid/internal/gridftp"
	"esgrid/internal/simnet"
	"esgrid/internal/subset"
	"esgrid/internal/vtime"
)

// SubsetResult compares moving a whole variable-month against asking the
// server to extract a region first (S10: the ESG-II / DODS-style
// server-side subsetting of §9).
type SubsetResult struct {
	FullBytes    int64
	SubsetBytes  int64
	FullElapsed  time.Duration
	SubElapsed   time.Duration
	BytesSaved   float64 // fraction
	SpeedupTotal float64
}

// RunSubset performs both fetches of a tropical-Pacific temperature
// selection over a 45 Mb/s WAN path.
func RunSubset(seed int64) (SubsetResult, error) {
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("ncar", "desk", simnet.LinkConfig{CapacityBps: 45e6, Delay: 20 * time.Millisecond})

	// A real (coarse-grid) monthly file so the server can actually slice it.
	model := climate.NewModel("pcm", climate.GridSpec{NLat: 64, NLon: 128, StepsPerMonth: 16})
	f, err := model.MonthlyFile(climate.VarTemperature, 1998, 7)
	if err != nil {
		return SubsetResult{}, err
	}
	store := subset.NewStore()
	const name = "pcm.tas.1998-07.nc"
	if err := store.PutFile(name, f); err != nil {
		return SubsetResult{}, err
	}

	const spec = "var=tas;time=0:4;lat=-20:20;lon=120:280" // tropical Pacific
	var res SubsetResult
	var rerr error
	clk.Run(func() {
		srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: n.Host("ncar"), Host: "ncar", Store: store})
		if err != nil {
			rerr = err
			return
		}
		l, _ := n.Host("ncar").Listen(":2811")
		clk.Go(func() { srv.Serve(l) })
		cli, err := gridftp.Dial(gridftp.ClientConfig{
			Clock: clk, Net: n.Host("desk"), Parallelism: 2, BufferBytes: 1 << 20,
		}, "ncar:2811")
		if err != nil {
			rerr = err
			return
		}
		defer cli.Close()

		full, err := cli.Size(name)
		if err != nil {
			rerr = err
			return
		}
		sink := gridftp.NewBytesSink(full)
		stFull, err := cli.Get(name, sink)
		if err != nil {
			rerr = err
			return
		}
		subSize, err := cli.SubsetSize(name, spec)
		if err != nil {
			rerr = err
			return
		}
		subSink := gridftp.NewBytesSink(subSize)
		stSub, err := cli.GetSubset(name, spec, subSink)
		if err != nil {
			rerr = err
			return
		}
		res = SubsetResult{
			FullBytes:   full,
			SubsetBytes: subSize,
			FullElapsed: stFull.Duration,
			SubElapsed:  stSub.Duration,
		}
		res.BytesSaved = 1 - float64(subSize)/float64(full)
		res.SpeedupTotal = stFull.Duration.Seconds() / stSub.Duration.Seconds()
	})
	return res, rerr
}

// Rows formats the comparison.
func (r SubsetResult) Rows() []Row {
	return []Row{
		{"whole-file transfer", fmt.Sprintf("%.2f MB in %v", float64(r.FullBytes)/1e6, r.FullElapsed.Round(time.Millisecond))},
		{"server-side subset (ESUB)", fmt.Sprintf("%.2f MB in %v", float64(r.SubsetBytes)/1e6, r.SubElapsed.Round(time.Millisecond))},
		{"bytes saved", fmt.Sprintf("%.1f%%", 100*r.BytesSaved)},
		{"time-to-science speedup", fmt.Sprintf("%.1fx", r.SpeedupTotal)},
	}
}
