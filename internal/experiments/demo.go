package experiments

import (
	"fmt"
	"strings"
	"time"

	"esgrid/internal/climate"
	"esgrid/internal/rm"
)

// DemoResult captures the artifacts of the end-to-end SC'00 demonstration
// (Figures 2-4 and the §7 narrative): the attribute query, the resolved
// files, the transfer monitor, and the visualization.
type DemoResult struct {
	QueryText  string
	Files      []rm.FileStatus
	Monitor    string
	Viz        string
	Elapsed    time.Duration
	TotalBytes int64
}

// Rows summarizes the demo run.
func (r DemoResult) Rows() []Row {
	return []Row{
		{"query", r.QueryText},
		{"files resolved and transferred", fmt.Sprint(len(r.Files))},
		{"total data moved", fmt.Sprintf("%.1f GB", float64(r.TotalBytes)/1e9)},
		{"end-to-end time", r.Elapsed.Round(time.Second).String()},
	}
}

// testbedRunner abstracts the root esgrid.Testbed so this package can
// drive it without an import cycle; cmd/esgbench and the benchmarks pass
// the real thing.
type testbedRunner interface {
	Run(fn func())
}

// RunDemo executes the demonstration flow on a prepared testbed. fetch,
// monitor and analyze adapt the root package's API; see cmd/esgbench.
func RunDemo(tb testbedRunner,
	fetch func() (*rm.Request, error),
	analyze func() (string, error),
	clockNow func() time.Time) (DemoResult, error) {

	var res DemoResult
	var err error
	tb.Run(func() {
		t0 := clockNow()
		var req *rm.Request
		req, err = fetch()
		if err != nil {
			return
		}
		if err = req.Wait(); err != nil {
			return
		}
		res.Elapsed = clockNow().Sub(t0)
		res.Files = req.Status()
		for _, f := range res.Files {
			res.TotalBytes += f.Received
		}
		res.Monitor = rm.RenderMonitor(req, 100)
		res.Viz, err = analyze()
	})
	res.QueryText = fmt.Sprintf("dataset=pcm-b06.44 variables=%s period=1998-06..1998-08",
		strings.Join([]string{climate.VarTemperature, climate.VarCloudCover}, ","))
	return res, err
}
