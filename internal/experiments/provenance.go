package experiments

import (
	"fmt"
	"time"

	"esgrid/internal/flight"
	"esgrid/internal/vtime"
)

// --- S15: causal event provenance — why did this retry fire? ---
//
// The SC'00 operators diagnosed the Figure 8 outages by eyeballing
// bandwidth plots; the question they actually needed answered was
// causal: *this* transfer stalled because *this* connection reset
// because *this* fault landed. S15 reproduces that diagnosis
// mechanically: it replays an S13 chaos schedule with the always-on
// flight recorder attached, picks the last retry-backoff the RM
// slept, and walks its parent chain back through the core event
// window to the network event that caused it.

// ProvenanceResult is one reconstructed retry chain plus the record
// stream statistics around it.
type ProvenanceResult struct {
	Config  ChaosConfig
	Faults  int
	Tries   int // schedule draws needed before a retry fired
	Run     ChaosRun
	Records int           // retained flight records at dump time
	Retry   flight.Record // the retry-backoff fire the chain explains
	Chain   []flight.Record
	Chart   string // FormatChain rendering, root cause first
	Sites   []flight.SiteCount
}

// ChainSites returns the distinct site names on the chain, root first.
func (r ProvenanceResult) ChainSites() []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range r.Chain {
		name := vtime.SiteName(rec.Site)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// Rows renders the S15 summary table (the chain itself prints
// separately — it is the experiment's figure).
func (r ProvenanceResult) Rows() []Row {
	rows := []Row{
		{"Workload", fmt.Sprintf("%d files × %d MB, %d faults (schedule draw %d)",
			r.Config.Files, r.Config.FileMB, r.Faults, r.Tries)},
		{"Invariant audit", "pass (completion + hash equality + bounded re-fetch)"},
		{"Flight records retained", fmt.Sprintf("%d (attempts %d, activations %d)",
			r.Records, r.Run.Attempts, r.Run.Activations)},
		{"Retry under diagnosis", fmt.Sprintf("seq %d fired t=%.3fs at %s",
			r.Retry.Seq, float64(r.Retry.At)/1e9, vtime.SiteName(r.Retry.Site))},
		{"Chain depth", fmt.Sprintf("%d hops across %d sites", len(r.Chain), len(r.ChainSites()))},
	}
	if len(r.Chain) > 0 {
		rows = append(rows, Row{"Root cause", fmt.Sprintf("t=%.3fs %s (%s)",
			float64(r.Chain[0].At)/1e9, vtime.SiteName(r.Chain[0].Site),
			flight.KindName(r.Chain[0].Kind))})
	}
	return rows
}

// RunProvenance replays S13 chaos schedules (derived deterministically
// from cfg.Seed, like RunChaos's sweep levels) until one forces the RM
// into a retry, then reconstructs that retry's causal chain from the
// flight recorder. Equal configs always reproduce the same chain.
func RunProvenance(cfg ChaosConfig, faults int) (ProvenanceResult, error) {
	if faults <= 0 {
		faults = 8
	}
	var firstErr error
	for try := 0; try < 8; try++ {
		sched := ChaosScheduleFor(cfg, cfg.Seed*1000+int64(try), faults)
		run, err := RunChaosSchedule(cfg, sched)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := run.Report.Err(); err != nil {
			return ProvenanceResult{}, fmt.Errorf("experiments: provenance run failed audit: %w", err)
		}
		recs := run.Flight.Records()
		fire, ok := flight.LastBySite(recs, "rm.retry-backoff")
		if !ok {
			continue // this draw's faults all missed the in-flight transfer
		}
		res := ProvenanceResult{
			Config:  cfg,
			Faults:  faults,
			Tries:   try,
			Run:     run,
			Records: len(recs),
			Retry:   fire,
			Chain:   flight.ChainOf(recs, fire.Seq),
			Sites:   flight.SiteCounts(recs),
		}
		res.Chart = flight.FormatChain(res.Chain)
		return res, nil
	}
	if firstErr != nil {
		return ProvenanceResult{}, firstErr
	}
	return ProvenanceResult{}, fmt.Errorf(
		"experiments: no schedule draw forced a retry (seed %d, %d faults, outage %v)",
		cfg.Seed, faults, cfg.MaxOutage)
}

// DefaultProvenanceConfig biases the chaos defaults toward fault
// activations that actually kill in-flight transfers, so the first
// schedule draws reliably produce a retry to diagnose.
func DefaultProvenanceConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Seed = 15
	cfg.Files = 2
	cfg.FileMB = 8
	cfg.MaxOutage = 6 * time.Second
	return cfg
}
