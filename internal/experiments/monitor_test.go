package experiments

import (
	"strings"
	"testing"

	"esgrid/internal/monitor"
	"esgrid/internal/rm"
)

// TestMonitorGroundTruth runs the full S14 sweep and gates the two
// detectors the issue pins: stall and collapse must reach precision
// ≥ 0.9 and recall ≥ 0.8 against the labeled fault windows.
func TestMonitorGroundTruth(t *testing.T) {
	res, err := RunMonitor(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != len(MonitorCases()) {
		t.Fatalf("ran %d cases, want %d", len(res.Cases), len(MonitorCases()))
	}
	for _, r := range res.Rows() {
		t.Logf("%-28s %s", r.Label, r.Value)
	}
	kinds := 0
	for _, c := range res.Cases {
		if c.Detected > 0 {
			kinds++
		}
		if c.Recall < 0.5 {
			t.Errorf("case %s: recall %.2f (%d/%d faults)", c.Name, c.Recall, c.Detected, c.Faults)
		}
	}
	if kinds < 3 {
		t.Errorf("only %d fault kinds detected, want ≥ 3", kinds)
	}
	for _, d := range []string{monitor.DetectorStall, monitor.DetectorCollapse} {
		if p := res.Precision(d); p < 0.9 {
			t.Errorf("%s precision %.2f < 0.9", d, p)
		}
		if r := res.Recall(d); r < 0.8 {
			t.Errorf("%s recall %.2f < 0.8", d, r)
		}
	}
}

// TestMonitorDeterminism: two equal-seed runs of the same case produce
// byte-identical alert streams.
func TestMonitorDeterminism(t *testing.T) {
	c := MonitorCases()[0] // host.crash
	a, err := RunMonitorCase(c, 77, DefaultMonitorConfig().Grace, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMonitorCase(c, 77, DefaultMonitorConfig().Grace, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.AlertJSONL == "" {
		t.Fatal("no alerts on a fault-laden run")
	}
	if a.AlertJSONL != b.AlertJSONL {
		t.Fatalf("equal-seed alert streams differ:\n--- a ---\n%s\n--- b ---\n%s", a.AlertJSONL, b.AlertJSONL)
	}
	if a.JSONL != b.JSONL {
		t.Fatal("equal-seed event streams differ")
	}
}

// TestMonitorPureObserver: attaching the monitor must not perturb the
// system it watches — the full netlogger stream and the transfer
// outcomes are byte-identical with and without it.
func TestMonitorPureObserver(t *testing.T) {
	c := MonitorCases()[0] // host.crash
	with, err := RunMonitorCase(c, 78, DefaultMonitorConfig().Grace, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunMonitorCase(c, 78, DefaultMonitorConfig().Grace, false)
	if err != nil {
		t.Fatal(err)
	}
	if with.JSONL != without.JSONL {
		da, db := diffLine(with.JSONL, without.JSONL)
		t.Fatalf("monitored event stream diverges from bare run:\nmonitored: %s\nbare:      %s", da, db)
	}
	if len(with.Statuses) != len(without.Statuses) {
		t.Fatalf("status count differs: %d vs %d", len(with.Statuses), len(without.Statuses))
	}
	for i := range with.Statuses {
		if with.Statuses[i] != without.Statuses[i] {
			t.Fatalf("transfer schedule differs at %d:\n%+v\n%+v", i, with.Statuses[i], without.Statuses[i])
		}
	}
	if without.AlertJSONL != "" {
		t.Fatal("bare run produced alerts")
	}
	// The monitored run published health into MDS.
	if len(with.Healths) == 0 {
		t.Fatal("monitored run published no host health")
	}
	for _, st := range with.Statuses {
		if st.State != rm.StateDone {
			t.Fatalf("file %s not done: %+v", st.Name, st)
		}
	}
}

// diffLine returns the first differing line pair of two JSONL streams.
func diffLine(a, b string) (string, string) {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return la[i], lb[i]
		}
	}
	return "<end>", "<end>"
}
