package experiments

import (
	"fmt"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/hrm"
	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/nws"
	"esgrid/internal/replica"
	"esgrid/internal/rm"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// --- S4: replica selection policy comparison (§4/§5) ---

// ReplicaSelResult compares request completion time under each policy on
// a heterogeneous testbed.
type ReplicaSelResult struct {
	Policies []string
	Elapsed  []time.Duration
	Chosen   [][]string // replica hosts chosen per file
}

// RunReplicaSelection fetches the same multi-file request through the RM
// under NWS-based, random and static selection, on a testbed whose
// replica sites differ 10x in connectivity.
func RunReplicaSelection(seed int64, files int, fileMB int64) (ReplicaSelResult, error) {
	if files <= 0 {
		files = 6
	}
	if fileMB <= 0 {
		fileMB = 64
	}
	policies := []rm.Policy{rm.PolicyNWS, rm.PolicyRandom, rm.PolicyFirst}
	res := ReplicaSelResult{}
	for _, pol := range policies {
		elapsed, chosen, err := runPolicyOnce(seed, pol, files, fileMB)
		if err != nil {
			return res, err
		}
		res.Policies = append(res.Policies, pol.String())
		res.Elapsed = append(res.Elapsed, elapsed)
		res.Chosen = append(res.Chosen, chosen)
	}
	return res, nil
}

func runPolicyOnce(seed int64, pol rm.Policy, nFiles int, fileMB int64) (time.Duration, []string, error) {
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddNode("wan")
	client := n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("desk", "wan", simnet.LinkConfig{CapacityBps: 1e9, Delay: 2 * time.Millisecond})
	// The directory sorts locations by DN, so names are chosen to put the
	// worst site first in catalog order: PolicyFirst pays for ignoring
	// measurements.
	sites := []struct {
		name string
		bps  float64
		owd  time.Duration
	}{
		{"alpha-tape", 45e6, 40 * time.Millisecond},
		{"bravo-mid", 155e6, 20 * time.Millisecond},
		{"zeta-fast", 622e6, 5 * time.Millisecond},
	}
	dir := ldapd.NewDir()
	cat, err := replica.New(dir)
	if err != nil {
		return 0, nil, err
	}
	info, err := mds.New(dir)
	if err != nil {
		return 0, nil, err
	}
	var names []string
	for i := 0; i < nFiles; i++ {
		names = append(names, fmt.Sprintf("f%02d.nc", i))
	}
	if err := cat.CreateCollection("sweep", names); err != nil {
		return 0, nil, err
	}
	stores := map[string]*gridftp.VirtualStore{}
	for _, s := range sites {
		n.AddHost(s.name, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(s.name, "wan", simnet.LinkConfig{CapacityBps: s.bps, Delay: s.owd})
		store := gridftp.NewVirtualStore()
		for _, f := range names {
			store.Put(f, fileMB<<20)
		}
		stores[s.name] = store
		if err := cat.AddLocation("sweep", replica.Location{
			Host: s.name, Protocol: "gsiftp", Port: 2811, Path: "/d", Files: names,
		}); err != nil {
			return 0, nil, err
		}
	}
	var elapsed time.Duration
	var chosen []string
	var rerr error
	clk.Run(func() {
		for _, s := range sites {
			host := n.Host(s.name)
			srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: host, Host: s.name, Store: stores[s.name]})
			if err != nil {
				rerr = err
				return
			}
			l, _ := host.Listen(":2811")
			clk.Go(func() { srv.Serve(l) })
		}
		prober := nws.ProbeFunc(func(from, to string) (float64, time.Duration, error) {
			bw, err := n.EstimateBandwidth(from, to)
			if err != nil {
				return 0, 0, err
			}
			rtt, err := n.PathRTT(from, to)
			return bw, rtt, err
		})
		sensor := nws.NewSensor(clk, prober, info, 15*time.Second)
		for _, s := range sites {
			sensor.Watch(s.name, "desk")
		}
		sensor.MeasureNow()
		rnd := func() float64 { return clk.Rand() }
		mgr, err := rm.New(rm.Config{
			Clock: clk, Net: client, LocalHost: "desk", Replica: cat, Info: info,
			DestStore: gridftp.NewVirtualStore(), Policy: pol, Rand: rnd,
			Parallelism: 2, BufferBytes: 1 << 20, MonitorInterval: time.Second,
		})
		if err != nil {
			rerr = err
			return
		}
		var reqs []rm.FileRequest
		for _, f := range names {
			reqs = append(reqs, rm.FileRequest{Name: f, Size: fileMB << 20})
		}
		t0 := clk.Now()
		req, err := mgr.Submit("sweep-user", "sweep", reqs)
		if err != nil {
			rerr = err
			return
		}
		if err := req.Wait(); err != nil {
			rerr = err
			return
		}
		elapsed = clk.Now().Sub(t0)
		for _, st := range req.Status() {
			chosen = append(chosen, st.Replica)
		}
	})
	return elapsed, chosen, rerr
}

// Rows formats the comparison.
func (r ReplicaSelResult) Rows() []Row {
	rows := make([]Row, len(r.Policies))
	for i := range r.Policies {
		counts := map[string]int{}
		for _, h := range r.Chosen[i] {
			counts[h]++
		}
		rows[i] = Row{
			Label: fmt.Sprintf("policy %-8s", r.Policies[i]),
			Value: fmt.Sprintf("request completed in %-8v choices %v", r.Elapsed[i].Round(time.Second), counts),
		}
	}
	return rows
}

// --- S5: concurrent multi-site transfers (§4) ---

// MultiSiteResult compares fetching N files all from one site vs spread
// across N sites.
type MultiSiteResult struct {
	Files         int
	SingleElapsed time.Duration
	SpreadElapsed time.Duration
	SingleBps     float64
	SpreadBps     float64
}

// RunMultiSite measures the aggregate-rate benefit of replicating popular
// collections at several sites and transferring concurrently (§4: "the
// ability to transfer multiple files from various sites concurrently can
// enhance the aggregate transfer rate").
func RunMultiSite(seed int64, files int, fileMB int64) (MultiSiteResult, error) {
	if files <= 0 {
		files = 4
	}
	if fileMB <= 0 {
		fileMB = 128
	}
	res := MultiSiteResult{Files: files}
	single, err := runMultiSiteOnce(seed, files, fileMB, false)
	if err != nil {
		return res, err
	}
	spread, err := runMultiSiteOnce(seed, files, fileMB, true)
	if err != nil {
		return res, err
	}
	res.SingleElapsed, res.SpreadElapsed = single, spread
	total := float64(files) * float64(fileMB<<20) * 8
	res.SingleBps = total / single.Seconds()
	res.SpreadBps = total / spread.Seconds()
	return res, nil
}

func runMultiSiteOnce(seed int64, nFiles int, fileMB int64, spread bool) (time.Duration, error) {
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddNode("wan")
	client := n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("desk", "wan", simnet.LinkConfig{CapacityBps: 2e9, Delay: 2 * time.Millisecond})
	dir := ldapd.NewDir()
	cat, _ := replica.New(dir)
	var names []string
	for i := 0; i < nFiles; i++ {
		names = append(names, fmt.Sprintf("f%02d.nc", i))
	}
	cat.CreateCollection("pop", names)
	nSites := nFiles
	if !spread {
		nSites = 1
	}
	for i := 0; i < nSites; i++ {
		site := fmt.Sprintf("site%02d", i)
		n.AddHost(site, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(site, "wan", simnet.LinkConfig{CapacityBps: 155e6, Delay: 10 * time.Millisecond})
		// Each site holds either everything (single) or its share (spread).
		var holds []string
		if spread {
			holds = []string{names[i]}
		} else {
			holds = names
		}
		if err := cat.AddLocation("pop", replica.Location{
			Host: site, Protocol: "gsiftp", Port: 2811, Path: "/d", Files: holds,
		}); err != nil {
			return 0, err
		}
	}
	var elapsed time.Duration
	var rerr error
	clk.Run(func() {
		for i := 0; i < nSites; i++ {
			site := fmt.Sprintf("site%02d", i)
			host := n.Host(site)
			store := gridftp.NewVirtualStore()
			for _, f := range names {
				store.Put(f, fileMB<<20)
			}
			srv, err := gridftp.NewServer(gridftp.Config{Clock: clk, Net: host, Host: site, Store: store})
			if err != nil {
				rerr = err
				return
			}
			l, _ := host.Listen(":2811")
			clk.Go(func() { srv.Serve(l) })
		}
		mgr, err := rm.New(rm.Config{
			Clock: clk, Net: client, LocalHost: "desk", Replica: cat,
			DestStore: gridftp.NewVirtualStore(), Policy: rm.PolicyFirst,
			Parallelism: 2, BufferBytes: 1 << 20, MonitorInterval: time.Second,
		})
		if err != nil {
			rerr = err
			return
		}
		var reqs []rm.FileRequest
		for _, f := range names {
			reqs = append(reqs, rm.FileRequest{Name: f, Size: fileMB << 20})
		}
		t0 := clk.Now()
		req, err := mgr.Submit("u", "pop", reqs)
		if err != nil {
			rerr = err
			return
		}
		if err := req.Wait(); err != nil {
			rerr = err
			return
		}
		elapsed = clk.Now().Sub(t0)
	})
	return elapsed, rerr
}

// Rows formats the comparison.
func (r MultiSiteResult) Rows() []Row {
	return []Row{
		{fmt.Sprintf("%d files from 1 site", r.Files), fmt.Sprintf("%-8v %s", r.SingleElapsed.Round(time.Second), mbps(r.SingleBps))},
		{fmt.Sprintf("%d files from %d sites", r.Files, r.Files), fmt.Sprintf("%-8v %s", r.SpreadElapsed.Round(time.Second), mbps(r.SpreadBps))},
		{"aggregate speedup", fmt.Sprintf("%.2fx", r.SpreadBps/r.SingleBps)},
	}
}

// --- S6: HRM staging and cache behaviour (§4) ---

// HRMStagingResult reports cache hit behaviour across cache sizes.
type HRMStagingResult struct {
	CacheGB  []int64
	HitRate  []float64
	MeanWait []time.Duration
}

// RunHRMStaging replays a Zipf-ish re-access pattern over a 40-file tape
// archive at several disk-cache sizes.
func RunHRMStaging(seed int64, accesses int) (HRMStagingResult, error) {
	if accesses <= 0 {
		accesses = 120
	}
	res := HRMStagingResult{}
	for _, cacheGB := range []int64{8, 32, 128} {
		clk := vtime.NewSim(seed)
		cfg := hrm.DefaultConfig
		cfg.CacheBytes = cacheGB << 30
		h := hrm.New(clk, cfg)
		const nFiles = 40
		for i := 0; i < nFiles; i++ {
			h.AddTapeFile(hrm.TapeFile{
				Name: fmt.Sprintf("f%02d.nc", i),
				Size: 2 << 30,
				Tape: fmt.Sprintf("T%d", i/8),
			})
		}
		var totalWait time.Duration
		clk.Run(func() {
			for a := 0; a < accesses; a++ {
				// Zipf-ish popularity: low indices dominate.
				u := clk.Rand()
				idx := int(u * u * nFiles)
				if idx >= nFiles {
					idx = nFiles - 1
				}
				name := fmt.Sprintf("f%02d.nc", idx)
				wait, err := h.Stage(name)
				if err != nil {
					continue
				}
				totalWait += wait
				h.Release(name)
			}
		})
		st := h.Stats()
		res.CacheGB = append(res.CacheGB, cacheGB)
		res.HitRate = append(res.HitRate, float64(st.Hits)/float64(st.Hits+st.Misses))
		res.MeanWait = append(res.MeanWait, totalWait/time.Duration(accesses))
	}
	return res, nil
}

// Rows formats the sweep.
func (r HRMStagingResult) Rows() []Row {
	rows := make([]Row, len(r.CacheGB))
	for i := range r.CacheGB {
		rows[i] = Row{
			Label: fmt.Sprintf("disk cache %4d GB", r.CacheGB[i]),
			Value: fmt.Sprintf("hit rate %5.1f%%  mean stage wait %v", 100*r.HitRate[i], r.MeanWait[i].Round(time.Second)),
		}
	}
	return rows
}
