package experiments

import (
	"strings"
	"testing"
)

func TestLifelineCoverageAndGaps(t *testing.T) {
	cfg := DefaultLifelineConfig()
	cfg.Files = 3
	cfg.FileMB = 16
	res, err := RunLifeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.99 {
		t.Errorf("stage attribution coverage %.4f, want >= 0.99\n%s", res.Coverage, res.Stages)
	}
	if got := len(res.Analysis.Gaps); got != cfg.Files-1 {
		t.Errorf("inter-file gaps = %d, want %d", got, cfg.Files-1)
	}
	for i, g := range res.Analysis.Gaps {
		if g.Dur <= 0 {
			t.Errorf("gap %d not positive: %v", i, g.Dur)
		}
	}
	if res.MeanGap <= 0 {
		t.Errorf("mean gap %v, want > 0", res.MeanGap)
	}
	for _, want := range []string{"rm.request", "gridftp.session", "[data]", "[teardown]"} {
		if !strings.Contains(res.Gantt, want) {
			t.Errorf("gantt missing %q:\n%s", want, res.Gantt)
		}
	}
	for _, want := range []string{"gridftp.control.rtts", "simnet.flows.active"} {
		if !strings.Contains(res.Metrics, want) {
			t.Errorf("metrics table missing %q:\n%s", want, res.Metrics)
		}
	}
	if res.Events == 0 || res.Spans == 0 {
		t.Errorf("events=%d spans=%d, want both > 0", res.Events, res.Spans)
	}
}

// Same seed, same config: the full ULM and JSONL exports must be
// byte-identical across runs.
func TestLifelineDeterministic(t *testing.T) {
	cfg := DefaultLifelineConfig()
	cfg.Files = 2
	cfg.FileMB = 8
	a, err := RunLifeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ULM != b.ULM {
		t.Error("ULM export differs between identical runs")
	}
	if a.JSONL != b.JSONL {
		t.Error("JSONL export differs between identical runs")
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
