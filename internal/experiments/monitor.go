package experiments

import (
	"fmt"
	"sort"
	"time"

	"esgrid/internal/chaos"
	"esgrid/internal/esgrpc"
	"esgrid/internal/flight"
	"esgrid/internal/gridftp"
	"esgrid/internal/hrm"
	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/monitor"
	"esgrid/internal/netlogger"
	"esgrid/internal/nws"
	"esgrid/internal/replica"
	"esgrid/internal/rm"
	"esgrid/internal/simnet"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// S14 — detector ground truth. Each MonitorCase replays a hand-labeled
// chaos schedule of a single fault kind on the S13 replication topology
// with the full observation plane attached (NWS sensor + probe
// responder, MDS, monitor), then scores the monitor's alerts against
// the known fault windows: precision per detector, recall and detection
// latency per fault, all per fault kind.

// MonitorConfig parameterizes the S14 sweep.
type MonitorConfig struct {
	Seed int64
	// Grace extends each fault's truth window past its heal time:
	// detectors observing a 3 s stall of a 5 s outage legitimately fire
	// after the fault itself has ended.
	Grace time.Duration
}

// DefaultMonitorConfig matches the chaos defaults the schedules were
// sized against.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{Seed: 14, Grace: 10 * time.Second}
}

// MonitorCase is one labeled scenario: a fault kind, the schedule that
// injects it, and the detectors that may legitimately fire inside its
// truth windows.
type MonitorCase struct {
	Name    string
	Primary string   // the detector expected to catch this fault kind
	Accept  []string // detectors acceptable inside the truth windows
	Replica string   // single-replica catalog host: "ncar" (disk) or "lbnl" (tape)
	Files   int
	FileMB  int64
	Faults  []chaos.Fault
}

// MonitorCases is the S14 suite: five fault kinds, each pinned to the
// detector that owns it. Fault timing is sized against the case's
// payload so every injection lands while transfers are in flight (the
// dns case's sensor keeps probing after the last byte, so its second
// outage may outlive the transfers).
func MonitorCases() []MonitorCase {
	return []MonitorCase{
		{
			Name:    "host.crash",
			Primary: monitor.DetectorStall,
			Accept: []string{monitor.DetectorStall, monitor.DetectorRetryStorm,
				monitor.DetectorTeardownGap, monitor.DetectorSensorDead},
			Replica: "ncar", Files: 8, FileMB: 16,
			Faults: []chaos.Fault{
				{Kind: chaos.KindHostCrash, Target: "ncar", Start: 3 * time.Second, Duration: 5 * time.Second},
				{Kind: chaos.KindHostCrash, Target: "ncar", Start: 12 * time.Second, Duration: 5 * time.Second},
				{Kind: chaos.KindHostCrash, Target: "ncar", Start: 21 * time.Second, Duration: 5 * time.Second},
			},
		},
		{
			Name:    "link.degrade",
			Primary: monitor.DetectorCollapse,
			Accept: []string{monitor.DetectorCollapse, monitor.DetectorStall,
				monitor.DetectorTeardownGap},
			Replica: "ncar", Files: 8, FileMB: 32,
			Faults: []chaos.Fault{
				{Kind: chaos.KindLinkDegrade, Target: "ncar-isp", Start: 3 * time.Second, Duration: 8 * time.Second, Factor: 0.04},
				{Kind: chaos.KindLinkDegrade, Target: "ncar-isp", Start: 16 * time.Second, Duration: 8 * time.Second, Factor: 0.04},
				{Kind: chaos.KindLinkDegrade, Target: "ncar-isp", Start: 29 * time.Second, Duration: 8 * time.Second, Factor: 0.04},
			},
		},
		{
			Name:    "link.flap",
			Primary: monitor.DetectorRetryStorm,
			Accept: []string{monitor.DetectorRetryStorm, monitor.DetectorStall,
				monitor.DetectorTeardownGap, monitor.DetectorCollapse},
			Replica: "ncar", Files: 8, FileMB: 16,
			Faults: []chaos.Fault{
				{Kind: chaos.KindLinkFlap, Target: "ncar-isp", Start: 3 * time.Second, Duration: 15 * time.Second, Count: 5},
			},
		},
		{
			Name:    "hrm.stall",
			Primary: monitor.DetectorStall,
			Accept: []string{monitor.DetectorStall, monitor.DetectorTeardownGap,
				monitor.DetectorRetryStorm},
			Replica: "lbnl", Files: 6, FileMB: 16,
			Faults: []chaos.Fault{
				{Kind: chaos.KindHRMStall, Target: "lbnl", Start: 2 * time.Second, Duration: 10 * time.Second, Delay: 12 * time.Second},
				{Kind: chaos.KindHRMStall, Target: "lbnl", Start: 23 * time.Second, Duration: 10 * time.Second, Delay: 12 * time.Second},
			},
		},
		{
			Name:    "dns.outage",
			Primary: monitor.DetectorSensorDead,
			Accept: []string{monitor.DetectorSensorDead, monitor.DetectorStall,
				monitor.DetectorRetryStorm, monitor.DetectorTeardownGap},
			Replica: "ncar", Files: 6, FileMB: 16,
			Faults: []chaos.Fault{
				{Kind: chaos.KindDNSOutage, Start: 2 * time.Second, Duration: 6 * time.Second},
				{Kind: chaos.KindDNSOutage, Start: 14 * time.Second, Duration: 6 * time.Second},
			},
		},
	}
}

// MonitorRun is one instrumented execution of a case.
type MonitorRun struct {
	Elapsed    time.Duration
	Start      time.Time // virtual instant faults+submit were scheduled
	JSONL      string    // full event stream (byte-identical with or without monitor)
	AlertJSONL string
	Alerts     []monitor.Alert
	Statuses   []rm.FileStatus
	Healths    []mds.HostHealth
	// Flight is the run's always-on flight recorder (see ChaosRun.Flight).
	Flight *flight.Recorder
}

// RunMonitorCase executes one labeled scenario. withMonitor=false runs
// the identical system without the monitor attached — the pure-observer
// check diffs the two event streams byte for byte.
func RunMonitorCase(c MonitorCase, seed int64, grace time.Duration, withMonitor bool) (MonitorRun, error) {
	if c.Files <= 0 || c.FileMB <= 0 {
		return MonitorRun{}, fmt.Errorf("experiments: bad monitor case %+v", c)
	}
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	rec := flight.New(0, 0)
	if !flightDisabled {
		rec.AttachCore(clk)
		n.AttachFlight(rec)
	}
	log := netlogger.NewLog(clk)
	tracer := netlogger.NewTracer(clk, log)
	metrics := netlogger.NewRegistry(clk)
	n.Instrument(log, metrics)

	n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("lbnl", simnet.HostConfig{DefaultBufferBytes: 64 << 10})
	n.AddHost("anl", simnet.HostConfig{DefaultBufferBytes: 64 << 10, DiskBps: 82e6})
	n.AddNode("isp")
	lNcar := n.AddLink("ncar", "isp", simnet.LinkConfig{CapacityBps: 100e6, Delay: 6 * time.Millisecond})
	lLbnl := n.AddLink("lbnl", "isp", simnet.LinkConfig{CapacityBps: 100e6, Delay: 6 * time.Millisecond})
	lAnl := n.AddLink("isp", "anl", simnet.LinkConfig{CapacityBps: 155e6, Delay: 6 * time.Millisecond})

	size := c.FileMB << 20
	src := gridftp.NewMemStore()
	tape := hrm.New(clk, hrm.Config{
		Drives: 2, MountTime: 3 * time.Second, SeekTime: 500 * time.Millisecond,
		ReadBps: 200 << 20, CacheBytes: int64(c.Files+1) * size,
	})
	var names []string
	for i := 0; i < c.Files; i++ {
		name := fmt.Sprintf("pcm-%02d.nc", i)
		names = append(names, name)
		src.Put(name, chaosContent(i, size))
		tape.AddTapeFile(hrm.TapeFile{Name: name, Size: size, Tape: fmt.Sprintf("T%d", i/2)})
	}

	dir := ldapd.NewDir()
	cat, err := replica.New(dir)
	if err != nil {
		return MonitorRun{}, err
	}
	info, err := mds.New(dir)
	if err != nil {
		return MonitorRun{}, err
	}
	if err := cat.CreateCollection("mon", names); err != nil {
		return MonitorRun{}, err
	}
	loc := replica.Location{Host: c.Replica, Protocol: "gsiftp", Port: 2811, Path: "/d", Files: names}
	if c.Replica == "lbnl" {
		loc.Path, loc.Staged = "/hpss", true
	}
	if err := cat.AddLocation("mon", loc); err != nil {
		return MonitorRun{}, err
	}

	targets := chaos.NewTargets().
		AddLink("ncar-isp", lNcar).
		AddLink("lbnl-isp", lLbnl).
		AddLink("isp-anl", lAnl).
		AddHost("ncar", n.Host("ncar")).
		AddHost("lbnl", n.Host("lbnl")).
		AddStager("lbnl", tape)
	targets.SetDNS(n)
	runner := chaos.NewRunner(clk, log, targets)
	if err := runner.Validate(chaos.Schedule(c.Faults)); err != nil {
		return MonitorRun{}, err
	}

	// The run must outlive the last truth window so late-firing
	// detectors (and the dns case's post-transfer probes) are captured.
	var horizon time.Duration
	for _, f := range c.Faults {
		if end := f.Start + f.Duration + grace; end > horizon {
			horizon = end
		}
	}

	dest := gridftp.NewMemStore()
	run := MonitorRun{Flight: rec}
	var mon *monitor.Monitor
	var rerr error
	clk.Run(func() {
		serve := func(host string, store gridftp.FileStore) bool {
			h := n.Host(host)
			srv, err := gridftp.NewServer(gridftp.Config{
				Clock: clk, Net: h, Host: host, Store: store, DiskBound: true,
				Log: log,
				// Fine-grained MODE E blocks: sink coverage (and so the
				// rm.progress rate samples the collapse detector consumes)
				// advances in BlockSize steps. At the default 4 MB a
				// degraded link shows alternating zero/33 Mb/s samples —
				// indistinguishable from a stall; at 256 KB the sampled
				// rate tracks the true degraded rate.
				BlockSize: 256 << 10,
			})
			if err != nil {
				rerr = err
				return false
			}
			l, err := h.Listen(":2811")
			if err != nil {
				rerr = err
				return false
			}
			clk.Go(func() { srv.Serve(l) })
			return true
		}
		if !serve("ncar", src) || !serve("lbnl", src) {
			return
		}
		rpc := esgrpc.NewServer(clk, nil)
		tape.RegisterRPC(rpc)
		rl, err := n.Host("lbnl").Listen(":4811")
		if err != nil {
			rerr = err
			return
		}
		clk.Go(func() { rpc.Serve(rl) })

		// Observation plane: probe responder at the destination, sensor
		// probing both replica→dest paths, forecasts into MDS.
		pl, err := n.Host("anl").Listen(":8060")
		if err != nil {
			rerr = err
			return
		}
		clk.Go(func() { nws.ServeProbes(clk, pl) })
		prober := nws.NewTransferProber(clk, func(h string) transport.Network {
			return n.Host(h)
		}, 8060, 0)
		sensor := nws.NewSensor(clk, prober, info, 2*time.Second)
		sensor.Watch("ncar", "anl")
		sensor.Watch("lbnl", "anl")
		sensor.Instrument(log, "anl")
		// Warm-up: the collapse detector needs a forecast baseline before
		// the first fault lands.
		for i := 0; i < 3; i++ {
			sensor.MeasureNow()
		}
		sensor.Start()

		if withMonitor {
			mon = monitor.New(monitor.Config{
				Clock: clk, Info: info, Metrics: metrics,
			})
			mon.Attach(log)
			mon.Start()
		}

		mgr, err := rm.New(rm.Config{
			Clock: clk, Net: n.Host("anl"), LocalHost: "anl", Replica: cat,
			DestStore: dest, Policy: rm.PolicyFirst,
			Parallelism: 1, BufferBytes: 1 << 20,
			CacheDataChannels: false,
			MaxConcurrent:     1,
			MaxAttempts:       40,
			RetryBackoff:      time.Second,
			MonitorInterval:   time.Second,
			Log:               log,
			Tracer:            tracer,
			Metrics:           metrics,
		})
		if err != nil {
			rerr = err
			return
		}
		if err := runner.Apply(chaos.Schedule(c.Faults)); err != nil {
			rerr = err
			return
		}
		run.Start = clk.Now()
		var reqs []rm.FileRequest
		for _, f := range names {
			reqs = append(reqs, rm.FileRequest{Name: f, Size: size})
		}
		req, err := mgr.Submit("esg-user", "mon", reqs)
		if err != nil {
			rerr = err
			return
		}
		rerr = req.Wait()
		run.Elapsed = clk.Now().Sub(run.Start)
		run.Statuses = req.Status()
		// Drain teardown and keep the sensor probing through the last
		// truth window, then a little past it for deterministic endings.
		if tail := run.Start.Add(horizon).Sub(clk.Now()); tail > 0 {
			clk.Sleep(tail)
		}
		clk.Sleep(2 * time.Second)
	})
	if rerr != nil {
		return run, rerr
	}
	run.JSONL = log.JSONL()
	if mon != nil {
		mon.Stop()
		run.AlertJSONL = mon.AlertJSONL()
		run.Alerts = mon.Alerts()
		if hs, err := info.HostHealths(); err == nil {
			run.Healths = hs
		}
	}
	return run, nil
}

// DetectorScore aggregates one detector's precision across a run set:
// an alert is a true positive when it lands inside some truth window
// whose case accepts that detector.
type DetectorScore struct {
	Detector  string
	TruePos   int
	FalsePos  int
	Precision float64
}

// MonitorCaseResult scores one case run.
type MonitorCaseResult struct {
	Name        string
	Faults      int
	Detected    int // faults with a primary-detector alert inside their window
	Recall      float64
	MeanLatency time.Duration // fault start → first primary alert, over detected faults
	Alerts      int
	Elapsed     time.Duration
	Scores      []DetectorScore
	AlertJSONL  string
}

// scoreCase labels every alert against the case's truth windows.
func scoreCase(c MonitorCase, run MonitorRun, grace time.Duration) MonitorCaseResult {
	type window struct{ start, end time.Time }
	var wins []window
	for _, f := range c.Faults {
		wins = append(wins, window{
			start: run.Start.Add(f.Start),
			end:   run.Start.Add(f.Start + f.Duration + grace),
		})
	}
	accept := map[string]bool{}
	for _, d := range c.Accept {
		accept[d] = true
	}
	inWindow := func(t time.Time) bool {
		for _, w := range wins {
			if !t.Before(w.start) && !t.After(w.end) {
				return true
			}
		}
		return false
	}

	res := MonitorCaseResult{
		Name: c.Name, Faults: len(c.Faults),
		Alerts: len(run.Alerts), Elapsed: run.Elapsed,
		AlertJSONL: run.AlertJSONL,
	}
	byDet := map[string]*DetectorScore{}
	for _, a := range run.Alerts {
		s := byDet[a.Detector]
		if s == nil {
			s = &DetectorScore{Detector: a.Detector}
			byDet[a.Detector] = s
		}
		if accept[a.Detector] && inWindow(a.Time) {
			s.TruePos++
		} else {
			s.FalsePos++
		}
	}
	var dets []string
	for d := range byDet {
		dets = append(dets, d)
	}
	sort.Strings(dets)
	for _, d := range dets {
		s := byDet[d]
		if n := s.TruePos + s.FalsePos; n > 0 {
			s.Precision = float64(s.TruePos) / float64(n)
		}
		res.Scores = append(res.Scores, *s)
	}

	var latSum time.Duration
	for _, w := range wins {
		var first time.Time
		for _, a := range run.Alerts {
			if a.Detector != c.Primary || a.Time.Before(w.start) || a.Time.After(w.end) {
				continue
			}
			if first.IsZero() || a.Time.Before(first) {
				first = a.Time
			}
		}
		if !first.IsZero() {
			res.Detected++
			latSum += first.Sub(w.start)
		}
	}
	if res.Faults > 0 {
		res.Recall = float64(res.Detected) / float64(res.Faults)
	}
	if res.Detected > 0 {
		res.MeanLatency = latSum / time.Duration(res.Detected)
	}
	return res
}

// MonitorResult is the full S14 sweep.
type MonitorResult struct {
	Config MonitorConfig
	Cases  []MonitorCaseResult
}

// Precision returns a detector's aggregate precision across every case
// (1.0 when it never fired: no false positives).
func (r MonitorResult) Precision(detector string) float64 {
	tp, fp := 0, 0
	for _, c := range r.Cases {
		for _, s := range c.Scores {
			if s.Detector == detector {
				tp += s.TruePos
				fp += s.FalsePos
			}
		}
	}
	if tp+fp == 0 {
		return 1
	}
	return float64(tp) / float64(tp+fp)
}

// Recall returns the aggregate recall over every case whose primary
// detector is the given one.
func (r MonitorResult) Recall(detector string) float64 {
	faults, detected := 0, 0
	for i, c := range MonitorCases() {
		if i >= len(r.Cases) || c.Primary != detector {
			continue
		}
		faults += r.Cases[i].Faults
		detected += r.Cases[i].Detected
	}
	if faults == 0 {
		return 1
	}
	return float64(detected) / float64(faults)
}

// Rows renders the S14 table.
func (r MonitorResult) Rows() []Row {
	rows := []Row{
		{"Ground truth", fmt.Sprintf("%d labeled fault cases, grace %s", len(r.Cases), r.Config.Grace)},
	}
	for _, c := range r.Cases {
		rows = append(rows, Row{
			Label: c.Name,
			Value: fmt.Sprintf("recall %d/%d  latency %-8s alerts %d  %s",
				c.Detected, c.Faults, durSeconds(c.MeanLatency), c.Alerts, durSeconds(c.Elapsed)),
		})
		for _, s := range c.Scores {
			rows = append(rows, Row{
				Label: "  " + s.Detector,
				Value: fmt.Sprintf("precision %.2f (%d TP / %d FP)", s.Precision, s.TruePos, s.FalsePos),
			})
		}
	}
	for _, d := range []string{monitor.DetectorStall, monitor.DetectorCollapse} {
		rows = append(rows, Row{
			Label: "overall " + d,
			Value: fmt.Sprintf("precision %.2f  recall %.2f", r.Precision(d), r.Recall(d)),
		})
	}
	return rows
}

// RunMonitor executes the S14 detector ground-truth sweep.
func RunMonitor(cfg MonitorConfig) (MonitorResult, error) {
	if cfg.Grace <= 0 {
		cfg.Grace = 10 * time.Second
	}
	res := MonitorResult{Config: cfg}
	for i, c := range MonitorCases() {
		run, err := RunMonitorCase(c, cfg.Seed*100+int64(i), cfg.Grace, true)
		if err != nil {
			return res, fmt.Errorf("case %s: %w", c.Name, err)
		}
		res.Cases = append(res.Cases, scoreCase(c, run, cfg.Grace))
	}
	return res, nil
}
