package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"esgrid/internal/flight"
	"esgrid/internal/simnet"
)

// Differential suite for the deterministic parallel executor (DESIGN.md
// §13). Every experiment here runs once in sequential reference mode and
// once per worker count in {1, 2, 4, 8}; everything observable — result
// metrics, netlogger JSONL, flight-recorder dumps — must be
// byte-identical across all of them. Wall-clock readings and per-lane
// CSR-cache hit counters are the only values allowed to differ (the
// parallel path splits one warm cache into several cold ones), so
// fingerprints exclude exactly those.

// diffWorkers is the sweep the acceptance criteria name. 1 exercises
// the SetWorkers(1) no-pool path, which must equal SetWorkers(0).
var diffWorkers = []int{1, 2, 4, 8}

// skipUnderRace skips differential byte-identity checks for the two
// experiments whose drivers block same-instant goroutine cohorts on
// condition broadcasts (Table 1's striped writers, Figure 8's staged
// parallelism). The race detector's scheduler perturbation changes the
// order in which a woken cohort re-acquires locks and schedules its next
// events, so two *sequential* runs of the same seed diverge — workers=1,
// which never constructs a pool, diverges from workers=0 exactly as the
// fanned widths do. That is a pre-existing property of cohort wake-ups
// under adversarial scheduling (it reproduces on the seed commit), not a
// worker-pool effect, so under -race these two tests would measure
// scheduler noise rather than the executor. The chaos and S11 scale
// differentials, whose drivers are event-paced, stay on under -race.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("cohort wake-up order under the race detector's scheduler is not reproducible; see comment")
	}
}

// pinGC removes the milder, non-race form of the same perturbation: a
// concurrent GC cycle preempting a woken cohort mid-broadcast flips the
// lock re-acquisition order exactly like the race scheduler does, and
// whether a cycle lands inside that window depends on the heap state
// earlier tests in the binary left behind. Disabling the collector for
// the test and collecting at each run boundary makes every run's
// preemption points a function of the run itself, so the comparison
// measures the executor, not allocation history. The runs' own heaps
// are small (the PR 6 overhaul left the short configs at tens of
// thousands of allocations), so running them uncollected is cheap.
func pinGC(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

// captureFlushes installs a simnet.FlushObserver that folds the whole
// per-flush fingerprint stream into one (hash, count) pair, so a run's
// entire allocation history can be compared in O(1). The returned stop
// function uninstalls the observer and reports the fold; callers must
// invoke it before starting the next run.
func captureFlushes() (stop func() (uint64, int)) {
	const prime64 = 1099511628211
	h := uint64(1469598103934665603)
	count := 0
	simnet.FlushObserver = func(now time.Duration, sig uint64, nflows int) {
		h ^= uint64(now) ^ sig ^ uint64(nflows)
		h *= prime64
		count++
	}
	return func() (uint64, int) {
		simnet.FlushObserver = nil
		return h, count
	}
}

// stripVitals zeroes the fields legitimately sensitive to worker count:
// CSR-cache hit accounting is per-scratch, and each worker lane carries
// its own cold cache. Everything else in the vitals — event counts,
// ring occupancy, allocator pass totals — must match exactly.
func stripVitals(v flight.Vitals) flight.Vitals {
	v.CSRHits = 0
	v.CSRLookups = 0
	return v
}

func TestDifferentialTable1(t *testing.T) {
	skipUnderRace(t)
	pinGC(t)
	run := func(w int) (string, []byte, uint64, int) {
		runtime.GC()
		stop := captureFlushes()
		cfg := shortTable1()
		cfg.Workers = w
		r, err := RunTable1(cfg)
		sig, flushes := stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		dump := r.Flight.Dump()
		r.Config.Workers = 0 // the knob itself is the only allowed config delta
		r.Flight = nil
		return fmt.Sprintf("%+v", r), dump, sig, flushes
	}
	base, baseDump, baseSig, baseFlushes := run(0)
	for _, w := range diffWorkers {
		got, gotDump, gotSig, gotFlushes := run(w)
		if got != base {
			t.Errorf("workers=%d: Table 1 metrics diverged from sequential:\nseq: %s\npar: %s", w, base, got)
		}
		if !bytes.Equal(gotDump, baseDump) {
			t.Errorf("workers=%d: Table 1 flight dump diverged (%d vs %d bytes)", w, len(gotDump), len(baseDump))
		}
		if gotSig != baseSig || gotFlushes != baseFlushes {
			t.Errorf("workers=%d: Table 1 flush trace diverged: seq %d flushes sig %x, par %d flushes sig %x",
				w, baseFlushes, baseSig, gotFlushes, gotSig)
		}
	}
}

func TestDifferentialFigure8(t *testing.T) {
	skipUnderRace(t)
	pinGC(t)
	run := func(w int) (string, []byte, uint64, int) {
		runtime.GC()
		stop := captureFlushes()
		cfg := DefaultFigure8Config()
		cfg.Duration = 45 * time.Minute
		cfg.ParallelismSchedule = []int{1, 8}
		cfg.Faults = true
		cfg.Workers = w
		r, err := RunFigure8(cfg)
		sig, flushes := stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		dump := r.Flight.Dump()
		r.Config.Workers = 0
		r.Flight = nil
		return fmt.Sprintf("%+v", r), dump, sig, flushes
	}
	base, baseDump, baseSig, baseFlushes := run(0)
	for _, w := range diffWorkers {
		got, gotDump, gotSig, gotFlushes := run(w)
		if got != base {
			t.Errorf("workers=%d: Figure 8 metrics diverged from sequential:\nseq: %s\npar: %s", w, base, got)
		}
		if !bytes.Equal(gotDump, baseDump) {
			t.Errorf("workers=%d: Figure 8 flight dump diverged (%d vs %d bytes)", w, len(gotDump), len(baseDump))
		}
		if gotSig != baseSig || gotFlushes != baseFlushes {
			t.Errorf("workers=%d: Figure 8 flush trace diverged: seq %d flushes sig %x, par %d flushes sig %x",
				w, baseFlushes, baseSig, gotFlushes, gotSig)
		}
	}
}

// TestDifferentialScale is the S11 population the executor exists for:
// 1024 clients over 128 disjoint site components — the widest fan the
// suite produces. Wall-clock is the one field allowed to differ.
func TestDifferentialScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-client differential in -short mode")
	}
	run := func(w int) string {
		r, err := RunScaleWorkers(3, []int{1024}, 2, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		r.WallElapsed = nil
		return fmt.Sprintf("%+v", r)
	}
	base := run(0)
	for _, w := range diffWorkers {
		if got := run(w); got != base {
			t.Errorf("workers=%d: S11 metrics diverged from sequential:\nseq: %s\npar: %s", w, base, got)
		}
	}
}

// TestDifferentialChaos replays one randomized S13 fault schedule at
// every worker count and demands byte-identical netlogger JSONL and
// flight dumps — the strongest equality the harness can state, since
// the JSONL carries every timestamped transfer event and the dump the
// core event window, allocator passes and connection transitions.
func TestDifferentialChaos(t *testing.T) {
	run := func(w int) (string, string, []byte, uint64, int) {
		stop := captureFlushes()
		cfg := soakConfig(41)
		cfg.Workers = w
		sched := ChaosScheduleFor(cfg, 41, 4)
		r, err := RunChaosSchedule(cfg, sched)
		sig, flushes := stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := r.Report.Err(); err != nil {
			t.Fatalf("workers=%d: invariants: %v", w, err)
		}
		dump := r.Flight.Dump()
		fp := fmt.Sprintf("elapsed=%v activations=%d attempts=%d files=%+v vitals=%+v",
			r.Elapsed, r.Activations, r.Attempts, r.Files, stripVitals(r.Vitals))
		return fp, r.JSONL, dump, sig, flushes
	}
	base, baseJSONL, baseDump, baseSig, baseFlushes := run(0)
	for _, w := range diffWorkers {
		got, gotJSONL, gotDump, gotSig, gotFlushes := run(w)
		if got != base {
			t.Errorf("workers=%d: chaos metrics diverged from sequential:\nseq: %s\npar: %s", w, base, got)
		}
		if gotJSONL != baseJSONL {
			t.Errorf("workers=%d: chaos JSONL diverged (%d vs %d bytes)", w, len(gotJSONL), len(baseJSONL))
		}
		if !bytes.Equal(gotDump, baseDump) {
			t.Errorf("workers=%d: chaos flight dump diverged (%d vs %d bytes)", w, len(gotDump), len(baseDump))
		}
		if gotSig != baseSig || gotFlushes != baseFlushes {
			t.Errorf("workers=%d: chaos flush trace diverged: seq %d flushes sig %x, par %d flushes sig %x",
				w, baseFlushes, baseSig, gotFlushes, gotSig)
		}
	}
}
