package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"esgrid/internal/chaos"
)

// dumpFlightOnFailure writes a failed run's flight-recorder dump to
// $ESG_FLIGHT_DIR (CI sets it and uploads the directory as an artifact
// when the job fails), so a red soak run ships the core event window
// that led up to the violation alongside its replay seed.
func dumpFlightOnFailure(t *testing.T, run ChaosRun, tag string) {
	t.Helper()
	dir := os.Getenv("ESG_FLIGHT_DIR")
	if dir == "" || run.Flight == nil {
		return
	}
	path := filepath.Join(dir, tag+".flight.jsonl")
	n, err := run.Flight.DumpToFile(path)
	if err != nil {
		t.Logf("flight recorder: dump failed: %v", err)
		return
	}
	t.Logf("flight recorder: wrote %d records to %s", n, path)
}

// soakConfig keeps each soak run small: two 8 MB files, still real
// bytes end to end so the hash invariant has teeth.
func soakConfig(seed int64) ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Seed = seed
	cfg.Files = 2
	cfg.FileMB = 8
	return cfg
}

// TestChaosSweep runs the full S13 escalating fault sweep: RunChaos
// itself fails if any level breaks an invariant (completion, hash
// equality, bounded re-fetch, restart-marker monotonicity, retry-span
// accounting).
func TestChaosSweep(t *testing.T) {
	res, err := RunChaos(DefaultChaosConfig())
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if len(res.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(res.Levels))
	}
	base := res.Levels[0]
	if base.Faults != 0 || base.Refetch != 0 || base.Attempts != res.Config.Files {
		t.Errorf("fault-free baseline not clean: %+v", base)
	}
	for _, lv := range res.Levels {
		if lv.GoodputBps <= 0 {
			t.Errorf("level %d faults: goodput %v", lv.Faults, lv.GoodputBps)
		}
	}
	last := res.Levels[len(res.Levels)-1]
	if last.Activations == 0 {
		t.Errorf("top sweep level injected no faults")
	}
}

// TestChaosSoak replays ≥25 randomized schedules; every run must pass
// the full invariant audit. Any failure message carries the one-line
// seed that replays the exact schedule.
func TestChaosSoak(t *testing.T) {
	const runs = 25
	const faults = 6
	kinds := map[chaos.Kind]bool{}
	for i := 0; i < runs; i++ {
		seed := int64(1000 + i)
		cfg := soakConfig(seed)
		sched := ChaosScheduleFor(cfg, seed, faults)
		for _, k := range sched.Kinds() {
			kinds[k] = true
		}
		run, err := RunChaosSchedule(cfg, sched)
		if err != nil {
			t.Errorf("replay: ChaosScheduleFor(soakConfig(%d), %d, %d): run error: %v", seed, seed, faults, err)
			dumpFlightOnFailure(t, run, fmt.Sprintf("soak-seed%d", seed))
			continue
		}
		if err := run.Report.Err(); err != nil {
			t.Errorf("replay: ChaosScheduleFor(soakConfig(%d), %d, %d): %v", seed, seed, faults, err)
			dumpFlightOnFailure(t, run, fmt.Sprintf("soak-seed%d", seed))
		}
	}
	if len(kinds) < 4 {
		t.Errorf("soak mixed only %d fault kinds (%v), want >= 4", len(kinds), kinds)
	}
}

// TestChaosDeterminism extends the PR-2 determinism guarantee to the
// fault path: two equal-seed runs of the same schedule must produce
// byte-identical JSONL event streams.
func TestChaosDeterminism(t *testing.T) {
	cfg := soakConfig(77)
	sched := ChaosScheduleFor(cfg, 77, 6)
	a, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunChaosSchedule(cfg, sched)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.JSONL != b.JSONL {
		la, lb := splitLines(a.JSONL), splitLines(b.JSONL)
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				t.Fatalf("equal-seed JSONL diverges at line %d:\n  A: %s\n  B: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("equal-seed JSONL lengths differ: %d vs %d lines", len(la), len(lb))
	}
	if a.Elapsed != b.Elapsed || a.Activations != b.Activations {
		t.Fatalf("equal-seed runs diverge: elapsed %v/%v activations %d/%d",
			a.Elapsed, b.Elapsed, a.Activations, b.Activations)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
