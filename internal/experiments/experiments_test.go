package experiments

import (
	"strings"
	"testing"
	"time"
)

// shortTable1 is a scaled-down Table 1 used by tests: 4 servers, 3
// minutes. The shape assertions hold at this scale too.
func shortTable1() Table1Config {
	cfg := DefaultTable1Config()
	cfg.Servers = 4
	cfg.Duration = 3 * time.Minute
	return cfg
}

func TestTable1Shape(t *testing.T) {
	r, err := RunTable1(shortTable1())
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakBps100ms < r.PeakBps5s {
		t.Errorf("peak@0.1s (%.2fG) < peak@5s (%.2fG)", r.PeakBps100ms/1e9, r.PeakBps5s/1e9)
	}
	if r.PeakBps5s <= r.SustainedBps {
		t.Errorf("peak@5s (%.2fG) <= sustained (%.2fG)", r.PeakBps5s/1e9, r.SustainedBps/1e9)
	}
	// The paper's defining gap: sustained well under half the peak.
	if r.SustainedBps > 0.75*r.PeakBps5s {
		t.Errorf("sustained (%.0fM) too close to peak@5s (%.0fM); show-floor conditions missing",
			r.SustainedBps/1e6, r.PeakBps5s/1e6)
	}
	if r.TransfersDone == 0 {
		t.Fatal("no transfers completed")
	}
	wantTotal := r.SustainedBps / 8 * r.Config.Duration.Seconds()
	if r.TotalBytes < 0.95*wantTotal || r.TotalBytes > 1.05*wantTotal {
		t.Errorf("total bytes %.1fGB inconsistent with sustained rate (%.1fGB)",
			r.TotalBytes/1e9, wantTotal/1e9)
	}
	rows := r.Rows()
	if len(rows) != 8 {
		t.Fatalf("Rows() = %d rows, want the paper's 8", len(rows))
	}
	tab := Table("Table 1", rows)
	for _, want := range []string{"Striped servers", "Peak transfer rate over 0.1 seconds", "Sustained"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestTable1CPUSaturation(t *testing.T) {
	// Without competing loss the hosts must hit their CPU ceiling; the
	// aggregate then sits near servers x per-host cap.
	cfg := shortTable1()
	cfg.WANLossRate = 0
	cfg.CongestedLossRate = 0
	cfg.ShowFloorFaults = false
	cfg.HandshakeCost = 0
	r, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perHost := r.PeakBps5s / float64(cfg.Servers)
	if perHost < 180e6 || perHost > 300e6 {
		t.Errorf("per-host clean rate %.0f Mb/s outside the year-2000 CPU ceiling band", perHost/1e6)
	}
}

func TestFigure8ShapeShort(t *testing.T) {
	cfg := DefaultFigure8Config()
	cfg.Duration = 90 * time.Minute
	cfg.ParallelismSchedule = []int{1, 8}
	r, err := RunFigure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Plateau near the disk cap.
	if r.PlateauBps < 70e6 || r.PlateauBps > 85e6 {
		t.Errorf("plateau %.1f Mb/s, want ~80 (disk-capped)", r.PlateauBps/1e6)
	}
	// Outages force restarts and stall buckets.
	if r.Restarts == 0 {
		t.Error("no restarts despite fault schedule")
	}
	if r.ZeroBuckets == 0 {
		t.Error("no stalled buckets despite outages")
	}
	if r.Transfers < 10 {
		t.Errorf("only %d transfers completed", r.Transfers)
	}
	// Higher parallelism (second half) must beat single-stream (first
	// half) on this lossy path.
	vals := r.Series.Values()
	half := len(vals) / 2
	if mean(vals[half:]) < 1.2*mean(vals[:half]) {
		t.Errorf("parallelism did not lift the second half: %.1f vs %.1f Mb/s",
			mean(vals[half:])/1e6, mean(vals[:half])/1e6)
	}
	if !strings.Contains(r.Plot(80, 10), "Mb/s") {
		t.Error("plot rendering broken")
	}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func TestFigure8NoFaultsIsSmooth(t *testing.T) {
	cfg := DefaultFigure8Config()
	cfg.Duration = 40 * time.Minute
	cfg.ParallelismSchedule = []int{8}
	cfg.Faults = false
	r, err := RunFigure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restarts != 0 {
		t.Errorf("restarts = %d without faults", r.Restarts)
	}
	if r.ZeroBuckets > 1 {
		t.Errorf("stalled buckets = %d without faults", r.ZeroBuckets)
	}
	if r.MeanBps < 65e6 {
		t.Errorf("mean %.1f Mb/s too low without faults", r.MeanBps/1e6)
	}
}

func TestParallelSweepShape(t *testing.T) {
	r, err := RunParallelSweep(1, 48, []int{1, 4, 8}, 3e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Under loss, parallelism scales strongly...
	if r.LossyBps[2] < 2.5*r.LossyBps[0] {
		t.Errorf("8 vs 1 streams under loss: %.0f vs %.0f Mb/s", r.LossyBps[2]/1e6, r.LossyBps[0]/1e6)
	}
	// ...and on a clean path it matters much less.
	if r.CleanBps[2] > 2*r.CleanBps[0] {
		t.Errorf("clean path gained too much from parallelism: %.0f vs %.0f Mb/s",
			r.CleanBps[2]/1e6, r.CleanBps[0]/1e6)
	}
	if len(r.Rows()) != 3 {
		t.Error("rows mismatch")
	}
}

func TestBufferSweepKnee(t *testing.T) {
	r, err := RunBufferSweep(1, 64, []int{64 << 10, 1 << 20, 4 << 20}, []time.Duration{20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 64KB at 20ms: ~26 Mb/s; 4MB: near line rate.
	if r.Bps[0][0] > 40e6 {
		t.Errorf("64KB buffer too fast: %.0f Mb/s", r.Bps[0][0]/1e6)
	}
	if r.Bps[2][0] < 10*r.Bps[0][0] {
		t.Errorf("buffer tuning gain too small: %.0f vs %.0f Mb/s", r.Bps[2][0]/1e6, r.Bps[0][0]/1e6)
	}
}

func TestStripeSweepScales(t *testing.T) {
	r, err := RunStripeSweep(1, 96, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bps[1] < 2.8*r.Bps[0] {
		t.Errorf("4 stripes %.0f Mb/s vs 1 stripe %.0f Mb/s", r.Bps[1]/1e6, r.Bps[0]/1e6)
	}
}

func TestLargeFileBeatsChunking(t *testing.T) {
	r, err := RunLargeFile(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleBps <= r.ChunkedBps {
		t.Errorf("64-bit single session (%.0fM) not faster than 2GB-chunked (%.0fM)",
			r.SingleBps/1e6, r.ChunkedBps/1e6)
	}
}

func TestCPUModelAblation(t *testing.T) {
	r, err := RunCPUModel(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bps) != 4 {
		t.Fatal("want 4 cases")
	}
	if !(r.Bps[0] < r.Bps[1] && r.Bps[1] < r.Bps[2]) {
		t.Errorf("coalescing should monotonically lift throughput: %v", r.Bps)
	}
	// Jumbo frames are the paper's alternative remedy to coalescing: they
	// must also clearly beat the standard-frame baseline.
	if r.Bps[3] < 1.2*r.Bps[0] {
		t.Errorf("jumbo frames did not help: %v vs %v", r.Bps[3], r.Bps[0])
	}
}

func TestForecastersAdaptiveCompetitive(t *testing.T) {
	r, err := RunForecasters(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// adaptive is the last entry; it must be within 10% of the best
	// individual method (dynamic predictor selection, §5).
	adaptive := r.NMAE[len(r.NMAE)-1]
	best := adaptive
	for _, v := range r.NMAE[:len(r.NMAE)-1] {
		if v < best {
			best = v
		}
	}
	if adaptive > 1.1*best {
		t.Errorf("adaptive NMAE %.3f vs best individual %.3f", adaptive, best)
	}
}

func TestChannelCacheAblation(t *testing.T) {
	r, err := RunChannelCache(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.WarmBps <= r.ColdBps {
		t.Errorf("caching did not help: warm %.0fM vs cold %.0fM", r.WarmBps/1e6, r.ColdBps/1e6)
	}
	if r.WarmBps < 1.15*r.ColdBps {
		t.Errorf("caching gain too small: %.2fx", r.WarmBps/r.ColdBps)
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table("T", []Row{{"a", "1"}, {"longer label", "2"}})
	if !strings.Contains(out, "longer label  2") {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestReplicaSelectionNWSWins(t *testing.T) {
	r, err := RunReplicaSelection(1, 4, 48)
	if err != nil {
		t.Fatal(err)
	}
	// policies: [nws, random, static]; static picked the worst-first
	// catalog order, so NWS must finish much faster than static, and no
	// slower than random.
	if r.Elapsed[0] > r.Elapsed[2]/2 {
		t.Errorf("nws %v not clearly better than static %v", r.Elapsed[0], r.Elapsed[2])
	}
	if r.Elapsed[0] > r.Elapsed[1] {
		t.Errorf("nws %v slower than random %v", r.Elapsed[0], r.Elapsed[1])
	}
	// NWS must send every file to the fast mirror.
	for _, h := range r.Chosen[0] {
		if h != "zeta-fast" {
			t.Errorf("nws chose %q", h)
		}
	}
}

func TestMultiSiteAggregation(t *testing.T) {
	r, err := RunMultiSite(1, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpreadBps < 2.5*r.SingleBps {
		t.Errorf("spreading across sites gained only %.2fx", r.SpreadBps/r.SingleBps)
	}
}

func TestHRMStagingCacheSweep(t *testing.T) {
	r, err := RunHRMStaging(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.HitRate[0] < r.HitRate[2]) {
		t.Errorf("hit rate not increasing with cache size: %v", r.HitRate)
	}
	if !(r.MeanWait[2] < r.MeanWait[0]) {
		t.Errorf("mean wait not decreasing with cache size: %v", r.MeanWait)
	}
}

func TestSubsetSavesBytesAndTime(t *testing.T) {
	r, err := RunSubset(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.BytesSaved < 0.7 {
		t.Errorf("subset saved only %.0f%% of bytes", 100*r.BytesSaved)
	}
	// Both transfers pay the same session overheads, so the wall-clock
	// gain is smaller than the byte saving; it must still be material.
	if r.SpeedupTotal < 1.4 {
		t.Errorf("subset speedup only %.1fx", r.SpeedupTotal)
	}
}

// TestScaleSweepRuns drives the scale experiment through the full sweep,
// including the N=1024 population the incremental allocator exists for.
// Small files keep the virtual workload short; the point is that the
// run completes and the accounting is consistent.
func TestScaleSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-client sweep in -short mode")
	}
	r, err := RunScale(3, []int{16, 64, 256, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range r.Clients {
		if r.SimElapsed[i] <= 0 {
			t.Errorf("%d clients: no virtual time elapsed", c)
		}
		want := int64(c) * r.FileBytes
		if r.Bytes[i] != want {
			t.Errorf("%d clients: %d bytes delivered, want %d", c, r.Bytes[i], want)
		}
		if r.AllocPasses[i] == 0 {
			t.Errorf("%d clients: no allocation passes recorded", c)
		}
		// Component scoping: the mean re-allocated component must stay
		// around one site's flow population, far below the total.
		perPass := float64(r.AllocFlows[i]) / float64(r.AllocPasses[i])
		if c >= 256 && perPass > float64(c) {
			t.Errorf("%d clients: %.1f flows/pass — allocator is not component-scoped", c, perPass)
		}
		// Per-client latency tails: every client observed, quantiles
		// ordered, and the p999 client bounded by the slowest one.
		tl := r.Lat[i]
		if tl.N != int64(c) {
			t.Errorf("%d clients: latency histogram saw %d observations", c, tl.N)
		}
		if tl.P50 <= 0 || tl.P50 > tl.P99 || tl.P99 > tl.P999*1.0001 || tl.P999 > tl.Max*1.0001 {
			t.Errorf("%d clients: tail quantiles out of order: %+v", c, tl)
		}
	}
	if len(r.Rows()) != len(r.Clients) {
		t.Error("rows mismatch")
	}
}

// TestScaleDeterministic re-runs one population with the same seed and
// demands an identical outcome (virtual elapsed time, bytes, allocation
// pass counts) — the event trace must be reproducible.
func TestScaleDeterministic(t *testing.T) {
	a, err := RunScale(9, []int{48}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(9, []int{48}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimElapsed[0] != b.SimElapsed[0] {
		t.Errorf("virtual elapsed diverged: %v vs %v", a.SimElapsed[0], b.SimElapsed[0])
	}
	if a.Bytes[0] != b.Bytes[0] {
		t.Errorf("bytes diverged: %d vs %d", a.Bytes[0], b.Bytes[0])
	}
	if a.AllocPasses[0] != b.AllocPasses[0] || a.AllocFlows[0] != b.AllocFlows[0] {
		t.Errorf("allocation trace diverged: %d/%d vs %d/%d",
			a.AllocPasses[0], a.AllocFlows[0], b.AllocPasses[0], b.AllocFlows[0])
	}
}

// TestResultFormatting exercises every experiment's Rows() renderer on
// small runs, so the esgbench output paths stay covered.
func TestResultFormatting(t *testing.T) {
	ps, err := RunParallelSweep(1, 16, []int{1, 2}, 3e-4)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := RunBufferSweep(1, 16, []int{64 << 10}, []time.Duration{10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := RunStripeSweep(1, 32, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := RunLargeFile(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := RunCPUModel(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := RunForecasters(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunChannelCache(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunReplicaSelection(1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunMultiSite(1, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := RunHRMStaging(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := RunSubset(1)
	if err != nil {
		t.Fatal(err)
	}
	f8cfg := DefaultFigure8Config()
	f8cfg.Duration = 20 * time.Minute
	f8cfg.Faults = false
	f8, err := RunFigure8(f8cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string][]Row{
		"parallel": ps.Rows(), "buffers": bs.Rows(), "stripes": ss.Rows(),
		"largefile": lf.Rows(), "cpu": cm.Rows(), "nws": fc.Rows(),
		"chancache": cc.Rows(), "replicasel": rs.Rows(), "multisite": ms.Rows(),
		"hrm": hs.Rows(), "subset": sub.Rows(), "figure8": f8.Rows(),
	} {
		if len(rows) == 0 {
			t.Errorf("%s: empty rows", name)
			continue
		}
		out := Table(name, rows)
		for _, r := range rows {
			if r.Label == "" || r.Value == "" {
				t.Errorf("%s: empty row %+v", name, r)
			}
		}
		if len(strings.Split(out, "\n")) < len(rows) {
			t.Errorf("%s: table too short:\n%s", name, out)
		}
	}
}
