package replicate

import (
	"strings"
	"testing"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/ldapd"
	"esgrid/internal/replica"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

const mb = int64(1) << 20

// repEnv is a three-site testbed: source holds the collection, mirror is
// the new location, desk mediates.
type repEnv struct {
	clk      *vtime.Sim
	net      *simnet.Net
	cat      *replica.Catalog
	srcStore *gridftp.VirtualStore
	dstStore *gridftp.VirtualStore
	files    []string
}

func buildRepEnv(t *testing.T, seed int64) *repEnv {
	t.Helper()
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	n.AddNode("wan")
	for _, h := range []string{"source", "mirror", "desk"} {
		n.AddHost(h, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(h, "wan", simnet.LinkConfig{CapacityBps: 622e6, Delay: 8 * time.Millisecond})
	}
	cat, err := replica.New(ldapd.NewDir())
	if err != nil {
		t.Fatal(err)
	}
	files := []string{"pcm.tas.1998-01.nc", "pcm.tas.1998-02.nc", "pcm.tas.1998-03.nc"}
	if err := cat.CreateCollection("pcm", files); err != nil {
		t.Fatal(err)
	}
	src := gridftp.NewVirtualStore()
	for _, f := range files {
		src.Put(f, 64*mb)
	}
	if err := cat.AddLocation("pcm", replica.Location{
		Host: "source", Protocol: "gsiftp", Port: 2811, Path: "/d", Files: files,
	}); err != nil {
		t.Fatal(err)
	}
	return &repEnv{clk: clk, net: n, cat: cat, srcStore: src, dstStore: gridftp.NewVirtualStore(), files: files}
}

// serve starts GridFTP at source and mirror; call inside clk.Run.
func (e *repEnv) serve(t *testing.T) {
	t.Helper()
	for host, store := range map[string]*gridftp.VirtualStore{"source": e.srcStore, "mirror": e.dstStore} {
		h := e.net.Host(host)
		srv, err := gridftp.NewServer(gridftp.Config{Clock: e.clk, Net: h, Host: host, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		l, err := h.Listen(":2811")
		if err != nil {
			t.Fatal(err)
		}
		e.clk.Go(func() { srv.Serve(l) })
	}
}

func (e *repEnv) config() Config {
	return Config{
		Clock:       e.clk,
		Net:         e.net.Host("desk"),
		Catalog:     e.cat,
		Parallelism: 2,
		BufferBytes: 1 << 20,
		MaxAttempts: 4,
		Backoff:     time.Second,
	}
}

func mirrorLoc() replica.Location {
	return replica.Location{Host: "mirror", Protocol: "gsiftp", Port: 2811, Path: "/replica"}
}

func TestReplicateWholeCollection(t *testing.T) {
	e := buildRepEnv(t, 1)
	e.clk.Run(func() {
		e.serve(t)
		rep, err := Replicate(e.config(), "pcm", mirrorLoc(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Copied) != 3 || len(rep.Failed) != 0 {
			t.Fatalf("report = %+v", rep)
		}
		if rep.Bytes != 3*64*mb {
			t.Fatalf("bytes = %d", rep.Bytes)
		}
		for _, f := range e.files {
			if !e.dstStore.Has(f) {
				t.Errorf("mirror missing %s", f)
			}
		}
		// The catalog now resolves the mirror as a replica.
		locs, err := e.cat.LocationsFor("pcm", "pcm.tas.1998-02.nc")
		if err != nil {
			t.Fatal(err)
		}
		hosts := map[string]bool{}
		for _, l := range locs {
			hosts[l.Host] = true
		}
		if !hosts["mirror"] || !hosts["source"] {
			t.Fatalf("locations = %v", locs)
		}
		// Payload moved source->mirror directly, not through the desk.
		if via := e.net.TotalBytesBetween("source", "desk"); via > float64(mb) {
			t.Fatalf("%.0f payload bytes flowed through the mediator", via)
		}
		if direct := e.net.TotalBytesBetween("source", "mirror"); direct < float64(3*64*mb) {
			t.Fatalf("only %.0f bytes moved directly", direct)
		}
	})
}

func TestReplicateSubsetThenRest(t *testing.T) {
	e := buildRepEnv(t, 2)
	e.clk.Run(func() {
		e.serve(t)
		// First run copies one file; the catalog records a partial location.
		rep, err := Replicate(e.config(), "pcm", mirrorLoc(), e.files[:1])
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Copied) != 1 {
			t.Fatalf("copied = %v", rep.Copied)
		}
		locs, _ := e.cat.Locations("pcm")
		var mirrorFiles int
		for _, l := range locs {
			if l.Host == "mirror" {
				mirrorFiles = len(l.Files)
			}
		}
		if mirrorFiles != 1 {
			t.Fatalf("partial location has %d files", mirrorFiles)
		}
		// Second run completes the copy and skips what is present.
		rep, err = Replicate(e.config(), "pcm", mirrorLoc(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Skipped) != 1 || len(rep.Copied) != 2 {
			t.Fatalf("second run: %+v", rep)
		}
	})
}

func TestReplicateSurvivesSourceOutage(t *testing.T) {
	e := buildRepEnv(t, 3)
	// Second source replica at another site so retries have somewhere to go.
	e.clk.Run(func() {
		h := e.net.AddHost("backup", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		e.net.AddLink("backup", "wan", simnet.LinkConfig{CapacityBps: 155e6, Delay: 12 * time.Millisecond})
		store := gridftp.NewVirtualStore()
		for _, f := range e.files {
			store.Put(f, 64*mb)
		}
		if err := e.cat.AddLocation("pcm", replica.Location{
			Host: "backup", Protocol: "gsiftp", Port: 2811, Path: "/d", Files: e.files,
		}); err != nil {
			t.Fatal(err)
		}
		srv, _ := gridftp.NewServer(gridftp.Config{Clock: e.clk, Net: h, Host: "backup", Store: store})
		l, _ := h.Listen(":2811")
		e.clk.Go(func() { srv.Serve(l) })
		e.serve(t)

		// Kill the primary source mid-run; replication must fail over to
		// the backup replica and finish.
		link := e.net.LinkBetween("source", "wan")
		e.clk.AfterFunc(2*time.Second, func() { link.SetUp(false, true) })
		rep, err := Replicate(e.config(), "pcm", mirrorLoc(), nil)
		if err != nil {
			t.Fatalf("err = %v (report %+v)", err, rep)
		}
		if len(rep.Copied) != 3 {
			t.Fatalf("copied = %v", rep.Copied)
		}
		for _, f := range e.files {
			if !e.dstStore.Has(f) {
				t.Errorf("mirror missing %s", f)
			}
		}
	})
}

func TestReplicateErrors(t *testing.T) {
	e := buildRepEnv(t, 4)
	e.clk.Run(func() {
		e.serve(t)
		if _, err := Replicate(e.config(), "pcm", mirrorLoc(), []string{}); err == nil {
			t.Fatal("empty file list accepted")
		}
		if _, err := Replicate(e.config(), "no-such-collection", mirrorLoc(), nil); err == nil {
			t.Fatal("unknown collection accepted")
		}
		rep, err := Replicate(e.config(), "pcm", mirrorLoc(), []string{"ghost.nc"})
		if err == nil {
			t.Fatal("unknown file accepted")
		}
		if !strings.Contains(rep.Failed["ghost.nc"], "replica") {
			t.Fatalf("failure reason = %q", rep.Failed["ghost.nc"])
		}
	})
}
