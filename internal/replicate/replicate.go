// Package replicate implements the higher-level data management service
// §6.2 builds on the replica catalog and GridFTP: "reliable creation of a
// copy of a large data collection at a new location". The mediating
// client drives third-party transfers between the source site and the
// new location (§6.1), retries over alternate source replicas on
// failure, and registers the new location in the replica catalog as
// files land — so interrupted replication leaves a valid partial
// location, exactly the catalog semantics Figure 6 shows.
package replicate

import (
	"errors"
	"fmt"
	"time"

	"esgrid/internal/gridftp"
	"esgrid/internal/gsi"
	"esgrid/internal/replica"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// Config parameterizes a replication run.
type Config struct {
	// Clock and Net locate the mediating client (the user's machine in a
	// third-party transfer); required.
	Clock vtime.Clock
	Net   transport.Network
	// Catalog is consulted for source replicas and updated with the new
	// location; required.
	Catalog *replica.Catalog
	// Auth authenticates control channels at both servers (optional). A
	// delegated proxy works, as GSI intends for third-party transfers.
	Auth *gsi.Config
	// Parallelism is the number of TCP streams per transfer.
	Parallelism int
	// BufferBytes tunes the data channels.
	BufferBytes int
	// MaxAttempts bounds per-file attempts across source replicas.
	MaxAttempts int
	// Backoff separates attempts.
	Backoff time.Duration
}

// Report summarizes a replication run.
type Report struct {
	Collection string
	Dest       replica.Location
	Copied     []string
	Skipped    []string // already present at the destination
	Failed     map[string]string
	Bytes      int64
	Elapsed    time.Duration
}

// Errors returned by Replicate.
var (
	ErrNoFiles = errors.New("replicate: nothing to copy")
)

// Replicate copies the named files (nil = the whole collection) of coll
// to the destination location and registers the copy in the catalog.
// The destination's GridFTP server must be running and writable.
func Replicate(cfg Config, coll string, dest replica.Location, files []string) (Report, error) {
	rep := Report{Collection: coll, Dest: dest, Failed: map[string]string{}}
	if cfg.Clock == nil || cfg.Net == nil || cfg.Catalog == nil {
		return rep, errors.New("replicate: config needs Clock, Net and Catalog")
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	start := cfg.Clock.Now()
	if files == nil {
		all, err := cfg.Catalog.Files(coll)
		if err != nil {
			return rep, err
		}
		files = all
	}
	if len(files) == 0 {
		return rep, ErrNoFiles
	}

	// What does the destination already hold (a partial location from an
	// earlier, interrupted run)?
	already := map[string]bool{}
	destRegistered := false
	if locs, err := cfg.Catalog.Locations(coll); err == nil {
		for _, l := range locs {
			if l.Host == dest.Host {
				destRegistered = true
				for _, f := range l.Files {
					already[f] = true
				}
			}
		}
	}

	dial := func(loc replica.Location) (*gridftp.Client, error) {
		return gridftp.Dial(gridftp.ClientConfig{
			Clock:       cfg.Clock,
			Net:         cfg.Net,
			Auth:        cfg.Auth,
			Parallelism: cfg.Parallelism,
			BufferBytes: cfg.BufferBytes,
		}, fmt.Sprintf("%s:%d", loc.Host, loc.Port))
	}

	dstCli, err := dial(dest)
	if err != nil {
		return rep, fmt.Errorf("replicate: destination %s: %w", dest.Host, err)
	}
	defer dstCli.Close()

	for _, name := range files {
		if already[name] {
			rep.Skipped = append(rep.Skipped, name)
			continue
		}
		sources, err := cfg.Catalog.LocationsFor(coll, name)
		if err != nil {
			rep.Failed[name] = err.Error()
			continue
		}
		var lastErr error
		copied := false
		for attempt := 0; attempt < cfg.MaxAttempts && !copied; attempt++ {
			if attempt > 0 && cfg.Backoff > 0 {
				cfg.Clock.Sleep(cfg.Backoff)
			}
			src := sources[attempt%len(sources)]
			if src.Host == dest.Host {
				continue
			}
			srcCli, err := dial(src)
			if err != nil {
				lastErr = err
				continue
			}
			st, err := gridftp.ThirdParty(srcCli, dstCli, name, name)
			srcCli.Close()
			if err != nil {
				lastErr = err
				// The destination control session may be poisoned by a
				// half-finished transfer; rebuild it.
				dstCli.Close()
				if dstCli, err = dial(dest); err != nil {
					rep.Failed[name] = lastErr.Error()
					return rep, fmt.Errorf("replicate: destination lost: %w", err)
				}
				continue
			}
			rep.Bytes += st.Bytes
			copied = true
		}
		if !copied {
			if lastErr == nil {
				lastErr = errors.New("no usable source replica")
			}
			rep.Failed[name] = lastErr.Error()
			continue
		}
		rep.Copied = append(rep.Copied, name)
		// Register incrementally so an interrupted run leaves a valid
		// partial location.
		if !destRegistered {
			loc := dest
			loc.Files = []string{name}
			if err := cfg.Catalog.AddLocation(coll, loc); err != nil {
				rep.Failed[name] = err.Error()
				continue
			}
			destRegistered = true
		} else if err := cfg.Catalog.AddFilesToLocation(coll, dest.Host, name); err != nil {
			rep.Failed[name] = err.Error()
			continue
		}
	}
	rep.Elapsed = cfg.Clock.Now().Sub(start)
	if len(rep.Failed) > 0 {
		return rep, fmt.Errorf("replicate: %d of %d file(s) failed", len(rep.Failed), len(files))
	}
	return rep, nil
}
