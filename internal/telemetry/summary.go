// Package telemetry is the hierarchical observer plane for the ESG
// reproduction: hosts fold their local netlogger instruments into
// mergeable summaries on an Epoch-aligned tick grid, site aggregators
// fold host summaries into site summaries, and a configurable-fanout
// tree folds sites up to a single grid root. Summaries travel as real
// simnet messages, so the cost of observing the grid is itself a
// measured quantity: per-tier frame and byte counts come out of the
// same accounting as the data path (EXPERIMENTS.md §S16 shows the
// wide-area observer traffic scaling with sites, not hosts, as the
// paper's monitoring architecture sketch in §3.4 requires).
//
// Determinism contract: a summary fold is bit-exact in any association
// and order. Histogram state is held in integer nanoseconds
// (netlogger.HistSnapshot) and counter/gauge sums rely on float64
// addition being exact for integral magnitudes below 2^53, so the grid
// root's folded summary — and therefore every encoded snapshot and
// alert — is byte-identical across tree fanouts and equal-seed runs.
package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"esgrid/internal/netlogger"
)

// Summary is one node's mergeable view of a tick: every counter, gauge
// and histogram it (or its subtree) owns, plus the number of hosts
// folded in. Rows are sorted by name; merging is associative and
// commutative with the zero Summary as identity.
type Summary struct {
	Tick  int64 `json:"tick"`  // tick index on the Epoch-aligned grid
	Hosts int64 `json:"hosts"` // leaves folded into this summary
	netlogger.RegistrySnapshot
}

// Clone deep-copies s so the result is independent of the fold storage
// that produced it.
func (s Summary) Clone() Summary {
	out := s
	out.Counters = append([]netlogger.NamedValue(nil), s.Counters...)
	out.Gauges = append([]netlogger.NamedGauge(nil), s.Gauges...)
	out.Hists = make([]netlogger.NamedHist, len(s.Hists))
	for i, nh := range s.Hists {
		nh.H.Buckets = append([]netlogger.BucketCount(nil), nh.H.Buckets...)
		out.Hists[i] = nh
	}
	return out
}

// Counter returns the value of the named counter row, or 0 if absent.
func (s Summary) Counter(name string) float64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.V
		}
	}
	return 0
}

// Hist returns the named histogram row and whether it exists.
func (s Summary) Hist(name string) (netlogger.HistSnapshot, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h.H, true
		}
	}
	return netlogger.HistSnapshot{}, false
}

// Merge folds two summaries into a fresh one: matching rows merge,
// unmatched rows pass through, hosts add. It is the allocation-happy
// reference implementation; the tree's hot path uses Accumulator,
// whose property tests pin it to this function byte for byte.
func Merge(a, b Summary) Summary {
	out := Summary{Tick: a.Tick, Hosts: a.Hosts + b.Hosts}
	if a.Hosts == 0 && a.Tick == 0 {
		out.Tick = b.Tick
	}

	i, j := 0, 0
	for i < len(a.Counters) || j < len(b.Counters) {
		switch {
		case j >= len(b.Counters) || (i < len(a.Counters) && a.Counters[i].Name < b.Counters[j].Name):
			out.Counters = append(out.Counters, a.Counters[i])
			i++
		case i >= len(a.Counters) || b.Counters[j].Name < a.Counters[i].Name:
			out.Counters = append(out.Counters, b.Counters[j])
			j++
		default:
			out.Counters = append(out.Counters, netlogger.NamedValue{
				Name: a.Counters[i].Name, V: a.Counters[i].V + b.Counters[j].V,
			})
			i, j = i+1, j+1
		}
	}
	i, j = 0, 0
	for i < len(a.Gauges) || j < len(b.Gauges) {
		switch {
		case j >= len(b.Gauges) || (i < len(a.Gauges) && a.Gauges[i].Name < b.Gauges[j].Name):
			out.Gauges = append(out.Gauges, a.Gauges[i])
			i++
		case i >= len(a.Gauges) || b.Gauges[j].Name < a.Gauges[i].Name:
			out.Gauges = append(out.Gauges, b.Gauges[j])
			j++
		default:
			out.Gauges = append(out.Gauges, netlogger.NamedGauge{
				Name: a.Gauges[i].Name, G: a.Gauges[i].G.Merge(b.Gauges[j].G),
			})
			i, j = i+1, j+1
		}
	}
	i, j = 0, 0
	for i < len(a.Hists) || j < len(b.Hists) {
		switch {
		case j >= len(b.Hists) || (i < len(a.Hists) && a.Hists[i].Name < b.Hists[j].Name):
			out.Hists = append(out.Hists, a.Hists[i])
			i++
		case i >= len(a.Hists) || b.Hists[j].Name < a.Hists[i].Name:
			out.Hists = append(out.Hists, b.Hists[j])
			j++
		default:
			out.Hists = append(out.Hists, netlogger.NamedHist{
				Name: a.Hists[i].Name, H: a.Hists[i].H.Merge(b.Hists[j].H),
			})
			i, j = i+1, j+1
		}
	}
	return out
}

// Accumulator folds child summaries into one without allocating in the
// steady state. The fast path applies when a child's instrument names
// align with the accumulated shape — which is every fold after the
// first once a tree is running, since every host reports the same
// instrument set tick after tick. Misaligned children fall back to the
// reference Merge. The result is bit-identical to folding with Merge
// in the same order (and therefore, by the merge laws, in any order).
type Accumulator struct {
	sum   Summary
	bwork [][]netlogger.BucketCount // per-histogram merge workspace
	n     int                       // children folded since Reset
}

// Reset clears the accumulated values while keeping the shape and the
// storage, so the next round of aligned folds allocates nothing.
func (a *Accumulator) Reset() {
	a.sum.Tick, a.sum.Hosts, a.n = 0, 0, 0
	for i := range a.sum.Counters {
		a.sum.Counters[i].V = 0
	}
	for i := range a.sum.Gauges {
		a.sum.Gauges[i].G = netlogger.GaugeSummary{}
	}
	for i := range a.sum.Hists {
		h := &a.sum.Hists[i].H
		*h = netlogger.HistSnapshot{Buckets: h.Buckets[:0]}
	}
}

// Add folds one child summary into the accumulator.
//
//esglint:hotpath per-frame fold on every aggregation edge; aligned fast path is pinned at 0 allocs/op
func (a *Accumulator) Add(s Summary) {
	a.n++
	a.sum.Tick = s.Tick
	if !a.aligned(s) {
		hosts := a.sum.Hosts
		a.sum = Merge(a.sum, s).Clone()
		a.sum.Hosts = hosts + s.Hosts
		a.bwork = make([][]netlogger.BucketCount, len(a.sum.Hists))
		return
	}
	a.sum.Hosts += s.Hosts
	for i := range s.Counters {
		a.sum.Counters[i].V += s.Counters[i].V
	}
	for i := range s.Gauges {
		a.sum.Gauges[i].G = a.sum.Gauges[i].G.Merge(s.Gauges[i].G)
	}
	for i := range s.Hists {
		a.sum.Hists[i].H, a.bwork[i] = a.sum.Hists[i].H.MergeInPlace(s.Hists[i].H, a.bwork[i])
	}
}

func (a *Accumulator) aligned(s Summary) bool {
	if len(a.sum.Counters) != len(s.Counters) ||
		len(a.sum.Gauges) != len(s.Gauges) ||
		len(a.sum.Hists) != len(s.Hists) {
		return false
	}
	for i := range s.Counters {
		if a.sum.Counters[i].Name != s.Counters[i].Name {
			return false
		}
	}
	for i := range s.Gauges {
		if a.sum.Gauges[i].Name != s.Gauges[i].Name {
			return false
		}
	}
	for i := range s.Hists {
		if a.sum.Hists[i].Name != s.Hists[i].Name {
			return false
		}
	}
	return true
}

// Sum returns the accumulated summary. The value shares storage with
// the accumulator and is only valid until the next Reset or Add;
// callers that retain it must Clone.
func (a *Accumulator) Sum() Summary { return a.sum }

// SiteRow is the per-site drill-down the grid root publishes alongside
// the folded rollup: who is behind the aggregate, and whether any one
// site is dragging it down.
type SiteRow struct {
	Site       string  `json:"site"`
	Hosts      int64   `json:"hosts"`
	GoodputBps float64 `json:"goodput_bps"`
	StageP999s float64 `json:"stage_p999_s"`
	Status     string  `json:"status"`
}

// Frame is one telemetry message on the wire: a node's folded summary
// for a tick, plus the site drill-down rows its subtree covers. Frames
// are length-prefixed JSON; their encoded size is what the simulated
// network carries and what the per-tier traffic accounting charges.
type Frame struct {
	Node  string    `json:"node"`
	Tick  int64     `json:"tick"`
	Sum   Summary   `json:"sum"`
	Sites []SiteRow `json:"sites,omitempty"`
}

// maxFrameBytes bounds a decoded frame; a length prefix beyond it means
// a corrupt or hostile stream.
const maxFrameBytes = 16 << 20

// EncodeFrame renders f as a 4-byte big-endian length followed by JSON.
func EncodeFrame(f Frame) ([]byte, error) {
	body, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out, nil
}

// ReadFrame reads one length-prefixed frame, returning it and the total
// wire bytes consumed (prefix included).
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return Frame{}, 0, fmt.Errorf("telemetry: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, 0, err
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, 0, fmt.Errorf("telemetry: bad frame: %w", err)
	}
	return f, 4 + int(n), nil
}
