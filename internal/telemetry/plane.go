package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"esgrid/internal/mds"
	"esgrid/internal/monitor"
	"esgrid/internal/netlogger"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// HostNet is the network identity a telemetry agent runs on: a simnet
// host in the experiments, anything name-addressable in principle.
type HostNet interface {
	transport.Network
	Name() string
}

// SLO holds the grid service-level objectives the root enforces. Both
// thresholds are optional (zero disables); GoodputMinBps is a per-host
// floor, scaled by the number of hosts a summary covers before
// comparison.
type SLO struct {
	// StageP999Max is the worst acceptable p999 across stage-latency
	// histograms (names under Config.StagePrefix).
	StageP999Max time.Duration
	// GoodputMinBps is the minimum acceptable delivered rate per host.
	GoodputMinBps float64
	// Burn is how many consecutive breaching ticks turn a degradation
	// into an alert (burn-rate detection, default 3).
	Burn int
}

func (s SLO) burnTicks() int {
	if s.Burn > 0 {
		return s.Burn
	}
	return 3
}

// burnState tracks one SLO dimension's consecutive-breach streak.
type burnState struct{ streak int }

// observe advances the streak and reports the resulting health status
// plus whether the streak just crossed the burn threshold (the rising
// edge on which an alert fires).
func (b *burnState) observe(breach bool, burn int) (string, bool) {
	if !breach {
		b.streak = 0
		return mds.HealthOK, false
	}
	b.streak++
	if b.streak >= burn {
		return mds.HealthDown, b.streak == burn
	}
	return mds.HealthDegraded, false
}

func worseStatus(a, b string) string {
	rank := func(s string) int {
		switch s {
		case mds.HealthDown:
			return 2
		case mds.HealthDegraded:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// Config parameterises a telemetry plane.
type Config struct {
	Clock vtime.Clock
	// Tick is the Epoch-aligned fold cadence (default 1s).
	Tick time.Duration
	// Ticks is how many folds each agent performs before the plane
	// drains; required.
	Ticks int
	// Fanout bounds the children of any aggregator above the site tier
	// (default 4, minimum 2).
	Fanout int
	// Port is the base telemetry port; tier t aggregators listen on
	// Port+t so one host can serve several tiers.
	Port int
	// GoodputCounter names the byte counter goodput is derived from
	// (default "bytes.total"); rates are bits per second over a tick.
	GoodputCounter string
	// StagePrefix selects the stage-latency histograms SLOs watch
	// (default "stage.").
	StagePrefix string
	SLO         SLO
	// Info, when set, receives ou=health grid rollups each tick.
	Info *mds.Service
}

// TierTraffic is the observer-path cost of one tree tier: every frame
// and byte its agents sent uplink.
type TierTraffic struct {
	Tier   string `json:"tier"`
	Frames int64  `json:"frames"`
	Bytes  int64  `json:"bytes"`
}

// StageTail is one stage histogram's report quantiles in the grid
// rollup.
type StageTail struct {
	Stage string  `json:"stage"`
	N     int64   `json:"count"`
	P50   float64 `json:"p50_s"`
	P99   float64 `json:"p99_s"`
	P999  float64 `json:"p999_s"`
	Max   float64 `json:"max_s"`
}

// GridSnapshot is the root's published view of one tick. Timestamps are
// the logical tick boundary, never a message arrival instant, so equal
// seeds produce byte-identical snapshots at any tree fanout.
type GridSnapshot struct {
	Tick       int64       `json:"tick"`
	TS         string      `json:"ts"`
	Hosts      int64       `json:"hosts"`
	Sites      int         `json:"sites"`
	GoodputBps float64     `json:"goodput_bps"`
	Status     string      `json:"status"`
	Stages     []StageTail `json:"stages,omitempty"`
	SiteRows   []SiteRow   `json:"site_rows,omitempty"`
}

// TickTime maps a tick index back to its boundary instant on the
// Epoch-aligned grid.
func TickTime(idx int64, tick time.Duration) time.Time {
	return vtime.Epoch.Add(time.Duration(idx) * tick)
}

type leafDef struct {
	host HostNet
	reg  *netlogger.Registry
}

type siteDef struct {
	name   string
	agg    HostNet
	leaves []leafDef
}

// Plane wires leaves, site aggregators and a grid root into a running
// telemetry tree over the simulated network.
type Plane struct {
	cfg  Config
	mu   sync.Mutex
	done vtime.Cond

	sites    map[string]*siteDef
	rootHost HostNet
	started  bool

	rootDone  bool
	err       error
	grids     []GridSnapshot
	alerts    []monitor.Alert
	lines     []string
	lastSum   Summary
	traffic   map[string]*TierTraffic
	stageBurn burnState
	goodBurn  burnState
	prevBytes float64

	listeners []transport.Listener
}

// New creates an unstarted plane.
func New(cfg Config) (*Plane, error) {
	if cfg.Clock == nil {
		return nil, errors.New("telemetry: Config.Clock is required")
	}
	if cfg.Ticks <= 0 {
		return nil, errors.New("telemetry: Config.Ticks must be positive")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 4
	}
	if cfg.Fanout < 2 {
		return nil, errors.New("telemetry: Config.Fanout must be at least 2")
	}
	if cfg.Port == 0 {
		cfg.Port = 7070
	}
	if cfg.GoodputCounter == "" {
		cfg.GoodputCounter = "bytes.total"
	}
	if cfg.StagePrefix == "" {
		cfg.StagePrefix = "stage."
	}
	p := &Plane{
		cfg:     cfg,
		sites:   map[string]*siteDef{},
		traffic: map[string]*TierTraffic{},
	}
	p.done = cfg.Clock.NewCond(&p.mu)
	return p, nil
}

// AddSite registers a site and the host its aggregator runs on.
func (p *Plane) AddSite(name string, aggHost HostNet) error {
	if p.started {
		return errors.New("telemetry: AddSite after Start")
	}
	if _, dup := p.sites[name]; dup {
		return fmt.Errorf("telemetry: duplicate site %q", name)
	}
	p.sites[name] = &siteDef{name: name, agg: aggHost}
	return nil
}

// AddLeaf registers a reporting host under a site. reg is the host's
// instrument registry; pass nil to have the plane create one. The
// registry in use is returned either way.
func (p *Plane) AddLeaf(site string, host HostNet, reg *netlogger.Registry) (*netlogger.Registry, error) {
	if p.started {
		return nil, errors.New("telemetry: AddLeaf after Start")
	}
	s, ok := p.sites[site]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown site %q", site)
	}
	if reg == nil {
		reg = netlogger.NewRegistry(p.cfg.Clock)
	}
	s.leaves = append(s.leaves, leafDef{host: host, reg: reg})
	return reg, nil
}

// SetRoot names the host the grid root runs on.
func (p *Plane) SetRoot(host HostNet) { p.rootHost = host }

// aggNode is one running aggregator: a site fold, a mid-tier fold, or
// the grid root. Each runs as a single managed goroutine that accepts
// its children, then per tick reads one frame from every child in
// sorted-name order, folds, and forwards — so fold order is fixed by
// construction and no lock is ever held across a blocking operation.
type aggNode struct {
	p          *Plane
	name       string
	host       HostNet
	ln         transport.Listener
	parentAddr string
	children   []string // sorted child node names
	tierLabel  string   // traffic tier of this node's uplink sends
	isSite     bool
	site       string
	isRoot     bool

	prevBytes float64
	burn      burnState
}

// Start freezes the topology, builds the aggregation tree, opens every
// listener, and launches the agents. Site aggregators fold their
// leaves; above them, the sorted site list is chunked Fanout-wide per
// tier until one root fold remains. Chunks are contiguous in sorted
// order, so concatenating child drill-down rows keeps them sorted.
func (p *Plane) Start() error {
	if p.started {
		return errors.New("telemetry: already started")
	}
	if p.rootHost == nil {
		return errors.New("telemetry: SetRoot before Start")
	}
	if len(p.sites) == 0 {
		return errors.New("telemetry: no sites")
	}
	siteNames := make([]string, 0, len(p.sites))
	for name := range p.sites {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames)

	var all []*aggNode
	level := make([]*aggNode, 0, len(siteNames))
	for _, name := range siteNames {
		s := p.sites[name]
		if len(s.leaves) == 0 {
			return fmt.Errorf("telemetry: site %q has no leaves", name)
		}
		children := make([]string, len(s.leaves))
		for i, l := range s.leaves {
			children[i] = l.host.Name()
		}
		sort.Strings(children)
		level = append(level, &aggNode{
			p: p, name: "site:" + name, host: s.agg,
			children: children, tierLabel: "t1:site",
			isSite: true, site: name,
		})
	}
	all = append(all, level...)

	tier := 0
	for len(level) > p.cfg.Fanout {
		tier++
		var next []*aggNode
		for i := 0; i < len(level); i += p.cfg.Fanout {
			chunk := level[i:min(i+p.cfg.Fanout, len(level))]
			a := &aggNode{
				p:    p,
				name: fmt.Sprintf("agg:%d:%d", tier, i/p.cfg.Fanout),
				host: chunk[0].host, tierLabel: fmt.Sprintf("t%d:agg%d", tier+1, tier),
				children: nodeNames(chunk),
			}
			addr := hostPort(a.host.Name(), p.cfg.Port+tier)
			for _, c := range chunk {
				c.parentAddr = addr
			}
			next = append(next, a)
		}
		all = append(all, next...)
		level = next
	}
	root := &aggNode{
		p: p, name: "grid", host: p.rootHost,
		children: nodeNames(level), isRoot: true,
	}
	rootAddr := hostPort(root.host.Name(), p.cfg.Port+tier+1)
	for _, c := range level {
		c.parentAddr = rootAddr
	}
	all = append(all, root)

	// Bind every listener before any agent runs, so dials cannot race
	// listener setup.
	for _, a := range all {
		port := p.cfg.Port
		switch {
		case a.isRoot:
			port += tier + 1
		case !a.isSite:
			var t int
			fmt.Sscanf(a.name, "agg:%d:", &t)
			port += t
		}
		ln, err := a.host.Listen(hostPort(a.host.Name(), port))
		if err != nil {
			p.closeListeners()
			return fmt.Errorf("telemetry: %s: %w", a.name, err)
		}
		a.ln = ln
		p.listeners = append(p.listeners, ln)
	}

	p.started = true
	for _, a := range all {
		a := a
		p.cfg.Clock.Go(a.run)
	}
	for _, name := range siteNames {
		s := p.sites[name]
		addr := hostPort(s.agg.Name(), p.cfg.Port)
		for _, l := range s.leaves {
			l := l
			p.cfg.Clock.Go(func() { p.runLeaf(l, addr) })
		}
	}
	return nil
}

func nodeNames(nodes []*aggNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.name
	}
	return out
}

func hostPort(host string, port int) string { return fmt.Sprintf("%s:%d", host, port) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runLeaf is the host-side agent: every tick boundary it snapshots the
// local registry and ships the summary to its site aggregator.
func (p *Plane) runLeaf(l leafDef, parentAddr string) {
	conn, err := l.host.Dial(parentAddr)
	if err != nil {
		p.fail(fmt.Errorf("telemetry: leaf %s dial: %w", l.host.Name(), err))
		return
	}
	defer conn.Close()
	clk := p.cfg.Clock
	for i := 0; i < p.cfg.Ticks; i++ {
		b := vtime.NextTick(clk.Now(), p.cfg.Tick)
		clk.Sleep(b.Sub(clk.Now()))
		tick := int64(b.Sub(vtime.Epoch) / p.cfg.Tick)
		sum := Summary{Tick: tick, Hosts: 1, RegistrySnapshot: l.reg.Mergeable()}
		payload, err := EncodeFrame(Frame{Node: l.host.Name(), Tick: tick, Sum: sum})
		if err == nil {
			_, err = conn.Write(payload)
		}
		if err != nil {
			p.fail(fmt.Errorf("telemetry: leaf %s send: %w", l.host.Name(), err))
			return
		}
		p.account("t0:leaf", len(payload))
	}
}

// run is an aggregator's whole life: accept one connection per child
// (the first frame on each names its sender), then fold tick by tick,
// reading children in sorted-name order. Message-driven folding means
// an aggregator never consults the clock: frames carry their tick, and
// a tick folds exactly when its last child frame is consumed.
func (a *aggNode) run() {
	defer a.ln.Close()
	p := a.p

	conns := make(map[string]transport.Conn, len(a.children))
	firsts := make(map[string]Frame, len(a.children))
	for len(conns) < len(a.children) {
		c, err := a.ln.Accept()
		if err != nil {
			p.fail(fmt.Errorf("telemetry: %s accept: %w", a.name, err))
			return
		}
		f, _, err := ReadFrame(c)
		if err != nil {
			p.fail(fmt.Errorf("telemetry: %s first frame: %w", a.name, err))
			return
		}
		if _, dup := conns[f.Node]; dup || !a.expects(f.Node) {
			p.fail(fmt.Errorf("telemetry: %s: unexpected child %q", a.name, f.Node))
			return
		}
		conns[f.Node], firsts[f.Node] = c, f
	}
	defer func() {
		for _, name := range a.children {
			conns[name].Close()
		}
	}()

	var up transport.Conn
	if !a.isRoot {
		var err error
		if up, err = a.host.Dial(a.parentAddr); err != nil {
			p.fail(fmt.Errorf("telemetry: %s dial parent: %w", a.name, err))
			return
		}
		defer up.Close()
	}

	var acc Accumulator
	var rows []SiteRow
	for t := 0; t < p.cfg.Ticks; t++ {
		acc.Reset()
		rows = rows[:0]
		tick := int64(-1)
		for _, child := range a.children {
			f := firsts[child]
			if t > 0 {
				var err error
				if f, _, err = ReadFrame(conns[child]); err != nil {
					p.fail(fmt.Errorf("telemetry: %s read %s: %w", a.name, child, err))
					return
				}
				if f.Node != child {
					p.fail(fmt.Errorf("telemetry: %s: frame from %q on %q's stream", a.name, f.Node, child))
					return
				}
			}
			if tick < 0 {
				tick = f.Tick
			} else if f.Tick != tick {
				p.fail(fmt.Errorf("telemetry: %s: tick skew %d vs %d from %s", a.name, f.Tick, tick, child))
				return
			}
			acc.Add(f.Sum)
			rows = append(rows, f.Sites...)
		}
		sum := acc.Sum()
		if a.isSite {
			rows = append(rows[:0], a.siteRow(sum))
		}
		if a.isRoot {
			p.rootFold(tick, sum, rows)
			continue
		}
		payload, err := EncodeFrame(Frame{Node: a.name, Tick: tick, Sum: sum, Sites: rows})
		if err == nil {
			_, err = up.Write(payload)
		}
		if err != nil {
			p.fail(fmt.Errorf("telemetry: %s send: %w", a.name, err))
			return
		}
		p.account(a.tierLabel, len(payload))
	}
}

func (a *aggNode) expects(child string) bool {
	for _, c := range a.children {
		if c == child {
			return true
		}
	}
	return false
}

// siteRow derives the site's drill-down row from its folded summary:
// goodput from the byte-counter delta over the tick, worst stage p999,
// and SLO status from its own burn streak.
func (a *aggNode) siteRow(sum Summary) SiteRow {
	p := a.p
	cur := sum.Counter(p.cfg.GoodputCounter)
	goodput := (cur - a.prevBytes) * 8 / p.cfg.Tick.Seconds()
	a.prevBytes = cur
	p999, _ := maxStageP999(sum, p.cfg.StagePrefix)
	breach := p.cfg.SLO.stageBreach(p999) || p.cfg.SLO.goodputBreach(goodput, sum.Hosts)
	status, _ := a.burn.observe(breach, p.cfg.SLO.burnTicks())
	return SiteRow{
		Site: a.site, Hosts: sum.Hosts,
		GoodputBps: goodput, StageP999s: p999, Status: status,
	}
}

func (s SLO) stageBreach(p999s float64) bool {
	return s.StageP999Max > 0 && p999s > s.StageP999Max.Seconds()
}

func (s SLO) goodputBreach(goodputBps float64, hosts int64) bool {
	return s.GoodputMinBps > 0 && goodputBps < s.GoodputMinBps*float64(hosts)
}

// maxStageP999 returns the worst p999 across stage histograms and which
// stage owns it.
func maxStageP999(sum Summary, prefix string) (float64, string) {
	worst, name := 0.0, ""
	for _, nh := range sum.Hists {
		if !strings.HasPrefix(nh.Name, prefix) {
			continue
		}
		if q := nh.H.Quantile(0.999); q > worst {
			worst, name = q, nh.Name
		}
	}
	return worst, name
}

// rootFold finalises one tick at the grid root: derive the rollup,
// advance the SLO burn streaks, fire rising-edge alerts, publish
// ou=health entries, and append the JSONL record stream.
func (p *Plane) rootFold(tick int64, sum Summary, rows []SiteRow) {
	ts := TickTime(tick, p.cfg.Tick)
	tsStr := ts.UTC().Format(time.RFC3339Nano)
	burn := p.cfg.SLO.burnTicks()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rootDone {
		return
	}

	cur := sum.Counter(p.cfg.GoodputCounter)
	goodput := (cur - p.prevBytes) * 8 / p.cfg.Tick.Seconds()
	p.prevBytes = cur
	p999, worstStage := maxStageP999(sum, p.cfg.StagePrefix)

	stStatus, stFired := p.stageBurn.observe(p.cfg.SLO.stageBreach(p999), burn)
	gpStatus, gpFired := p.goodBurn.observe(p.cfg.SLO.goodputBreach(goodput, sum.Hosts), burn)
	status := worseStatus(stStatus, gpStatus)

	var stages []StageTail
	for _, nh := range sum.Hists {
		if !strings.HasPrefix(nh.Name, p.cfg.StagePrefix) {
			continue
		}
		stages = append(stages, StageTail{
			Stage: nh.Name, N: nh.H.N,
			P50: nh.H.Quantile(0.5), P99: nh.H.Quantile(0.99),
			P999: nh.H.Quantile(0.999), Max: nh.H.Max(),
		})
	}
	snap := GridSnapshot{
		Tick: tick, TS: tsStr,
		Hosts: sum.Hosts, Sites: len(rows),
		GoodputBps: goodput, Status: status,
		Stages:   stages,
		SiteRows: append([]SiteRow(nil), rows...),
	}
	p.grids = append(p.grids, snap)
	p.lastSum = sum.Clone()
	p.appendLine(jsonlLine{Kind: "grid", Grid: &snap})

	if stFired {
		p.fireAlert(ts, "slo.stage.burn", worstStage, fmt.Sprintf(
			"stage p999 %.3fs over SLO %.3fs for %d ticks",
			p999, p.cfg.SLO.StageP999Max.Seconds(), burn))
	}
	if gpFired {
		p.fireAlert(ts, "slo.goodput.burn", p.cfg.GoodputCounter, fmt.Sprintf(
			"grid goodput %.3g bps under floor %.3g bps for %d ticks",
			goodput, p.cfg.SLO.GoodputMinBps*float64(sum.Hosts), burn))
	}

	if p.cfg.Info != nil {
		err := p.cfg.Info.PublishGridHealth(mds.GridHealth{
			Scope: "grid", Status: status, Hosts: int(sum.Hosts), Tick: tick,
			GoodputBps: goodput, StageP999s: p999, Updated: ts,
		})
		for _, r := range rows {
			if err != nil {
				break
			}
			err = p.cfg.Info.PublishGridHealth(mds.GridHealth{
				Scope: "site:" + r.Site, Status: r.Status, Hosts: int(r.Hosts),
				Tick: tick, GoodputBps: r.GoodputBps, StageP999s: r.StageP999s,
				Updated: ts,
			})
		}
		if err != nil && p.err == nil {
			p.err = fmt.Errorf("telemetry: mds publish: %w", err)
		}
	}

	if len(p.grids) >= p.cfg.Ticks {
		p.rootDone = true
		p.done.Broadcast()
	}
}

func (p *Plane) fireAlert(ts time.Time, detector, subject, detail string) {
	a := monitor.Alert{
		Time: ts, TS: ts.UTC().Format(time.RFC3339Nano),
		Detector: detector, Host: "grid", Subject: subject, Detail: detail,
	}
	p.alerts = append(p.alerts, a)
	p.appendLine(jsonlLine{Kind: "alert", Alert: &a})
}

// account charges one uplink send to a traffic tier.
func (p *Plane) account(tier string, n int) {
	p.mu.Lock()
	t := p.traffic[tier]
	if t == nil {
		t = &TierTraffic{Tier: tier}
		p.traffic[tier] = t
	}
	t.Frames++
	t.Bytes += int64(n)
	p.mu.Unlock()
}

// fail records the first error and unblocks Wait; the plane is dead.
func (p *Plane) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.rootDone = true
	p.done.Broadcast()
	p.mu.Unlock()
}

func (p *Plane) closeListeners() {
	for _, ln := range p.listeners {
		ln.Close()
	}
	p.listeners = nil
}

// Wait blocks until the root has folded Config.Ticks ticks (or the
// plane failed) and returns the first error.
func (p *Plane) Wait() error {
	p.mu.Lock()
	for !p.rootDone {
		p.done.Wait()
	}
	err := p.err
	p.mu.Unlock()
	return err
}

// Stop tears the plane down early by closing its listeners.
func (p *Plane) Stop() { p.closeListeners() }

// Grids returns every grid snapshot folded so far, in tick order.
func (p *Plane) Grids() []GridSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]GridSnapshot(nil), p.grids...)
}

// Latest returns the most recent grid snapshot.
func (p *Plane) Latest() (GridSnapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.grids) == 0 {
		return GridSnapshot{}, false
	}
	return p.grids[len(p.grids)-1], true
}

// LastSummary returns a copy of the root's most recent folded summary —
// the exact mergeable state, for ground-truth comparison.
func (p *Plane) LastSummary() Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSum.Clone()
}

// Alerts returns the grid SLO alerts fired so far.
func (p *Plane) Alerts() []monitor.Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]monitor.Alert(nil), p.alerts...)
}

// AlertJSONL renders the alert stream in the monitor's JSONL framing.
func (p *Plane) AlertJSONL() string { return monitor.EncodeAlerts(p.Alerts()) }

// Traffic returns per-tier observer-path cost, sorted by tier label
// (t0 leaves first, then each aggregation tier going up).
func (p *Plane) Traffic() []TierTraffic {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TierTraffic, 0, len(p.traffic))
	for _, t := range p.traffic { //esglint:unordered — sorted below
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tier < out[j].Tier })
	return out
}
