package telemetry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// gridRun is one complete telemetry-plane run over a simulated WAN:
// hostsPer leaves per site behind a site router, site routers into a
// core, an observer host off the core running the grid root.
type gridRun struct {
	jsonl   string
	alerts  string
	lastSum string
	grids   []GridSnapshot
	traffic []TierTraffic
	health  []mds.GridHealth
	render  string
}

func runGrid(t *testing.T, seed int64, sites, hostsPer, fanout, ticks int, slo SLO) gridRun {
	t.Helper()
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)

	info, err := mds.New(ldapd.NewDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Clock: clk, Tick: time.Second, Ticks: ticks, Fanout: fanout,
		SLO: slo, Info: info,
	})
	if err != nil {
		t.Fatal(err)
	}

	root := n.AddHost("obs", simnet.HostConfig{})
	n.AddLink("obs", "core", simnet.LinkConfig{CapacityBps: 622e6, Delay: 5 * time.Millisecond})
	p.SetRoot(root)

	var regs []*netlogger.Registry
	for s := 0; s < sites; s++ {
		site := fmt.Sprintf("s%02d", s)
		router := "r" + site
		n.AddLink(router, "core", simnet.LinkConfig{CapacityBps: 622e6, Delay: 10 * time.Millisecond})
		agg := n.AddHost("ag"+site, simnet.HostConfig{})
		n.AddLink("ag"+site, router, simnet.LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})
		if err := p.AddSite(site, agg); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < hostsPer; h++ {
			name := fmt.Sprintf("h%sx%02d", site, h)
			leaf := n.AddHost(name, simnet.HostConfig{})
			n.AddLink(name, router, simnet.LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})
			reg, err := p.AddLeaf(site, leaf, nil)
			if err != nil {
				t.Fatal(err)
			}
			regs = append(regs, reg)
		}
	}

	// Synthetic workload: each leaf observes stage latencies and byte
	// deliveries mid-tick (never on a boundary), from a per-leaf seeded
	// stream, so equal seeds replay the exact same observations.
	workload := func(idx int, reg *netlogger.Registry) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(idx)))
		off := time.Duration(200+idx) * time.Millisecond
		for i := 0; i < ticks; i++ {
			clk.Sleep(off)
			reg.LogHist("stage.retr").Observe(0.05 + rng.Float64()*1.2)
			reg.LogHist("stage.stor").Observe(0.02 + rng.ExpFloat64()*0.3)
			reg.Counter("bytes.total").Add(float64(2_000_000 + rng.Intn(1_000_000)))
			reg.Gauge("queue.depth").Set(float64(rng.Intn(12)))
			clk.Sleep(time.Second - off)
		}
	}

	var runErr error
	clk.Run(func() {
		if runErr = p.Start(); runErr != nil {
			return
		}
		for i, reg := range regs {
			i, reg := i, reg
			clk.Go(func() { workload(i, reg) })
		}
		runErr = p.Wait()
	})
	if runErr != nil {
		t.Fatal(runErr)
	}

	// Ground truth: the flat fold of every leaf registry, which the
	// tree's root must reproduce bit for bit.
	ref := Summary{}
	for _, reg := range regs {
		ref = Merge(ref, Summary{Hosts: 1, RegistrySnapshot: reg.Mergeable()})
	}
	last := p.LastSummary()
	ref.Tick = last.Tick
	wantRef, _ := json.Marshal(ref)
	gotLast, _ := json.Marshal(last)
	if string(wantRef) != string(gotLast) {
		t.Fatalf("root fold != flat fold of all hosts:\n%s\n%s", gotLast, wantRef)
	}

	health, err := info.GridHealths()
	if err != nil {
		t.Fatal(err)
	}
	return gridRun{
		jsonl: p.TelemetryJSONL(), alerts: p.AlertJSONL(),
		lastSum: string(gotLast), grids: p.Grids(),
		traffic: p.Traffic(), health: health, render: p.RenderGrid(),
	}
}

func TestPlaneFoldsGridExactlyAndDeterministically(t *testing.T) {
	const sites, hostsPer, ticks = 5, 3, 6
	slo := SLO{StageP999Max: 10 * time.Second} // never breached
	base := runGrid(t, 42, sites, hostsPer, 2, ticks, slo)

	if len(base.grids) != ticks {
		t.Fatalf("grid snapshots = %d, want %d", len(base.grids), ticks)
	}
	last := base.grids[ticks-1]
	if last.Hosts != sites*hostsPer || last.Sites != sites || last.Status != mds.HealthOK {
		t.Fatalf("last snapshot: %+v", last)
	}
	if last.TS != TickTime(last.Tick, time.Second).UTC().Format(time.RFC3339Nano) {
		t.Fatalf("snapshot TS %q is not the tick boundary", last.TS)
	}
	if last.GoodputBps <= 0 || len(last.Stages) != 2 || len(last.SiteRows) != sites {
		t.Fatalf("rollup incomplete: %+v", last)
	}
	for i, r := range last.SiteRows {
		if want := fmt.Sprintf("s%02d", i); r.Site != want || r.Hosts != hostsPer {
			t.Fatalf("site row %d = %+v", i, r)
		}
	}

	// Equal seed, equal outputs — at ANY tree fanout: the published
	// stream is a function of the folded data, not of tree shape or
	// message timing.
	for _, fanout := range []int{2, 4, 8} {
		got := runGrid(t, 42, sites, hostsPer, fanout, ticks, slo)
		if got.jsonl != base.jsonl || got.alerts != base.alerts || got.lastSum != base.lastSum {
			t.Fatalf("fanout %d diverged from fanout 2 output", fanout)
		}
	}
	// A different seed must actually change the stream.
	if other := runGrid(t, 43, sites, hostsPer, 2, ticks, slo); other.jsonl == base.jsonl {
		t.Fatal("different seeds produced identical telemetry")
	}
}

func TestPlaneObserverTrafficAndTiers(t *testing.T) {
	const sites, hostsPer, ticks = 5, 3, 4
	r := runGrid(t, 7, sites, hostsPer, 2, ticks, SLO{})

	byTier := map[string]TierTraffic{}
	for _, tt := range r.traffic {
		byTier[tt.Tier] = tt
	}
	leaf, ok := byTier["t0:leaf"]
	if !ok || leaf.Frames != int64(sites*hostsPer*ticks) {
		t.Fatalf("leaf tier = %+v", leaf)
	}
	site, ok := byTier["t1:site"]
	if !ok || site.Frames != int64(sites*ticks) {
		t.Fatalf("site tier = %+v", site)
	}
	// 5 sites at fanout 2 need one mid tier (3 aggregators).
	mid, ok := byTier["t2:agg1"]
	if !ok || mid.Frames != int64(3*ticks) {
		t.Fatalf("mid tier = %+v", mid)
	}
	if leaf.Bytes <= site.Bytes {
		t.Fatalf("leaf tier (%d B) should outweigh site tier (%d B)", leaf.Bytes, site.Bytes)
	}
}

func TestPlaneSLOBurnAlertsAndHealth(t *testing.T) {
	const sites, hostsPer, ticks = 3, 2, 6
	// Impossible objectives: latency ceiling under the workload's floor
	// and a goodput floor above what leaves deliver — both dimensions
	// breach from tick 1 and burn through at tick 3.
	slo := SLO{StageP999Max: 10 * time.Millisecond, GoodputMinBps: 1e12, Burn: 3}
	r := runGrid(t, 11, sites, hostsPer, 4, ticks, slo)

	var lines []string
	for _, l := range strings.Split(strings.TrimSpace(r.alerts), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("alerts = %q", r.alerts)
	}
	if !strings.Contains(lines[0], "slo.stage.burn") || !strings.Contains(lines[1], "slo.goodput.burn") {
		t.Fatalf("alert detectors: %q", lines)
	}
	wantTS := TickTime(3, time.Second).UTC().Format(time.RFC3339Nano)
	if !strings.Contains(lines[0], wantTS) {
		t.Fatalf("alert not at burn tick 3: %q", lines[0])
	}

	if r.grids[0].Status != mds.HealthDegraded || r.grids[ticks-1].Status != mds.HealthDown {
		t.Fatalf("grid status progression: %s .. %s", r.grids[0].Status, r.grids[ticks-1].Status)
	}
	// mds carries the same rollup: grid scope first, then each site.
	if len(r.health) != 1+sites {
		t.Fatalf("health rows = %+v", r.health)
	}
	if r.health[0].Scope != "grid" || r.health[0].Status != mds.HealthDown ||
		r.health[0].Tick != int64(ticks) || r.health[0].Hosts != sites*hostsPer {
		t.Fatalf("grid health = %+v", r.health[0])
	}
	if r.health[1].Scope != "site:s00" || r.health[1].Status != mds.HealthDown {
		t.Fatalf("site health = %+v", r.health[1])
	}
}

func TestPlaneJSONLAndRender(t *testing.T) {
	r := runGrid(t, 3, 2, 2, 2, 3, SLO{})
	lines := strings.Split(strings.TrimSpace(r.jsonl), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3 grid records", len(lines))
	}
	kind, g, _, err := DecodeTelemetryLine(lines[0])
	if err != nil || kind != "grid" || g.Tick != 1 {
		t.Fatalf("line 0: kind=%q g=%+v err=%v", kind, g, err)
	}
	if _, _, _, err := DecodeTelemetryLine("{nope"); err == nil {
		t.Fatal("bad line decoded")
	}
	for _, want := range []string{"grid @", "s00", "s01", "t0:leaf", "observer traffic"} {
		if !strings.Contains(r.render, want) {
			t.Fatalf("render missing %q:\n%s", want, r.render)
		}
	}
}

func TestPlaneConfigValidation(t *testing.T) {
	clk := vtime.NewSim(1)
	if _, err := New(Config{Clock: clk}); err == nil {
		t.Fatal("Ticks unset accepted")
	}
	if _, err := New(Config{Clock: clk, Ticks: 1, Fanout: 1}); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := New(Config{Ticks: 1}); err == nil {
		t.Fatal("nil clock accepted")
	}
	p, err := New(Config{Clock: clk, Ticks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("start with no root accepted")
	}
	n := simnet.New(clk)
	h := n.AddHost("x", simnet.HostConfig{})
	p.SetRoot(h)
	if err := p.Start(); err == nil {
		t.Fatal("start with no sites accepted")
	}
	if err := p.AddSite("a", h); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSite("a", h); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if _, err := p.AddLeaf("ghost", h, nil); err == nil {
		t.Fatal("leaf on unknown site accepted")
	}
	if err := p.Start(); err == nil {
		t.Fatal("site with no leaves accepted")
	}
}

func TestPlaneRPCHandlers(t *testing.T) {
	r := runGridPlane(t)
	g, ok := r.Latest()
	if !ok || g.Tick != 2 {
		t.Fatalf("latest = %+v ok=%v", g, ok)
	}
}

func TestPlaneFailsWhenNetworkDies(t *testing.T) {
	clk := vtime.NewSim(9)
	n := simnet.New(clk)
	p, err := New(Config{Clock: clk, Ticks: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := n.AddHost("obs", simnet.HostConfig{})
	n.AddLink("obs", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	agg := n.AddHost("ag", simnet.HostConfig{})
	n.AddLink("ag", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	leaf := n.AddHost("h0", simnet.HostConfig{})
	n.AddLink("h0", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	p.SetRoot(root)
	if err := p.AddSite("s", agg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddLeaf("s", leaf, nil); err != nil {
		t.Fatal(err)
	}
	// Break name resolution before the first dial: the leaf agent
	// fails, the failure reaches Wait, and teardown still works.
	n.SetDNS(false)
	var runErr error
	clk.Run(func() {
		if runErr = p.Start(); runErr != nil {
			return
		}
		runErr = p.Wait()
	})
	if runErr == nil {
		t.Fatal("plane survived a dead name service")
	}
	p.Stop()
	if _, ok := p.Latest(); ok {
		t.Fatal("snapshot from a failed plane")
	}
}

// runGridPlane runs a tiny plane and returns it still-populated for
// accessor-level tests.
func runGridPlane(t *testing.T) *Plane {
	t.Helper()
	clk := vtime.NewSim(5)
	n := simnet.New(clk)
	p, err := New(Config{Clock: clk, Ticks: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := n.AddHost("obs", simnet.HostConfig{})
	n.AddLink("obs", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	agg := n.AddHost("ag", simnet.HostConfig{})
	n.AddLink("ag", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	leaf := n.AddHost("h0", simnet.HostConfig{})
	n.AddLink("h0", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	p.SetRoot(root)
	if err := p.AddSite("s", agg); err != nil {
		t.Fatal(err)
	}
	reg, err := p.AddLeaf("s", leaf, nil)
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	clk.Run(func() {
		if runErr = p.Start(); runErr != nil {
			return
		}
		clk.Go(func() {
			clk.Sleep(300 * time.Millisecond)
			reg.Counter("bytes.total").Add(1e6)
			reg.LogHist("stage.retr").Observe(0.1)
		})
		runErr = p.Wait()
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return p
}
