package telemetry

import (
	"strings"
	"testing"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/monitor"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// TestRPCRoundTrip drives the tel.* endpoints over a real simulated
// connection: the root serves, a client host polls, exactly what esgmon
// -grid -addr does against a live plane.
func TestRPCRoundTrip(t *testing.T) {
	clk := vtime.NewSim(13)
	n := simnet.New(clk)
	p, err := New(Config{Clock: clk, Ticks: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := n.AddHost("obs", simnet.HostConfig{})
	n.AddLink("obs", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	agg := n.AddHost("ag", simnet.HostConfig{})
	n.AddLink("ag", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	leaf := n.AddHost("h0", simnet.HostConfig{})
	n.AddLink("h0", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	console := n.AddHost("console", simnet.HostConfig{})
	n.AddLink("console", "core", simnet.LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	p.SetRoot(root)
	if err := p.AddSite("s", agg); err != nil {
		t.Fatal(err)
	}
	var reg *netlogger.Registry
	if reg, err = p.AddLeaf("s", leaf, nil); err != nil {
		t.Fatal(err)
	}

	srv := esgrpc.NewServer(clk, nil)
	p.RegisterRPC(srv)

	var gotGrid GridSnapshot
	var gotAlerts AlertsReply
	var gotTraffic TrafficReply
	var earlyErr, runErr error
	clk.Run(func() {
		ln, err := root.Listen("obs:9200")
		if err != nil {
			runErr = err
			return
		}
		clk.Go(func() { srv.Serve(ln) })

		cli, err := esgrpc.Dial(clk, console, "obs:9200", nil)
		if err != nil {
			runErr = err
			return
		}
		defer cli.Close()
		// Before the first fold, tel.grid must refuse cleanly.
		earlyErr = cli.Call("tel.grid", nil, &gotGrid)

		if runErr = p.Start(); runErr != nil {
			return
		}
		clk.Go(func() {
			clk.Sleep(400 * time.Millisecond)
			reg.Counter("bytes.total").Add(5e6)
			reg.LogHist("stage.retr").Observe(0.2)
		})
		if runErr = p.Wait(); runErr != nil {
			return
		}
		if runErr = cli.Call("tel.grid", nil, &gotGrid); runErr != nil {
			return
		}
		if runErr = cli.Call("tel.alerts", nil, &gotAlerts); runErr != nil {
			return
		}
		runErr = cli.Call("tel.traffic", nil, &gotTraffic)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if earlyErr == nil || !strings.Contains(earlyErr.Error(), "no grid snapshot") {
		t.Fatalf("pre-fold tel.grid = %v", earlyErr)
	}
	if gotGrid.Tick != 2 || gotGrid.Hosts != 1 || gotGrid.Sites != 1 {
		t.Fatalf("tel.grid = %+v", gotGrid)
	}
	if len(gotAlerts.Alerts) != 0 {
		t.Fatalf("tel.alerts = %+v", gotAlerts)
	}
	if len(gotTraffic.Tiers) != 2 || gotTraffic.Tiers[0].Tier != "t0:leaf" {
		t.Fatalf("tel.traffic = %+v", gotTraffic)
	}
}

func TestRenderGridEmptyAndUnits(t *testing.T) {
	clk := vtime.NewSim(1)
	p, err := New(Config{Clock: clk, Ticks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RenderGrid(); !strings.Contains(got, "no snapshot") {
		t.Fatalf("empty render = %q", got)
	}
	for v, want := range map[float64]string{
		2.5e9: "2.50 Gb/s", 5e6: "5.00 Mb/s", 1.2e3: "1.20 kb/s", 42: "42 b/s",
	} {
		if got := fmtBps(v); got != want {
			t.Errorf("fmtBps(%g) = %q, want %q", v, got, want)
		}
	}
	if k, _, _, err := DecodeTelemetryLine(`{"kind":"alert","alert":{"ts":"x","detector":"d"}}`); err != nil || k != "alert" {
		t.Fatalf("alert line: %q %v", k, err)
	}
}

var _ = monitor.Alert{} // keep the import tied to the reply types
