package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"esgrid/internal/netlogger"
)

// hostSummary builds a deterministic single-host summary with the
// instrument shape every telemetry leaf reports: stage histograms, byte
// counters, a queue gauge.
func hostSummary(seed int64, ticks int) Summary {
	rng := rand.New(rand.NewSource(seed))
	reg := netlogger.NewRegistry(nil)
	for i := 0; i < ticks; i++ {
		reg.LogHist("stage.retr").Observe(0.02 + rng.Float64()*2)
		reg.LogHist("stage.stor").Observe(0.01 + rng.ExpFloat64()*0.5)
		reg.Counter("bytes.total").Add(float64(1_000_000 + rng.Intn(500_000)))
		reg.Gauge("queue.depth").Set(float64(rng.Intn(16)))
	}
	return Summary{Tick: 7, Hosts: 1, RegistrySnapshot: reg.Mergeable()}
}

func encJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMergeLaws(t *testing.T) {
	a, b, c := hostSummary(1, 40), hostSummary(2, 40), hostSummary(3, 40)
	abc1 := Merge(Merge(a, b), c)
	abc2 := Merge(a, Merge(b, c))
	cba := Merge(Merge(c, b), a)
	if !bytes.Equal(encJSON(t, abc1), encJSON(t, abc2)) {
		t.Fatal("merge is not associative")
	}
	if !bytes.Equal(encJSON(t, abc1), encJSON(t, cba)) {
		t.Fatal("merge is not commutative")
	}
	if id := Merge(a, Summary{}); !bytes.Equal(encJSON(t, id), encJSON(t, a)) {
		t.Fatal("zero summary is not a merge identity")
	}
	if got := Merge(a, b).Hosts; got != 2 {
		t.Fatalf("hosts fold = %d, want 2", got)
	}
}

// TestAccumulatorMatchesReferenceUnderPermutation is the tree's
// determinism keystone: folding any permutation of the same children
// through the in-place accumulator yields byte-identical encodings, and
// identical to the pure reference Merge.
func TestAccumulatorMatchesReferenceUnderPermutation(t *testing.T) {
	children := make([]Summary, 12)
	for i := range children {
		children[i] = hostSummary(int64(10+i), 30)
	}
	ref := Summary{}
	for _, c := range children {
		ref = Merge(ref, c)
	}
	want := encJSON(t, ref)

	rng := rand.New(rand.NewSource(99))
	var acc Accumulator
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(children))
		acc.Reset()
		for _, i := range perm {
			acc.Add(children[i])
		}
		if got := encJSON(t, acc.Sum()); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: permuted accumulator fold diverged:\n%s\n%s", trial, got, want)
		}
	}
}

// TestAccumulatorMisalignedChildren exercises the slow path: children
// with disjoint and overlapping instrument sets still fold exactly.
func TestAccumulatorMisalignedChildren(t *testing.T) {
	regA := netlogger.NewRegistry(nil)
	regA.Counter("a.only").Add(3)
	regA.LogHist("stage.retr").Observe(0.5)
	regB := netlogger.NewRegistry(nil)
	regB.Counter("b.only").Add(4)
	regB.Counter("a.only").Add(2)
	regB.Gauge("q").Set(1)
	a := Summary{Tick: 1, Hosts: 1, RegistrySnapshot: regA.Mergeable()}
	b := Summary{Tick: 1, Hosts: 1, RegistrySnapshot: regB.Mergeable()}

	var acc Accumulator
	acc.Reset()
	acc.Add(a)
	acc.Add(b)
	want := Merge(a, b)
	if !bytes.Equal(encJSON(t, acc.Sum()), encJSON(t, want)) {
		t.Fatalf("misaligned fold diverged:\n%+v\n%+v", acc.Sum(), want)
	}
	if acc.Sum().Counter("a.only") != 5 || acc.Sum().Counter("b.only") != 4 {
		t.Fatalf("counters = %+v", acc.Sum().Counters)
	}
}

func TestAccumulatorSteadyStateAllocFree(t *testing.T) {
	children := make([]Summary, 16)
	for i := range children {
		children[i] = hostSummary(int64(20+i), 50)
	}
	var acc Accumulator
	fold := func() {
		acc.Reset()
		for i := range children {
			acc.Add(children[i])
		}
	}
	fold()
	fold()
	if n := testing.AllocsPerRun(50, fold); n != 0 {
		t.Fatalf("steady-state fold allocates %.1f/op, want 0", n)
	}
}

func BenchmarkTelemetryFold(b *testing.B) {
	children := make([]Summary, 16)
	for i := range children {
		children[i] = hostSummary(int64(30+i), 50)
	}
	var acc Accumulator
	acc.Reset()
	for i := range children {
		acc.Add(children[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		acc.Reset()
		for i := range children {
			acc.Add(children[i])
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Node: "site:ncar", Tick: 42,
		Sum: hostSummary(5, 25),
		Sites: []SiteRow{{
			Site: "ncar", Hosts: 8, GoodputBps: 1e8, StageP999s: 1.25, Status: "ok",
		}},
	}
	wire, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadFrame(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d wire bytes", n, len(wire))
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip:\n%+v\n%+v", got, f)
	}
	if _, _, err := ReadFrame(bytes.NewReader(wire[:len(wire)-3])); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestSummaryAccessors(t *testing.T) {
	s := hostSummary(8, 10)
	if s.Counter("bytes.total") <= 0 {
		t.Fatal("counter lookup failed")
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	if _, ok := s.Hist("stage.retr"); !ok {
		t.Fatal("hist lookup failed")
	}
	if _, ok := s.Hist("missing"); ok {
		t.Fatal("phantom hist")
	}
	c := s.Clone()
	c.Hists[0].H.Buckets[0].N++
	if reflect.DeepEqual(c.Hists[0].H, s.Hists[0].H) {
		t.Fatal("clone shares bucket storage")
	}
}

func TestTickTime(t *testing.T) {
	if got := TickTime(0, time.Second); !got.Equal(time.Date(2000, 11, 6, 8, 0, 0, 0, time.UTC)) {
		t.Fatalf("tick 0 = %v", got)
	}
	if got := TickTime(90, 2*time.Second); got.Sub(TickTime(0, 2*time.Second)) != 3*time.Minute {
		t.Fatalf("tick 90 = %v", got)
	}
}
