package telemetry

import (
	"encoding/json"
	"errors"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gsi"
	"esgrid/internal/monitor"
)

// AlertsReply carries the grid alert stream over RPC.
type AlertsReply struct {
	Alerts []monitor.Alert `json:"alerts"`
}

// TrafficReply carries the per-tier observer cost over RPC.
type TrafficReply struct {
	Tiers []TierTraffic `json:"tiers"`
}

// RegisterRPC exposes the plane's grid view on an RPC server:
// tel.grid (latest GridSnapshot), tel.alerts, tel.traffic. esgmon
// -grid polls these against a live root.
func (p *Plane) RegisterRPC(srv *esgrpc.Server) {
	srv.Handle("tel.grid", func(_ *gsi.Peer, _ json.RawMessage) (any, error) {
		g, ok := p.Latest()
		if !ok {
			return nil, errors.New("telemetry: no grid snapshot yet")
		}
		return g, nil
	})
	srv.Handle("tel.alerts", func(_ *gsi.Peer, _ json.RawMessage) (any, error) {
		return AlertsReply{Alerts: p.Alerts()}, nil
	})
	srv.Handle("tel.traffic", func(_ *gsi.Peer, _ json.RawMessage) (any, error) {
		return TrafficReply{Tiers: p.Traffic()}, nil
	})
}
