package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"esgrid/internal/monitor"
)

// jsonlLine is one record of the telemetry stream esgmon replays: a
// grid snapshot or an alert, tagged by kind so a reader can dispatch
// without sniffing fields.
type jsonlLine struct {
	Kind  string         `json:"kind"`
	Grid  *GridSnapshot  `json:"grid,omitempty"`
	Alert *monitor.Alert `json:"alert,omitempty"`
}

// DecodeTelemetryLine parses one line of a telemetry JSONL stream.
func DecodeTelemetryLine(line string) (kind string, g GridSnapshot, a monitor.Alert, err error) {
	var l jsonlLine
	if err = json.Unmarshal([]byte(line), &l); err != nil {
		return "", g, a, fmt.Errorf("telemetry: bad line: %w", err)
	}
	if l.Grid != nil {
		g = *l.Grid
	}
	if l.Alert != nil {
		a = *l.Alert
	}
	return l.Kind, g, a, nil
}

// appendLine encodes one record onto the JSONL stream; callers hold
// p.mu.
func (p *Plane) appendLine(l jsonlLine) {
	b, err := json.Marshal(l)
	if err != nil {
		if p.err == nil {
			p.err = err
		}
		return
	}
	p.lines = append(p.lines, string(b))
}

// TelemetryJSONL renders the full record stream — snapshots and alerts
// interleaved in fold order — one JSON object per line.
func (p *Plane) TelemetryJSONL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.lines) == 0 {
		return ""
	}
	return strings.Join(p.lines, "\n") + "\n"
}

// RenderGridSnapshot formats one grid snapshot, with optional traffic
// tiers, as the terminal view esgmon -grid shows.
func RenderGridSnapshot(g GridSnapshot, traffic []TierTraffic) string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid @ %s  tick %d  status %s\n", g.TS, g.Tick, g.Status)
	fmt.Fprintf(&b, "  hosts %d across %d sites, goodput %s\n",
		g.Hosts, g.Sites, fmtBps(g.GoodputBps))
	if len(g.Stages) > 0 {
		fmt.Fprintf(&b, "  %-24s %8s %9s %9s %9s %9s\n",
			"stage", "count", "p50", "p99", "p999", "max")
		for _, s := range g.Stages {
			fmt.Fprintf(&b, "  %-24s %8d %8.3fs %8.3fs %8.3fs %8.3fs\n",
				s.Stage, s.N, s.P50, s.P99, s.P999, s.Max)
		}
	}
	if len(g.SiteRows) > 0 {
		fmt.Fprintf(&b, "  %-16s %6s %14s %10s %s\n",
			"site", "hosts", "goodput", "p999", "status")
		for _, r := range g.SiteRows {
			fmt.Fprintf(&b, "  %-16s %6d %14s %9.3fs %s\n",
				r.Site, r.Hosts, fmtBps(r.GoodputBps), r.StageP999s, r.Status)
		}
	}
	if len(traffic) > 0 {
		fmt.Fprintf(&b, "  observer traffic:\n")
		for _, t := range traffic {
			fmt.Fprintf(&b, "    %-12s %6d frames  %10d bytes\n", t.Tier, t.Frames, t.Bytes)
		}
	}
	return b.String()
}

// RenderGrid formats the plane's latest snapshot and traffic totals.
func (p *Plane) RenderGrid() string {
	g, ok := p.Latest()
	if !ok {
		return "grid: no snapshot yet\n"
	}
	return RenderGridSnapshot(g, p.Traffic())
}

func fmtBps(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f Gb/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f Mb/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f kb/s", v/1e3)
	}
	return fmt.Sprintf("%.0f b/s", v)
}
