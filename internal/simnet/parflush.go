package simnet

import (
	"math"
	"time"
)

// Parallel end-of-instant flush.
//
// Max-min allocation decomposes exactly over connected components of the
// resource-sharing graph (alloc.go), and the flush already re-allocates
// one component at a time. This file fans those per-component passes out
// to the clock's worker pool (vtime.Fan): the BFS gather stays serial
// under Net.mu, the pure compute — folding transmission progress and
// running the water-filling kernel on each component's private
// allocScratch — runs on parallel lanes, and every observable effect is
// applied afterwards by the advancing goroutine in canonical component
// order. "Canonical" means dirty-seed discovery order, which is itself
// a deterministic function of the event sequence, so the rate
// applications, completion/loss timer (re)schedules, RNG draws, flight
// records and counter increments happen in exactly the order the
// sequential flush would produce them — the event stream, logs and
// dumps stay byte-identical for equal seeds at any worker count.
//
// The fan tasks are effect-free by construction: a task reads only
// state frozen for the instant (membership edges, window caps, resource
// capacities — the simulator is quiescent and the advancing goroutine
// is the one waiting on the barrier) and writes only flow-local fold
// counters and disjoint slices of the shared rate buffer. Tasks never
// touch the clock, the RNG, the logger or the recorder.
//
// Conservative merge: instants that change the component structure
// itself — flow attach/detach (dials, completions, disk rebinding),
// host crashes, anything that bumps the membership generation — set
// parUnsafe, and that flush runs the plain sequential path. Splitting
// or joining components is only observable at a flush boundary, so
// handling structural instants sequentially keeps the parallel path's
// frozen-input assumption trivially true. Differential-verification
// mode forces sequential likewise.

// parMinFlows is the minimum number of gathered flows worth a fan;
// below it the gathered components run inline on lane 0 (counted in
// seqFlushes), since waking workers costs more than the passes.
const parMinFlows = 8

// parRunner adapts the Net's per-component task into a vtime.Runner
// without a per-flush closure allocation (New wires parRun.n).
type parRunner struct{ n *Net }

// RunTask computes rates for gathered component task on worker lane
// worker. Effect-free: folds are flow-local, results land in the
// task's disjoint parRates window, and the lane's own allocScratch
// absorbs all allocator state.
//
//esglint:hotpath parallel-flush worker body; every component rate solve runs here
func (pr *parRunner) RunTask(task, worker int) {
	n := pr.n
	lo, hi := n.parComps[task], n.parComps[task+1]
	comp := n.parFlows[lo:hi]
	now := n.parNow
	for _, f := range comp {
		f.fold(now)
	}
	if len(comp) == 1 {
		// Same closed form as the sequential single-flow fast path.
		f := comp[0]
		rate := f.windowCap
		for _, rr := range f.refs() {
			if r := rr.r.effective() / rr.w; r < rate {
				rate = r
			}
		}
		if math.IsInf(rate, 1) {
			rate = loopbackBps
		}
		n.parRates[lo] = rate
		return
	}
	rates := n.parScr[worker].alloc(comp, n.nextResID, n.csrGen)
	copy(n.parRates[lo:hi], rates)
}

// markStructuralLocked latches a component-structure change for the
// current instant: the next flush takes the conservative sequential
// path. Caller holds Net.mu.
func (n *Net) markStructuralLocked() { n.parUnsafe = true }

// gatherComponentLocked appends seed's connected component (flows
// transitively linked through shared resources) to buf, epoch-stamping
// flows and resources so each is visited once per flush. Identical
// traversal to reallocComponentLocked's gather, so discovery order —
// and with it allocation order and floating-point rounding — matches
// the sequential flush exactly. Caller holds Net.mu.
func (n *Net) gatherComponentLocked(seed *flow, buf []*flow) []*flow {
	base := len(buf)
	seed.epoch = n.epoch
	buf = append(buf, seed)
	for i := base; i < len(buf); i++ {
		for _, rr := range buf[i].refs() {
			r := rr.r
			if r.epoch == n.epoch {
				continue
			}
			r.epoch = n.epoch
			for _, e := range r.flows {
				if e.f.epoch != n.epoch {
					e.f.epoch = n.epoch
					buf = append(buf, e.f)
				}
			}
		}
	}
	// Same canonical in-component order as the sequential path, so the
	// kernel's float rounding and the merge's setRate order match it.
	sortFlowsBySeq(buf[base:])
	return buf
}

// tryParallelFlushLocked runs the gather / fan / merge flush when the
// instant qualifies; it reports false (having consumed nothing) when
// the flush must take the sequential path. Caller holds Net.mu and has
// already bumped the visit epoch.
//
//esglint:hotpath gather/fan/merge for every dirty flush instant, the highest-frequency path in simnet
func (n *Net) tryParallelFlushLocked(now time.Duration) bool {
	w := n.clk.Workers()
	if w < 2 {
		return false
	}
	if n.parUnsafe || n.verifyAllocs {
		n.consFlushes++
		return false
	}

	// Serial gather, in the sequential flush's dirty-seed order.
	comps := n.parComps[:0]
	buf := n.parFlows[:0]
	for _, f := range n.dirtyFlows {
		f.dirty = false
		if f.removed || !f.active || f.epoch == n.epoch {
			continue
		}
		//esglint:hotpath comps reuses n.parComps' backing array; it grows only to the component-count high-water mark, then never again
		comps = append(comps, int32(len(buf)))
		buf = n.gatherComponentLocked(f, buf)
	}
	for _, r := range n.dirtyRes {
		r.dirty = false
		for _, e := range r.flows {
			if e.f.epoch != n.epoch {
				//esglint:hotpath comps reuses n.parComps' backing array; it grows only to the component-count high-water mark, then never again
				comps = append(comps, int32(len(buf)))
				buf = n.gatherComponentLocked(e.f, buf)
			}
		}
	}
	//esglint:hotpath comps reuses n.parComps' backing array; it grows only to the component-count high-water mark, then never again
	comps = append(comps, int32(len(buf)))
	n.parComps = comps
	n.parFlows = buf
	ncomp := len(comps) - 1
	if ncomp == 0 {
		return true // all seeds were stale; nothing to do
	}
	if cap(n.parRates) < len(buf) {
		n.parRates = make([]float64, len(buf))
	}
	n.parRates = n.parRates[:len(buf)]
	for len(n.parScr) < w {
		//esglint:hotpath parScr grows to the worker count once, then is reused for the life of the Net
		n.parScr = append(n.parScr, &allocScratch{})
	}
	n.parNow = now

	// Parallel compute — or inline on lane 0 when the batch is too small
	// or has no cross-lane parallelism to exploit.
	if ncomp >= 2 && len(buf) >= parMinFlows {
		n.parFlushes++
		//esglint:hotpath &parRun points into long-lived Net state; boxing a pointer fills the interface word without allocating
		n.clk.Fan(ncomp, &n.parRun)
	} else {
		n.seqFlushes++
		for t := 0; t < ncomp; t++ {
			n.parRun.RunTask(t, 0)
		}
	}

	// Canonical merge: all observable effects, in discovery order — the
	// same (record, rate application, timer, RNG) sequence per component
	// the sequential flush produces.
	for t := 0; t < ncomp; t++ {
		lo, hi := comps[t], comps[t+1]
		comp := n.parFlows[lo:hi]
		n.allocPasses++
		n.allocFlows += uint64(len(comp))
		if n.rec != nil {
			n.rec.AllocPass(int64(now), int64(len(comp)), int64(n.allocPasses))
		}
		for i, f := range comp {
			f.setRate(now, n.parRates[int(lo)+i])
		}
	}
	// Drop gathered flow pointers so completed transfers are collectable
	// (the tail beyond len is already nil from the previous flush's clear).
	for i := range buf {
		buf[i] = nil
	}
	return true
}

// ParStats reports how flushes have executed since the Net was created:
// parallel fans, conservative sequential flushes forced by a structural
// change (or verification mode) while workers were enabled, and
// below-threshold flushes that ran inline. With workers disabled all
// three stay zero — the plain sequential flush path does not count.
func (n *Net) ParStats() (parallel, conservative, inline uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parFlushes, n.consFlushes, n.seqFlushes
}
