package simnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

const (
	mbps = 1e6
	gbps = 1e9
	mb   = 1 << 20
)

// twoHosts builds A --(cap, delay)-- B and returns the net and hosts.
func twoHosts(clk *vtime.Sim, capBps float64, delay time.Duration, loss float64) (*Net, *Host, *Host) {
	n := New(clk)
	a := n.AddHost("a", HostConfig{DefaultBufferBytes: 1 * mb})
	b := n.AddHost("b", HostConfig{DefaultBufferBytes: 1 * mb})
	n.AddLink("a", "b", LinkConfig{CapacityBps: capBps, Delay: delay, LossRate: loss})
	return n, a, b
}

// serveBytes accepts one conn on l and consumes exactly total virtual
// bytes from it, then signals done.
func serveBytes(t *testing.T, clk *vtime.Sim, l transport.Listener, total int64, done chan<- time.Time) {
	t.Helper()
	clk.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		if _, err := transport.ReadVirtualFrom(c, total); err != nil {
			t.Errorf("read virtual: %v", err)
			return
		}
		done <- clk.Now()
	})
}

func TestDialLatencyIsOneRTT(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		_ = n
		l, err := b.Listen(":9000")
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() { l.Accept() })
		t0 := clk.Now()
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if d := clk.Now().Sub(t0); d != 10*time.Millisecond {
			t.Fatalf("dial took %v, want 10ms (1 RTT)", d)
		}
	})
}

func TestVirtualTransferAtLinkCapacity(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		done := make(chan time.Time, 1)
		const total = 100 * mb
		serveBytes(t, clk, l, total, done)
		t0 := clk.Now()
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := transport.WriteVirtualTo(c, total); err != nil {
			t.Fatal(err)
		}
		c.Close()
		var doneAt time.Time
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() { doneAt = <-chanRecv(clk, done) })
		wg.Wait()
		elapsed := doneAt.Sub(t0).Seconds()
		ideal := float64(total) * 8 / (100 * mbps) // 8.39s
		if elapsed < ideal || elapsed > ideal*1.15 {
			t.Fatalf("100MB over 100Mb/s took %.2fs, want ~%.2fs", elapsed, ideal)
		}
	})
}

// chanRecv adapts a buffered Go channel receive to the managed scheduler:
// it polls in virtual time. Only for test plumbing where the value is
// known to arrive promptly.
func chanRecv(clk *vtime.Sim, ch <-chan time.Time) <-chan time.Time {
	out := make(chan time.Time, 1)
	for {
		select {
		case v := <-ch:
			out <- v
			return out
		default:
			clk.Sleep(time.Millisecond)
		}
	}
}

func TestSmallBufferLimitsThroughput(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 1*gbps, 25*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		done := make(chan time.Time, 1)
		const total = 64 * mb
		serveBytes(t, clk, l, total, done)
		t0 := clk.Now()
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		c.(*Endpoint).SetBuffer(64 * 1024) // 64 KB window over 50 ms RTT
		if _, err := transport.WriteVirtualTo(c, total); err != nil {
			t.Fatal(err)
		}
		c.Close()
		var doneAt time.Time
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() { doneAt = <-chanRecv(clk, done) })
		wg.Wait()
		elapsed := doneAt.Sub(t0).Seconds()
		// window/RTT = 64KB*8/0.05s = 10.5 Mb/s -> ~51s for 64 MB.
		ideal := float64(total) * 8 / (64 * 1024 * 8 / 0.05)
		if elapsed < ideal*0.95 || elapsed > ideal*1.25 {
			t.Fatalf("window-limited transfer took %.1fs, want ~%.1fs", elapsed, ideal)
		}
	})
}

func TestFairShareBetweenTwoFlows(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		const each = 50 * mb
		done := make(chan time.Time, 2)
		serveBytes(t, clk, l, each, done)
		serveBytes(t, clk, l, each, done)
		t0 := clk.Now()
		wg := vtime.NewWaitGroup(clk)
		for i := 0; i < 2; i++ {
			wg.Go(func() {
				c, err := a.Dial("b:9000")
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				transport.WriteVirtualTo(c, each)
				c.Close()
			})
		}
		wg.Wait()
		elapsed := clk.Now().Sub(t0).Seconds()
		// Two 50MB flows sharing 100 Mb/s: aggregate = capacity, so ~8.4s.
		ideal := float64(2*each) * 8 / (100 * mbps)
		if elapsed < ideal*0.98 || elapsed > ideal*1.2 {
			t.Fatalf("shared transfers took %.2fs, want ~%.2fs", elapsed, ideal)
		}
	})
}

func TestCPUBudgetCapsAggregateRate(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n := New(clk)
		// Gigabit path but the sender's CPU should cap near 640 Mb/s.
		a := n.AddHost("a", HostConfig{CPU: GigabitHostCPU(1), DefaultBufferBytes: 4 * mb})
		b := n.AddHost("b", HostConfig{DefaultBufferBytes: 4 * mb})
		n.AddLink("a", "b", LinkConfig{CapacityBps: 1 * gbps, Delay: time.Millisecond})
		l, _ := b.Listen(":9000")
		const each = 128 * mb
		done := make(chan time.Time, 4)
		for i := 0; i < 4; i++ {
			serveBytes(t, clk, l, each, done)
		}
		t0 := clk.Now()
		wg := vtime.NewWaitGroup(clk)
		for i := 0; i < 4; i++ {
			wg.Go(func() {
				c, err := a.Dial("b:9000")
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				transport.WriteVirtualTo(c, each)
				c.Close()
			})
		}
		wg.Wait()
		elapsed := clk.Now().Sub(t0).Seconds()
		rate := float64(4*each) * 8 / elapsed
		// Expected CPU ceiling ~637 Mb/s (see GigabitHostCPU), not 1 Gb/s.
		if rate > 700*mbps || rate < 500*mbps {
			t.Fatalf("aggregate rate %.0f Mb/s, want ~640 Mb/s CPU-capped", rate/mbps)
		}
	})
}

func TestDiskBoundCap(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n := New(clk)
		a := n.AddHost("a", HostConfig{DefaultBufferBytes: 4 * mb})
		b := n.AddHost("b", HostConfig{DiskBps: 80 * mbps, DefaultBufferBytes: 4 * mb})
		n.AddLink("a", "b", LinkConfig{CapacityBps: 1 * gbps, Delay: time.Millisecond})
		l, _ := b.Listen(":9000")
		const total = 64 * mb
		done := make(chan time.Time, 1)
		serveBytes(t, clk, l, total, done)
		t0 := clk.Now()
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		c.(*Endpoint).SetDiskBound(true)
		transport.WriteVirtualTo(c, total)
		c.Close()
		var doneAt time.Time
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() { doneAt = <-chanRecv(clk, done) })
		wg.Wait()
		rate := float64(total) * 8 / doneAt.Sub(t0).Seconds()
		if rate > 82*mbps || rate < 70*mbps {
			t.Fatalf("disk-bound rate %.1f Mb/s, want ~80", rate/mbps)
		}
	})
}

func TestLossReducesThroughputAndParallelismRecovers(t *testing.T) {
	measure := func(streams int, loss float64) float64 {
		clk := vtime.NewSim(7)
		var rate float64
		clk.Run(func() {
			_, a, b := twoHosts(clk, 1*gbps, 10*time.Millisecond, loss)
			l, _ := b.Listen(":9000")
			const each = 64 * mb
			for i := 0; i < streams; i++ {
				clk.Go(func() {
					c, err := l.Accept()
					if err != nil {
						return
					}
					transport.ReadVirtualFrom(c, each)
					c.Close()
				})
			}
			t0 := clk.Now()
			wg := vtime.NewWaitGroup(clk)
			for i := 0; i < streams; i++ {
				wg.Go(func() {
					c, err := a.Dial("b:9000")
					if err != nil {
						return
					}
					transport.WriteVirtualTo(c, each)
					c.Close()
				})
			}
			wg.Wait()
			rate = float64(streams) * each * 8 / clk.Now().Sub(t0).Seconds()
		})
		return rate
	}
	clean := measure(1, 0)
	lossy1 := measure(1, 2e-4)
	lossy8 := measure(8, 2e-4)
	if lossy1 > 0.7*clean {
		t.Fatalf("loss did not hurt: clean=%.0f lossy=%.0f Mb/s", clean/mbps, lossy1/mbps)
	}
	if lossy8 < 2*lossy1 {
		t.Fatalf("parallelism did not help under loss: 1 stream %.0f, 8 streams %.0f Mb/s",
			lossy1/mbps, lossy8/mbps)
	}
}

func TestLinkDownStallsAndResumes(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		link := n.links[0]
		l, _ := b.Listen(":9000")
		const total = 25 * mb // 2.1s at 100 Mb/s
		done := make(chan time.Time, 1)
		serveBytes(t, clk, l, total, done)
		// Take the link down for 10s early in the transfer (no reset).
		clk.AfterFunc(500*time.Millisecond, func() { link.SetUp(false, false) })
		clk.AfterFunc(10500*time.Millisecond, func() { link.SetUp(true, false) })
		t0 := clk.Now()
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := transport.WriteVirtualTo(c, total); err != nil {
			t.Fatal(err)
		}
		c.Close()
		var doneAt time.Time
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() { doneAt = <-chanRecv(clk, done) })
		wg.Wait()
		elapsed := doneAt.Sub(t0).Seconds()
		if elapsed < 12 || elapsed > 14 {
			t.Fatalf("stalled transfer took %.2fs, want ~12.1s (2.1s + 10s outage)", elapsed)
		}
	})
}

func TestLinkFailureResetsConnections(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		link := n.links[0]
		l, _ := b.Listen(":9000")
		clk.Go(func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			transport.ReadVirtualFrom(c, 1<<40)
		})
		clk.AfterFunc(time.Second, func() { link.SetUp(false, true) })
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		_, err = transport.WriteVirtualTo(c, 1<<40)
		if err == nil {
			t.Fatal("write on reset connection succeeded")
		}
	})
}

func TestDNSOutageFailsDial(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		b.Listen(":9000")
		n.SetDNS(false)
		_, err := a.Dial("b:9000")
		var de *DNSError
		if !errors.As(err, &de) {
			t.Fatalf("dial during DNS outage: err = %v, want DNSError", err)
		}
		n.SetDNS(true)
		clk.Go(func() {
			// consume the pending accept so the conn completes
		})
		if _, err := a.Dial("b:9000"); err != nil {
			t.Fatalf("dial after DNS restore: %v", err)
		}
	})
}

func TestRealBytesRoundTripAndEOF(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			got, err := io.ReadAll(c)
			if err != nil {
				t.Errorf("read: %v", err)
			}
			if string(got) != "GET climate.nc\r\npayload" {
				t.Errorf("got %q", got)
			}
			c.Close()
		})
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("GET climate.nc\r\n"))
		c.Write([]byte("payload"))
		c.Close()
		wg.Wait()
	})
}

func TestMixedRealVirtualOrdering(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() {
			c, _ := l.Accept()
			hdr := make([]byte, 6)
			if _, err := io.ReadFull(c, hdr); err != nil {
				t.Errorf("header: %v", err)
			}
			// Attempting a real read while virtual payload is queued is a
			// framing bug and must be reported as such.
			n, err := transport.ReadVirtualFrom(c, 1000)
			if err != nil || n != 1000 {
				t.Errorf("virtual: n=%d err=%v", n, err)
			}
			tail := make([]byte, 4)
			if _, err := io.ReadFull(c, tail); err != nil || string(tail) != "DONE" {
				t.Errorf("tail: %q err=%v", tail, err)
			}
			c.Close()
		})
		c, _ := a.Dial("b:9000")
		c.Write([]byte("HEADER"))
		c.(*Endpoint).WriteVirtual(1000)
		c.Write([]byte("DONE"))
		c.Close()
		wg.Wait()
	})
}

func TestReadVirtualOnRealDataErrors(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() {
			c, _ := l.Accept()
			if _, err := c.(*Endpoint).ReadVirtual(10); err == nil {
				t.Error("ReadVirtual on real data did not error")
			}
			c.Close()
		})
		c, _ := a.Dial("b:9000")
		c.Write([]byte("real"))
		clk.Sleep(100 * time.Millisecond)
		c.Close()
		wg.Wait()
	})
}

func TestReadDeadline(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		clk.Go(func() { l.Accept() })
		c, _ := a.Dial("b:9000")
		c.SetReadDeadline(clk.Now().Add(300 * time.Millisecond))
		t0 := clk.Now()
		buf := make([]byte, 1)
		_, err := c.Read(buf)
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("read: err = %v, want timeout", err)
		}
		if d := clk.Now().Sub(t0); d != 300*time.Millisecond {
			t.Fatalf("timeout after %v, want 300ms", d)
		}
	})
}

func TestEstimateBandwidthSeesContention(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		idle, err := n.EstimateBandwidth("a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if idle < 95*mbps || idle > 105*mbps {
			t.Fatalf("idle estimate %.1f Mb/s, want ~100", idle/mbps)
		}
		// Saturate the link with one flow, then re-estimate.
		l, _ := b.Listen(":9000")
		clk.Go(func() {
			c, _ := l.Accept()
			transport.ReadVirtualFrom(c, 1<<40)
		})
		c, _ := a.Dial("b:9000")
		clk.Go(func() { transport.WriteVirtualTo(c, 1<<40) })
		clk.Sleep(2 * time.Second) // let slow start finish
		busy, _ := n.EstimateBandwidth("a", "b")
		if busy > 60*mbps || busy < 40*mbps {
			t.Fatalf("busy estimate %.1f Mb/s, want ~50 (fair share)", busy/mbps)
		}
	})
}

func TestPathRTTAndRouting(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n := New(clk)
		n.AddHost("dallas", HostConfig{})
		n.AddHost("berkeley", HostConfig{})
		n.AddNode("scinet")
		n.AddNode("nton")
		n.AddLink("dallas", "scinet", LinkConfig{CapacityBps: gbps, Delay: time.Millisecond})
		n.AddLink("scinet", "nton", LinkConfig{CapacityBps: 2.5 * gbps, Delay: 8 * time.Millisecond})
		n.AddLink("nton", "berkeley", LinkConfig{CapacityBps: gbps, Delay: time.Millisecond})
		rtt, err := n.PathRTT("dallas", "berkeley")
		if err != nil {
			t.Fatal(err)
		}
		if rtt != 20*time.Millisecond {
			t.Fatalf("RTT = %v, want 20ms", rtt)
		}
		if _, err := n.PathRTT("dallas", "nowhere"); err == nil {
			t.Fatal("route to unknown node succeeded")
		}
	})
}

func TestConnectionRefused(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, _ := twoHosts(clk, 100*mbps, time.Millisecond, 0)
		if _, err := a.Dial("b:9999"); err == nil {
			t.Fatal("dial with no listener succeeded")
		}
	})
}

func TestListenerClose(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, _, b := twoHosts(clk, 100*mbps, time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() {
			if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
				t.Errorf("accept after close: %v, want net.ErrClosed", err)
			}
		})
		clk.Sleep(10 * time.Millisecond)
		l.Close()
		wg.Wait()
	})
}

func TestBytesBetweenAccounting(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n, a, b := twoHosts(clk, 100*mbps, 5*time.Millisecond, 0)
		l, _ := b.Listen(":9000")
		const total = 10 * mb
		done := make(chan time.Time, 1)
		serveBytes(t, clk, l, total, done)
		c, _ := a.Dial("b:9000")
		transport.WriteVirtualTo(c, total)
		c.Close()
		clk.Sleep(time.Second)
		got := n.TotalBytesBetween("a", "b")
		if got < total || got > total*1.01 {
			t.Fatalf("TotalBytesBetween = %.0f, want ~%d", got, total)
		}
	})
}

func TestCPUUtilizationReporting(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n := New(clk)
		a := n.AddHost("a", HostConfig{CPU: GigabitHostCPU(1), DefaultBufferBytes: 4 * mb})
		b := n.AddHost("b", HostConfig{DefaultBufferBytes: 4 * mb})
		n.AddLink("a", "b", LinkConfig{CapacityBps: 1 * gbps, Delay: time.Millisecond})
		l, _ := b.Listen(":9000")
		clk.Go(func() {
			c, _ := l.Accept()
			transport.ReadVirtualFrom(c, 1<<40)
		})
		c, _ := a.Dial("b:9000")
		clk.Go(func() { transport.WriteVirtualTo(c, 1<<40) })
		clk.Sleep(3 * time.Second)
		if u := a.CPUUtilization(); u < 0.9 || u > 1.01 {
			t.Fatalf("sender CPU utilization = %.2f, want ~1.0 (saturated)", u)
		}
	})
}
