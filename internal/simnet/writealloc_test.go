package simnet

import (
	"testing"
	"time"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// TestWriteVirtualSteadyStateAllocFree guards the whole virtual data path:
// once the segment pool, flow scratch and event slots are warm, a
// WriteVirtual call — enqueue, flow activation, allocation flush, window
// growth, transmit wait, deactivation — must not allocate. This is the
// path BenchmarkTable1 and BenchmarkFigure8 hammer millions of times.
func TestWriteVirtualSteadyStateAllocFree(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		_, a, b := twoHosts(clk, 100*mbps, time.Millisecond, 0)
		l, err := b.Listen(":9000")
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			transport.ReadVirtualFrom(c, 1<<40) // endless reader
		})
		c, err := a.Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		w := c.(transport.VirtualWriter)
		for i := 0; i < 10; i++ { // warm pools, scratch and the slot arena
			if err := w.WriteVirtual(64 << 10); err != nil {
				t.Fatal(err)
			}
		}
		var werr error
		allocs := testing.AllocsPerRun(100, func() {
			if err := w.WriteVirtual(64 << 10); err != nil && werr == nil {
				werr = err
			}
		})
		if werr != nil {
			t.Fatal(werr)
		}
		if allocs > 0 {
			t.Errorf("WriteVirtual allocates %.1f objects per call, want 0", allocs)
		}
	})
}
