package simnet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"esgrid/internal/vtime"
)

// buildBenchNet builds a realistic multi-component topology — independent
// site pairs, as in the Table 1 striped testbed or a multi-user grid with
// disjoint source/destination sites — carrying nFlows long-running
// transfers spread evenly across the pairs. Every 4th source host has a
// CPU budget and every 4th destination a disk cap, so host resources
// participate in the allocation too.
func buildBenchNet(nFlows int) (*Net, []*flow) {
	perPair := 8
	if nFlows < perPair {
		perPair = nFlows
	}
	pairs := (nFlows + perPair - 1) / perPair
	clk := vtime.NewSim(1)
	n := New(clk)
	flows := make([]*flow, 0, nFlows)
	for p := 0; p < pairs; p++ {
		srcCfg := HostConfig{}
		if p%4 == 1 {
			srcCfg.CPU = GigabitHostCPU(4)
		}
		dstCfg := HostConfig{}
		if p%4 == 2 {
			dstCfg.DiskBps = 400e6
		}
		src := n.AddHost(fmt.Sprintf("src%04d", p), srcCfg)
		dst := n.AddHost(fmt.Sprintf("dst%04d", p), dstCfg)
		n.AddLink(src.name, dst.name, LinkConfig{CapacityBps: 1e9, Delay: 5 * time.Millisecond})
		n.mu.Lock()
		path, err := n.routeLocked(src.name, dst.name)
		n.mu.Unlock()
		if err != nil {
			panic(err)
		}
		for k := 0; k < perPair && len(flows) < nFlows; k++ {
			windowCap := math.Inf(1)
			if k%2 == 1 {
				windowCap = 60e6 // window-limited below the fair share
			}
			f := newChurnFlow(n, src, dst, path, windowCap)
			f.diskBound = k%3 == 0
			f.active = true
			n.mu.Lock()
			n.flowActivatedLocked(f)
			n.mu.Unlock()
			flows = append(flows, f)
		}
	}
	n.mu.Lock()
	n.flushPending = true // benches drive flushes by hand
	n.flushLocked()
	n.mu.Unlock()
	return n, flows
}

var benchSizes = []int{16, 256, 1024}

// BenchmarkAllocate measures one progressive-filling pass over all active
// flows — the inner allocator kernel, which must be allocation-free in
// steady state.
func BenchmarkAllocate(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("flows=%d", size), func(b *testing.B) {
			n, flows := buildBenchNet(size)
			n.mu.Lock()
			n.allocate(flows) // warm scratch
			n.mu.Unlock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.mu.Lock()
				n.allocate(flows)
				n.mu.Unlock()
			}
		})
	}
}

// BenchmarkRecompute measures the production per-event path: one flow's
// window changes, its component is marked dirty and the coalesced flush
// re-allocates just that component. Cost is O(component), independent of
// the total flow population — compare BenchmarkRecomputeFull.
func BenchmarkRecompute(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("flows=%d", size), func(b *testing.B) {
			n, flows := buildBenchNet(size)
			// One flow per component as the recurring dirty seed (a fixed
			// seed keeps component ordering, and therefore floating-point
			// rounding, bitwise stable across flushes).
			var seeds []*flow
			for _, f := range flows {
				if f.dir == 0 && (len(seeds) == 0 || seeds[len(seeds)-1].src != f.src) {
					seeds = append(seeds, f)
				}
			}
			n.mu.Lock()
			for _, f := range seeds {
				n.markFlowDirtyLocked(f)
				n.flushLocked()
			}
			n.mu.Unlock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.mu.Lock()
				n.markFlowDirtyLocked(seeds[i%len(seeds)])
				n.flushLocked()
				n.mu.Unlock()
			}
		})
	}
}

// BenchmarkRecomputeFull measures the seed's full-recompute path (fold
// every flow, re-allocate the whole network) on the same topologies, for
// comparison with BenchmarkRecompute.
func BenchmarkRecomputeFull(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("flows=%d", size), func(b *testing.B) {
			n, _ := buildBenchNet(size)
			n.mu.Lock()
			n.recomputeLocked() // warm scratch, arm completion timers
			n.mu.Unlock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.mu.Lock()
				n.recomputeLocked()
				n.mu.Unlock()
			}
		})
	}
}
