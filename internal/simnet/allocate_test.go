package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"esgrid/internal/vtime"
)

// buildRandomScenario creates a random topology and a set of synthetic
// flows over it, returning the net and flows (not registered; allocate
// takes them directly).
func buildRandomScenario(rng *rand.Rand) (*Net, []*flow) {
	clk := vtime.NewSim(rng.Int63())
	n := New(clk)
	nHosts := 2 + rng.Intn(5)
	hosts := make([]*Host, nHosts)
	for i := 0; i < nHosts; i++ {
		name := string(rune('a' + i))
		cfg := HostConfig{}
		if rng.Intn(3) == 0 {
			cfg.CPU = GigabitHostCPU(1 + float64(rng.Intn(8)))
		}
		if rng.Intn(3) == 0 {
			cfg.DiskBps = 50e6 + rng.Float64()*500e6
		}
		hosts[i] = n.AddHost(name, cfg)
	}
	// Random connected-ish topology: chain plus extra links.
	for i := 1; i < nHosts; i++ {
		n.AddLink(hosts[i-1].name, hosts[i].name, LinkConfig{
			CapacityBps: 10e6 + rng.Float64()*1e9,
			Delay:       1e6, // 1ms
		})
	}
	for k := rng.Intn(3); k > 0; k-- {
		a, b := rng.Intn(nHosts), rng.Intn(nHosts)
		if a != b {
			n.AddLink(hosts[a].name, hosts[b].name, LinkConfig{
				CapacityBps: 10e6 + rng.Float64()*1e9,
				Delay:       1e6,
			})
		}
	}
	nFlows := 1 + rng.Intn(12)
	var flows []*flow
	for i := 0; i < nFlows; i++ {
		src := hosts[rng.Intn(nHosts)]
		dst := hosts[rng.Intn(nHosts)]
		if src == dst {
			continue
		}
		n.mu.Lock()
		path, err := n.routeLocked(src.name, dst.name)
		n.mu.Unlock()
		if err != nil {
			continue
		}
		f := &flow{
			net: n, src: src, dst: dst, path: path, mss: DefaultMSS,
			windowCap: 1e6 + rng.Float64()*2e9,
			diskBound: rng.Intn(2) == 0,
			active:    true,
		}
		flows = append(flows, f)
	}
	return n, flows
}

// TestQuickAllocateInvariants checks max-min fairness invariants on
// random scenarios: non-negative rates, window caps respected, no
// resource over capacity, and Pareto efficiency (every flow is blocked
// by either its cap or a saturated resource).
func TestQuickAllocateInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, flows := buildRandomScenario(rng)
		if len(flows) == 0 {
			return true
		}
		rates := n.allocate(flows)
		// Per-resource usage.
		usage := map[*res]float64{}
		capOf := map[*res]float64{}
		for i, f := range flows {
			if rates[i] < 0 {
				t.Logf("negative rate %v", rates[i])
				return false
			}
			if rates[i] > f.windowCap*(1+1e-6)+1 {
				t.Logf("rate %v exceeds window cap %v", rates[i], f.windowCap)
				return false
			}
			for _, rr := range f.refs() {
				usage[rr.r] += rates[i] * rr.w
				capOf[rr.r] = rr.r.effective()
			}
		}
		for r, u := range usage {
			if u > capOf[r]*(1+1e-6)+1 {
				t.Logf("resource %s over capacity: %v > %v", r.name, u, capOf[r])
				return false
			}
		}
		// Pareto: each flow is limited by something.
		for i, f := range flows {
			if rates[i] >= f.windowCap*(1-1e-6) {
				continue
			}
			blocked := false
			for _, rr := range f.refs() {
				if usage[rr.r] >= capOf[rr.r]*(1-1e-6)-1 {
					blocked = true
					break
				}
			}
			if !blocked {
				t.Logf("flow %d unblocked at %v (cap %v)", i, rates[i], f.windowCap)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocateEqualShares checks the textbook case: k identical flows on
// one link share it equally.
func TestAllocateEqualShares(t *testing.T) {
	clk := vtime.NewSim(1)
	n := New(clk)
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	n.AddLink("a", "b", LinkConfig{CapacityBps: 100e6, Delay: 1e6})
	n.mu.Lock()
	path, _ := n.routeLocked("a", "b")
	n.mu.Unlock()
	var flows []*flow
	for i := 0; i < 4; i++ {
		flows = append(flows, &flow{net: n, src: a, dst: b, path: path, mss: DefaultMSS,
			windowCap: math.Inf(1), active: true})
	}
	rates := n.allocate(flows)
	for i, r := range rates {
		if math.Abs(r-25e6) > 1 {
			t.Fatalf("flow %d rate = %v, want 25e6", i, r)
		}
	}
}

// TestAllocateCapAndShare checks a mixed case: one window-capped flow
// leaves its unused share to an uncapped competitor.
func TestAllocateCapAndShare(t *testing.T) {
	clk := vtime.NewSim(1)
	n := New(clk)
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	n.AddLink("a", "b", LinkConfig{CapacityBps: 100e6, Delay: 1e6})
	n.mu.Lock()
	path, _ := n.routeLocked("a", "b")
	n.mu.Unlock()
	capped := &flow{net: n, src: a, dst: b, path: path, mss: DefaultMSS, windowCap: 10e6, active: true}
	greedy := &flow{net: n, src: a, dst: b, path: path, mss: DefaultMSS, windowCap: math.Inf(1), active: true}
	rates := n.allocate([]*flow{capped, greedy})
	if math.Abs(rates[0]-10e6) > 1 {
		t.Fatalf("capped rate = %v", rates[0])
	}
	if math.Abs(rates[1]-90e6) > 1 {
		t.Fatalf("greedy rate = %v, want the leftover 90e6", rates[1])
	}
}
