// Package simnet is a deterministic, virtual-time wide-area network
// simulator. It stands in for the SciNET / NTON / HSCC infrastructure and
// the SC'00 cluster hardware of the paper's experiments (DESIGN.md §1).
//
// # Model
//
// The topology is a graph of named nodes joined by full-duplex links with
// capacity, propagation delay and a random per-packet loss probability.
// Hosts are leaf nodes that carry additional per-host resources: a CPU
// budget consumed per byte and per frame (gigabit interrupt servicing —
// the bottleneck the paper identifies for its sustained rates) and an
// optional disk bandwidth cap (the bottleneck in Figure 8).
//
// Traffic follows a fluid-flow TCP model. Each active connection
// direction is a flow with an AIMD congestion window (slow start, additive
// increase, halving on loss) bounded by the negotiated socket buffer — so
// the bandwidth×delay product tuning that §7 of the paper calls critical
// emerges naturally. Instantaneous flow rates are the weighted max-min
// fair allocation over every resource on the flow's path, recomputed when
// flows start or stop, windows change, losses strike, or faults alter
// capacities. Between recomputations rates are constant, so hours of
// virtual transfer cost only a handful of events.
//
// Connections implement net.Conn. Bulk payload normally moves through the
// virtual fast path (transport.VirtualWriter/VirtualReader): only byte
// counts cross the simulated wire, so the 230.8 GB hour of Table 1 runs
// in milliseconds with no allocation. Small protocol messages are carried
// as real bytes with correct ordering and latency.
package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"esgrid/internal/flight"
	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// Default TCP parameters; values chosen to match the paper's testbed
// descriptions (§7: 1 MB tuned buffers vs small OS defaults).
const (
	DefaultBufferBytes = 64 * 1024 // untuned OS socket buffer
	DefaultMSS         = 1460      // standard Ethernet MSS
	JumboMSS           = 8960      // jumbo frames (§7 discussion)
	initialWindowMSS   = 4         // initial congestion window, in MSS
)

// Provenance sites for every event class the network schedules, so a
// flight-recorder chain names the mechanism ("simnet.loss caused this
// rm.retry-backoff") rather than an anonymous timer.
var (
	siteGrowth     = vtime.RegisterSite("simnet.growth")
	siteLoss       = vtime.RegisterSite("simnet.loss")
	siteCompletion = vtime.RegisterSite("simnet.completion")
	siteDeliver    = vtime.RegisterSite("simnet.deliver")
	siteLinger     = vtime.RegisterSite("simnet.linger")
	siteHandshake  = vtime.RegisterSite("simnet.handshake")
)

// LinkConfig describes one full-duplex link.
type LinkConfig struct {
	// CapacityBps is the data capacity of each direction, bits/second.
	CapacityBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// LossRate is the probability that any given packet is lost,
	// independently; it drives AIMD window halving (0 = clean link).
	LossRate float64
}

// HostConfig describes per-host resources.
type HostConfig struct {
	// CPU, if non-nil, bounds the host's aggregate packet-processing
	// throughput (the paper's "CPU was running at near 100% capacity").
	CPU *CPUConfig
	// DiskBps, if > 0, caps the aggregate rate of disk-bound flows at
	// this host, bits/second (Figure 8's ~80 Mb/s plateau).
	DiskBps float64
	// DefaultBufferBytes overrides the initial socket buffer for
	// connections made by this host (0 = DefaultBufferBytes).
	DefaultBufferBytes int
	// MSS overrides the host's TCP segment size (0 = DefaultMSS;
	// JumboMSS models 9000-byte jumbo frames, §7).
	MSS int
}

// CPUConfig models network-processing CPU cost. A flow moving at R
// bytes/s with maximum segment size mss consumes R*(PerByte + PerFrame/mss)
// of the host's budget of 1.0. Interrupt coalescing divides PerFrame;
// jumbo frames raise mss; both are the remedies §7 discusses.
type CPUConfig struct {
	PerByte  float64 // budget consumed per byte moved
	PerFrame float64 // budget consumed per frame (interrupt) handled
	Coalesce float64 // interrupt coalescing factor (>=1 divides PerFrame; 0 = 1)
}

// GigabitHostCPU returns the CPU model used for the SC'00 gigabit
// workstations: calibrated so that a single untuned host saturates its CPU
// near 650 Mb/s at standard frames without coalescing, and proportionally
// higher with coalescing or jumbo frames.
func GigabitHostCPU(coalesce float64) *CPUConfig {
	return &CPUConfig{
		PerByte:  4.0e-9,  // ~250 MB/s memory/copy path ceiling alone
		PerFrame: 1.25e-5, // ~80k interrupts/s ceiling alone
		Coalesce: coalesce,
	}
}

// weight returns the CPU budget consumed per bit/s of flow rate.
func (c *CPUConfig) weight(mss int) float64 {
	co := c.Coalesce
	if co < 1 {
		co = 1
	}
	return (c.PerByte + c.PerFrame/co/float64(mss)) / 8
}

// Net is the simulator. All methods are safe for concurrent use by
// goroutines managed by the simulation's vtime.Sim.
type Net struct {
	clk *vtime.Sim

	// Observability (Instrument): life-line events for retired
	// connections and the simnet.flows.active gauge. Set before traffic
	// starts; nil means uninstrumented. rec, when set (AttachFlight),
	// receives packed conn-transition and allocator-pass records on the
	// flight recorder's data ring — written under mu, zero-alloc.
	nlog        *netlogger.Log
	metrics     *netlogger.Registry
	flowsActive *netlogger.Gauge
	rec         *flight.Recorder

	mu        sync.Mutex
	nodes     map[string]*node
	hosts     map[string]*Host
	links     []*Link
	flows     map[*flow]struct{}
	pairFlows map[pairKey][]*flow  // live flows indexed by (src,dst) host
	listeners map[string]*Listener // "host:port"
	routes    map[[2]string][]*simplex
	dnsUp     bool
	nextPort  int
	nextResID int
	// nextConnSeq stamps connections in creation order, so fault paths
	// that reset many victims do so in a deterministic order.
	nextConnSeq int64
	// nextFlowSeq stamps flows in creation order; the flush sorts dirty
	// seeds and gathered components by it so allocation order — and with
	// it floating-point rounding — is a function of the event history
	// alone, not of the goroutine interleaving that marked the dirt.
	nextFlowSeq uint64

	// Incremental allocation state (see alloc.go): dirty seeds for the
	// next flush, the pending-flush latch, and the BFS visit epoch.
	dirtyFlows   []*flow
	dirtyRes     []*res
	flushPending bool
	epoch        uint64
	verifyAllocs bool
	allocPasses  uint64 // diagnostic: component allocation passes run
	allocFlows   uint64 // diagnostic: flows visited across those passes

	// Allocator working state. scr is the sequential scratch (flush,
	// verification, estimation and the reference recompute all share
	// it); scrFlows/scrComp are the gather-side buffers the BFS and
	// active-flow snapshots reuse. csrGen is the membership generation
	// every scratch's CSR cache keys on — bumped by any attach, detach
	// or edge change, it invalidates all cached flattens at once.
	scr      allocScratch
	scrFlows []*flow
	scrComp  []*flow
	csrGen   uint64

	// Parallel flush state (parflush.go): flat gathered-component
	// buffers, per-worker-lane scratches, the structural-change latch
	// that forces the conservative (sequential) merge path, and the
	// flush-mode counters ParStats reports.
	parComps    []int32
	parFlows    []*flow
	parRates    []float64
	parScr      []*allocScratch
	parNow      time.Duration
	parRun      parRunner
	parUnsafe   bool
	parFlushes  uint64
	consFlushes uint64
	seqFlushes  uint64

	// flushFn is the cached zero-delay flush callback, so arming a flush
	// does not allocate a closure per event burst.
	flushFn func()

	// segFree recycles segment objects (and their payload buffers, kept
	// attached) under mu. A plain LIFO — not a sync.Pool — so reuse order
	// is deterministic across equal-seed runs.
	segFree []*segment
}

// getSegLocked pops a recycled segment or allocates one. Caller holds mu.
func (n *Net) getSegLocked() *segment {
	if k := len(n.segFree); k > 0 {
		s := n.segFree[k-1]
		n.segFree = n.segFree[:k-1]
		return s
	}
	return &segment{}
}

// putSegLocked recycles a fully consumed segment. The payload buffer stays
// attached so a later Write of similar size reuses it. Caller holds mu.
func (n *Net) putSegLocked(s *segment) {
	s.end = 0
	s.n = 0
	s.fin = false
	if s.data != nil {
		s.data = s.data[:0]
	}
	n.segFree = append(n.segFree, s)
}

// pairKey indexes live flows by source and destination host name.
type pairKey struct{ src, dst string }

type node struct {
	name  string
	edges []*simplex // outgoing directed edges
}

// Link is a full-duplex link between two nodes.
type Link struct {
	net  *Net
	Name string
	A, B string
	fwd  *simplex // A -> B
	rev  *simplex // B -> A
}

// simplex is one direction of a link; it is a fairness resource.
type simplex struct {
	res
	link  *Link
	from  *node
	to    *node
	delay time.Duration
	loss  float64
}

// res is a shared capacity resource participating in max-min allocation.
type res struct {
	name   string
	id     int     // dense index into the allocator's scratch arrays
	capBps float64 // configured capacity, bits/s
	factor float64 // degradation factor (faults), 1 = healthy
	up     bool

	// Incremental allocation state (alloc.go): the active flows
	// consuming this resource, the flush visit stamp, and whether the
	// resource is queued as a dirty seed.
	flows []resEntry
	epoch uint64
	dirty bool
}

func (r *res) effective() float64 {
	if !r.up {
		return 0
	}
	return r.capBps * r.factor
}

// New creates an empty simulated network on the given simulated clock.
func New(clk *vtime.Sim) *Net {
	n := &Net{
		clk:       clk,
		nodes:     map[string]*node{},
		hosts:     map[string]*Host{},
		flows:     map[*flow]struct{}{},
		pairFlows: map[pairKey][]*flow{},
		listeners: map[string]*Listener{},
		routes:    map[[2]string][]*simplex{},
		dnsUp:     true,
		nextPort:  40000,
	}
	n.parRun.n = n
	n.flushFn = func() {
		n.mu.Lock()
		n.flushPending = false
		//esglint:vtblock flushLocked runs under Net.mu by design; Fan's flush workers touch only component-local flow state and never take Net.mu, and the barrier completes without advancing virtual time
		n.flushLocked()
		n.mu.Unlock()
	}
	// The flush rides the clock's end-of-instant hook: it fires exactly
	// where its former zero-delay event did (after every event due at the
	// instant), but arming costs a flag flip instead of an event
	// schedule/dispatch cycle — and the flush path fires once per dirty
	// instant, the highest event frequency in the tree.
	clk.SetInstantHook(n.flushFn)
	return n
}

// Clock returns the simulated clock driving this network.
func (n *Net) Clock() *vtime.Sim { return n.clk }

// Instrument attaches observability to the network: retired connections
// are logged as simnet.conn.retired events (with the life-line label the
// protocol layer set via transport.Labeler), and the number of active
// flows is tracked in the simnet.flows.active gauge. Either argument may
// be nil. Call before traffic starts.
func (n *Net) Instrument(log *netlogger.Log, metrics *netlogger.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nlog = log
	n.metrics = metrics
	n.flowsActive = metrics.Gauge("simnet.flows.active")
}

// AttachFlight hands the network a flight recorder: connection state
// transitions and allocator passes are appended to its data ring, under
// the network's own lock, with no allocation — cheap enough to leave on
// for every run. Call before traffic starts.
func (n *Net) AttachFlight(rec *flight.Recorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = rec
}

// CSRStats reports how often the allocator's CSR flatten cache served a
// multi-flow pass: hits out of lookups (single-flow closed-form passes
// bypass the cache entirely).
func (n *Net) CSRStats() (hits, lookups uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hits, lookups = n.scr.csrHits, n.scr.csrLookups
	for _, sc := range n.parScr {
		hits += sc.csrHits
		lookups += sc.csrLookups
	}
	return hits, lookups
}

// AddNode registers a router/switch node with the given name.
func (n *Net) AddNode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodeLocked(name)
}

func (n *Net) nodeLocked(name string) *node {
	if nd, ok := n.nodes[name]; ok {
		return nd
	}
	nd := &node{name: name}
	n.nodes[name] = nd
	return nd
}

// AddHost registers a host node. Hosts originate and terminate traffic and
// carry CPU/disk resources.
func (n *Net) AddHost(name string, cfg HostConfig) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		panic("simnet: duplicate host " + name)
	}
	nd := n.nodeLocked(name)
	h := &Host{net: n, name: name, node: nd, cfg: cfg}
	if cfg.CPU != nil {
		h.cpu = &res{name: "cpu:" + name, id: n.newResIDLocked(), capBps: 1.0, factor: 1, up: true}
	}
	if cfg.DiskBps > 0 {
		h.disk = &res{name: "disk:" + name, id: n.newResIDLocked(), capBps: cfg.DiskBps, factor: 1, up: true}
	}
	n.hosts[name] = h
	return h
}

// Host returns a previously added host, or nil.
func (n *Net) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// AddLink joins nodes a and b with a full-duplex link. Nodes are created
// on demand.
func (n *Net) AddLink(a, b string, cfg LinkConfig) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	na, nb := n.nodeLocked(a), n.nodeLocked(b)
	l := &Link{net: n, Name: a + "<->" + b, A: a, B: b}
	l.fwd = &simplex{
		res:  res{name: a + "->" + b, id: n.newResIDLocked(), capBps: cfg.CapacityBps, factor: 1, up: true},
		link: l, from: na, to: nb, delay: cfg.Delay, loss: cfg.LossRate,
	}
	l.rev = &simplex{
		res:  res{name: b + "->" + a, id: n.newResIDLocked(), capBps: cfg.CapacityBps, factor: 1, up: true},
		link: l, from: nb, to: na, delay: cfg.Delay, loss: cfg.LossRate,
	}
	na.edges = append(na.edges, l.fwd)
	nb.edges = append(nb.edges, l.rev)
	n.links = append(n.links, l)
	n.routes = map[[2]string][]*simplex{} // invalidate route cache
	return l
}

// route returns the directed path from a to b (BFS hop count), cached.
func (n *Net) routeLocked(a, b string) ([]*simplex, error) {
	if a == b {
		return nil, nil
	}
	key := [2]string{a, b}
	if p, ok := n.routes[key]; ok {
		return p, nil
	}
	src, ok := n.nodes[a]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown node %q", a)
	}
	if _, ok := n.nodes[b]; !ok {
		return nil, fmt.Errorf("simnet: unknown node %q", b)
	}
	type hop struct {
		nd  *node
		via *simplex
		prv *hop
	}
	seen := map[*node]bool{src: true}
	queue := []*hop{{nd: src}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.nd.name == b {
			var path []*simplex
			for x := h; x.via != nil; x = x.prv {
				path = append(path, x.via)
			}
			// reverse
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			n.routes[key] = path
			return path, nil
		}
		for _, e := range h.nd.edges {
			if !seen[e.to] {
				seen[e.to] = true
				queue = append(queue, &hop{nd: e.to, via: e, prv: h})
			}
		}
	}
	return nil, fmt.Errorf("simnet: no route %s -> %s", a, b)
}

// PathRTT returns the round-trip propagation delay between two nodes.
func (n *Net) PathRTT(a, b string) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fwd, err := n.routeLocked(a, b)
	if err != nil {
		return 0, err
	}
	rev, err := n.routeLocked(b, a)
	if err != nil {
		return 0, err
	}
	var d time.Duration
	for _, s := range fwd {
		d += s.delay
	}
	for _, s := range rev {
		d += s.delay
	}
	return d, nil
}

// SetDNS sets whether name resolution works; while down, Dial fails with
// a *DNSError (Figure 8's "DNS problems").
func (n *Net) SetDNS(up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dnsUp = up
}

// DNSError reports a simulated name-service failure.
type DNSError struct{ Name string }

func (e *DNSError) Error() string { return "simnet: cannot resolve " + e.Name + ": DNS unavailable" }

// SetUp brings one link up or down. Bringing a link down stalls flows
// crossing it; if reset is true it also resets (kills) every connection
// whose path crosses the link, as a power failure would.
func (l *Link) SetUp(up bool, reset bool) {
	n := l.net
	n.mu.Lock()
	l.fwd.up = up
	l.rev.up = up
	var victims []*Conn
	if !up && reset {
		seenConn := map[*Conn]bool{}
		for f := range n.flows {
			if f.crosses(l) && !seenConn[f.conn] {
				seenConn[f.conn] = true
				victims = append(victims, f.conn)
			}
		}
		// Also reset idle conns (no active flow) crossing the link.
		for _, h := range n.hosts {
			for c := range h.conns {
				if !seenConn[c] && c.crossesLink(l) {
					seenConn[c] = true
					victims = append(victims, c)
				}
			}
		}
		// Map iteration above is unordered; reset in creation order so the
		// conn.retired event stream is identical across equal-seed runs.
		sortConnsBySeq(victims)
	}
	n.markResDirtyLocked(&l.fwd.res)
	n.markResDirtyLocked(&l.rev.res)
	n.mu.Unlock()
	for _, c := range victims {
		c.reset(fmt.Errorf("simnet: connection reset: link %s failed", l.Name))
	}
}

// SetCapacityFactor degrades (or restores) the link's usable capacity
// (Figure 8's "backbone problems"). factor 1 = healthy.
func (l *Link) SetCapacityFactor(f float64) {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	l.fwd.factor = f
	l.rev.factor = f
	n.markResDirtyLocked(&l.fwd.res)
	n.markResDirtyLocked(&l.rev.res)
}

// SetLossRate changes the link's random packet-loss probability.
func (l *Link) SetLossRate(p float64) {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	l.fwd.loss = p
	l.rev.loss = p
}

// LossRate returns the link's current packet-loss probability, so burst
// fault injection can restore it afterwards.
func (l *Link) LossRate() float64 {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	return l.fwd.loss
}

// Utilization returns the current utilization (0..1) of the busier
// direction of the link.
func (l *Link) Utilization() float64 {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	//esglint:vtblock flushLocked runs under Net.mu by design; Fan's flush workers touch only component-local flow state and never take Net.mu, and the barrier completes without advancing virtual time
	n.flushLocked()
	var fwd, rev float64
	for _, e := range l.fwd.flows {
		fwd += e.f.rate
	}
	for _, e := range l.rev.flows {
		rev += e.f.rate
	}
	u := math.Max(fwd, rev)
	if c := l.fwd.effective(); c > 0 {
		return u / c
	}
	return 0
}

// EstimateBandwidth predicts the rate, in bits/s, that one additional
// greedy flow from a to b would obtain right now, given current traffic.
// This is what the Network Weather Service's bandwidth sensor measures.
func (n *Net) EstimateBandwidth(a, b string) (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	path, err := n.routeLocked(a, b)
	if err != nil {
		return 0, err
	}
	ha, hb := n.hosts[a], n.hosts[b]
	probe := &flow{
		path: path,
		mss:  DefaultMSS,
		// A measurement probe is window-unbounded for estimation purposes.
		windowCap: math.Inf(1),
	}
	if ha != nil {
		probe.src = ha
	}
	if hb != nil {
		probe.dst = hb
	}
	// The probe only contends with flows in its own component: gather it
	// with the same epoch-stamped BFS the incremental allocator uses,
	// instead of allocating over every active flow in the network.
	//esglint:vtblock flushLocked runs under Net.mu by design; Fan's flush workers touch only component-local flow state and never take Net.mu, and the barrier completes without advancing virtual time
	n.flushLocked()
	n.epoch++
	comp := n.scrComp[:0]
	probe.epoch = n.epoch
	comp = append(comp, probe)
	for i := 0; i < len(comp); i++ {
		for _, rr := range comp[i].refs() {
			r := rr.r
			if r.epoch == n.epoch {
				continue
			}
			r.epoch = n.epoch
			for _, e := range r.flows {
				if e.f.epoch != n.epoch {
					e.f.epoch = n.epoch
					comp = append(comp, e.f)
				}
			}
		}
	}
	n.scrComp = comp
	rates := n.allocate(comp)
	return rates[0], nil
}

// newResIDLocked hands out dense resource indices.
func (n *Net) newResIDLocked() int {
	id := n.nextResID
	n.nextResID++
	return id
}

// activeFlowsLocked returns flows that currently demand bandwidth, using
// a reusable scratch slice.
func (n *Net) activeFlowsLocked() []*flow {
	fs := n.scrFlows[:0]
	for f := range n.flows {
		if f.active {
			fs = append(fs, f)
		}
	}
	// Map iteration order is random; restore creation order so the
	// reference allocator's rounding is reproducible too.
	sortFlowsBySeq(fs)
	n.scrFlows = fs
	return fs
}

// allocate computes the weighted max-min fair rate (bits/s) for each
// flow in fs. The progressive-filling kernel and all of its scratch live
// on allocScratch (allocscratch.go); this wrapper runs it on the Net's
// own sequential scratch, which every serial path (flush, verification,
// bandwidth estimation, the reference recompute) shares. Parallel
// flushes use per-worker-lane scratches instead (parflush.go). The
// returned slice is scratch and only valid until the next allocate call.
func (n *Net) allocate(fs []*flow) []float64 {
	return n.scr.alloc(fs, n.nextResID, n.csrGen)
}

// recomputeLocked is the reference full recomputation: it folds elapsed
// time into every flow's counters at the current instant, re-runs the
// fair allocation over all active flows, and reschedules completion
// events for flows whose rate changed.
//
// Production event paths no longer call this — they mark dirty state and
// let the coalesced, component-scoped flush (alloc.go) re-allocate just
// the flows an event can influence. This full path is kept as the
// reference implementation that differential tests (and the
// SetVerifyAllocations cross-check) compare the incremental path against.
func (n *Net) recomputeLocked() {
	now := n.clk.Elapsed()
	fs := n.activeFlowsLocked()
	for f := range n.flows {
		f.fold(now)
	}
	rates := n.allocate(fs)
	for i, f := range fs {
		f.setRate(now, rates[i])
	}
}

// TotalBytesBetween returns cumulative payload bytes transmitted on flows
// from host a to host b (continuous, including bytes of in-progress
// segments). Experiments use it for bandwidth metering.
func (n *Net) TotalBytesBetween(a, b string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	//esglint:vtblock flushLocked runs under Net.mu by design; Fan's flush workers touch only component-local flow state and never take Net.mu, and the barrier completes without advancing virtual time
	n.flushLocked()
	now := n.clk.Elapsed()
	var total float64
	for _, f := range n.pairFlows[pairKey{a, b}] {
		total += f.transmittedAt(now)
	}
	if h := n.hosts[a]; h != nil {
		total += h.retiredBytesTo[b]
	}
	return total
}

// registerFlowLocked enters a newly created flow into the live-flow set
// and the (src,dst) pair index that TotalBytesBetween polls.
func (n *Net) registerFlowLocked(f *flow) {
	n.nextFlowSeq++
	f.seq = n.nextFlowSeq
	n.flows[f] = struct{}{}
	if f.src != nil && f.dst != nil {
		k := pairKey{f.src.name, f.dst.name}
		f.pairPos = len(n.pairFlows[k])
		n.pairFlows[k] = append(n.pairFlows[k], f)
	}
}

// unregisterFlowLocked removes a retired flow from the pair index via
// swap-remove, keeping iteration order deterministic.
func (n *Net) unregisterFlowLocked(f *flow) {
	delete(n.flows, f)
	if f.src == nil || f.dst == nil {
		return
	}
	k := pairKey{f.src.name, f.dst.name}
	fs := n.pairFlows[k]
	last := len(fs) - 1
	moved := fs[last]
	fs[f.pairPos] = moved
	moved.pairPos = f.pairPos
	fs[last] = nil
	n.pairFlows[k] = fs[:last]
}

// LinkBetween returns the link directly joining nodes a and b (in either
// orientation), or nil. Experiments use it for fault injection.
func (n *Net) LinkBetween(a, b string) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l
		}
	}
	return nil
}
