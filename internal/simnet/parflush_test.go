package simnet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// dirtyAll marks every active flow dirty, the way a burst of same-instant
// window events would, with the flush latch held so tests drive flushes
// by hand.
func dirtyAll(n *Net, flows []*flow) {
	n.mu.Lock()
	n.flushPending = true
	for _, f := range flows {
		if f.active {
			n.markFlowDirtyLocked(f)
		}
	}
	n.mu.Unlock()
}

func flushByHand(n *Net) {
	n.mu.Lock()
	n.flushLocked()
	n.mu.Unlock()
}

// TestParallelFlushMatchesSequential is the simnet-level differential
// check: identical nets, identical deterministic mutation schedules, one
// flushed sequentially and one through the worker fan — every flow's
// rate must match bit for bit after every flush, and the allocation-pass
// accounting must be identical. Structural rounds are mixed in so the
// conservative path is exercised inside the same schedule.
func TestParallelFlushMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			seqN, seqFlows := buildBenchNet(96)
			parN, parFlows := buildBenchNet(96)
			parN.clk.SetWorkers(workers)
			t.Cleanup(func() { parN.clk.SetWorkers(1) })

			mutate := func(n *Net, flows []*flow, round int) {
				n.mu.Lock()
				n.flushPending = true
				if round%7 == 3 {
					// Structural: detach one flow (component split).
					f := flows[round%len(flows)]
					if f.active {
						f.active = false
						n.flowDeactivatedLocked(f)
					}
				}
				if round%7 == 5 {
					// Structural: re-attach it (component join).
					f := flows[(round-2)%len(flows)]
					if !f.active {
						f.active = true
						n.flowActivatedLocked(f)
					}
				}
				for i, f := range flows {
					if !f.active {
						continue
					}
					f.windowCap = float64(20+((round*13+i*7)%80)) * 1e6
					n.markFlowDirtyLocked(f)
				}
				n.mu.Unlock()
			}

			for round := 0; round < 60; round++ {
				mutate(seqN, seqFlows, round)
				mutate(parN, parFlows, round)
				flushByHand(seqN)
				flushByHand(parN)
				for i := range seqFlows {
					sr, pr := seqFlows[i].rate, parFlows[i].rate
					if math.Float64bits(sr) != math.Float64bits(pr) {
						t.Fatalf("round %d flow %d: sequential rate %v != parallel rate %v",
							round, i, sr, pr)
					}
				}
			}
			sp, sf := seqN.AllocStats()
			pp, pf := parN.AllocStats()
			if sp != pp || sf != pf {
				t.Fatalf("alloc accounting diverged: sequential (%d passes, %d flows) vs parallel (%d, %d)",
					sp, sf, pp, pf)
			}
			par, cons, _ := parN.ParStats()
			if par == 0 {
				t.Fatal("parallel path never ran; the differential proved nothing")
			}
			if cons == 0 {
				t.Fatal("conservative path never ran; structural rounds did not trigger it")
			}
			if sPar, _, _ := seqN.ParStats(); sPar != 0 {
				t.Fatalf("sequential net ran %d parallel flushes", sPar)
			}
		})
	}
}

// TestStructuralInstantsForceConservative covers each structural trigger
// individually: component split (detach), component join (attach), disk
// rebinding (edge change), and host-down — each must force exactly the
// next flush onto the conservative path, and the latch must clear after
// it so steady-state instants fan again.
func TestStructuralInstantsForceConservative(t *testing.T) {
	n, flows := buildBenchNet(64)
	n.clk.SetWorkers(4)
	t.Cleanup(func() { n.clk.SetWorkers(1) })

	expect := func(step string, wantPar, wantCons uint64) {
		t.Helper()
		par, cons, _ := n.ParStats()
		if par != wantPar || cons != wantCons {
			t.Fatalf("%s: ParStats = (par %d, cons %d), want (%d, %d)",
				step, par, cons, wantPar, wantCons)
		}
	}

	// buildBenchNet's setup flush ran before workers were enabled; the
	// first hand-driven flush must see a quiet instant and fan.
	dirtyAll(n, flows)
	flushByHand(n)
	expect("steady flush", 1, 0)

	// Split: a flow detaches mid-instant.
	n.mu.Lock()
	n.flushPending = true
	flows[0].active = false
	n.flowDeactivatedLocked(flows[0])
	for _, f := range flows[1:] {
		n.markFlowDirtyLocked(f)
	}
	n.mu.Unlock()
	flushByHand(n)
	expect("detach instant", 1, 1)

	dirtyAll(n, flows)
	flushByHand(n)
	expect("latch cleared after detach", 2, 1)

	// Join: the flow re-attaches.
	n.mu.Lock()
	n.flushPending = true
	flows[0].active = true
	n.flowActivatedLocked(flows[0])
	n.mu.Unlock()
	flushByHand(n)
	expect("attach instant", 2, 2)

	// Edge change: disk rebinding invalidates cached refs.
	n.mu.Lock()
	n.flushPending = true
	flows[1].diskBound = !flows[1].diskBound
	flows[1].invalidateRefs()
	n.markFlowDirtyLocked(flows[1])
	n.mu.Unlock()
	flushByHand(n)
	expect("rebind instant", 2, 3)

	// Host-down: latched even before any conn resets land.
	n.Host("src0000").SetDown(true)
	dirtyAll(n, flows)
	flushByHand(n)
	expect("host-down instant", 2, 4)

	// Reboot restructures too (clients re-dial): also conservative.
	n.Host("src0000").SetDown(false)
	dirtyAll(n, flows)
	flushByHand(n)
	expect("reboot instant", 2, 5)

	dirtyAll(n, flows)
	flushByHand(n)
	expect("steady again", 3, 5)
}

// TestBelowThresholdFlushRunsInline: one small dirty component is not
// worth waking the pool; it must run inline (and still correctly).
func TestBelowThresholdFlushRunsInline(t *testing.T) {
	n, flows := buildBenchNet(16)
	n.clk.SetWorkers(4)
	t.Cleanup(func() { n.clk.SetWorkers(1) })

	// Dirty a single flow: one component, below parMinFlows unless the
	// pair has >= parMinFlows flows (buildBenchNet puts 8 per pair, so
	// dirty exactly one pair: 8 flows, 1 component — inline on the
	// component-count test).
	n.mu.Lock()
	n.flushPending = true
	n.markFlowDirtyLocked(flows[0])
	n.mu.Unlock()
	flushByHand(n)
	par, cons, inline := n.ParStats()
	if par != 0 || cons != 0 || inline != 1 {
		t.Fatalf("ParStats = (%d, %d, %d), want inline-only (0, 0, 1)", par, cons, inline)
	}
	if flows[0].rate == 0 {
		t.Fatal("inline flush did not allocate a rate")
	}
}

// TestSameInstantCrossComponentDials drives real connections: two
// clients in disjoint components dial at the same virtual instant. The
// dial instant attaches flows in two different components at once — a
// structural instant that must flush conservatively — while the
// steady transfer instants that follow fan in parallel, and the whole
// run must be byte-identical to the sequential reference.
func TestSameInstantCrossComponentDials(t *testing.T) {
	type outcome struct {
		done   [2]time.Duration
		passes uint64
		flows  uint64
		par    uint64
		cons   uint64
	}
	run := func(workers int) outcome {
		clk := vtime.NewSim(11)
		clk.SetWorkers(workers)
		defer clk.SetWorkers(1)
		n := New(clk)
		for p := 0; p < 2; p++ {
			a := fmt.Sprintf("a%d", p)
			b := fmt.Sprintf("b%d", p)
			n.AddHost(a, HostConfig{DefaultBufferBytes: 1 << 20})
			n.AddHost(b, HostConfig{DefaultBufferBytes: 1 << 20})
			n.AddLink(a, b, LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})
		}
		var out outcome
		clk.Run(func() {
			const total = 4 << 20
			for p := 0; p < 2; p++ {
				p := p
				l, err := n.Host(fmt.Sprintf("b%d", p)).Listen(":9000")
				if err != nil {
					t.Errorf("listen: %v", err)
					return
				}
				clk.Go(func() {
					c, err := l.Accept()
					if err != nil {
						t.Errorf("accept: %v", err)
						return
					}
					defer c.Close()
					transport.ReadVirtualFrom(c, total)
				})
			}
			wg := vtime.NewWaitGroup(clk)
			for p := 0; p < 2; p++ {
				p := p
				wg.Add(1)
				clk.Go(func() {
					defer wg.Done()
					// No stagger: both dials land on the same instant.
					c, err := n.Host(fmt.Sprintf("a%d", p)).Dial(fmt.Sprintf("b%d:9000", p))
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					defer c.Close()
					if _, err := transport.WriteVirtualTo(c, total); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					out.done[p] = clk.Now().Sub(vtime.Epoch)
				})
			}
			wg.Wait()
		})
		out.passes, out.flows = n.AllocStats()
		out.par, out.cons, _ = n.ParStats()
		return out
	}

	base := run(1)
	if base.par != 0 || base.cons != 0 {
		t.Fatalf("sequential run used the parallel machinery: %+v", base)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.done != base.done || got.passes != base.passes || got.flows != base.flows {
			t.Fatalf("workers=%d diverged from sequential: got %+v, base %+v", workers, got, base)
		}
		if got.cons == 0 {
			t.Errorf("workers=%d: same-instant cross-component dials never forced the conservative path", workers)
		}
	}
}

// TestParallelRunByteIdentical is the end-to-end simnet determinism
// check under the real event loop with loss (RNG draws on the merge
// path): disjoint site pairs transferring concurrently must complete at
// bit-identical virtual instants at every worker count, with identical
// allocator accounting — and the parallel path must actually run.
func TestParallelRunByteIdentical(t *testing.T) {
	const pairs, conns = 4, 4
	type outcome struct {
		done   [pairs * conns]time.Duration
		passes uint64
		flows  uint64
	}
	run := func(workers int) (outcome, uint64) {
		clk := vtime.NewSim(23)
		clk.SetWorkers(workers)
		defer clk.SetWorkers(1)
		n := New(clk)
		for p := 0; p < pairs; p++ {
			a := fmt.Sprintf("a%d", p)
			b := fmt.Sprintf("b%d", p)
			n.AddHost(a, HostConfig{DefaultBufferBytes: 1 << 20})
			n.AddHost(b, HostConfig{DefaultBufferBytes: 1 << 20})
			n.AddLink(a, b, LinkConfig{
				CapacityBps: 200e6, Delay: 3 * time.Millisecond, LossRate: 1e-5,
			})
		}
		var out outcome
		clk.Run(func() {
			const total = 2 << 20
			for p := 0; p < pairs; p++ {
				l, err := n.Host(fmt.Sprintf("b%d", p)).Listen(":9000")
				if err != nil {
					t.Errorf("listen: %v", err)
					return
				}
				for c := 0; c < conns; c++ {
					clk.Go(func() {
						cc, err := l.Accept()
						if err != nil {
							return
						}
						defer cc.Close()
						transport.ReadVirtualFrom(cc, total)
					})
				}
			}
			wg := vtime.NewWaitGroup(clk)
			for p := 0; p < pairs; p++ {
				for c := 0; c < conns; c++ {
					p, c := p, c
					wg.Add(1)
					clk.Go(func() {
						defer wg.Done()
						clk.Sleep(time.Duration(c) * 100 * time.Microsecond)
						cc, err := n.Host(fmt.Sprintf("a%d", p)).Dial(fmt.Sprintf("b%d:9000", p))
						if err != nil {
							t.Errorf("dial: %v", err)
							return
						}
						defer cc.Close()
						if _, err := transport.WriteVirtualTo(cc, total); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						out.done[p*conns+c] = clk.Now().Sub(vtime.Epoch)
					})
				}
			}
			wg.Wait()
		})
		out.passes, out.flows = n.AllocStats()
		par, _, _ := n.ParStats()
		return out, par
	}

	base, _ := run(1)
	for _, workers := range []int{2, 4, 8} {
		got, par := run(workers)
		if got != base {
			t.Fatalf("workers=%d diverged from sequential run", workers)
		}
		if par == 0 {
			t.Errorf("workers=%d: no flush ever fanned; test exercised nothing", workers)
		}
	}
}

// TestParallelFlushAllocFree pins the whole parallel flush path —
// gather, fan dispatch, per-lane allocation passes, canonical merge —
// at zero steady-state allocations, next to the sequential allocator's
// own guarantee.
func TestParallelFlushAllocFree(t *testing.T) {
	n, flows := buildBenchNet(128)
	n.clk.SetWorkers(4)
	t.Cleanup(func() { n.clk.SetWorkers(1) })
	caps := [2]float64{40e6, 80e6}
	round := 0
	cycle := func() {
		n.mu.Lock()
		n.flushPending = true
		for _, f := range flows {
			f.windowCap = caps[round%2]
			n.markFlowDirtyLocked(f)
		}
		n.mu.Unlock()
		flushByHand(n)
		round++
	}
	for i := 0; i < 4; i++ {
		cycle() // warm lane scratches, gather buffers, CSR caches
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs > 0 {
		t.Errorf("parallel flush allocates %.1f objects per instant, want 0", allocs)
	}
	par, _, _ := n.ParStats()
	if par == 0 {
		t.Fatal("guard never exercised the parallel path")
	}
}

// buildParBenchNet builds nComp disjoint components of perComp flows
// each sharing one saturated 1 Gb/s link (half the flows window-limited
// below their fair share, so every pass runs the full water-filling
// rounds, never the caps-feasible fast path).
func buildParBenchNet(nComp, perComp int) (*Net, []*flow) {
	clk := vtime.NewSim(1)
	n := New(clk)
	flows := make([]*flow, 0, nComp*perComp)
	for p := 0; p < nComp; p++ {
		src := n.AddHost(fmt.Sprintf("s%04d", p), HostConfig{})
		dst := n.AddHost(fmt.Sprintf("d%04d", p), HostConfig{})
		n.AddLink(src.name, dst.name, LinkConfig{CapacityBps: 1e9, Delay: 5 * time.Millisecond})
		n.mu.Lock()
		path, err := n.routeLocked(src.name, dst.name)
		n.mu.Unlock()
		if err != nil {
			panic(err)
		}
		for k := 0; k < perComp; k++ {
			windowCap := math.Inf(1)
			if k%2 == 1 {
				windowCap = 4e6 // well below the 1e9/perComp fair share
			}
			f := newChurnFlow(n, src, dst, path, windowCap)
			f.active = true
			n.mu.Lock()
			n.flowActivatedLocked(f)
			n.mu.Unlock()
			flows = append(flows, f)
		}
	}
	n.mu.Lock()
	n.flushPending = true
	n.flushLocked()
	n.mu.Unlock()
	return n, flows
}

// BenchmarkParallelFlush measures the fanned end-of-instant flush over
// 64 disjoint 64-flow components in the steady state real runs live in:
// every component re-allocates (full water-filling rounds on every
// pass), rates have converged, so the serial merge is cheap and the
// measured cost is gather + the parallelizable allocation kernel. This
// is the harness-speed curve for the worker pool itself; end-to-end
// experiment speedup is bounded by the flush's share of total wall time
// (EXPERIMENTS.md).
func BenchmarkParallelFlush(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			n, flows := buildParBenchNet(64, 64)
			n.clk.SetWorkers(workers)
			defer n.clk.SetWorkers(1)
			cycle := func() {
				n.mu.Lock()
				n.flushPending = true
				for _, f := range flows {
					n.markFlowDirtyLocked(f)
				}
				n.mu.Unlock()
				flushByHand(n)
			}
			for i := 0; i < 3; i++ {
				cycle()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle()
			}
		})
	}
}
