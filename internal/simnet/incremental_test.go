package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// newChurnFlow builds a synthetic long-running flow suitable for driving
// the incremental allocator directly (it carries a Conn shell and an
// effectively infinite queued segment, so setRate's completion machinery
// has something well-formed to chew on without ever retiring it).
func newChurnFlow(n *Net, src, dst *Host, path []*simplex, windowCap float64) *flow {
	c := &Conn{net: n}
	c.writeCond = [2]vtime.Cond{n.clk.NewCond(&n.mu), n.clk.NewCond(&n.mu)}
	f := &flow{
		net: n, conn: c, dir: 0, src: src, dst: dst, path: path,
		mss: DefaultMSS, windowCap: windowCap,
		queuedEnd: 1e18, segs: []*segment{{end: 1e18, n: 1 << 60}},
	}
	n.mu.Lock()
	n.registerFlowLocked(f)
	n.mu.Unlock()
	return f
}

// churnScenario is a randomized multi-component topology plus flows for
// differential testing: nSites independent site pairs (so real component
// structure exists) with a few cross-site links thrown in at random.
type churnScenario struct {
	n     *Net
	hosts []*Host
	links []*Link
	flows []*flow
}

func buildChurnScenario(rng *rand.Rand) *churnScenario {
	clk := vtime.NewSim(rng.Int63())
	n := New(clk)
	s := &churnScenario{n: n}
	nHosts := 4 + rng.Intn(8)
	for i := 0; i < nHosts; i++ {
		cfg := HostConfig{}
		if rng.Intn(3) == 0 {
			cfg.CPU = GigabitHostCPU(1 + float64(rng.Intn(8)))
		}
		if rng.Intn(3) == 0 {
			cfg.DiskBps = 50e6 + rng.Float64()*500e6
		}
		s.hosts = append(s.hosts, n.AddHost(fmt.Sprintf("h%02d", i), cfg))
	}
	// Pair up hosts (disjoint components), then add a few random extra
	// links so some components merge.
	for i := 0; i+1 < nHosts; i += 2 {
		s.links = append(s.links, n.AddLink(s.hosts[i].name, s.hosts[i+1].name, LinkConfig{
			CapacityBps: 10e6 + rng.Float64()*1e9, Delay: time.Millisecond,
		}))
	}
	for k := rng.Intn(3); k > 0; k-- {
		a, b := rng.Intn(nHosts), rng.Intn(nHosts)
		if a != b {
			s.links = append(s.links, n.AddLink(s.hosts[a].name, s.hosts[b].name, LinkConfig{
				CapacityBps: 10e6 + rng.Float64()*1e9, Delay: time.Millisecond,
			}))
		}
	}
	nFlows := 2 + rng.Intn(24)
	for i := 0; i < nFlows; i++ {
		src := s.hosts[rng.Intn(nHosts)]
		dst := s.hosts[rng.Intn(nHosts)]
		if src == dst {
			continue
		}
		n.mu.Lock()
		path, err := n.routeLocked(src.name, dst.name)
		n.mu.Unlock()
		if err != nil {
			continue
		}
		windowCap := 1e6 + rng.Float64()*2e9
		if rng.Intn(4) == 0 {
			windowCap = math.Inf(1)
		}
		f := newChurnFlow(n, src, dst, path, windowCap)
		f.diskBound = rng.Intn(2) == 0
		s.flows = append(s.flows, f)
	}
	return s
}

// mutate applies one random allocator-relevant event through the
// production dirty-marking entry points. Caller holds no locks.
func (s *churnScenario) mutate(rng *rand.Rand) {
	n := s.n
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flushPending = true // drive flushes by hand, not via the event queue
	switch rng.Intn(6) {
	case 0: // activate an idle flow
		f := s.flows[rng.Intn(len(s.flows))]
		if !f.active {
			f.active = true
			n.flowActivatedLocked(f)
		}
	case 1: // deactivate an active flow
		f := s.flows[rng.Intn(len(s.flows))]
		if f.active {
			f.active = false
			n.flowDeactivatedLocked(f)
		}
	case 2: // window change (growth or loss)
		f := s.flows[rng.Intn(len(s.flows))]
		f.windowCap = 1e6 + rng.Float64()*2e9
		if f.active {
			n.markFlowDirtyLocked(f)
		}
	case 3: // capacity fault / repair
		l := s.links[rng.Intn(len(s.links))]
		factor := rng.Float64()
		if rng.Intn(2) == 0 {
			factor = 1
		}
		l.fwd.factor = factor
		l.rev.factor = factor
		n.markResDirtyLocked(&l.fwd.res)
		n.markResDirtyLocked(&l.rev.res)
	case 4: // link down / up
		l := s.links[rng.Intn(len(s.links))]
		up := rng.Intn(2) == 0
		l.fwd.up = up
		l.rev.up = up
		n.markResDirtyLocked(&l.fwd.res)
		n.markResDirtyLocked(&l.rev.res)
	case 5: // disk binding change
		f := s.flows[rng.Intn(len(s.flows))]
		wasAttached := f.attached
		n.detachLocked(f)
		f.diskBound = !f.diskBound
		f.invalidateRefs()
		if wasAttached {
			n.attachLocked(f)
			n.markFlowDirtyLocked(f)
		}
	}
	n.flushLocked()
}

// TestIncrementalMatchesReference is the seeded differential test: after
// every randomized event (flow churn, window changes, faults, disk/CPU
// binding changes) on randomized multi-component topologies, each active
// flow's incrementally maintained rate must match the reference full
// allocator's within 1e-6 relative.
func TestIncrementalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := buildChurnScenario(rng)
		if len(s.flows) == 0 || len(s.links) == 0 {
			continue
		}
		for step := 0; step < 60; step++ {
			s.mutate(rng)
			s.n.mu.Lock()
			// Reference allocation over all active flows in stable
			// (creation) order.
			var fs []*flow
			for _, f := range s.flows {
				if f.active {
					fs = append(fs, f)
				}
			}
			ref := s.n.allocate(fs)
			for i, f := range fs {
				want, got := ref[i], f.rate
				tol := 1e-6*math.Max(math.Abs(want), math.Abs(got)) + 1e-3
				if math.Abs(want-got) > tol {
					s.n.mu.Unlock()
					t.Fatalf("seed %d step %d: flow %s->%s rate %v, reference %v",
						seed, step, f.src.name, f.dst.name, got, want)
				}
			}
			s.n.mu.Unlock()
		}
	}
}

// runVerifiedWorkload runs concurrent transfers with faults, buffer and
// disk-binding changes through the real connection machinery, with the
// differential cross-check enabled so every incremental flush is compared
// against the reference allocator. It returns the virtual elapsed time
// and total bytes moved, which the determinism test compares across runs.
func runVerifiedWorkload(t *testing.T, seed int64, verify bool) (time.Duration, float64) {
	t.Helper()
	clk := vtime.NewSim(seed)
	n := New(clk)
	n.AddNode("wan")
	for i := 0; i < 3; i++ {
		srv := fmt.Sprintf("srv%d", i)
		n.AddHost(srv, HostConfig{
			CPU: GigabitHostCPU(4), DiskBps: 400e6, DefaultBufferBytes: 1 << 20,
		})
		n.AddLink(srv, "wan", LinkConfig{CapacityBps: 622e6, Delay: 2 * time.Millisecond, LossRate: 1e-4})
		cli := fmt.Sprintf("cli%d", i)
		n.AddHost(cli, HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(cli, "wan", LinkConfig{CapacityBps: 300e6, Delay: 3 * time.Millisecond})
	}
	n.SetVerifyAllocations(verify)
	const fileBytes = int64(24 << 20)
	var total float64
	clk.Run(func() {
		// Servers echo virtual bytes at each accepted conn.
		for i := 0; i < 3; i++ {
			srv := n.Host(fmt.Sprintf("srv%d", i))
			l, err := srv.Listen(":9000")
			if err != nil {
				t.Error(err)
				return
			}
			clk.Go(func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					clk.Go(func() {
						defer c.Close()
						if err := c.(transport.VirtualWriter).WriteVirtual(fileBytes); err != nil {
							return
						}
					})
				}
			})
		}
		// Fault injector: degrade and restore srv1's link mid-run, plus a
		// clean outage (stall, no reset) on srv2's.
		clk.Go(func() {
			clk.Sleep(300 * time.Millisecond)
			n.LinkBetween("srv1", "wan").SetCapacityFactor(0.25)
			clk.Sleep(400 * time.Millisecond)
			n.LinkBetween("srv1", "wan").SetCapacityFactor(1)
			clk.Sleep(100 * time.Millisecond)
			n.LinkBetween("srv2", "wan").SetUp(false, false)
			clk.Sleep(250 * time.Millisecond)
			n.LinkBetween("srv2", "wan").SetUp(true, false)
		})
		wg := vtime.NewWaitGroup(clk)
		for i := 0; i < 9; i++ {
			i := i
			wg.Go(func() {
				clk.Sleep(time.Duration(i) * 7 * time.Millisecond)
				cli := n.Host(fmt.Sprintf("cli%d", i%3))
				c, err := cli.Dial(fmt.Sprintf("srv%d:9000", i%3))
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				ep := c.(*Endpoint)
				if i%2 == 0 {
					ep.SetBuffer(4 << 20)
				}
				if i%3 == 0 {
					ep.SetDiskBound(true)
				}
				var got int64
				for got < fileBytes {
					m, err := ep.ReadVirtual(fileBytes - got)
					if err != nil {
						t.Errorf("client %d: %v", i, err)
						return
					}
					got += m
				}
			})
		}
		wg.Wait()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				total += n.TotalBytesBetween(fmt.Sprintf("srv%d", i), fmt.Sprintf("cli%d", j))
			}
		}
	})
	return clk.Elapsed(), total
}

// TestIncrementalDifferentialEndToEnd exercises the incremental allocator
// through the real connection machinery — concurrent transfers, capacity
// faults, an outage, buffer retuning and disk binding — with the
// reference cross-check verifying every flush.
func TestIncrementalDifferentialEndToEnd(t *testing.T) {
	elapsed, total := runVerifiedWorkload(t, 42, true)
	if total < float64(9*24<<20) {
		t.Fatalf("transfers incomplete: moved %.0f bytes in %v", total, elapsed)
	}
}

// TestDeterministicEventTrace runs the same faulted workload twice with
// the same seed and requires bit-identical outcomes: same virtual elapsed
// time, same byte totals.
func TestDeterministicEventTrace(t *testing.T) {
	e1, b1 := runVerifiedWorkload(t, 7, false)
	e2, b2 := runVerifiedWorkload(t, 7, false)
	if e1 != e2 {
		t.Fatalf("virtual elapsed diverged: %v vs %v", e1, e2)
	}
	if b1 != b2 {
		t.Fatalf("byte totals diverged: %v vs %v", b1, b2)
	}
}

// TestAllocateSteadyStateAllocFree verifies the progressive-filling
// allocator performs zero heap allocations once its scratch buffers are
// warm.
func TestAllocateSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := buildChurnScenario(rng)
	n := s.n
	n.mu.Lock()
	for _, f := range s.flows {
		f.active = true
	}
	fs := append([]*flow(nil), s.flows...)
	n.allocate(fs) // warm scratch
	n.mu.Unlock()
	allocs := testing.AllocsPerRun(100, func() {
		n.mu.Lock()
		n.allocate(fs)
		n.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("allocate allocates %v times per run in steady state, want 0", allocs)
	}
}

// TestIncrementalFlushSteadyStateAllocFree verifies a steady-state
// dirty-mark + flush cycle — the per-event hot path — is allocation-free.
func TestIncrementalFlushSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := buildChurnScenario(rng)
	n := s.n
	if len(s.flows) == 0 {
		t.Skip("empty scenario")
	}
	n.mu.Lock()
	n.flushPending = true // keep the flush timer out of the picture
	for _, f := range s.flows {
		f.active = true
		n.flowActivatedLocked(f)
	}
	n.flushLocked()
	seed := s.flows[0]
	// One extra cycle with the same seed flow warms every scratch path
	// (component order, and with it floating-point rounding, is a
	// function of the seed, so rates stay bitwise stable afterwards).
	n.markFlowDirtyLocked(seed)
	n.flushLocked()
	n.mu.Unlock()
	allocs := testing.AllocsPerRun(100, func() {
		n.mu.Lock()
		n.markFlowDirtyLocked(seed)
		n.flushLocked()
		n.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("flush allocates %v times per run in steady state, want 0", allocs)
	}
}

// TestSameInstantEventsCoalesce checks that a burst of same-instant
// activations triggers a single allocation pass over the shared
// component, not one pass per event.
func TestSameInstantEventsCoalesce(t *testing.T) {
	clk := vtime.NewSim(1)
	n := New(clk)
	n.AddHost("a", HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddHost("b", HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("a", "b", LinkConfig{CapacityBps: 1e9, Delay: time.Millisecond})
	const clients = 16
	clk.Run(func() {
		l, err := n.Host("b").Listen(":9000")
		if err != nil {
			t.Error(err)
			return
		}
		clk.Go(func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					defer c.Close()
					c.(transport.VirtualWriter).WriteVirtual(1 << 20)
				})
			}
		})
		conns := make([]*Endpoint, clients)
		for i := range conns {
			c, err := n.Host("a").Dial("b:9000")
			if err != nil {
				t.Error(err)
				return
			}
			conns[i] = c.(*Endpoint)
		}
		for _, c := range conns {
			var got int64
			for got < 1<<20 {
				m, err := c.ReadVirtual(1 << 20)
				if err != nil {
					t.Error(err)
					return
				}
				got += m
			}
		}
		clk.Sleep(time.Second)
		passes0, _ := n.AllocStats()
		if passes0 == 0 {
			t.Fatal("expected allocation passes during transfers")
		}
		// Now a fresh same-instant burst: all 16 clients upload at once.
		// That is 16 flow activations at one timestamp, followed by lock-
		// step window growth (16 growth events per RTT, all at the same
		// instant) on one shared component. With per-event recomputation
		// this costs hundreds of passes; the coalesced flush needs one
		// pass per distinct instant — activation, each growth round, the
		// completion/linger wave.
		wg := vtime.NewWaitGroup(clk)
		for _, c := range conns {
			c := c
			wg.Go(func() {
				if err := c.WriteVirtual(1 << 20); err != nil {
					t.Error(err)
				}
			})
		}
		wg.Wait()
		clk.Sleep(time.Second)
		passesEnd, _ := n.AllocStats()
		if passesEnd == passes0 {
			t.Fatal("expected allocation passes from the upload burst")
		}
		if burst := passesEnd - passes0; burst > 40 {
			t.Fatalf("upload burst cost %d allocation passes, want coalesced (<= 40)", burst)
		}
		for _, c := range conns {
			c.Close()
		}
	})
}
