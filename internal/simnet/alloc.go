package simnet

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// Incremental, component-scoped max-min allocation.
//
// The fluid model's cost driver is recomputation: every window-growth,
// loss, enqueue and linger event changes some flow's demand and requires a
// fresh fair allocation. The reference allocator (recomputeLocked) folds
// and re-allocates every active flow on every event — O(events x flows x
// path), which is fine for the paper's eight striped pairs but quadratic
// blow-up for thousands of concurrent transfers.
//
// Two observations fix this:
//
//  1. Max-min allocation decomposes exactly over the connected components
//     of the resource-sharing graph (flows are vertices; two flows are
//     adjacent when they consume a common link direction or host CPU/disk
//     budget). Flows in different components cannot influence each
//     other's rates, so an event only requires re-allocating the
//     component(s) it touches.
//
//  2. Many events land on the same virtual instant (eight stripe streams
//     all losing their linger timer at once, a burst of enqueues). One
//     allocation pass at that instant covers them all.
//
// The implementation maintains, on every resource, the list of active
// flows consuming it (attachLocked/detachLocked keep the lists in sync as
// flows activate, deactivate and change disk binding). Events mark the
// flows or resources they touch dirty and arm a single zero-delay flush
// event; when the simulator reaches quiescence at that same instant,
// flushLocked gathers each dirty component with an epoch-stamped BFS over
// the membership lists and runs the progressive-filling allocator on just
// those flows. Everything is scratch-buffered, so a steady-state
// recomputation performs no heap allocation.
//
// Ordering everywhere is append-order over slices — never map iteration —
// so allocation order, and with it floating-point rounding and timer
// sequencing, is identical from run to run.

// resEntry records one active flow's membership in a resource's flow
// list. ref is the index of this resource within the flow's cached refs,
// so a swap-remove can fix the moved entry's back-pointer in O(1).
type resEntry struct {
	f   *flow
	ref int
}

// attachLocked enters an activating flow into the membership lists of
// every resource it consumes. Caller holds Net.mu.
func (n *Net) attachLocked(f *flow) {
	if f.attached {
		return
	}
	n.csrGen++
	n.markStructuralLocked()
	refs := f.refs()
	if cap(f.resPos) < len(refs) {
		f.resPos = make([]int, len(refs))
	}
	f.resPos = f.resPos[:len(refs)]
	for j, rr := range refs {
		f.resPos[j] = len(rr.r.flows)
		rr.r.flows = append(rr.r.flows, resEntry{f: f, ref: j})
	}
	f.attached = true
}

// detachLocked removes a deactivating flow from its resources' membership
// lists and marks those resources dirty, since the remaining flows can
// now claim its share. Caller holds Net.mu.
func (n *Net) detachLocked(f *flow) {
	if !f.attached {
		return
	}
	n.csrGen++
	n.markStructuralLocked()
	for j, rr := range f.refs() {
		r := rr.r
		p := f.resPos[j]
		last := len(r.flows) - 1
		moved := r.flows[last]
		r.flows[p] = moved
		moved.f.resPos[moved.ref] = p
		r.flows[last] = resEntry{}
		r.flows = r.flows[:last]
		n.markResDirtyLocked(r)
	}
	f.attached = false
}

// markFlowDirtyLocked queues one flow's component for re-allocation at
// this instant and arms the coalesced flush.
func (n *Net) markFlowDirtyLocked(f *flow) {
	if !f.dirty {
		f.dirty = true
		n.dirtyFlows = append(n.dirtyFlows, f)
	}
	n.requestFlushLocked()
}

// markResDirtyLocked queues the component(s) of every flow on a resource
// for re-allocation (capacity faults, departures) and arms the flush.
func (n *Net) markResDirtyLocked(r *res) {
	if !r.dirty {
		r.dirty = true
		n.dirtyRes = append(n.dirtyRes, r)
	}
	n.requestFlushLocked()
}

// flowActivatedLocked registers a newly active flow with the allocator.
func (n *Net) flowActivatedLocked(f *flow) {
	n.flowsActive.Add(1)
	n.attachLocked(f)
	n.markFlowDirtyLocked(f)
}

// flowDeactivatedLocked withdraws a no-longer-active flow; its former
// resources are marked dirty by the detach.
func (n *Net) flowDeactivatedLocked(f *flow) {
	n.flowsActive.Add(-1)
	n.detachLocked(f)
}

// requestFlushLocked arms a zero-delay flush event, unless one is already
// pending. Every event that dirties allocation state at virtual instant T
// funnels into the single flush that fires at T once the simulation is
// quiescent — that is what coalesces a burst of same-instant events into
// one allocation pass.
func (n *Net) requestFlushLocked() {
	if n.flushPending {
		return
	}
	n.flushPending = true
	n.clk.ArmInstantHook()
}

// flushLocked re-allocates every dirty component at the current instant.
// It is cheap (a no-op) when nothing is dirty, so read paths call it
// directly to observe fresh rates without waiting for the flush event.
func (n *Net) flushLocked() {
	if len(n.dirtyFlows) == 0 && len(n.dirtyRes) == 0 {
		return
	}
	now := n.clk.Elapsed()
	n.epoch++
	// Canonicalize the seed order before any component is gathered.
	// Several goroutines runnable at the same instant append their dirty
	// marks in whatever order they reach the lock, and progressive
	// filling's floating-point rounding depends on visit order — sorting
	// by creation stamp makes every flush (and so every rate bit) a pure
	// function of the event history, which is also what lets the
	// parallel fan's canonical merge reproduce this path exactly.
	sortFlowsBySeq(n.dirtyFlows)
	sortResByID(n.dirtyRes)
	// When workers are enabled and the instant is structurally quiet,
	// the flush fans the per-component passes out to the worker pool
	// (parflush.go) and merges in canonical order; otherwise this is
	// the sequential reference path.
	if !n.tryParallelFlushLocked(now) {
		for _, f := range n.dirtyFlows {
			f.dirty = false
			if f.removed || !f.active || f.epoch == n.epoch {
				continue
			}
			n.reallocComponentLocked(f, now)
		}
		for _, r := range n.dirtyRes {
			r.dirty = false
			// Every flow on r is in r's component; the first unvisited one
			// pulls in all the others (and r itself) via the BFS.
			for _, e := range r.flows {
				if e.f.epoch != n.epoch {
					n.reallocComponentLocked(e.f, now)
				}
			}
		}
	}
	n.dirtyFlows = n.dirtyFlows[:0]
	n.dirtyRes = n.dirtyRes[:0]
	n.parUnsafe = false
	if n.verifyAllocs {
		n.verifyAllocationsLocked()
	}
	n.observeFlushLocked(now)
}

// reallocComponentLocked gathers the connected component containing seed
// (flows transitively linked through shared resources, epoch-stamped so
// each flow and resource is visited once per flush) and re-runs the
// progressive-filling allocator on exactly those flows.
func (n *Net) reallocComponentLocked(seed *flow, now time.Duration) {
	comp := n.scrComp[:0]
	seed.epoch = n.epoch
	comp = append(comp, seed)
	for i := 0; i < len(comp); i++ {
		for _, rr := range comp[i].refs() {
			r := rr.r
			if r.epoch == n.epoch {
				continue
			}
			r.epoch = n.epoch
			for _, e := range r.flows {
				if e.f.epoch != n.epoch {
					e.f.epoch = n.epoch
					comp = append(comp, e.f)
				}
			}
		}
	}
	sortFlowsBySeq(comp)
	n.scrComp = comp
	n.allocPasses++
	n.allocFlows += uint64(len(comp))
	if n.rec != nil {
		n.rec.AllocPass(int64(now), int64(len(comp)), int64(n.allocPasses))
	}
	if len(comp) == 1 {
		// A flow alone on all its resources (the BFS found no neighbour)
		// has the closed-form rate min(windowCap, capacity/weight) — no
		// need to run the full progressive filling for it. Long single
		// transfers re-allocate on every per-RTT window event, so this
		// path carries the bulk of their passes.
		f := comp[0]
		f.fold(now)
		rate := f.windowCap
		for _, rr := range f.refs() {
			if r := rr.r.effective() / rr.w; r < rate {
				rate = r
			}
		}
		if math.IsInf(rate, 1) {
			rate = loopbackBps
		}
		f.setRate(now, rate)
		return
	}
	for _, f := range comp {
		f.fold(now)
	}
	rates := n.allocate(comp)
	for i, f := range comp {
		f.setRate(now, rates[i])
	}
}

// AllocStats reports how many component allocation passes the incremental
// allocator has run and how many flows those passes visited in total —
// the work the full recompute-everything path would have multiplied by
// the entire active-flow count.
func (n *Net) AllocStats() (passes, flowsVisited uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allocPasses, n.allocFlows
}

// SetVerifyAllocations enables a differential cross-check: after every
// incremental flush the reference full allocator runs over all active
// flows, and any divergence beyond floating-point tolerance panics. Used
// by tests; far too slow for production runs.
func (n *Net) SetVerifyAllocations(v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.verifyAllocs = v
}

// verifyAllocationsLocked compares every active flow's incremental rate
// against the reference allocator's.
func (n *Net) verifyAllocationsLocked() {
	fs := n.activeFlowsLocked()
	// The reference allocate call reuses the scratch rates buffer, which
	// is safe here because all incremental passes have already consumed
	// their results into f.rate.
	rates := n.allocate(fs)
	for i, f := range fs {
		want, got := rates[i], f.rate
		tol := 1e-6*math.Max(math.Abs(want), math.Abs(got)) + 1e-3
		if math.Abs(want-got) > tol {
			panic(fmt.Sprintf("simnet: incremental allocation diverged for flow %s->%s: got %v, reference %v",
				flowEndName(f.src), flowEndName(f.dst), got, want))
		}
	}
}

func flowEndName(h *Host) string {
	if h == nil {
		return "?"
	}
	return h.name
}

// sortFlowsBySeq orders flows by creation stamp — the canonical
// allocation order. Allocation-free (pdqsort on a captureless closure).
func sortFlowsBySeq(fs []*flow) {
	slices.SortFunc(fs, func(a, b *flow) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}

// sortResByID orders resources by their dense creation-order ids.
func sortResByID(rs []*res) {
	slices.SortFunc(rs, func(a, b *res) int { return a.id - b.id })
}
