package simnet

import (
	"math"
	"time"

	"esgrid/internal/vtime"
)

// flow is one direction of a connection's traffic: a fluid-model TCP
// stream with AIMD window dynamics. All fields are guarded by Net.mu.
type flow struct {
	net  *Net
	conn *Conn
	dir  int // index of the sending endpoint
	src  *Host
	dst  *Host
	path []*simplex
	owd  time.Duration // one-way propagation delay along path
	rtt  time.Duration // round-trip (both directions' paths)

	mss       int
	diskBound bool

	// Congestion window state (bytes). windowCap caches the rate bound
	// window*8/rtt in bits/s (Inf for zero-RTT loopback or probes).
	window    float64
	ssthresh  float64
	maxWindow float64
	windowCap float64
	growing   bool
	growTimer vtime.Timer
	lossTimer vtime.Timer
	lossRate  float64 // flow rate when the loss timer was sampled

	// Transmission state. transmitted is the cumulative payload bytes
	// fully accounted as of virtual instant lastT; between events the
	// true value is transmitted + rate/8*(t-lastT), clamped to queuedEnd.
	active      bool
	lingering   bool
	rate        float64 // bits/s
	lastT       time.Duration
	transmitted float64
	queuedEnd   float64
	segs        []*segment
	doneTimer   vtime.Timer
	lingerTimer vtime.Timer
	removed     bool

	resRefs []hostRes // cached resource membership (see refs)

	// Incremental allocation state (alloc.go): whether the flow is
	// entered in its resources' membership lists, its position in each
	// (parallel to resRefs), the flush visit stamp, whether it is queued
	// as a dirty seed, and its slot in the Net's (src,dst) pair index.
	attached bool
	resPos   []int
	epoch    uint64
	dirty    bool
	pairPos  int
}

// segment is a unit of enqueued payload: real bytes, virtual length, or a
// FIN marker. end is the cumulative flow offset at which it completes.
type segment struct {
	end  float64
	data []byte // real payload (nil for virtual / fin)
	n    int64  // payload length in bytes
	fin  bool
}

type hostRes struct {
	r *res
	w float64 // resource units consumed per bit/s of flow rate
}

// refs returns the flow's full resource membership (links + host
// budgets), cached; invalidated when disk binding changes.
func (f *flow) refs() []hostRes {
	if f.resRefs == nil {
		refs := make([]hostRes, 0, len(f.path)+4)
		for _, sx := range f.path {
			refs = append(refs, hostRes{&sx.res, 1})
		}
		refs = append(refs, f.hostResources()...)
		f.resRefs = refs
	}
	return f.resRefs
}

// invalidateRefs drops the cached resource list (e.g. on SetDiskBound).
func (f *flow) invalidateRefs() { f.resRefs = nil }

func newFlow(n *Net, c *Conn, dir int, src, dst *Host, path []*simplex, buffer int, mss int) *flow {
	f := &flow{
		net: n, conn: c, dir: dir, src: src, dst: dst, path: path, mss: mss,
	}
	for _, s := range path {
		f.owd += s.delay
	}
	f.rtt = 2 * f.owd // symmetric routes; refined by the conn if needed
	f.maxWindow = float64(buffer)
	f.window = float64(initialWindowMSS * mss)
	if f.window > f.maxWindow {
		f.window = f.maxWindow
	}
	// Slow-start threshold starts unbounded, as in real TCP: the first
	// loss sets it. The window is still capped by maxWindow (the socket
	// buffer), so buffer tuning remains the binding limit.
	f.ssthresh = math.Inf(1)
	f.updateWindowCap()
	return f
}

func (f *flow) updateWindowCap() {
	if f.rtt <= 0 {
		f.windowCap = math.Inf(1)
		return
	}
	f.windowCap = f.window * 8 / f.rtt.Seconds()
}

// hostResources lists the per-host budgets this flow consumes.
func (f *flow) hostResources() []hostRes {
	var out []hostRes
	if f.src != nil && f.src.cpu != nil {
		out = append(out, hostRes{f.src.cpu, f.src.cfg.CPU.weight(f.mss)})
	}
	if f.dst != nil && f.dst.cpu != nil && f.dst != f.src {
		out = append(out, hostRes{f.dst.cpu, f.dst.cfg.CPU.weight(f.mss)})
	}
	if f.diskBound {
		if f.src != nil && f.src.disk != nil {
			out = append(out, hostRes{f.src.disk, 1})
		}
		if f.dst != nil && f.dst.disk != nil && f.dst != f.src {
			out = append(out, hostRes{f.dst.disk, 1})
		}
	}
	return out
}

func (f *flow) crosses(l *Link) bool {
	for _, s := range f.path {
		if s.link == l {
			return true
		}
	}
	return false
}

// fold accounts transmission progress up to virtual instant now.
func (f *flow) fold(now time.Duration) {
	if now <= f.lastT {
		return
	}
	if f.active && f.rate > 0 {
		f.transmitted += f.rate / 8 * (now - f.lastT).Seconds()
		if f.transmitted > f.queuedEnd {
			f.transmitted = f.queuedEnd
		}
	}
	f.lastT = now
}

// transmittedAt reports cumulative transmitted bytes at instant now
// without mutating state.
func (f *flow) transmittedAt(now time.Duration) float64 {
	t := f.transmitted
	if f.active && f.rate > 0 && now > f.lastT {
		t += f.rate / 8 * (now - f.lastT).Seconds()
		if t > f.queuedEnd {
			t = f.queuedEnd
		}
	}
	return t
}

// enqueue adds a segment. Returns true if the flow transitioned from
// inactive to active (the caller must then recompute allocations).
func (f *flow) enqueue(now time.Duration, seg *segment) (activated bool) {
	f.fold(now)
	f.queuedEnd += float64(seg.n)
	seg.end = f.queuedEnd
	f.segs = append(f.segs, seg)
	if f.lingerTimer != nil {
		f.lingerTimer.Stop()
		f.lingerTimer = nil
	}
	f.lingering = false
	if !f.active {
		f.active = true
		f.startDynamics(now)
		return true
	}
	// Already active: just make sure a completion event is pending.
	f.scheduleCompletion(now)
	return false
}

// startDynamics begins window growth and loss sampling for a newly active
// flow. Caller recomputes rates afterwards.
func (f *flow) startDynamics(now time.Duration) {
	f.scheduleGrowth()
	f.scheduleLoss()
}

// scheduleGrowth arms the per-RTT window update if the window can still
// grow and the flow is active.
func (f *flow) scheduleGrowth() {
	if f.growing || !f.active || f.rtt <= 0 || f.window >= f.maxWindow {
		return
	}
	f.growing = true
	f.growTimer = f.net.clk.AfterFunc(f.rtt, f.onGrow)
}

func (f *flow) onGrow() {
	n := f.net
	n.mu.Lock()
	f.growing = false
	if f.removed || !f.active {
		n.mu.Unlock()
		return
	}
	wasCap := f.windowCap
	if f.window < f.ssthresh {
		f.window *= 2 // slow start
	} else {
		f.window += float64(f.mss) // congestion avoidance
	}
	if f.window > f.maxWindow {
		f.window = f.maxWindow
	}
	f.updateWindowCap()
	f.scheduleGrowth()
	// Only re-allocate if this flow was actually window-limited: growing
	// a window below the resource share changes nothing.
	if f.rate >= wasCap-1e-6 {
		n.markFlowDirtyLocked(f)
	}
	n.mu.Unlock()
}

// scheduleLoss samples the next random-loss instant from the flow's
// current rate and the loss probability accumulated along its path.
func (f *flow) scheduleLoss() {
	if f.lossTimer != nil {
		f.lossTimer.Stop()
		f.lossTimer = nil
	}
	if !f.active || f.removed {
		return
	}
	var p float64
	for _, s := range f.path {
		p += s.loss
	}
	if p <= 0 || f.rate <= 0 {
		return
	}
	pktPerSec := f.rate / 8 / float64(f.mss)
	lambda := pktPerSec * p
	if lambda <= 0 {
		return
	}
	f.lossRate = f.rate
	wait := f.net.clk.RandExp(1 / lambda)
	f.lossTimer = f.net.clk.AfterFunc(time.Duration(wait*float64(time.Second)), f.onLoss)
}

func (f *flow) onLoss() {
	n := f.net
	n.mu.Lock()
	if f.removed || !f.active {
		n.mu.Unlock()
		return
	}
	f.ssthresh = math.Max(f.window/2, float64(2*f.mss))
	f.window = f.ssthresh
	f.updateWindowCap()
	f.scheduleGrowth()
	n.markFlowDirtyLocked(f)
	f.scheduleLoss()
	n.mu.Unlock()
}

// setRate applies a newly computed fair rate (caller folded to now) and
// reschedules the head-of-queue completion event. Unchanged rates with an
// armed completion need no rescheduling (the timer stays accurate), which
// keeps global recomputations cheap.
func (f *flow) setRate(now time.Duration, rate float64) {
	unchanged := rate == f.rate
	f.rate = rate
	f.lastT = now
	if unchanged && f.doneTimer != nil {
		return
	}
	f.scheduleCompletion(now)
	// Loss is a Poisson process in packets, so its intensity tracks the
	// rate: re-sample the next loss whenever the rate moves materially.
	if f.lossTimer == nil || rate > 1.5*f.lossRate || rate < 0.67*f.lossRate {
		f.scheduleLoss()
	}
}

// scheduleCompletion arms (or re-arms) the event that fires when the head
// segment finishes transmitting. Zero-length (FIN) heads complete
// immediately.
func (f *flow) scheduleCompletion(now time.Duration) {
	if f.doneTimer != nil {
		f.doneTimer.Stop()
		f.doneTimer = nil
	}
	f.completeReady(now)
	if len(f.segs) == 0 || f.removed {
		return
	}
	if f.rate <= 0 {
		return // stalled (outage); re-armed on next recompute
	}
	need := f.segs[0].end - f.transmittedAt(now)
	if need < 0 {
		need = 0
	}
	// Round up by one tick so the timer never fires a fraction of a byte
	// early (which would re-arm a zero-delay event forever).
	secs := need * 8 / f.rate
	const maxDelay = 1000 * time.Hour
	d := maxDelay
	if secs < maxDelay.Seconds() {
		d = time.Duration(secs*float64(time.Second)) + time.Nanosecond
	}
	f.doneTimer = f.net.clk.AfterFunc(d, f.onSegmentDone)
}

func (f *flow) onSegmentDone() {
	n := f.net
	n.mu.Lock()
	if f.removed {
		n.mu.Unlock()
		return
	}
	now := n.clk.Now().Sub(vtime.Epoch)
	f.fold(now)
	f.doneTimer = nil
	f.scheduleCompletion(now)
	n.mu.Unlock()
}

// completeReady retires every head segment already fully transmitted:
// schedules its delivery owd later and wakes blocked writers. If the
// queue drains, a linger timer delays deactivation so back-to-back writes
// don't thrash the allocator.
func (f *flow) completeReady(now time.Duration) {
	done := f.transmittedAt(now)
	for len(f.segs) > 0 && f.segs[0].end <= done+1e-3 {
		seg := f.segs[0]
		f.segs = f.segs[1:]
		rx := f.conn.eps[1-f.dir]
		f.net.clk.AfterFunc(f.owd, func() { rx.deliver(seg) })
	}
	f.conn.writeCond[f.dir].Broadcast()
	if len(f.segs) == 0 && f.active && !f.lingering {
		f.lingering = true
		linger := f.rtt
		if linger <= 0 {
			linger = time.Millisecond
		}
		f.lingerTimer = f.net.clk.AfterFunc(linger, f.onLinger)
	}
}

func (f *flow) onLinger() {
	n := f.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if f.removed || !f.lingering || len(f.segs) > 0 {
		f.lingering = false
		return
	}
	f.lingering = false
	f.active = false
	if f.lossTimer != nil {
		f.lossTimer.Stop()
		f.lossTimer = nil
	}
	if f.growTimer != nil {
		f.growTimer.Stop()
		f.growing = false
	}
	n.flowDeactivatedLocked(f)
}

// remove permanently retires the flow, folding its transmitted bytes into
// the source host's cumulative counters. Caller holds Net.mu.
func (f *flow) remove(now time.Duration) {
	if f.removed {
		return
	}
	f.fold(now)
	f.removed = true
	if f.active {
		f.net.flowsActive.Add(-1)
	}
	f.active = false
	f.net.detachLocked(f)
	for _, t := range []vtime.Timer{f.doneTimer, f.lossTimer, f.growTimer, f.lingerTimer} {
		if t != nil {
			t.Stop()
		}
	}
	if f.src != nil && f.dst != nil {
		if f.src.retiredBytesTo == nil {
			f.src.retiredBytesTo = map[string]float64{}
		}
		f.src.retiredBytesTo[f.dst.name] += f.transmitted
	}
	f.net.unregisterFlowLocked(f)
}
