package simnet

import (
	"math"
	"time"

	"esgrid/internal/vtime"
)

// flow is one direction of a connection's traffic: a fluid-model TCP
// stream with AIMD window dynamics. All fields are guarded by Net.mu.
type flow struct {
	net  *Net
	conn *Conn
	dir  int // index of the sending endpoint
	src  *Host
	dst  *Host
	path []*simplex
	owd  time.Duration // one-way propagation delay along path
	rtt  time.Duration // round-trip (both directions' paths)

	mss       int
	diskBound bool

	// Congestion window state (bytes). windowCap caches the rate bound
	// window*8/rtt in bits/s (Inf for zero-RTT loopback or probes).
	window    float64
	ssthresh  float64
	maxWindow float64
	windowCap float64
	growing   bool
	growEv    vtime.EventID
	lossEv    vtime.EventID
	lossRate  float64 // flow rate when the loss timer was sampled

	// Transmission state. transmitted is the cumulative payload bytes
	// fully accounted as of virtual instant lastT; between events the
	// true value is transmitted + rate/8*(t-lastT), clamped to queuedEnd.
	// segs is a head-indexed FIFO (segsHead..len) so steady-state
	// enqueue/retire reuses the backing array instead of reslicing it away.
	active      bool
	lingering   bool
	rate        float64 // bits/s
	lastT       time.Duration
	transmitted float64
	queuedEnd   float64
	segs        []*segment
	segsHead    int
	doneEv      vtime.EventID
	lingerEv    vtime.EventID
	removed     bool

	// inflight holds segments whose transmission completed and whose
	// delivery event (one propagation delay later) is pending. Deliveries
	// are armed with a constant delay (owd) in retirement order, so the
	// event heap's (at, seq) order preserves this FIFO and one cached
	// deliverFn can pop the head instead of capturing each segment in a
	// fresh closure.
	inflight []*segment
	inflHead int

	// Cached event callbacks, bound once at construction so the per-event
	// hot path (growth, loss, completion, linger, delivery) schedules with
	// zero allocation.
	growFn    func()
	lossFn    func()
	doneFn    func()
	lingerFn  func()
	deliverFn func()

	resRefs []hostRes // cached resource membership (see refs)

	// seq is the flow's creation stamp (registerFlowLocked): the stable
	// sort key that canonicalizes allocation order within a flush.
	seq uint64

	// Incremental allocation state (alloc.go): whether the flow is
	// entered in its resources' membership lists, its position in each
	// (parallel to resRefs), the flush visit stamp, whether it is queued
	// as a dirty seed, and its slot in the Net's (src,dst) pair index.
	attached bool
	resPos   []int
	epoch    uint64
	dirty    bool
	pairPos  int
}

// segment is a unit of enqueued payload: real bytes, virtual length, or a
// FIN marker. end is the cumulative flow offset at which it completes.
type segment struct {
	end  float64
	data []byte // real payload (nil for virtual / fin)
	n    int64  // payload length in bytes
	fin  bool
}

type hostRes struct {
	r *res
	w float64 // resource units consumed per bit/s of flow rate
}

// refs returns the flow's full resource membership (links + host
// budgets), cached; invalidated when disk binding changes.
func (f *flow) refs() []hostRes {
	if f.resRefs == nil {
		refs := make([]hostRes, 0, len(f.path)+4)
		for _, sx := range f.path {
			refs = append(refs, hostRes{&sx.res, 1})
		}
		refs = append(refs, f.hostResources()...)
		f.resRefs = refs
	}
	return f.resRefs
}

// invalidateRefs drops the cached resource list (e.g. on SetDiskBound)
// and with it any CSR built from the old edges.
func (f *flow) invalidateRefs() {
	f.resRefs = nil
	f.net.csrGen++
	f.net.markStructuralLocked()
}

func newFlow(n *Net, c *Conn, dir int, src, dst *Host, path []*simplex, buffer int, mss int) *flow {
	f := &flow{
		net: n, conn: c, dir: dir, src: src, dst: dst, path: path, mss: mss,
	}
	for _, s := range path {
		f.owd += s.delay
	}
	f.rtt = 2 * f.owd // symmetric routes; refined by the conn if needed
	f.maxWindow = float64(buffer)
	f.window = float64(initialWindowMSS * mss)
	if f.window > f.maxWindow {
		f.window = f.maxWindow
	}
	// Slow-start threshold starts unbounded, as in real TCP: the first
	// loss sets it. The window is still capped by maxWindow (the socket
	// buffer), so buffer tuning remains the binding limit.
	f.ssthresh = math.Inf(1)
	f.updateWindowCap()
	f.growFn = f.onGrow
	f.lossFn = f.onLoss
	f.doneFn = f.onSegmentDone
	f.lingerFn = f.onLinger
	f.deliverFn = f.deliverHead
	return f
}

// queued reports the number of segments awaiting transmission.
func (f *flow) queued() int { return len(f.segs) - f.segsHead }

// headSeg returns the oldest queued segment.
func (f *flow) headSeg() *segment { return f.segs[f.segsHead] }

// popSegLocked removes and returns the head segment, resetting the FIFO
// to the front of its backing array when it drains.
func (f *flow) popSegLocked() *segment {
	seg := f.segs[f.segsHead]
	f.segs[f.segsHead] = nil
	f.segsHead++
	if f.segsHead == len(f.segs) {
		f.segs = f.segs[:0]
		f.segsHead = 0
	}
	return seg
}

// deliverHead pops the oldest in-flight segment and hands it to the
// receiving endpoint; it is the target of every delivery event.
func (f *flow) deliverHead() {
	n := f.net
	n.mu.Lock()
	seg := f.inflight[f.inflHead]
	f.inflight[f.inflHead] = nil
	f.inflHead++
	if f.inflHead == len(f.inflight) {
		f.inflight = f.inflight[:0]
		f.inflHead = 0
	}
	f.conn.eps[1-f.dir].deliverLocked(seg)
	n.mu.Unlock()
}

func (f *flow) updateWindowCap() {
	if f.rtt <= 0 {
		f.windowCap = math.Inf(1)
		return
	}
	f.windowCap = f.window * 8 / f.rtt.Seconds()
}

// hostResources lists the per-host budgets this flow consumes.
func (f *flow) hostResources() []hostRes {
	var out []hostRes
	if f.src != nil && f.src.cpu != nil {
		out = append(out, hostRes{f.src.cpu, f.src.cfg.CPU.weight(f.mss)})
	}
	if f.dst != nil && f.dst.cpu != nil && f.dst != f.src {
		out = append(out, hostRes{f.dst.cpu, f.dst.cfg.CPU.weight(f.mss)})
	}
	if f.diskBound {
		if f.src != nil && f.src.disk != nil {
			out = append(out, hostRes{f.src.disk, 1})
		}
		if f.dst != nil && f.dst.disk != nil && f.dst != f.src {
			out = append(out, hostRes{f.dst.disk, 1})
		}
	}
	return out
}

func (f *flow) crosses(l *Link) bool {
	for _, s := range f.path {
		if s.link == l {
			return true
		}
	}
	return false
}

// fold accounts transmission progress up to virtual instant now.
func (f *flow) fold(now time.Duration) {
	if now <= f.lastT {
		return
	}
	if f.active && f.rate > 0 {
		f.transmitted += f.rate / 8 * (now - f.lastT).Seconds()
		if f.transmitted > f.queuedEnd {
			f.transmitted = f.queuedEnd
		}
	}
	f.lastT = now
}

// transmittedAt reports cumulative transmitted bytes at instant now
// without mutating state.
func (f *flow) transmittedAt(now time.Duration) float64 {
	t := f.transmitted
	if f.active && f.rate > 0 && now > f.lastT {
		t += f.rate / 8 * (now - f.lastT).Seconds()
		if t > f.queuedEnd {
			t = f.queuedEnd
		}
	}
	return t
}

// enqueue adds a segment. Returns true if the flow transitioned from
// inactive to active (the caller must then recompute allocations).
func (f *flow) enqueue(now time.Duration, seg *segment) (activated bool) {
	f.fold(now)
	f.queuedEnd += float64(seg.n)
	seg.end = f.queuedEnd
	f.segs = append(f.segs, seg)
	if f.lingerEv != 0 {
		f.net.clk.Cancel(f.lingerEv)
		f.lingerEv = 0
	}
	f.lingering = false
	if !f.active {
		f.active = true
		f.startDynamics(now)
		return true
	}
	// Already active: just make sure a completion event is pending.
	f.scheduleCompletion(now)
	return false
}

// startDynamics begins window growth and loss sampling for a newly active
// flow. Caller recomputes rates afterwards.
func (f *flow) startDynamics(now time.Duration) {
	f.scheduleGrowth()
	f.scheduleLoss()
}

// scheduleGrowth arms the per-RTT window update if the window can still
// grow and the flow is active.
func (f *flow) scheduleGrowth() {
	if f.growing || !f.active || f.rtt <= 0 || f.window >= f.maxWindow {
		return
	}
	f.growing = true
	f.growEv = f.net.clk.ScheduleSite(siteGrowth, f.rtt, f.growFn)
}

func (f *flow) onGrow() {
	n := f.net
	n.mu.Lock()
	f.growing = false
	f.growEv = 0
	if f.removed || !f.active {
		n.mu.Unlock()
		return
	}
	wasCap := f.windowCap
	if f.window < f.ssthresh {
		f.window *= 2 // slow start
	} else {
		f.window += float64(f.mss) // congestion avoidance
	}
	if f.window > f.maxWindow {
		f.window = f.maxWindow
	}
	f.updateWindowCap()
	// Re-arm the next tick by reclaiming this event's own slot — a plain
	// field write instead of a schedule cycle — since this callback IS the
	// growth event.
	if f.rtt > 0 && f.window < f.maxWindow {
		f.growing = true
		f.growEv = n.clk.RearmFiring(f.rtt)
	}
	// Only re-allocate if this flow was actually window-limited: growing
	// a window below the resource share changes nothing.
	if f.rate >= wasCap-1e-6 {
		n.markFlowDirtyLocked(f)
	}
	n.mu.Unlock()
}

// scheduleLoss samples the next random-loss instant from the flow's
// current rate and the loss probability accumulated along its path.
func (f *flow) scheduleLoss() {
	var lambda float64
	if f.active && !f.removed && f.rate > 0 {
		var p float64
		for _, s := range f.path {
			p += s.loss
		}
		pktPerSec := f.rate / 8 / float64(f.mss)
		lambda = pktPerSec * p
	}
	if lambda <= 0 {
		if f.lossEv != 0 {
			f.net.clk.Cancel(f.lossEv)
			f.lossEv = 0
		}
		return
	}
	f.lossRate = f.rate
	wait := f.net.clk.RandExp(1 / lambda)
	f.lossEv = f.net.clk.RescheduleSite(siteLoss, f.lossEv, time.Duration(wait*float64(time.Second)), f.lossFn)
}

func (f *flow) onLoss() {
	n := f.net
	n.mu.Lock()
	f.lossEv = 0
	if f.removed || !f.active {
		n.mu.Unlock()
		return
	}
	f.ssthresh = math.Max(f.window/2, float64(2*f.mss))
	f.window = f.ssthresh
	f.updateWindowCap()
	f.scheduleGrowth()
	n.markFlowDirtyLocked(f)
	f.scheduleLoss()
	n.mu.Unlock()
}

// setRate applies a newly computed fair rate (caller folded to now) and
// reschedules the head-of-queue completion event. Unchanged rates with an
// armed completion need no rescheduling (the timer stays accurate), which
// keeps global recomputations cheap.
func (f *flow) setRate(now time.Duration, rate float64) {
	unchanged := rate == f.rate
	f.rate = rate
	f.lastT = now
	if unchanged && f.doneEv != 0 {
		return
	}
	f.scheduleCompletion(now)
	// Loss is a Poisson process in packets, so its intensity tracks the
	// rate: re-sample the next loss whenever the rate moves materially.
	if f.lossEv == 0 || rate > 1.5*f.lossRate || rate < 0.67*f.lossRate {
		f.scheduleLoss()
	}
}

// scheduleCompletion arms (or re-arms) the event that fires when the head
// segment finishes transmitting. Zero-length (FIN) heads complete
// immediately.
func (f *flow) scheduleCompletion(now time.Duration) {
	f.completeReady(now)
	if f.queued() == 0 || f.removed || f.rate <= 0 {
		// Empty, gone, or stalled (outage; re-armed on next recompute).
		if f.doneEv != 0 {
			f.net.clk.Cancel(f.doneEv)
			f.doneEv = 0
		}
		return
	}
	need := f.headSeg().end - f.transmittedAt(now)
	if need < 0 {
		need = 0
	}
	// Round up by one tick so the timer never fires a fraction of a byte
	// early (which would re-arm a zero-delay event forever).
	secs := need * 8 / f.rate
	const maxDelay = 1000 * time.Hour
	d := maxDelay
	if secs < maxDelay.Seconds() {
		d = time.Duration(secs*float64(time.Second)) + time.Nanosecond
	}
	// Reschedule re-keys the pending event in place — on the per-RTT
	// growth path this timer moves on every rate change, and a fused
	// re-arm halves the heap traffic of a cancel-then-schedule pair.
	f.doneEv = f.net.clk.RescheduleSite(siteCompletion, f.doneEv, d, f.doneFn)
}

func (f *flow) onSegmentDone() {
	n := f.net
	n.mu.Lock()
	f.doneEv = 0
	if f.removed {
		n.mu.Unlock()
		return
	}
	now := n.clk.Elapsed()
	f.fold(now)
	f.scheduleCompletion(now)
	n.mu.Unlock()
}

// completeReady retires every head segment already fully transmitted:
// schedules its delivery owd later and wakes blocked writers. If the
// queue drains, a linger timer delays deactivation so back-to-back writes
// don't thrash the allocator.
func (f *flow) completeReady(now time.Duration) {
	done := f.transmittedAt(now)
	retired := false
	for f.queued() > 0 && f.headSeg().end <= done+1e-3 {
		seg := f.popSegLocked()
		f.inflight = append(f.inflight, seg)
		f.net.clk.ScheduleSite(siteDeliver, f.owd, f.deliverFn)
		retired = true
	}
	// Writers block only on transmission progress, so one broadcast per
	// retirement batch (not per bookkeeping pass) is enough to wake them.
	if retired {
		f.conn.writeCond[f.dir].Broadcast()
	}
	if f.queued() == 0 && f.active && !f.lingering {
		f.lingering = true
		linger := f.rtt
		if linger <= 0 {
			linger = time.Millisecond
		}
		f.lingerEv = f.net.clk.ScheduleSite(siteLinger, linger, f.lingerFn)
	}
}

func (f *flow) onLinger() {
	n := f.net
	n.mu.Lock()
	defer n.mu.Unlock()
	f.lingerEv = 0
	if f.removed || !f.lingering || f.queued() > 0 {
		f.lingering = false
		return
	}
	f.lingering = false
	f.active = false
	if f.lossEv != 0 {
		f.net.clk.Cancel(f.lossEv)
		f.lossEv = 0
	}
	if f.growEv != 0 {
		f.net.clk.Cancel(f.growEv)
		f.growEv = 0
		f.growing = false
	}
	n.flowDeactivatedLocked(f)
}

// remove permanently retires the flow, folding its transmitted bytes into
// the source host's cumulative counters. Caller holds Net.mu.
func (f *flow) remove(now time.Duration) {
	if f.removed {
		return
	}
	f.fold(now)
	f.removed = true
	if f.active {
		f.net.flowsActive.Add(-1)
	}
	f.active = false
	f.net.detachLocked(f)
	// Untransmitted segments can never reach the receiver: recycle them.
	// In-flight segments stay owned by their pending delivery events.
	for f.queued() > 0 {
		f.net.putSegLocked(f.popSegLocked())
	}
	for _, ev := range [...]vtime.EventID{f.doneEv, f.lossEv, f.growEv, f.lingerEv} {
		if ev != 0 {
			f.net.clk.Cancel(ev)
		}
	}
	f.doneEv, f.lossEv, f.growEv, f.lingerEv = 0, 0, 0, 0
	if f.src != nil && f.dst != nil {
		if f.src.retiredBytesTo == nil {
			f.src.retiredBytesTo = map[string]float64{}
		}
		f.src.retiredBytesTo[f.dst.name] += f.transmitted
	}
	f.net.unregisterFlowLocked(f)
}
