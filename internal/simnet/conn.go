package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"time"

	"esgrid/internal/flight"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// hostPort formats "host:port" without fmt's interface boxing.
func hostPort(host string, port int) string {
	return host + ":" + strconv.Itoa(port)
}

// Host is a traffic-originating node. It implements transport.Network, so
// protocol servers and clients bind to a Host exactly as they would to
// the real TCP stack.
type Host struct {
	net  *Net
	name string
	node *node
	cfg  HostConfig

	cpu  *res
	disk *res

	conns          map[*Conn]bool
	retiredBytesTo map[string]float64
	down           bool // crashed: dials to/from this host fail
}

// Name returns the host's node name.
func (h *Host) Name() string { return h.name }

func (h *Host) defaultBuffer() int {
	if h.cfg.DefaultBufferBytes > 0 {
		return h.cfg.DefaultBufferBytes
	}
	return DefaultBufferBytes
}

// CPUUtilization returns the fraction (0..1) of this host's CPU budget
// currently consumed by network processing.
func (h *Host) CPUUtilization() float64 {
	if h.cpu == nil {
		return 0
	}
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	//esglint:vtblock flushLocked runs under Net.mu by design; Fan's flush workers touch only component-local flow state and never take Net.mu, and the barrier completes without advancing virtual time
	n.flushLocked()
	var used float64
	for _, e := range h.cpu.flows {
		used += e.f.rate * e.f.refs()[e.ref].w
	}
	return used
}

// Conn is a simulated connection between two endpoints.
type Conn struct {
	net       *Net
	seq       int64 // creation order; fault injection resets victims by seq
	eps       [2]*Endpoint
	flows     [2]*flow // flows[i] carries eps[i] -> eps[1-i]
	writeCond [2]vtime.Cond
	removed   bool
	wasReset  bool   // torn down by reset/fault, not orderly close
	label     string // life-line context set via Endpoint.SetLabel
}

// Endpoint is one side of a Conn; it implements net.Conn plus the
// simulator extensions (virtual payloads, buffer tuning, disk binding).
type Endpoint struct {
	conn *Conn
	idx  int
	host *Host
	addr transport.Addr
	peer transport.Addr

	buf      int
	rx       []*segment // head-indexed FIFO: live entries are rx[rxHead:]
	rxHead   int
	rxOff    int // bytes consumed from the head segment's data
	rxCond   vtime.Cond
	closed   bool
	resetErr error

	readDeadline  time.Time
	writeDeadline time.Time
}

var (
	// ErrVirtualPending is returned by Read when the next queued payload
	// was sent via the virtual fast path and must be consumed with
	// ReadVirtual (and vice versa). It indicates a protocol-framing bug.
	ErrVirtualPending = errors.New("simnet: next payload is virtual; use ReadVirtual")
	errRealPending    = errors.New("simnet: next payload is real data; use Read")
)

// timeoutError satisfies net.Error with Timeout() == true.
type timeoutError struct{}

func (timeoutError) Error() string   { return "simnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (n *Net) nowOff() time.Duration { return n.clk.Elapsed() }

// Listen implements transport.Network.
func (h *Host) Listen(addr string) (transport.Listener, error) {
	_, port := transport.SplitHostPort(addr)
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		port = n.nextPort
		n.nextPort++
	}
	key := hostPort(h.name, port)
	if _, dup := n.listeners[key]; dup {
		return nil, fmt.Errorf("simnet: address %s already in use", key)
	}
	l := &Listener{
		net: n, host: h,
		addr: transport.Addr{Net: "sim", Text: key},
	}
	l.cond = n.clk.NewCond(&n.mu)
	n.listeners[key] = l
	return l, nil
}

// Listener is a simulated listening socket.
type Listener struct {
	net     *Net
	host    *Host
	addr    transport.Addr
	backlog []*Endpoint
	cond    vtime.Cond
	closed  bool
}

// Accept waits for and returns the next inbound connection.
func (l *Listener) Accept() (transport.Conn, error) {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, net.ErrClosed
	}
	ep := l.backlog[0]
	l.backlog = l.backlog[1:]
	return ep, nil
}

// Close stops the listener; blocked Accepts return net.ErrClosed.
func (l *Listener) Close() error {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	delete(n.listeners, l.addr.Text)
	l.cond.Broadcast()
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial implements transport.Dialer: it resolves addr, performs a
// one-RTT handshake in virtual time, and returns the client endpoint.
func (h *Host) Dial(addr string) (transport.Conn, error) {
	host, port := transport.SplitHostPort(addr)
	n := h.net

	n.mu.Lock()
	if !n.dnsUp {
		n.mu.Unlock()
		return nil, &DNSError{Name: host}
	}
	if h.down {
		n.mu.Unlock()
		return nil, fmt.Errorf("simnet: host %s is down", h.name)
	}
	key := hostPort(host, port)
	l, ok := n.listeners[key]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("simnet: connection refused: %s", key)
	}
	if l.host.down {
		n.mu.Unlock()
		return nil, fmt.Errorf("simnet: host %s is down", l.host.name)
	}
	fwd, err := n.routeLocked(h.name, host)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	rev, err := n.routeLocked(host, h.name)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	peerHost := l.host
	cliPort := n.nextPort
	n.nextPort++

	c := &Conn{net: n, seq: n.nextConnSeq}
	n.nextConnSeq++
	if n.rec != nil {
		n.rec.Conn(flight.KConnOpen, int64(n.nowOff()), c.seq)
	}
	cli := &Endpoint{
		conn: c, idx: 0, host: h,
		addr: transport.Addr{Net: "sim", Text: hostPort(h.name, cliPort)},
		peer: transport.Addr{Net: "sim", Text: key},
		buf:  h.defaultBuffer(),
	}
	srv := &Endpoint{
		conn: c, idx: 1, host: peerHost,
		addr: transport.Addr{Net: "sim", Text: key},
		peer: cli.addr,
		buf:  peerHost.defaultBuffer(),
	}
	cli.rxCond = n.clk.NewCond(&n.mu)
	srv.rxCond = n.clk.NewCond(&n.mu)
	c.eps = [2]*Endpoint{cli, srv}
	c.writeCond = [2]vtime.Cond{n.clk.NewCond(&n.mu), n.clk.NewCond(&n.mu)}
	mss := h.mss()
	c.flows[0] = newFlow(n, c, 0, h, peerHost, fwd, min(cli.buf, srv.buf), mss)
	c.flows[1] = newFlow(n, c, 1, peerHost, h, rev, min(cli.buf, srv.buf), peerHost.mss())
	c.flows[0].rtt = c.flows[0].owd + c.flows[1].owd
	c.flows[1].rtt = c.flows[0].rtt
	c.flows[0].updateWindowCap()
	c.flows[1].updateWindowCap()
	n.registerFlowLocked(c.flows[0])
	n.registerFlowLocked(c.flows[1])
	if h.conns == nil {
		h.conns = map[*Conn]bool{}
	}
	h.conns[c] = true
	if peerHost.conns == nil {
		peerHost.conns = map[*Conn]bool{}
	}
	peerHost.conns[c] = true
	rtt := c.flows[0].rtt
	n.mu.Unlock()

	// TCP three-way handshake: the connection is usable one RTT after SYN.
	n.clk.SleepSite(siteHandshake, rtt)

	n.mu.Lock()
	defer n.mu.Unlock()
	if cli.resetErr != nil {
		return nil, cli.resetErr
	}
	if l.closed {
		c.removeLocked()
		return nil, fmt.Errorf("simnet: connection refused: %s", key)
	}
	l.backlog = append(l.backlog, srv)
	l.cond.Signal()
	return cli, nil
}

func (h *Host) mss() int {
	if h.cfg.MSS > 0 {
		return h.cfg.MSS
	}
	return DefaultMSS
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (c *Conn) crossesLink(l *Link) bool {
	return c.flows[0].crosses(l) || c.flows[1].crosses(l)
}

// removeLocked retires both flows and forgets the conn. Caller holds mu.
func (c *Conn) removeLocked() {
	if c.removed {
		return
	}
	c.removed = true
	now := c.net.nowOff()
	c.flows[0].remove(now)
	c.flows[1].remove(now)
	delete(c.eps[0].host.conns, c)
	delete(c.eps[1].host.conns, c)
	if c.net.rec != nil {
		kind := flight.KConnRetired
		if c.wasReset {
			kind = flight.KConnReset
		}
		c.net.rec.Conn(kind, int64(now), c.seq)
	}
	if c.net.nlog != nil {
		c.net.nlog.Emit(c.eps[0].host.name, "simnet.conn.retired",
			"src", c.eps[0].addr.Text,
			"dst", c.eps[1].addr.Text,
			"label", c.label,
			"bytes", strconv.FormatFloat(c.flows[0].transmitted+c.flows[1].transmitted, 'f', 0, 64))
	}
}

// reset kills the connection abruptly: all pending and future operations
// on both endpoints fail with err.
func (c *Conn) reset(err error) {
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	c.wasReset = true
	for _, ep := range c.eps {
		if ep.resetErr == nil {
			ep.resetErr = err
		}
		ep.rxCond.Broadcast()
	}
	c.writeCond[0].Broadcast()
	c.writeCond[1].Broadcast()
	c.removeLocked() // detaching the flows marks their resources dirty
}

// --- Endpoint: net.Conn implementation ---

// Write sends real bytes (protocol headers, control messages). The
// payload is copied into a pooled segment buffer, recycled when the
// receiver consumes it.
func (ep *Endpoint) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c := ep.conn
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	seg := n.getSegLocked()
	seg.data = append(seg.data[:0], p...)
	seg.n = int64(len(p))
	//esglint:vtblock sendLocked waits on writeCond, whose locker is Net.mu: Wait releases the lock before parking (sanctioned cond pattern, one call removed)
	if err := ep.sendLocked(seg); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteVirtual implements transport.VirtualWriter.
func (ep *Endpoint) WriteVirtual(nbytes int64) error {
	if nbytes <= 0 {
		return nil
	}
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	seg := n.getSegLocked()
	seg.n = nbytes
	//esglint:vtblock sendLocked waits on writeCond, whose locker is Net.mu: Wait releases the lock before parking (sanctioned cond pattern, one call removed)
	return ep.sendLocked(seg)
}

// sendLocked enqueues seg on this endpoint's flow and blocks until it has
// been transmitted. Caller holds Net.mu; the segment is owned by the flow
// from the moment it is enqueued (it may be recycled while the writer is
// still blocked), so the wait tracks the captured end offset, never the
// segment itself.
func (ep *Endpoint) sendLocked(seg *segment) error {
	c := ep.conn
	n := c.net
	if ep.resetErr != nil {
		n.putSegLocked(seg)
		return ep.resetErr
	}
	if ep.closed {
		n.putSegLocked(seg)
		return net.ErrClosed
	}
	f := c.flows[ep.idx]
	if f.removed {
		n.putSegLocked(seg)
		return net.ErrClosed
	}
	if f.enqueue(n.nowOff(), seg) {
		n.flowActivatedLocked(f)
	}
	end := seg.end
	// Block until the segment has been transmitted. The tolerance matches
	// completeReady's retirement test exactly, so the broadcast that
	// retires the segment always satisfies this predicate.
	for {
		if ep.resetErr != nil {
			return ep.resetErr
		}
		if f.removed {
			return net.ErrClosed
		}
		if f.transmittedAt(n.nowOff()) >= end-1e-3 {
			return nil
		}
		if !ep.writeDeadline.IsZero() {
			remain := ep.writeDeadline.Sub(n.clk.Now())
			if remain <= 0 {
				return timeoutError{}
			}
			if !c.writeCond[ep.idx].WaitTimeout(remain) {
				return timeoutError{}
			}
		} else {
			c.writeCond[ep.idx].Wait()
		}
	}
}

// deliverLocked appends an arrived segment to the receive queue (invoked
// by the sender's flow one propagation delay after transmit completes).
// Caller holds Net.mu. Segments arriving after close or reset are
// recycled, not queued.
func (ep *Endpoint) deliverLocked(seg *segment) {
	n := ep.conn.net
	if ep.closed || ep.resetErr != nil {
		n.putSegLocked(seg)
		return
	}
	ep.rx = append(ep.rx, seg)
	ep.rxCond.Broadcast()
}

// popRxLocked retires the fully consumed head segment into the pool and
// resets the FIFO to the front of its backing array when it drains.
func (ep *Endpoint) popRxLocked() {
	n := ep.conn.net
	seg := ep.rx[ep.rxHead]
	ep.rx[ep.rxHead] = nil
	ep.rxHead++
	if ep.rxHead == len(ep.rx) {
		ep.rx = ep.rx[:0]
		ep.rxHead = 0
	}
	ep.rxOff = 0
	n.putSegLocked(seg)
}

// Read receives real bytes.
func (ep *Endpoint) Read(p []byte) (int, error) {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if ep.resetErr != nil {
			return 0, ep.resetErr
		}
		if ep.closed {
			return 0, net.ErrClosed
		}
		if ep.rxHead < len(ep.rx) {
			head := ep.rx[ep.rxHead]
			if head.fin {
				return 0, io.EOF
			}
			// Pooled segments keep a zero-length buffer attached, so the
			// real/virtual discriminator is payload length, not nil-ness.
			if len(head.data) == 0 {
				return 0, ErrVirtualPending
			}
			m := copy(p, head.data[ep.rxOff:])
			ep.rxOff += m
			if ep.rxOff >= len(head.data) {
				ep.popRxLocked()
			}
			return m, nil
		}
		//esglint:vtblock waitReadable waits on rxCond, whose locker is Net.mu: Wait releases the lock before parking (sanctioned cond pattern, one call removed)
		if err := ep.waitReadable(); err != nil {
			return 0, err
		}
	}
}

// ReadVirtual implements transport.VirtualReader.
func (ep *Endpoint) ReadVirtual(max int64) (int64, error) {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if ep.resetErr != nil {
			return 0, ep.resetErr
		}
		if ep.closed {
			return 0, net.ErrClosed
		}
		if ep.rxHead < len(ep.rx) {
			head := ep.rx[ep.rxHead]
			if head.fin {
				return 0, io.EOF
			}
			if len(head.data) != 0 {
				return 0, errRealPending
			}
			got := head.n
			if got > max {
				got = max
				head.n -= max
			} else {
				ep.popRxLocked()
			}
			return got, nil
		}
		//esglint:vtblock waitReadable waits on rxCond, whose locker is Net.mu: Wait releases the lock before parking (sanctioned cond pattern, one call removed)
		if err := ep.waitReadable(); err != nil {
			return 0, err
		}
	}
}

// waitReadable blocks (honouring the read deadline) until rx changes.
// Caller holds Net.mu via the cond's locker.
func (ep *Endpoint) waitReadable() error {
	n := ep.conn.net
	if !ep.readDeadline.IsZero() {
		remain := ep.readDeadline.Sub(n.clk.Now())
		if remain <= 0 {
			return timeoutError{}
		}
		if !ep.rxCond.WaitTimeout(remain) {
			return timeoutError{}
		}
		return nil
	}
	ep.rxCond.Wait()
	return nil
}

// Close shuts the connection down from this side: local operations fail
// with net.ErrClosed; the peer drains pending data then reads EOF.
func (ep *Endpoint) Close() error {
	c := ep.conn
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep.closed {
		return nil
	}
	ep.closed = true
	ep.rxCond.Broadcast()
	c.writeCond[ep.idx].Broadcast()
	f := c.flows[ep.idx]
	if !f.removed {
		seg := n.getSegLocked()
		seg.fin = true
		if f.enqueue(n.nowOff(), seg) {
			n.flowActivatedLocked(f)
		}
	}
	if c.eps[0].closed && c.eps[1].closed {
		c.removeLocked() // detaching the flows marks their resources dirty
	}
	return nil
}

// LocalAddr implements net.Conn.
func (ep *Endpoint) LocalAddr() net.Addr { return ep.addr }

// RemoteAddr implements net.Conn.
func (ep *Endpoint) RemoteAddr() net.Addr { return ep.peer }

// SetDeadline implements net.Conn.
func (ep *Endpoint) SetDeadline(t time.Time) error {
	ep.SetReadDeadline(t)
	return ep.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (ep *Endpoint) SetReadDeadline(t time.Time) error {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	ep.readDeadline = t
	ep.rxCond.Broadcast() // re-evaluate waits against the new deadline
	return nil
}

// SetWriteDeadline implements net.Conn.
func (ep *Endpoint) SetWriteDeadline(t time.Time) error {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	ep.writeDeadline = t
	ep.conn.writeCond[ep.idx].Broadcast()
	return nil
}

// SetBuffer tunes this endpoint's socket buffer (bytes); the effective
// window of each direction is the minimum of the two endpoints' buffers,
// exactly the bandwidth×delay tuning of §7.
func (ep *Endpoint) SetBuffer(bytes int) {
	c := ep.conn
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	ep.buf = bytes
	for _, f := range c.flows {
		eff := float64(min(c.eps[0].buf, c.eps[1].buf))
		f.maxWindow = eff
		if f.window > eff {
			f.window = eff
		}
		f.updateWindowCap()
		f.scheduleGrowth()
		if f.active {
			n.markFlowDirtyLocked(f)
		}
	}
}

// SetLabel tags the connection with an opaque diagnostic label (a
// life-line trace context), reported in the simnet.conn.retired event.
// It implements transport.Labeler; either endpoint may set it.
func (ep *Endpoint) SetLabel(label string) {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	ep.conn.label = label
}

// SetDiskBound marks this connection's payload as staged through this
// endpoint's host disk, so the host's DiskBps cap applies (Figure 8).
func (ep *Endpoint) SetDiskBound(bound bool) {
	c := ep.conn
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, f := range c.flows {
		// Resource membership is about to change: withdraw from the old
		// resource lists (marking them dirty) before the refs cache is
		// rebuilt, then rejoin under the new binding.
		wasAttached := f.attached
		n.detachLocked(f)
		f.diskBound = bound
		f.invalidateRefs()
		if wasAttached {
			n.attachLocked(f)
			n.markFlowDirtyLocked(f)
		}
	}
}

// --- fault injection (the public injector API consumed by chaos) ---

// connsBySeq returns this host's live connections in creation order, so
// fault paths reset victims deterministically across equal-seed runs.
// Caller holds Net.mu.
func (h *Host) connsBySeqLocked() []*Conn {
	victims := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		victims = append(victims, c)
	}
	sortConnsBySeq(victims)
	return victims
}

func sortConnsBySeq(cs []*Conn) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].seq < cs[j].seq })
}

// ResetConns abruptly resets every live connection at this host (a
// control-channel reset fault): all pending and future operations on both
// endpoints fail. The host stays up; listeners keep accepting. It returns
// the number of connections reset.
func (h *Host) ResetConns(reason string) int {
	n := h.net
	n.mu.Lock()
	victims := h.connsBySeqLocked()
	n.mu.Unlock()
	err := fmt.Errorf("simnet: connection reset by peer: %s", reason)
	for _, c := range victims {
		c.reset(err)
	}
	return len(victims)
}

// SetDown crashes (true) or reboots (false) the host. Crashing resets
// every live connection and makes new dials to or from the host fail
// until reboot; listeners and disk state survive, modelling a daemon that
// restarts with the machine (Figure 8's power failure). Reboot restores
// reachability; clients re-dial and restart from their markers.
func (h *Host) SetDown(down bool) {
	n := h.net
	n.mu.Lock()
	h.down = down
	// A crash (or reboot) restructures components this instant: the
	// resets below detach flows, but latch conservatively up front so
	// even a connectionless host-down flushes sequentially.
	n.markStructuralLocked()
	var victims []*Conn
	if down {
		victims = h.connsBySeqLocked()
	}
	n.mu.Unlock()
	err := fmt.Errorf("simnet: connection reset: host %s crashed", h.name)
	for _, c := range victims {
		c.reset(err)
	}
}

// IsDown reports whether the host is crashed.
func (h *Host) IsDown() bool {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	return h.down
}

// BytesWritten returns cumulative payload bytes transmitted from this
// endpoint (continuous in virtual time).
func (ep *Endpoint) BytesWritten() float64 {
	n := ep.conn.net
	n.mu.Lock()
	defer n.mu.Unlock()
	return ep.conn.flows[ep.idx].transmittedAt(n.nowOff())
}

// RTT returns the connection's round-trip propagation delay.
func (ep *Endpoint) RTT() time.Duration {
	return ep.conn.flows[ep.idx].rtt
}
