package simnet

import (
	"math"
	"time"
)

// FlushObserver, when non-nil, is called at the end of every allocation
// flush with a fingerprint of the canonical post-flush flow state: an
// FNV-1a fold over every active flow's (seq, rate, transmitted,
// windowCap, lastT) in creation order. Two runs whose observer streams
// match are bitwise-equivalent at every allocation boundary — a far
// sharper differential signal than comparing end-of-run metrics, since
// the first mismatching flush localizes a divergence to the instant it
// was introduced.
//
// Test instrumentation only: the hook is package-global, is read without
// synchronization on the flush path, and the fingerprint walk is O(active
// flows) per flush. Install it before the simulation starts, from a
// single test at a time, and reset it to nil afterwards.
var FlushObserver func(now time.Duration, sig uint64, nflows int)

// observeFlushLocked fingerprints the active flow set for FlushObserver.
// Caller holds Net.mu.
func (n *Net) observeFlushLocked(now time.Duration) {
	if FlushObserver == nil {
		return
	}
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	fs := n.activeFlowsLocked()
	for _, f := range fs {
		mix(f.seq)
		mix(math.Float64bits(f.rate))
		mix(math.Float64bits(f.transmitted))
		mix(math.Float64bits(f.windowCap))
		mix(uint64(f.lastT))
	}
	FlushObserver(now, h, len(fs))
}
