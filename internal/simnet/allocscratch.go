package simnet

import "math"

// allocScratch is the progressive-filling allocator's complete working
// state: every scratch array the water-filling pass touches, plus the
// CSR cache of the last flattened pass. Extracting it from Net (where
// the arrays used to live as scr*/csr* fields) is what makes instant
// parallelism possible: each worker lane owns one allocScratch, so
// disjoint components can run allocation passes concurrently with no
// shared mutable state — the pass reads only frozen per-instant inputs
// (flow caps, resource capacities, membership edges) through the flow
// pointers it is handed.
//
// The resource-indexed arrays (residual, wsum, ...) are sized to the
// Net's global dense resource-id space and grown lazily; wsum carries
// the only cross-pass invariant (entries must be >= 0 between passes —
// it doubles as the "seen this pass" mark), which holds per scratch
// because every pass re-zeroes the entries it touched before returning.
type allocScratch struct {
	residual []float64
	wsum     []float64
	touched  []int
	rates    []float64
	frozen   []bool
	caps     []float64
	// CSR flattening of the pass's flow->resource lists, the inverse
	// resource->flow lists, and the per-resource water-filling state
	// (exhaust level, last-update level, unfrozen-flow count).
	refStart []int32
	refID    []int32
	refW     []float64
	unfrozen []int32
	resCnt   []int32
	exhaust  []float64
	lastLv   []float64
	invStart []int32
	invCur   []int32
	invFlow  []int32
	live     []int
	capHeap  []int32

	// CSR cache: a component that re-allocates on every window-growth
	// tick (the steady state of a long transfer) has an unchanged flow
	// list and unchanged flow->resource edges from one flush to the
	// next, so the flatten pass can be skipped and only the per-flow
	// caps and per-resource residuals refreshed. The Net-owned csrGen
	// invalidates the cache on any membership or edge change (attach,
	// detach, disk rebinding); with static component-to-lane fan
	// assignment a steady component hits the same scratch — and a warm
	// cache — every flush.
	csrFlows      []*flow
	csrTouchedRes []*res
	csrGenAt      uint64
	csrValid      bool
	csrHits       uint64 // multi-flow passes served from the CSR cache
	csrLookups    uint64 // multi-flow passes that consulted the cache
}

// alloc computes the weighted max-min fair rate (bits/s) for each flow
// by progressive filling, honouring per-flow window caps, link
// capacities, and host CPU/disk budgets. It does not mutate the flows;
// rates[i] corresponds to fs[i]. The returned slice is scratch owned by
// sc and is only valid until the next alloc call on it. nResID is the
// Net's dense resource-id bound and csrGen its membership generation;
// both are frozen for the duration of a flush.
//
// The filling is phrased in water levels rather than per-round deltas:
// every unfrozen flow's rate equals the global level T, each resource
// carries the level at which it would exhaust under current demand, and
// flow caps are a min-heap of freeze levels. A round picks the lowest
// freeze level, advances T to it, and freezes exactly the flows bound
// there; only a freeze touches a resource's state (one divide per
// flow-resource edge for the whole pass, instead of one per resource per
// round), so a pass is O(rounds * live-resources) compares plus O(edges)
// updates. Since every live resource has at least one unfrozen flow,
// every round freezes at least one flow and the loop terminates in at
// most len(fs) rounds — no floating-point residue can stall it.
func (sc *allocScratch) alloc(fs []*flow, nResID int, csrGen uint64) []float64 {
	if cap(sc.rates) < len(fs) {
		sc.rates = make([]float64, len(fs))
		sc.frozen = make([]bool, len(fs))
		sc.caps = make([]float64, len(fs))
	}
	rates := sc.rates[:len(fs)]
	frozen := sc.frozen[:len(fs)]
	caps := sc.caps[:len(fs)]
	for i := range rates {
		rates[i] = 0
		frozen[i] = false
	}
	if len(fs) == 0 {
		return rates
	}
	if len(sc.residual) < nResID {
		sc.residual = make([]float64, nResID)
		sc.wsum = make([]float64, nResID)
		sc.resCnt = make([]int32, nResID)
		sc.exhaust = make([]float64, nResID)
		sc.lastLv = make([]float64, nResID)
		sc.invStart = make([]int32, nResID)
		sc.invCur = make([]int32, nResID)
	}
	residual := sc.residual
	wsum := sc.wsum
	rescnt := sc.resCnt
	exhaust := sc.exhaust
	lastLv := sc.lastLv
	invStart := sc.invStart
	invCur := sc.invCur
	touched := sc.touched[:0]

	// A steady-state component re-allocates on every window-growth tick
	// with the same flows in the same order and the same flow->resource
	// edges; only window caps and resource capacities move. If the cached
	// CSR still matches, skip the flatten and refresh just those.
	hit := sc.csrValid && sc.csrGenAt == csrGen && len(sc.csrFlows) == len(fs)
	if hit {
		for i, f := range fs {
			if sc.csrFlows[i] != f {
				hit = false
				break
			}
		}
	}
	sc.csrLookups++
	if hit {
		sc.csrHits++
	}
	refStart := sc.refStart
	refID := sc.refID
	refW := sc.refW
	unfrozen := sc.unfrozen[:0]
	if hit {
		touched = sc.touched[:len(sc.csrTouchedRes)]
		for j, r := range sc.csrTouchedRes {
			residual[touched[j]] = r.effective()
		}
		for i, f := range fs {
			caps[i] = f.windowCap
			unfrozen = append(unfrozen, int32(i))
		}
	} else {
		// Flatten the pass's flow->resource lists into CSR scratch
		// (refStart / refID / refW) and collect the unfrozen worklist, so
		// every round below is pure dense-array arithmetic with no pointer
		// chasing.
		refStart = refStart[:0]
		refID = refID[:0]
		refW = refW[:0]
		touchedRes := sc.csrTouchedRes[:0]
		for i, f := range fs {
			refStart = append(refStart, int32(len(refID)))
			caps[i] = f.windowCap
			refs := f.refs()
			if len(refs) == 0 && math.IsInf(f.windowCap, 1) {
				// Loopback with no constraining resource: effectively instant.
				rates[i] = loopbackBps
				frozen[i] = true
				continue
			}
			unfrozen = append(unfrozen, int32(i))
			for _, rr := range refs {
				id := rr.r.id
				if wsum[id] >= 0 { // wsum doubles as the "seen this pass" mark
					wsum[id] = -1
					residual[id] = rr.r.effective()
					touched = append(touched, id)
					touchedRes = append(touchedRes, rr.r)
				}
				refID = append(refID, int32(id))
				refW = append(refW, rr.w)
			}
		}
		refStart = append(refStart, int32(len(refID)))
		sc.touched = touched
		sc.refStart = refStart
		sc.refID = refID
		sc.refW = refW
		sc.csrTouchedRes = touchedRes
		// Cache only all-unfrozen passes: a hit can then rebuild the
		// worklist as the identity without tracking loopback freezes.
		sc.csrValid = len(unfrozen) == len(fs)
		if sc.csrValid {
			sc.csrFlows = append(sc.csrFlows[:0], fs...)
			sc.csrGenAt = csrGen
		}
	}

	// Weighted demand on each touched resource, computed once; a freezing
	// flow withdraws its weights instead of any round recomputing them.
	for _, id := range touched {
		wsum[id] = 0
		rescnt[id] = 0
	}
	for _, fi := range unfrozen {
		for k := refStart[fi]; k < refStart[fi+1]; k++ {
			wsum[refID[k]] += refW[k]
			rescnt[refID[k]]++
		}
	}

	// Fast path: when every flow can take its full window cap without
	// exhausting any resource, the allocation is simply the caps, and the
	// water-filling rounds below are skipped. This is the common case in
	// the paper's window-limited regime — underfilled WAN pipes are the
	// entire motivation for parallel and striped transfers — where every
	// pass ends with all flows frozen at their caps anyway. One
	// accumulation over the edges decides (exhaust doubles as the cap-load
	// scratch; it is rebuilt below when the check fails).
	feasible := true
	for _, id := range touched {
		exhaust[id] = 0
	}
	for _, fi := range unfrozen {
		c := caps[fi]
		if math.IsInf(c, 1) {
			feasible = false
			break
		}
		for k := refStart[fi]; k < refStart[fi+1]; k++ {
			exhaust[refID[k]] += refW[k] * c
		}
	}
	if feasible {
		for _, id := range touched {
			if exhaust[id] > residual[id] {
				feasible = false
				break
			}
		}
	}
	if feasible {
		for _, fi := range unfrozen {
			rates[fi] = caps[fi]
		}
		for _, id := range touched {
			wsum[id] = 0
		}
		sc.unfrozen = unfrozen[:0]
		return rates
	}

	// Per-resource water levels: exhaust is the fill level at which the
	// resource runs out under its current weighted demand; lastLv is the
	// level at which residual/wsum were last brought up to date. resLB
	// tracks the exact minimum exhaust level as of the last full scan;
	// freezes only ever raise exhaust levels, so between scans it stays a
	// valid lower bound — and any cap at or below it can freeze its flow
	// with no scan at all.
	live := sc.live[:0]
	resLB := math.Inf(1)
	for _, id := range touched {
		if rescnt[id] > 0 {
			exhaust[id] = residual[id] / wsum[id]
			lastLv[id] = 0
			live = append(live, id)
			if exhaust[id] < resLB {
				resLB = exhaust[id]
			}
		}
	}

	// Inverse lists (resource -> unfrozen flows) let a resource exhausting
	// at level T freeze exactly its own flows without scanning the whole
	// worklist. Window-limited passes never freeze by resource, so the
	// build is deferred until the first one does.
	var invFlow []int32
	invBuilt := false
	buildInv := func() {
		if cap(sc.invFlow) < len(refID) {
			sc.invFlow = make([]int32, len(refID))
		}
		invFlow = sc.invFlow[:len(refID)]
		var off int32
		for _, id := range touched {
			invCur[id] = off
			off += rescnt[id]
		}
		for _, fi := range unfrozen {
			if frozen[fi] {
				continue
			}
			for k := refStart[fi]; k < refStart[fi+1]; k++ {
				id := refID[k]
				invFlow[invCur[id]] = fi
				invCur[id]++
			}
		}
		// Each cursor now sits one past its list; recover the starts while
		// rescnt still holds the counts the fill used. Later freezes mark
		// flows frozen rather than editing the lists, so consumers skip
		// frozen entries.
		for _, id := range touched {
			invStart[id] = invCur[id] - rescnt[id]
		}
		invBuilt = true
	}

	// Min-heap of window-cap freeze levels (lazy deletion: entries for
	// already resource-frozen flows are discarded at peek time).
	capHeap := sc.capHeap[:0]
	for _, fi := range unfrozen {
		capHeap = append(capHeap, fi)
		for c := len(capHeap) - 1; c > 0; {
			p := (c - 1) / 2
			if caps[capHeap[p]] <= caps[capHeap[c]] {
				break
			}
			capHeap[p], capHeap[c] = capHeap[c], capHeap[p]
			c = p
		}
	}
	sc.capHeap = capHeap

	// freeze pins one flow at rate r and withdraws its weighted demand.
	// Touched resources get their residual brought up to level T and are
	// marked stale (exhaust -1); the divide to refresh the exhaust level
	// is deferred to the next scan that actually looks at it.
	nUnfrozen := len(unfrozen)
	var T float64
	freeze := func(fi int32, r float64) {
		rates[fi] = r
		frozen[fi] = true
		nUnfrozen--
		for k := refStart[fi]; k < refStart[fi+1]; k++ {
			id := refID[k]
			if lastLv[id] < T {
				residual[id] -= (T - lastLv[id]) * wsum[id]
				if residual[id] < 0 {
					residual[id] = 0
				}
				lastLv[id] = T
			}
			wsum[id] -= refW[k]
			if rescnt[id]--; rescnt[id] == 0 {
				// No unfrozen flow left: exactly spent, whatever float
				// residue the withdrawals left behind.
				wsum[id] = 0
			} else {
				exhaust[id] = -1
			}
		}
	}

	for nUnfrozen > 0 {
		// Lowest unfrozen window cap (lazy deletion of frozen entries).
		for len(capHeap) > 0 && frozen[capHeap[0]] {
			capHeap = capHeapPop(capHeap, caps)
		}
		capTop := math.Inf(1)
		if len(capHeap) > 0 {
			capTop = caps[capHeap[0]]
		}
		level := capTop
		minRes := -1
		if capTop > resLB {
			// The cap might not be the binding constraint: rescan for the
			// exact minimum exhaust level, refreshing stale entries (one
			// divide each) and swap-removing dead resources.
			resLevel := math.Inf(1)
			for u := 0; u < len(live); {
				id := live[u]
				if rescnt[id] == 0 {
					live[u] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				e := exhaust[id]
				if e < 0 {
					e = lastLv[id] + residual[id]/wsum[id]
					exhaust[id] = e
				}
				if e < resLevel {
					resLevel, minRes = e, id
				}
				u++
			}
			resLB = resLevel
			if resLevel <= capTop {
				// Resources win ties so equal-level constraints resolve
				// in deterministic order.
				level = resLevel
			} else {
				minRes = -1
			}
		}
		if math.IsInf(level, 1) {
			// Nothing constrains the remaining flows (zero-RTT paths over
			// unlimited resources): effectively instant.
			for _, fi := range unfrozen {
				if !frozen[fi] {
					rates[fi] = loopbackBps
					frozen[fi] = true
				}
			}
			nUnfrozen = 0
			break
		}
		T = level
		if minRes < 0 {
			fi := capHeap[0]
			capHeap = capHeapPop(capHeap, caps)
			freeze(fi, caps[fi])
		} else {
			// The resource exhausts exactly at T: every flow still on it
			// freezes here, at its fair share. Symmetric topologies tend to
			// exhaust many resources at exactly the same level, so sweep
			// them all in this round (in live order, the order successive
			// rescans would visit them) instead of paying a rescan per tied
			// resource. A tied resource touched by an earlier freeze in the
			// sweep goes stale (exhaust -1) and is left for the next round,
			// where the rescan recomputes its true level.
			if !invBuilt {
				buildInv()
			}
			for _, id := range live {
				if rescnt[id] == 0 || exhaust[id] != T {
					continue
				}
				for k := invStart[id]; k < invCur[id]; k++ {
					if fi := invFlow[k]; !frozen[fi] {
						freeze(fi, T)
					}
				}
			}
		}
	}
	sc.capHeap = capHeap[:0]
	sc.live = live[:0]
	// The incremental withdrawals can leave float residue of either sign;
	// the next pass's seen-marks need wsum non-negative.
	for _, id := range touched {
		wsum[id] = 0
	}
	sc.unfrozen = unfrozen[:0]
	return rates
}

// capHeapPop removes the root of the window-cap min-heap.
func capHeapPop(h []int32, caps []float64) []int32 {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		s := c
		if l < len(h) && caps[h[l]] < caps[h[s]] {
			s = l
		}
		if r < len(h) && caps[h[r]] < caps[h[s]] {
			s = r
		}
		if s == c {
			break
		}
		h[c], h[s] = h[s], h[c]
		c = s
	}
	return h
}

// loopbackBps is the stand-in rate for unconstrained (same-host) traffic.
const loopbackBps = 40e9
