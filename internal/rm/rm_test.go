package rm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gridftp"
	"esgrid/internal/hrm"
	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/nws"
	"esgrid/internal/replica"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

const (
	mbps = 1e6
	mb   = int64(1) << 20
)

// grid is a miniature ESG testbed: a client site and two replica sites
// with different connectivity, plus catalogs and NWS.
type grid struct {
	clk    *vtime.Sim
	net    *simnet.Net
	client *simnet.Host
	cat    *replica.Catalog
	info   *mds.Service
	sensor *nws.Sensor
	stores map[string]*gridftp.VirtualStore
}

// buildGrid creates sites "fast" (622 Mb/s) and "slow" (45 Mb/s) serving
// the same collection to client site "desk".
func buildGrid(t *testing.T, seed int64) *grid {
	t.Helper()
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	g := &grid{clk: clk, net: n, stores: map[string]*gridftp.VirtualStore{}}
	g.client = n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddNode("wan")
	n.AddLink("desk", "wan", simnet.LinkConfig{CapacityBps: 1e9, Delay: 2 * time.Millisecond})
	n.AddHost("fast", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("fast", "wan", simnet.LinkConfig{CapacityBps: 622 * mbps, Delay: 10 * time.Millisecond})
	n.AddHost("slow", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("slow", "wan", simnet.LinkConfig{CapacityBps: 45 * mbps, Delay: 30 * time.Millisecond})

	dir := ldapd.NewDir()
	cat, err := replica.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	g.cat = cat
	info, err := mds.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	g.info = info

	files := []string{"pcm.tas.1998-01.nc", "pcm.tas.1998-02.nc", "pcm.tas.1998-03.nc"}
	if err := cat.CreateCollection("pcm-monthly", files); err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"fast", "slow"} {
		store := gridftp.NewVirtualStore()
		for _, f := range files {
			store.Put(f, 64*mb)
		}
		g.stores[site] = store
		if err := cat.AddLocation("pcm-monthly", replica.Location{
			Host: site, Protocol: "gsiftp", Port: 2811, Path: "/data", Files: files,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range files {
		cat.RegisterLogicalFile("pcm-monthly", f, 64*mb)
	}
	return g
}

// startServers launches GridFTP servers at both sites; must run inside
// clk.Run.
func (g *grid) startServers(t *testing.T) {
	t.Helper()
	for _, site := range []string{"fast", "slow"} {
		host := g.net.Host(site)
		srv, err := gridftp.NewServer(gridftp.Config{
			Clock: g.clk, Net: host, Host: site, Store: g.stores[site],
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := host.Listen(":2811")
		if err != nil {
			t.Fatal(err)
		}
		g.clk.Go(func() { srv.Serve(l) })
	}
}

// startNWS measures both sites and publishes forecasts; must run inside
// clk.Run.
func (g *grid) startNWS() {
	prober := nws.ProbeFunc(func(from, to string) (float64, time.Duration, error) {
		bw, err := g.net.EstimateBandwidth(from, to)
		if err != nil {
			return 0, 0, err
		}
		rtt, err := g.net.PathRTT(from, to)
		if err != nil {
			return 0, 0, err
		}
		return bw, rtt, nil
	})
	g.sensor = nws.NewSensor(g.clk, prober, g.info, 10*time.Second)
	g.sensor.Watch("fast", "desk")
	g.sensor.Watch("slow", "desk")
	g.sensor.MeasureNow()
}

func (g *grid) manager(t *testing.T, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Clock:           g.clk,
		Net:             g.client,
		LocalHost:       "desk",
		Replica:         g.cat,
		Info:            g.info,
		DestStore:       gridftp.NewVirtualStore(),
		Policy:          PolicyNWS,
		Parallelism:     2,
		BufferBytes:     1 << 20,
		MonitorInterval: time.Second,
		MaxAttempts:     5,
		RetryBackoff:    500 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRequestCompletesAllFiles(t *testing.T) {
	g := buildGrid(t, 1)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		req, err := m.Submit("/CN=drach", "pcm-monthly", []FileRequest{
			{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"}, {Name: "pcm.tas.1998-03.nc"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		for _, st := range req.Status() {
			if st.State != StateDone {
				t.Errorf("%s state = %s", st.Name, st.State)
			}
			if st.Received != 64*mb {
				t.Errorf("%s received = %d", st.Name, st.Received)
			}
		}
		if req.TotalReceived() != 3*64*mb {
			t.Fatalf("total = %d", req.TotalReceived())
		}
	})
}

func TestNWSPolicyPicksFastReplica(t *testing.T) {
	g := buildGrid(t, 2)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		if st := req.Status()[0]; st.Replica != "fast" {
			t.Fatalf("NWS policy chose %q, want fast", st.Replica)
		}
	})
}

func TestStaticPolicyIgnoresForecasts(t *testing.T) {
	g := buildGrid(t, 3)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, func(c *Config) { c.Policy = PolicyFirst })
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		// Catalog order: "fast" was added first, so static picks fast
		// here; the point is it did not consult forecasts at all. Verify
		// by removing forecasts and ensuring it still works.
		m2 := g.manager(t, func(c *Config) { c.Policy = PolicyFirst; c.Info = nil })
		req2, _ := m2.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-02.nc"}})
		if err := req2.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFailoverToAlternateReplica(t *testing.T) {
	g := buildGrid(t, 4)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		// Kill the fast site's link shortly after the transfer starts; the
		// RM must fail over to "slow" and finish with a restart.
		link := g.net.LinkBetween("fast", "wan")
		g.clk.AfterFunc(400*time.Millisecond, func() { link.SetUp(false, true) })
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		st := req.Status()[0]
		if st.Replica != "slow" {
			t.Fatalf("final replica = %q, want slow", st.Replica)
		}
		if st.Attempts < 2 {
			t.Fatalf("attempts = %d, want >= 2", st.Attempts)
		}
		joined := strings.Join(req.Messages(), "\n")
		if !strings.Contains(joined, "trying alternate") {
			t.Fatalf("messages missing failover note:\n%s", joined)
		}
	})
}

func TestReliabilityPluginAbortsSlowTransfer(t *testing.T) {
	g := buildGrid(t, 5)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		// Degrade the fast site AFTER forecasts were taken, so NWS still
		// sends the RM there; the reliability plug-in must bail out.
		g.net.LinkBetween("fast", "wan").SetCapacityFactor(0.005) // ~3 Mb/s
		m := g.manager(t, func(c *Config) { c.MinRateBps = 10 * mbps })
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		st := req.Status()[0]
		if st.Replica != "slow" {
			t.Fatalf("final replica = %q, want slow after low-rate abort", st.Replica)
		}
		joined := strings.Join(req.Messages(), "\n")
		if !strings.Contains(joined, "below threshold") {
			t.Fatalf("messages missing abort note:\n%s", joined)
		}
	})
}

func TestStagedReplicaTriggersHRM(t *testing.T) {
	clk := vtime.NewSim(6)
	n := simnet.New(clk)
	desk := n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddHost("lbnl", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("desk", "lbnl", simnet.LinkConfig{CapacityBps: 622 * mbps, Delay: 10 * time.Millisecond})
	dir := ldapd.NewDir()
	cat, _ := replica.New(dir)
	cat.CreateCollection("pcm", []string{"deep.nc"})
	cat.AddLocation("pcm", replica.Location{
		Host: "lbnl", Protocol: "gsiftp", Port: 2811, Path: "/hpss", Files: []string{"deep.nc"}, Staged: true,
	})
	cat.RegisterLogicalFile("pcm", "deep.nc", 256*mb)
	clk.Run(func() {
		lbnl := n.Host("lbnl")
		// HRM with the file on tape.
		h := hrm.New(clk, hrm.Config{Drives: 1, MountTime: 30 * time.Second, SeekTime: 10 * time.Second, ReadBps: 112e6, CacheBytes: 10 << 30})
		h.AddTapeFile(hrm.TapeFile{Name: "deep.nc", Size: 256 * mb, Tape: "T9"})
		rpcSrv := esgrpc.NewServer(clk, nil)
		h.RegisterRPC(rpcSrv)
		rl, _ := lbnl.Listen(":4811")
		clk.Go(func() { rpcSrv.Serve(rl) })
		// GridFTP serving the HRM cache.
		gsrv, _ := gridftp.NewServer(gridftp.Config{Clock: clk, Net: lbnl, Host: "lbnl", Store: h.Store()})
		gl, _ := lbnl.Listen(":2811")
		clk.Go(func() { gsrv.Serve(gl) })

		m, err := New(Config{
			Clock: clk, Net: desk, LocalHost: "desk", Replica: cat,
			DestStore: gridftp.NewVirtualStore(), HRMPort: 4811,
			Parallelism: 2, BufferBytes: 1 << 20, MonitorInterval: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t0 := clk.Now()
		req, _ := m.Submit("u", "pcm", []FileRequest{{Name: "deep.nc"}})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		// Staging (mount+seek+read 256MB at 14MB/s ~ 58s) must dominate.
		if elapsed := clk.Now().Sub(t0); elapsed < 50*time.Second {
			t.Fatalf("completed in %v; staging latency missing", elapsed)
		}
		if h.Stats().Misses != 1 {
			t.Fatalf("hrm stats = %+v", h.Stats())
		}
		joined := strings.Join(req.Messages(), "\n")
		if !strings.Contains(joined, "staged from mass storage") {
			t.Fatalf("messages missing staging note:\n%s", joined)
		}
	})
}

func TestMonitorRendering(t *testing.T) {
	g := buildGrid(t, 7)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		req, _ := m.Submit("/CN=williams", "pcm-monthly", []FileRequest{
			{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"},
		})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		out := RenderMonitor(req, 80)
		for _, want := range []string{
			"Request 1 (/CN=williams)",
			"pcm.tas.1998-01.nc",
			"100.0%",
			"replica selections:",
			"transfer complete",
			"TOTAL:",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("monitor output missing %q:\n%s", want, out)
			}
		}
	})
}

func TestRPCFacade(t *testing.T) {
	g := buildGrid(t, 8)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		srv := esgrpc.NewServer(g.clk, nil)
		m.RegisterRPC(srv)
		// Serve the RM RPC on a separate port of the client host (the RM
		// runs at the user's site in the prototype).
		l, _ := g.client.Listen(":4900")
		g.clk.Go(func() { srv.Serve(l) })
		cli, err := esgrpc.Dial(g.clk, g.client, "desk:4900", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		var rep SubmitReply
		if err := cli.Call("rm.submit", SubmitArgs{
			User: "cdat", Collection: "pcm-monthly",
			Files: []FileRequest{{Name: "pcm.tas.1998-01.nc"}},
		}, &rep); err != nil {
			t.Fatal(err)
		}
		// Poll status until done, as VCDAT's monitor does.
		deadline := g.clk.Now().Add(5 * time.Minute)
		for {
			var st StatusReply
			if err := cli.Call("rm.status", StatusArgs{ID: rep.ID}, &st); err != nil {
				t.Fatal(err)
			}
			if st.Done {
				if st.Files[0].State != StateDone {
					t.Fatalf("file state = %v", st.Files[0].State)
				}
				break
			}
			if g.clk.Now().After(deadline) {
				t.Fatal("request did not finish")
			}
			g.clk.Sleep(2 * time.Second)
		}
	})
}

func TestSubmitValidation(t *testing.T) {
	g := buildGrid(t, 9)
	g.clk.Run(func() {
		m := g.manager(t, nil)
		if _, err := m.Submit("u", "pcm-monthly", nil); err == nil {
			t.Fatal("empty request accepted")
		}
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "no-such.nc"}})
		if err := req.Wait(); err == nil {
			t.Fatal("unknown file request succeeded")
		}
		if st := req.Status()[0]; st.State != StateFailed {
			t.Fatalf("state = %v", st.State)
		}
	})
}

func TestConcurrencyCap(t *testing.T) {
	g := buildGrid(t, 10)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, func(c *Config) { c.MaxConcurrent = 1 })
		req, _ := m.Submit("u", "pcm-monthly", []FileRequest{
			{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"}, {Name: "pcm.tas.1998-03.nc"},
		})
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMultipleUsersConcurrently exercises §4's claim that the RM serves
// "multiple file transfers on behalf of multiple users concurrently":
// three users' requests interleave and all complete.
func TestMultipleUsersConcurrently(t *testing.T) {
	g := buildGrid(t, 11)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		users := []string{"/CN=drach", "/CN=williams", "/CN=nefedova"}
		reqs := make([]*Request, len(users))
		for i, u := range users {
			r, err := m.Submit(u, "pcm-monthly", []FileRequest{
				{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"},
			})
			if err != nil {
				t.Fatal(err)
			}
			reqs[i] = r
		}
		for i, r := range reqs {
			if err := r.Wait(); err != nil {
				t.Fatalf("user %s: %v", users[i], err)
			}
			if r.TotalReceived() != 2*64*mb {
				t.Fatalf("user %s received %d", users[i], r.TotalReceived())
			}
		}
		// Distinct request ids, correct attribution.
		if reqs[0].ID == reqs[1].ID || reqs[1].User != "/CN=williams" {
			t.Fatal("request identity broken")
		}
		if m.Request(reqs[2].ID) != reqs[2] {
			t.Fatal("lookup by id broken")
		}
	})
}

func TestRenderMonitor(t *testing.T) {
	g := buildGrid(t, 11)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		m := g.manager(t, nil)
		req, err := m.Submit("/CN=drach", "pcm-monthly", []FileRequest{
			{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		out := RenderMonitor(req, 80)
		if !strings.Contains(out, `collection "pcm-monthly"`) || !strings.Contains(out, "/CN=drach") {
			t.Errorf("header missing:\n%s", out)
		}
		// Completed files show a full progress bar at 100%.
		barW := 80 - 34
		if !strings.Contains(out, "["+strings.Repeat("#", barW)+"] 100.0%") {
			t.Errorf("full progress bar missing:\n%s", out)
		}
		if !strings.Contains(out, "TOTAL: 134.2 of 134.2 MB (100.0%)") {
			t.Errorf("total line missing:\n%s", out)
		}
		// Replica pane names the chosen site and final state.
		if !strings.Contains(out, "replica selections:") ||
			!strings.Contains(out, "<- fast") || !strings.Contains(out, "done") {
			t.Errorf("replica pane:\n%s", out)
		}
		// The message pane shows at most the last 8 log lines.
		for i := 0; i < 20; i++ {
			m.emit(req, "synthetic monitor line %02d", i)
		}
		out = RenderMonitor(req, 80)
		shown := 0
		for i := 0; i < 20; i++ {
			if strings.Contains(out, fmt.Sprintf("synthetic monitor line %02d", i)) {
				shown++
				if i < 12 {
					t.Errorf("line %02d should have been truncated", i)
				}
			}
		}
		if shown != 8 {
			t.Errorf("message tail shows %d lines, want 8", shown)
		}

		// Narrow widths clamp to 40 columns.
		narrow := RenderMonitor(req, 10)
		if !strings.Contains(narrow, strings.Repeat("=", 40)) {
			t.Errorf("width clamp missing:\n%s", narrow)
		}
	})
}

// TestRequestTracing checks the life-line span tree minted at Submit and
// threaded through the transfer layers.
func TestRequestTracing(t *testing.T) {
	g := buildGrid(t, 12)
	g.clk.Run(func() {
		g.startServers(t)
		g.startNWS()
		nlog := netlogger.NewLog(g.clk)
		tracer := netlogger.NewTracer(g.clk, nlog)
		metrics := netlogger.NewRegistry(g.clk)
		m := g.manager(t, func(c *Config) {
			c.Tracer = tracer
			c.Metrics = metrics
			c.Log = nlog
		})
		req, err := m.Submit("/CN=drach", "pcm-monthly", []FileRequest{
			{Name: "pcm.tas.1998-01.nc"}, {Name: "pcm.tas.1998-02.nc"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		if req.Span() == nil {
			t.Fatal("request has no trace span")
		}
		spans := tracer.Snapshot()
		byName := map[string]int{}
		var unfinished int
		for _, s := range spans {
			byName[s.Name]++
			if !s.Done {
				unfinished++
			}
		}
		if unfinished != 0 {
			t.Errorf("%d spans left unfinished: %+v", unfinished, spans)
		}
		for name, want := range map[string]int{
			"rm.request":      1,
			"rm.file":         2,
			"rm.select":       2,
			"gridftp.session": 2,
			"gridftp.auth":    2,
			"gridftp.get":     2,
		} {
			if byName[name] != want {
				t.Errorf("span %q count = %d, want %d", name, byName[name], want)
			}
		}
		a := netlogger.AnalyzeTrace(spans, req.Span().TraceID())
		if a.Coverage < 0.99 {
			t.Errorf("coverage %.4f, want >= 0.99\n%s", a.Coverage, a.RenderStageTable())
		}
		// Control RTTs were measured on the way.
		if metrics.LogHist("gridftp.control.rtts").Count() == 0 {
			t.Error("no control RTTs observed")
		}
	})
}

// TestHealthRankDownRanksUnhealthyReplica: the monitor plane published a
// "down" verdict on the forecast-best replica; with HealthRank on the RM
// must fall back to the healthy one, and with the flag off (the default)
// published health must change nothing.
func TestHealthRankDownRanksUnhealthyReplica(t *testing.T) {
	run := func(healthRank bool) string {
		g := buildGrid(t, 31)
		var chosen string
		g.clk.Run(func() {
			g.startServers(t)
			g.startNWS()
			if err := g.info.PublishHostHealth(mds.HostHealth{
				Host: "fast", Status: mds.HealthDown, Updated: g.clk.Now(),
			}); err != nil {
				t.Fatal(err)
			}
			m := g.manager(t, func(c *Config) { c.HealthRank = healthRank })
			req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
			if err := req.Wait(); err != nil {
				t.Fatal(err)
			}
			chosen = req.Status()[0].Replica
		})
		return chosen
	}
	if got := run(true); got != "slow" {
		t.Fatalf("HealthRank on: chose %q, want slow", got)
	}
	if got := run(false); got != "fast" {
		t.Fatalf("HealthRank off: chose %q, want fast", got)
	}
}

// TestHealthRankDegradedPath: a degraded verdict discounts the forecast
// (×0.25) rather than zeroing it, so a much-faster replica survives
// degradation (622×0.25 still beats 45), while a "down" path verdict
// excludes it outright.
func TestHealthRankDegradedPath(t *testing.T) {
	run := func(status string) string {
		g := buildGrid(t, 32)
		var chosen string
		g.clk.Run(func() {
			g.startServers(t)
			g.startNWS()
			if err := g.info.PublishPathHealth(mds.PathHealth{
				From: "fast", To: "desk", Status: status, Updated: g.clk.Now(),
			}); err != nil {
				t.Fatal(err)
			}
			m := g.manager(t, func(c *Config) { c.HealthRank = true })
			req, _ := m.Submit("u", "pcm-monthly", []FileRequest{{Name: "pcm.tas.1998-01.nc"}})
			if err := req.Wait(); err != nil {
				t.Fatal(err)
			}
			chosen = req.Status()[0].Replica
		})
		return chosen
	}
	if got := run(mds.HealthDegraded); got != "fast" {
		t.Fatalf("degraded path: chose %q, want fast (discount must not exclude)", got)
	}
	if got := run(mds.HealthDown); got != "slow" {
		t.Fatalf("down path: chose %q, want slow", got)
	}
}
