package rm

import (
	"encoding/json"
	"fmt"
	"strings"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gsi"
)

// RenderMonitor draws the request's state as the text analog of the
// paper's Figure 4 transfer-monitoring tool: a progress bar per file (top
// pane), the chosen replica locations (middle pane), and the running
// message log (bottom pane).
func RenderMonitor(r *Request, width int) string {
	if width < 40 {
		width = 40
	}
	barW := width - 34
	var b strings.Builder
	statuses := r.Status()
	var total, got int64
	fmt.Fprintf(&b, "Request %d (%s) — collection %q\n", r.ID, r.User, r.Collection)
	b.WriteString(strings.Repeat("=", width) + "\n")
	for _, st := range statuses {
		frac := 0.0
		if st.Size > 0 {
			frac = float64(st.Received) / float64(st.Size)
		}
		fill := int(frac * float64(barW))
		if fill > barW {
			fill = barW
		}
		fmt.Fprintf(&b, "%-24.24s [%s%s] %5.1f%%\n",
			st.Name, strings.Repeat("#", fill), strings.Repeat(".", barW-fill), frac*100)
		total += st.Size
		got += st.Received
	}
	if total > 0 {
		fmt.Fprintf(&b, "TOTAL: %.1f of %.1f MB (%.1f%%)\n",
			float64(got)/1e6, float64(total)/1e6, 100*float64(got)/float64(total))
	}
	b.WriteString(strings.Repeat("-", width) + "\n")
	b.WriteString("replica selections:\n")
	for _, st := range statuses {
		if st.Replica != "" {
			fmt.Fprintf(&b, "  %-24.24s <- %s  (%s, attempt %d, %.1f Mb/s)\n",
				st.Name, st.Replica, st.State, st.Attempts, st.RateBps/1e6)
		}
	}
	b.WriteString(strings.Repeat("-", width) + "\n")
	msgs := r.Messages()
	const tail = 8
	if len(msgs) > tail {
		msgs = msgs[len(msgs)-tail:]
	}
	for _, msg := range msgs {
		fmt.Fprintf(&b, "%s\n", msg)
	}
	return b.String()
}

// --- RPC facade: the CORBA interface CDAT calls (§4) ---

// SubmitArgs is the rm.submit payload.
type SubmitArgs struct {
	User       string        `json:"user"`
	Collection string        `json:"collection"`
	Files      []FileRequest `json:"files"`
}

// SubmitReply carries the request id.
type SubmitReply struct {
	ID int `json:"id"`
}

// StatusArgs selects a request.
type StatusArgs struct {
	ID int `json:"id"`
}

// StatusReply is the monitor snapshot.
type StatusReply struct {
	Files    []FileStatus `json:"files"`
	Messages []string     `json:"messages"`
	Done     bool         `json:"done"`
}

// RegisterRPC exposes the manager on an esgrpc server under "rm.*".
func (m *Manager) RegisterRPC(srv *esgrpc.Server) {
	srv.Handle("rm.submit", func(peer *gsi.Peer, params json.RawMessage) (any, error) {
		var args SubmitArgs
		if err := json.Unmarshal(params, &args); err != nil {
			return nil, err
		}
		user := args.User
		if peer != nil {
			user = peer.Subject
		}
		req, err := m.Submit(user, args.Collection, args.Files)
		if err != nil {
			return nil, err
		}
		return SubmitReply{ID: req.ID}, nil
	})
	srv.Handle("rm.status", func(_ *gsi.Peer, params json.RawMessage) (any, error) {
		var args StatusArgs
		if err := json.Unmarshal(params, &args); err != nil {
			return nil, err
		}
		req := m.Request(args.ID)
		if req == nil {
			return nil, fmt.Errorf("rm: unknown request %d", args.ID)
		}
		files := req.Status()
		done := true
		for _, f := range files {
			if f.State != StateDone && f.State != StateFailed {
				done = false
			}
		}
		return StatusReply{Files: files, Messages: req.Messages(), Done: done}, nil
	})
}
