// Package rm implements the LBNL Request Manager of §4: the component
// that accepts multi-file requests on behalf of multiple users, and for
// each file (on its own goroutine, as the paper's RM uses a thread per
// file) finds all replicas in the replica catalog, consults the NWS
// forecasts published in MDS, selects the best replica, asks the HRM to
// stage tape-resident files, runs the GridFTP transfer, and monitors
// progress every few seconds — switching to an alternate replica when
// the reliability plug-in sees the rate drop below threshold (§7,
// Figure 8).
package rm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gridftp"
	"esgrid/internal/gsi"
	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/replica"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// Provenance site tag(s) for the delays this package schedules on
// the virtual clock (flight-recorder attribution).
var (
	siteRetryBackoff = vtime.RegisterSite("rm.retry-backoff")
	siteMonitorTick  = vtime.RegisterSite("rm.monitor-tick")
)

// Policy selects among candidate replicas.
type Policy int

// Replica selection policies. PolicyNWS is the paper's; the others are
// the baselines of experiment S4.
const (
	// PolicyNWS picks the replica with the highest forecast bandwidth to
	// the client (§5).
	PolicyNWS Policy = iota
	// PolicyRandom picks uniformly at random.
	PolicyRandom
	// PolicyFirst always picks the first catalog entry (static).
	PolicyFirst
)

func (p Policy) String() string {
	switch p {
	case PolicyNWS:
		return "nws"
	case PolicyRandom:
		return "random"
	case PolicyFirst:
		return "static"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// State is a file transfer's lifecycle stage.
type State int

// File states, in order.
const (
	StateQueued State = iota
	StateSelecting
	StateStaging
	StateTransferring
	StateDone
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateSelecting:
		return "selecting"
	case StateStaging:
		return "staging"
	case StateTransferring:
		return "transferring"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Config configures a request manager.
type Config struct {
	// Clock schedules workers and monitors; required.
	Clock vtime.Clock
	// Net is the transport of the host the RM (and destination) runs on.
	Net transport.Network
	// LocalHost is this host's name, the destination end for NWS lookups.
	LocalHost string
	// Replica locates file copies.
	Replica *replica.Catalog
	// Info supplies NWS forecasts (may be nil: selection falls back to
	// static order).
	Info *mds.Service
	// DestStore receives transferred files.
	DestStore gridftp.FileStore
	// Auth authenticates GridFTP control channels (optional).
	Auth *gsi.Config
	// Log receives transfer events (optional).
	Log *netlogger.Log
	// Tracer, when non-nil, mints a life-line trace per Submit: a span
	// tree covering queueing, replica selection, staging, the GridFTP
	// session (auth/control/data/teardown), and retries.
	Tracer *netlogger.Tracer
	// Metrics, when non-nil, receives rm.retries and is handed to GridFTP
	// clients for control-channel histograms.
	Metrics *netlogger.Registry
	// Policy is the replica selection policy.
	Policy Policy
	// Parallelism, BufferBytes, CacheDataChannels configure transfers.
	Parallelism       int
	BufferBytes       int
	CacheDataChannels bool
	// HRMPort is the RPC port for staged (mass-storage) locations.
	HRMPort int
	// MaxAttempts bounds per-file attempts across all replicas.
	MaxAttempts int
	// RetryBackoff separates attempts.
	RetryBackoff time.Duration
	// MonitorInterval is how often progress is sampled ("every few
	// seconds", §4).
	MonitorInterval time.Duration
	// MinRateBps, when > 0, arms the reliability plug-in: a transfer
	// sustaining less than this over a monitor interval is aborted and
	// retried on an alternate replica (§7).
	MinRateBps float64
	// MaxConcurrent bounds simultaneously transferring files (0 = no cap).
	MaxConcurrent int
	// HealthRank, when true, folds the monitor plane's published
	// HostHealth/PathHealth verdicts into PolicyNWS ranking: forecasts to
	// replicas the monitor marked degraded are discounted and replicas
	// marked down are ranked last. Off by default so the monitor stays a
	// pure observer.
	HealthRank bool
	// Rand supplies randomness for PolicyRandom (defaults to a fixed
	// sequence when nil).
	Rand func() float64
}

// Manager is the request manager service.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	nextID int
	reqs   map[int]*Request
	sem    *clockSem
}

// clockSem is a counting semaphore whose blocking is visible to the
// virtual-time scheduler (a plain channel would stall the clock).
// Admission is FIFO by ticket: tickets are handed out under the Manager's
// submit path, so the order files enter transfer never depends on which
// waiting goroutine the runtime happens to wake first — a requirement for
// byte-identical life-line traces across equal-seed runs.
type clockSem struct {
	mu   sync.Mutex
	cond vtime.Cond
	free int
	head int // next ticket to admit
	tail int // next ticket to hand out
}

func newClockSem(clk vtime.Clock, n int) *clockSem {
	s := &clockSem{free: n}
	s.cond = clk.NewCond(&s.mu)
	return s
}

func (s *clockSem) ticket() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tail
	s.tail++
	return t
}

func (s *clockSem) acquire(ticket int) {
	s.mu.Lock()
	for s.free == 0 || ticket != s.head {
		s.cond.Wait()
	}
	s.free--
	s.head++
	s.cond.Broadcast() // the next ticket may also be admittable
	s.mu.Unlock()
}

func (s *clockSem) release() {
	s.mu.Lock()
	s.free++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// New validates cfg and creates a Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Clock == nil || cfg.Net == nil || cfg.Replica == nil || cfg.DestStore == nil {
		return nil, errors.New("rm: config needs Clock, Net, Replica and DestStore")
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 2 * time.Second
	}
	if cfg.HRMPort == 0 {
		cfg.HRMPort = 4811
	}
	m := &Manager{cfg: cfg, reqs: map[int]*Request{}}
	if cfg.MaxConcurrent > 0 {
		m.sem = newClockSem(cfg.Clock, cfg.MaxConcurrent)
	}
	return m, nil
}

// FileRequest names one logical file of a request.
type FileRequest struct {
	Name string
	Size int64 // 0: ask the catalog / server
}

// FileStatus is a snapshot of one file's progress (the rows of the
// Figure 4 monitor).
type FileStatus struct {
	Name     string
	Size     int64
	Received int64
	State    State
	Replica  string // chosen replica host
	Attempts int
	Error    string
	RateBps  float64 // rate over the last monitor interval
	// RequestedBytes sums the extents asked of servers across all
	// attempts. RequestedBytes − Size is the re-fetch overhead paid to
	// failures: bytes a dead attempt had in flight that a restart asked
	// for again (0 on a fault-free run — extent restart never re-requests
	// data already landed in the sink).
	RequestedBytes int64
}

// Request tracks one multi-file request.
type Request struct {
	ID         int
	User       string
	Collection string

	m     *Manager
	mu    sync.Mutex
	files []*fileState
	done  vtime.Cond
	open  int
	log   []string        // monitor messages (Figure 4's bottom pane)
	span  *netlogger.Span // life-line root (nil when untraced)
}

// Span returns the request's life-line root span (nil when untraced).
func (r *Request) Span() *netlogger.Span { return r.span }

type fileState struct {
	FileStatus
	sink   gridftp.Sink
	client *gridftp.Client // live transfer's control session, for aborts
	abort  bool
	span   *netlogger.Span // per-file life-line span (nil when untraced)
	qspan  *netlogger.Span // queue-wait span, minted at Submit
	ticket int             // FIFO admission order under MaxConcurrent
}

// Submit starts working on a request and returns its handle.
func (m *Manager) Submit(user, collection string, files []FileRequest) (*Request, error) {
	if len(files) == 0 {
		return nil, errors.New("rm: empty request")
	}
	m.mu.Lock()
	m.nextID++
	req := &Request{ID: m.nextID, User: user, Collection: collection, m: m, open: len(files)}
	req.done = m.cfg.Clock.NewCond(&req.mu)
	m.reqs[req.ID] = req
	m.mu.Unlock()
	req.span = m.cfg.Tracer.StartTrace("rm.request", m.cfg.LocalHost,
		"user", user, "collection", collection, "files", fmt.Sprint(len(files)))
	for _, f := range files {
		fs := &fileState{FileStatus: FileStatus{Name: f.Name, Size: f.Size, State: StateQueued}}
		fs.span = req.span.Child("", "rm.file", "file", f.Name)
		if m.sem != nil {
			// Ticket and queue span are minted here, in file order, so
			// admission sequence and span ids never depend on goroutine
			// scheduling.
			fs.ticket = m.sem.ticket()
			fs.qspan = fs.span.Child(netlogger.StageQueue, "rm.queue")
		}
		req.files = append(req.files, fs)
	}
	for _, fs := range req.files {
		fs := fs
		m.cfg.Clock.Go(func() { m.runFile(req, fs) })
	}
	m.emit(req, "request %d: %d file(s) submitted by %s", req.ID, len(files), user)
	return req, nil
}

// Request returns a submitted request by id (nil if unknown).
func (m *Manager) Request(id int) *Request {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reqs[id]
}

// Status snapshots all file states.
func (r *Request) Status() []FileStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FileStatus, len(r.files))
	for i, f := range r.files {
		out[i] = f.FileStatus
		if f.sink != nil {
			out[i].Received = receivedBytes(f.sink)
		}
	}
	return out
}

// Messages returns the monitor log lines.
func (r *Request) Messages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

// Wait blocks until every file is done or failed; it returns an error if
// any file failed.
func (r *Request) Wait() error {
	r.mu.Lock()
	for r.open > 0 {
		r.done.Wait()
	}
	defer r.mu.Unlock()
	var failed []string
	for _, f := range r.files {
		if f.State == StateFailed {
			failed = append(failed, fmt.Sprintf("%s: %s", f.Name, f.Error))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("rm: %d file(s) failed: %v", len(failed), failed)
	}
	return nil
}

// TotalReceived sums received bytes across the request.
func (r *Request) TotalReceived() int64 {
	var total int64
	for _, st := range r.Status() {
		total += st.Received
	}
	return total
}

func receivedBytes(s gridftp.Sink) int64 {
	var n int64
	for _, e := range s.Received() {
		n += e.Len
	}
	return n
}

func (m *Manager) emit(r *Request, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.log = append(r.log, m.cfg.Clock.Now().Format("15:04:05")+" "+msg)
	r.mu.Unlock()
	if m.cfg.Log != nil {
		m.cfg.Log.Emit(m.cfg.LocalHost, "rm", "msg", msg)
	}
}

// candidate is a replica option with its forecast.
type candidate struct {
	loc      replica.Location
	forecast float64
}

// rankReplicas orders candidate locations per policy, best first.
func (m *Manager) rankReplicas(locs []replica.Location) []candidate {
	cands := make([]candidate, len(locs))
	for i, l := range locs {
		cands[i] = candidate{loc: l}
		if m.cfg.Info != nil {
			if f, err := m.cfg.Info.Forecast(l.Host, m.cfg.LocalHost); err == nil {
				cands[i].forecast = f.BandwidthBps
			}
			if m.cfg.HealthRank {
				cands[i].forecast *= m.healthFactor(l.Host)
			}
		}
	}
	switch m.cfg.Policy {
	case PolicyNWS:
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].forecast > cands[j].forecast })
	case PolicyRandom:
		rnd := m.cfg.Rand
		if rnd == nil {
			rnd = func() float64 { return 0.5 }
		}
		for i := len(cands) - 1; i > 0; i-- {
			j := int(rnd() * float64(i+1))
			if j > i {
				j = i
			}
			cands[i], cands[j] = cands[j], cands[i]
		}
	case PolicyFirst:
		// catalog order
	}
	return cands
}

// healthFactor maps the monitor's published verdict on a replica host
// (and the path from it to us) to a forecast multiplier: down → 0,
// degraded → 0.25, ok or unpublished → 1. The worse of the host and path
// verdicts wins.
func (m *Manager) healthFactor(host string) float64 {
	status := func(s string) float64 {
		switch s {
		case mds.HealthDown:
			return 0
		case mds.HealthDegraded:
			return 0.25
		}
		return 1
	}
	f := 1.0
	if hh, err := m.cfg.Info.HostHealthFor(host); err == nil {
		f = status(hh.Status)
	}
	if ph, err := m.cfg.Info.PathHealthFor(host, m.cfg.LocalHost); err == nil {
		if pf := status(ph.Status); pf < f {
			f = pf
		}
	}
	return f
}

// runFile drives one file through the §4 pipeline.
func (m *Manager) runFile(req *Request, fs *fileState) {
	defer func() {
		req.mu.Lock()
		req.open--
		last := req.open == 0
		req.done.Broadcast()
		req.mu.Unlock()
		if last {
			req.span.Finish()
		}
	}()
	if m.sem != nil {
		m.sem.acquire(fs.ticket)
		fs.qspan.Finish()
		defer m.sem.release()
	}
	err := m.transferFile(req, fs)
	req.mu.Lock()
	if err != nil {
		fs.State = StateFailed
		fs.Error = err.Error()
	} else {
		fs.State = StateDone
	}
	req.mu.Unlock()
	if err != nil {
		fs.span.Annotate("state", "failed", "err", err.Error())
		m.emit(req, "%s: FAILED: %v", fs.Name, err)
	} else {
		fs.span.Annotate("state", "done")
	}
	fs.span.Finish()
}

func (m *Manager) transferFile(req *Request, fs *fileState) error {
	setState := func(s State) {
		req.mu.Lock()
		fs.State = s
		req.mu.Unlock()
	}
	setState(StateSelecting)
	sel := fs.span.Child(netlogger.StageSelect, "rm.select")
	locs, err := m.cfg.Replica.LocationsFor(req.Collection, fs.Name)
	if err != nil {
		sel.Finish()
		return err
	}
	// Size: catalog entry, else request hint; servers are asked later.
	if fs.Size == 0 {
		if sz, ok := m.cfg.Replica.FileSize(req.Collection, fs.Name); ok {
			fs.Size = sz
		}
	}
	cands := m.rankReplicas(locs)
	sel.Annotate("replicas", fmt.Sprint(len(cands)), "best", cands[0].loc.Host)
	sel.Finish()
	m.emit(req, "%s: %d replica(s); policy=%s best=%s (%.1f Mb/s forecast)",
		fs.Name, len(cands), m.cfg.Policy, cands[0].loc.Host, cands[0].forecast/1e6)

	var lastErr error
	attempt := 0
	for ci := 0; ci < len(cands) && attempt < m.cfg.MaxAttempts; ci++ {
		cand := cands[ci]
		if attempt > 0 && m.cfg.RetryBackoff > 0 {
			rs := fs.span.Child(netlogger.StageRetry, "rm.backoff", "file", fs.Name)
			vtime.SleepTagged(m.cfg.Clock, siteRetryBackoff, m.cfg.RetryBackoff)
			rs.Finish()
		}
		err := m.tryReplica(req, fs, cand, &attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		m.emit(req, "%s: replica %s failed (%v); trying alternate", fs.Name, cand.loc.Host, err)
		// Allow revisiting the list if we run out of candidates but still
		// have attempts (the outage may have healed).
		if ci == len(cands)-1 && attempt < m.cfg.MaxAttempts {
			ci = -1
		}
	}
	return fmt.Errorf("rm: all replicas failed after %d attempts: %w", attempt, lastErr)
}

// tryReplica performs staging + transfer from one replica, with progress
// monitoring and the low-rate abort.
func (m *Manager) tryReplica(req *Request, fs *fileState, cand candidate, attempt *int) error {
	*attempt++
	if *attempt > 1 {
		m.cfg.Metrics.Counter("rm.retries").Inc()
	}
	asp := fs.span.Child("", "rm.attempt",
		"n", fmt.Sprint(*attempt), "replica", cand.loc.Host, "file", fs.Name)
	defer asp.Finish()
	req.mu.Lock()
	fs.Replica = cand.loc.Host
	fs.Attempts = *attempt
	req.mu.Unlock()

	if cand.loc.Staged {
		req.mu.Lock()
		fs.State = StateStaging
		req.mu.Unlock()
		tape := asp.Child(netlogger.StageTape, "rm.stage", "host", cand.loc.Host, "file", fs.Name)
		if err := m.stage(cand.loc.Host, fs.Name, tape.Context()); err != nil {
			tape.Annotate("err", err.Error())
			tape.Finish()
			return err
		}
		tape.Finish()
		m.emit(req, "%s: staged from mass storage at %s", fs.Name, cand.loc.Host)
	}

	req.mu.Lock()
	fs.State = StateTransferring
	req.mu.Unlock()

	addr := fmt.Sprintf("%s:%d", cand.loc.Host, cand.loc.Port)
	cli, err := gridftp.Dial(gridftp.ClientConfig{
		Clock:             m.cfg.Clock,
		Net:               m.cfg.Net,
		Auth:              m.cfg.Auth,
		Parallelism:       m.cfg.Parallelism,
		BufferBytes:       m.cfg.BufferBytes,
		CacheDataChannels: m.cfg.CacheDataChannels,
		Span:              asp,
		Metrics:           m.cfg.Metrics,
	}, addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	size := fs.Size
	if size == 0 {
		if size, err = cli.Size(fs.Name); err != nil {
			return err
		}
		req.mu.Lock()
		fs.Size = size
		req.mu.Unlock()
	}
	req.mu.Lock()
	if fs.sink == nil {
		sink, err := m.cfg.DestStore.Create(fs.Name, size)
		if err != nil {
			req.mu.Unlock()
			return err
		}
		fs.sink = sink
	}
	sink := fs.sink
	fs.client = cli
	fs.abort = false
	req.mu.Unlock()
	defer func() {
		req.mu.Lock()
		fs.client = nil
		req.mu.Unlock()
	}()

	// Progress monitor: sample received bytes every interval; abort if
	// the reliability threshold is armed and undershot (§7's plug-in).
	stopMon := make(chan struct{})
	monDone := vtime.NewWaitGroup(m.cfg.Clock)
	monDone.Go(func() { m.monitor(req, fs, sink, stopMon) })

	missing := gridftp.MissingRanges(sink, size)
	var reqBytes int64
	for _, e := range missing {
		reqBytes += e.Len
	}
	req.mu.Lock()
	fs.RequestedBytes += reqBytes
	req.mu.Unlock()
	// The restart marker: what this attempt asks the server for. The
	// chaos invariant checker replays these events to assert extents stay
	// sorted, non-overlapping, and monotonically shrinking across
	// attempts.
	if m.cfg.Log != nil {
		m.cfg.Log.Emit(m.cfg.LocalHost, "rm.restart",
			"file", fs.Name, "attempt", fmt.Sprint(*attempt),
			"bytes", fmt.Sprint(reqBytes), "extents", gridftp.FormatRanges(missing))
	}
	var xferErr error
	if len(missing) == 0 {
		xferErr = nil
	} else if len(missing) == 1 && missing[0].Off == 0 && missing[0].Len == size {
		_, xferErr = cli.Get(fs.Name, sink)
	} else {
		m.emit(req, "%s: restarting; %d missing extent(s)", fs.Name, len(missing))
		_, xferErr = cli.GetRanges(fs.Name, sink, missing)
	}
	close(stopMon)
	monDone.Wait()

	req.mu.Lock()
	aborted := fs.abort
	req.mu.Unlock()
	if xferErr != nil {
		if aborted {
			return fmt.Errorf("rm: aborted: rate below %.1f Mb/s threshold", m.cfg.MinRateBps/1e6)
		}
		return xferErr
	}
	if err := sink.Complete(); err != nil {
		return err
	}
	m.emit(req, "%s: transfer complete from %s (%d bytes)", fs.Name, cand.loc.Host, size)
	return nil
}

// monitor samples progress until stopped; it updates RateBps and fires
// the low-rate abort.
func (m *Manager) monitor(req *Request, fs *fileState, sink gridftp.Sink, stop <-chan struct{}) {
	last := receivedBytes(sink)
	intervals := 0
	violations := 0
	// Sink coverage advances in whole MODE E blocks, so a healthy
	// transfer can legitimately show one empty interval; require several
	// consecutive sub-threshold intervals (after a slow-start grace
	// period) before declaring the replica bad.
	const graceIntervals = 1
	const violationsToAbort = 3
	for {
		vtime.SleepTagged(m.cfg.Clock, siteMonitorTick, m.cfg.MonitorInterval)
		select {
		case <-stop:
			return
		default:
		}
		cur := receivedBytes(sink)
		rate := float64(cur-last) * 8 / m.cfg.MonitorInterval.Seconds()
		last = cur
		intervals++
		if intervals > graceIntervals && m.cfg.MinRateBps > 0 && rate < m.cfg.MinRateBps {
			violations++
		} else {
			violations = 0
		}
		req.mu.Lock()
		fs.RateBps = rate
		cli := fs.client
		replica := fs.Replica
		shouldAbort := violations >= violationsToAbort && cli != nil && !fs.abort
		if shouldAbort {
			fs.abort = true
		}
		req.mu.Unlock()
		if m.cfg.Log != nil {
			// Structured progress sample, one per monitor interval. Emitted
			// whether or not anything is consuming it, so an instrumented
			// (monitored) run and a bare run produce identical event streams.
			m.cfg.Log.Emit(m.cfg.LocalHost, "rm.progress",
				"file", fs.Name, "replica", replica,
				"received", fmt.Sprint(cur), "ratebps", fmt.Sprintf("%.0f", rate))
		}
		if shouldAbort {
			m.emit(req, "%s: rate %.1f Mb/s below threshold; aborting for alternate replica", fs.Name, rate/1e6)
			cli.Close() // unblocks the transfer with an error
			return
		}
	}
}

// stage calls the HRM RPC service at the replica host, propagating the
// life-line trace context so the HRM's own events correlate.
func (m *Manager) stage(host, file, trid string) error {
	cli, err := esgrpc.Dial(m.cfg.Clock, m.cfg.Net, fmt.Sprintf("%s:%d", host, m.cfg.HRMPort), nil)
	if err != nil {
		return fmt.Errorf("rm: dial HRM at %s: %w", host, err)
	}
	defer cli.Close()
	params := map[string]string{"file": file}
	if trid != "" {
		params["trid"] = trid
	}
	return cli.Call("hrm.stage", params, nil)
}
