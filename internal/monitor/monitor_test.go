package monitor

import (
	"strings"
	"testing"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// ev builds a synthetic event at Epoch+at.
func ev(at time.Duration, host, name string, kv ...string) netlogger.Event {
	e := netlogger.Event{Time: vtime.Epoch.Add(at), Host: host, Name: name}
	if len(kv) > 0 {
		e.Fields = map[string]string{}
		for i := 0; i+1 < len(kv); i += 2 {
			e.Fields[kv[i]] = kv[i+1]
		}
	}
	return e
}

func alertsOf(m *Monitor, detector string) []Alert {
	var out []Alert
	for _, a := range m.Alerts() {
		if a.Detector == detector {
			out = append(out, a)
		}
	}
	return out
}

func TestStallDetectorEpisodes(t *testing.T) {
	m := New(Config{})
	m.Observe(ev(500*time.Millisecond, "anl", "rm.attempt.start",
		"file", "a.nc", "replica", "ncar", "n", "1"))
	m.Observe(ev(1500*time.Millisecond, "anl", "rm.progress",
		"file", "a.nc", "replica", "ncar", "received", "1000000", "ratebps", "8000000"))
	m.Observe(ev(2500*time.Millisecond, "anl", "rm.progress",
		"file", "a.nc", "replica", "ncar", "received", "2000000", "ratebps", "8000000"))
	// Silence: no byte progress after t=2.5s. Stall threshold 3s → the
	// tick at t=6s is the first with idle ≥ 3s.
	m.AdvanceTo(vtime.Epoch.Add(7 * time.Second))
	as := alertsOf(m, DetectorStall)
	if len(as) != 1 {
		t.Fatalf("stall alerts = %d, want 1", len(as))
	}
	if as[0].Host != "ncar" || as[0].Subject != "a.nc" {
		t.Fatalf("alert = %+v", as[0])
	}
	if want := vtime.Epoch.Add(6 * time.Second); !as[0].Time.Equal(want) {
		t.Fatalf("alert time = %v, want %v", as[0].Time, want)
	}
	// Progress resumes → re-arms; a second silence is a second episode.
	m.Observe(ev(7500*time.Millisecond, "anl", "rm.progress",
		"file", "a.nc", "replica", "ncar", "received", "3000000", "ratebps", "8000000"))
	m.AdvanceTo(vtime.Epoch.Add(12 * time.Second))
	if got := len(alertsOf(m, DetectorStall)); got != 2 {
		t.Fatalf("after resume+silence: stall alerts = %d, want 2", got)
	}
	// A done transfer never stalls.
	m.Observe(ev(12100*time.Millisecond, "anl", "rm.file.end", "file", "a.nc"))
	m.AdvanceTo(vtime.Epoch.Add(30 * time.Second))
	if got := len(alertsOf(m, DetectorStall)); got != 2 {
		t.Fatalf("after file.end: stall alerts = %d, want 2", got)
	}
}

func TestStallDetectorStagingAllowance(t *testing.T) {
	m := New(Config{})
	m.Observe(ev(time.Second, "anl", "rm.attempt.start",
		"file", "b.nc", "replica", "lbnl", "n", "1"))
	m.Observe(ev(1100*time.Millisecond, "anl", "rm.stage.start",
		"file", "b.nc", "host", "lbnl"))
	// 4s of staging — beyond the 3s transfer-stall threshold but inside
	// the 8s staging allowance: no alert.
	m.AdvanceTo(vtime.Epoch.Add(5 * time.Second))
	if got := len(alertsOf(m, DetectorStall)); got != 0 {
		t.Fatalf("normal staging alarmed: %d", got)
	}
	// Staging drags past 8s → stall, charged to the staging host.
	m.AdvanceTo(vtime.Epoch.Add(11 * time.Second))
	as := alertsOf(m, DetectorStall)
	if len(as) != 1 || as[0].Host != "lbnl" {
		t.Fatalf("staging stall = %+v", as)
	}
	if !strings.Contains(as[0].Detail, "staging") {
		t.Fatalf("detail = %q", as[0].Detail)
	}
	// stage.end counts as progress: no follow-on transfer-stall until
	// another 3 quiet seconds pass.
	m.Observe(ev(11500*time.Millisecond, "anl", "rm.stage.end",
		"file", "b.nc", "host", "lbnl"))
	m.AdvanceTo(vtime.Epoch.Add(13 * time.Second))
	if got := len(alertsOf(m, DetectorStall)); got != 1 {
		t.Fatalf("stall after stage.end too early: %d", got)
	}
}

func TestCollapseDetector(t *testing.T) {
	m := New(Config{
		Forecast: func(from, to string) (float64, bool) {
			if from == "ncar" && to == "anl" {
				return 100e6, true
			}
			return 0, false
		},
	})
	low := func(at time.Duration, recv string) netlogger.Event {
		return ev(at, "anl", "rm.progress",
			"file", "c.nc", "replica", "ncar", "received", recv, "ratebps", "10000000")
	}
	m.Observe(ev(100*time.Millisecond, "anl", "rm.attempt.start",
		"file", "c.nc", "replica", "ncar", "n", "1"))
	m.Observe(low(1*time.Second, "1"))
	m.Observe(low(2*time.Second, "2"))
	if got := len(alertsOf(m, DetectorCollapse)); got != 0 {
		t.Fatalf("alerted before streak complete: %d", got)
	}
	m.Observe(low(3*time.Second, "3"))
	as := alertsOf(m, DetectorCollapse)
	if len(as) != 1 || as[0].Host != "ncar" || as[0].Subject != "c.nc" {
		t.Fatalf("collapse = %+v", as)
	}
	// Still collapsed: one alert per episode.
	m.Observe(low(4*time.Second, "4"))
	if got := len(alertsOf(m, DetectorCollapse)); got != 1 {
		t.Fatalf("episode re-alerted: %d", got)
	}
	// Recovery resets the streak; a fresh collapse is a new episode.
	m.Observe(ev(5*time.Second, "anl", "rm.progress",
		"file", "c.nc", "replica", "ncar", "received", "50", "ratebps", "90000000"))
	m.Observe(low(6*time.Second, "51"))
	m.Observe(low(7*time.Second, "52"))
	m.Observe(low(8*time.Second, "53"))
	if got := len(alertsOf(m, DetectorCollapse)); got != 2 {
		t.Fatalf("second episode: %d alerts, want 2", got)
	}
	// Paths without a forecast never alarm.
	m.Observe(ev(9*time.Second, "anl", "rm.progress",
		"file", "d.nc", "replica", "mystery", "received", "1", "ratebps", "1"))
	if got := len(alertsOf(m, DetectorCollapse)); got != 2 {
		t.Fatalf("forecastless path alarmed: %d", got)
	}
}

func TestRetryStormDetector(t *testing.T) {
	m := New(Config{})
	retry := func(at time.Duration, n string) netlogger.Event {
		return ev(at, "anl", "rm.attempt.start",
			"file", "e.nc", "replica", "ncar", "n", n)
	}
	m.Observe(retry(1*time.Second, "1")) // first attempt: not a retry
	m.Observe(retry(2*time.Second, "2"))
	m.Observe(retry(3*time.Second, "3"))
	if got := len(alertsOf(m, DetectorRetryStorm)); got != 0 {
		t.Fatalf("stormed below threshold: %d", got)
	}
	m.Observe(retry(4*time.Second, "4"))
	as := alertsOf(m, DetectorRetryStorm)
	if len(as) != 1 || as[0].Host != "ncar" {
		t.Fatalf("storm = %+v", as)
	}
	// Further retries inside the window are suppressed.
	m.Observe(retry(5*time.Second, "5"))
	m.Observe(retry(6*time.Second, "6"))
	if got := len(alertsOf(m, DetectorRetryStorm)); got != 1 {
		t.Fatalf("suppression failed: %d", got)
	}
	// Well past the window, a new burst is a new storm.
	m.Observe(retry(40*time.Second, "7"))
	m.Observe(retry(41*time.Second, "8"))
	m.Observe(retry(42*time.Second, "9"))
	if got := len(alertsOf(m, DetectorRetryStorm)); got != 2 {
		t.Fatalf("second storm: %d alerts, want 2", got)
	}
}

func TestTeardownGapDetector(t *testing.T) {
	m := New(Config{})
	at := time.Duration(0)
	pair := func(busy, gap time.Duration) {
		m.Observe(ev(at, "ncar", "gridftp.retr.start"))
		at += busy
		m.Observe(ev(at, "ncar", "gridftp.retr.end"))
		at += gap
	}
	// Four healthy retrievals with ~0.5s gaps build the baseline.
	for i := 0; i < 4; i++ {
		pair(2*time.Second, 500*time.Millisecond)
	}
	if got := len(alertsOf(m, DetectorTeardownGap)); got != 0 {
		t.Fatalf("baseline alarmed: %d", got)
	}
	// A 5s gap (10× baseline, > 1s floor) regresses.
	at += 4500 * time.Millisecond // already 0.5s after last end
	m.Observe(ev(at, "ncar", "gridftp.retr.start"))
	as := alertsOf(m, DetectorTeardownGap)
	if len(as) != 1 || as[0].Host != "ncar" {
		t.Fatalf("gap regression = %+v", as)
	}
}

func TestSensorDeadDetector(t *testing.T) {
	m := New(Config{})
	probeErr := func(at time.Duration, n string) netlogger.Event {
		return ev(at, "anl", "nws.probe.error",
			"from", "ncar", "to", "anl", "err", "dns: outage", "consecutive", n)
	}
	m.Observe(probeErr(1*time.Second, "1"))
	m.Observe(probeErr(2*time.Second, "2"))
	if got := len(alertsOf(m, DetectorSensorDead)); got != 0 {
		t.Fatalf("dead before threshold: %d", got)
	}
	m.Observe(probeErr(3*time.Second, "3"))
	as := alertsOf(m, DetectorSensorDead)
	if len(as) != 1 || as[0].Subject != "ncar->anl" || as[0].Host != "ncar" {
		t.Fatalf("sensor-dead = %+v", as)
	}
	// The counter keeps climbing during the outage; only the exact
	// threshold crossing alerts.
	m.Observe(probeErr(4*time.Second, "4"))
	if got := len(alertsOf(m, DetectorSensorDead)); got != 1 {
		t.Fatalf("re-alerted during outage: %d", got)
	}
}

func TestHealthStatusDerivationAndDecay(t *testing.T) {
	m := New(Config{})
	m.Observe(ev(500*time.Millisecond, "anl", "rm.attempt.start",
		"file", "a.nc", "replica", "ncar", "n", "1"))
	m.AdvanceTo(vtime.Epoch.Add(5 * time.Second)) // stall at t=3.5+... → down
	hh, _ := m.Health(vtime.Epoch.Add(5 * time.Second))
	var ncar *mds.HostHealth
	for i := range hh {
		if hh[i].Host == "ncar" {
			ncar = &hh[i]
		}
	}
	if ncar == nil || ncar.Status != mds.HealthDown {
		t.Fatalf("ncar health = %+v, want down", ncar)
	}
	if ncar.Alerts != 1 {
		t.Fatalf("alerts charged = %d", ncar.Alerts)
	}
	// Past the decay window the verdict relaxes to ok.
	hh, _ = m.Health(vtime.Epoch.Add(60 * time.Second))
	for _, h := range hh {
		if h.Host == "ncar" && h.Status != mds.HealthOK {
			t.Fatalf("after decay: %+v", h)
		}
	}
}

func TestStageLatencyDigests(t *testing.T) {
	m := New(Config{})
	m.Observe(ev(1*time.Second, "anl", "rm.stage.start",
		"trid", "1.4", "stage", "stage-from-tape", "file", "a.nc", "host", "lbnl"))
	m.Observe(ev(4500*time.Millisecond, "anl", "rm.stage.end",
		"trid", "1.4", "stage", "stage-from-tape", "file", "a.nc", "host", "lbnl"))
	m.Observe(ev(5*time.Second, "anl", "rm.backoff.start",
		"trid", "1.9", "stage", "retry", "file", "a.nc"))
	m.Observe(ev(5500*time.Millisecond, "anl", "rm.backoff.end",
		"trid", "1.9", "stage", "retry", "file", "a.nc"))
	s := m.Snapshot(m.Now())
	if len(s.Stages) != 2 {
		t.Fatalf("stages = %+v", s.Stages)
	}
	byName := map[string]StageStat{}
	for _, st := range s.Stages {
		byName[st.Stage] = st
	}
	tape := byName["stage-from-tape"]
	if tape.N != 1 || tape.Max != 3.5 {
		t.Fatalf("tape digest = %+v", tape)
	}
	if byName["retry"].Max != 0.5 {
		t.Fatalf("retry digest = %+v", byName["retry"])
	}
}

func TestSnapshotAndDashboard(t *testing.T) {
	m := New(Config{})
	m.Observe(ev(500*time.Millisecond, "anl", "rm.file.start", "file", "a.nc", "trid", "1.1"))
	m.Observe(ev(600*time.Millisecond, "anl", "rm.attempt.start",
		"file", "a.nc", "replica", "ncar", "n", "1"))
	m.Observe(ev(1500*time.Millisecond, "anl", "rm.progress",
		"file", "a.nc", "replica", "ncar", "received", "9000000", "ratebps", "72000000"))
	m.AdvanceTo(vtime.Epoch.Add(2 * time.Second))
	s := m.Snapshot(vtime.Epoch.Add(2 * time.Second))
	if len(s.Transfers) != 1 || s.Transfers[0].File != "a.nc" ||
		s.Transfers[0].State != "active" || s.Transfers[0].Received != 9000000 {
		t.Fatalf("transfers = %+v", s.Transfers)
	}
	found := false
	for _, h := range s.Hosts {
		if h.Host == "ncar" && h.GoodputBps == 72000000 && h.Active == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hosts = %+v", s.Hosts)
	}
	out := RenderDashboard(s, 100)
	for _, want := range []string{"SITES", "TRANSFERS", "ALERTS", "a.nc", "ncar"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Empty snapshot renders too.
	empty := RenderDashboard(Snapshot{}, 0)
	if !strings.Contains(empty, "(none observed)") || !strings.Contains(empty, "(none)") {
		t.Fatalf("empty dashboard:\n%s", empty)
	}
}

func TestAlertJSONLDeterminism(t *testing.T) {
	feed := func() *Monitor {
		m := New(Config{})
		m.Observe(ev(500*time.Millisecond, "anl", "rm.attempt.start",
			"file", "a.nc", "replica", "ncar", "n", "1"))
		for i := 2; i <= 5; i++ {
			m.Observe(ev(time.Duration(i)*time.Second, "anl", "rm.attempt.start",
				"file", "a.nc", "replica", "ncar", "n", string(rune('0'+i))))
		}
		m.AdvanceTo(vtime.Epoch.Add(20 * time.Second))
		return m
	}
	a, b := feed(), feed()
	ja, jb := a.AlertJSONL(), b.AlertJSONL()
	if ja != jb {
		t.Fatalf("equal feeds diverged:\n%s\nvs\n%s", ja, jb)
	}
	if len(a.Alerts()) == 0 {
		t.Fatal("no alerts raised")
	}
	if !strings.Contains(ja, `"detector"`) || !strings.Contains(ja, `"ts"`) {
		t.Fatalf("JSONL shape: %s", ja)
	}
	// AlertsSince pagination.
	n := len(a.Alerts())
	if got := a.AlertsSince(n); got != nil {
		t.Fatalf("AlertsSince(end) = %v", got)
	}
	if got := a.AlertsSince(-1); len(got) != n {
		t.Fatalf("AlertsSince(-1) = %d, want %d", len(got), n)
	}
}

// TestLiveTickerPublishesHealth runs the monitor in live mode on the
// virtual clock: events stream in via Subscribe while the tick loop
// publishes HostHealth/PathHealth into MDS.
func TestLiveTickerPublishesHealth(t *testing.T) {
	clk := vtime.NewSim(21)
	clk.Run(func() {
		dir := ldapd.NewDir()
		info, err := mds.New(dir)
		if err != nil {
			t.Fatal(err)
		}
		log := netlogger.NewLog(clk)
		reg := netlogger.NewRegistry(clk)
		reg.Gauge("simnet.flows.active").Set(2)
		m := New(Config{Clock: clk, Info: info, Metrics: reg})
		m.Attach(log)
		m.Start()
		defer m.Stop()

		log.Emit("anl", "rm.attempt.start", "file", "a.nc", "replica", "ncar", "n", "1")
		clk.Sleep(1500 * time.Millisecond)
		log.Emit("anl", "rm.progress",
			"file", "a.nc", "replica", "ncar", "received", "5000000", "ratebps", "40000000")
		clk.Sleep(2 * time.Second)

		hh, err := info.HostHealthFor("ncar")
		if err != nil {
			t.Fatalf("no published host health: %v", err)
		}
		if hh.Status != mds.HealthOK {
			t.Fatalf("healthy host published as %q", hh.Status)
		}
		ph, err := info.PathHealthFor("ncar", "anl")
		if err != nil {
			t.Fatalf("no published path health: %v", err)
		}
		if ph.ObservedBps != 40000000 {
			t.Fatalf("path observed = %v", ph.ObservedBps)
		}
		// Starve the transfer: the watchdog flips the published verdict.
		clk.Sleep(5 * time.Second)
		hh, err = info.HostHealthFor("ncar")
		if err != nil {
			t.Fatal(err)
		}
		if hh.Status != mds.HealthDown {
			t.Fatalf("stalled host published as %q", hh.Status)
		}
		s := m.Snapshot(m.Now())
		if s.ActiveFlows != 2 {
			t.Fatalf("flows gauge sample = %v", s.ActiveFlows)
		}
	})
}

// TestRPCRoundTrip exercises mon.snapshot and mon.alerts over esgrpc.
func TestRPCRoundTrip(t *testing.T) {
	clk := vtime.NewSim(22)
	clk.Run(func() {
		n := simnet.New(clk)
		n.AddHost("anl", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink("anl", "desk", simnet.LinkConfig{CapacityBps: 100e6, Delay: 2 * time.Millisecond})

		m := New(Config{Clock: clk})
		m.Observe(ev(500*time.Millisecond, "anl", "rm.attempt.start",
			"file", "a.nc", "replica", "ncar", "n", "1"))
		m.AdvanceTo(vtime.Epoch.Add(5 * time.Second)) // raises a stall

		srv := esgrpc.NewServer(clk, nil)
		m.RegisterRPC(srv)
		l, err := n.Host("anl").Listen(":9100")
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() { srv.Serve(l) })

		cli, err := esgrpc.Dial(clk, n.Host("desk"), "anl:9100", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		var snap Snapshot
		if err := cli.Call("mon.snapshot", nil, &snap); err != nil {
			t.Fatal(err)
		}
		if len(snap.Transfers) != 1 || snap.Transfers[0].File != "a.nc" {
			t.Fatalf("snapshot transfers = %+v", snap.Transfers)
		}
		var reply AlertsReply
		if err := cli.Call("mon.alerts", AlertsRequest{Since: 0}, &reply); err != nil {
			t.Fatal(err)
		}
		if len(reply.Alerts) != 1 || reply.Alerts[0].Detector != DetectorStall || reply.Next != 1 {
			t.Fatalf("alerts reply = %+v", reply)
		}
		// Incremental poll from Next returns nothing new.
		var more AlertsReply
		if err := cli.Call("mon.alerts", AlertsRequest{Since: reply.Next}, &more); err != nil {
			t.Fatal(err)
		}
		if len(more.Alerts) != 0 || more.Next != 1 {
			t.Fatalf("incremental reply = %+v", more)
		}
		// Detector names and Context config are exposed to pluggable users.
		for _, d := range m.detectors {
			if d.Name() == "" {
				t.Fatal("unnamed detector")
			}
		}
		if (&Context{m: m}).Config().Tick != time.Second {
			t.Fatal("context config")
		}
	})
}
