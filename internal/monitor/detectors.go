package monitor

import (
	"fmt"
	"time"

	"esgrid/internal/netlogger"
)

// Detector names, used as the Alert.Detector tag and as the key health
// derivation switches on.
const (
	DetectorStall       = "stall"
	DetectorCollapse    = "collapse"
	DetectorRetryStorm  = "retry-storm"
	DetectorTeardownGap = "teardown-gap"
	DetectorSensorDead  = "sensor-dead"
)

// Context is the view a detector gets of the monitor. Both hooks run
// with the monitor's lock held, so Context methods must not lock and
// detectors must not call back into the Monitor's public API.
type Context struct{ m *Monitor }

// Transfers returns the tracked transfers in first-seen order. The
// pointers are live: detectors may read and update the per-transfer
// detector fields.
func (c *Context) Transfers() []*Transfer {
	out := make([]*Transfer, 0, len(c.m.tOrder))
	for _, name := range c.m.tOrder {
		out = append(out, c.m.transfers[name])
	}
	return out
}

// Forecast looks up the NWS bandwidth forecast for a directed pair.
func (c *Context) Forecast(from, to string) (float64, bool) {
	if c.m.cfg.Forecast == nil {
		return 0, false
	}
	return c.m.cfg.Forecast(from, to)
}

// Raise records an alert at the given instant, charged to host.
func (c *Context) Raise(at time.Time, detector, host, subject, detail string) {
	c.m.raiseLocked(at, detector, host, subject, detail)
}

// Config exposes the monitor's tunables to custom detectors.
func (c *Context) Config() Config { return c.m.cfg }

// Detector is one pluggable anomaly rule. OnEvent sees every ingested
// event (after the monitor's own state update); OnTick fires at each
// Epoch-aligned series boundary.
type Detector interface {
	Name() string
	OnEvent(ctx *Context, ev netlogger.Event)
	OnTick(ctx *Context, now time.Time)
}

// stallDetector is the stalled-transfer watchdog: a transfer that has
// attempted at least once but advanced no bytes for `after` is stalled.
// Tape staging gets its own, longer allowance (staging legitimately
// moves no client-visible bytes). An episode alerts once; any byte
// advance re-arms.
type stallDetector struct {
	after      time.Duration
	stageAfter time.Duration
}

func (d *stallDetector) Name() string                      { return DetectorStall }
func (d *stallDetector) OnEvent(*Context, netlogger.Event) {}
func (d *stallDetector) OnTick(ctx *Context, now time.Time) {
	for _, t := range ctx.Transfers() {
		if t.State == "done" || t.Attempts == 0 || t.stallAlerted {
			continue
		}
		if t.staging {
			if idle := now.Sub(t.stagingSince); idle >= d.stageAfter {
				t.stallAlerted = true
				ctx.Raise(now, DetectorStall, t.Replica, t.File,
					fmt.Sprintf("tape staging idle %.1fs (limit %.1fs)",
						idle.Seconds(), d.stageAfter.Seconds()))
			}
			continue
		}
		if t.lastAdvance.IsZero() {
			continue
		}
		if idle := now.Sub(t.lastAdvance); idle >= d.after {
			t.stallAlerted = true
			ctx.Raise(now, DetectorStall, t.Replica, t.File,
				fmt.Sprintf("no byte progress for %.1fs (limit %.1fs)",
					idle.Seconds(), d.after.Seconds()))
		}
	}
}

// collapseDetector compares each progress sample against the NWS
// forecast for the transfer's path: `streak` consecutive samples below
// frac×forecast mean the path collapsed under its predicted capacity —
// the residual signature the SC'00 operators spotted by eye on the
// Dallas↔Berkeley link. Zero-rate samples are the stall watchdog's
// business and are excluded here.
type collapseDetector struct {
	frac   float64
	streak int
}

func (d *collapseDetector) Name() string               { return DetectorCollapse }
func (d *collapseDetector) OnTick(*Context, time.Time) {}
func (d *collapseDetector) OnEvent(ctx *Context, ev netlogger.Event) {
	if ev.Name != "rm.progress" {
		return
	}
	t := ctx.m.transfers[ev.Fields["file"]]
	if t == nil || t.Replica == "" || t.RateBps <= 0 {
		return
	}
	fc, ok := ctx.Forecast(t.Replica, t.Dest)
	if !ok {
		return
	}
	if t.RateBps < d.frac*fc {
		t.lowStreak++
		if t.lowStreak >= d.streak && !t.lowAlerted {
			t.lowAlerted = true
			ctx.Raise(ev.Time, DetectorCollapse, t.Replica, t.File,
				fmt.Sprintf("rate %.1f Mb/s < %.0f%% of %.1f Mb/s forecast for %d samples",
					t.RateBps/1e6, d.frac*100, fc/1e6, t.lowStreak))
		}
	} else {
		t.lowStreak = 0
		t.lowAlerted = false
	}
}

// retryStormDetector counts retry attempts (rm.attempt.start with n>1)
// per replica host inside a sliding window; crossing the threshold
// raises one alert, suppressed for a window so a single storm doesn't
// spam.
type retryStormDetector struct {
	window    time.Duration
	threshold int
}

func (d *retryStormDetector) Name() string               { return DetectorRetryStorm }
func (d *retryStormDetector) OnTick(*Context, time.Time) {}
func (d *retryStormDetector) OnEvent(ctx *Context, ev netlogger.Event) {
	if ev.Name != "rm.attempt.start" || ev.Fields["n"] == "1" || ev.Fields["n"] == "" {
		return
	}
	host := ev.Fields["replica"]
	if host == "" {
		return
	}
	h := ctx.m.host(host)
	h.retries = append(h.retries, ev.Time)
	keep := h.retries[:0]
	for _, r := range h.retries {
		if ev.Time.Sub(r) <= d.window {
			keep = append(keep, r)
		}
	}
	h.retries = keep
	if len(h.retries) >= d.threshold &&
		(h.lastStorm.IsZero() || ev.Time.Sub(h.lastStorm) > d.window) {
		h.lastStorm = ev.Time
		ctx.Raise(ev.Time, DetectorRetryStorm, host, host,
			fmt.Sprintf("%d retries within %.0fs", len(h.retries), d.window.Seconds()))
	}
}

// teardownGapDetector watches the idle gap between consecutive GridFTP
// retrievals served by the same host — the paper's ~0.8 s per-file TCP
// teardown cost. It learns a per-host baseline mean from healthy gaps
// and alerts when a gap regresses past factor× that baseline.
type teardownGapDetector struct {
	factor float64
	min    time.Duration
}

func (d *teardownGapDetector) Name() string               { return DetectorTeardownGap }
func (d *teardownGapDetector) OnTick(*Context, time.Time) {}
func (d *teardownGapDetector) OnEvent(ctx *Context, ev netlogger.Event) {
	switch ev.Name {
	case "gridftp.retr.end":
		ctx.m.host(ev.Host).lastRetrEnd = ev.Time
	case "gridftp.retr.start":
		h := ctx.m.host(ev.Host)
		if h.lastRetrEnd.IsZero() {
			return
		}
		gap := ev.Time.Sub(h.lastRetrEnd).Seconds()
		if h.gapN >= 3 && gap > d.factor*h.gapMean && gap > d.min.Seconds() {
			ctx.Raise(ev.Time, DetectorTeardownGap, ev.Host, ev.Host,
				fmt.Sprintf("inter-retrieval gap %.2fs vs %.2fs baseline", gap, h.gapMean))
			return // regressed gaps don't poison the baseline
		}
		h.gapN++
		h.gapMean += (gap - h.gapMean) / float64(h.gapN)
	}
}

// sensorDeadDetector listens for the nws.probe.error events the sensor
// emits (PR 4's nws bugfix) and alerts when a pair's consecutive
// failure count reaches the threshold — exactly once per outage, since
// the counter resets on the first success.
type sensorDeadDetector struct {
	failures int
}

func (d *sensorDeadDetector) Name() string               { return DetectorSensorDead }
func (d *sensorDeadDetector) OnTick(*Context, time.Time) {}
func (d *sensorDeadDetector) OnEvent(ctx *Context, ev netlogger.Event) {
	if ev.Name != "nws.probe.error" {
		return
	}
	if ev.Fields["consecutive"] != fmt.Sprint(d.failures) {
		return
	}
	pair := ev.Fields["from"] + "->" + ev.Fields["to"]
	ctx.Raise(ev.Time, DetectorSensorDead, ev.Fields["from"], pair,
		fmt.Sprintf("%d consecutive probe failures: %s", d.failures, ev.Fields["err"]))
}
