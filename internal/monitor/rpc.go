package monitor

import (
	"encoding/json"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gsi"
)

// AlertsRequest asks for alerts from index Since on; the reply carries
// the new alerts plus the next index to poll from.
type AlertsRequest struct {
	Since int `json:"since"`
}

// AlertsReply is the mon.alerts response.
type AlertsReply struct {
	Alerts []Alert `json:"alerts"`
	Next   int     `json:"next"`
}

// RegisterRPC exposes the monitor on an esgrpc server under "mon.*":
// mon.snapshot returns the full dashboard state, mon.alerts tails the
// alert stream incrementally (the esgmon live view polls both).
func (m *Monitor) RegisterRPC(srv *esgrpc.Server) {
	srv.Handle("mon.snapshot", func(_ *gsi.Peer, _ json.RawMessage) (any, error) {
		return m.Snapshot(m.Now()), nil
	})
	srv.Handle("mon.alerts", func(_ *gsi.Peer, params json.RawMessage) (any, error) {
		var req AlertsRequest
		if len(params) > 0 {
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, err
			}
		}
		as := m.AlertsSince(req.Since)
		return AlertsReply{Alerts: as, Next: req.Since + len(as)}, nil
	})
}
