package monitor

import (
	"fmt"
	"strings"
)

// RenderDashboard draws a snapshot as the esgmon text dashboard: site
// health and goodput, the live transfer table, stage-latency digests,
// and the most recent alerts (newest first).
func RenderDashboard(s Snapshot, width int) string {
	if width < 60 {
		width = 60
	}
	var b strings.Builder
	rule := strings.Repeat("=", width)
	fmt.Fprintf(&b, "esgmon — %s  (tick %d, %d alert(s), %g active flow(s))\n",
		s.Now.UTC().Format("2006-01-02 15:04:05"), s.Ticks, len(s.Alerts), s.ActiveFlows)
	b.WriteString(rule + "\n")

	b.WriteString("SITES\n")
	if len(s.Hosts) == 0 {
		b.WriteString("  (none observed)\n")
	} else {
		fmt.Fprintf(&b, "  %-16s %-9s %12s %12s %7s %7s\n",
			"host", "status", "goodput", "mean", "active", "alerts")
		for _, h := range s.Hosts {
			fmt.Fprintf(&b, "  %-16s %-9s %10.1fMb %10.1fMb %7d %7d\n",
				h.Host, h.Status, h.GoodputBps/1e6, h.MeanBps/1e6, h.Active, h.Alerts)
		}
	}

	b.WriteString("\nTRANSFERS\n")
	if len(s.Transfers) == 0 {
		b.WriteString("  (none observed)\n")
	} else {
		fmt.Fprintf(&b, "  %-28s %-12s %-8s %12s %10s %4s\n",
			"file", "replica", "state", "received", "rate", "try")
		for _, t := range s.Transfers {
			fmt.Fprintf(&b, "  %-28s %-12s %-8s %12d %8.1fMb %4d\n",
				t.File, t.Replica, t.State, t.Received, t.RateBps/1e6, t.Attempts)
		}
	}

	if len(s.Stages) > 0 {
		b.WriteString("\nSTAGE LATENCIES\n")
		fmt.Fprintf(&b, "  %-16s %6s %10s %10s %10s %10s\n", "stage", "n", "p50", "p99", "p999", "max")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "  %-16s %6d %9.3fs %9.3fs %9.3fs %9.3fs\n",
				st.Stage, st.N, st.P50, st.P99, st.P999, st.Max)
		}
	}

	b.WriteString("\nALERTS (newest first)\n")
	if len(s.Alerts) == 0 {
		b.WriteString("  (none)\n")
	} else {
		const maxShown = 12
		shown := 0
		for i := len(s.Alerts) - 1; i >= 0 && shown < maxShown; i-- {
			a := s.Alerts[i]
			fmt.Fprintf(&b, "  %s  %-13s %-12s %-24s %s\n",
				a.When().UTC().Format("15:04:05"), a.Detector, a.Host, a.Subject, a.Detail)
			shown++
		}
		if len(s.Alerts) > maxShown {
			fmt.Fprintf(&b, "  … %d earlier alert(s)\n", len(s.Alerts)-maxShown)
		}
	}
	return b.String()
}
