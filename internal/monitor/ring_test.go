package monitor

import (
	"testing"
	"time"
)

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Last() != 0 || r.Mean(0) != 0 || r.Max() != 0 {
		t.Fatal("empty ring not zero-valued")
	}
	for _, v := range []float64{1, 2, 3} {
		r.Push(v)
	}
	if got := r.Values(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Values = %v", got)
	}
	r.Push(4) // evicts 1
	if got := r.Values(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("after eviction: %v", got)
	}
	if r.Last() != 4 || r.Total() != 4 || r.Len() != 3 {
		t.Fatalf("Last=%v Total=%d Len=%d", r.Last(), r.Total(), r.Len())
	}
	if got := r.Mean(2); got != 3.5 {
		t.Fatalf("Mean(2) = %v", got)
	}
	if got := r.Mean(0); got != 3 {
		t.Fatalf("Mean(all) = %v", got)
	}
	if got := r.Max(); got != 4 {
		t.Fatalf("Max = %v", got)
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Push(7)
	r.Push(9)
	if r.Len() != 1 || r.Last() != 9 {
		t.Fatalf("capacity-1 ring: len=%d last=%v", r.Len(), r.Last())
	}
}

func TestNextBoundaryEpochAligned(t *testing.T) {
	epoch := time.Date(2000, time.November, 6, 8, 0, 0, 0, time.UTC)
	tick := time.Second
	if got := nextBoundary(epoch, tick); !got.Equal(epoch.Add(time.Second)) {
		t.Fatalf("at epoch: %v", got)
	}
	at := epoch.Add(1500 * time.Millisecond)
	if got := nextBoundary(at, tick); !got.Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("mid-interval: %v", got)
	}
	// Exactly on a boundary → strictly the next one.
	at = epoch.Add(5 * time.Second)
	if got := nextBoundary(at, tick); !got.Equal(epoch.Add(6 * time.Second)) {
		t.Fatalf("on boundary: %v", got)
	}
}
