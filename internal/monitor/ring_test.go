package monitor

import (
	"testing"
	"time"
)

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Last() != 0 || r.Mean(0) != 0 || r.Max() != 0 {
		t.Fatal("empty ring not zero-valued")
	}
	for _, v := range []float64{1, 2, 3} {
		r.Push(v)
	}
	if got := r.Values(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Values = %v", got)
	}
	r.Push(4) // evicts 1
	if got := r.Values(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("after eviction: %v", got)
	}
	if r.Last() != 4 || r.Total() != 4 || r.Len() != 3 {
		t.Fatalf("Last=%v Total=%d Len=%d", r.Last(), r.Total(), r.Len())
	}
	if got := r.Mean(2); got != 3.5 {
		t.Fatalf("Mean(2) = %v", got)
	}
	if got := r.Mean(0); got != 3 {
		t.Fatalf("Mean(all) = %v", got)
	}
	if got := r.Max(); got != 4 {
		t.Fatalf("Max = %v", got)
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Push(7)
	r.Push(9)
	if r.Len() != 1 || r.Last() != 9 {
		t.Fatalf("capacity-1 ring: len=%d last=%v", r.Len(), r.Last())
	}
}

func TestDigestQuantiles(t *testing.T) {
	var d Digest
	if d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Fatal("empty digest not zero")
	}
	// 100 observations: 90 fast (10ms), 10 slow (2s).
	for i := 0; i < 90; i++ {
		d.Observe(0.010)
	}
	for i := 0; i < 10; i++ {
		d.ObserveDuration(2 * time.Second)
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Min() != 0.010 || d.Max() != 2.0 {
		t.Fatalf("min=%v max=%v", d.Min(), d.Max())
	}
	p50 := d.Quantile(0.50)
	if p50 < 0.010 || p50 > 0.015 {
		t.Fatalf("p50 = %v, want ≈10ms bucket bound", p50)
	}
	p99 := d.Quantile(0.99)
	if p99 < 1.5 || p99 > 2.0 {
		t.Fatalf("p99 = %v, want ≈2s", p99)
	}
	if got := d.Quantile(1); got != 2.0 {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
	mean := d.Mean()
	if mean < 0.2 || mean > 0.21 {
		t.Fatalf("mean = %v, want ≈0.209", mean)
	}
	// Out-of-range inputs clamp rather than panic.
	d.Observe(-5)
	if d.Min() != 0 {
		t.Fatalf("negative observation: min = %v", d.Min())
	}
	d.Observe(1e12)
	if got, q0 := d.Quantile(-1), d.Quantile(0); got != q0 {
		t.Fatalf("Quantile(-1) = %v, want clamp to Quantile(0) = %v", got, q0)
	}
}

func TestDigestDeterminism(t *testing.T) {
	mk := func() *Digest {
		var d Digest
		for i := 0; i < 1000; i++ {
			d.Observe(float64(i%37) * 0.013)
		}
		return &d
	}
	a, b := mk(), mk()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("quantile %v differs between identical digests", q)
		}
	}
}

func TestNextBoundaryEpochAligned(t *testing.T) {
	epoch := time.Date(2000, time.November, 6, 8, 0, 0, 0, time.UTC)
	tick := time.Second
	if got := nextBoundary(epoch, tick); !got.Equal(epoch.Add(time.Second)) {
		t.Fatalf("at epoch: %v", got)
	}
	at := epoch.Add(1500 * time.Millisecond)
	if got := nextBoundary(at, tick); !got.Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("mid-interval: %v", got)
	}
	// Exactly on a boundary → strictly the next one.
	at = epoch.Add(5 * time.Second)
	if got := nextBoundary(at, tick); !got.Equal(epoch.Add(6 * time.Second)) {
		t.Fatalf("on boundary: %v", got)
	}
}
