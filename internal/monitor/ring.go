package monitor

import (
	"math"
	"time"
)

// Ring is a fixed-capacity time series: pushes overwrite the oldest
// sample once the buffer is full. The monitor keeps one per tracked
// host (goodput) plus one for the global active-flow gauge, bounding
// memory no matter how long the plane runs.
type Ring struct {
	vals  []float64
	head  int // next write position
	n     int // samples stored (<= cap)
	total int // samples ever pushed
}

// NewRing returns a ring holding the last capacity samples (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{vals: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(v float64) {
	r.vals[r.head] = v
	r.head = (r.head + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
	r.total++
}

// Len reports how many samples are held.
func (r *Ring) Len() int { return r.n }

// Total reports how many samples were ever pushed.
func (r *Ring) Total() int { return r.total }

// Last returns the most recent sample (0 when empty).
func (r *Ring) Last() float64 {
	if r.n == 0 {
		return 0
	}
	return r.vals[(r.head-1+len(r.vals))%len(r.vals)]
}

// Values returns the held samples oldest-first.
func (r *Ring) Values() []float64 {
	out := make([]float64, 0, r.n)
	start := (r.head - r.n + len(r.vals)) % len(r.vals)
	for i := 0; i < r.n; i++ {
		out = append(out, r.vals[(start+i)%len(r.vals)])
	}
	return out
}

// Mean averages the last n samples (all when n <= 0 or n > Len).
func (r *Ring) Mean(n int) float64 {
	if n <= 0 || n > r.n {
		n = r.n
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.vals[(r.head-1-i+len(r.vals)*2)%len(r.vals)]
	}
	return sum / float64(n)
}

// Max returns the largest held sample (0 when empty).
func (r *Ring) Max() float64 {
	var mx float64
	for i, v := range r.Values() {
		if i == 0 || v > mx {
			mx = v
		}
	}
	return mx
}

// Digest is a streaming percentile sketch for stage latencies:
// observations land in geometrically growing buckets (×digestGrowth
// from digestBase), so quantile queries cost O(buckets), memory is
// constant, and — unlike a sampling sketch — results are deterministic,
// which the equal-seed replay tests require.
const (
	digestBase    = 1e-6 // 1 µs, in seconds
	digestGrowth  = 1.25
	digestBuckets = 128 // covers up to ~2.6e6 s
)

type Digest struct {
	counts [digestBuckets]int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

func digestBucket(v float64) int {
	if v <= digestBase {
		return 0
	}
	i := int(math.Log(v/digestBase)/math.Log(digestGrowth)) + 1
	if i >= digestBuckets {
		i = digestBuckets - 1
	}
	return i
}

// Observe records one latency (seconds; negatives clamp to 0).
func (d *Digest) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	d.counts[digestBucket(v)]++
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// ObserveDuration records one latency.
func (d *Digest) ObserveDuration(dur time.Duration) { d.Observe(dur.Seconds()) }

// Count returns the number of observations.
func (d *Digest) Count() int64 { return d.n }

// Mean returns the mean observation (0 when empty).
func (d *Digest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min and Max return the observed extremes.
func (d *Digest) Min() float64 { return d.min }
func (d *Digest) Max() float64 { return d.max }

// Quantile returns an upper bound on the q-th quantile (q in [0,1]):
// the upper edge of the bucket holding that rank, clamped to the
// observed max.
func (d *Digest) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(d.n-1))
	var seen int64
	for i, c := range d.counts {
		seen += c
		if seen > rank {
			var hi float64
			if i == 0 {
				hi = digestBase
			} else {
				hi = digestBase * math.Pow(digestGrowth, float64(i))
			}
			if hi > d.max {
				hi = d.max
			}
			return hi
		}
	}
	return d.max
}
