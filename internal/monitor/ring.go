package monitor

// Ring is a fixed-capacity time series: pushes overwrite the oldest
// sample once the buffer is full. The monitor keeps one per tracked
// host (goodput) plus one for the global active-flow gauge, bounding
// memory no matter how long the plane runs.
type Ring struct {
	vals  []float64
	head  int // next write position
	n     int // samples stored (<= cap)
	total int // samples ever pushed
}

// NewRing returns a ring holding the last capacity samples (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{vals: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(v float64) {
	r.vals[r.head] = v
	r.head = (r.head + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
	r.total++
}

// Len reports how many samples are held.
func (r *Ring) Len() int { return r.n }

// Total reports how many samples were ever pushed.
func (r *Ring) Total() int { return r.total }

// Last returns the most recent sample (0 when empty).
func (r *Ring) Last() float64 {
	if r.n == 0 {
		return 0
	}
	return r.vals[(r.head-1+len(r.vals))%len(r.vals)]
}

// Values returns the held samples oldest-first.
func (r *Ring) Values() []float64 {
	out := make([]float64, 0, r.n)
	start := (r.head - r.n + len(r.vals)) % len(r.vals)
	for i := 0; i < r.n; i++ {
		out = append(out, r.vals[(start+i)%len(r.vals)])
	}
	return out
}

// Mean averages the last n samples (all when n <= 0 or n > Len).
func (r *Ring) Mean(n int) float64 {
	if n <= 0 || n > r.n {
		n = r.n
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.vals[(r.head-1-i+len(r.vals)*2)%len(r.vals)]
	}
	return sum / float64(n)
}

// Max returns the largest held sample (0 when empty).
func (r *Ring) Max() float64 {
	var mx float64
	for i, v := range r.Values() {
		if i == 0 || v > mx {
			mx = v
		}
	}
	return mx
}
