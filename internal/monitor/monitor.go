// Package monitor is the online operations plane the paper's SC'00 demo
// ran by hand: NWS sensors and NetLogger life-lines watched live, so the
// operators could see the Dallas↔Berkeley path degrade, attribute it,
// and annotate the timeline (§5, Figure 8). Here that becomes a
// subsystem: the monitor subscribes to the netlogger event stream,
// maintains bounded ring-buffer time series per host and transfer plus
// streaming stage-latency digests, runs pluggable anomaly detectors,
// and publishes HostHealth/PathHealth verdicts into MDS so replica
// selection can route around unhealthy paths.
//
// The plane is a pure observer by default: it never emits into the log
// it watches, keeps its alerts in its own buffer, and advances its tick
// grid deterministically (ticks are aligned to vtime.Epoch and fired
// before any event at or past the boundary), so an instrumented
// equal-seed run is byte-identical to a bare one.
package monitor

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// Config tunes the monitor plane. The zero value of every field is
// usable: defaults are filled in by New.
type Config struct {
	// Clock drives the live tick loop (Start) and stamps MDS
	// publications. Optional: a replay-mode monitor (esgmon -jsonl) has
	// no clock and advances purely on event timestamps.
	Clock vtime.Clock
	// Tick is the series sampling cadence (default 1s).
	Tick time.Duration
	// RingLen bounds every per-host series (default 120 ticks).
	RingLen int
	// Info, when set, receives HostHealth/PathHealth records each live
	// tick and supplies NWS forecasts to the collapse detector.
	Info *mds.Service
	// Metrics, when set, is sampled each tick for the active-flow gauge.
	Metrics *netlogger.Registry
	// Forecast overrides the collapse baseline lookup (defaults to
	// Info.Forecast; with neither, the collapse detector is idle).
	Forecast func(from, to string) (float64, bool)
	// Detectors replaces the default battery when non-nil.
	Detectors []Detector

	// Detector tunables (defaults in parentheses).
	StallAfter       time.Duration // no byte progress for this long → stall (3s)
	StageStallAfter  time.Duration // tape staging longer than this → stall (8s)
	CollapseFraction float64       // rate below frac×forecast counts (0.3)
	CollapseStreak   int           // consecutive low samples to alarm (3)
	RetryWindow      time.Duration // retry-storm window (15s)
	RetryThreshold   int           // retries within window to alarm (3)
	GapFactor        float64       // teardown gap vs baseline mean (4×)
	GapMin           time.Duration // ignore gaps smaller than this (1s)
	SensorFailures   int           // consecutive probe errors → dead (3)
	DecayWindow      time.Duration // how long an alert colors health (10s)
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.RingLen <= 0 {
		c.RingLen = 120
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 3 * time.Second
	}
	if c.StageStallAfter <= 0 {
		c.StageStallAfter = 8 * time.Second
	}
	if c.CollapseFraction <= 0 {
		c.CollapseFraction = 0.3
	}
	if c.CollapseStreak <= 0 {
		c.CollapseStreak = 3
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 15 * time.Second
	}
	if c.RetryThreshold <= 0 {
		c.RetryThreshold = 3
	}
	if c.GapFactor <= 0 {
		c.GapFactor = 4
	}
	if c.GapMin <= 0 {
		c.GapMin = time.Second
	}
	if c.SensorFailures <= 0 {
		c.SensorFailures = 3
	}
	if c.DecayWindow <= 0 {
		c.DecayWindow = 10 * time.Second
	}
	if c.Forecast == nil && c.Info != nil {
		info := c.Info
		c.Forecast = func(from, to string) (float64, bool) {
			f, err := info.Forecast(from, to)
			if err != nil || f.BandwidthBps <= 0 {
				return 0, false
			}
			return f.BandwidthBps, true
		}
	}
	return c
}

// Alert is one detector firing.
type Alert struct {
	Time     time.Time `json:"-"`
	TS       string    `json:"ts"` // Time in RFC3339Nano, for JSONL
	Detector string    `json:"detector"`
	Host     string    `json:"host"`    // host the anomaly is charged to
	Subject  string    `json:"subject"` // file, pair, or host
	Detail   string    `json:"detail"`
}

// When returns the alert time, recovering it from the TS string when
// the Alert crossed an RPC boundary (Time is not marshalled).
func (a Alert) When() time.Time {
	if !a.Time.IsZero() {
		return a.Time
	}
	t, _ := time.Parse(time.RFC3339Nano, a.TS)
	return t
}

// Transfer is the monitor's view of one file transfer, built from
// rm.progress samples and life-line span events.
type Transfer struct {
	File     string
	Replica  string // current source host
	Dest     string // destination host (the RM's site)
	Received int64
	RateBps  float64
	Attempts int
	State    string // queued | staging | active | done

	staging      bool
	stagingSince time.Time
	lastAdvance  time.Time // last byte progress or stage completion
	stallAlerted bool
	lowStreak    int // consecutive sub-forecast rate samples
	lowAlerted   bool
}

// hostState aggregates per-host series and alert history.
type hostState struct {
	name      string
	goodput   *Ring                // bps per tick, sum of flows touching this host
	active    int                  // transfers currently sourced from this host
	alerts    int                  // alerts charged so far
	lastAlert map[string]time.Time // detector → last raise

	lastRetrEnd time.Time // previous gridftp.retr.end, for gap baseline
	gapMean     float64
	gapN        int
	retries     []time.Time // recent retry instants (pruned to window)
	lastStorm   time.Time
}

type pairKey struct{ from, to string }

type pairState struct {
	observed float64
	forecast float64
}

type spanStart struct {
	stage string
	at    time.Time
}

// Monitor is the online plane. All state is guarded by mu; ingest
// happens on the emitting goroutine (via netlogger.Log.Subscribe) and
// the tick loop on its own clock goroutine.
type Monitor struct {
	cfg Config

	mu        sync.Mutex
	nextTick  time.Time
	ticks     int
	transfers map[string]*Transfer
	tOrder    []string
	hosts     map[string]*hostState
	hOrder    []string
	pairs     map[pairKey]*pairState
	pOrder    []pairKey
	stages    map[string]*netlogger.LogHistogram
	flows     *Ring
	starts    map[string]spanStart // trid → open staged span
	alerts    []Alert
	detectors []Detector
	lastSeen  time.Time // latest ingested event timestamp
	stopped   bool
}

// New builds a monitor. Call Attach to feed it a live log, Start to run
// the tick/publication loop, or Observe to replay recorded events.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:       cfg,
		transfers: map[string]*Transfer{},
		hosts:     map[string]*hostState{},
		pairs:     map[pairKey]*pairState{},
		stages:    map[string]*netlogger.LogHistogram{},
		flows:     NewRing(cfg.RingLen),
		starts:    map[string]spanStart{},
	}
	m.detectors = cfg.Detectors
	if m.detectors == nil {
		m.detectors = []Detector{
			&stallDetector{after: cfg.StallAfter, stageAfter: cfg.StageStallAfter},
			&collapseDetector{frac: cfg.CollapseFraction, streak: cfg.CollapseStreak},
			&retryStormDetector{window: cfg.RetryWindow, threshold: cfg.RetryThreshold},
			&teardownGapDetector{factor: cfg.GapFactor, min: cfg.GapMin},
			&sensorDeadDetector{failures: cfg.SensorFailures},
		}
	}
	if cfg.Clock != nil {
		m.nextTick = nextBoundary(cfg.Clock.Now(), cfg.Tick)
	}
	return m
}

// nextBoundary returns the first Epoch-aligned tick boundary strictly
// after t (see vtime.NextTick — the telemetry plane shares this grid).
func nextBoundary(t time.Time, tick time.Duration) time.Time {
	return vtime.NextTick(t, tick)
}

// Attach subscribes the monitor to log's event stream.
func (m *Monitor) Attach(log *netlogger.Log) { log.Subscribe(m.Observe) }

// Start launches the live tick loop: every Tick it fires any due series
// boundaries and publishes health into MDS (when Info is set). Requires
// a Clock.
func (m *Monitor) Start() {
	clk := m.cfg.Clock
	clk.Go(func() {
		for {
			clk.Sleep(m.cfg.Tick)
			m.mu.Lock()
			if m.stopped {
				m.mu.Unlock()
				return
			}
			m.advanceLocked(clk.Now())
			hh, ph := m.healthLocked(clk.Now())
			m.mu.Unlock()
			if m.cfg.Info != nil {
				for _, h := range hh {
					_ = m.cfg.Info.PublishHostHealth(h)
				}
				for _, p := range ph {
					_ = m.cfg.Info.PublishPathHealth(p)
				}
			}
		}
	})
}

// Stop halts the live tick loop.
func (m *Monitor) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
}

// Observe ingests one event: it first fires every tick boundary at or
// before the event's timestamp, then routes the event to the series and
// detectors. Feeding a recorded stream through Observe therefore
// reproduces exactly the live behavior — the tick-before-event order is
// canonical, not an accident of goroutine scheduling.
func (m *Monitor) Observe(ev netlogger.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextTick.IsZero() {
		m.nextTick = nextBoundary(ev.Time, m.cfg.Tick)
	}
	if ev.Time.After(m.lastSeen) {
		m.lastSeen = ev.Time
	}
	m.advanceLocked(ev.Time)
	m.handleLocked(ev)
}

// AdvanceTo fires every tick boundary up to t without ingesting an
// event — replay mode's stand-in for the live ticker (e.g. to let
// watchdogs inspect the quiet tail after the last recorded event).
func (m *Monitor) AdvanceTo(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextTick.IsZero() {
		m.nextTick = nextBoundary(t.Add(-m.cfg.Tick), m.cfg.Tick)
	}
	if t.After(m.lastSeen) {
		m.lastSeen = t
	}
	m.advanceLocked(t)
}

// Now reports the monitor's notion of the current instant: the clock's
// when live, else the latest event timestamp seen (replay mode).
func (m *Monitor) Now() time.Time {
	if m.cfg.Clock != nil {
		return m.cfg.Clock.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeen
}

// advanceLocked fires all tick boundaries ≤ t.
func (m *Monitor) advanceLocked(t time.Time) {
	if m.nextTick.IsZero() {
		return
	}
	for !m.nextTick.After(t) {
		m.tickLocked(m.nextTick)
		m.nextTick = m.nextTick.Add(m.cfg.Tick)
	}
}

func (m *Monitor) tickLocked(at time.Time) {
	m.ticks++
	// Sample per-host goodput: the sum of last-interval rates of
	// transfers sourced from (or landing at) each host.
	sums := map[string]float64{}
	actives := map[string]int{}
	for _, name := range m.tOrder {
		t := m.transfers[name]
		if t.State != "active" {
			continue
		}
		if t.Replica != "" {
			sums[t.Replica] += t.RateBps
			actives[t.Replica]++
		}
		if t.Dest != "" && t.Dest != t.Replica {
			sums[t.Dest] += t.RateBps
		}
	}
	for _, name := range m.hOrder {
		h := m.hosts[name]
		h.goodput.Push(sums[name])
		h.active = actives[name]
	}
	// New hosts appear in series the tick after their first event; the
	// host() call below registers them. Registration appends to hOrder,
	// which fixes snapshot and dashboard row order for the rest of the
	// run — so the names must be visited in sorted order, not map order,
	// or two hosts first seen on the same tick would land in hOrder (and
	// every exported snapshot) in a run-dependent order.
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := m.hosts[name]; !ok {
			m.host(name).goodput.Push(sums[name])
		}
	}
	if m.cfg.Metrics != nil {
		m.flows.Push(m.cfg.Metrics.Gauge("simnet.flows.active").Value())
	}
	ctx := &Context{m: m}
	for _, d := range m.detectors {
		d.OnTick(ctx, at)
	}
}

func (m *Monitor) host(name string) *hostState {
	h := m.hosts[name]
	if h == nil {
		h = &hostState{
			name:      name,
			goodput:   NewRing(m.cfg.RingLen),
			lastAlert: map[string]time.Time{},
		}
		m.hosts[name] = h
		m.hOrder = append(m.hOrder, name)
	}
	return h
}

func (m *Monitor) transfer(file string) *Transfer {
	t := m.transfers[file]
	if t == nil {
		t = &Transfer{File: file, State: "queued"}
		m.transfers[file] = t
		m.tOrder = append(m.tOrder, file)
	}
	return t
}

func (m *Monitor) pair(from, to string) *pairState {
	k := pairKey{from, to}
	p := m.pairs[k]
	if p == nil {
		p = &pairState{}
		m.pairs[k] = p
		m.pOrder = append(m.pOrder, k)
	}
	return p
}

// handleLocked routes one event into the tracked state, then to the
// detector battery.
func (m *Monitor) handleLocked(ev netlogger.Event) {
	switch ev.Name {
	case "rm.file.start":
		t := m.transfer(ev.Fields["file"])
		t.Dest = ev.Host
	case "rm.file.end":
		if f := ev.Fields["file"]; f != "" {
			t := m.transfer(f)
			t.State = "done"
			t.RateBps = 0
		}
	case "rm.attempt.start":
		t := m.transfer(ev.Fields["file"])
		t.Attempts++
		t.Replica = ev.Fields["replica"]
		if t.Dest == "" {
			t.Dest = ev.Host
		}
		if t.State != "done" {
			t.State = "active"
		}
		if t.lastAdvance.IsZero() {
			t.lastAdvance = ev.Time
		}
		m.host(t.Replica)
	case "rm.stage.start":
		if f := ev.Fields["file"]; f != "" {
			t := m.transfer(f)
			t.staging = true
			t.stagingSince = ev.Time
			t.State = "staging"
		}
	case "rm.stage.end":
		if f := ev.Fields["file"]; f != "" {
			t := m.transfer(f)
			t.staging = false
			t.lastAdvance = ev.Time
			if t.State == "staging" {
				t.State = "active"
			}
		}
	case "rm.progress":
		t := m.transfer(ev.Fields["file"])
		if r := ev.Fields["replica"]; r != "" {
			t.Replica = r
		}
		t.Dest = ev.Host
		var recv int64
		fmt.Sscanf(ev.Fields["received"], "%d", &recv)
		var rate float64
		fmt.Sscanf(ev.Fields["ratebps"], "%f", &rate)
		if recv > t.Received {
			t.Received = recv
			t.lastAdvance = ev.Time
			t.stallAlerted = false
		}
		t.RateBps = rate
		if t.Replica != "" && t.Dest != "" {
			p := m.pair(t.Replica, t.Dest)
			p.observed = rate
			if m.cfg.Forecast != nil {
				if f, ok := m.cfg.Forecast(t.Replica, t.Dest); ok {
					p.forecast = f
				}
			}
		}
	}
	// Stage-latency digests: staged life-line spans carry a unique trid
	// on both their .start and .end mirror events.
	if trid := ev.Fields["trid"]; trid != "" {
		switch {
		case strings.HasSuffix(ev.Name, ".start"):
			if st := ev.Fields["stage"]; st != "" {
				m.starts[trid] = spanStart{stage: st, at: ev.Time}
			}
		case strings.HasSuffix(ev.Name, ".end"):
			if s, ok := m.starts[trid]; ok {
				delete(m.starts, trid)
				d := m.stages[s.stage]
				if d == nil {
					d = netlogger.NewLogHistogram()
					m.stages[s.stage] = d
				}
				d.ObserveDuration(ev.Time.Sub(s.at))
			}
		}
	}
	ctx := &Context{m: m}
	for _, d := range m.detectors {
		d.OnEvent(ctx, ev)
	}
}

// raiseLocked records an alert and charges it to the host.
func (m *Monitor) raiseLocked(at time.Time, detector, host, subject, detail string) {
	m.alerts = append(m.alerts, Alert{
		Time: at, TS: at.UTC().Format(time.RFC3339Nano),
		Detector: detector, Host: host, Subject: subject, Detail: detail,
	})
	if host != "" {
		h := m.host(host)
		h.alerts++
		h.lastAlert[detector] = at
	}
}

// Alerts returns all alerts raised so far, in raise order.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// AlertsSince returns alerts from index i on (for incremental tailing).
func (m *Monitor) AlertsSince(i int) []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(m.alerts) {
		return nil
	}
	return append([]Alert(nil), m.alerts[i:]...)
}

// EncodeAlerts renders an alert stream as one JSON object per line —
// deterministic for equal-seed runs, which S14 and S16 assert byte for
// byte. The telemetry plane's grid-level SLO alerts share this encoding
// so site and grid tiers diff against the same golden files.
func EncodeAlerts(alerts []Alert) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, a := range alerts {
		_ = enc.Encode(a)
	}
	return b.String()
}

// AlertJSONL renders the alert stream via EncodeAlerts.
func (m *Monitor) AlertJSONL() string { return EncodeAlerts(m.Alerts()) }

// StageSnapshots exports the monitor's stage-latency digests as
// mergeable sketches in sorted stage order — the rows a site-level
// telemetry fold consumes. The fold is exact: merging snapshots sums
// raw bucket counts, so a site or grid quantile is computed from the
// union population, not approximated twice.
func (m *Monitor) StageSnapshots() []netlogger.NamedHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	stages := make([]string, 0, len(m.stages))
	for st := range m.stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	out := make([]netlogger.NamedHist, 0, len(stages))
	for _, st := range stages {
		out = append(out, netlogger.NamedHist{Name: st, H: m.stages[st].Snapshot()})
	}
	return out
}

// statusOf derives a host's health status from its recent alert
// history: stall-class alerts within the decay window mean down,
// anything else recent means degraded.
func (m *Monitor) statusOf(h *hostState, now time.Time) string {
	recent := func(det string) bool {
		t, ok := h.lastAlert[det]
		return ok && now.Sub(t) <= m.cfg.DecayWindow
	}
	switch {
	case recent(DetectorStall):
		return mds.HealthDown
	case recent(DetectorCollapse) || recent(DetectorRetryStorm) ||
		recent(DetectorTeardownGap) || recent(DetectorSensorDead):
		return mds.HealthDegraded
	}
	return mds.HealthOK
}

// healthLocked computes the records a live tick publishes.
func (m *Monitor) healthLocked(now time.Time) ([]mds.HostHealth, []mds.PathHealth) {
	hh := make([]mds.HostHealth, 0, len(m.hOrder))
	for _, name := range m.hOrder {
		h := m.hosts[name]
		hh = append(hh, mds.HostHealth{
			Host:            name,
			Status:          m.statusOf(h, now),
			GoodputBps:      h.goodput.Last(),
			ActiveTransfers: h.active,
			Alerts:          h.alerts,
			Updated:         now,
		})
	}
	ph := make([]mds.PathHealth, 0, len(m.pOrder))
	for _, k := range m.pOrder {
		p := m.pairs[k]
		status := mds.HealthOK
		if h, ok := m.hosts[k.from]; ok {
			status = m.statusOf(h, now)
		}
		ph = append(ph, mds.PathHealth{
			From: k.from, To: k.to,
			Status:      status,
			ObservedBps: p.observed,
			ForecastBps: p.forecast,
			Updated:     now,
		})
	}
	return hh, ph
}

// Health returns the records a tick at the given instant would publish
// (exported for replay mode and tests).
func (m *Monitor) Health(now time.Time) ([]mds.HostHealth, []mds.PathHealth) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthLocked(now)
}

// HostStat, TransferStat, StageStat, and Snapshot are the wire-friendly
// view esgmon renders.
type HostStat struct {
	Host       string  `json:"host"`
	Status     string  `json:"status"`
	GoodputBps float64 `json:"goodput_bps"`
	MeanBps    float64 `json:"mean_bps"` // over the ring
	Active     int     `json:"active"`
	Alerts     int     `json:"alerts"`
}

type TransferStat struct {
	File     string  `json:"file"`
	Replica  string  `json:"replica"`
	State    string  `json:"state"`
	Received int64   `json:"received"`
	RateBps  float64 `json:"rate_bps"`
	Attempts int     `json:"attempts"`
}

type StageStat struct {
	Stage string  `json:"stage"`
	N     int64   `json:"n"`
	P50   float64 `json:"p50_s"`
	P99   float64 `json:"p99_s"`
	P999  float64 `json:"p999_s"`
	Max   float64 `json:"max_s"`
}

type Snapshot struct {
	Now         time.Time      `json:"now"`
	Ticks       int            `json:"ticks"`
	ActiveFlows float64        `json:"active_flows"`
	Hosts       []HostStat     `json:"hosts"`
	Transfers   []TransferStat `json:"transfers"`
	Stages      []StageStat    `json:"stages"`
	Alerts      []Alert        `json:"alerts"`
}

// Snapshot captures the full dashboard state at the given instant.
func (m *Monitor) Snapshot(now time.Time) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{Now: now, Ticks: m.ticks, ActiveFlows: m.flows.Last()}
	for _, name := range m.hOrder {
		h := m.hosts[name]
		s.Hosts = append(s.Hosts, HostStat{
			Host:       name,
			Status:     m.statusOf(h, now),
			GoodputBps: h.goodput.Last(),
			MeanBps:    h.goodput.Mean(0),
			Active:     h.active,
			Alerts:     h.alerts,
		})
	}
	for _, name := range m.tOrder {
		t := m.transfers[name]
		s.Transfers = append(s.Transfers, TransferStat{
			File: t.File, Replica: t.Replica, State: t.State,
			Received: t.Received, RateBps: t.RateBps, Attempts: t.Attempts,
		})
	}
	stages := make([]string, 0, len(m.stages))
	for st := range m.stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		tail := m.stages[st].Tail()
		s.Stages = append(s.Stages, StageStat{
			Stage: st, N: tail.N,
			P50: tail.P50, P99: tail.P99, P999: tail.P999, Max: tail.Max,
		})
	}
	s.Alerts = append(s.Alerts, m.alerts...)
	return s
}
