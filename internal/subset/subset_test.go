package subset

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"esgrid/internal/cdf"
	"esgrid/internal/climate"
	"esgrid/internal/gridftp"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

func monthFile(t *testing.T) *cdf.File {
	t.Helper()
	m := climate.NewModel("pcm", climate.GridSpec{NLat: 32, NLon: 64, StepsPerMonth: 8})
	f, err := m.MonthlyFile(climate.VarTemperature, 1998, 7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("var=tas;time=0:4;lat=-30:30;lon=0:180")
	if err != nil {
		t.Fatal(err)
	}
	if s.Var != "tas" || s.TimeLo != 0 || s.TimeHi != 4 || s.LatLo != -30 || s.LonHi != 180 {
		t.Fatalf("spec = %+v", s)
	}
	for _, bad := range []string{"", "time=0:4", "var=tas;time=4", "var=tas;lat=x:y", "var=tas;junk=1:2"} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) err = %v", bad, err)
		}
	}
}

func TestApplySelectsRegion(t *testing.T) {
	f := monthFile(t)
	out, err := Apply(f, "var=tas;time=0:2;lat=-30:30;lon=0:90")
	if err != nil {
		t.Fatal(err)
	}
	shape, err := out.Shape("tas")
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 2 {
		t.Fatalf("time steps = %d", shape[0])
	}
	lats, _ := out.ReadAll("lat")
	for _, la := range lats {
		if la < -30 || la > 30 {
			t.Fatalf("lat %v outside selection", la)
		}
	}
	lons, _ := out.ReadAll("lon")
	for _, lo := range lons {
		if lo > 90 {
			t.Fatalf("lon %v outside selection", lo)
		}
	}
	// Values must equal the corresponding region of the original.
	origLats, _ := f.ReadAll("lat")
	la0 := 0
	for origLats[la0] < -30 {
		la0++
	}
	orig, err := f.ReadSlab("tas", []int{0, la0, 0}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadSlab("tas", []int{0, 0, 0}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != orig[0] {
		t.Fatalf("subset value %v != original %v", got[0], orig[0])
	}
	if out.Attrs["subset"] == "" {
		t.Fatal("provenance attr missing")
	}
}

func TestApplyEmptySelection(t *testing.T) {
	f := monthFile(t)
	if _, err := Apply(f, "var=tas;lat=91:95"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Apply(f, "var=tas;time=5:3"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Apply(f, "var=nope"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestStoreServesWholeFilesAndSubsets(t *testing.T) {
	s := NewStore()
	if err := s.PutFile("pcm.tas.1998-07.nc", monthFile(t)); err != nil {
		t.Fatal(err)
	}
	full, err := s.Stat("pcm.tas.1998-07.nc")
	if err != nil {
		t.Fatal(err)
	}
	src, err := s.OpenSubset("pcm.tas.1998-07.nc", "var=tas;time=0:2;lat=-30:30;lon=0:90")
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() >= full/4 {
		t.Fatalf("subset %d bytes not much smaller than full %d", src.Size(), full)
	}
	if _, err := s.OpenSubset("missing.nc", "var=tas"); !errors.Is(err, gridftp.ErrNoSuchFile) {
		t.Fatalf("missing file: %v", err)
	}
}

// TestESUBOverSimnet runs the ESG-II flow end to end: the client asks the
// server to subset server-side; only the extracted bytes cross the WAN,
// and the received bytes decode to the right region.
func TestESUBOverSimnet(t *testing.T) {
	clk := vtime.NewSim(1)
	n := simnet.New(clk)
	n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddHost("desk", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("ncar", "desk", simnet.LinkConfig{CapacityBps: 45e6, Delay: 20 * time.Millisecond})
	store := NewStore()
	clk.Run(func() {
		if err := store.PutFile("pcm.tas.1998-07.nc", monthFile(t)); err != nil {
			t.Fatal(err)
		}
		srv, err := gridftp.NewServer(gridftp.Config{
			Clock: clk, Net: n.Host("ncar"), Host: "ncar", Store: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, _ := n.Host("ncar").Listen(":2811")
		clk.Go(func() { srv.Serve(l) })

		cli, err := gridftp.Dial(gridftp.ClientConfig{
			Clock: clk, Net: n.Host("desk"), Parallelism: 2, BufferBytes: 1 << 20,
		}, "ncar:2811")
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()

		spec := "var=tas;time=0:2;lat=-30:30;lon=0:90"
		subSize, err := cli.SubsetSize("pcm.tas.1998-07.nc", spec)
		if err != nil {
			t.Fatal(err)
		}
		fullSize, _ := cli.Size("pcm.tas.1998-07.nc")
		if subSize <= 0 || subSize >= fullSize/4 {
			t.Fatalf("subset size %d vs full %d", subSize, fullSize)
		}
		sink := gridftp.NewBytesSink(subSize)
		st, err := cli.GetSubset("pcm.tas.1998-07.nc", spec, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
		if st.Bytes != subSize {
			t.Fatalf("moved %d bytes, want %d", st.Bytes, subSize)
		}
		got, err := cdf.Decode(bytes.NewReader(sink.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		shape, err := got.Shape("tas")
		if err != nil {
			t.Fatal(err)
		}
		if shape[0] != 2 {
			t.Fatalf("received %d time steps", shape[0])
		}
		// The unsupported-store path replies cleanly.
		vstore := gridftp.NewVirtualStore()
		vstore.Put("x", 10)
		srv2, _ := gridftp.NewServer(gridftp.Config{Clock: clk, Net: n.Host("ncar"), Host: "ncar", Store: vstore})
		l2, _ := n.Host("ncar").Listen(":2812")
		clk.Go(func() { srv2.Serve(l2) })
		cli2, err := gridftp.Dial(gridftp.ClientConfig{Clock: clk, Net: n.Host("desk")}, "ncar:2812")
		if err != nil {
			t.Fatal(err)
		}
		defer cli2.Close()
		if _, err := cli2.SubsetSize("x", "var=tas"); err == nil {
			t.Fatal("subsetting on a non-subset store succeeded")
		}
	})
}
