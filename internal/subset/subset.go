// Package subset implements ESG-II style server-side extraction and
// subsetting (§9 of the paper): a gridftp.SubsetStore over a collection
// of ESG-CDF files, so a GridFTP server can evaluate "give me tas over
// the tropics for the first four time steps" locally and ship only the
// extracted bytes — the DODS-inspired capability the paper names as the
// next step beyond whole-file transfer.
//
// Spec syntax: semicolon-separated clauses
//
//	var=tas;time=0:4;lat=-30:30;lon=0:180
//
// where time takes index bounds [lo,hi) and lat/lon take coordinate
// bounds (inclusive). Omitted clauses keep the full extent. The result
// is itself a valid ESG-CDF file containing the sliced variable and its
// coordinate variables.
package subset

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"esgrid/internal/cdf"
	"esgrid/internal/gridftp"
)

// Errors returned by spec evaluation.
var (
	ErrBadSpec = errors.New("subset: malformed spec")
	ErrEmpty   = errors.New("subset: selection is empty")
)

// Store holds encoded ESG-CDF files and serves both whole files (RETR)
// and server-side subsets (ESUB). It implements gridftp.FileStore and
// gridftp.SubsetStore.
type Store struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{files: map[string][]byte{}} }

// PutFile encodes and stores a dataset under name.
func (s *Store) PutFile(name string, f *cdf.File) error {
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = buf.Bytes()
	return nil
}

// Open implements gridftp.FileStore.
func (s *Store) Open(name string) (gridftp.Source, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", gridftp.ErrNoSuchFile, name)
	}
	return gridftp.NewBytesSource(data), nil
}

// Stat implements gridftp.FileStore.
func (s *Store) Stat(name string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", gridftp.ErrNoSuchFile, name)
	}
	return int64(len(data)), nil
}

// Create implements gridftp.FileStore (uploads of cdf files).
func (s *Store) Create(name string, size int64) (gridftp.Sink, error) {
	return &storeSink{store: s, name: name, BytesSink: gridftp.NewBytesSink(size)}, nil
}

type storeSink struct {
	*gridftp.BytesSink
	store *Store
	name  string
}

func (k *storeSink) Complete() error {
	if err := k.BytesSink.Complete(); err != nil {
		return err
	}
	k.store.mu.Lock()
	defer k.store.mu.Unlock()
	k.store.files[k.name] = k.BytesSink.Bytes()
	return nil
}

// OpenSubset implements gridftp.SubsetStore.
func (s *Store) OpenSubset(name, spec string) (gridftp.Source, error) {
	s.mu.RLock()
	data, ok := s.files[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", gridftp.ErrNoSuchFile, name)
	}
	f, err := cdf.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	out, err := Apply(f, spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := out.Encode(&buf); err != nil {
		return nil, err
	}
	return gridftp.NewBytesSource(buf.Bytes()), nil
}

// Spec is a parsed subsetting request.
type Spec struct {
	Var                     string
	TimeLo, TimeHi          int // [lo, hi) indices; TimeHi 0 = to end
	LatLo, LatHi            float64
	LonLo, LonHi            float64
	hasTime, hasLat, hasLon bool
}

// ParseSpec parses the clause syntax.
func ParseSpec(spec string) (Spec, error) {
	out := Spec{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		k, v, ok := strings.Cut(clause, "=")
		if !ok {
			return out, fmt.Errorf("%w: clause %q", ErrBadSpec, clause)
		}
		switch strings.ToLower(k) {
		case "var":
			out.Var = v
		case "time":
			lo, hi, err := parseRange(v)
			if err != nil {
				return out, err
			}
			out.TimeLo, out.TimeHi = int(lo), int(hi)
			out.hasTime = true
		case "lat":
			lo, hi, err := parseRange(v)
			if err != nil {
				return out, err
			}
			out.LatLo, out.LatHi = lo, hi
			out.hasLat = true
		case "lon":
			lo, hi, err := parseRange(v)
			if err != nil {
				return out, err
			}
			out.LonLo, out.LonHi = lo, hi
			out.hasLon = true
		default:
			return out, fmt.Errorf("%w: unknown clause %q", ErrBadSpec, k)
		}
	}
	if out.Var == "" {
		return out, fmt.Errorf("%w: missing var=", ErrBadSpec)
	}
	return out, nil
}

func parseRange(s string) (float64, float64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%w: range %q (want lo:hi)", ErrBadSpec, s)
	}
	a, err := strconv.ParseFloat(strings.TrimSpace(lo), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrBadSpec, lo)
	}
	b, err := strconv.ParseFloat(strings.TrimSpace(hi), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrBadSpec, hi)
	}
	return a, b, nil
}

// Apply evaluates a spec string against a (time, lat, lon) dataset and
// returns a new dataset holding only the selection.
func Apply(f *cdf.File, specStr string) (*cdf.File, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	shape, err := f.Shape(spec.Var)
	if err != nil {
		return nil, err
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("subset: variable %q is not (time, lat, lon)", spec.Var)
	}
	lats, err := f.ReadAll("lat")
	if err != nil {
		return nil, err
	}
	lons, err := f.ReadAll("lon")
	if err != nil {
		return nil, err
	}
	times, err := f.ReadAll("time")
	if err != nil {
		return nil, err
	}
	tLo, tHi := 0, shape[0]
	if spec.hasTime {
		tLo, tHi = spec.TimeLo, spec.TimeHi
		if tLo < 0 || tHi > shape[0] || tLo >= tHi {
			return nil, fmt.Errorf("%w: time %d:%d of %d", ErrEmpty, tLo, tHi, shape[0])
		}
	}
	latIdx := coordRange(lats, spec.hasLat, spec.LatLo, spec.LatHi)
	lonIdx := coordRange(lons, spec.hasLon, spec.LonLo, spec.LonHi)
	if len(latIdx) == 0 || len(lonIdx) == 0 {
		return nil, ErrEmpty
	}
	// Indices are contiguous for monotone coordinates; slice bounds.
	la0, laN := latIdx[0], len(latIdx)
	lo0, loN := lonIdx[0], len(lonIdx)

	slab, err := f.ReadSlab(spec.Var, []int{tLo, la0, lo0}, []int{tHi - tLo, laN, loN})
	if err != nil {
		return nil, err
	}
	vi, err := f.VarInfo(spec.Var)
	if err != nil {
		return nil, err
	}

	out := cdf.New()
	for k, v := range f.Attrs {
		out.Attrs[k] = v
	}
	out.Attrs["subset"] = specStr
	if err := out.AddDim("time", tHi-tLo); err != nil {
		return nil, err
	}
	if err := out.AddDim("lat", laN); err != nil {
		return nil, err
	}
	if err := out.AddDim("lon", loN); err != nil {
		return nil, err
	}
	if err := out.AddVar("time", cdf.Float64, []string{"time"}, nil, times[tLo:tHi]); err != nil {
		return nil, err
	}
	if err := out.AddVar("lat", cdf.Float64, []string{"lat"}, nil, lats[la0:la0+laN]); err != nil {
		return nil, err
	}
	if err := out.AddVar("lon", cdf.Float64, []string{"lon"}, nil, lons[lo0:lo0+loN]); err != nil {
		return nil, err
	}
	if err := out.AddVar(spec.Var, vi.Type, []string{"time", "lat", "lon"}, vi.Attrs, slab); err != nil {
		return nil, err
	}
	return out, nil
}

// coordRange returns the contiguous index run of coords within [lo, hi]
// (all indices when has is false).
func coordRange(coords []float64, has bool, lo, hi float64) []int {
	var idx []int
	for i, c := range coords {
		if !has || (c >= lo && c <= hi) {
			idx = append(idx, i)
		}
	}
	// Verify contiguity (monotone coordinates yield contiguous runs).
	for j := 1; j < len(idx); j++ {
		if idx[j] != idx[j-1]+1 {
			return idx[:j]
		}
	}
	return idx
}
