package gridftp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

func TestDirStoreRoundTripOverTCP(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	data := pattern(2 << 20)
	if err := os.WriteFile(filepath.Join(srcDir, "pcm.tas.nc"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Clock: vtime.Real{}, Net: transport.Real{}, Host: "127.0.0.1",
		Store: NewDirStore(srcDir),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := transport.Real{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	c, err := Dial(ClientConfig{Clock: vtime.Real{}, Net: transport.Real{}, Parallelism: 3}, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	size, err := c.Size("pcm.tas.nc")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("size = %d, %v", size, err)
	}
	dst := NewDirStore(dstDir)
	sink, err := dst.Create("copy/pcm.tas.nc", size)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("pcm.tas.nc", sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dstDir, "copy", "pcm.tas.nc"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("disk round trip corrupted content")
	}
}

func TestDirStorePathEscapes(t *testing.T) {
	d := NewDirStore(t.TempDir())
	if _, err := d.Open("../../etc/passwd"); err == nil {
		t.Fatal("path escape allowed")
	}
	if _, err := d.Stat("nope.nc"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("stat missing: %v", err)
	}
}

func TestDirStoreIncompleteNotInstalled(t *testing.T) {
	dir := t.TempDir()
	d := NewDirStore(dir)
	sink, err := d.Create("partial.nc", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Complete on empty sink: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "partial.nc")); !os.IsNotExist(err) {
		t.Fatal("incomplete file installed")
	}
}
