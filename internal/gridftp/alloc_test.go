package gridftp

import (
	"io"
	"net"
	"testing"
	"time"

	"esgrid/internal/transport"
)

// discardConn is the minimal transport.Conn for exercising the send path
// without a peer: writes vanish, reads report EOF.
type discardConn struct{}

func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return nil }
func (discardConn) RemoteAddr() net.Addr             { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// TestModeEBlockSendAllocFree guards the per-block unit of a MODE E data
// stream — header marshal plus content range send. Striped transfers emit
// one of these per block per stream, so any allocation here multiplies by
// the whole transfer.
func TestModeEBlockSendAllocFree(t *testing.T) {
	src := NewBytesSource(make([]byte, 1<<20))
	var c transport.Conn = discardConn{}
	var sendErr error
	send := func() {
		if err := writeBlockHeader(c, blockHeader{Len: 64 << 10, Off: 128}); err != nil && sendErr == nil {
			sendErr = err
		}
		if err := src.SendRange(c, 128, 64<<10); err != nil && sendErr == nil {
			sendErr = err
		}
	}
	send() // warm the header scratch pool
	allocs := testing.AllocsPerRun(1000, send)
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs > 0 {
		t.Errorf("MODE E block send allocates %.1f objects per block, want 0", allocs)
	}
}
