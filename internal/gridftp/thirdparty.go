package gridftp

import (
	"fmt"
	"time"

	"esgrid/internal/vtime"
)

// Provenance site tag(s) for the delays this package schedules on
// the virtual clock (flight-recorder attribution).
var siteRetryBackoff = vtime.RegisterSite("gridftp.retry-backoff")

// ThirdParty performs a client-mediated server-to-server transfer (§6.1:
// "third-party control of data transfer that allows a user or application
// at one site to initiate, monitor and control a data transfer operation
// between two other sites").
//
// The destination server is put into passive mode and told to STOR; the
// source server is given the destination's data address with PORT and
// told to RETR; the mediating client never touches the payload. Both
// clients should be configured with the same Parallelism.
func ThirdParty(src, dst *Client, srcPath, dstPath string) (TransferStats, error) {
	start := src.cfg.Clock.Now()
	size, err := src.Size(srcPath)
	if err != nil {
		return TransferStats{}, fmt.Errorf("gridftp: third-party size: %w", err)
	}
	if _, err := dst.simple(fmt.Sprintf("ALLO %d", size)); err != nil {
		return TransferStats{}, err
	}
	addrs, err := dst.negotiateData()
	if err != nil {
		return TransferStats{}, err
	}
	if _, err := src.simple("PORT " + addrs[0]); err != nil {
		return TransferStats{}, err
	}
	if err := dst.ct.sendLine("STOR " + dstPath); err != nil {
		return TransferStats{}, err
	}
	r, err := dst.ct.readResponse()
	if err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeOpenData {
		return TransferStats{}, r.err()
	}
	if err := src.ct.sendLine("RETR " + srcPath); err != nil {
		return TransferStats{}, err
	}
	if r, err = src.ct.readResponse(); err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeOpenData {
		return TransferStats{}, r.err()
	}
	// Both servers now move data directly; wait for both completions.
	if r, err = src.ct.readResponse(); err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeTransferOK {
		return TransferStats{}, r.err()
	}
	if r, err = dst.ct.readResponse(); err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeTransferOK {
		return TransferStats{}, r.err()
	}
	return TransferStats{
		Bytes:    size,
		Duration: src.cfg.Clock.Now().Sub(start),
		Streams:  src.cfg.Parallelism,
		Stripes:  1,
	}, nil
}

// GetWithRetry drives Get with extent-based restart on clk: after a
// transient failure it redials the control session if needed, waits out
// the backoff, and re-requests only the missing ranges, up to
// maxAttempts. This is the "reliable, restartable data transfer"
// behaviour of §6.1 that Figure 8 demonstrates across network outages.
// It returns the aggregate stats, the number of attempts used, and the
// final error, if any.
func GetWithRetry(clk vtime.Clock, mk func() (*Client, error), path string, sink Sink, size int64, maxAttempts int, backoff time.Duration) (TransferStats, int, error) {
	var agg TransferStats
	var cli *Client
	defer func() {
		if cli != nil {
			cli.Close()
		}
	}()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 && backoff > 0 {
			vtime.SleepTagged(clk, siteRetryBackoff, backoff)
		}
		if cli == nil {
			c, err := mk()
			if err != nil {
				// New session cannot be created (DNS down, power failure):
				// back off and retry.
				lastErr = err
				continue
			}
			cli = c
		}
		missing := MissingRanges(sink, size)
		if len(missing) == 0 {
			return agg, attempt - 1, nil
		}
		var st TransferStats
		var err error
		if len(missing) == 1 && missing[0].Off == 0 && missing[0].Len == size {
			st, err = cli.Get(path, sink)
		} else {
			st, err = cli.GetRanges(path, sink, missing)
		}
		agg.Bytes += st.Bytes
		agg.Duration += st.Duration
		if st.Streams > agg.Streams {
			agg.Streams = st.Streams
			agg.Stripes = st.Stripes
		}
		if err == nil {
			return agg, attempt, nil
		}
		lastErr = err
		// The control session may be dead; rebuild it next attempt.
		cli.Close()
		cli = nil
	}
	return agg, maxAttempts, fmt.Errorf("gridftp: transfer failed after %d attempts: %w", maxAttempts, lastErr)
}
