package gridftp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"esgrid/internal/transport"
)

// DirStore serves and stores real files under a directory tree; it backs
// the cmd/esgd daemon when running over real TCP. Logical names are
// slash-separated relative paths; ".." escapes are rejected.
type DirStore struct {
	root string
}

// NewDirStore returns a store rooted at dir.
func NewDirStore(dir string) *DirStore { return &DirStore{root: dir} }

func (d *DirStore) resolve(name string) (string, error) {
	clean := filepath.Clean("/" + filepath.FromSlash(name))
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("gridftp: invalid path %q", name)
	}
	return filepath.Join(d.root, clean), nil
}

// Open implements FileStore.
func (d *DirStore) Open(name string) (Source, error) {
	path, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSource{f: f, size: info.Size()}, nil
}

// Stat implements FileStore.
func (d *DirStore) Stat(name string) (int64, error) {
	path, err := d.resolve(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return info.Size(), nil
}

// Create implements FileStore: ranges are written into a sparse temp
// file, renamed into place on Complete.
func (d *DirStore) Create(name string, size int64) (Sink, error) {
	path, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".esg-incoming-*")
	if err != nil {
		return nil, err
	}
	if err := tmp.Truncate(size); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &fileSink{f: tmp, size: size, final: path}, nil
}

// fileSource streams ranges of an os file.
type fileSource struct {
	f    *os.File
	size int64
}

func (s *fileSource) Size() int64  { return s.size }
func (s *fileSource) Close() error { return s.f.Close() }

func (s *fileSource) SendRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > s.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, s.size)
	}
	_, err := io.Copy(c, io.NewSectionReader(s.f, off, n))
	return err
}

// fileSink writes ranges into a temp file and installs it when complete.
type fileSink struct {
	mu    sync.Mutex
	f     *os.File
	size  int64
	final string
	ext   extentSet
	done  bool
}

// copyBufPool recycles the 256 KiB staging buffers fileSink uses to move
// stream data onto disk; allocating one per ReceiveRange call churned the
// heap badly under many small ranges.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 256<<10)
		return &b
	},
}

func (s *fileSink) ReceiveRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > s.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, s.size)
	}
	bufp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bufp)
	buf := *bufp
	var written int64
	for written < n {
		chunk := int64(len(buf))
		if rem := n - written; rem < chunk {
			chunk = rem
		}
		m, err := io.ReadFull(c, buf[:chunk])
		if m > 0 {
			if _, werr := s.f.WriteAt(buf[:m], off+written); werr != nil {
				return werr
			}
			written += int64(m)
		}
		if err != nil {
			return err
		}
	}
	s.ext.add(off, n)
	return nil
}

func (s *fileSink) Complete() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	if !s.ext.covers(s.size) {
		return fmt.Errorf("%w: have %v of %d bytes", ErrIncomplete, s.ext.covered(), s.size)
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	name := s.f.Name()
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, s.final); err != nil {
		return err
	}
	s.done = true
	return nil
}

func (s *fileSink) Received() []Extent { return s.ext.covered() }
