// Package gridftp implements the GridFTP protocol of §6.1: an FTP-derived
// control channel with the Grid extensions the paper lists — GSI
// authentication, parallel TCP data streams, striped multi-host
// transfers, partial file retrieval, TCP buffer negotiation, reliable
// restartable transfers with restart markers, third-party transfer, and
// (the post-SC'00 additions of §7) data-channel caching and 64-bit
// offsets for files over 2 GB.
//
// The same implementation runs over real TCP and over the simulated WAN;
// bulk payload uses the transport virtual fast path when the connection
// offers it, so simulated transfers move only byte counts.
package gridftp

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"esgrid/internal/transport"
)

// Errors returned by content stores.
var (
	ErrNoSuchFile    = errors.New("gridftp: no such file")
	ErrRange         = errors.New("gridftp: byte range outside file")
	ErrIncomplete    = errors.New("gridftp: received data does not cover the file")
	ErrStoreReadOnly = errors.New("gridftp: store is read-only")
)

// Source provides file content for sending. Implementations exist for
// real in-memory bytes and for virtual (length-only) content.
type Source interface {
	// Size returns the file length in bytes.
	Size() int64
	// SendRange transmits bytes [off, off+n) of the file onto c.
	SendRange(c transport.Conn, off, n int64) error
	// Close releases the source.
	Close() error
}

// Sink receives file content. ReceiveRange calls may arrive out of order
// and concurrently (parallel streams write disjoint ranges).
type Sink interface {
	// ReceiveRange consumes n bytes at offset off from c.
	ReceiveRange(c transport.Conn, off, n int64) error
	// Complete finalizes the file once all expected ranges arrived; it
	// reports ErrIncomplete when coverage has holes.
	Complete() error
	// Received reports the extent set currently covered, coalesced.
	Received() []Extent
}

// Extent is a half-open byte range [Off, Off+Len).
type Extent struct {
	Off, Len int64
}

// extentSet tracks coverage of a byte range, coalescing adjacent extents.
type extentSet struct {
	mu  sync.Mutex
	ext []Extent // sorted, disjoint, coalesced
}

func (s *extentSet) add(off, n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// ext is kept sorted, so sift the new extent into place instead of
	// re-sorting the whole set per block (sort.Slice also allocates its
	// swapper on every call).
	s.ext = append(s.ext, Extent{off, n})
	for i := len(s.ext) - 1; i > 0 && s.ext[i-1].Off > off; i-- {
		s.ext[i], s.ext[i-1] = s.ext[i-1], s.ext[i]
	}
	out := s.ext[:0]
	for _, e := range s.ext {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if e.Off <= last.Off+last.Len {
				if end := e.Off + e.Len; end > last.Off+last.Len {
					last.Len = end - last.Off
				}
				continue
			}
		}
		out = append(out, e)
	}
	s.ext = out
}

func (s *extentSet) covered() []Extent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Extent(nil), s.ext...)
}

// covers reports whether [0, size) is fully covered.
func (s *extentSet) covers(size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ext) == 1 && s.ext[0].Off == 0 && s.ext[0].Len >= size ||
		size == 0 && len(s.ext) == 0
}

// bytesSource serves real in-memory content.
type bytesSource struct{ data []byte }

// NewBytesSource wraps data as a Source.
func NewBytesSource(data []byte) Source { return &bytesSource{data} }

func (b *bytesSource) Size() int64  { return int64(len(b.data)) }
func (b *bytesSource) Close() error { return nil }

func (b *bytesSource) SendRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > int64(len(b.data)) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, len(b.data))
	}
	_, err := c.Write(b.data[off : off+n])
	return err
}

// bytesSink collects real content into memory. Writers land in disjoint
// ranges of data (the extent set serializes its own bookkeeping), so no
// sink-wide lock is needed.
type bytesSink struct {
	data []byte
	size int64
	ext  extentSet
}

// NewBytesSink returns a Sink buffering a file of the given size.
func NewBytesSink(size int64) *BytesSink {
	return &BytesSink{s: bytesSink{data: make([]byte, size), size: size}}
}

// BytesSink is the exported handle to an in-memory sink.
type BytesSink struct{ s bytesSink }

// ReceiveRange implements Sink. Parallel streams carry disjoint ranges,
// so each call reads straight into its own slice of the backing buffer —
// no staging copy, and no lock held across the (blocking) network read.
func (b *BytesSink) ReceiveRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > b.s.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, b.s.size)
	}
	if _, err := io.ReadFull(c, b.s.data[off:off+n]); err != nil {
		return err
	}
	b.s.ext.add(off, n)
	return nil
}

// Complete implements Sink.
func (b *BytesSink) Complete() error {
	if !b.s.ext.covers(b.s.size) {
		return fmt.Errorf("%w: have %v of %d bytes", ErrIncomplete, b.s.ext.covered(), b.s.size)
	}
	return nil
}

// Received implements Sink.
func (b *BytesSink) Received() []Extent { return b.s.ext.covered() }

// Bytes returns the assembled content (call after Complete).
func (b *BytesSink) Bytes() []byte { return b.s.data }

// virtualSource serves length-only content through the virtual fast path.
type virtualSource struct{ size int64 }

// NewVirtualSource returns a Source of the given logical size with no
// backing bytes; payload moves via transport.WriteVirtualTo.
func NewVirtualSource(size int64) Source { return &virtualSource{size} }

func (v *virtualSource) Size() int64  { return v.size }
func (v *virtualSource) Close() error { return nil }

func (v *virtualSource) SendRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > v.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, v.size)
	}
	_, err := transport.WriteVirtualTo(c, n)
	return err
}

// VirtualSink verifies coverage of a virtual transfer.
type VirtualSink struct {
	size int64
	ext  extentSet
}

// NewVirtualSink returns a Sink for a virtual file of the given size.
func NewVirtualSink(size int64) *VirtualSink { return &VirtualSink{size: size} }

// ReceiveRange implements Sink.
func (v *VirtualSink) ReceiveRange(c transport.Conn, off, n int64) error {
	if off < 0 || n < 0 || off+n > v.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrRange, off, off+n, v.size)
	}
	if _, err := transport.ReadVirtualFrom(c, n); err != nil {
		return err
	}
	v.ext.add(off, n)
	return nil
}

// Complete implements Sink.
func (v *VirtualSink) Complete() error {
	if !v.ext.covers(v.size) {
		return fmt.Errorf("%w: covered %v of %d bytes", ErrIncomplete, v.ext.covered(), v.size)
	}
	return nil
}

// Received implements Sink.
func (v *VirtualSink) Received() []Extent { return v.ext.covered() }

// FileStore is the storage backend behind a GridFTP server — the uniform
// interface to heterogeneous storage systems that motivates GridFTP
// (§6.1). Implementations: MemStore (disk server), VirtualStore
// (simulated multi-gigabyte archives), and hrm.Store (HPSS-style
// staged mass storage).
type FileStore interface {
	// Open returns a Source for the named file.
	Open(name string) (Source, error)
	// Create returns a Sink for writing the named file of a known size.
	Create(name string, size int64) (Sink, error)
	// Stat returns the file's size.
	Stat(name string) (int64, error)
}

// MemStore holds real file content in memory.
type MemStore struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{files: map[string][]byte{}} }

// Put inserts content.
func (m *MemStore) Put(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

// Get returns stored content.
func (m *MemStore) Get(name string) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.files[name]
	return d, ok
}

// Open implements FileStore.
func (m *MemStore) Open(name string) (Source, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return NewBytesSource(d), nil
}

// Stat implements FileStore.
func (m *MemStore) Stat(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return int64(len(d)), nil
}

// Create implements FileStore: the sink's content is installed into the
// store when Complete succeeds.
func (m *MemStore) Create(name string, size int64) (Sink, error) {
	return &memStoreSink{store: m, name: name, BytesSink: NewBytesSink(size)}, nil
}

type memStoreSink struct {
	*BytesSink
	store *MemStore
	name  string
}

func (s *memStoreSink) Complete() error {
	if err := s.BytesSink.Complete(); err != nil {
		return err
	}
	s.store.Put(s.name, s.BytesSink.Bytes())
	return nil
}

// VirtualStore records file names and logical sizes only; content is
// virtual. Receiving a file records its size, so a transferred file can
// be re-served.
type VirtualStore struct {
	mu    sync.RWMutex
	files map[string]int64
}

// NewVirtualStore returns an empty store.
func NewVirtualStore() *VirtualStore { return &VirtualStore{files: map[string]int64{}} }

// Put registers a virtual file.
func (m *VirtualStore) Put(name string, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = size
}

// Has reports whether the store holds name.
func (m *VirtualStore) Has(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.files[name]
	return ok
}

// Open implements FileStore.
func (m *VirtualStore) Open(name string) (Source, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	size, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return NewVirtualSource(size), nil
}

// Stat implements FileStore.
func (m *VirtualStore) Stat(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	size, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return size, nil
}

// Create implements FileStore.
func (m *VirtualStore) Create(name string, size int64) (Sink, error) {
	return &virtualStoreSink{store: m, name: name, size: size, VirtualSink: NewVirtualSink(size)}, nil
}

type virtualStoreSink struct {
	*VirtualSink
	store *VirtualStore
	name  string
	size  int64
}

func (s *virtualStoreSink) Complete() error {
	if err := s.VirtualSink.Complete(); err != nil {
		return err
	}
	s.store.Put(s.name, s.size)
	return nil
}
