package gridftp

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"esgrid/internal/gsi"
	"esgrid/internal/netlogger"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// DefaultBlockSize is the MODE E block size used when Config.BlockSize is
// zero. Large blocks amortize per-block header cost in the simulator.
const DefaultBlockSize = 4 << 20

// DataNode is one stripe backend: a host that moves file content. A
// plain server has a single data node colocated with the control channel;
// a striped server (§6.1 "striped data transfer ... across multiple
// hosts") lists several.
type DataNode struct {
	// Net is the node's transport (its host in the simulator).
	Net transport.Network
	// Host is the advertised hostname for passive-mode replies.
	Host string
}

// Config configures a GridFTP server.
type Config struct {
	// Clock schedules handler goroutines; required.
	Clock vtime.Clock
	// Net is the control-channel host; also the default data node.
	Net transport.Network
	// Host is the advertised hostname.
	Host string
	// Auth, when non-nil, requires GSI authentication before any
	// transfer command.
	Auth *gsi.Config
	// Store backs RETR/STOR/SIZE.
	Store FileStore
	// BlockSize is the MODE E block size (DefaultBlockSize if zero).
	BlockSize int64
	// DataNodes lists stripe backends; nil means one node on Net/Host.
	DataNodes []DataNode
	// DiskBound marks data connections as staged through this host's
	// disk, engaging the simulator's disk-rate cap (Figure 8).
	DiskBound bool
	// Log, when non-nil, receives server-side life-line events
	// (gridftp.retr.start/end, gridftp.stor.start/end) tagged with the
	// trace context the client propagated via TRID.
	Log *netlogger.Log
}

// Server is a GridFTP server instance.
type Server struct {
	cfg       Config
	blockSize int64
	nodes     []DataNode

	mu       sync.Mutex
	listener transport.Listener
}

// NewServer validates cfg and returns a server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Clock == nil || cfg.Net == nil || cfg.Store == nil {
		return nil, errors.New("gridftp: config needs Clock, Net and Store")
	}
	s := &Server{cfg: cfg, blockSize: cfg.BlockSize}
	if s.blockSize <= 0 {
		s.blockSize = DefaultBlockSize
	}
	s.nodes = cfg.DataNodes
	if len(s.nodes) == 0 {
		s.nodes = []DataNode{{Net: cfg.Net, Host: cfg.Host}}
	}
	return s, nil
}

// Serve accepts control connections until the listener closes.
func (s *Server) Serve(l transport.Listener) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.cfg.Clock.Go(func() { s.handle(c) })
	}
}

// Close stops accepting control connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		s.listener.Close()
	}
}

// session is per-control-connection state.
type session struct {
	srv  *Server
	ct   *ctrl
	peer *gsi.Peer

	buffer      int
	parallelism int
	cache       bool
	mode        byte
	restRanges  []Extent
	allocSize   int64
	trid        string // life-line trace context from TRID

	nodes []*nodeState
}

// nodeState is the per-stripe-node data-channel state of one session.
type nodeState struct {
	node     DataNode
	listener transport.Listener
	conns    []transport.Conn
	portAddr string // active-mode target ("" = passive)
}

func (s *Server) handle(conn transport.Conn) {
	ct := newCtrl(conn)
	sess := &session{srv: s, ct: ct, parallelism: 1, mode: 'E'}
	for _, n := range s.nodes {
		sess.nodes = append(sess.nodes, &nodeState{node: n})
	}
	defer func() {
		conn.Close()
		sess.teardownData()
	}()
	if err := ct.reply(codeReady, "ESG GridFTP server ready"); err != nil {
		return
	}
	for {
		line, err := ct.readLine()
		if err != nil {
			return
		}
		cmd, arg := splitCommand(line)
		if !sess.authed() && cmd != "AUTH" && cmd != "FEAT" && cmd != "QUIT" && cmd != "NOOP" {
			if err := ct.reply(codeNotAuthed, "please authenticate with AUTH GSI"); err != nil {
				return
			}
			continue
		}
		var cerr error
		switch cmd {
		case "AUTH":
			cerr = sess.cmdAuth(conn, arg)
		case "FEAT":
			cerr = ct.replyMulti(codeFeat, "Extensions supported:", []string{
				"AUTH GSI", "SIZE", "SBUF", "MODE E", "PASV", "SPAS", "PORT",
				"ERET", "ESUB", "XSUB", "REST STREAM", "ALLO", "PARALLELISM", "CHANNEL-CACHING", "SIZE64", "TRID",
			}, "END")
		case "NOOP":
			cerr = ct.reply(codeCmdOK, "ok")
		case "TYPE":
			cerr = ct.reply(codeCmdOK, "type set to I")
		case "MODE":
			cerr = sess.cmdMode(arg)
		case "SBUF":
			cerr = sess.cmdSbuf(arg)
		case "TRID":
			sess.trid = arg
			cerr = ct.reply(codeCmdOK, "trace context noted")
		case "OPTS":
			cerr = sess.cmdOpts(arg)
		case "SIZE":
			cerr = sess.cmdSize(arg)
		case "ALLO":
			cerr = sess.cmdAllo(arg)
		case "REST":
			cerr = sess.cmdRest(arg)
		case "PASV":
			cerr = sess.cmdPasv(false)
		case "SPAS":
			cerr = sess.cmdPasv(true)
		case "PORT":
			cerr = sess.cmdPort(arg)
		case "RETR":
			cerr = sess.cmdRetr(arg, nil)
		case "ERET":
			cerr = sess.cmdEret(arg)
		case "ESUB":
			cerr = sess.cmdEsub(arg)
		case "XSUB":
			cerr = sess.cmdXsub(arg)
		case "STOR":
			cerr = sess.cmdStor(arg)
		case "QUIT":
			ct.reply(codeBye, "goodbye")
			return
		default:
			cerr = ct.reply(codeBadCmd, "unknown command %q", cmd)
		}
		if cerr != nil {
			return
		}
	}
}

func (sess *session) authed() bool {
	return sess.srv.cfg.Auth == nil || sess.peer != nil
}

func (sess *session) cmdAuth(conn transport.Conn, arg string) error {
	if !strings.EqualFold(arg, "GSI") {
		return sess.ct.reply(codeBadParam, "only AUTH GSI is supported")
	}
	if sess.srv.cfg.Auth == nil {
		return sess.ct.reply(codeAuthOK, "security not required")
	}
	if err := sess.ct.reply(codeAuthProceed, "proceed with GSI handshake"); err != nil {
		return err
	}
	// The handshake frames must be read through the session's buffered
	// reader so no bytes are lost.
	rw := struct {
		io.Reader
		io.Writer
	}{sess.ct.br, conn}
	peer, err := sess.srv.cfg.Auth.Server(rw)
	if err != nil {
		sess.ct.reply(codeNotAuthed, "authentication failed: %v", err)
		return fmt.Errorf("gridftp: auth: %w", err)
	}
	sess.peer = peer
	return sess.ct.reply(codeAuthOK, "authenticated as %s", peer.Subject)
}

func (sess *session) cmdMode(arg string) error {
	switch strings.ToUpper(arg) {
	case "E":
		sess.mode = 'E'
	case "S":
		// Stream mode is accepted for compatibility; transfers use the
		// extended-block framing internally in both cases.
		sess.mode = 'S'
	default:
		return sess.ct.reply(codeBadParam, "mode %q not supported", arg)
	}
	return sess.ct.reply(codeCmdOK, "mode set to %s", strings.ToUpper(arg))
}

func (sess *session) cmdSbuf(arg string) error {
	n, err := strconv.Atoi(arg)
	if err != nil || n <= 0 {
		return sess.ct.reply(codeBadParam, "bad buffer size %q", arg)
	}
	sess.buffer = n
	return sess.ct.reply(codeCmdOK, "socket buffer set to %d", n)
}

// splitCommand splits one control-channel line into its verb (upper-cased)
// and argument. Pure, so the command parser can be fuzzed without a
// session.
func splitCommand(line string) (cmd, arg string) {
	cmd = line
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, arg = line[:i], line[i+1:]
	}
	return strings.ToUpper(cmd), arg
}

// optsSettings is the outcome of parsing an OPTS argument.
type optsSettings struct {
	parallelism int  // 0: leave unchanged
	cacheSet    bool // the CHANNELS Cache option was present
	cache       bool
}

// parseOpts parses the argument of an OPTS command ("RETR
// Parallelism=4;" or "CHANNELS Cache=on"). Pure, so it can be fuzzed.
func parseOpts(arg string) (optsSettings, error) {
	var set optsSettings
	parts := strings.SplitN(arg, " ", 2)
	if len(parts) != 2 {
		return set, fmt.Errorf("OPTS needs a target and options")
	}
	target, opts := strings.ToUpper(parts[0]), parts[1]
	switch target {
	case "RETR", "STOR":
		for _, kv := range strings.Split(opts, ";") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return set, fmt.Errorf("bad option %q", kv)
			}
			switch strings.ToLower(k) {
			case "parallelism":
				p, err := strconv.Atoi(v)
				if err != nil || p < 1 || p > 64 {
					return set, fmt.Errorf("bad parallelism %q", v)
				}
				set.parallelism = p
			default:
				return set, fmt.Errorf("unknown option %q", k)
			}
		}
	case "CHANNELS":
		k, v, _ := strings.Cut(opts, "=")
		if !strings.EqualFold(k, "cache") {
			return set, fmt.Errorf("unknown channel option %q", k)
		}
		set.cacheSet = true
		set.cache = strings.EqualFold(v, "on") || v == "1"
	default:
		return set, fmt.Errorf("OPTS target %q not supported", target)
	}
	return set, nil
}

func (sess *session) cmdOpts(arg string) error {
	set, err := parseOpts(arg)
	if err != nil {
		return sess.ct.reply(codeBadParam, "%v", err)
	}
	if set.parallelism > 0 {
		sess.parallelism = set.parallelism
	}
	if set.cacheSet {
		sess.cache = set.cache
	}
	return sess.ct.reply(codeCmdOK, "options accepted")
}

func (sess *session) cmdSize(arg string) error {
	n, err := sess.srv.cfg.Store.Stat(arg)
	if err != nil {
		return sess.ct.reply(codeNoFile, "%v", err)
	}
	return sess.ct.reply(codeSize, "%d", n)
}

func (sess *session) cmdAllo(arg string) error {
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || n < 0 {
		return sess.ct.reply(codeBadParam, "bad size %q", arg)
	}
	sess.allocSize = n
	return sess.ct.reply(codeCmdOK, "allocation noted")
}

func (sess *session) cmdRest(arg string) error {
	off, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || off < 0 {
		return sess.ct.reply(codeBadParam, "bad restart offset %q", arg)
	}
	sess.restRanges = []Extent{{Off: off, Len: -1}} // -1: to end of file
	return sess.ct.reply(codeRestProceed, "restarting at %d", off)
}

// cmdPasv opens (or reuses) data listeners. PASV uses only the first
// node; SPAS advertises every stripe node.
func (sess *session) cmdPasv(striped bool) error {
	nodes := sess.nodes[:1]
	if striped {
		nodes = sess.nodes
	}
	var addrs []string
	for _, ns := range nodes {
		ns.portAddr = ""
		if ns.listener == nil {
			l, err := ns.node.Net.Listen(":0")
			if err != nil {
				return sess.ct.reply(codeBadParam, "cannot open data port: %v", err)
			}
			ns.listener = l
		}
		_, port := transport.SplitHostPort(ns.listener.Addr().String())
		addrs = append(addrs, fmt.Sprintf("%s:%d", ns.node.Host, port))
	}
	if striped {
		return sess.ct.replyMulti(codeStripedPassive, "Entering Striped Passive Mode", addrs, "END")
	}
	return sess.ct.reply(codePassive, "Entering Passive Mode (%s)", addrs[0])
}

// cmdPort records the active-mode target for the first data node.
func (sess *session) cmdPort(arg string) error {
	if arg == "" {
		return sess.ct.reply(codeBadParam, "PORT needs host:port")
	}
	ns := sess.nodes[0]
	ns.portAddr = arg
	if ns.listener != nil {
		ns.listener.Close()
		ns.listener = nil
	}
	return sess.ct.reply(codeCmdOK, "PORT accepted")
}

// activeNodes returns the nodes participating in the next transfer: all
// of them if SPAS was issued (every node has a listener), else just the
// first.
func (sess *session) activeNodes() []*nodeState {
	var active []*nodeState
	for _, ns := range sess.nodes {
		if ns.listener != nil || ns.portAddr != "" {
			active = append(active, ns)
		}
	}
	if len(active) == 0 {
		active = sess.nodes[:1]
	}
	return active
}

// obtainConns ensures the node has exactly p data connections, reusing
// cached ones (data-channel caching, §7) and accepting or dialing more.
func (ns *nodeState) obtainConns(sess *session, p int) ([]transport.Conn, error) {
	for len(ns.conns) > p {
		last := len(ns.conns) - 1
		ns.conns[last].Close()
		ns.conns = ns.conns[:last]
	}
	for len(ns.conns) < p {
		var c transport.Conn
		var err error
		if ns.portAddr != "" {
			c, err = ns.node.Net.Dial(ns.portAddr)
		} else if ns.listener != nil {
			c, err = ns.listener.Accept()
		} else {
			return nil, errors.New("gridftp: no data port negotiated (send PASV/SPAS/PORT first)")
		}
		if err != nil {
			return nil, err
		}
		sess.tuneDataConn(c)
		ns.conns = append(ns.conns, c)
	}
	return ns.conns, nil
}

// tuneDataConn applies buffer tuning and disk binding to a data conn.
func (sess *session) tuneDataConn(c transport.Conn) {
	if sess.buffer > 0 {
		if t, ok := c.(interface{ SetBuffer(int) }); ok {
			t.SetBuffer(sess.buffer)
		}
	}
	if sess.srv.cfg.DiskBound {
		if t, ok := c.(interface{ SetDiskBound(bool) }); ok {
			t.SetDiskBound(true)
		}
	}
}

// afterTransfer closes data channels unless caching is on.
func (sess *session) afterTransfer() {
	if sess.cache {
		return
	}
	sess.teardownData()
}

func (sess *session) teardownData() {
	for _, ns := range sess.nodes {
		for _, c := range ns.conns {
			c.Close()
		}
		ns.conns = nil
		if ns.listener != nil {
			ns.listener.Close()
			ns.listener = nil
		}
	}
}

func (sess *session) takeRestRanges(size int64) []Extent {
	rs := sess.restRanges
	sess.restRanges = nil
	if rs == nil {
		return []Extent{{Off: 0, Len: size}}
	}
	for i := range rs {
		if rs[i].Len < 0 {
			rs[i].Len = size - rs[i].Off
		}
	}
	return rs
}

func (sess *session) cmdRetr(path string, ranges []Extent) error {
	src, err := sess.srv.cfg.Store.Open(path)
	if err != nil {
		return sess.ct.reply(codeNoFile, "%v", err)
	}
	defer src.Close()
	if ranges == nil {
		ranges = sess.takeRestRanges(src.Size())
	}
	for _, r := range ranges {
		if r.Off < 0 || r.Len <= 0 || r.Off+r.Len > src.Size() {
			return sess.ct.reply(codeBadParam, "range [%d,%d) outside file of %d bytes", r.Off, r.Off+r.Len, src.Size())
		}
	}
	if err := sess.ct.reply(codeOpenData, "opening data connection(s)"); err != nil {
		return err
	}
	sess.emit("gridftp.retr.start", "path", path)
	if err := sess.runSend(src, ranges); err != nil {
		sess.emit("gridftp.retr.end", "path", path, "err", err.Error())
		return sess.ct.reply(codeXferFailed, "transfer failed: %v", err)
	}
	sess.emit("gridftp.retr.end", "path", path)
	sess.afterTransfer()
	return sess.ct.reply(codeTransferOK, "transfer complete")
}

// emit records a server-side life-line event tagged with the session's
// propagated trace context.
func (sess *session) emit(name string, kv ...string) {
	log := sess.srv.cfg.Log
	if log == nil {
		return
	}
	if sess.trid != "" {
		kv = append(kv, "trid", sess.trid)
	}
	log.Emit(sess.srv.cfg.Host, name, kv...)
}

func (sess *session) cmdEret(arg string) error {
	// ERET off:len[,off:len...] path  — partial file retrieval (§6.1).
	spec, path, ok := strings.Cut(arg, " ")
	if !ok {
		return sess.ct.reply(codeBadParam, "ERET needs ranges and a path")
	}
	ranges, err := ParseRanges(spec)
	if err != nil {
		return sess.ct.reply(codeBadParam, "%v", err)
	}
	return sess.cmdRetr(path, ranges)
}

// runSend moves the requested ranges out over the session's data
// channels: blocks are dealt round-robin to stripe nodes, and each node's
// parallel connections pull blocks from the node's share.
func (sess *session) runSend(src Source, ranges []Extent) error {
	blocks := partitionRanges(ranges, sess.srv.blockSize)
	nodes := sess.activeNodes()
	type task struct{ conns []transport.Conn }
	nodeTasks := make([]task, len(nodes))
	for i, ns := range nodes {
		conns, err := ns.obtainConns(sess, sess.parallelism)
		if err != nil {
			return err
		}
		nodeTasks[i] = task{conns: conns}
	}
	var mu sync.Mutex
	var firstErr error
	saveErr := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg := vtime.NewWaitGroup(sess.srv.cfg.Clock)
	for ni := range nodes {
		// The node's block share, pre-filled and closed so workers never
		// block on the channel itself.
		share := make(chan Extent, len(blocks)/len(nodes)+1)
		for bi := ni; bi < len(blocks); bi += len(nodes) {
			share <- blocks[bi]
		}
		close(share)
		for _, conn := range nodeTasks[ni].conns {
			conn := conn
			wg.Go(func() {
				for blk := range share {
					hdr := blockHeader{Len: uint64(blk.Len), Off: uint64(blk.Off)}
					if err := writeBlockHeader(conn, hdr); err != nil {
						saveErr(err)
						return
					}
					if err := src.SendRange(conn, blk.Off, blk.Len); err != nil {
						saveErr(err)
						return
					}
				}
				if err := writeBlockHeader(conn, blockHeader{Flags: flagEOD}); err != nil {
					saveErr(err)
				}
			})
		}
	}
	wg.Wait()
	return firstErr
}

func (sess *session) cmdStor(path string) error {
	if sess.allocSize <= 0 {
		return sess.ct.reply(codeBadParam, "send ALLO with the file size before STOR")
	}
	size := sess.allocSize
	sess.allocSize = 0
	sink, err := sess.srv.cfg.Store.Create(path, size)
	if err != nil {
		return sess.ct.reply(codeNoFile, "%v", err)
	}
	if err := sess.ct.reply(codeOpenData, "opening data connection(s)"); err != nil {
		return err
	}
	sess.emit("gridftp.stor.start", "path", path)
	if err := sess.runReceive(sink); err != nil {
		sess.emit("gridftp.stor.end", "path", path, "err", err.Error())
		return sess.ct.reply(codeXferFailed, "transfer failed: %v", err)
	}
	sess.emit("gridftp.stor.end", "path", path)
	if err := sink.Complete(); err != nil {
		return sess.ct.reply(codeXferFailed, "%v", err)
	}
	sess.afterTransfer()
	return sess.ct.reply(codeTransferOK, "transfer complete")
}

// runReceive drains blocks from every data connection until each signals
// end-of-data.
func (sess *session) runReceive(sink Sink) error {
	nodes := sess.activeNodes()
	var mu sync.Mutex
	var firstErr error
	wg := vtime.NewWaitGroup(sess.srv.cfg.Clock)
	for _, ns := range nodes {
		conns, err := ns.obtainConns(sess, sess.parallelism)
		if err != nil {
			return err
		}
		for _, conn := range conns {
			conn := conn
			wg.Go(func() {
				if err := receiveBlocks(conn, sink); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			})
		}
	}
	wg.Wait()
	return firstErr
}

// receiveBlocks reads MODE E blocks from one connection into sink until
// an EOD block arrives.
func receiveBlocks(conn transport.Conn, sink Sink) error {
	for {
		hdr, err := readBlockHeader(conn)
		if err != nil {
			return err
		}
		if hdr.Flags&flagEOD != 0 {
			return nil
		}
		if err := sink.ReceiveRange(conn, int64(hdr.Off), int64(hdr.Len)); err != nil {
			return err
		}
	}
}

// partitionRanges splits ranges into blocks of at most blockSize bytes.
func partitionRanges(ranges []Extent, blockSize int64) []Extent {
	var out []Extent
	for _, r := range ranges {
		off, n := r.Off, r.Len
		for n > 0 {
			c := blockSize
			if n < c {
				c = n
			}
			out = append(out, Extent{Off: off, Len: c})
			off += c
			n -= c
		}
	}
	return out
}
