package gridftp

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"esgrid/internal/gsi"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// --- pure unit tests ---

func TestPartitionRanges(t *testing.T) {
	blocks := partitionRanges([]Extent{{0, 10}, {100, 5}}, 4)
	want := []Extent{{0, 4}, {4, 4}, {8, 2}, {100, 4}, {104, 1}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestParseFormatRanges(t *testing.T) {
	rs, err := ParseRanges("0:10,100:5")
	if err != nil {
		t.Fatal(err)
	}
	if FormatRanges(rs) != "0:10,100:5" {
		t.Fatalf("round trip = %q", FormatRanges(rs))
	}
	for _, bad := range []string{"", "x", "5", "-1:5", "5:0", "1:2,"} {
		if _, err := ParseRanges(bad); err == nil {
			t.Errorf("ParseRanges(%q) succeeded", bad)
		}
	}
}

func TestMissingRanges(t *testing.T) {
	sink := NewVirtualSink(100)
	if got := MissingRanges(sink, 100); len(got) != 1 || got[0] != (Extent{0, 100}) {
		t.Fatalf("empty sink: %v", got)
	}
	sink.ext.add(10, 20)
	sink.ext.add(50, 10)
	got := MissingRanges(sink, 100)
	want := []Extent{{0, 10}, {30, 20}, {60, 40}}
	if len(got) != len(want) {
		t.Fatalf("missing = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}
}

// Property: any sequence of added extents coalesces into a sorted,
// disjoint set whose total coverage equals the union.
func TestQuickExtentSetCoalescing(t *testing.T) {
	check := func(raw []uint16) bool {
		var s extentSet
		covered := map[int64]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			off := int64(raw[i] % 512)
			n := int64(raw[i+1]%64) + 1
			s.add(off, n)
			for b := off; b < off+n; b++ {
				covered[b] = true
			}
		}
		ext := s.covered()
		var total int64
		for i, e := range ext {
			total += e.Len
			if i > 0 {
				prev := ext[i-1]
				if e.Off <= prev.Off+prev.Len {
					return false // overlapping or touching extents not merged
				}
			}
			for b := e.Off; b < e.Off+e.Len; b++ {
				if !covered[b] {
					return false
				}
			}
		}
		return total == int64(len(covered))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- real-TCP integration tests (loopback, real bytes) ---

type realEnv struct {
	store  *MemStore
	srv    *Server
	addr   string
	trust  *gsi.TrustStore
	ca     *gsi.CA
	userID *gsi.Identity
}

func startRealServer(t *testing.T, withAuth bool) *realEnv {
	t.Helper()
	env := &realEnv{store: NewMemStore()}
	var auth *gsi.Config
	if withAuth {
		ca, err := gsi.NewCA("ESG-CA")
		if err != nil {
			t.Fatal(err)
		}
		env.ca = ca
		env.trust = gsi.NewTrustStore(ca)
		srvID, _ := ca.Issue("/CN=gridftp-server", time.Now(), time.Hour)
		env.userID, _ = ca.Issue("/CN=user", time.Now(), time.Hour)
		auth = &gsi.Config{Identity: srvID, Trust: env.trust}
	}
	srv, err := NewServer(Config{
		Clock: vtime.Real{},
		Net:   transport.Real{},
		Host:  "127.0.0.1",
		Store: env.store,
		Auth:  auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := transport.Real{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	env.srv = srv
	env.addr = l.Addr().String()
	return env
}

func realClient(t *testing.T, env *realEnv, parallelism int) *Client {
	t.Helper()
	var auth *gsi.Config
	if env.trust != nil {
		auth = &gsi.Config{Identity: env.userID, Trust: env.trust}
	}
	c, err := Dial(ClientConfig{
		Clock:       vtime.Real{},
		Net:         transport.Real{},
		Auth:        auth,
		Parallelism: parallelism,
	}, env.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + i>>8)
	}
	return b
}

func TestRealGetSingleStream(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(3 << 20)
	env.store.Put("pcm.tas.1998-01.nc", data)
	c := realClient(t, env, 1)
	size, err := c.Size("pcm.tas.1998-01.nc")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("size = %d, %v", size, err)
	}
	sink := NewBytesSink(size)
	st, err := c.Get("pcm.tas.1998-01.nc", sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(); err != nil {
		t.Fatal(err)
	}
	if st.Bytes != size {
		t.Fatalf("stats bytes = %d", st.Bytes)
	}
	if sha256.Sum256(sink.Bytes()) != sha256.Sum256(data) {
		t.Fatal("content corrupted")
	}
}

func TestRealGetParallelStreams(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(8 << 20)
	env.store.Put("big.nc", data)
	c := realClient(t, env, 4)
	sink := NewBytesSink(int64(len(data)))
	st, err := c.Get("big.nc", sink)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams != 4 {
		t.Fatalf("streams = %d, want 4", st.Streams)
	}
	if err := sink.Complete(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("parallel reassembly corrupted content")
	}
}

func TestRealPartialRetrieve(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(1 << 20)
	env.store.Put("f.nc", data)
	c := realClient(t, env, 2)
	ranges := []Extent{{Off: 1000, Len: 5000}, {Off: 500000, Len: 1234}}
	sink := NewBytesSink(int64(len(data)))
	if _, err := c.GetRanges("f.nc", sink, ranges); err != nil {
		t.Fatal(err)
	}
	got := sink.Received()
	if len(got) != 2 || got[0] != ranges[0] || got[1] != ranges[1] {
		t.Fatalf("received extents = %v", got)
	}
	if !bytes.Equal(sink.Bytes()[1000:6000], data[1000:6000]) {
		t.Fatal("partial content wrong")
	}
}

func TestRealPut(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(2 << 20)
	c := realClient(t, env, 2)
	if _, err := c.Put("upload.nc", NewBytesSource(data)); err != nil {
		t.Fatal(err)
	}
	got, ok := env.store.Get("upload.nc")
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("uploaded content wrong")
	}
}

func TestRealAuthRequired(t *testing.T) {
	env := startRealServer(t, true)
	// An unauthenticated client is rejected at session setup: every
	// command before AUTH GSI draws a 530.
	_, err := Dial(ClientConfig{Clock: vtime.Real{}, Net: transport.Real{}}, env.addr)
	var re *ReplyError
	if !errors.As(err, &re) || re.Code != codeNotAuthed {
		t.Fatalf("unauthenticated dial err = %v, want 530", err)
	}
	// Authenticated client works, and sees the server identity.
	ac := realClient(t, env, 1)
	if ac.Peer() == nil || ac.Peer().Subject != "/CN=gridftp-server" {
		t.Fatalf("peer = %+v", ac.Peer())
	}
	env.store.Put("ok.nc", pattern(1024))
	sink := NewBytesSink(1024)
	if _, err := ac.Get("ok.nc", sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestRealAuthRejectsUntrusted(t *testing.T) {
	env := startRealServer(t, true)
	rogueCA, _ := gsi.NewCA("Rogue")
	rogueID, _ := rogueCA.Issue("/CN=mallory", time.Now(), time.Hour)
	rogueTrust := gsi.NewTrustStore(env.ca)
	_, err := Dial(ClientConfig{
		Clock: vtime.Real{}, Net: transport.Real{},
		Auth: &gsi.Config{Identity: rogueID, Trust: rogueTrust},
	}, env.addr)
	if err == nil {
		t.Fatal("untrusted client authenticated")
	}
}

func TestRealRestartWithMissingRanges(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(4 << 20)
	env.store.Put("f.nc", data)
	c := realClient(t, env, 2)
	size := int64(len(data))
	sink := NewBytesSink(size)
	// Fetch only part, as an interrupted transfer would have.
	if _, err := c.GetRanges("f.nc", sink, []Extent{{0, size / 3}}); err != nil {
		t.Fatal(err)
	}
	missing := MissingRanges(sink, size)
	if len(missing) != 1 || missing[0].Off != size/3 {
		t.Fatalf("missing = %v", missing)
	}
	if _, err := c.GetRanges("f.nc", sink, missing); err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("restarted content wrong")
	}
}

func TestRealChannelCachingReuse(t *testing.T) {
	env := startRealServer(t, false)
	env.store.Put("a.nc", pattern(256<<10))
	var auth *gsi.Config
	c, err := Dial(ClientConfig{
		Clock: vtime.Real{}, Net: transport.Real{}, Auth: auth,
		Parallelism: 2, CacheDataChannels: true,
	}, env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		sink := NewBytesSink(256 << 10)
		if _, err := c.Get("a.nc", sink); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	// With caching on, the pool must retain the data conns.
	c.mu.Lock()
	pooled := 0
	for _, conns := range c.pools {
		pooled += len(conns)
	}
	c.mu.Unlock()
	if pooled != 2 {
		t.Fatalf("pooled conns = %d, want 2", pooled)
	}
}

func TestRealFeaturesAndErrors(t *testing.T) {
	env := startRealServer(t, false)
	c := realClient(t, env, 1)
	feats, err := c.Features()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range feats {
		if f == "PARALLELISM" {
			found = true
		}
	}
	if !found {
		t.Fatalf("features = %v", feats)
	}
	if _, err := c.Size("missing.nc"); err == nil {
		t.Fatal("SIZE of missing file succeeded")
	}
	var re *ReplyError
	sink := NewBytesSink(10)
	if _, err := c.Get("missing.nc", sink); !errors.As(err, &re) || re.Code != codeNoFile {
		t.Fatalf("Get missing: %v", err)
	}
	// Out-of-range ERET is rejected cleanly.
	env.store.Put("small.nc", pattern(100))
	if _, err := c.GetRanges("small.nc", NewBytesSink(100), []Extent{{90, 20}}); err == nil {
		t.Fatal("out-of-range ERET succeeded")
	}
}
