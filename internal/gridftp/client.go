package gridftp

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"esgrid/internal/gsi"
	"esgrid/internal/netlogger"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// ClientConfig configures a GridFTP client connection.
type ClientConfig struct {
	// Clock schedules reader goroutines; required.
	Clock vtime.Clock
	// Net is the local transport (the client's host in the simulator).
	Net transport.Network
	// Auth, when non-nil, authenticates the control channel with AUTH GSI.
	Auth *gsi.Config
	// BufferBytes tunes TCP buffers on control and data channels (SBUF);
	// 0 keeps the OS default — exactly the knob §7 calls critical.
	BufferBytes int
	// Parallelism is the number of TCP streams per stripe node (§6.1).
	Parallelism int
	// CacheDataChannels keeps data connections (and their ramped TCP
	// windows) across consecutive transfers (§7's post-SC'00 fix).
	CacheDataChannels bool
	// Striped requests SPAS so every stripe node of the server
	// participates; otherwise PASV uses a single node.
	Striped bool
	// DiskBound marks the client side of data connections disk-bound.
	DiskBound bool
	// Span, when non-nil, is the parent life-line span: the session opens
	// a control-stage child under it, propagates its context to the server
	// with TRID, and tags auth, data, and teardown sub-spans.
	Span *netlogger.Span
	// Metrics, when non-nil, receives the gridftp.control.rtts histogram.
	Metrics *netlogger.Registry
}

// TransferStats summarizes one completed transfer.
type TransferStats struct {
	Bytes    int64
	Duration time.Duration
	Streams  int
	Stripes  int
}

// Bps returns the average transfer rate in bits per second.
func (t TransferStats) Bps() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / t.Duration.Seconds()
}

// Client is one GridFTP control session plus its data channels.
type Client struct {
	cfg     ClientConfig
	addr    string
	ct      *ctrl
	peer    *gsi.Peer
	session *netlogger.Span // control-stage span covering the session
	rtts    *netlogger.LogHistogram

	mu    sync.Mutex
	pools map[string][]transport.Conn // data conns per node address
}

// Dial connects and authenticates a control session to addr.
func Dial(cfg ClientConfig, addr string) (*Client, error) {
	if cfg.Clock == nil || cfg.Net == nil {
		return nil, errors.New("gridftp: client config needs Clock and Net")
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	session := cfg.Span.Child(netlogger.StageControl, "gridftp.session", "server", addr)
	fail := func(conn transport.Conn, err error) (*Client, error) {
		if conn != nil {
			conn.Close()
		}
		session.Annotate("err", err.Error())
		session.Finish()
		return nil, err
	}
	conn, err := cfg.Net.Dial(addr)
	if err != nil {
		return fail(nil, err)
	}
	labelConn(conn, session)
	c := &Client{
		cfg: cfg, addr: addr, ct: newCtrl(conn), session: session,
		rtts:  cfg.Metrics.LogHist("gridftp.control.rtts"),
		pools: map[string][]transport.Conn{},
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return fail(conn, err)
	}
	if r.Code != codeReady {
		return fail(conn, r.err())
	}
	auth := session.Child(netlogger.StageAuth, "gridftp.auth")
	if err := c.authenticate(conn); err != nil {
		auth.Annotate("err", err.Error())
		auth.Finish()
		return fail(conn, err)
	}
	auth.Finish()
	if err := c.configureSession(); err != nil {
		return fail(conn, err)
	}
	if trid := session.Context(); trid != "" {
		if _, err := c.simple("TRID " + trid); err != nil {
			return fail(conn, err)
		}
	}
	return c, nil
}

// labelConn tags a transport connection with the span context when the
// transport supports labelling (simnet does, via transport.Labeler).
func labelConn(conn transport.Conn, sp *netlogger.Span) {
	if sp == nil {
		return
	}
	if t, ok := conn.(transport.Labeler); ok {
		t.SetLabel(sp.Context())
	}
}

func (c *Client) authenticate(conn transport.Conn) error {
	if c.cfg.Auth == nil {
		return nil
	}
	if err := c.ct.sendLine("AUTH GSI"); err != nil {
		return err
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return err
	}
	if r.Code != codeAuthProceed {
		if r.Code == codeAuthOK {
			return nil // server does not require security
		}
		return r.err()
	}
	rw := struct {
		io.Reader
		io.Writer
	}{c.ct.br, conn}
	peer, err := c.cfg.Auth.Client(rw)
	if err != nil {
		return err
	}
	c.peer = peer
	if r, err = c.ct.readResponse(); err != nil {
		return err
	}
	if r.Code != codeAuthOK {
		return r.err()
	}
	return nil
}

func (c *Client) configureSession() error {
	cmds := []string{"TYPE I", "MODE E"}
	if c.cfg.BufferBytes > 0 {
		cmds = append(cmds, fmt.Sprintf("SBUF %d", c.cfg.BufferBytes))
	}
	cmds = append(cmds, fmt.Sprintf("OPTS RETR Parallelism=%d;", c.cfg.Parallelism))
	if c.cfg.CacheDataChannels {
		cmds = append(cmds, "OPTS CHANNELS Cache=on")
	}
	for _, cmd := range cmds {
		if _, err := c.simple(cmd); err != nil {
			return err
		}
	}
	return nil
}

// simple sends a command and expects a 2xx/3xx single response. Each
// exchange's round-trip time feeds the gridftp.control.rtts histogram.
func (c *Client) simple(cmd string) (*response, error) {
	start := c.cfg.Clock.Now()
	if err := c.ct.sendLine(cmd); err != nil {
		return nil, err
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return nil, err
	}
	c.rtts.Observe(c.cfg.Clock.Now().Sub(start).Seconds())
	if r.Code >= 400 {
		return r, r.err()
	}
	return r, nil
}

// Peer returns the authenticated server identity (nil without auth).
func (c *Client) Peer() *gsi.Peer { return c.peer }

// Close quits the session and closes all channels.
func (c *Client) Close() error {
	td := c.session.Child(netlogger.StageTeardown, "gridftp.teardown")
	c.ct.sendLine("QUIT")
	c.closeDataConns()
	err := c.ct.conn.Close()
	td.Finish()
	c.session.Finish()
	return err
}

func (c *Client) closeDataConns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conns := range c.pools {
		for _, dc := range conns {
			dc.Close()
		}
	}
	c.pools = map[string][]transport.Conn{}
}

// Size asks the server for a file's size (64-bit, §7).
func (c *Client) Size(path string) (int64, error) {
	r, err := c.simple("SIZE " + path)
	if err != nil {
		return 0, err
	}
	if r.Code != codeSize {
		return 0, r.err()
	}
	return strconv.ParseInt(strings.TrimSpace(r.Text), 10, 64)
}

// Features returns the server's FEAT list.
func (c *Client) Features() ([]string, error) {
	r, err := c.simple("FEAT")
	if err != nil {
		return nil, err
	}
	return r.Body, nil
}

// negotiateData issues PASV or SPAS and returns the data addresses.
func (c *Client) negotiateData() ([]string, error) {
	if c.cfg.Striped {
		r, err := c.simple("SPAS")
		if err != nil {
			return nil, err
		}
		if r.Code != codeStripedPassive || len(r.Body) == 0 {
			return nil, fmt.Errorf("gridftp: bad SPAS reply %d %q", r.Code, r.Text)
		}
		return r.Body, nil
	}
	r, err := c.simple("PASV")
	if err != nil {
		return nil, err
	}
	if r.Code != codePassive {
		return nil, r.err()
	}
	i := strings.LastIndexByte(r.Text, '(')
	j := strings.LastIndexByte(r.Text, ')')
	if i < 0 || j <= i {
		return nil, fmt.Errorf("gridftp: bad PASV reply %q", r.Text)
	}
	return []string{r.Text[i+1 : j]}, nil
}

// dataConns ensures the pool for addr holds exactly p connections.
func (c *Client) dataConns(addr string, p int) ([]transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conns := c.pools[addr]
	for len(conns) > p {
		last := len(conns) - 1
		conns[last].Close()
		conns = conns[:last]
	}
	for len(conns) < p {
		dc, err := c.cfg.Net.Dial(addr)
		if err != nil {
			c.pools[addr] = conns
			return nil, err
		}
		if c.cfg.BufferBytes > 0 {
			if t, ok := dc.(interface{ SetBuffer(int) }); ok {
				t.SetBuffer(c.cfg.BufferBytes)
			}
		}
		if c.cfg.DiskBound {
			if t, ok := dc.(interface{ SetDiskBound(bool) }); ok {
				t.SetDiskBound(true)
			}
		}
		labelConn(dc, c.session)
		conns = append(conns, dc)
	}
	c.pools[addr] = conns
	return conns, nil
}

// dropDataConns forgets (and closes) pooled connections after a transfer
// when caching is off, or after an error.
func (c *Client) dropDataConns(addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		for _, dc := range c.pools[a] {
			dc.Close()
		}
		delete(c.pools, a)
	}
}

// Get retrieves the whole file into sink.
func (c *Client) Get(path string, sink Sink) (TransferStats, error) {
	return c.get(path, sink, nil)
}

// GetRanges retrieves only the given byte ranges (partial file transfer /
// extent-based restart).
func (c *Client) GetRanges(path string, sink Sink, ranges []Extent) (TransferStats, error) {
	if len(ranges) == 0 {
		return TransferStats{}, errors.New("gridftp: GetRanges needs at least one range")
	}
	return c.get(path, sink, ranges)
}

func (c *Client) get(path string, sink Sink, ranges []Extent) (TransferStats, error) {
	start := c.cfg.Clock.Now()
	addrs, err := c.negotiateData()
	if err != nil {
		return TransferStats{}, err
	}
	cmd := "RETR " + path
	if ranges != nil {
		cmd = "ERET " + FormatRanges(ranges) + " " + path
	}
	if err := c.ct.sendLine(cmd); err != nil {
		return TransferStats{}, err
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeOpenData {
		return TransferStats{}, r.err()
	}
	data := c.session.Child(netlogger.StageData, "gridftp.get", "path", path)
	var total int64
	var mu sync.Mutex
	var firstErr error
	wg := vtime.NewWaitGroup(c.cfg.Clock)
	for _, addr := range addrs {
		conns, err := c.dataConns(addr, c.cfg.Parallelism)
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			break
		}
		for _, dc := range conns {
			dc := dc
			wg.Go(func() {
				n, err := receiveBlocksCounted(dc, sink)
				mu.Lock()
				total += n
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	data.Annotate("bytes", strconv.FormatInt(total, 10),
		"streams", strconv.Itoa(c.cfg.Parallelism*len(addrs)))
	if firstErr != nil {
		data.Annotate("err", firstErr.Error())
	}
	data.Finish()
	if firstErr != nil {
		c.dropDataConns(addrs)
		// Drain the control reply if the server managed to send one, so
		// the session stays usable for a retry.
		c.ct.conn.SetReadDeadline(c.cfg.Clock.Now().Add(time.Second))
		c.ct.readResponse()
		c.ct.conn.SetReadDeadline(time.Time{})
		return TransferStats{Bytes: total}, firstErr
	}
	r, err = c.ct.readResponse()
	if err != nil {
		return TransferStats{Bytes: total}, err
	}
	if r.Code != codeTransferOK {
		return TransferStats{Bytes: total}, r.err()
	}
	if !c.cfg.CacheDataChannels {
		c.dropDataConns(addrs)
	}
	return TransferStats{
		Bytes:    total,
		Duration: c.cfg.Clock.Now().Sub(start),
		Streams:  c.cfg.Parallelism * len(addrs),
		Stripes:  len(addrs),
	}, nil
}

// receiveBlocksCounted is receiveBlocks plus a payload byte count.
func receiveBlocksCounted(conn transport.Conn, sink Sink) (int64, error) {
	var n int64
	for {
		hdr, err := readBlockHeader(conn)
		if err != nil {
			return n, err
		}
		if hdr.Flags&flagEOD != 0 {
			return n, nil
		}
		if err := sink.ReceiveRange(conn, int64(hdr.Off), int64(hdr.Len)); err != nil {
			return n, err
		}
		n += int64(hdr.Len)
	}
}

// Put stores src as path on the server.
func (c *Client) Put(path string, src Source) (TransferStats, error) {
	start := c.cfg.Clock.Now()
	size := src.Size()
	if _, err := c.simple(fmt.Sprintf("ALLO %d", size)); err != nil {
		return TransferStats{}, err
	}
	addrs, err := c.negotiateData()
	if err != nil {
		return TransferStats{}, err
	}
	if err := c.ct.sendLine("STOR " + path); err != nil {
		return TransferStats{}, err
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeOpenData {
		return TransferStats{}, r.err()
	}
	blocks := partitionRanges([]Extent{{0, size}}, DefaultBlockSize)
	var mu sync.Mutex
	var firstErr error
	wg := vtime.NewWaitGroup(c.cfg.Clock)
	for ai, addr := range addrs {
		conns, err := c.dataConns(addr, c.cfg.Parallelism)
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			break
		}
		share := make(chan Extent, len(blocks)/len(addrs)+1)
		for bi := ai; bi < len(blocks); bi += len(addrs) {
			share <- blocks[bi]
		}
		close(share)
		for _, dc := range conns {
			dc := dc
			wg.Go(func() {
				for blk := range share {
					if err := writeBlockHeader(dc, blockHeader{Len: uint64(blk.Len), Off: uint64(blk.Off)}); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					if err := src.SendRange(dc, blk.Off, blk.Len); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				if err := writeBlockHeader(dc, blockHeader{Flags: flagEOD}); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			})
		}
	}
	wg.Wait()
	if firstErr != nil {
		c.dropDataConns(addrs)
		return TransferStats{}, firstErr
	}
	r, err = c.ct.readResponse()
	if err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeTransferOK {
		return TransferStats{}, r.err()
	}
	if !c.cfg.CacheDataChannels {
		c.dropDataConns(addrs)
	}
	return TransferStats{
		Bytes:    size,
		Duration: c.cfg.Clock.Now().Sub(start),
		Streams:  c.cfg.Parallelism * len(addrs),
		Stripes:  len(addrs),
	}, nil
}

// MissingRanges computes the extents of [0, size) not yet covered by the
// sink — the restart information for a resumed transfer.
func MissingRanges(sink Sink, size int64) []Extent {
	covered := sink.Received()
	var out []Extent
	var pos int64
	for _, e := range covered {
		if e.Off > pos {
			out = append(out, Extent{Off: pos, Len: e.Off - pos})
		}
		if end := e.Off + e.Len; end > pos {
			pos = end
		}
	}
	if pos < size {
		out = append(out, Extent{Off: pos, Len: size - pos})
	}
	return out
}
