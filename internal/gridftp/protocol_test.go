package gridftp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// rawSession dials the server and returns a raw control channel plus a
// helper that sends a line and returns the reply line(s).
func rawSession(t *testing.T, addr string) (net.Conn, func(string) string) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	br := bufio.NewReader(c)
	readReply := func() string {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		full := line
		// Multi-line replies end with "NNN <text>".
		if len(line) > 3 && line[3] == '-' {
			code := line[:3]
			for {
				l, err := br.ReadString('\n')
				if err != nil {
					t.Fatalf("read multiline: %v", err)
				}
				full += l
				if strings.HasPrefix(l, code+" ") {
					break
				}
			}
		}
		return strings.TrimSpace(full)
	}
	// Consume the greeting.
	if g := readReply(); !strings.HasPrefix(g, "220") {
		t.Fatalf("greeting = %q", g)
	}
	send := func(line string) string {
		if _, err := io.WriteString(c, line+"\r\n"); err != nil {
			t.Fatalf("send %q: %v", line, err)
		}
		return readReply()
	}
	return c, send
}

func TestProtocolRobustness(t *testing.T) {
	env := startRealServer(t, false)
	env.store.Put("a.nc", pattern(1024))
	_, send := rawSession(t, env.addr)

	cases := []struct {
		cmd      string
		wantCode string
	}{
		{"BOGUS", "500"},
		{"bogus with args", "500"},
		{"TYPE I", "200"},
		{"MODE E", "200"},
		{"MODE Z", "501"},
		{"SBUF notanumber", "501"},
		{"SBUF -5", "501"},
		{"SBUF 1048576", "200"},
		{"OPTS RETR Parallelism=0;", "501"},
		{"OPTS RETR Parallelism=999;", "501"},
		{"OPTS RETR Parallelism=4;", "200"},
		{"OPTS RETR Nonsense=1;", "501"},
		{"OPTS CHANNELS Cache=on", "200"},
		{"OPTS", "501"},
		{"SIZE missing.nc", "550"},
		{"SIZE a.nc", "213"},
		{"ALLO -1", "501"},
		{"ALLO xyz", "501"},
		{"REST -3", "501"},
		{"REST 100", "350"},
		{"STOR nofile.nc", "501"}, // no ALLO size (REST cleared by failure path is fine)
		{"ERET justonearg", "501"},
		{"ERET 0:10", "501"},
		{"ESUB var=tas", "501"},
		{"XSUB var=tas a.nc", "500"}, // MemStore cannot subset
		{"NOOP", "200"},
	}
	for _, tc := range cases {
		got := send(tc.cmd)
		if !strings.HasPrefix(got, tc.wantCode) {
			t.Errorf("%-28q -> %q, want %s...", tc.cmd, got, tc.wantCode)
		}
	}
	// RETR without PASV must fail cleanly, not hang.
	if got := send("RETR a.nc"); !strings.HasPrefix(got, "150") {
		t.Fatalf("RETR opened with %q", got)
	} else {
		// The 150 is followed by the data-phase failure.
		_, send2 := rawSession(t, env.addr)
		_ = send2
	}
}

func TestProtocolQuit(t *testing.T) {
	env := startRealServer(t, false)
	c, send := rawSession(t, env.addr)
	if got := send("QUIT"); !strings.HasPrefix(got, "221") {
		t.Fatalf("QUIT -> %q", got)
	}
	// Server closes the connection after QUIT.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

func TestProtocolSessionSurvivesErrors(t *testing.T) {
	// A stream of garbage must not wedge the session: a valid command
	// afterwards still works.
	env := startRealServer(t, false)
	env.store.Put("ok.nc", pattern(64))
	_, send := rawSession(t, env.addr)
	for i := 0; i < 20; i++ {
		send(fmt.Sprintf("JUNK%d arg arg arg", i))
	}
	if got := send("SIZE ok.nc"); !strings.HasPrefix(got, "213 64") {
		t.Fatalf("after garbage: %q", got)
	}
}

func TestBlockHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := blockHeader{Flags: flagEOD, Len: 1<<40 + 5, Off: 1<<41 + 7}
	if err := writeBlockHeader(&buf, in); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != blockHeaderLen {
		t.Fatalf("header length %d", buf.Len())
	}
	out, err := readBlockHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	// Truncated header errors.
	if _, err := readBlockHeader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header read")
	}
}

func TestCtrlMultilineParsing(t *testing.T) {
	// Client-side response parser against a canned multi-line reply.
	var buf bytes.Buffer
	buf.WriteString("229-Entering Striped Passive Mode\r\n node1:5000\r\n node2:5001\r\n229 END\r\n")
	c := &ctrl{br: bufio.NewReader(&buf)}
	r, err := c.readResponse()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 229 || len(r.Body) != 2 || r.Body[1] != "node2:5001" {
		t.Fatalf("parsed %+v", r)
	}
	// Malformed replies error out rather than looping.
	var bad bytes.Buffer
	bad.WriteString("xx\r\n")
	c2 := &ctrl{br: bufio.NewReader(&bad)}
	if _, err := c2.readResponse(); err == nil {
		t.Fatal("short reply parsed")
	}
	var bad2 bytes.Buffer
	bad2.WriteString("abc hello\r\n")
	c3 := &ctrl{br: bufio.NewReader(&bad2)}
	if _, err := c3.readResponse(); err == nil {
		t.Fatal("non-numeric code parsed")
	}
}

func TestConcurrentSessionsShareStore(t *testing.T) {
	env := startRealServer(t, false)
	data := pattern(512 << 10)
	env.store.Put("shared.nc", data)
	const clients = 5
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial(ClientConfig{Clock: vtime.Real{}, Net: transport.Real{}, Parallelism: 2}, env.addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sink := NewBytesSink(int64(len(data)))
			if _, err := c.Get("shared.nc", sink); err != nil {
				errs <- err
				return
			}
			if err := sink.Complete(); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(sink.Bytes(), data) {
				errs <- fmt.Errorf("content mismatch")
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
