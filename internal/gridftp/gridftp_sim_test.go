package gridftp

import (
	"strings"
	"testing"
	"time"

	"esgrid/internal/gsi"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

const (
	mbps = 1e6
	gbps = 1e9
	mb   = int64(1 << 20)
)

// simEnv is a small simulated testbed: src and dst hosts over a router,
// with optional extra stripe hosts at the source site.
type simEnv struct {
	clk     *vtime.Sim
	net     *simnet.Net
	src     *simnet.Host
	dst     *simnet.Host
	store   *VirtualStore
	srv     *Server
	stripes []*simnet.Host
}

func newSimEnv(t *testing.T, seed int64, linkBps float64, delay time.Duration, loss float64, nStripes int) *simEnv {
	t.Helper()
	clk := vtime.NewSim(seed)
	n := simnet.New(clk)
	env := &simEnv{clk: clk, net: n, store: NewVirtualStore()}
	env.src = n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	env.dst = n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddNode("wan")
	n.AddLink("src", "wan", simnet.LinkConfig{CapacityBps: linkBps, Delay: delay / 2, LossRate: loss})
	n.AddLink("wan", "dst", simnet.LinkConfig{CapacityBps: linkBps, Delay: delay / 2})
	var nodes []DataNode
	for i := 0; i < nStripes; i++ {
		name := "stripe" + string(rune('0'+i))
		h := n.AddHost(name, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink(name, "wan", simnet.LinkConfig{CapacityBps: linkBps, Delay: delay / 2, LossRate: loss})
		env.stripes = append(env.stripes, h)
		nodes = append(nodes, DataNode{Net: h, Host: name})
	}
	srv, err := NewServer(Config{
		Clock:     clk,
		Net:       env.src,
		Host:      "src",
		Store:     env.store,
		DataNodes: nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.srv = srv
	return env
}

func (env *simEnv) serve(t *testing.T) {
	t.Helper()
	l, err := env.src.Listen(":2811")
	if err != nil {
		t.Fatal(err)
	}
	env.clk.Go(func() { env.srv.Serve(l) })
}

func (env *simEnv) client(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Clock = env.clk
	cfg.Net = env.dst
	c, err := Dial(cfg, "src:2811")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSimVirtualTransferCompletes(t *testing.T) {
	env := newSimEnv(t, 1, 100*mbps, 20*time.Millisecond, 0, 0)
	env.clk.Run(func() {
		env.serve(t)
		env.store.Put("f.nc", 100*mb)
		c := env.client(t, ClientConfig{Parallelism: 1, BufferBytes: 1 << 20})
		defer c.Close()
		sink := NewVirtualSink(100 * mb)
		st, err := c.Get("f.nc", sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
		rate := st.Bps()
		if rate < 80*mbps || rate > 101*mbps {
			t.Fatalf("rate = %.1f Mb/s, want ~100 (link-limited)", rate/mbps)
		}
	})
}

func TestSimBufferTuningMatters(t *testing.T) {
	// 1 Gb/s x 40 ms path: bandwidth-delay product = 5 MB. A 64 KB buffer
	// must crawl; a 4 MB buffer must run near line rate — §7's tuning.
	run := func(buf int) float64 {
		// newSimEnv's delay is the one-way path delay, so RTT = 40ms.
		env := newSimEnv(t, 2, 1*gbps, 20*time.Millisecond, 0, 0)
		var rate float64
		env.clk.Run(func() {
			env.serve(t)
			env.store.Put("f.nc", 256*mb)
			c := env.client(t, ClientConfig{Parallelism: 1, BufferBytes: buf})
			defer c.Close()
			sink := NewVirtualSink(256 * mb)
			st, err := c.Get("f.nc", sink)
			if err != nil {
				t.Fatal(err)
			}
			rate = st.Bps()
		})
		return rate
	}
	small := run(64 << 10)
	large := run(8 << 20)
	if small > 20*mbps {
		t.Fatalf("64KB buffer reached %.1f Mb/s, want ~13 (window-limited)", small/mbps)
	}
	if large < 500*mbps {
		t.Fatalf("8MB buffer reached %.1f Mb/s, want near line rate", large/mbps)
	}
	if large < 10*small {
		t.Fatalf("tuning effect too small: %.1f vs %.1f Mb/s", large/mbps, small/mbps)
	}
}

func TestSimParallelStreamsHelpUnderLoss(t *testing.T) {
	run := func(p int) float64 {
		env := newSimEnv(t, 3, 622*mbps, 30*time.Millisecond, 3e-4, 0)
		var rate float64
		env.clk.Run(func() {
			env.serve(t)
			env.store.Put("f.nc", 128*mb)
			c := env.client(t, ClientConfig{Parallelism: p, BufferBytes: 1 << 20})
			defer c.Close()
			sink := NewVirtualSink(128 * mb)
			st, err := c.Get("f.nc", sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Complete(); err != nil {
				t.Fatal(err)
			}
			rate = st.Bps()
		})
		return rate
	}
	one := run(1)
	eight := run(8)
	if eight < 2.5*one {
		t.Fatalf("8 streams %.1f Mb/s vs 1 stream %.1f Mb/s; parallelism should win big under loss", eight/mbps, one/mbps)
	}
}

func TestSimStripedTransferAcrossHosts(t *testing.T) {
	// Each stripe host's access link is 200 Mb/s; the shared WAN-dst leg
	// is 1 Gb/s. One stripe caps at ~200; four stripes should approach
	// 800 (§6.1 striping; experiment S3's mechanism).
	run := func(k int) float64 {
		clk := vtime.NewSim(4)
		n := simnet.New(clk)
		dst := n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 4 << 20})
		n.AddNode("wan")
		n.AddLink("wan", "dst", simnet.LinkConfig{CapacityBps: 1 * gbps, Delay: 5 * time.Millisecond})
		store := NewVirtualStore()
		store.Put("f.nc", 256*mb)
		ctl := n.AddHost("ctl", simnet.HostConfig{DefaultBufferBytes: 4 << 20})
		n.AddLink("ctl", "wan", simnet.LinkConfig{CapacityBps: 1 * gbps, Delay: 5 * time.Millisecond})
		var nodes []DataNode
		for i := 0; i < k; i++ {
			name := "s" + string(rune('0'+i))
			h := n.AddHost(name, simnet.HostConfig{DefaultBufferBytes: 4 << 20})
			n.AddLink(name, "wan", simnet.LinkConfig{CapacityBps: 200 * mbps, Delay: 5 * time.Millisecond})
			nodes = append(nodes, DataNode{Net: h, Host: name})
		}
		srv, err := NewServer(Config{Clock: clk, Net: ctl, Host: "ctl", Store: store, DataNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		var rate float64
		clk.Run(func() {
			l, _ := ctl.Listen(":2811")
			clk.Go(func() { srv.Serve(l) })
			c, err := Dial(ClientConfig{
				Clock: clk, Net: dst, Parallelism: 2, Striped: true, BufferBytes: 4 << 20,
			}, "ctl:2811")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			sink := NewVirtualSink(256 * mb)
			st, err := c.Get("f.nc", sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Complete(); err != nil {
				t.Fatal(err)
			}
			if st.Stripes != k {
				t.Fatalf("stripes = %d, want %d", st.Stripes, k)
			}
			rate = st.Bps()
		})
		return rate
	}
	one := run(1)
	four := run(4)
	if one > 210*mbps {
		t.Fatalf("single stripe %.1f Mb/s, should cap at ~200", one/mbps)
	}
	if four < 3*one {
		t.Fatalf("4 stripes %.1f Mb/s vs 1 stripe %.1f; striping should scale", four/mbps, one/mbps)
	}
}

func TestSimChannelCachingSavesSetupTime(t *testing.T) {
	// Repeated small transfers on a high-RTT path: without caching every
	// transfer pays connection setup + slow start; with caching the ramped
	// windows survive. This is the Figure 8 dip mechanism and ablation F8b.
	run := func(cache bool) time.Duration {
		env := newSimEnv(t, 5, 622*mbps, 60*time.Millisecond, 0, 0)
		var elapsed time.Duration
		env.clk.Run(func() {
			env.serve(t)
			env.store.Put("f.nc", 16*mb)
			c := env.client(t, ClientConfig{Parallelism: 4, BufferBytes: 1 << 20, CacheDataChannels: cache})
			defer c.Close()
			t0 := env.clk.Now()
			for i := 0; i < 10; i++ {
				sink := NewVirtualSink(16 * mb)
				if _, err := c.Get("f.nc", sink); err != nil {
					t.Fatal(err)
				}
				if err := sink.Complete(); err != nil {
					t.Fatal(err)
				}
			}
			elapsed = env.clk.Now().Sub(t0)
		})
		return elapsed
	}
	cold := run(false)
	warm := run(true)
	if warm >= cold {
		t.Fatalf("caching did not help: cold=%v warm=%v", cold, warm)
	}
	if float64(warm) > 0.8*float64(cold) {
		t.Fatalf("caching effect too small: cold=%v warm=%v", cold, warm)
	}
}

func TestSimRetryAfterLinkFailure(t *testing.T) {
	env := newSimEnv(t, 6, 100*mbps, 20*time.Millisecond, 0, 0)
	env.clk.Run(func() {
		env.serve(t)
		env.store.Put("f.nc", 100*mb) // ~8.4s at 100 Mb/s
		// Power failure 3s in: all connections reset; restored 5s later.
		link := linkOf(t, env)
		env.clk.AfterFunc(3*time.Second, func() { link.SetUp(false, true) })
		env.clk.AfterFunc(8*time.Second, func() { link.SetUp(true, true) })
		sink := NewVirtualSink(100 * mb)
		mk := func() (*Client, error) {
			return Dial(ClientConfig{Clock: env.clk, Net: env.dst, Parallelism: 2, BufferBytes: 1 << 20}, "src:2811")
		}
		st, attempts, err := GetWithRetry(env.clk, mk, "f.nc", sink, 100*mb, 10, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if attempts < 2 {
			t.Fatalf("attempts = %d, want a restart", attempts)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
		// The restart must not re-fetch everything: total bytes moved
		// should be well under 2x the file size.
		if st.Bytes > 150*mb {
			t.Fatalf("moved %d bytes for a 100MB file; restart did not resume", st.Bytes)
		}
	})
}

// linkOf digs out the first src<->wan link for fault injection.
func linkOf(t *testing.T, env *simEnv) *simnet.Link {
	t.Helper()
	l := env.net.LinkBetween("src", "wan")
	if l == nil {
		t.Fatal("no src<->wan link")
	}
	return l
}

func TestSimThirdPartyTransfer(t *testing.T) {
	clk := vtime.NewSim(7)
	n := simnet.New(clk)
	a := n.AddHost("lbnl", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	b := n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	cli := n.AddHost("desktop", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddNode("wan")
	for _, h := range []string{"lbnl", "ncar", "desktop"} {
		n.AddLink(h, "wan", simnet.LinkConfig{CapacityBps: 622 * mbps, Delay: 10 * time.Millisecond})
	}
	srcStore, dstStore := NewVirtualStore(), NewVirtualStore()
	srcStore.Put("pcm.tas.1998-01.nc", 512*mb)
	srvA, _ := NewServer(Config{Clock: clk, Net: a, Host: "lbnl", Store: srcStore})
	srvB, _ := NewServer(Config{Clock: clk, Net: b, Host: "ncar", Store: dstStore})
	clk.Run(func() {
		la, _ := a.Listen(":2811")
		lb, _ := b.Listen(":2811")
		clk.Go(func() { srvA.Serve(la) })
		clk.Go(func() { srvB.Serve(lb) })
		srcCli, err := Dial(ClientConfig{Clock: clk, Net: cli, Parallelism: 2}, "lbnl:2811")
		if err != nil {
			t.Fatal(err)
		}
		defer srcCli.Close()
		dstCli, err := Dial(ClientConfig{Clock: clk, Net: cli, Parallelism: 2}, "ncar:2811")
		if err != nil {
			t.Fatal(err)
		}
		defer dstCli.Close()
		st, err := ThirdParty(srcCli, dstCli, "pcm.tas.1998-01.nc", "replica/pcm.tas.1998-01.nc")
		if err != nil {
			t.Fatal(err)
		}
		if st.Bytes != 512*mb {
			t.Fatalf("bytes = %d", st.Bytes)
		}
		if !dstStore.Has("replica/pcm.tas.1998-01.nc") {
			t.Fatal("replica not created at destination")
		}
		// The payload must have moved lbnl->ncar directly, not through
		// the mediating desktop.
		direct := n.TotalBytesBetween("lbnl", "ncar")
		if direct < float64(500*mb) {
			t.Fatalf("only %.0f bytes moved directly between servers", direct)
		}
		viaClient := n.TotalBytesBetween("lbnl", "desktop")
		if viaClient > float64(5*mb) {
			t.Fatalf("%.0f bytes flowed through the mediating client", viaClient)
		}
	})
}

func TestSimLargeFile64Bit(t *testing.T) {
	// 8 GB file: offsets exceed 32 bits (§7's post-SC'00 64-bit support).
	env := newSimEnv(t, 8, 10*gbps, 2*time.Millisecond, 0, 0)
	env.clk.Run(func() {
		env.serve(t)
		const size = 8 << 30
		env.store.Put("century.nc", size)
		c := env.client(t, ClientConfig{Parallelism: 4, BufferBytes: 8 << 20})
		defer c.Close()
		got, err := c.Size("century.nc")
		if err != nil || got != size {
			t.Fatalf("size = %d, %v", got, err)
		}
		sink := NewVirtualSink(size)
		if _, err := c.Get("century.nc", sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSimAuthenticatedSessionOverWAN(t *testing.T) {
	// Full GSI handshake across the simulated WAN, with the modelled
	// public-key cost charged to the virtual clock: session setup must
	// cost several RTTs plus two 300ms signing delays.
	clk := vtime.NewSim(9)
	n := simnet.New(clk)
	src := n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	dst := n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("src", "dst", simnet.LinkConfig{CapacityBps: 622 * mbps, Delay: 10 * time.Millisecond})
	ca, err := gsi.NewCA("ESG-CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca)
	now := vtime.Epoch
	srvID, _ := ca.Issue("/CN=server", now, 240*time.Hour)
	usrID, _ := ca.Issue("/CN=user", now, 240*time.Hour)
	store := NewVirtualStore()
	store.Put("f.nc", 8*mb)
	srv, _ := NewServer(Config{
		Clock: clk, Net: src, Host: "src", Store: store,
		Auth: &gsi.Config{Identity: srvID, Trust: trust, Clock: clk, HandshakeCost: 300 * time.Millisecond},
	})
	clk.Run(func() {
		l, _ := src.Listen(":2811")
		clk.Go(func() { srv.Serve(l) })
		t0 := clk.Now()
		c, err := Dial(ClientConfig{
			Clock: clk, Net: dst, Parallelism: 2,
			Auth: &gsi.Config{Identity: usrID, Trust: trust, Clock: clk, HandshakeCost: 300 * time.Millisecond},
		}, "src:2811")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		setup := clk.Now().Sub(t0)
		if setup < 600*time.Millisecond {
			t.Fatalf("authenticated session setup took %v, want >= 2x300ms handshake cost", setup)
		}
		if c.Peer().Subject != "/CN=server" {
			t.Fatalf("peer = %+v", c.Peer())
		}
		sink := NewVirtualSink(8 * mb)
		if _, err := c.Get("f.nc", sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStatsBps(t *testing.T) {
	st := TransferStats{Bytes: 1250000, Duration: time.Second}
	if st.Bps() != 1e7 {
		t.Fatalf("Bps = %v", st.Bps())
	}
	if (TransferStats{}).Bps() != 0 {
		t.Fatal("zero stats Bps != 0")
	}
}

func TestReplyErrorString(t *testing.T) {
	e := &ReplyError{Code: 550, Text: "no such file"}
	if !strings.Contains(e.Error(), "550") {
		t.Fatal(e.Error())
	}
}
