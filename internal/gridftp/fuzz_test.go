package gridftp

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// FuzzControlChannel throws arbitrary bytes at every pure parsing
// surface of the control channel: the command splitter, the ERET
// extent-list grammar, the OPTS option grammar, the numeric argument
// parsers, and the client-side reply parser. Nothing here may panic,
// and a successfully parsed extent list must survive a format/parse
// round trip unchanged.
func FuzzControlChannel(f *testing.F) {
	for _, seed := range []string{
		"RETR pcm-00.nc",
		"ERET 0:1048576,2097152:1048576 pcm-00.nc",
		"OPTS RETR Parallelism=4;",
		"OPTS CHANNELS Cache=on",
		"SBUF 1048576",
		"ALLO 2147483648",
		"REST 1048576",
		"AUTH GSI",
		"TRID 7.3",
		"quit",
		"",
		" leading space",
		"226 Transfer complete",
		"213-Extensions supported:\r\n SIZE\r\n213 END",
		"999999999999999999999999:1",
		"0:-1",
		"-1:5",
		"0:1,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		cmd, arg := splitCommand(line)
		if cmd != strings.ToUpper(cmd) {
			t.Fatalf("splitCommand(%q) verb %q not upper-cased", line, cmd)
		}
		switch cmd {
		case "ERET":
			if i := strings.IndexByte(arg, ' '); i >= 0 {
				ParseRanges(arg[:i])
			}
		case "OPTS":
			if set, err := parseOpts(arg); err == nil && set.parallelism != 0 {
				if set.parallelism < 1 || set.parallelism > 64 {
					t.Fatalf("parseOpts(%q) accepted parallelism %d", arg, set.parallelism)
				}
			}
		case "SBUF", "ALLO", "REST":
			strconv.ParseInt(arg, 10, 64)
		}

		// Every accepted extent list must round-trip bit-exactly.
		if rs, err := ParseRanges(line); err == nil {
			for _, r := range rs {
				if r.Off < 0 || r.Len <= 0 {
					t.Fatalf("ParseRanges(%q) accepted bad extent %+v", line, r)
				}
			}
			again, err := ParseRanges(FormatRanges(rs))
			if err != nil {
				t.Fatalf("round trip of %q failed: %v", line, err)
			}
			if len(again) != len(rs) {
				t.Fatalf("round trip of %q changed length", line)
			}
			for i := range rs {
				if rs[i] != again[i] {
					t.Fatalf("round trip of %q changed extent %d: %+v vs %+v", line, i, rs[i], again[i])
				}
			}
		}

		// The same bytes as a server reply stream must parse or error,
		// never panic or loop.
		c := &ctrl{br: bufio.NewReader(strings.NewReader(line + "\r\n"))}
		if r, err := c.readResponse(); err == nil {
			if r.Code < 0 || r.Code > 999 {
				t.Fatalf("readResponse(%q) code %d out of range", line, r.Code)
			}
		}
	})
}
