package gridftp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// TestTridPropagation checks that the client's trace context crosses the
// control channel (TRID command) and shows up on server-side transfer
// events, that simnet's flow gauge and retired-connection events carry
// the session label, and that control RTTs land in the histogram.
func TestTridPropagation(t *testing.T) {
	clk := vtime.NewSim(3)
	n := simnet.New(clk)
	nlog := netlogger.NewLog(clk)
	metrics := netlogger.NewRegistry(clk)
	n.Instrument(nlog, metrics)
	src := n.AddHost("src", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	dst := n.AddHost("dst", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddNode("wan")
	n.AddLink("src", "wan", simnet.LinkConfig{CapacityBps: 100 * mbps, Delay: 5 * time.Millisecond})
	n.AddLink("wan", "dst", simnet.LinkConfig{CapacityBps: 100 * mbps, Delay: 5 * time.Millisecond})
	store := NewVirtualStore()
	store.Put("a.nc", 8*mb)

	clk.Run(func() {
		srv, err := NewServer(Config{Clock: clk, Net: src, Host: "src", Store: store, Log: nlog})
		if err != nil {
			t.Fatal(err)
		}
		l, err := src.Listen(":2811")
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() { srv.Serve(l) })

		tracer := netlogger.NewTracer(clk, nlog)
		root := tracer.StartTrace("cp", "dst")
		c, err := Dial(ClientConfig{
			Clock: clk, Net: dst, Parallelism: 2, BufferBytes: 1 << 20,
			Span: root, Metrics: metrics,
		}, "src:2811")
		if err != nil {
			t.Fatal(err)
		}
		sink := NewVirtualSink(8 * mb)
		if _, err := c.Get("a.nc", sink); err != nil {
			t.Fatal(err)
		}
		c.Close()
		root.Finish()
		clk.Sleep(10 * time.Second) // let closed conns pass TCP linger

		// The server's retr events carry the client session's context.
		var sessionCtx string
		for _, s := range tracer.Snapshot() {
			if s.Name == "gridftp.session" {
				sessionCtx = fmt.Sprintf("%d.%d", s.TraceID, s.ID)
			}
		}
		if sessionCtx == "" {
			t.Fatal("no gridftp.session span recorded")
		}
		starts := nlog.Named("gridftp.retr.start")
		if len(starts) != 1 {
			t.Fatalf("got %d retr.start events", len(starts))
		}
		if got := starts[0].Fields["trid"]; got != sessionCtx {
			t.Errorf("server trid = %q, want client session context %q", got, sessionCtx)
		}
		if starts[0].Host != "src" {
			t.Errorf("retr event host = %q, want src", starts[0].Host)
		}

		// Control RTTs were observed (greeting is pre-session; FEAT, TRID,
		// SIZE-free get path still exchanges several commands).
		if metrics.LogHist("gridftp.control.rtts").Count() == 0 {
			t.Error("no control RTTs recorded")
		}

		// Flow gauge drained back to zero after the transfer, having
		// peaked at >= parallelism.
		g := metrics.Gauge("simnet.flows.active")
		if g.Value() != 0 {
			t.Errorf("flows.active = %g after close, want 0", g.Value())
		}
		if g.Max() < 2 {
			t.Errorf("flows.active max = %g, want >= 2", g.Max())
		}
	})
	// Retired connections are labelled with the owning session context.
	retired := nlog.Named("simnet.conn.retired")
	if len(retired) == 0 {
		t.Fatal("no conn.retired events")
	}
	labelled := 0
	for _, ev := range retired {
		if strings.Contains(ev.Fields["label"], ".") {
			labelled++
		}
	}
	if labelled == 0 {
		t.Errorf("no retired conn carries a span label: %+v", retired)
	}
}
