package gridftp

import (
	"errors"
	"strings"
	"sync"

	"esgrid/internal/vtime"
)

// ErrNoSubset is returned when the server's store cannot evaluate
// server-side subsetting.
var ErrNoSubset = errors.New("gridftp: store does not support server-side subsetting")

// SubsetStore is the optional store capability behind the ESUB command:
// ESG-II style server-side extraction and subsetting (§9: "some data
// analysis operations (at least extraction and subsetting, similar to
// those available with DODS) can be performed local to the data before it
// is transferred over the network"). The spec syntax is defined by the
// store (internal/subset uses "var=tas;time=0:4;lat=-30:30;lon=0:180").
type SubsetStore interface {
	// OpenSubset evaluates spec against the named file and returns the
	// extracted content as a Source.
	OpenSubset(name, spec string) (Source, error)
}

// cmdEsub serves "ESUB <spec> <path>": evaluate the subset server-side
// and transfer only the result.
func (sess *session) cmdEsub(arg string) error {
	spec, path, ok := strings.Cut(arg, " ")
	if !ok {
		return sess.ct.reply(codeBadParam, "ESUB needs a spec and a path")
	}
	ss, ok := sess.srv.cfg.Store.(SubsetStore)
	if !ok {
		return sess.ct.reply(codeBadCmd, "%v", ErrNoSubset)
	}
	src, err := ss.OpenSubset(path, spec)
	if err != nil {
		return sess.ct.reply(codeNoFile, "%v", err)
	}
	defer src.Close()
	if err := sess.ct.reply(codeOpenData, "opening data connection(s); subset is %d bytes", src.Size()); err != nil {
		return err
	}
	if err := sess.runSend(src, []Extent{{Off: 0, Len: src.Size()}}); err != nil {
		return sess.ct.reply(codeXferFailed, "transfer failed: %v", err)
	}
	sess.afterTransfer()
	return sess.ct.reply(codeTransferOK, "subset transfer complete")
}

// SubsetSize asks the server how large a subset would be without
// transferring it ("SIZE" has no spec; ESUB? replies in the 150 line, so
// we provide a dedicated query): "XSUB <spec> <path>".
func (c *Client) SubsetSize(path, spec string) (int64, error) {
	r, err := c.simple("XSUB " + spec + " " + path)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, f := range strings.Fields(r.Text) {
		if v, err := parseInt64(f); err == nil {
			n = v
		}
	}
	return n, nil
}

func parseInt64(s string) (int64, error) {
	var n int64
	if len(s) == 0 {
		return 0, errors.New("empty")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("not a number")
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

// cmdXsub serves the subset-size query.
func (sess *session) cmdXsub(arg string) error {
	spec, path, ok := strings.Cut(arg, " ")
	if !ok {
		return sess.ct.reply(codeBadParam, "XSUB needs a spec and a path")
	}
	ss, ok := sess.srv.cfg.Store.(SubsetStore)
	if !ok {
		return sess.ct.reply(codeBadCmd, "%v", ErrNoSubset)
	}
	src, err := ss.OpenSubset(path, spec)
	if err != nil {
		return sess.ct.reply(codeNoFile, "%v", err)
	}
	defer src.Close()
	return sess.ct.reply(codeSize, "%d", src.Size())
}

// GetSubset asks the server to evaluate spec against path and transfers
// only the extracted content into sink (which must be sized to the
// subset; use SubsetSize first).
func (c *Client) GetSubset(path, spec string, sink Sink) (TransferStats, error) {
	start := c.cfg.Clock.Now()
	addrs, err := c.negotiateData()
	if err != nil {
		return TransferStats{}, err
	}
	if err := c.ct.sendLine("ESUB " + spec + " " + path); err != nil {
		return TransferStats{}, err
	}
	r, err := c.ct.readResponse()
	if err != nil {
		return TransferStats{}, err
	}
	if r.Code != codeOpenData {
		return TransferStats{}, r.err()
	}
	var total int64
	var mu sync.Mutex
	var firstErr error
	wg := vtime.NewWaitGroup(c.cfg.Clock)
	for _, addr := range addrs {
		conns, err := c.dataConns(addr, c.cfg.Parallelism)
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			break
		}
		for _, dc := range conns {
			dc := dc
			wg.Go(func() {
				n, err := receiveBlocksCounted(dc, sink)
				mu.Lock()
				total += n
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	if firstErr != nil {
		c.dropDataConns(addrs)
		return TransferStats{Bytes: total}, firstErr
	}
	if r, err = c.ct.readResponse(); err != nil {
		return TransferStats{Bytes: total}, err
	}
	if r.Code != codeTransferOK {
		return TransferStats{Bytes: total}, r.err()
	}
	if !c.cfg.CacheDataChannels {
		c.dropDataConns(addrs)
	}
	return TransferStats{
		Bytes:    total,
		Duration: c.cfg.Clock.Now().Sub(start),
		Streams:  c.cfg.Parallelism * len(addrs),
		Stripes:  len(addrs),
	}, nil
}
