package gridftp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"

	"esgrid/internal/transport"
)

// Control-channel reply codes (FTP-compatible where FTP has them).
const (
	codeReady          = 220
	codeBye            = 221
	codeTransferOK     = 226
	codePassive        = 227
	codeStripedPassive = 229
	codeAuthOK         = 234
	codeCmdOK          = 200
	codeFeat           = 211
	codeSize           = 213
	codeAuthProceed    = 334
	codeRestProceed    = 350
	codeOpenData       = 150
	codeBadCmd         = 500
	codeBadParam       = 501
	codeNotAuthed      = 530
	codeNoFile         = 550
	codeXferFailed     = 426
)

// ctrl wraps a control connection with line-oriented send/receive.
type ctrl struct {
	conn transport.Conn
	br   *bufio.Reader
}

func newCtrl(c transport.Conn) *ctrl {
	return &ctrl{conn: c, br: bufio.NewReader(c)}
}

// sendLine writes one CRLF-terminated line.
func (c *ctrl) sendLine(line string) error {
	_, err := io.WriteString(c.conn, line+"\r\n")
	return err
}

// reply sends a single-line reply.
func (c *ctrl) reply(code int, format string, args ...any) error {
	return c.sendLine(fmt.Sprintf("%d %s", code, fmt.Sprintf(format, args...)))
}

// replyMulti sends a multi-line reply ("NNN-first", body lines prefixed
// with a space, closed by "NNN end").
func (c *ctrl) replyMulti(code int, first string, body []string, last string) error {
	if err := c.sendLine(fmt.Sprintf("%d-%s", code, first)); err != nil {
		return err
	}
	for _, b := range body {
		if err := c.sendLine(" " + b); err != nil {
			return err
		}
	}
	return c.sendLine(fmt.Sprintf("%d %s", code, last))
}

// readLine reads one command or reply line (CRLF or LF terminated).
func (c *ctrl) readLine() (string, error) {
	s, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// response is a parsed server reply.
type response struct {
	Code int
	Text string
	Body []string // multi-line body, if any
}

// readResponse parses a (possibly multi-line) reply.
func (c *ctrl) readResponse() (*response, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) < 4 {
		return nil, fmt.Errorf("gridftp: short reply %q", line)
	}
	// RFC 959 reply codes are exactly three digits followed by a space
	// (final line) or '-' (first line of a multi-line reply). Atoi is too
	// lenient here: it would accept "-01" or "+99".
	code := 0
	for i := 0; i < 3; i++ {
		d := line[i]
		if d < '0' || d > '9' {
			return nil, fmt.Errorf("gridftp: malformed reply %q", line)
		}
		code = code*10 + int(d-'0')
	}
	if line[3] != ' ' && line[3] != '-' {
		return nil, fmt.Errorf("gridftp: malformed reply %q", line)
	}
	r := &response{Code: code, Text: line[4:]}
	if line[3] == '-' {
		for {
			l, err := c.readLine()
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(l, line[:3]+" ") {
				r.Text = l[4:]
				return r, nil
			}
			r.Body = append(r.Body, strings.TrimPrefix(l, " "))
		}
	}
	return r, nil
}

// ok reports whether the reply code is a 2xx success.
func (r *response) ok() bool { return r.Code >= 200 && r.Code < 300 }

// ReplyError is a non-success control-channel reply.
type ReplyError struct {
	Code int
	Text string
}

func (e *ReplyError) Error() string { return fmt.Sprintf("gridftp: %d %s", e.Code, e.Text) }

func (r *response) err() error {
	if r.ok() {
		return nil
	}
	return &ReplyError{Code: r.Code, Text: r.Text}
}

// --- extended block mode (MODE E) data framing ---
//
// Each block: 1-byte flags, 8-byte length, 8-byte offset (64-bit: the
// large-file support §7 added after SC'00), then payload. The EOD flag
// marks the final (empty) block on a connection for this transfer.

const (
	flagEOD = 0x08
)

type blockHeader struct {
	Flags byte
	Len   uint64
	Off   uint64
}

const blockHeaderLen = 17

// hdrBufPool recycles header scratch: the 17 bytes would otherwise escape
// to the heap on every block (w and r are interfaces, so escape analysis
// cannot keep the array on the stack).
var hdrBufPool = sync.Pool{New: func() any { return new([blockHeaderLen]byte) }}

func writeBlockHeader(w io.Writer, h blockHeader) error {
	buf := hdrBufPool.Get().(*[blockHeaderLen]byte)
	buf[0] = h.Flags
	binary.BigEndian.PutUint64(buf[1:9], h.Len)
	binary.BigEndian.PutUint64(buf[9:17], h.Off)
	_, err := w.Write(buf[:])
	hdrBufPool.Put(buf)
	return err
}

func readBlockHeader(r io.Reader) (blockHeader, error) {
	buf := hdrBufPool.Get().(*[blockHeaderLen]byte)
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		hdrBufPool.Put(buf)
		return blockHeader{}, err
	}
	h := blockHeader{
		Flags: buf[0],
		Len:   binary.BigEndian.Uint64(buf[1:9]),
		Off:   binary.BigEndian.Uint64(buf[9:17]),
	}
	hdrBufPool.Put(buf)
	return h, nil
}

// ParseRanges parses an ERET-style "off:len,off:len" extent list.
func ParseRanges(s string) ([]Extent, error) {
	var out []Extent
	for _, part := range strings.Split(s, ",") {
		var off, n int64
		if _, err := fmt.Sscanf(part, "%d:%d", &off, &n); err != nil {
			return nil, fmt.Errorf("gridftp: bad range %q: %w", part, err)
		}
		if off < 0 || n <= 0 {
			return nil, fmt.Errorf("gridftp: bad range %q", part)
		}
		out = append(out, Extent{Off: off, Len: n})
	}
	return out, nil
}

// FormatRanges renders extents as the "off:len,off:len" wire form
// ParseRanges accepts.
func FormatRanges(rs []Extent) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%d:%d", r.Off, r.Len)
	}
	return strings.Join(parts, ",")
}
