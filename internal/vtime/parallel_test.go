package vtime

import (
	"sync/atomic"
	"testing"
	"time"
)

// fanProbe records, per task, which lane ran it and an execution stamp,
// plus a per-lane call count — enough to check coverage, assignment and
// visibility without any synchronization of its own (the Fan barrier is
// what the tests exercise).
type fanProbe struct {
	lane  []int32 // lane that ran task t; -1 = never ran
	runs  []int32 // times task t ran
	calls [16]atomic.Int64
	sum   []int64 // task-local output, summed by the caller after Fan
}

func newFanProbe(tasks int) *fanProbe {
	p := &fanProbe{
		lane: make([]int32, tasks),
		runs: make([]int32, tasks),
		sum:  make([]int64, tasks),
	}
	for i := range p.lane {
		p.lane[i] = -1
	}
	return p
}

func (p *fanProbe) RunTask(task, worker int) {
	p.lane[task] = int32(worker)
	p.runs[task]++
	p.calls[worker].Add(1)
	p.sum[task] = int64(task) * 3
}

func (p *fanProbe) reset() {
	for i := range p.lane {
		p.lane[i] = -1
		p.runs[i] = 0
		p.sum[i] = 0
	}
}

// TestFanSequentialFallback: with no pool configured, Fan must run every
// task in order on lane 0 — that is the reference semantics.
func TestFanSequentialFallback(t *testing.T) {
	s := NewSim(1)
	const tasks = 17
	p := newFanProbe(tasks)
	s.Fan(tasks, p)
	for i := 0; i < tasks; i++ {
		if p.runs[i] != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, p.runs[i])
		}
		if p.lane[i] != 0 {
			t.Fatalf("task %d ran on lane %d, want 0 (sequential)", i, p.lane[i])
		}
	}
	if s.Workers() != 1 {
		t.Fatalf("Workers() = %d before SetWorkers, want 1", s.Workers())
	}
}

// TestFanStaticAssignment: task t must run on lane t mod W, exactly
// once, regardless of scheduling — static assignment is what makes the
// parallel execution reproducible.
func TestFanStaticAssignment(t *testing.T) {
	s := NewSim(1)
	const lanes = 4
	s.SetWorkers(lanes)
	defer s.SetWorkers(1)
	if s.Workers() != lanes {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), lanes)
	}
	const tasks = 41
	p := newFanProbe(tasks)
	for round := 0; round < 100; round++ {
		p.reset()
		s.Fan(tasks, p)
		for i := 0; i < tasks; i++ {
			if p.runs[i] != 1 {
				t.Fatalf("round %d: task %d ran %d times, want 1", round, i, p.runs[i])
			}
			if want := int32(i % lanes); p.lane[i] != want {
				t.Fatalf("round %d: task %d ran on lane %d, want %d", round, i, p.lane[i], want)
			}
		}
	}
}

// TestFanBarrierVisibility: writes made by pool lanes must be visible to
// the caller once Fan returns. Summing after the fan (with no locks)
// fails under -race if the barrier's happens-before edge is missing.
func TestFanBarrierVisibility(t *testing.T) {
	s := NewSim(1)
	s.SetWorkers(8)
	defer s.SetWorkers(1)
	const tasks = 64
	p := newFanProbe(tasks)
	var want int64
	for i := 0; i < tasks; i++ {
		want += int64(i) * 3
	}
	for round := 0; round < 200; round++ {
		p.reset()
		s.Fan(tasks, p)
		var got int64
		for _, v := range p.sum {
			got += v
		}
		if got != want {
			t.Fatalf("round %d: sum = %d, want %d", round, got, want)
		}
	}
}

// TestFanFewerTasksThanLanes: lanes beyond the task count must idle
// cleanly and the barrier still complete.
func TestFanFewerTasksThanLanes(t *testing.T) {
	s := NewSim(1)
	s.SetWorkers(8)
	defer s.SetWorkers(1)
	p := newFanProbe(3)
	s.Fan(3, p)
	for i := 0; i < 3; i++ {
		if p.runs[i] != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, p.runs[i])
		}
	}
	// A single task degenerates to the inline path even with a pool.
	p2 := newFanProbe(1)
	s.Fan(1, p2)
	if p2.lane[0] != 0 {
		t.Fatalf("single task ran on lane %d, want 0", p2.lane[0])
	}
}

// TestSetWorkersReconfigure: growing, shrinking and disabling the pool
// must each leave Fan fully functional.
func TestSetWorkersReconfigure(t *testing.T) {
	s := NewSim(1)
	for _, lanes := range []int{4, 2, 6, 1, 3} {
		s.SetWorkers(lanes)
		if want := lanes; s.Workers() != want {
			t.Fatalf("Workers() = %d, want %d", s.Workers(), want)
		}
		const tasks = 13
		p := newFanProbe(tasks)
		s.Fan(tasks, p)
		for i := 0; i < tasks; i++ {
			if p.runs[i] != 1 {
				t.Fatalf("lanes=%d: task %d ran %d times, want 1", lanes, i, p.runs[i])
			}
			if want := int32(0); lanes > 1 {
				want = int32(i % lanes)
				if p.lane[i] != want {
					t.Fatalf("lanes=%d: task %d on lane %d, want %d", lanes, i, p.lane[i], want)
				}
			} else if p.lane[i] != want {
				t.Fatalf("lanes=%d: task %d on lane %d, want 0", lanes, i, p.lane[i])
			}
		}
	}
	s.SetWorkers(1)
	// Idempotent reconfiguration must not leak or wedge.
	s.SetWorkers(1)
	s.SetWorkers(0)
}

// TestFanInsideRun: the intended deployment — fanning from an instant
// hook while the simulation advances — must interleave correctly with
// managed-goroutine scheduling.
func TestFanInsideRun(t *testing.T) {
	s := NewSim(7)
	s.SetWorkers(4)
	const tasks = 16
	p := newFanProbe(tasks)
	fans := 0
	s.SetInstantHook(func() {
		p.reset()
		s.Fan(tasks, p)
		for i := 0; i < tasks; i++ {
			if p.runs[i] != 1 {
				t.Errorf("fan %d: task %d ran %d times, want 1", fans, i, p.runs[i])
			}
		}
		fans++
	})
	s.Run(func() {
		for i := 0; i < 50; i++ {
			s.ArmInstantHook()
			s.Sleep(time.Millisecond)
		}
	})
	if fans == 0 {
		t.Fatal("instant hook never ran")
	}
}
