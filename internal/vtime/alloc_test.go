package vtime

import (
	"sync"
	"testing"
	"time"
)

// TestCancelStormQueueBounded is the regression test for the old
// simTimer.Stop leak: cancelled events used to stay in the heap until
// their due time was popped, so arm/cancel churn (AIMD loss timers, conn
// deadlines) grew the queue without bound. With slot recycling the queue
// must stay flat no matter how many timers are cancelled.
func TestCancelStormQueueBounded(t *testing.T) {
	s := NewSim(1)
	s.Run(func() {
		const storm = 100_000
		for i := 0; i < storm; i++ {
			tm := s.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
			if !tm.Stop() {
				t.Fatal("Stop() = false on a pending timer")
			}
			if n := s.PendingEvents(); n > 1 {
				t.Fatalf("after %d cancels: %d events queued, want <= 1", i+1, n)
			}
		}
		if n := s.PendingEvents(); n != 0 {
			t.Fatalf("queue holds %d events after cancel storm, want 0", n)
		}
	})
}

// TestScheduleCancelStale verifies generation tagging: once a slot is
// recycled, the old EventID must not cancel (or otherwise disturb) the
// slot's next tenant.
func TestScheduleCancelStale(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.Run(func() {
		stale := s.Schedule(time.Second, func() {})
		if !s.Cancel(stale) {
			t.Fatal("Cancel on pending event = false")
		}
		// The recycled slot is reused by the next Schedule.
		s.Schedule(time.Second, func() { fired = true })
		if s.Cancel(stale) {
			t.Error("stale EventID cancelled the slot's new tenant")
		}
		if s.Cancel(0) {
			t.Error("Cancel(0) = true, want false")
		}
		s.Sleep(2 * time.Second)
	})
	if !fired {
		t.Fatal("event was lost to a stale cancel")
	}
}

// TestSimSleepAllocFree guards the managed-goroutine hot path: once its
// parker and event slot exist, Sleep must not allocate.
func TestSimSleepAllocFree(t *testing.T) {
	s := NewSim(1)
	s.Run(func() {
		s.Sleep(time.Millisecond) // warm the parker freelist and slot arena
		allocs := testing.AllocsPerRun(1000, func() {
			s.Sleep(time.Microsecond)
		})
		if allocs > 0 {
			t.Errorf("Sim.Sleep allocates %.1f objects per call, want 0", allocs)
		}
	})
}

// TestSimScheduleCancelAllocFree guards the timer hot path used by the
// network simulator (window growth, loss sampling, completions).
func TestSimScheduleCancelAllocFree(t *testing.T) {
	s := NewSim(1)
	fn := func() {}
	s.Run(func() {
		s.Cancel(s.Schedule(time.Hour, fn)) // warm the slot arena
		allocs := testing.AllocsPerRun(1000, func() {
			id := s.Schedule(time.Hour, fn)
			s.Cancel(id)
		})
		if allocs > 0 {
			t.Errorf("Schedule+Cancel allocates %.1f objects per call, want 0", allocs)
		}
	})
}

// TestSimCondWaitAllocFree guards the cond hot path (simnet read/write
// blocking): steady-state Wait/Broadcast on a Sim clock must recycle its
// waiter rather than allocate a new one.
func TestSimCondWaitAllocFree(t *testing.T) {
	s := NewSim(1)
	s.Run(func() {
		var mu sync.Mutex
		cond := s.NewCond(&mu)
		turn := 0 // 0: waiter may proceed to wait; 1: signaller may signal
		wg := NewWaitGroup(s)
		const rounds = 500
		wg.Go(func() {
			mu.Lock()
			for i := 0; i < rounds; i++ {
				turn = 1
				cond.Broadcast()
				for turn != 0 {
					cond.Wait()
				}
			}
			mu.Unlock()
		})
		var allocs float64
		wg.Go(func() {
			mu.Lock()
			// Warm one round, then measure.
			allocs = testing.AllocsPerRun(rounds-1, func() {
				for turn != 1 {
					cond.Wait()
				}
				turn = 0
				cond.Broadcast()
			})
			mu.Unlock()
		})
		wg.Wait()
		// AllocsPerRun rounds down; allow the warmup round's stragglers.
		if allocs > 1 {
			t.Errorf("Cond.Wait allocates %.1f objects per round, want ~0", allocs)
		}
	})
}

// TestFanAllocFree pins the parallel dispatch path: handing a batch of
// tasks to the worker pool and collecting them at the barrier must not
// allocate in steady state, for the same reason the sequential core is
// allocation-free — the fan runs on the hottest path in the tree (the
// allocator's end-of-instant flush) once per dirty instant.
func TestFanAllocFree(t *testing.T) {
	s := NewSim(1)
	s.SetWorkers(4)
	defer s.SetWorkers(1)
	const tasks = 32
	p := newFanProbe(tasks)
	s.Fan(tasks, p) // warm the pool (lazy scratch, park/wake churn)
	allocs := testing.AllocsPerRun(200, func() {
		s.Fan(tasks, p)
	})
	if allocs > 0 {
		t.Errorf("Fan allocates %.1f objects per dispatch, want 0", allocs)
	}
}
