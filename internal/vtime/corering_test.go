package vtime

import (
	"testing"
	"time"
)

var (
	siteTestTick  = RegisterSite("coreringtest.tick")
	siteTestOnce  = RegisterSite("coreringtest.once")
	siteTestLater = RegisterSite("coreringtest.later")
)

func TestCoreRingPackRoundTrip(t *testing.T) {
	r := NewCoreRing(10) // rounds up to 16
	if got := len(r.recs); got != 16 {
		t.Fatalf("capacity = %d, want 16", got)
	}
	r.Put(CoreSchedule, 100, 250, 7, 3, siteTestTick)
	r.Put(CoreFire, 250, 0, 7, 3, siteTestTick)
	if r.Written() != 2 || r.Retained() != 2 {
		t.Fatalf("written/retained = %d/%d, want 2/2", r.Written(), r.Retained())
	}
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	want := CoreEvent{At: 100, Due: 250, Seq: 7, Parent: 3, Kind: CoreSchedule, Site: siteTestTick}
	if evs[0] != want {
		t.Fatalf("decoded %+v, want %+v", evs[0], want)
	}
	if evs[1].Kind != CoreFire || evs[1].At != 250 || evs[1].Seq != 7 {
		t.Fatalf("fire decoded %+v", evs[1])
	}
}

func TestCoreRingOverwritesOldest(t *testing.T) {
	r := NewCoreRing(8)
	for i := 0; i < 20; i++ {
		r.Put(CoreFire, int64(i), 0, uint64(i), 0, 0)
	}
	if r.Written() != 20 || r.Retained() != 8 {
		t.Fatalf("written/retained = %d/%d, want 20/8", r.Written(), r.Retained())
	}
	evs := r.Snapshot()
	if evs[0].Seq != 12 || evs[len(evs)-1].Seq != 19 {
		t.Fatalf("retained window [%d, %d], want [12, 19]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
}

// TestSimWritesCoreRing drives every ring-writing path in the core —
// schedule (heap and zero-delay), fire, cancel, reschedule-in-place and
// RearmFiring — and checks the decoded stream carries the causal parent
// and site tags.
func TestSimWritesCoreRing(t *testing.T) {
	s := NewSim(1)
	ring := NewCoreRing(1 << 10)
	s.SetCoreRing(ring)
	var onceSeq uint64
	s.Run(func() {
		ticks := 0
		s.ScheduleSite(siteTestTick, time.Millisecond, func() {
			ticks++
			if ticks < 3 {
				s.RearmFiring(time.Millisecond)
			}
		})
		s.ScheduleSite(siteTestOnce, 2*time.Millisecond, func() {})
		// Reschedule-in-place: push a pending heap timer further out.
		id := s.ScheduleSite(siteTestLater, time.Hour, func() {})
		id = s.RescheduleSite(siteTestLater, id, 2*time.Hour, func() {})
		s.Sleep(10 * time.Millisecond)
		s.Cancel(id)
		s.ScheduleSite(siteTestOnce, 0, func() {}) // zero-delay FIFO path
		s.Sleep(time.Millisecond)
	})
	kinds := map[CoreKind]int{}
	bySite := map[Site]int{}
	for _, e := range ring.Snapshot() {
		kinds[e.Kind]++
		bySite[e.Site]++
		if e.Kind == CoreFire && e.Site == siteTestOnce && onceSeq == 0 {
			onceSeq = e.Seq
		}
	}
	if kinds[CoreSchedule] == 0 || kinds[CoreFire] == 0 || kinds[CoreCancel] != 1 || kinds[CoreRearm] != 2 {
		t.Fatalf("kind mix %v", kinds)
	}
	if bySite[siteTestTick] < 3 || bySite[siteTestLater] != 3 { // sched + resched + cancel
		t.Fatalf("site mix %v", bySite)
	}
	// The tick's re-arm records must parent-chain onto its own fires.
	var lastTickFire uint64
	for _, e := range ring.Snapshot() {
		if e.Site != siteTestTick {
			continue
		}
		if e.Kind == CoreRearm && e.Parent != lastTickFire {
			t.Fatalf("rearm seq %d parent = %d, want fired seq %d", e.Seq, e.Parent, lastTickFire)
		}
		if e.Kind == CoreFire {
			lastTickFire = e.Seq
		}
	}
}

func TestSiteRegistry(t *testing.T) {
	a := RegisterSite("coreringtest.dup")
	b := RegisterSite("coreringtest.dup")
	if a != b {
		t.Fatalf("re-registering returned %d then %d", a, b)
	}
	if SiteName(a) != "coreringtest.dup" {
		t.Fatalf("SiteName = %q", SiteName(a))
	}
	if SiteName(0) != "untagged" {
		t.Fatalf("site 0 = %q, want untagged", SiteName(0))
	}
	if SiteName(Site(0xFFFF)) != "?" {
		t.Fatalf("unknown site = %q, want ?", SiteName(Site(0xFFFF)))
	}
	if NumSites() < 4 {
		t.Fatalf("NumSites = %d", NumSites())
	}
}

func TestTaggedHelpersOnSim(t *testing.T) {
	s := NewSim(2)
	ring := NewCoreRing(256)
	s.SetCoreRing(ring)
	s.Run(func() {
		fired := false
		tm := AfterFuncTagged(s, siteTestOnce, time.Millisecond, func() { fired = true })
		SleepTagged(s, siteTestTick, 5*time.Millisecond)
		if !fired {
			t.Error("tagged AfterFunc did not fire")
		}
		if tm.Stop() {
			t.Error("Stop after fire reported true")
		}
	})
	sawSleep := false
	for _, e := range ring.Snapshot() {
		if e.Kind == CoreFire && e.Site == siteTestTick {
			sawSleep = true
		}
	}
	if !sawSleep {
		t.Fatal("tagged sleep wakeup not recorded under its site")
	}
}

func TestCoreStatsAndElapsed(t *testing.T) {
	s := NewSim(3)
	s.Run(func() {
		s.ScheduleSite(siteTestOnce, time.Millisecond, func() {})
		id := s.ScheduleSite(siteTestOnce, time.Hour, func() {})
		s.Sleep(2 * time.Millisecond)
		s.Cancel(id)
	})
	st := s.CoreStats()
	if st.Scheduled < 3 || st.Fired < 2 || st.Cancelled != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Now != 2*time.Millisecond || s.Elapsed() != st.Now {
		t.Fatalf("Now = %v, Elapsed = %v", st.Now, s.Elapsed())
	}
	if st.HeapMax < 1 || st.ArenaSlots < 1 {
		t.Fatalf("high-water marks %+v", st)
	}
}

func TestWallProfileAttributesSites(t *testing.T) {
	s := NewSim(4)
	if s.WallProfile() != nil {
		t.Fatal("profile non-nil before enable")
	}
	s.EnableWallProfile()
	s.Run(func() {
		work := func() {
			x := 0
			for j := 0; j < 100; j++ {
				x += j
			}
			_ = x
		}
		// Four callbacks + one wakeup per cycle: a period of 5 fires is
		// coprime to the sampling stride, so callback fires sweep every
		// residue of nFired%WallSampleEvery and some are always sampled.
		for i := 0; i < 4*WallSampleEvery; i++ {
			s.ScheduleSite(siteTestTick, time.Millisecond, work)
			s.ScheduleSite(siteTestTick, 2*time.Millisecond, work)
			s.ScheduleSite(siteTestTick, 3*time.Millisecond, work)
			s.ScheduleSite(siteTestTick, 4*time.Millisecond, work)
			s.Sleep(5 * time.Millisecond)
		}
	})
	prof := s.WallProfile()
	if prof == nil {
		t.Fatal("profile nil after enable")
	}
	var total int64
	for _, ns := range prof {
		total += ns
	}
	if total <= 0 {
		t.Fatalf("no wall time attributed: %v", prof)
	}
}

func TestRescheduleUntagged(t *testing.T) {
	s := NewSim(5)
	s.Run(func() {
		fired := 0
		id := s.ScheduleSite(siteTestOnce, time.Hour, func() { fired++ })
		s.Reschedule(id, time.Millisecond, func() { fired++ })
		s.Sleep(2 * time.Millisecond)
		if fired != 1 {
			t.Errorf("rescheduled event fired %d times", fired)
		}
	})
}

func TestCancelEdgeCases(t *testing.T) {
	s := NewSim(6)
	ring := NewCoreRing(64)
	s.SetCoreRing(ring)
	s.Run(func() {
		if s.Cancel(0) {
			t.Error("cancelling the zero id succeeded")
		}
		// Cancel a zero-delay event before the FIFO drains it: the slot is
		// marked dead in place and reaped by popNextLocked.
		fired := false
		id := s.ScheduleSite(siteTestOnce, 0, func() { fired = true })
		if !s.Cancel(id) {
			t.Error("cancelling a queued zero-delay event failed")
		}
		if s.Cancel(id) {
			t.Error("double cancel succeeded")
		}
		s.Sleep(time.Millisecond)
		if fired {
			t.Error("cancelled zero-delay event fired anyway")
		}
		// A fired event's id is stale: cancel must be a no-op.
		id = s.ScheduleSite(siteTestOnce, time.Millisecond, func() {})
		s.Sleep(2 * time.Millisecond)
		if s.Cancel(id) {
			t.Error("cancelling a fired event succeeded")
		}
	})
	cancels := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == CoreCancel {
			cancels++
		}
	}
	if cancels != 1 {
		t.Fatalf("recorded %d cancels, want 1", cancels)
	}
}

func TestInstantHook(t *testing.T) {
	s := NewSim(7)
	hooks := 0
	s.SetInstantHook(func() { hooks++ })
	s.Run(func() {
		for i := 0; i < 3; i++ {
			s.ScheduleSite(siteTestOnce, 0, func() { s.ArmInstantHook() })
			s.Sleep(time.Millisecond)
		}
	})
	if hooks != 3 {
		t.Fatalf("instant hook ran %d times, want 3", hooks)
	}
	s.SetInstantHook(nil)
	s.ArmInstantHook() // no-op once unset
}

func TestTaggedHelpersDegradeOnRealClock(t *testing.T) {
	var clk Real
	SleepTagged(clk, siteTestTick, 0)
	done := make(chan struct{})
	tm := AfterFuncTagged(clk, siteTestTick, 0, func() { close(done) })
	<-done
	tm.Stop()
}
