// Package vtime provides a pluggable notion of time for the ESG
// reproduction: a Clock interface implemented both by real wall-clock time
// and by a deterministic discrete-event simulated clock (Sim).
//
// All simulation-aware code (the network simulator, NWS sensors, the
// request manager's monitors, GridFTP timeouts) is written against Clock,
// so the same protocol code runs over real TCP in real time and over the
// simulated WAN in virtual time. Virtual time is what makes the paper's
// one-hour (Table 1) and fourteen-hour (Figure 8) experiments run in
// milliseconds, deterministically.
package vtime

import (
	"sync"
	"time"
)

// Clock abstracts time and time-coupled concurrency. Implementations:
// Real (wall clock, std goroutines) and Sim (virtual clock, managed
// goroutines that advance time only at quiescence).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep pauses the calling goroutine for d. On a Sim clock the caller
	// must be a managed goroutine (started via Go or Run).
	Sleep(d time.Duration)
	// Go starts fn on a new goroutine managed by this clock.
	Go(fn func())
	// AfterFunc schedules fn to run after d. fn runs on the clock's event
	// context and must not block; use Go inside fn for blocking work.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewCond returns a condition variable tied to this clock whose
	// WaitTimeout is measured on this clock.
	NewCond(l sync.Locker) Cond
}

// Timer is a cancellable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// function from running.
	Stop() bool
}

// Cond is a condition variable usable with both clocks. Unlike sync.Cond
// it supports waiting with a timeout, which protocol code needs.
type Cond interface {
	// Wait atomically unlocks the associated Locker and suspends the
	// caller until Signal or Broadcast; it relocks before returning.
	Wait()
	// WaitTimeout is Wait with a deadline; it reports false if the wait
	// ended because the timeout elapsed.
	WaitTimeout(d time.Duration) bool
	// Signal wakes one waiter, if any.
	Signal()
	// Broadcast wakes all waiters.
	Broadcast()
}

// Real is the wall-clock Clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements Clock.
func (Real) Go(fn func()) { go fn() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer { return time.AfterFunc(d, fn) }

// NewCond implements Clock.
func (Real) NewCond(l sync.Locker) Cond { return newChanCond(Real{}, l) }

// chanCond is a channel-based condition variable that works for any Clock;
// it implements timeouts by racing a waiter wakeup against an AfterFunc.
type chanCond struct {
	clk Clock
	l   sync.Locker

	mu      sync.Mutex
	waiters []*waiter
}

type waiter struct {
	mu       sync.Mutex
	ch       chan struct{}
	fired    bool
	timedOut bool
}

// fire claims the waiter for either a signal or a timeout. It reports
// whether the caller won the race (and so must deliver the wakeup).
func (w *waiter) fire(timeout bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fired {
		return false
	}
	w.fired = true
	w.timedOut = timeout
	return true
}

func newChanCond(clk Clock, l sync.Locker) *chanCond {
	return &chanCond{clk: clk, l: l}
}

func (c *chanCond) Wait() { c.wait(-1) }

func (c *chanCond) WaitTimeout(d time.Duration) bool { return c.wait(d) }

func (c *chanCond) wait(d time.Duration) bool {
	w := &waiter{ch: make(chan struct{}, 1)}
	c.mu.Lock()
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	var t Timer
	if d >= 0 {
		t = c.clk.AfterFunc(d, func() {
			if w.fire(true) {
				c.wake(w)
			}
		})
	}
	c.l.Unlock()
	// Relock even if await unwinds via the simulation-teardown panic, so
	// callers' deferred Unlocks stay balanced.
	defer c.l.Lock()
	c.await(w)
	if t != nil {
		t.Stop()
	}
	return !w.timedOut
}

// await blocks until the waiter's channel is signalled. Sim overrides the
// blocking via parkCond; for Real this is a plain channel receive.
func (c *chanCond) await(w *waiter) {
	if s, ok := c.clk.(*Sim); ok {
		s.park(w.ch)
		return
	}
	<-w.ch
}

func (c *chanCond) Signal() {
	for {
		c.mu.Lock()
		if len(c.waiters) == 0 {
			c.mu.Unlock()
			return
		}
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.mu.Unlock()
		if w.fire(false) {
			c.wake(w)
			return
		}
		// That waiter had already timed out; try the next one.
	}
}

func (c *chanCond) Broadcast() {
	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	for _, w := range ws {
		if w.fire(false) {
			c.wake(w)
		}
	}
}

func (c *chanCond) wake(w *waiter) {
	if s, ok := c.clk.(*Sim); ok {
		s.unpark(w.ch)
		return
	}
	w.ch <- struct{}{}
}

// WaitGroup is a Clock-aware analog of sync.WaitGroup: Wait suspends in a
// way the simulated scheduler understands.
type WaitGroup struct {
	clk  Clock
	mu   sync.Mutex
	cond Cond
	n    int
}

// NewWaitGroup returns a WaitGroup bound to clk.
func NewWaitGroup(clk Clock) *WaitGroup {
	wg := &WaitGroup{clk: clk}
	wg.cond = clk.NewCond(&wg.mu)
	return wg
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n < 0 {
		wg.mu.Unlock()
		panic("vtime: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
	wg.mu.Unlock()
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Go runs fn on a managed goroutine and tracks it on the group.
func (wg *WaitGroup) Go(fn func()) {
	wg.Add(1)
	wg.clk.Go(func() {
		defer wg.Done()
		fn()
	})
}

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	for wg.n != 0 {
		wg.cond.Wait()
	}
	wg.mu.Unlock()
}
