// Package vtime provides a pluggable notion of time for the ESG
// reproduction: a Clock interface implemented both by real wall-clock time
// and by a deterministic discrete-event simulated clock (Sim).
//
// All simulation-aware code (the network simulator, NWS sensors, the
// request manager's monitors, GridFTP timeouts) is written against Clock,
// so the same protocol code runs over real TCP in real time and over the
// simulated WAN in virtual time. Virtual time is what makes the paper's
// one-hour (Table 1) and fourteen-hour (Figure 8) experiments run in
// milliseconds, deterministically.
package vtime

import (
	"sync"
	"time"
)

// Clock abstracts time and time-coupled concurrency. Implementations:
// Real (wall clock, std goroutines) and Sim (virtual clock, managed
// goroutines that advance time only at quiescence).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep pauses the calling goroutine for d. On a Sim clock the caller
	// must be a managed goroutine (started via Go or Run).
	Sleep(d time.Duration)
	// Go starts fn on a new goroutine managed by this clock.
	Go(fn func())
	// AfterFunc schedules fn to run after d. fn runs on the clock's event
	// context and must not block; use Go inside fn for blocking work.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewCond returns a condition variable tied to this clock whose
	// WaitTimeout is measured on this clock.
	NewCond(l sync.Locker) Cond
}

// Timer is a cancellable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// function from running.
	Stop() bool
}

// Cond is a condition variable usable with both clocks. Unlike sync.Cond
// it supports waiting with a timeout, which protocol code needs.
type Cond interface {
	// Wait atomically unlocks the associated Locker and suspends the
	// caller until Signal or Broadcast; it relocks before returning.
	Wait()
	// WaitTimeout is Wait with a deadline; it reports false if the wait
	// ended because the timeout elapsed.
	WaitTimeout(d time.Duration) bool
	// Signal wakes one waiter, if any.
	Signal()
	// Broadcast wakes all waiters.
	Broadcast()
}

// Real is the wall-clock Clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements Clock.
func (Real) Go(fn func()) { go fn() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer { return time.AfterFunc(d, fn) }

// NewCond implements Clock.
func (Real) NewCond(l sync.Locker) Cond { return newChanCond(Real{}, l) }

// chanCond is a channel-based condition variable that works for any Clock;
// it implements timeouts by racing a waiter wakeup against a scheduled
// timeout event. Waiter state transitions (fired, timed out, list
// membership) all happen under c.mu, so a timed-out waiter is removed
// from the list before Signal can see it, and — on a Sim clock — retired
// waiters can be recycled through a freelist without any wakeup racing a
// stale pointer. Steady-state Wait/Signal on a Sim clock allocates
// nothing.
type chanCond struct {
	clk Clock
	l   sync.Locker

	mu      sync.Mutex
	waiters []*waiter
	free    []*waiter // recycled waiters (Sim clock only)
}

type waiter struct {
	ch        chan struct{}
	fired     bool // claimed by a signal, broadcast, or timeout (under c.mu)
	timedOut  bool
	timeoutFn func() // cached timeout callback (Sim clock only)
}

func newChanCond(clk Clock, l sync.Locker) *chanCond {
	return &chanCond{clk: clk, l: l}
}

func (c *chanCond) Wait() { c.wait(-1) }

func (c *chanCond) WaitTimeout(d time.Duration) bool { return c.wait(d) }

func (c *chanCond) wait(d time.Duration) bool {
	sim, isSim := c.clk.(*Sim)
	c.mu.Lock()
	var w *waiter
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free = c.free[:n-1]
		w.fired, w.timedOut = false, false
	} else {
		w = &waiter{ch: make(chan struct{}, 1)}
		if isSim {
			w.timeoutFn = func() { c.timeout(w) }
		}
	}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	var id EventID
	var t Timer
	if d >= 0 {
		if isSim {
			id = sim.ScheduleSite(siteCondTimeout, d, w.timeoutFn)
		} else {
			t = c.clk.AfterFunc(d, func() { c.timeout(w) })
		}
	}
	c.l.Unlock()
	// Relock even if await unwinds via the simulation-teardown panic, so
	// callers' deferred Unlocks stay balanced.
	defer c.l.Lock()
	c.await(w)
	cancelled := false
	if id != 0 {
		cancelled = sim.Cancel(id)
	} else if t != nil {
		cancelled = t.Stop()
	}
	timedOut := w.timedOut
	// Recycle only when no timeout callback can still hold a reference:
	// either it already ran (timedOut) or it was provably cancelled. A
	// signalled waiter whose cancel lost the race is simply dropped.
	if isSim && (timedOut || cancelled || d < 0) {
		c.mu.Lock()
		c.free = append(c.free, w)
		c.mu.Unlock()
	}
	return !timedOut
}

// timeout is the deadline callback: it claims the waiter, removes it from
// the wait list so signals skip it, and delivers its wakeup.
func (c *chanCond) timeout(w *waiter) {
	c.mu.Lock()
	if w.fired {
		c.mu.Unlock()
		return
	}
	w.fired = true
	w.timedOut = true
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	c.wakeLocked(w)
	c.mu.Unlock()
}

// await blocks until the waiter's channel is signalled. Sim overrides the
// blocking via park; for Real this is a plain channel receive.
func (c *chanCond) await(w *waiter) {
	if s, ok := c.clk.(*Sim); ok {
		s.park(w.ch)
		return
	}
	<-w.ch
}

func (c *chanCond) Signal() {
	c.mu.Lock()
	// Every waiter still in the list is live: timeouts remove themselves.
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.fired = true
		c.wakeLocked(w)
	}
	c.mu.Unlock()
}

func (c *chanCond) Broadcast() {
	c.mu.Lock()
	for _, w := range c.waiters {
		w.fired = true
		c.wakeLocked(w)
	}
	c.waiters = c.waiters[:0]
	c.mu.Unlock()
}

// wakeLocked delivers a wakeup with c.mu held; the waiter channel is
// buffered and carries at most one pending signal, so the send cannot
// block.
func (c *chanCond) wakeLocked(w *waiter) {
	if s, ok := c.clk.(*Sim); ok {
		s.unpark(w.ch)
		return
	}
	w.ch <- struct{}{}
}

// WaitGroup is a Clock-aware analog of sync.WaitGroup: Wait suspends in a
// way the simulated scheduler understands.
type WaitGroup struct {
	clk  Clock
	mu   sync.Mutex
	cond Cond
	n    int
}

// NewWaitGroup returns a WaitGroup bound to clk.
func NewWaitGroup(clk Clock) *WaitGroup {
	wg := &WaitGroup{clk: clk}
	wg.cond = clk.NewCond(&wg.mu)
	return wg
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n < 0 {
		wg.mu.Unlock()
		panic("vtime: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
	wg.mu.Unlock()
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Go runs fn on a managed goroutine and tracks it on the group.
func (wg *WaitGroup) Go(fn func()) {
	wg.Add(1)
	wg.clk.Go(func() {
		defer wg.Done()
		fn()
	})
}

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	for wg.n != 0 {
		wg.cond.Wait()
	}
	wg.mu.Unlock()
}
