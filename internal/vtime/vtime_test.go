package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	s := NewSim(1)
	var elapsed time.Duration
	start := time.Now()
	s.Run(func() {
		t0 := s.Now()
		s.Sleep(3 * time.Hour)
		elapsed = s.Now().Sub(t0)
	})
	if elapsed != 3*time.Hour {
		t.Fatalf("virtual elapsed = %v, want 3h", elapsed)
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("3h of virtual time took %v of real time", real)
	}
}

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(1)
	s.Run(func() {
		if !s.Now().Equal(Epoch) {
			t.Errorf("Now() = %v, want Epoch %v", s.Now(), Epoch)
		}
	})
}

func TestSimOrderingOfSleepers(t *testing.T) {
	s := NewSim(1)
	var order []int
	var mu sync.Mutex
	s.Run(func() {
		wg := NewWaitGroup(s)
		for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
			i, d := i, d
			wg.Go(func() {
				s.Sleep(d)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimAfterFuncFiresAtDueTime(t *testing.T) {
	s := NewSim(1)
	var firedAt time.Time
	s.Run(func() {
		s.AfterFunc(90*time.Second, func() { firedAt = s.Now() })
		s.Sleep(5 * time.Minute)
	})
	if want := Epoch.Add(90 * time.Second); !firedAt.Equal(want) {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.Run(func() {
		tm := s.AfterFunc(time.Second, func() { fired = true })
		if !tm.Stop() {
			t.Error("first Stop() = false, want true")
		}
		if tm.Stop() {
			t.Error("second Stop() = true, want false")
		}
		s.Sleep(2 * time.Second)
	})
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSimCondSignalWakesWaiter(t *testing.T) {
	s := NewSim(1)
	var mu sync.Mutex
	ready := false
	var wokenAt time.Time
	s.Run(func() {
		cond := s.NewCond(&mu)
		wg := NewWaitGroup(s)
		wg.Go(func() {
			mu.Lock()
			for !ready {
				cond.Wait()
			}
			mu.Unlock()
			wokenAt = s.Now()
		})
		wg.Go(func() {
			s.Sleep(time.Minute)
			mu.Lock()
			ready = true
			cond.Broadcast()
			mu.Unlock()
		})
		wg.Wait()
	})
	if want := Epoch.Add(time.Minute); !wokenAt.Equal(want) {
		t.Fatalf("woken at %v, want %v", wokenAt, want)
	}
}

func TestSimCondWaitTimeout(t *testing.T) {
	s := NewSim(1)
	var mu sync.Mutex
	var ok bool
	var waited time.Duration
	s.Run(func() {
		cond := s.NewCond(&mu)
		mu.Lock()
		t0 := s.Now()
		ok = cond.WaitTimeout(250 * time.Millisecond)
		waited = s.Now().Sub(t0)
		mu.Unlock()
	})
	if ok {
		t.Fatal("WaitTimeout = true with no signaller, want false")
	}
	if waited != 250*time.Millisecond {
		t.Fatalf("waited %v, want 250ms", waited)
	}
}

func TestSimCondSignalSkipsTimedOutWaiter(t *testing.T) {
	s := NewSim(1)
	var mu sync.Mutex
	got := make(map[string]bool)
	s.Run(func() {
		cond := s.NewCond(&mu)
		wg := NewWaitGroup(s)
		wg.Go(func() { // times out at 10ms
			mu.Lock()
			got["short"] = cond.WaitTimeout(10 * time.Millisecond)
			mu.Unlock()
		})
		wg.Go(func() { // patient waiter
			s.Sleep(time.Millisecond) // ensure ordering after the short waiter registers
			mu.Lock()
			got["long"] = cond.WaitTimeout(time.Hour)
			mu.Unlock()
		})
		wg.Go(func() {
			s.Sleep(20 * time.Millisecond)
			mu.Lock()
			cond.Signal() // short already timed out; must reach the long waiter
			mu.Unlock()
		})
		wg.Wait()
	})
	if got["short"] {
		t.Error("short waiter reported signalled, want timeout")
	}
	if !got["long"] {
		t.Error("long waiter reported timeout, want signalled")
	}
}

func TestSimDeterministicRand(t *testing.T) {
	a, b := NewSim(42), NewSim(42)
	for i := 0; i < 100; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("same-seed sims diverged")
		}
	}
	c := NewSim(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewSim(42).Rand() == c.Rand() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSimDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := NewSim(1)
	s.Run(func() {
		var mu sync.Mutex
		cond := s.NewCond(&mu)
		mu.Lock()
		cond.Wait() // nobody will ever signal and no events pending
	})
}

func TestSimTeardownUnwindsParkedGoroutines(t *testing.T) {
	s := NewSim(1)
	cleaned := make(chan struct{}, 1)
	s.Run(func() {
		s.Go(func() {
			defer func() { cleaned <- struct{}{} }()
			s.Sleep(time.Hour) // still parked when Run's main returns
		})
		s.Sleep(time.Millisecond)
	})
	select {
	case <-cleaned:
	case <-time.After(5 * time.Second):
		t.Fatal("parked goroutine was not unwound at teardown")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	c.Sleep(10 * time.Millisecond)
	if c.Now().Sub(t0) < 5*time.Millisecond {
		t.Fatal("Real.Sleep did not sleep")
	}
	var mu sync.Mutex
	cond := c.NewCond(&mu)
	mu.Lock()
	if cond.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("Real cond WaitTimeout = true with no signaller")
	}
	mu.Unlock()

	done := make(chan struct{})
	c.Go(func() { close(done) })
	<-done

	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("Real.AfterFunc did not fire")
	}
}

func TestWaitGroupWaitsForAll(t *testing.T) {
	s := NewSim(7)
	var doneAt time.Time
	s.Run(func() {
		wg := NewWaitGroup(s)
		for i := 1; i <= 5; i++ {
			d := time.Duration(i) * time.Second
			wg.Go(func() { s.Sleep(d) })
		}
		wg.Wait()
		doneAt = s.Now()
	})
	if want := Epoch.Add(5 * time.Second); !doneAt.Equal(want) {
		t.Fatalf("Wait returned at %v, want %v", doneAt, want)
	}
}

func TestSimManyGoroutinesStress(t *testing.T) {
	s := NewSim(3)
	const n = 500
	var mu sync.Mutex
	total := 0
	s.Run(func() {
		wg := NewWaitGroup(s)
		for i := 0; i < n; i++ {
			i := i
			wg.Go(func() {
				for j := 0; j < 5; j++ {
					s.Sleep(time.Duration(1+(i+j)%17) * time.Millisecond)
				}
				mu.Lock()
				total++
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if total != n {
		t.Fatalf("completed %d goroutines, want %d", total, n)
	}
}

func TestSimRandDistributionsDeterministic(t *testing.T) {
	a, b := NewSim(9), NewSim(9)
	for i := 0; i < 50; i++ {
		if a.RandExp(2.5) != b.RandExp(2.5) {
			t.Fatal("RandExp diverged for equal seeds")
		}
		if a.RandNorm(10, 3) != b.RandNorm(10, 3) {
			t.Fatal("RandNorm diverged for equal seeds")
		}
	}
	// Sanity on the moments.
	s := NewSim(10)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.RandExp(4)
	}
	if mean := sum / n; mean < 3.8 || mean > 4.2 {
		t.Fatalf("RandExp mean = %v, want ~4", mean)
	}
}

func TestSimAfterFuncZeroDelay(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.Run(func() {
		s.AfterFunc(-time.Second, func() { fired = true }) // clamped to 0
		s.Sleep(time.Millisecond)
	})
	if !fired {
		t.Fatal("zero-delay AfterFunc never fired")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := NewSim(1)
	s.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("negative WaitGroup did not panic")
			}
		}()
		wg := NewWaitGroup(s)
		wg.Done()
	})
}
