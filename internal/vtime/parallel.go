package vtime

import (
	"runtime"
	"sync/atomic"
)

// Deterministic fan-out across a fixed worker pool.
//
// The simulator advances time at quiescence on a single goroutine, and
// everything observable — event sequence numbers, RNG draws, log and
// flight-record emission order — is defined by what that goroutine does.
// Parallelism therefore cannot touch any of it. What it can touch is
// pure computation whose inputs are frozen for the duration of an
// instant: the network allocator's per-component fold + water-filling
// passes, which read state no other component shares and write results
// no one reads until the fan completes.
//
// Fan is that primitive. The caller (always the advancing goroutine)
// partitions its work into tasks 0..n-1; task t runs on lane t mod W,
// where W is the configured worker count. Lane 0 is the caller itself,
// lanes 1..W-1 are pool goroutines. Assignment is static — no work
// stealing — so which lane computes which task is a pure function of
// the task index, never of OS scheduling. Combined with effect-free
// task bodies this makes the parallel execution bit-identical to the
// sequential one: floating-point work happens per task in task-local
// order, and the caller applies all observable effects after the fan,
// in canonical task order.
//
// The pool synchronizes with sync/atomic publish/collect counters (gen
// to hand work out, done to collect it), which the race detector and
// the Go memory model both recognize as happens-before edges: writes
// made by a task body are visible to the caller once Fan returns.
// Workers spin briefly between fans (bursts of flushes arrive every
// simulated RTT) and park on a buffered wake channel when idle, so an
// idle pool costs nothing and a hot one never syscalls. Fan itself
// performs no allocation in steady state.
type workerPool struct {
	lanes int // total lanes including the caller's lane 0
	// Per-fan state: written by the caller, published by the gen bump
	// (release), read by workers after observing it (acquire).
	run   Runner
	tasks int
	gen   atomic.Uint32
	done  atomic.Int32
	wake  []chan struct{} // one per pool worker, buffered(1)
	quit  chan struct{}   // closed by SetWorkers to retire the pool
	stopc chan struct{}   // owning Sim's stop channel; closed when Run ends
}

// Runner is a unit of fan-out work. RunTask is invoked once per task
// index, potentially concurrently from multiple worker lanes; worker
// identifies the lane (0 = the calling goroutine) so implementations
// can use per-lane scratch. Task bodies must be effect-free with
// respect to the simulation: no clock scheduling, no RNG, no channel
// or log traffic — confine writes to task-local state and apply
// observable effects after Fan returns, in canonical task order.
type Runner interface {
	RunTask(task, worker int)
}

const (
	fanSpin  = 2048 // gen polls before an idle worker parks
	fanYield = 128  // polls between Gosched calls while spinning
)

func newWorkerPool(lanes int, stopc chan struct{}) *workerPool {
	p := &workerPool{
		lanes: lanes,
		wake:  make([]chan struct{}, lanes-1),
		quit:  make(chan struct{}),
		stopc: stopc,
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(i + 1)
	}
	return p
}

func (p *workerPool) worker(lane int) {
	var seen uint32
	for {
		if g := p.gen.Load(); g != seen {
			seen = g
			for t := lane; t < p.tasks; t += p.lanes {
				p.run.RunTask(t, lane)
			}
			p.done.Add(1)
			continue
		}
		fresh := false
		for i := 0; i < fanSpin; i++ {
			if p.gen.Load() != seen {
				fresh = true
				break
			}
			if i%fanYield == fanYield-1 {
				runtime.Gosched()
			}
		}
		if fresh {
			continue
		}
		// A stale token left in wake (sent while we were spinning) costs
		// one spurious loop, never a missed fan: the token's presence
		// guarantees another gen check.
		select {
		case <-p.wake[lane-1]:
		case <-p.quit:
			return
		case <-p.stopc:
			return
		}
	}
}

// SetWorkers configures the parallel lane count. n <= 1 selects
// sequential execution (the default and the reference mode); n > 1
// starts n-1 pool goroutines that serve Fan calls until reconfigured
// or until the simulation stops. Call it during setup, before Run —
// reconfiguring while a Fan is in flight is not supported.
func (s *Sim) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if p := s.pool; p != nil {
		if p.lanes == n {
			return
		}
		close(p.quit)
		s.pool = nil
	}
	if n > 1 {
		s.pool = newWorkerPool(n, s.stopc)
	}
	s.nWorkers.Store(int32(n))
}

// Workers reports the configured lane count; 1 means sequential.
// Lock-free, so hot paths can consult it while deciding whether to fan.
func (s *Sim) Workers() int {
	if w := s.nWorkers.Load(); w > 1 {
		return int(w)
	}
	return 1
}

// Fan runs tasks 0..tasks-1 on the worker pool and returns when all of
// them have completed. Task t runs on lane t mod W; the caller is lane
// 0. With no pool (sequential mode) or a single task it degenerates to
// an in-order loop on the calling goroutine, which is also the
// reference semantics the parallel path must reproduce. Writes made by
// task bodies are visible to the caller on return.
//
//esglint:hotpath per-instant fan-out barrier; runs once per dirty instant on the flush path
func (s *Sim) Fan(tasks int, r Runner) {
	p := s.pool
	if p == nil || tasks <= 1 {
		for t := 0; t < tasks; t++ {
			r.RunTask(t, 0)
		}
		return
	}
	p.run = r
	p.tasks = tasks
	p.done.Store(0)
	p.gen.Add(1)
	for _, c := range p.wake {
		select {
		case c <- struct{}{}:
		default: // worker is spinning or already has a token
		}
	}
	for t := 0; t < tasks; t += p.lanes {
		r.RunTask(t, 0)
	}
	for i := 0; p.done.Load() != int32(p.lanes-1); i++ {
		if i%fanYield == fanYield-1 {
			runtime.Gosched()
		}
	}
}
