package vtime

import (
	"sync"
	"time"
)

// Site identifies the scheduling call site of an event — "simnet.growth",
// "rm.retry-backoff", "chaos.fault" — as a compact integer so every
// pending event can carry its origin at zero marginal cost. Site 0 is
// the untagged default. Sites are the unit of provenance labeling and of
// per-subsystem profiling: the flight recorder stamps them into packed
// records, and the core profiler attributes event counts and wall time
// to them.
type Site uint16

// The global site registry. Sites are registered once, at package init
// time (`var siteX = vtime.RegisterSite(...)`), so IDs are assigned in
// deterministic package-initialization order and equal binaries agree on
// the mapping. Dumps and reports always render the name, never the raw
// ID, so recorded output is stable even if the numbering shifts.
var (
	siteMu    sync.Mutex
	siteNames = []string{"untagged"}
	siteIDs   = map[string]Site{"untagged": 0}
)

// RegisterSite interns name and returns its Site. Registering the same
// name twice returns the same Site. The registry is capped at 65535
// sites; exceeding it panics (a leak of per-call registrations, not a
// workload property).
func RegisterSite(name string) Site {
	siteMu.Lock()
	defer siteMu.Unlock()
	if id, ok := siteIDs[name]; ok {
		return id
	}
	if len(siteNames) > 0xFFFF {
		panic("vtime: site registry overflow (register sites at init, not per call)")
	}
	id := Site(len(siteNames))
	siteNames = append(siteNames, name)
	siteIDs[name] = id
	return id
}

// SiteName returns the registered name of s ("untagged" for 0, "?" for
// an unknown ID).
func SiteName(s Site) string {
	siteMu.Lock()
	defer siteMu.Unlock()
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "?"
}

// NumSites reports how many sites are registered (including untagged).
func NumSites() int {
	siteMu.Lock()
	defer siteMu.Unlock()
	return len(siteNames)
}

// Sites built into the clock itself: Sleep wakeups, AfterFunc timers and
// condition-variable timeouts that arrive through the generic Clock
// interface and therefore carry no caller tag of their own.
var (
	siteSleep       = RegisterSite("vtime.sleep")
	siteAfterFunc   = RegisterSite("vtime.afterfunc")
	siteCondTimeout = RegisterSite("vtime.cond-timeout")
)

// SleepTagged is Sleep with a provenance site tag when clk is a Sim; on
// any other clock it degrades to a plain Sleep. Protocol code written
// against the Clock interface uses this to label its delay semantics
// ("rm.retry-backoff", "hrm.stage-wait") without depending on the
// simulated clock.
func SleepTagged(clk Clock, site Site, d time.Duration) {
	if s, ok := clk.(*Sim); ok {
		s.SleepSite(site, d)
		return
	}
	clk.Sleep(d)
}

// AfterFuncTagged is AfterFunc with a provenance site tag when clk is a
// Sim; on any other clock it degrades to a plain AfterFunc.
func AfterFuncTagged(clk Clock, site Site, d time.Duration, fn func()) Timer {
	if s, ok := clk.(*Sim); ok {
		id := s.ScheduleSite(site, d, fn)
		return &simTimer{s: s, id: id}
	}
	return clk.AfterFunc(d, fn)
}

// CoreStats is a point-in-time snapshot of the event core's vital signs,
// the raw material of the core profiler: queue depths and their
// high-water marks, arena occupancy, and lifetime event counts.
type CoreStats struct {
	Now        time.Duration // virtual time elapsed since Epoch
	HeapLen    int           // events currently in the timer heap
	HeapMax    int           // high-water mark of HeapLen
	ImmLen     int           // live entries in the zero-delay FIFO
	ImmMax     int           // high-water mark of ImmLen
	ArenaSlots int           // event slots ever allocated
	FreeSlots  int           // of those, currently on the freelist
	Scheduled  uint64        // events ever scheduled (incl. reschedules)
	Fired      uint64        // events delivered
	Cancelled  uint64        // events revoked before firing
	Rearmed    uint64        // RearmFiring re-arms
}

// CoreStats returns the current core vitals.
func (s *Sim) CoreStats() CoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CoreStats{
		Now:        s.now,
		HeapLen:    len(s.heap),
		HeapMax:    s.heapMax,
		ImmLen:     s.immLive,
		ImmMax:     s.immMax,
		ArenaSlots: len(s.slots),
		FreeSlots:  len(s.free),
		Scheduled:  s.nSched,
		Fired:      s.nFired,
		Cancelled:  s.nCancelled,
		Rearmed:    s.nRearmed,
	}
}

// WallSampleEvery is the deterministic sampling stride of the wall-time
// profiler: every N-th fired callback is timed with two wall-clock reads
// and its cost, scaled by N, is attributed to the event's site. The
// stride keeps always-on overhead near one nanosecond per event while a
// few thousand samples already rank subsystems faithfully.
const WallSampleEvery = 16

// EnableWallProfile turns on sampled wall-nanosecond attribution of
// event callbacks to their scheduling sites. Purely observational: it
// reads the wall clock around sampled callbacks but never feeds the
// result back into the simulation, so virtual-time behavior and all
// recorded streams are unchanged. Wall numbers vary run to run and are
// deliberately excluded from flight dumps.
func (s *Sim) EnableWallProfile() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wallNs == nil {
		s.wallNs = make([]int64, NumSites())
	}
}

// WallProfile returns the sampled wall-nanosecond totals attributed to
// each site, indexed by Site, or nil when profiling is off. Sites
// registered after EnableWallProfile fold into the last index.
func (s *Sim) WallProfile() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wallNs == nil {
		return nil
	}
	out := make([]int64, len(s.wallNs))
	copy(out, s.wallNs)
	return out
}
