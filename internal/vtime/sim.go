package vtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Epoch is the instant at which every simulated clock starts: the first
// day of the SC'00 exhibition, during which the paper's experiments ran.
var Epoch = time.Date(2000, time.November, 6, 8, 0, 0, 0, time.UTC)

// NextTick returns the first Epoch-aligned multiple of tick strictly
// after t. Both the monitor plane and the telemetry aggregation tree
// sample on this grid: aligning ticks to the Epoch (rather than to
// whenever a component happened to start) makes tick instants a
// property of the timeline, so live, replayed, and re-foliated runs
// agree sample for sample.
func NextTick(t time.Time, tick time.Duration) time.Time {
	d := t.Sub(Epoch)
	steps := d / tick
	b := Epoch.Add(steps * tick)
	for !b.After(t) {
		b = b.Add(tick)
	}
	return b
}

// Sim is a deterministic discrete-event simulated clock.
//
// Scheduling model: goroutines started with Go (or the function passed to
// Run) are "managed". The clock counts how many managed goroutines are
// runnable; when a managed goroutine blocks in Sleep or Cond.Wait the
// count drops, and the last goroutine to block advances virtual time by
// firing the earliest pending event(s) until some goroutine is runnable
// again. Time therefore advances only at quiescence, which makes the
// simulation repeatable and lets hours of virtual time pass in
// microseconds of real time.
//
// Event core: pending events live in a slot arena indexed by a 4-ary
// int32 min-heap ordered on (due time, sequence); each slot carries its
// heap position, so cancels and re-keys touch only the affected path.
// Slots are recycled through a freelist the moment an event fires or is
// cancelled, so timer-heavy workloads (AIMD window growth, loss sampling,
// per-segment completions) run at zero steady-state allocation and a
// cancel storm cannot grow the queue. Zero-delay events skip the heap and
// ride a FIFO for the current instant. Sleep wakeups reuse a
// per-goroutine parker (a cached channel) instead of allocating a channel
// and a closure per call.
//
// Event callbacks scheduled with AfterFunc run at their due time, on the
// goroutine that happened to advance the clock; they must not block.
type Sim struct {
	mu        sync.Mutex
	now       time.Duration // offset from Epoch
	nowAtomic atomic.Int64  // mirror of now for lock-free reads
	slots     []eventSlot   // arena of event slots
	free      []int32       // recycled slot indices (LIFO)
	heap      []heapEnt     // min-heap of (at, seq, slot) by (at, seq)
	immQ      []int32       // FIFO of zero-delay slots due at the current instant
	immHead   int           // index of the first live immQ entry
	immLive   int           // immQ entries not yet cancelled
	seq       uint64
	runnable  int
	advancing bool
	parked    int
	parkers   []*parker // freelist of Sleep parkers
	// instantHook, when armed, runs once the current instant's events are
	// exhausted — just before virtual time would advance. It replaces a
	// zero-delay event on the highest-frequency path in the tree (the
	// network allocator's flush): arming is an atomic flag flip instead of
	// a schedule/pop cycle, and the hook's position (after every event due
	// at this instant) is exactly where a zero-delay event would land,
	// since only other zero-delay schedules can carry a later sequence at
	// the same instant and the flush dedups itself.
	instantHook func()
	hookSet     atomic.Bool // instantHook != nil, readable without mu
	hookArmed   atomic.Bool
	// firing / rearm implement RearmFiring: while an event callback runs,
	// its slot stays reserved and these fields pass a re-arm request back
	// to the advance loop. They are only touched by the advancing
	// goroutine (the callback runs on it), so no locking is involved.
	firingID   EventID
	rearmDelay time.Duration
	stopc      chan struct{}
	stopped    bool
	// unwind counts live managed goroutines so Run can join them before
	// returning. Without the join, goroutines still unwinding their
	// stopped-panic after Run (deferred Closes cancelling timers) would
	// race with — and nondeterministically reorder against — post-run
	// reads of the flight ring and stats.
	unwind sync.WaitGroup
	rng    *rand.Rand
	rngMu  sync.Mutex

	// pool serves Fan calls when SetWorkers opted into parallel
	// instant-boundary execution (parallel.go); nWorkers mirrors the
	// configured lane count for lock-free reads on flush paths.
	pool     *workerPool
	nWorkers atomic.Int32

	// Observability (always on; see site.go and internal/flight).
	// lastFired is the seq of the event most recently delivered at the
	// current instant: the causal parent stamped onto events scheduled
	// while it (or the goroutines it woke) run. ring, when set, records
	// every schedule/fire/cancel/re-arm under mu (see corering.go). The
	// remaining fields are the core profiler's counters and high-water
	// marks, plus the sampled wall-time attribution arrays (nil when
	// disabled).
	lastFired  uint64
	ring       *CoreRing
	heapMax    int
	immMax     int
	nSched     uint64
	nFired     uint64
	nCancelled uint64
	nRearmed   uint64
	wallNs     []int64 // per-site sampled wall ns; nil = profiling off
}

// eventSlot is one pending (or recycled) event. A slot is live while it
// sits in the heap (heapIdx >= 0) or the immediate queue; state says
// where. gen increments on every recycle, so a stale EventID can never
// cancel the slot's next tenant.
type eventSlot struct {
	at      time.Duration
	seq     uint64
	parent  uint64 // seq of the event firing when this one was scheduled
	gen     uint32
	heapIdx int32 // position in heap, or -1
	state   int32
	site    Site // scheduling call site (provenance label)
	fn      func()
	wake    chan struct{} // parker channel to signal; nil for fn events
}

// eventSlot states.
const (
	notQueued    = -1 // free, fired, or cancelled-and-recycled
	immQueued    = -2 // pending in the immediate (zero-delay) FIFO
	immCancelled = -3 // cancelled in place; recycled when its FIFO turn comes
	inHeap       = -4 // pending in the event heap
)

// heapEnt is one heap entry: the ordering key packed next to the slot
// index, so sift compares read the heap's own cache lines instead of
// chasing pointers into the slot arena. The slot's heapIdx back-pointer
// makes cancels and in-place re-keys O(depth) with no lazy-deletion
// residue.
type heapEnt struct {
	at   time.Duration
	seq  uint64
	slot int32
}

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// EventID names one scheduled event for cancellation. The zero EventID is
// "no event".
type EventID uint64

func makeEventID(slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(slot+1))
}

func splitEventID(id EventID) (slot int32, gen uint32) {
	return int32(uint32(id)) - 1, uint32(id >> 32)
}

// parker is a reusable wakeup channel for one parked goroutine.
type parker struct {
	ch chan struct{}
}

// NewSim returns a simulated clock whose random source is seeded with
// seed, so runs are reproducible.
func NewSim(seed int64) *Sim {
	return &Sim{
		stopc: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// simStopped is the panic value used to unwind managed goroutines that are
// still parked when Run returns; Go's wrapper recovers it.
type stoppedPanic struct{}

// ErrStopped is returned by helpers that observe a torn-down simulation.
var ErrStopped = fmt.Errorf("vtime: simulation stopped")

// Now implements Clock. The read is lock-free: virtual time has a single
// writer (the advancing goroutine, under mu) mirrored through an atomic,
// and within one event callback or one managed goroutine's runnable
// window the clock cannot move, so the value is stable where it matters.
func (s *Sim) Now() time.Time {
	return Epoch.Add(time.Duration(s.nowAtomic.Load()))
}

// Elapsed returns the virtual time elapsed since the simulation started.
func (s *Sim) Elapsed() time.Duration {
	return time.Duration(s.nowAtomic.Load())
}

// Rand returns a deterministic pseudo-random float64 in [0,1).
func (s *Sim) Rand() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// RandExp returns an exponentially distributed value with the given mean.
func (s *Sim) RandExp(mean float64) float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.ExpFloat64() * mean
}

// RandNorm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Sim) RandNorm(mean, stddev float64) float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.NormFloat64()*stddev + mean
}

// --- slot arena + heap (all methods called with s.mu held) ---

// allocSlotLocked pops a recycled slot or grows the arena.
func (s *Sim) allocSlotLocked() int32 {
	if n := len(s.free); n > 0 {
		i := s.free[n-1]
		s.free = s.free[:n-1]
		return i
	}
	s.slots = append(s.slots, eventSlot{state: notQueued, heapIdx: -1})
	return int32(len(s.slots) - 1)
}

// freeSlotLocked recycles a fired or cancelled slot.
func (s *Sim) freeSlotLocked(i int32) {
	sl := &s.slots[i]
	sl.fn = nil
	sl.wake = nil
	sl.state = notQueued
	sl.heapIdx = -1
	sl.gen++
	s.free = append(s.free, i)
}

// The heap is 4-ary: half the depth of a binary heap, so pops — the
// dominant operation in an event loop — do half the level moves, at the
// cost of more (cheap, in-cache) compares per level. Pop order is
// arity-independent: (at, seq) is a total order. Sifts hole-shift the
// moving entry instead of swapping pairwise, writing each displaced
// entry's heapIdx once.
func (s *Sim) siftUpLocked(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		s.slots[h[p].slot].heapIdx = int32(i)
		i = p
	}
	h[i] = e
	s.slots[e.slot].heapIdx = int32(i)
}

func (s *Sim) siftDownLocked(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for c++; c < end; c++ {
			if entLess(h[c], h[m]) {
				m = c
			}
		}
		if !entLess(h[m], e) {
			break
		}
		h[i] = h[m]
		s.slots[h[m].slot].heapIdx = int32(i)
		i = m
	}
	h[i] = e
	s.slots[e.slot].heapIdx = int32(i)
}

// pushEventLocked enters a filled slot into the heap.
func (s *Sim) pushEventLocked(i int32) {
	sl := &s.slots[i]
	sl.state = inHeap
	sl.heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, heapEnt{at: sl.at, seq: sl.seq, slot: i})
	if len(s.heap) > s.heapMax {
		s.heapMax = len(s.heap)
	}
	s.siftUpLocked(len(s.heap) - 1)
}

// removeEventLocked detaches the slot at heap position pos, restoring the
// heap property around the entry moved into its place.
func (s *Sim) removeEventLocked(pos int) {
	last := len(s.heap) - 1
	s.slots[s.heap[pos].slot].heapIdx = -1
	if pos != last {
		s.heap[pos] = s.heap[last]
		s.heap = s.heap[:last]
		s.slots[s.heap[pos].slot].heapIdx = int32(pos)
		s.siftDownLocked(pos)
		s.siftUpLocked(pos)
	} else {
		s.heap = s.heap[:last]
	}
}

// popEventLocked removes and returns the earliest heap slot index (-1 if
// none).
func (s *Sim) popEventLocked() int32 {
	if len(s.heap) == 0 {
		return -1
	}
	i := s.heap[0].slot
	s.removeEventLocked(0)
	s.slots[i].state = notQueued
	return i
}

// scheduleLocked enters an event (fn callback or parker wakeup) due after
// d and returns its id. Zero-delay events — due at the current instant, a
// constant stream on the allocator flush path — skip the heap entirely
// and ride a FIFO: same (at, seq) firing order, O(1) instead of two
// O(log n) sifts per event.
func (s *Sim) scheduleLocked(d time.Duration, fn func(), wake chan struct{}, site Site) EventID {
	i := s.allocSlotLocked()
	sl := &s.slots[i]
	sl.seq = s.seq
	sl.parent = s.lastFired
	sl.site = site
	sl.fn = fn
	sl.wake = wake
	s.seq++
	s.nSched++
	if d <= 0 {
		sl.at = s.now
		sl.state = immQueued
		s.immQ = append(s.immQ, i)
		s.immLive++
		if s.immLive > s.immMax {
			s.immMax = s.immLive
		}
	} else {
		sl.at = s.now + d
		s.pushEventLocked(i)
	}
	if r := s.ring; r != nil {
		r.Put(CoreSchedule, int64(s.now), int64(sl.at), sl.seq, sl.parent, site)
	}
	return makeEventID(i, sl.gen)
}

// popNextLocked removes and returns the globally earliest pending slot by
// (at, seq), merging the immediate FIFO with the heap; -1 if none.
// Immediate entries are due at the instant they were scheduled, so the
// FIFO is drained (in seq order) before virtual time can pass it — the
// only contest is against heap events due at the same instant with an
// earlier sequence number.
func (s *Sim) popNextLocked() int32 {
	// Reap cancelled-in-place immediate entries.
	for s.immHead < len(s.immQ) {
		i := s.immQ[s.immHead]
		if s.slots[i].state != immCancelled {
			break
		}
		s.immHead++
		s.freeSlotLocked(i)
	}
	if s.immHead == len(s.immQ) {
		s.immQ = s.immQ[:0]
		s.immHead = 0
		return s.popEventLocked()
	}
	im := s.immQ[s.immHead]
	if len(s.heap) > 0 {
		sl := &s.slots[im]
		if entLess(s.heap[0], heapEnt{at: sl.at, seq: sl.seq, slot: im}) {
			return s.popEventLocked()
		}
	}
	s.immHead++
	s.immLive--
	s.slots[im].state = notQueued
	return im
}

// Schedule arms fn to run after d on the clock's event context, exactly
// like AfterFunc, but hands back a plain EventID instead of a Timer so
// hot paths that cache their callback closures can schedule and cancel
// with zero heap allocation.
func (s *Sim) Schedule(d time.Duration, fn func()) EventID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduleLocked(d, fn, nil, 0)
}

// ScheduleSite is Schedule with a provenance site tag (see RegisterSite):
// the event carries the tag through the flight recorder and profiler, so
// a fired timer can be attributed to the subsystem that armed it.
func (s *Sim) ScheduleSite(site Site, d time.Duration, fn func()) EventID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduleLocked(d, fn, nil, site)
}

// Reschedule moves a pending event to fire after d with callback fn and
// returns its id. A zero, stale, or already-fired id arms fn afresh,
// exactly like Schedule. A still-pending heap event is re-keyed in place
// — one sift along its heap path under a single lock acquisition,
// instead of two lock cycles, a removal and a push. The re-keyed event
// takes a fresh sequence number, exactly as a cancel-and-schedule would.
func (s *Sim) Reschedule(id EventID, d time.Duration, fn func()) EventID {
	return s.RescheduleSite(0, id, d, fn)
}

// RescheduleSite is Reschedule with a provenance site tag; a re-keyed
// event takes the new tag and a fresh causal parent, exactly as a
// cancel-and-ScheduleSite pair would.
func (s *Sim) RescheduleSite(site Site, id EventID, d time.Duration, fn func()) EventID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id != 0 {
		slot, gen := splitEventID(id)
		if slot >= 0 && int(slot) < len(s.slots) {
			sl := &s.slots[slot]
			if sl.gen == gen && sl.state == inHeap && d > 0 {
				sl.at = s.now + d
				sl.seq = s.seq
				sl.parent = s.lastFired
				sl.site = site
				s.seq++
				s.nSched++
				sl.fn = fn
				pos := int(sl.heapIdx)
				s.heap[pos].at = sl.at
				s.heap[pos].seq = sl.seq
				s.siftDownLocked(pos)
				s.siftUpLocked(pos)
				if r := s.ring; r != nil {
					r.Put(CoreSchedule, int64(s.now), int64(sl.at), sl.seq, sl.parent, site)
				}
				return id
			}
		}
		s.cancelLocked(id)
	}
	return s.scheduleLocked(d, fn, nil, site)
}

// RearmFiring re-arms the event whose callback is currently executing to
// fire again after d (which must be positive) with the same callback, and
// returns its id — unchanged, since the slot is never recycled. It must
// be called only from within that event's own callback; periodic events
// (per-RTT window growth) re-arm themselves this way with a plain field
// write instead of a full lock/allocate/push cycle per period. The push
// happens when the callback returns, so the re-armed event's sequence
// number follows any the callback scheduled itself; ordering is
// unaffected at distinct instants, which d > 0 guarantees here.
func (s *Sim) RearmFiring(d time.Duration) EventID {
	s.rearmDelay = d
	return s.firingID
}

// Cancel revokes a pending event. It reports whether the call prevented
// the event from firing; a zero, stale, or already-fired id is a no-op.
// The event's slot is recycled immediately, so cancelled timers do not
// linger in the queue.
func (s *Sim) Cancel(id EventID) bool {
	if id == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelLocked(id)
}

func (s *Sim) cancelLocked(id EventID) bool {
	slot, gen := splitEventID(id)
	if slot < 0 || int(slot) >= len(s.slots) {
		return false
	}
	sl := &s.slots[slot]
	if sl.gen != gen {
		return false // already fired and slot re-used
	}
	switch sl.state {
	case inHeap:
		if r := s.ring; r != nil {
			r.Put(CoreCancel, int64(s.now), 0, sl.seq, sl.parent, sl.site)
		}
		s.nCancelled++
		s.removeEventLocked(int(sl.heapIdx))
		s.freeSlotLocked(slot)
		return true
	case immQueued:
		// Mid-FIFO removal would be O(n); mark the entry dead in place and
		// let popNextLocked recycle the slot when its turn comes. Rare:
		// zero-delay events nearly always fire.
		if r := s.ring; r != nil {
			r.Put(CoreCancel, int64(s.now), 0, sl.seq, sl.parent, sl.site)
		}
		s.nCancelled++
		sl.state = immCancelled
		sl.fn = nil
		sl.wake = nil
		s.immLive--
		return true
	}
	return false // already fired or cancelled
}

// PendingEvents reports the number of events currently queued — cancelled
// timers are recycled (eagerly in the heap, at their FIFO turn in the
// immediate queue) and never count.
func (s *Sim) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap) + s.immLive
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	s.mu.Lock()
	id := s.scheduleLocked(d, fn, nil, siteAfterFunc)
	s.mu.Unlock()
	return &simTimer{s: s, id: id}
}

type simTimer struct {
	s  *Sim
	id EventID
}

// Stop cancels the pending event and recycles its queue slot.
func (t *simTimer) Stop() bool { return t.s.Cancel(t.id) }

// SetInstantHook registers fn to run whenever the hook is armed and the
// current instant's pending events are exhausted (immediately before
// virtual time advances past the instant). One hook per clock; fn runs
// like an event callback — without the clock's lock held — and must not
// block. It may arm the hook again for the same instant.
func (s *Sim) SetInstantHook(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.instantHook = fn
	s.hookSet.Store(fn != nil)
}

// ArmInstantHook schedules the registered hook to fire at the end of the
// current instant. Arming an already-armed hook is a no-op. The arm is a
// lock-free flag flip: on the allocator flush path it runs once per dirty
// event, and taking the clock lock here would add a full mutex cycle to
// every window-growth tick.
func (s *Sim) ArmInstantHook() {
	if s.hookSet.Load() {
		s.hookArmed.Store(true)
	}
}

// nextDueNowLocked reports whether some pending event is due at the
// current instant.
func (s *Sim) nextDueNowLocked() bool {
	if s.immLive > 0 {
		return true
	}
	return len(s.heap) > 0 && s.heap[0].at <= s.now
}

// NewCond implements Clock.
func (s *Sim) NewCond(l sync.Locker) Cond { return newChanCond(s, l) }

// Go implements Clock: fn runs as a managed goroutine.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.runnable++
	s.unwind.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.unwind.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stoppedPanic); ok {
					return // clean unwind at simulation teardown
				}
				panic(r)
			}
		}()
		defer s.exit()
		fn()
	}()
}

// Run executes main as a managed goroutine on the caller's stack and
// returns when main returns. Goroutines still parked at that point are
// unwound via a recovered panic and joined before Run returns, so the
// simulation's final state — flight rings, stats, logs — is settled and
// deterministic for whatever the caller reads next.
func (s *Sim) Run(main func()) {
	s.mu.Lock()
	s.runnable++
	s.mu.Unlock()
	defer func() {
		// Mark stopped before the final decrement so main's exit does not
		// fast-forward the clock on behalf of still-parked goroutines.
		s.mu.Lock()
		s.stopped = true
		s.runnable--
		s.mu.Unlock()
		close(s.stopc)
		s.unwind.Wait()
	}()
	main()
}

// exit retires a managed goroutine. If it was the last runnable one it
// must advance time on behalf of parked goroutines, exactly as a parking
// goroutine would.
func (s *Sim) exit() {
	s.mu.Lock()
	s.runnable--
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// Sleep implements Clock. The caller must be a managed goroutine. The
// wakeup reuses a pooled parker and a wake-typed event slot, so a
// steady-state Sleep performs no heap allocation.
func (s *Sim) Sleep(d time.Duration) { s.SleepSite(siteSleep, d) }

// SleepSite is Sleep with a provenance site tag on the wakeup event, so
// semantically distinct delays (retry backoff, staging wait, probe
// period) stay distinguishable in flight dumps and profiles.
func (s *Sim) SleepSite(site Site, d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(stoppedPanic{})
	}
	var p *parker
	if n := len(s.parkers); n > 0 {
		p = s.parkers[n-1]
		s.parkers = s.parkers[:n-1]
	} else {
		p = &parker{ch: make(chan struct{}, 1)}
	}
	s.scheduleLocked(d, nil, p.ch, site)
	s.runnable--
	s.parked++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
	select {
	case <-p.ch:
	case <-s.stopc:
		panic(stoppedPanic{})
	}
	s.mu.Lock()
	s.parked--
	s.parkers = append(s.parkers, p)
	s.mu.Unlock()
}

// park suspends the calling managed goroutine until ch is signalled. If
// it was the last runnable goroutine it advances virtual time first.
func (s *Sim) park(ch chan struct{}) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(stoppedPanic{})
	}
	s.runnable--
	s.parked++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
	select {
	case <-ch:
	case <-s.stopc:
		panic(stoppedPanic{})
	}
	s.mu.Lock()
	s.parked--
	s.mu.Unlock()
}

// unpark marks the goroutine waiting on ch runnable and delivers its
// wakeup. Safe to call from event callbacks and managed goroutines alike.
func (s *Sim) unpark(ch chan struct{}) {
	s.mu.Lock()
	s.runnable++
	s.mu.Unlock()
	ch <- struct{}{}
}

// maybeAdvanceLocked fires pending events while no managed goroutine is
// runnable. Called with s.mu held; fn callbacks run with s.mu released,
// while parker wakeups are delivered inline under the lock (the wake
// channel is buffered and carries at most one pending signal, so the send
// cannot block).
//
//esglint:hotpath the fire loop: every scheduled event in every run dispatches through this body
func (s *Sim) maybeAdvanceLocked() {
	for s.runnable == 0 && s.parked > 0 && !s.advancing && !s.stopped {
		if s.hookArmed.Load() && !s.nextDueNowLocked() {
			// End of the current instant: run the hook before advancing.
			s.hookArmed.Store(false)
			fn := s.instantHook
			s.advancing = true
			s.mu.Unlock()
			fn()
			s.mu.Lock()
			s.advancing = false
			continue
		}
		i := s.popNextLocked()
		if i < 0 {
			n := s.parked
			s.mu.Unlock()
			//esglint:hotpath deadlock panic: cold path, the simulation is already dead when it formats
			panic(fmt.Sprintf("vtime: deadlock: %d goroutine(s) parked with no pending events", n))
		}
		sl := &s.slots[i]
		if sl.at > s.now {
			s.now = sl.at
			s.nowAtomic.Store(int64(sl.at))
		}
		s.nFired++
		s.lastFired = sl.seq
		if r := s.ring; r != nil {
			r.Put(CoreFire, int64(s.now), 0, sl.seq, sl.parent, sl.site)
		}
		if sl.wake != nil {
			ch := sl.wake
			s.freeSlotLocked(i)
			s.runnable++
			ch <- struct{}{} // buffered; never blocks
			continue
		}
		// The slot stays reserved (not freed) while fn runs so RearmFiring
		// can reclaim it; schedules made inside fn draw other slots.
		fn := sl.fn
		site := sl.site
		firedSeq := sl.seq
		s.firingID = makeEventID(i, sl.gen)
		s.rearmDelay = -1
		s.advancing = true
		// Sampled wall attribution: time every WallSampleEvery-th callback
		// and charge its site with the stride-scaled cost. Observational
		// only — the reading never reaches the simulation or its dumps.
		sample := s.wallNs != nil && s.nFired%WallSampleEvery == 0
		s.mu.Unlock()
		var t0 time.Time
		if sample {
			t0 = time.Now() //esglint:wallclock wall-time profiler sample, never fed back into the simulation
		}
		fn()
		var dt int64
		if sample {
			dt = int64(time.Since(t0)) * WallSampleEvery //esglint:wallclock wall-time profiler sample, never fed back into the simulation
		}
		s.mu.Lock()
		s.advancing = false
		if sample && s.wallNs != nil {
			j := int(site)
			if j >= len(s.wallNs) {
				j = len(s.wallNs) - 1 // site registered after EnableWallProfile
			}
			s.wallNs[j] += dt
		}
		if d := s.rearmDelay; d > 0 {
			sl = &s.slots[i] // fn may have grown the arena
			sl.at = s.now + d
			sl.seq = s.seq
			sl.parent = firedSeq // causal chain: each firing parents its re-arm
			s.seq++
			s.nSched++
			s.nRearmed++
			s.pushEventLocked(i)
			if r := s.ring; r != nil {
				r.Put(CoreRearm, int64(s.now), int64(sl.at), sl.seq, firedSeq, site)
			}
		} else {
			s.freeSlotLocked(i)
		}
	}
}
