package vtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Epoch is the instant at which every simulated clock starts: the first
// day of the SC'00 exhibition, during which the paper's experiments ran.
var Epoch = time.Date(2000, time.November, 6, 8, 0, 0, 0, time.UTC)

// Sim is a deterministic discrete-event simulated clock.
//
// Scheduling model: goroutines started with Go (or the function passed to
// Run) are "managed". The clock counts how many managed goroutines are
// runnable; when a managed goroutine blocks in Sleep or Cond.Wait the
// count drops, and the last goroutine to block advances virtual time by
// firing the earliest pending event(s) until some goroutine is runnable
// again. Time therefore advances only at quiescence, which makes the
// simulation repeatable and lets hours of virtual time pass in
// microseconds of real time.
//
// Event callbacks scheduled with AfterFunc run at their due time, on the
// goroutine that happened to advance the clock; they must not block.
type Sim struct {
	mu        sync.Mutex
	now       time.Duration // offset from Epoch
	queue     eventQueue
	seq       uint64
	runnable  int
	advancing bool
	parked    int
	stopc     chan struct{}
	stopped   bool
	rng       *rand.Rand
	rngMu     sync.Mutex
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// NewSim returns a simulated clock whose random source is seeded with
// seed, so runs are reproducible.
func NewSim(seed int64) *Sim {
	return &Sim{
		stopc: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// simStopped is the panic value used to unwind managed goroutines that are
// still parked when Run returns; Go's wrapper recovers it.
type stoppedPanic struct{}

// ErrStopped is returned by helpers that observe a torn-down simulation.
var ErrStopped = fmt.Errorf("vtime: simulation stopped")

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Epoch.Add(s.now)
}

// Elapsed returns the virtual time elapsed since the simulation started.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Rand returns a deterministic pseudo-random float64 in [0,1).
func (s *Sim) Rand() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// RandExp returns an exponentially distributed value with the given mean.
func (s *Sim) RandExp(mean float64) float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.ExpFloat64() * mean
}

// RandNorm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Sim) RandNorm(mean, stddev float64) float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.NormFloat64()*stddev + mean
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &simTimer{s: s, ev: ev}
}

type simTimer struct {
	s  *Sim
	ev *event
}

// Stop cancels the pending event.
func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// NewCond implements Clock.
func (s *Sim) NewCond(l sync.Locker) Cond { return newChanCond(s, l) }

// Go implements Clock: fn runs as a managed goroutine.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.runnable++
	s.mu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stoppedPanic); ok {
					return // clean unwind at simulation teardown
				}
				panic(r)
			}
		}()
		defer s.exit()
		fn()
	}()
}

// Run executes main as a managed goroutine on the caller's stack and
// returns when main returns. Goroutines still parked at that point are
// unwound via a recovered panic, so simulations tear down cleanly.
func (s *Sim) Run(main func()) {
	s.mu.Lock()
	s.runnable++
	s.mu.Unlock()
	defer func() {
		// Mark stopped before the final decrement so main's exit does not
		// fast-forward the clock on behalf of still-parked goroutines.
		s.mu.Lock()
		s.stopped = true
		s.runnable--
		s.mu.Unlock()
		close(s.stopc)
	}()
	main()
}

// exit retires a managed goroutine. If it was the last runnable one it
// must advance time on behalf of parked goroutines, exactly as a parking
// goroutine would.
func (s *Sim) exit() {
	s.mu.Lock()
	s.runnable--
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// Sleep implements Clock. The caller must be a managed goroutine.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{}, 1)
	s.AfterFunc(d, func() { s.unpark(ch) })
	s.park(ch)
}

// park suspends the calling managed goroutine until ch is signalled. If
// it was the last runnable goroutine it advances virtual time first.
func (s *Sim) park(ch chan struct{}) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(stoppedPanic{})
	}
	s.runnable--
	s.parked++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
	select {
	case <-ch:
	case <-s.stopc:
		panic(stoppedPanic{})
	}
	s.mu.Lock()
	s.parked--
	s.mu.Unlock()
}

// unpark marks the goroutine waiting on ch runnable and delivers its
// wakeup. Safe to call from event callbacks and managed goroutines alike.
func (s *Sim) unpark(ch chan struct{}) {
	s.mu.Lock()
	s.runnable++
	s.mu.Unlock()
	ch <- struct{}{}
}

// maybeAdvanceLocked fires pending events while no managed goroutine is
// runnable. Called with s.mu held; callbacks run with s.mu released.
func (s *Sim) maybeAdvanceLocked() {
	for s.runnable == 0 && s.parked > 0 && !s.advancing && !s.stopped {
		var ev *event
		for len(s.queue) > 0 {
			e := heap.Pop(&s.queue).(*event)
			if !e.cancelled {
				ev = e
				break
			}
		}
		if ev == nil {
			n := s.parked
			s.mu.Unlock()
			panic(fmt.Sprintf("vtime: deadlock: %d goroutine(s) parked with no pending events", n))
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		s.advancing = true
		s.mu.Unlock()
		ev.fn()
		s.mu.Lock()
		s.advancing = false
	}
}
