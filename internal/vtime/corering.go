package vtime

// The flight recorder's core ring lives here, inside the event core,
// rather than behind an interface: the Sim writes one packed record per
// schedule/fire/cancel/re-arm while already holding its lock, and an
// interface dispatch per event was measurable on event-dense runs (a
// 14-hour Figure 8 replay writes ~18M core records). A record write is
// a branch, a 32-byte store and a counter increment — cheap enough to
// leave on permanently. The flight package decodes snapshots into its
// richer record type for dumps and provenance chains.

// CoreKind discriminates core-ring records.
type CoreKind uint8

// Core record kinds, in the order the event core emits them.
const (
	CoreNone CoreKind = iota
	CoreSchedule
	CoreFire
	CoreCancel
	CoreRearm
)

// CoreEvent is one decoded core-ring record. At and Due are nanosecond
// offsets from Epoch on the virtual clock; Seq is the event's sequence
// number and Parent the seq of the event that was firing when this one
// was scheduled — the causal provenance edge.
type CoreEvent struct {
	At, Due     int64
	Seq, Parent uint64
	Kind        CoreKind
	Site        Site
}

// coreRec is the packed on-ring form: 32 bytes, half a cache line, so
// the steady-state store traffic of a busy run stays small. Seq is
// truncated to 40 bits (1.1e12 events — three orders of magnitude past
// the busiest observed run) to make room for the site and kind in the
// same word.
type coreRec struct {
	at, due int64
	seqKS   uint64 // seq | site<<coreSiteShift | kind<<coreKindShift
	parent  uint64
}

const (
	coreSeqBits   = 40
	coreSeqMask   = 1<<coreSeqBits - 1
	coreSiteShift = coreSeqBits
	coreKindShift = 60
)

// CoreRing is a fixed-capacity overwrite-oldest buffer of packed core
// records. Capacity is always a power of two so the record path indexes
// with a mask instead of a hardware divide. The Sim writes it inline
// under its lock once installed with SetCoreRing; readers must run at
// quiescence with a happens-before edge to the last writer (any call
// that cycles the Sim's lock, e.g. Sim.CoreStats, establishes one).
type CoreRing struct {
	recs []coreRec
	mask uint64 // len(recs) - 1
	n    uint64 // total records ever written
}

// NewCoreRing returns a ring holding the given number of records,
// rounded up to the next power of two. All memory is allocated here,
// never on the record path.
func NewCoreRing(capacity int) *CoreRing {
	p := 1
	for p < capacity {
		p <<= 1
	}
	return &CoreRing{recs: make([]coreRec, p), mask: uint64(p - 1)}
}

// Put appends one record. The Sim calls this inline under its lock;
// tests may call it directly to build synthetic rings. It never
// allocates or blocks.
//
//esglint:hotpath the Sim fire loop records every event here; AllocsPerRun pins it at 0 allocs/op
func (r *CoreRing) Put(kind CoreKind, at, due int64, seq, parent uint64, site Site) {
	r.recs[r.n&r.mask] = coreRec{
		at: at, due: due, parent: parent,
		seqKS: seq&coreSeqMask | uint64(site)<<coreSiteShift | uint64(kind)<<coreKindShift,
	}
	r.n++
}

// Written returns the count of records ever written.
func (r *CoreRing) Written() uint64 { return r.n }

// Retained returns how many records the ring currently holds.
func (r *CoreRing) Retained() int {
	if r.n > uint64(len(r.recs)) {
		return len(r.recs)
	}
	return int(r.n)
}

// Snapshot decodes the retained records, oldest first. Quiescence
// contract applies (see type comment).
func (r *CoreRing) Snapshot() []CoreEvent {
	cnt := uint64(r.Retained())
	out := make([]CoreEvent, 0, cnt)
	for i := r.n - cnt; i < r.n; i++ {
		p := r.recs[i&r.mask]
		out = append(out, CoreEvent{
			At:     p.at,
			Due:    p.due,
			Seq:    p.seqKS & coreSeqMask,
			Parent: p.parent,
			Kind:   CoreKind(p.seqKS >> coreKindShift),
			Site:   Site(p.seqKS >> coreSiteShift & 0xffff),
		})
	}
	return out
}

// SetCoreRing installs (or, with nil, removes) the flight recorder's
// core ring. Install before traffic starts; the ring sees only events
// scheduled after installation.
func (s *Sim) SetCoreRing(r *CoreRing) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring = r
}
