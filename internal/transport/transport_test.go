package transport

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestSplitHostPort(t *testing.T) {
	cases := []struct {
		in   string
		host string
		port int
	}{
		{"lbnl:2811", "lbnl", 2811},
		{"127.0.0.1:80", "127.0.0.1", 80},
		{"bare-host", "bare-host", 0},
		{":2811", "", 2811},
		{"host:bad", "host", 0},
	}
	for _, c := range cases {
		h, p := SplitHostPort(c.in)
		if h != c.host || p != c.port {
			t.Errorf("SplitHostPort(%q) = (%q, %d), want (%q, %d)", c.in, h, p, c.host, c.port)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("hello"), {}, []byte(strings.Repeat("x", 70000))}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A corrupt length prefix must be rejected, not allocated.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestJSONFrames(t *testing.T) {
	var buf bytes.Buffer
	type msg struct {
		Op   string `json:"op"`
		Size int64  `json:"size"`
	}
	if err := WriteJSON(&buf, msg{"stage", 1 << 31}); err != nil {
		t.Fatal(err)
	}
	var got msg
	if err := ReadJSON(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != "stage" || got.Size != 1<<31 {
		t.Fatalf("got %+v", got)
	}
}

func TestAddr(t *testing.T) {
	a := Addr{Net: "sim", Text: "lbnl:2811"}
	if a.Network() != "sim" || a.String() != "lbnl:2811" {
		t.Fatalf("addr = %v", a)
	}
}

func TestVirtualFallbackOverRealTCP(t *testing.T) {
	// Real TCP conns have no virtual fast path; the helpers must fall
	// back to moving real (zero) bytes.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 1 << 20
	var wg sync.WaitGroup
	wg.Add(1)
	var got int64
	var rerr error
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			rerr = err
			return
		}
		defer c.Close()
		got, rerr = ReadVirtualFrom(c, n)
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sent, err := WriteVirtualTo(c, n)
	if err != nil || sent != n {
		t.Fatalf("sent %d, %v", sent, err)
	}
	c.Close()
	wg.Wait()
	if rerr != nil || got != n {
		t.Fatalf("got %d, %v", got, rerr)
	}
}

func TestRealNetworkListenDial(t *testing.T) {
	var netw Network = Real{}
	l, err := netw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		c.Write([]byte("hi"))
		c.Close()
		done <- nil
	}()
	c, err := netw.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil || string(buf) != "hi" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
