package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrameBytes bounds a single length-prefixed frame; control messages in
// ESG are small, so anything larger indicates a corrupted stream.
const MaxFrameBytes = 16 << 20

// WriteFrame writes a 4-byte big-endian length prefix followed by p.
func WriteFrame(w io.Writer, p []byte) error {
	if len(p) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(p))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON marshals v and writes it as one frame.
func WriteJSON(w io.Writer, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, p)
}

// ReadJSON reads one frame and unmarshals it into v.
func ReadJSON(r io.Reader, v any) error {
	p, err := ReadFrame(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(p, v)
}
