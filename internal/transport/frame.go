package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MaxFrameBytes bounds a single length-prefixed frame; control messages in
// ESG are small, so anything larger indicates a corrupted stream.
const MaxFrameBytes = 16 << 20

// frameHdrPool recycles the 4-byte prefix scratch; w and r are interfaces,
// so a stack array would escape on every frame.
var frameHdrPool = sync.Pool{New: func() any { return new([4]byte) }}

// framePayloadPool recycles control-message payload buffers for the
// internal read path (ReadJSON); grown buffers are recycled at their
// grown size.
var framePayloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteFrame writes a 4-byte big-endian length prefix followed by p.
func WriteFrame(w io.Writer, p []byte) error {
	if len(p) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(p))
	}
	hdr := frameHdrPool.Get().(*[4]byte)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	_, err := w.Write(hdr[:])
	frameHdrPool.Put(hdr)
	if err != nil {
		return err
	}
	_, err = w.Write(p)
	return err
}

// readFrameInto reads one length-prefixed frame into buf, growing it as
// needed, and returns the filled slice.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	hdr := frameHdrPool.Get().(*[4]byte)
	_, err := io.ReadFull(r, hdr[:])
	n := binary.BigEndian.Uint32(hdr[:])
	frameHdrPool.Put(hdr)
	if err != nil {
		return nil, err
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadFrame reads one length-prefixed frame. The returned slice is owned
// by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// WriteJSON marshals v and writes it as one frame.
func WriteJSON(w io.Writer, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, p)
}

// ReadJSON reads one frame and unmarshals it into v, staging the payload
// through a pooled buffer (json.Unmarshal copies what it keeps).
func ReadJSON(r io.Reader, v any) error {
	bufp := framePayloadPool.Get().(*[]byte)
	p, err := readFrameInto(r, (*bufp)[:cap(*bufp)])
	if err != nil {
		framePayloadPool.Put(bufp)
		return err
	}
	err = json.Unmarshal(p, v)
	*bufp = p[:0]
	framePayloadPool.Put(bufp)
	return err
}
