// Package transport abstracts the network layer under ESG's protocols so
// that the same GridFTP / RPC / directory code runs over real TCP (the
// cmd/ daemons, loopback integration tests) and over the virtual-time WAN
// simulator in internal/simnet (the paper's experiments).
//
// The interfaces mirror the net package. The one extension is the virtual
// payload fast path (VirtualWriter / VirtualReader): a simulated
// connection can account for bulk data by length alone, so replaying the
// 230.8 GB Table 1 hour costs neither memory nor memcpy. Protocol headers
// remain real bytes on both transports.
package transport

import (
	"net"
	"time"
)

// Conn is a bidirectional byte stream; it is exactly net.Conn so real TCP
// connections satisfy it untouched.
type Conn = net.Conn

// Listener accepts inbound connections, mirroring net.Listener.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() net.Addr
}

// Dialer opens outbound connections. Implementations: RealDialer (TCP)
// and simnet.Host (simulated WAN).
type Dialer interface {
	// Dial connects to addr, a "host:port" string resolved by the
	// implementation's name service.
	Dial(addr string) (Conn, error)
}

// Network combines the client and server halves of a transport endpoint.
type Network interface {
	Dialer
	// Listen announces on the given local address ("host:port" or ":port").
	Listen(addr string) (Listener, error)
}

// VirtualWriter is implemented by simulated connections that can transfer
// payload by length alone. WriteVirtual behaves like Write of n bytes of
// payload (it blocks until the simulated network has carried them, and
// consumes simulated bandwidth) without any real bytes changing hands.
type VirtualWriter interface {
	WriteVirtual(n int64) error
}

// VirtualReader is the receiving half of the virtual payload fast path.
// ReadVirtual consumes up to max bytes of pending virtual payload,
// blocking until at least one byte (or an error) is available.
type VirtualReader interface {
	ReadVirtual(max int64) (int64, error)
}

// Labeler is implemented by connections that can carry an opaque
// diagnostic label — a life-line trace context ("<trace>.<span>") set by
// the protocol layer. Simulated connections report the label in flow
// retirement events so per-request network activity is attributable.
type Labeler interface {
	SetLabel(label string)
}

// DeadlineConn is the subset of net.Conn deadline control the protocol
// layers use; both real and simulated conns provide it via net.Conn.
type DeadlineConn interface {
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Real is the production Network backed by the operating system's TCP
// stack. The zero value is ready to use.
type Real struct{}

// Dial implements Dialer over TCP.
func (Real) Dial(addr string) (Conn, error) { return net.Dial("tcp", addr) }

// Listen implements Network over TCP.
func (Real) Listen(addr string) (Listener, error) { return net.Listen("tcp", addr) }

// WriteVirtualTo sends n bytes of payload over c, using the virtual fast
// path when available and a zero-filled buffer otherwise. It returns the
// bytes written.
func WriteVirtualTo(c Conn, n int64) (int64, error) {
	if vw, ok := c.(VirtualWriter); ok {
		if err := vw.WriteVirtual(n); err != nil {
			return 0, err
		}
		return n, nil
	}
	var buf [32 * 1024]byte
	var sent int64
	for sent < n {
		chunk := int64(len(buf))
		if rem := n - sent; rem < chunk {
			chunk = rem
		}
		m, err := c.Write(buf[:chunk])
		sent += int64(m)
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// ReadVirtualFrom consumes exactly n bytes of payload from c, using the
// virtual fast path when available and discarding real bytes otherwise.
func ReadVirtualFrom(c Conn, n int64) (int64, error) {
	if vr, ok := c.(VirtualReader); ok {
		var got int64
		for got < n {
			m, err := vr.ReadVirtual(n - got)
			got += m
			if err != nil {
				return got, err
			}
		}
		return got, nil
	}
	var buf [32 * 1024]byte
	var got int64
	for got < n {
		chunk := int64(len(buf))
		if rem := n - got; rem < chunk {
			chunk = rem
		}
		m, err := c.Read(buf[:chunk])
		got += int64(m)
		if err != nil {
			return got, err
		}
	}
	return got, nil
}

// Addr is a simple textual address used by the simulator ("host:port").
type Addr struct {
	Net  string // network name, e.g. "sim" or "tcp"
	Text string // host:port
}

// Network returns the network name.
func (a Addr) Network() string { return a.Net }

// String returns the host:port form.
func (a Addr) String() string { return a.Text }

// SplitHostPort splits "host:port" into host and port, tolerating a
// missing port (port 0). It is a forgiving variant of net.SplitHostPort
// for the simulator's flat namespace.
func SplitHostPort(addr string) (host string, port int) {
	h, p, err := net.SplitHostPort(addr)
	if err != nil {
		return addr, 0
	}
	n := 0
	for _, c := range p {
		if c < '0' || c > '9' {
			return h, 0
		}
		n = n*10 + int(c-'0')
	}
	return h, n
}
