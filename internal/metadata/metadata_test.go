package metadata

import (
	"errors"
	"testing"
	"time"

	"esgrid/internal/climate"
	"esgrid/internal/ldapd"
)

func month(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := New(ldapd.NewDir())
	if err != nil {
		t.Fatal(err)
	}
	err = c.RegisterDataset(Dataset{
		Name:       "pcm-b06.22",
		Model:      "pcm",
		Collection: "pcm-b06.22-monthly",
		Comment:    "PCM coupled run, years 1998-1999",
		Variables:  []string{climate.VarTemperature, climate.VarPrecipitation, climate.VarCloudCover},
		From:       month(1998, 1),
		To:         month(1999, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterAndLookup(t *testing.T) {
	c := testCatalog(t)
	ds, err := c.Lookup("pcm-b06.22")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Model != "pcm" || len(ds.Variables) != 3 {
		t.Fatalf("dataset = %+v", ds)
	}
	if !ds.From.Equal(month(1998, 1)) || !ds.To.Equal(month(1999, 12)) {
		t.Fatalf("range = %v..%v", ds.From, ds.To)
	}
	all, err := c.Datasets()
	if err != nil || len(all) != 1 {
		t.Fatalf("datasets = %v, %v", all, err)
	}
	if _, err := c.Lookup("nope"); !errors.Is(err, ErrNoSuchDataset) {
		t.Fatalf("lookup missing: %v", err)
	}
}

func TestResolveVariableAndTimeWindow(t *testing.T) {
	c := testCatalog(t)
	coll, files, err := c.Resolve(Query{
		Dataset:   "pcm-b06.22",
		Variables: []string{climate.VarTemperature},
		From:      month(1998, 11),
		To:        month(1999, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if coll != "pcm-b06.22-monthly" {
		t.Fatalf("collection = %q", coll)
	}
	if len(files) != 4 {
		t.Fatalf("files = %d, want 4 months", len(files))
	}
	want := map[string]bool{
		"pcm.tas.1998-11.nc": true, "pcm.tas.1998-12.nc": true,
		"pcm.tas.1999-01.nc": true, "pcm.tas.1999-02.nc": true,
	}
	for _, f := range files {
		if !want[f.Name] {
			t.Errorf("unexpected file %s", f.Name)
		}
		if f.Variable != climate.VarTemperature {
			t.Errorf("file %s variable = %s", f.Name, f.Variable)
		}
		if f.Size != climate.LogicalSizeBytes(climate.VarTemperature) {
			t.Errorf("file %s size = %d", f.Name, f.Size)
		}
	}
}

func TestResolveAllVariablesFullRange(t *testing.T) {
	c := testCatalog(t)
	_, files, err := c.Resolve(Query{Dataset: "pcm-b06.22"})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 24*3 {
		t.Fatalf("files = %d, want 72 (24 months x 3 vars)", len(files))
	}
}

func TestResolveMultipleVariables(t *testing.T) {
	c := testCatalog(t)
	_, files, err := c.Resolve(Query{
		Dataset:   "pcm-b06.22",
		Variables: []string{climate.VarPrecipitation, climate.VarCloudCover},
		From:      month(1999, 6),
		To:        month(1999, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %d, want 2", len(files))
	}
}

func TestResolveEmptyWindow(t *testing.T) {
	c := testCatalog(t)
	_, _, err := c.Resolve(Query{
		Dataset: "pcm-b06.22",
		From:    month(2005, 1),
		To:      month(2005, 12),
	})
	if !errors.Is(err, ErrNoFiles) {
		t.Fatalf("err = %v, want ErrNoFiles", err)
	}
}

func TestResolveUnknownDataset(t *testing.T) {
	c := testCatalog(t)
	if _, _, err := c.Resolve(Query{Dataset: "nope"}); !errors.Is(err, ErrNoSuchDataset) {
		t.Fatalf("err = %v", err)
	}
}

func TestYearBoundarySpans(t *testing.T) {
	c := testCatalog(t)
	_, files, err := c.Resolve(Query{
		Dataset:   "pcm-b06.22",
		Variables: []string{climate.VarCloudCover},
		From:      month(1998, 12),
		To:        month(1999, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files across year boundary = %d, want 2", len(files))
	}
}
