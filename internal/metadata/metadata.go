// Package metadata implements the CDMS metadata catalog of §3: a
// directory-backed view of climate data as datasets of multidimensional
// variables, with the query that the VCDAT browser performs — from
// application-level attributes (model, variable, time range) to the
// logical file names handed to the request manager. Logical, not
// physical, names are what this catalog yields; physical resolution is
// the replica catalog's job, which is exactly the separation the paper
// calls essential (§3).
package metadata

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"esgrid/internal/climate"
	"esgrid/internal/ldapd"
)

// Base is the DIT suffix of the metadata catalog.
const Base = "mc=esg"

// Errors returned by the catalog.
var (
	ErrNoSuchDataset = errors.New("metadata: no such dataset")
	ErrNoFiles       = errors.New("metadata: no files match the query")
)

// Dataset describes one simulation output collection.
type Dataset struct {
	Name       string
	Model      string
	Collection string // logical collection name in the replica catalog
	Comment    string
	Variables  []string
	From, To   time.Time // inclusive month range
}

// LogicalFile is one catalog entry a query resolves to.
type LogicalFile struct {
	Name     string
	Variable string
	Year     int
	Month    int
	Size     int64
}

// Catalog is a metadata catalog over a directory.
type Catalog struct {
	dir ldapd.Directory
}

// New returns a catalog rooted at Base, creating the root if needed.
func New(dir ldapd.Directory) (*Catalog, error) {
	err := dir.Add(Base, map[string][]string{"objectclass": {"metadatacatalog"}})
	if err != nil && !errors.Is(err, ldapd.ErrEntryExists) {
		return nil, err
	}
	return &Catalog{dir: dir}, nil
}

func dsDN(name string) string         { return fmt.Sprintf("ds=%s,%s", name, Base) }
func lfDN(ds, file string) string     { return fmt.Sprintf("lf=%s,%s", file, dsDN(ds)) }
func monthKey(year, month int) string { return fmt.Sprintf("%04d%02d", year, month) }
func keyOf(t time.Time) string        { return monthKey(t.Year(), int(t.Month())) }
func parseKey(s string) (int, int) {
	y, _ := strconv.Atoi(s[:4])
	m, _ := strconv.Atoi(s[4:])
	return y, m
}

// RegisterDataset registers the dataset and one logical-file entry per
// variable-month, using the climate naming convention and the logical
// (full-resolution) file sizes.
func (c *Catalog) RegisterDataset(ds Dataset) error {
	attrs := map[string][]string{
		"objectclass": {"dataset"},
		"ds":          {ds.Name},
		"model":       {ds.Model},
		"collection":  {ds.Collection},
		"comment":     {ds.Comment},
		"variable":    ds.Variables,
		"from":        {keyOf(ds.From)},
		"to":          {keyOf(ds.To)},
	}
	if err := c.dir.Add(dsDN(ds.Name), attrs); err != nil {
		return err
	}
	for _, ym := range climate.MonthsBetween(ds.From, ds.To) {
		for _, v := range ds.Variables {
			name := climate.FileName(ds.Model, v, ym[0], ym[1])
			fa := map[string][]string{
				"objectclass": {"logicalfile"},
				"lf":          {name},
				"variable":    {v},
				"period":      {monthKey(ym[0], ym[1])},
				"size":        {strconv.FormatInt(climate.LogicalSizeBytes(v), 10)},
			}
			if err := c.dir.Add(lfDN(ds.Name, name), fa); err != nil {
				return err
			}
		}
	}
	return nil
}

// Datasets lists registered datasets.
func (c *Catalog) Datasets() ([]Dataset, error) {
	es, err := c.dir.Search(Base, ldapd.ScopeOne, "(objectclass=dataset)")
	if err != nil {
		return nil, err
	}
	out := make([]Dataset, len(es))
	for i, e := range es {
		out[i] = decodeDataset(e)
	}
	return out, nil
}

// Lookup returns one dataset by name.
func (c *Catalog) Lookup(name string) (Dataset, error) {
	es, err := c.dir.Search(dsDN(name), ldapd.ScopeBase, "")
	if err != nil {
		if errors.Is(err, ldapd.ErrNoSuchEntry) {
			return Dataset{}, fmt.Errorf("%w: %s", ErrNoSuchDataset, name)
		}
		return Dataset{}, err
	}
	return decodeDataset(es[0]), nil
}

func decodeDataset(e *ldapd.Entry) Dataset {
	fy, fm := parseKey(e.Get("from"))
	ty, tm := parseKey(e.Get("to"))
	return Dataset{
		Name:       e.Get("ds"),
		Model:      e.Get("model"),
		Collection: e.Get("collection"),
		Comment:    e.Get("comment"),
		Variables:  e.GetAll("variable"),
		From:       time.Date(fy, time.Month(fm), 1, 0, 0, 0, 0, time.UTC),
		To:         time.Date(ty, time.Month(tm), 1, 0, 0, 0, 0, time.UTC),
	}
}

// Query is the VCDAT-style selection: a dataset, a set of variables (nil
// = all) and an inclusive month range (zero times = full range).
type Query struct {
	Dataset   string
	Variables []string
	From, To  time.Time
}

// Resolve maps a query to logical files, the hand-off to the request
// manager (§3 -> §4).
func (c *Catalog) Resolve(q Query) (collection string, files []LogicalFile, err error) {
	ds, err := c.Lookup(q.Dataset)
	if err != nil {
		return "", nil, err
	}
	filter := "(objectclass=logicalfile)"
	if len(q.Variables) == 1 {
		filter = fmt.Sprintf("(&(objectclass=logicalfile)(variable=%s))", q.Variables[0])
	}
	es, err := c.dir.Search(dsDN(q.Dataset), ldapd.ScopeOne, filter)
	if err != nil {
		return "", nil, err
	}
	wantVar := map[string]bool{}
	for _, v := range q.Variables {
		wantVar[v] = true
	}
	fromKey, toKey := "000000", "999999"
	if !q.From.IsZero() {
		fromKey = keyOf(q.From)
	}
	if !q.To.IsZero() {
		toKey = keyOf(q.To)
	}
	for _, e := range es {
		if len(wantVar) > 0 && !wantVar[e.Get("variable")] {
			continue
		}
		p := e.Get("period")
		if p < fromKey || p > toKey {
			continue
		}
		y, m := parseKey(p)
		size, _ := strconv.ParseInt(e.Get("size"), 10, 64)
		files = append(files, LogicalFile{
			Name:     e.Get("lf"),
			Variable: e.Get("variable"),
			Year:     y,
			Month:    m,
			Size:     size,
		})
	}
	if len(files) == 0 {
		return "", nil, fmt.Errorf("%w: %s %v %s..%s", ErrNoFiles, q.Dataset, q.Variables, fromKey, toKey)
	}
	return ds.Collection, files, nil
}
