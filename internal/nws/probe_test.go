package nws

import (
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// probeNet builds a two-host network with a probe responder on srv and
// returns the client host's transport plus a channel closed when
// ServeProbes returns.
func probeNet(t *testing.T, clk *vtime.Sim) (cli transport.Network, lis transport.Listener, served chan struct{}) {
	t.Helper()
	n := simnet.New(clk)
	n.AddHost("cli", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddHost("srv", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
	n.AddLink("cli", "srv", simnet.LinkConfig{CapacityBps: 100e6, Delay: 5 * time.Millisecond})
	l, err := n.Host("srv").Listen(":8060")
	if err != nil {
		t.Fatal(err)
	}
	served = make(chan struct{})
	clk.Go(func() {
		ServeProbes(clk, l)
		close(served)
	})
	return n.Host("cli"), l, served
}

// expectNoAck asserts the responder dropped the connection without
// sending the 1-byte ack.
func expectNoAck(t *testing.T, c transport.Conn) {
	t.Helper()
	var ack [1]byte
	if _, err := io.ReadFull(c, ack[:]); err == nil {
		t.Fatal("got ack for a malformed probe")
	}
}

func TestServeProbesTruncatedHeader(t *testing.T) {
	clk := vtime.NewSim(11)
	clk.Run(func() {
		net, _, _ := probeNet(t, clk)
		c, err := net.Dial("srv:8060")
		if err != nil {
			t.Fatal(err)
		}
		// Send only 3 of the 8 header bytes, then EOF.
		if _, err := c.Write([]byte{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if cw, ok := c.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			c.Close()
		}
		expectNoAck(t, c)
		c.Close()
	})
}

func TestServeProbesShortPayload(t *testing.T) {
	clk := vtime.NewSim(12)
	clk.Run(func() {
		net, _, _ := probeNet(t, clk)
		c, err := net.Dial("srv:8060")
		if err != nil {
			t.Fatal(err)
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], 4096)
		if _, err := c.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		// Deliver fewer payload bytes than promised, then EOF.
		if _, err := c.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if cw, ok := c.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			c.Close()
		}
		expectNoAck(t, c)
		c.Close()
	})
}

func TestServeProbesRejectsOversizedLength(t *testing.T) {
	clk := vtime.NewSim(13)
	clk.Run(func() {
		net, _, _ := probeNet(t, clk)
		c, err := net.Dial("srv:8060")
		if err != nil {
			t.Fatal(err)
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(1<<40)) // > 1 GiB cap
		if _, err := c.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		expectNoAck(t, c)
		c.Close()
	})
}

func TestServeProbesExitsOnListenerClose(t *testing.T) {
	clk := vtime.NewSim(14)
	clk.Run(func() {
		_, lis, served := probeNet(t, clk)
		lis.Close()
		clk.Sleep(time.Millisecond)
		select {
		case <-served:
		default:
			t.Fatal("ServeProbes still running after listener close")
		}
	})
}

func TestTransferProberUnknownHost(t *testing.T) {
	clk := vtime.NewSim(15)
	clk.Run(func() {
		p := NewTransferProber(clk, func(string) transport.Network { return nil }, 8060, 0)
		if p.bytes != DefaultProbeBytes {
			t.Fatalf("probe bytes = %d, want default %d", p.bytes, DefaultProbeBytes)
		}
		if _, _, err := p.Probe("ghost", "srv"); err == nil {
			t.Fatal("probe from unknown host succeeded")
		}
	})
}

// TestSensorInstrumentedFailures covers the probe-error path: failures
// must emit nws.probe.error events with a consecutive counter, and a
// success must reset the counter.
func TestSensorInstrumentedFailures(t *testing.T) {
	clk := vtime.NewSim(16)
	clk.Run(func() {
		log := netlogger.NewLog(clk)
		fail := true
		prober := ProbeFunc(func(from, to string) (float64, time.Duration, error) {
			if fail {
				return 0, 0, errors.New("no route to host")
			}
			return 10e6, time.Millisecond, nil
		})
		s := NewSensor(clk, prober, nil, time.Second)
		s.Instrument(log, "anl")
		s.Watch("ncar", "anl")
		s.MeasureNow()
		s.MeasureNow()
		if got := s.Failures("ncar", "anl"); got != 2 {
			t.Fatalf("Failures = %d, want 2", got)
		}
		evs := log.Named("nws.probe.error")
		if len(evs) != 2 {
			t.Fatalf("nws.probe.error events = %d, want 2", len(evs))
		}
		last := evs[1]
		if last.Host != "anl" || last.Fields["from"] != "ncar" || last.Fields["to"] != "anl" {
			t.Fatalf("event attribution = %+v", last)
		}
		if last.Fields["consecutive"] != "2" {
			t.Fatalf("consecutive = %q, want 2", last.Fields["consecutive"])
		}
		if last.Fields["err"] != "no route to host" {
			t.Fatalf("err field = %q", last.Fields["err"])
		}
		fail = false
		s.MeasureNow()
		if got := s.Failures("ncar", "anl"); got != 0 {
			t.Fatalf("Failures after success = %d, want 0", got)
		}
		if got := s.Failures("nowhere", "anl"); got != 0 {
			t.Fatalf("Failures for unwatched pair = %d, want 0", got)
		}
	})
}
