package nws

import (
	"math"
	"testing"
	"time"

	"esgrid/internal/ldapd"
	"esgrid/internal/mds"
	"esgrid/internal/simnet"
	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

func TestLastValue(t *testing.T) {
	var f LastValue
	if !math.IsNaN(f.Predict()) {
		t.Fatal("prediction before data should be NaN")
	}
	f.Observe(10)
	f.Observe(20)
	if f.Predict() != 20 {
		t.Fatalf("Predict = %v, want 20", f.Predict())
	}
}

func TestRunningMean(t *testing.T) {
	var f RunningMean
	for _, v := range []float64{10, 20, 30} {
		f.Observe(v)
	}
	if f.Predict() != 20 {
		t.Fatalf("Predict = %v, want 20", f.Predict())
	}
}

func TestSlidingMedianRobustToSpike(t *testing.T) {
	f := NewSlidingMedian(5)
	for _, v := range []float64{100, 101, 99, 1000, 100} {
		f.Observe(v)
	}
	if p := f.Predict(); p != 100 {
		t.Fatalf("median = %v, want 100 (robust to the 1000 spike)", p)
	}
}

func TestSlidingMedianWindowEviction(t *testing.T) {
	f := NewSlidingMedian(3)
	for _, v := range []float64{1, 2, 3, 100, 101, 102} {
		f.Observe(v)
	}
	if p := f.Predict(); p != 101 {
		t.Fatalf("median = %v, want 101 (old values evicted)", p)
	}
}

func TestEWMAConverges(t *testing.T) {
	f := NewEWMA(0.5)
	for i := 0; i < 50; i++ {
		f.Observe(80)
	}
	if p := f.Predict(); math.Abs(p-80) > 1e-9 {
		t.Fatalf("EWMA on constant series = %v, want 80", p)
	}
}

func TestAR1LearnsTrendedSeries(t *testing.T) {
	f := &AR1{}
	// Strongly autocorrelated series: x(t+1) = 0.9 x(t) + 5.
	x := 100.0
	for i := 0; i < 200; i++ {
		f.Observe(x)
		x = 0.9*x + 5
	}
	want := 0.9*x + 5
	// Predict next from last observed... AR1 predicts from its own last.
	if p := f.Predict(); math.Abs(p-want) > 3 {
		t.Fatalf("AR1 predict = %v, want ~%v", p, want)
	}
}

func TestAdaptivePicksBestForecaster(t *testing.T) {
	a := NewAdaptive()
	// A noiseless constant series: every method converges, but "last" has
	// zero error from the second sample; adaptive must match it.
	for i := 0; i < 100; i++ {
		a.Observe(50)
	}
	if p := a.Predict(); p != 50 {
		t.Fatalf("adaptive predict = %v, want 50", p)
	}
	if mae := a.MAE(); mae != 0 {
		t.Fatalf("adaptive MAE = %v, want 0", mae)
	}
}

func TestAdaptiveOnAlternatingSeries(t *testing.T) {
	// Alternating 0,100,0,100...: "last" is maximally wrong (error 100),
	// the mean (50) has error 50. Adaptive must not pick "last".
	a := NewAdaptive()
	for i := 0; i < 200; i++ {
		a.Observe(float64((i % 2) * 100))
	}
	name, mae := a.Best()
	if name == "last" {
		t.Fatalf("adaptive picked %q (MAE %.1f); alternating series must not favour last-value", name, mae)
	}
	errs := a.Errors()
	if errs["last"] < errs[name] {
		t.Fatalf("selection inconsistent: best=%s errors=%v", name, errs)
	}
}

func TestAdaptiveErrorsTracksAllMembers(t *testing.T) {
	a := NewAdaptive()
	for i := 0; i < 30; i++ {
		a.Observe(float64(i))
	}
	errs := a.Errors()
	for _, name := range []string{"last", "mean", "median", "ewma", "ar1"} {
		if _, ok := errs[name]; !ok {
			t.Errorf("no error recorded for %q", name)
		}
	}
	// On a linear ramp, AR(1) should beat the running mean badly.
	if errs["ar1"] > errs["mean"] {
		t.Errorf("on a ramp, ar1 MAE %.2f should beat mean MAE %.2f", errs["ar1"], errs["mean"])
	}
}

// TestSensorPublishesIntoMDS wires sensor -> MDS over a simulated
// network, mirroring §5 of the paper.
func TestSensorPublishesIntoMDS(t *testing.T) {
	clk := vtime.NewSim(3)
	clk.Run(func() {
		n := simnet.New(clk)
		n.AddHost("lbnl", simnet.HostConfig{})
		n.AddHost("isi", simnet.HostConfig{})
		n.AddLink("lbnl", "isi", simnet.LinkConfig{CapacityBps: 155e6, Delay: 12 * time.Millisecond})

		dir := ldapd.NewDir()
		svc, err := mds.New(dir)
		if err != nil {
			t.Fatal(err)
		}
		prober := ProbeFunc(func(from, to string) (float64, time.Duration, error) {
			bw, err := n.EstimateBandwidth(from, to)
			if err != nil {
				return 0, 0, err
			}
			rtt, err := n.PathRTT(from, to)
			if err != nil {
				return 0, 0, err
			}
			// Measurement noise: +/- 5% deterministic from the sim RNG.
			bw *= 1 + 0.05*(2*clk.Rand()-1)
			return bw, rtt, nil
		})
		s := NewSensor(clk, prober, svc, 10*time.Second)
		s.Watch("lbnl", "isi")
		s.Watch("isi", "lbnl")
		s.Start()
		clk.Sleep(2 * time.Minute)
		s.Stop()

		f, err := svc.Forecast("lbnl", "isi")
		if err != nil {
			t.Fatal(err)
		}
		if f.BandwidthBps < 0.85*155e6 || f.BandwidthBps > 1.15*155e6 {
			t.Fatalf("forecast bandwidth %.0f, want ~155e6", f.BandwidthBps)
		}
		if f.Latency < 20*time.Millisecond || f.Latency > 30*time.Millisecond {
			t.Fatalf("forecast latency %v, want ~24ms", f.Latency)
		}
		if len(s.History("lbnl", "isi")) < 10 {
			t.Fatalf("history too short: %d", len(s.History("lbnl", "isi")))
		}
		all, err := svc.AllForecasts()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 2 {
			t.Fatalf("AllForecasts = %d entries, want 2", len(all))
		}
	})
}

func TestSensorSkipsFailedProbes(t *testing.T) {
	clk := vtime.NewSim(4)
	clk.Run(func() {
		dir := ldapd.NewDir()
		svc, _ := mds.New(dir)
		fail := true
		prober := ProbeFunc(func(from, to string) (float64, time.Duration, error) {
			if fail {
				return 0, 0, &simnet.DNSError{Name: to}
			}
			return 42e6, 10 * time.Millisecond, nil
		})
		s := NewSensor(clk, prober, svc, time.Second)
		s.Watch("a", "b")
		s.MeasureNow() // fails; nothing published
		if _, err := svc.Forecast("a", "b"); err == nil {
			t.Fatal("forecast exists despite failed probe")
		}
		fail = false
		s.MeasureNow()
		f, err := svc.Forecast("a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if f.BandwidthBps != 42e6 {
			t.Fatalf("bandwidth = %v", f.BandwidthBps)
		}
	})
}

func TestMDSHostRegistry(t *testing.T) {
	dir := ldapd.NewDir()
	svc, err := mds.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []mds.HostInfo{
		{Name: "dustdevil.llnl.gov", Site: "llnl", Services: []string{"gridftp:2811"}},
		{Name: "pdsf.lbl.gov", Site: "lbnl", Services: []string{"gridftp:2811", "hrm:4000"}},
	} {
		if err := svc.RegisterHost(h); err != nil {
			t.Fatal(err)
		}
	}
	all, err := svc.Hosts("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("hosts = %d, want 2", len(all))
	}
	lbnl, _ := svc.Hosts("lbnl")
	if len(lbnl) != 1 || lbnl[0].Name != "pdsf.lbl.gov" {
		t.Fatalf("lbnl hosts = %v", lbnl)
	}
	// Re-register updates in place.
	if err := svc.RegisterHost(mds.HostInfo{Name: "pdsf.lbl.gov", Site: "lbnl", Services: []string{"hrm:4001"}}); err != nil {
		t.Fatal(err)
	}
	lbnl, _ = svc.Hosts("lbnl")
	if len(lbnl) != 1 || len(lbnl[0].Services) != 1 || lbnl[0].Services[0] != "hrm:4001" {
		t.Fatalf("after update: %+v", lbnl)
	}
}

// TestTransferProber verifies the active-measurement mode: a real probe
// transfer between simulated hosts yields a plausible bandwidth sample
// and a correct RTT, and preserves the ranking between a fast and a slow
// path (the property replica selection needs), including the documented
// slow-start bias.
func TestTransferProber(t *testing.T) {
	clk := vtime.NewSim(5)
	clk.Run(func() {
		n := simnet.New(clk)
		n.AddNode("wan")
		for _, h := range []string{"desk", "fastsite", "slowsite"} {
			n.AddHost(h, simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		}
		n.AddLink("desk", "wan", simnet.LinkConfig{CapacityBps: 1e9, Delay: 2 * time.Millisecond})
		n.AddLink("fastsite", "wan", simnet.LinkConfig{CapacityBps: 622e6, Delay: 5 * time.Millisecond})
		n.AddLink("slowsite", "wan", simnet.LinkConfig{CapacityBps: 10e6, Delay: 5 * time.Millisecond})

		for _, h := range []string{"desk", "fastsite", "slowsite"} {
			l, err := n.Host(h).Listen(":8060")
			if err != nil {
				t.Fatal(err)
			}
			clk.Go(func() { ServeProbes(clk, l) })
		}
		prober := NewTransferProber(clk, func(name string) transport.Network {
			h := n.Host(name)
			if h == nil {
				return nil
			}
			return h
		}, 8060, 1<<20)

		fastBW, fastRTT, err := prober.Probe("fastsite", "desk")
		if err != nil {
			t.Fatal(err)
		}
		slowBW, _, err := prober.Probe("slowsite", "desk")
		if err != nil {
			t.Fatal(err)
		}
		if wantRTT := 14 * time.Millisecond; fastRTT != wantRTT {
			t.Fatalf("fast RTT = %v, want %v", fastRTT, wantRTT)
		}
		// Ranking must hold; absolute value on the fast path is biased
		// low by slow start but must still beat the slow path's capacity.
		if fastBW <= slowBW {
			t.Fatalf("ranking lost: fast %.1f <= slow %.1f Mb/s", fastBW/1e6, slowBW/1e6)
		}
		if slowBW > 11e6 {
			t.Fatalf("slow path probe %.1f Mb/s exceeds its 10 Mb/s capacity", slowBW/1e6)
		}
		if fastBW < 50e6 {
			t.Fatalf("fast path probe %.1f Mb/s implausibly low", fastBW/1e6)
		}
		if _, _, err := prober.Probe("nowhere", "desk"); err == nil {
			t.Fatal("unknown source host accepted")
		}
	})
}
