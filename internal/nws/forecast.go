// Package nws reproduces the Network Weather Service (Wolski 1997) as the
// ESG prototype uses it (§5): distributed sensors periodically measure
// process-to-process bandwidth and latency between sites, a battery of
// time-series forecasters predicts the performance deliverable over the
// next interval, and the winning forecasts are published into MDS, where
// the request manager reads them to pick the "best" replica.
//
// The forecaster design follows NWS's dynamic predictor selection: every
// registered forecaster predicts each new measurement before seeing it;
// the forecaster with the lowest cumulative mean absolute error so far is
// the one whose prediction is reported.
package nws

import (
	"math"
	"sort"
)

// Forecaster is an online one-step-ahead predictor of a series.
type Forecaster interface {
	// Name identifies the method in reports.
	Name() string
	// Predict returns the forecast for the next observation (NaN until
	// the method has enough history).
	Predict() float64
	// Observe feeds the next actual observation.
	Observe(v float64)
}

// LastValue predicts the previous observation.
type LastValue struct{ last, n float64 }

// Name implements Forecaster.
func (f *LastValue) Name() string { return "last" }

// Predict implements Forecaster.
func (f *LastValue) Predict() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.last
}

// Observe implements Forecaster.
func (f *LastValue) Observe(v float64) { f.last, f.n = v, f.n+1 }

// RunningMean predicts the mean of all observations.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (f *RunningMean) Name() string { return "mean" }

// Predict implements Forecaster.
func (f *RunningMean) Predict() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// Observe implements Forecaster.
func (f *RunningMean) Observe(v float64) { f.sum += v; f.n++ }

// SlidingMedian predicts the median of the last W observations; robust to
// the transient spikes WAN measurements show.
type SlidingMedian struct {
	w    int
	ring []float64
	i    int
	full bool
}

// NewSlidingMedian returns a median forecaster over windows of w samples.
func NewSlidingMedian(w int) *SlidingMedian {
	if w < 1 {
		w = 1
	}
	return &SlidingMedian{w: w, ring: make([]float64, 0, w)}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return "median" }

// Predict implements Forecaster.
func (f *SlidingMedian) Predict() float64 {
	if len(f.ring) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), f.ring...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// Observe implements Forecaster.
func (f *SlidingMedian) Observe(v float64) {
	if len(f.ring) < f.w {
		f.ring = append(f.ring, v)
		return
	}
	f.ring[f.i] = v
	f.i = (f.i + 1) % f.w
}

// EWMA predicts an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA forecaster with smoothing factor alpha (0..1).
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Name implements Forecaster.
func (f *EWMA) Name() string { return "ewma" }

// Predict implements Forecaster.
func (f *EWMA) Predict() float64 {
	if !f.init {
		return math.NaN()
	}
	return f.v
}

// Observe implements Forecaster.
func (f *EWMA) Observe(v float64) {
	if !f.init {
		f.v, f.init = v, true
		return
	}
	f.v = f.alpha*v + (1-f.alpha)*f.v
}

// AR1 fits a first-order autoregressive model online.
type AR1 struct {
	n                        int
	meanX, meanY             float64
	sxx, sxy                 float64
	last                     float64
	haveLast                 bool
	sumAll                   float64
	countAll                 int
	phi, intercept, fallback float64
}

// Name implements Forecaster.
func (f *AR1) Name() string { return "ar1" }

// Predict implements Forecaster.
func (f *AR1) Predict() float64 {
	if f.countAll == 0 {
		return math.NaN()
	}
	if f.n < 3 || f.sxx == 0 {
		return f.sumAll / float64(f.countAll)
	}
	return f.intercept + f.phi*f.last
}

// Observe implements Forecaster.
func (f *AR1) Observe(v float64) {
	f.sumAll += v
	f.countAll++
	if f.haveLast {
		// Online simple regression of v on last (Welford-style updates).
		f.n++
		dx := f.last - f.meanX
		f.meanX += dx / float64(f.n)
		f.meanY += (v - f.meanY) / float64(f.n)
		f.sxx += dx * (f.last - f.meanX)
		f.sxy += dx * (v - f.meanY)
		if f.sxx > 0 {
			f.phi = f.sxy / f.sxx
			// Clamp to a stable region; WAN series are near unit-root and
			// an exploding phi makes terrible forecasts.
			if f.phi > 1 {
				f.phi = 1
			}
			if f.phi < -1 {
				f.phi = -1
			}
			f.intercept = f.meanY - f.phi*f.meanX
		}
	}
	f.last = v
	f.haveLast = true
}

// Adaptive performs NWS-style dynamic predictor selection across a
// battery of forecasters.
type Adaptive struct {
	fs   []Forecaster
	mae  []float64
	n    []int
	last []float64 // predictions made before the most recent Observe
}

// NewAdaptive returns the standard NWS battery: last value, running mean,
// sliding median, EWMA, and AR(1).
func NewAdaptive() *Adaptive {
	return NewAdaptiveWith(
		&LastValue{},
		&RunningMean{},
		NewSlidingMedian(15),
		NewEWMA(0.3),
		&AR1{},
	)
}

// NewAdaptiveWith builds an adaptive selector over a custom battery.
func NewAdaptiveWith(fs ...Forecaster) *Adaptive {
	a := &Adaptive{
		fs:   fs,
		mae:  make([]float64, len(fs)),
		n:    make([]int, len(fs)),
		last: make([]float64, len(fs)),
	}
	for i := range a.last {
		a.last[i] = math.NaN() // no standing prediction until first Observe
	}
	return a
}

// Name implements Forecaster.
func (a *Adaptive) Name() string { return "adaptive" }

// Observe scores each member's standing prediction against v, then feeds
// v to every member.
func (a *Adaptive) Observe(v float64) {
	for i, f := range a.fs {
		if p := a.last[i]; !math.IsNaN(p) {
			a.mae[i] += math.Abs(p - v)
			a.n[i]++
		}
		f.Observe(v)
		a.last[i] = f.Predict()
	}
}

// Predict returns the current best member's prediction.
func (a *Adaptive) Predict() float64 {
	i := a.bestIndex()
	if i < 0 {
		return math.NaN()
	}
	return a.fs[i].Predict()
}

// Best returns the name and cumulative MAE of the currently winning
// forecaster.
func (a *Adaptive) Best() (name string, mae float64) {
	i := a.bestIndex()
	if i < 0 {
		return "", math.NaN()
	}
	return a.fs[i].Name(), a.mae[i] / float64(a.n[i])
}

// MAE returns the forecast error (mean absolute error) of the currently
// selected member; callers publish it as the forecast confidence.
func (a *Adaptive) MAE() float64 {
	i := a.bestIndex()
	if i < 0 || a.n[i] == 0 {
		return math.NaN()
	}
	return a.mae[i] / float64(a.n[i])
}

// Errors reports per-member mean absolute error, keyed by name.
func (a *Adaptive) Errors() map[string]float64 {
	out := make(map[string]float64, len(a.fs))
	for i, f := range a.fs {
		if a.n[i] > 0 {
			out[f.Name()] = a.mae[i] / float64(a.n[i])
		}
	}
	return out
}

func (a *Adaptive) bestIndex() int {
	best, bestScore := -1, math.Inf(1)
	for i := range a.fs {
		if a.n[i] == 0 {
			continue
		}
		if s := a.mae[i] / float64(a.n[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		// No scored member yet: fall back to the first with a prediction.
		for i, f := range a.fs {
			if !math.IsNaN(f.Predict()) {
				return i
			}
		}
	}
	return best
}
