package nws

import (
	"fmt"
	"math"
	"sync"
	"time"

	"esgrid/internal/mds"
	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// Provenance site tag(s) for the delays this package schedules on
// the virtual clock (flight-recorder attribution).
var siteProbePeriod = vtime.RegisterSite("nws.probe-period")

// Prober takes one bandwidth/latency measurement for a directed host
// pair. The simulator-backed prober estimates the rate a new flow would
// get (plus measurement noise); a real-network prober would run a short
// probe transfer.
type Prober interface {
	Probe(from, to string) (bandwidthBps float64, latency time.Duration, err error)
}

// ProbeFunc adapts a function to the Prober interface.
type ProbeFunc func(from, to string) (float64, time.Duration, error)

// Probe implements Prober.
func (f ProbeFunc) Probe(from, to string) (float64, time.Duration, error) { return f(from, to) }

// Publisher receives finished forecasts; *mds.Service satisfies it.
type Publisher interface {
	PublishForecast(mds.NetForecast) error
}

// Sensor periodically measures one or more host pairs and publishes
// adaptive forecasts.
type Sensor struct {
	clk    vtime.Clock
	prober Prober
	pub    Publisher
	period time.Duration

	mu      sync.Mutex
	log     *netlogger.Log
	host    string
	pairs   []pair
	state   map[[2]string]*pairState
	stopped bool
	stopCh  chan struct{}
}

type pair struct{ from, to string }

type pairState struct {
	bw       *Adaptive
	lat      *Adaptive
	history  []float64
	lastAt   time.Time
	failures int // consecutive probe errors; reset on success
}

// NewSensor creates a sensor taking a measurement of every registered
// pair each period.
func NewSensor(clk vtime.Clock, prober Prober, pub Publisher, period time.Duration) *Sensor {
	return &Sensor{
		clk: clk, prober: prober, pub: pub, period: period,
		state:  map[[2]string]*pairState{},
		stopCh: make(chan struct{}),
	}
}

// Instrument routes probe-failure events into log, attributed to host
// (the site running the sensor). Probe errors were previously dropped on
// the floor; with a log attached every failure emits an nws.probe.error
// event carrying the pair, the error, and the consecutive-failure count,
// so an online consumer can tell a transient blip from a dead sensor.
func (s *Sensor) Instrument(log *netlogger.Log, host string) {
	s.mu.Lock()
	s.log = log
	s.host = host
	s.mu.Unlock()
}

// Failures returns the consecutive probe-error count for a pair (zeroed
// by any successful measurement).
func (s *Sensor) Failures(from, to string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.state[[2]string{from, to}]; st != nil {
		return st.failures
	}
	return 0
}

// Watch registers a directed pair for measurement.
func (s *Sensor) Watch(from, to string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]string{from, to}
	if _, dup := s.state[key]; dup {
		return
	}
	s.pairs = append(s.pairs, pair{from, to})
	s.state[key] = &pairState{bw: NewAdaptive(), lat: NewAdaptive()}
}

// Start launches the measurement loop on the clock's scheduler.
func (s *Sensor) Start() {
	s.clk.Go(s.loop)
}

// Stop halts the measurement loop.
func (s *Sensor) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
}

func (s *Sensor) loop() {
	for {
		vtime.SleepTagged(s.clk, siteProbePeriod, s.period)
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		ps := append([]pair(nil), s.pairs...)
		s.mu.Unlock()
		for _, p := range ps {
			s.measureOnce(p)
		}
	}
}

// measureOnce probes one pair and publishes the updated forecast.
func (s *Sensor) measureOnce(p pair) {
	bw, lat, err := s.prober.Probe(p.from, p.to)
	if err != nil {
		s.mu.Lock()
		st := s.state[[2]string{p.from, p.to}]
		var n int
		if st != nil {
			st.failures++
			n = st.failures
		}
		log, host := s.log, s.host
		s.mu.Unlock()
		if log != nil {
			log.Emit(host, "nws.probe.error",
				"from", p.from, "to", p.to,
				"err", err.Error(), "consecutive", fmt.Sprint(n))
		}
		return
	}
	now := s.clk.Now()
	s.mu.Lock()
	st := s.state[[2]string{p.from, p.to}]
	if st == nil {
		s.mu.Unlock()
		return
	}
	st.failures = 0
	st.bw.Observe(bw)
	st.lat.Observe(float64(lat))
	st.history = append(st.history, bw)
	st.lastAt = now
	fbw := st.bw.Predict()
	flat := st.lat.Predict()
	ferr := st.bw.MAE()
	s.mu.Unlock()
	if math.IsNaN(fbw) {
		fbw = bw
	}
	if math.IsNaN(flat) {
		flat = float64(lat)
	}
	if math.IsNaN(ferr) {
		ferr = 0
	}
	if s.pub != nil {
		_ = s.pub.PublishForecast(mds.NetForecast{
			From: p.from, To: p.to,
			BandwidthBps: fbw,
			Latency:      time.Duration(flat),
			ErrBps:       ferr,
			Measured:     now,
		})
	}
}

// MeasureNow forces an immediate measurement round (useful in tests and
// experiment warm-up).
func (s *Sensor) MeasureNow() {
	s.mu.Lock()
	ps := append([]pair(nil), s.pairs...)
	s.mu.Unlock()
	for _, p := range ps {
		s.measureOnce(p)
	}
}

// History returns the raw bandwidth observations for a pair.
func (s *Sensor) History(from, to string) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state[[2]string{from, to}]
	if st == nil {
		return nil
	}
	return append([]float64(nil), st.history...)
}

// ForecasterErrors reports the per-method bandwidth forecast errors for a
// pair (experiment S9).
func (s *Sensor) ForecasterErrors(from, to string) map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state[[2]string{from, to}]
	if st == nil {
		return nil
	}
	return st.bw.Errors()
}
