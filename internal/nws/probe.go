package nws

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// This file implements NWS's active measurement mode: instead of asking
// the simulator for an oracle estimate, a sensor performs a real probe
// transfer between hosts and times it — exactly how Wolski's bandwidth
// sensors work, including their well-known bias: short probes spend most
// of their life in TCP slow start, so they underestimate the capacity of
// fat fast paths while preserving the ranking between candidates. (The
// paper's request manager only needs the ranking.)

// DefaultProbeBytes is the probe transfer size. NWS used 64 KB-class
// probes; a somewhat larger probe reduces (but does not remove) the
// slow-start bias.
const DefaultProbeBytes = 1 << 20

// ServeProbes runs a probe responder on l: each connection carries an
// 8-byte payload length, that many payload bytes, and a 1-byte ack back.
// Run one at every measured host.
func ServeProbes(clk vtime.Clock, l transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		clk.Go(func() {
			defer c.Close()
			var hdr [8]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				return
			}
			n := int64(binary.BigEndian.Uint64(hdr[:]))
			if n < 0 || n > 1<<30 {
				return
			}
			if _, err := transport.ReadVirtualFrom(c, n); err != nil {
				return
			}
			c.Write([]byte{1})
		})
	}
}

// TransferProber measures bandwidth and latency with real probe
// transfers from the source host to the destination's probe responder.
type TransferProber struct {
	clk vtime.Clock
	// hostOf returns the transport of the named host (the sensor process
	// running at that site).
	hostOf func(name string) transport.Network
	port   int
	bytes  int64
}

// NewTransferProber builds a Prober that dials from the source host's
// transport to <to>:<port>.
func NewTransferProber(clk vtime.Clock, hostOf func(string) transport.Network, port int, probeBytes int64) *TransferProber {
	if probeBytes <= 0 {
		probeBytes = DefaultProbeBytes
	}
	return &TransferProber{clk: clk, hostOf: hostOf, port: port, bytes: probeBytes}
}

// Probe implements Prober.
func (p *TransferProber) Probe(from, to string) (float64, time.Duration, error) {
	net := p.hostOf(from)
	if net == nil {
		return 0, 0, fmt.Errorf("nws: no transport for host %q", from)
	}
	t0 := p.clk.Now()
	c, err := net.Dial(fmt.Sprintf("%s:%d", to, p.port))
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	// Connection establishment costs one RTT: the latency sample.
	rtt := p.clk.Now().Sub(t0)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(p.bytes))
	tx0 := p.clk.Now()
	if _, err := c.Write(hdr[:]); err != nil {
		return 0, 0, err
	}
	if _, err := transport.WriteVirtualTo(c, p.bytes); err != nil {
		return 0, 0, err
	}
	var ack [1]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		return 0, 0, err
	}
	elapsed := p.clk.Now().Sub(tx0)
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("nws: zero-duration probe")
	}
	bw := float64(p.bytes) * 8 / elapsed.Seconds()
	return bw, rtt, nil
}
