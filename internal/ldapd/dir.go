// Package ldapd is the in-process directory service standing in for the
// LDAP servers the ESG prototype used for its catalogs (§3, §6.2) and for
// the MDS information service (§5, §6). It provides a hierarchical
// directory information tree of DN-addressed entries with multi-valued
// attributes, RFC 4515-style search filters, LDIF import/export, and a
// network server/client speaking a framed protocol over any transport.
//
// Substitution (DESIGN.md §1): the BER wire encoding of real LDAP is
// irrelevant to the paper's behaviour; the catalogs need hierarchy +
// attribute search + remote access, all of which are preserved.
package ldapd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scope selects how much of the tree a search visits.
type Scope int

// Search scopes, mirroring LDAP.
const (
	ScopeBase Scope = iota // the base entry only
	ScopeOne               // immediate children of the base
	ScopeSub               // the base and all descendants
)

// Errors returned by directory operations.
var (
	ErrNoSuchEntry   = errors.New("ldapd: no such entry")
	ErrEntryExists   = errors.New("ldapd: entry already exists")
	ErrNotLeaf       = errors.New("ldapd: entry has children")
	ErrNoSuchParent  = errors.New("ldapd: parent entry does not exist")
	ErrBadDN         = errors.New("ldapd: malformed DN")
	ErrBadFilter     = errors.New("ldapd: malformed filter")
	ErrNoSuchAttr    = errors.New("ldapd: no such attribute")
	errValueNotFound = errors.New("ldapd: value not found")
)

// Entry is one directory object.
type Entry struct {
	DN    string
	Attrs map[string][]string
}

// Get returns the first value of attr ("" if absent).
func (e *Entry) Get(attr string) string {
	vs := e.Attrs[strings.ToLower(attr)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// GetAll returns all values of attr.
func (e *Entry) GetAll(attr string) []string { return e.Attrs[strings.ToLower(attr)] }

// clone deep-copies the entry.
func (e *Entry) clone() *Entry {
	c := &Entry{DN: e.DN, Attrs: make(map[string][]string, len(e.Attrs))}
	for k, v := range e.Attrs {
		c.Attrs[k] = append([]string(nil), v...)
	}
	return c
}

// ModOp is a modification operator.
type ModOp int

// Modification operators, mirroring LDAP modify semantics.
const (
	ModAdd ModOp = iota
	ModReplace
	ModDelete
)

// Mod is one attribute modification.
type Mod struct {
	Op     ModOp
	Attr   string
	Values []string
}

// Directory is the operation set shared by the in-memory server (*Dir)
// and the network client (*Client), so catalogs work against either.
type Directory interface {
	Add(dn string, attrs map[string][]string) error
	Modify(dn string, mods []Mod) error
	Delete(dn string) error
	Search(base string, scope Scope, filter string) ([]*Entry, error)
}

// Dir is an in-memory directory information tree, safe for concurrent use.
type Dir struct {
	mu       sync.RWMutex
	entries  map[string]*Entry   // normalized DN -> entry
	children map[string][]string // normalized parent DN -> normalized child DNs
}

// NewDir returns an empty tree.
func NewDir() *Dir {
	return &Dir{entries: map[string]*Entry{}, children: map[string][]string{}}
}

// NormalizeDN canonicalizes a DN: trims space around RDNs, lowercases
// attribute names, preserves value case.
func NormalizeDN(dn string) (string, error) {
	if strings.TrimSpace(dn) == "" {
		return "", nil // root
	}
	parts := strings.Split(dn, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		i := strings.IndexByte(p, '=')
		if i <= 0 || i == len(p)-1 {
			return "", fmt.Errorf("%w: %q", ErrBadDN, dn)
		}
		out = append(out, strings.ToLower(p[:i])+"="+p[i+1:])
	}
	return strings.Join(out, ","), nil
}

// ParentDN returns the parent of a normalized DN ("" for top level).
func ParentDN(dn string) string {
	if i := strings.IndexByte(dn, ','); i >= 0 {
		return dn[i+1:]
	}
	return ""
}

// normAttrs lowercases attribute names.
func normAttrs(attrs map[string][]string) map[string][]string {
	out := make(map[string][]string, len(attrs))
	for k, v := range attrs {
		out[strings.ToLower(k)] = append([]string(nil), v...)
	}
	return out
}

// Add inserts an entry. Every ancestor except the top level must exist.
func (d *Dir) Add(dn string, attrs map[string][]string) error {
	ndn, err := NormalizeDN(dn)
	if err != nil {
		return err
	}
	if ndn == "" {
		return fmt.Errorf("%w: empty DN", ErrBadDN)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[ndn]; dup {
		return fmt.Errorf("%w: %s", ErrEntryExists, ndn)
	}
	parent := ParentDN(ndn)
	if parent != "" {
		if _, ok := d.entries[parent]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchParent, parent)
		}
	}
	d.entries[ndn] = &Entry{DN: ndn, Attrs: normAttrs(attrs)}
	d.children[parent] = append(d.children[parent], ndn)
	return nil
}

// Modify applies mods to an entry in order; it fails atomically (no
// partial application) if any mod is invalid.
func (d *Dir) Modify(dn string, mods []Mod) error {
	ndn, err := NormalizeDN(dn)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[ndn]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, ndn)
	}
	work := e.clone()
	for _, m := range mods {
		attr := strings.ToLower(m.Attr)
		switch m.Op {
		case ModAdd:
			work.Attrs[attr] = append(work.Attrs[attr], m.Values...)
		case ModReplace:
			if len(m.Values) == 0 {
				delete(work.Attrs, attr)
			} else {
				work.Attrs[attr] = append([]string(nil), m.Values...)
			}
		case ModDelete:
			if len(m.Values) == 0 {
				if _, ok := work.Attrs[attr]; !ok {
					return fmt.Errorf("%w: %s", ErrNoSuchAttr, attr)
				}
				delete(work.Attrs, attr)
				continue
			}
			for _, v := range m.Values {
				vs := work.Attrs[attr]
				i := indexOf(vs, v)
				if i < 0 {
					return fmt.Errorf("%w: %s=%s", errValueNotFound, attr, v)
				}
				work.Attrs[attr] = append(vs[:i:i], vs[i+1:]...)
			}
			if len(work.Attrs[attr]) == 0 {
				delete(work.Attrs, attr)
			}
		default:
			return fmt.Errorf("ldapd: unknown mod op %d", m.Op)
		}
	}
	d.entries[ndn] = work
	return nil
}

func indexOf(vs []string, v string) int {
	for i, x := range vs {
		if x == v {
			return i
		}
	}
	return -1
}

// Delete removes a leaf entry.
func (d *Dir) Delete(dn string) error {
	ndn, err := NormalizeDN(dn)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[ndn]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, ndn)
	}
	if len(d.children[ndn]) > 0 {
		return fmt.Errorf("%w: %s", ErrNotLeaf, ndn)
	}
	delete(d.entries, ndn)
	delete(d.children, ndn)
	parent := ParentDN(ndn)
	kids := d.children[parent]
	if i := indexOf(kids, ndn); i >= 0 {
		d.children[parent] = append(kids[:i:i], kids[i+1:]...)
	}
	return nil
}

// Search returns clones of the entries under base (per scope) matching
// filter (empty filter matches everything), sorted by DN.
func (d *Dir) Search(base string, scope Scope, filter string) ([]*Entry, error) {
	nbase, err := NormalizeDN(base)
	if err != nil {
		return nil, err
	}
	var f *node
	if strings.TrimSpace(filter) != "" {
		f, err = parseFilter(filter)
		if err != nil {
			return nil, err
		}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if nbase != "" {
		if _, ok := d.entries[nbase]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, nbase)
		}
	}
	var cands []string
	switch scope {
	case ScopeBase:
		if nbase != "" {
			cands = []string{nbase}
		}
	case ScopeOne:
		cands = append(cands, d.children[nbase]...)
	case ScopeSub:
		if nbase != "" {
			cands = append(cands, nbase)
		}
		var walk func(p string)
		walk = func(p string) {
			for _, c := range d.children[p] {
				cands = append(cands, c)
				walk(c)
			}
		}
		walk(nbase)
	default:
		return nil, fmt.Errorf("ldapd: unknown scope %d", scope)
	}
	var out []*Entry
	for _, dn := range cands {
		e := d.entries[dn]
		if f == nil || f.matches(e) {
			out = append(out, e.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DN < out[j].DN })
	return out, nil
}

// Len returns the number of entries.
func (d *Dir) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

var _ Directory = (*Dir)(nil)
