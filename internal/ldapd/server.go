package ldapd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"esgrid/internal/transport"
	"esgrid/internal/vtime"
)

// wire messages for the framed directory protocol.
type request struct {
	Op     string              `json:"op"` // add, modify, delete, search
	DN     string              `json:"dn,omitempty"`
	Attrs  map[string][]string `json:"attrs,omitempty"`
	Mods   []wireMod           `json:"mods,omitempty"`
	Base   string              `json:"base,omitempty"`
	Scope  int                 `json:"scope,omitempty"`
	Filter string              `json:"filter,omitempty"`
}

type wireMod struct {
	Op     int      `json:"op"`
	Attr   string   `json:"attr"`
	Values []string `json:"values,omitempty"`
}

type response struct {
	Err     string      `json:"err,omitempty"`
	Entries []wireEntry `json:"entries,omitempty"`
}

type wireEntry struct {
	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs"`
}

// Server exposes a Dir over a transport listener.
type Server struct {
	dir *Dir
	clk vtime.Clock

	mu       sync.Mutex
	listener transport.Listener
	closed   bool
}

// NewServer wraps dir for network service.
func NewServer(dir *Dir, clk vtime.Clock) *Server {
	return &Server{dir: dir, clk: clk}
}

// Serve accepts and handles connections until the listener is closed.
// Each connection is handled on its own clock-managed goroutine.
func (s *Server) Serve(l transport.Listener) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.clk.Go(func() { s.handle(c) })
	}
}

// Close stops accepting connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
}

func (s *Server) handle(c transport.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		var req request
		if err := transport.ReadJSON(br, &req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if err := transport.WriteJSON(c, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	var err error
	resp := &response{}
	switch req.Op {
	case "add":
		err = s.dir.Add(req.DN, req.Attrs)
	case "modify":
		mods := make([]Mod, len(req.Mods))
		for i, m := range req.Mods {
			mods[i] = Mod{Op: ModOp(m.Op), Attr: m.Attr, Values: m.Values}
		}
		err = s.dir.Modify(req.DN, mods)
	case "delete":
		err = s.dir.Delete(req.DN)
	case "search":
		var entries []*Entry
		entries, err = s.dir.Search(req.Base, Scope(req.Scope), req.Filter)
		for _, e := range entries {
			resp.Entries = append(resp.Entries, wireEntry{DN: e.DN, Attrs: e.Attrs})
		}
	default:
		err = fmt.Errorf("ldapd: unknown op %q", req.Op)
	}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// Client speaks the directory protocol over a single connection. It is
// safe for concurrent use; requests are serialized on the connection.
type Client struct {
	mu   sync.Mutex
	conn transport.Conn
	br   *bufio.Reader
}

// Dial connects a client to the directory server at addr.
func Dial(d transport.Dialer, addr string) (*Client, error) {
	c, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: c, br: bufio.NewReader(c)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := transport.WriteJSON(c.conn, req); err != nil {
		return nil, err
	}
	var resp response
	if err := transport.ReadJSON(c.br, &resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, net.ErrClosed
		}
		return nil, err
	}
	if resp.Err != "" {
		return nil, mapError(resp.Err)
	}
	return &resp, nil
}

// mapError rehydrates well-known sentinel errors from the wire so callers
// can use errors.Is across the network boundary.
func mapError(msg string) error {
	for _, sentinel := range []error{
		ErrNoSuchEntry, ErrEntryExists, ErrNotLeaf, ErrNoSuchParent, ErrBadDN, ErrBadFilter, ErrNoSuchAttr,
	} {
		if len(msg) >= len(sentinel.Error()) && msg[:len(sentinel.Error())] == sentinel.Error() {
			return fmt.Errorf("%w%s", sentinel, msg[len(sentinel.Error()):])
		}
	}
	return errors.New(msg)
}

// Add implements Directory.
func (c *Client) Add(dn string, attrs map[string][]string) error {
	_, err := c.roundTrip(&request{Op: "add", DN: dn, Attrs: attrs})
	return err
}

// Modify implements Directory.
func (c *Client) Modify(dn string, mods []Mod) error {
	wm := make([]wireMod, len(mods))
	for i, m := range mods {
		wm[i] = wireMod{Op: int(m.Op), Attr: m.Attr, Values: m.Values}
	}
	_, err := c.roundTrip(&request{Op: "modify", DN: dn, Mods: wm})
	return err
}

// Delete implements Directory.
func (c *Client) Delete(dn string) error {
	_, err := c.roundTrip(&request{Op: "delete", DN: dn})
	return err
}

// Search implements Directory.
func (c *Client) Search(base string, scope Scope, filter string) ([]*Entry, error) {
	resp, err := c.roundTrip(&request{Op: "search", Base: base, Scope: int(scope), Filter: filter})
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, len(resp.Entries))
	for i, we := range resp.Entries {
		out[i] = &Entry{DN: we.DN, Attrs: we.Attrs}
	}
	return out, nil
}

var _ Directory = (*Client)(nil)
