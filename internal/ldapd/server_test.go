package ldapd

import (
	"errors"
	"testing"
	"time"

	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

// TestClientServerOverSimnet exercises the directory protocol end to end
// over the simulated WAN, as the ESG catalogs are accessed in experiments.
func TestClientServerOverSimnet(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		n := simnet.New(clk)
		isi := n.AddHost("isi", simnet.HostConfig{})
		anl := n.AddHost("anl", simnet.HostConfig{})
		n.AddLink("isi", "anl", simnet.LinkConfig{CapacityBps: 100e6, Delay: 15 * time.Millisecond})

		dir := NewDir()
		srv := NewServer(dir, clk)
		l, err := isi.Listen(":3890")
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() { srv.Serve(l) })

		cli, err := Dial(anl, "isi:3890")
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()

		if err := cli.Add("o=esg", map[string][]string{"objectclass": {"organization"}}); err != nil {
			t.Fatal(err)
		}
		if err := cli.Add("lc=ncar-ccm3,o=esg", map[string][]string{
			"objectclass": {"logicalcollection"},
			"filename":    {"t42.nc"},
		}); err != nil {
			t.Fatal(err)
		}
		t0 := clk.Now()
		es, err := cli.Search("o=esg", ScopeSub, "(filename=*)")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 1 || es[0].Get("filename") != "t42.nc" {
			t.Fatalf("search over network returned %v", es)
		}
		// A remote search costs at least one WAN round trip (30ms).
		if d := clk.Now().Sub(t0); d < 30*time.Millisecond {
			t.Fatalf("remote search took %v, want >= 1 RTT", d)
		}
		// Sentinel errors survive the wire.
		if err := cli.Delete("o=missing"); !errors.Is(err, ErrNoSuchEntry) {
			t.Fatalf("remote delete err = %v, want ErrNoSuchEntry", err)
		}
		if err := cli.Modify("lc=ncar-ccm3,o=esg", []Mod{{Op: ModAdd, Attr: "filename", Values: []string{"t85.nc"}}}); err != nil {
			t.Fatal(err)
		}
		es, _ = cli.Search("lc=ncar-ccm3,o=esg", ScopeBase, "")
		if got := es[0].GetAll("filename"); len(got) != 2 {
			t.Fatalf("after remote modify: %v", got)
		}
		srv.Close()
	})
}

func TestConcurrentClients(t *testing.T) {
	clk := vtime.NewSim(2)
	clk.Run(func() {
		n := simnet.New(clk)
		hub := n.AddHost("hub", simnet.HostConfig{})
		dir := NewDir()
		dir.Add("o=esg", nil)
		srv := NewServer(dir, clk)
		l, _ := hub.Listen(":3890")
		clk.Go(func() { srv.Serve(l) })

		var hosts []*simnet.Host
		for _, name := range []string{"c1", "c2", "c3", "c4"} {
			h := n.AddHost(name, simnet.HostConfig{})
			n.AddLink(name, "hub", simnet.LinkConfig{CapacityBps: 100e6, Delay: 5 * time.Millisecond})
			hosts = append(hosts, h)
		}
		wg := vtime.NewWaitGroup(clk)
		for i, h := range hosts {
			i, h := i, h
			wg.Go(func() {
				cli, err := Dial(h, "hub:3890")
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer cli.Close()
				for j := 0; j < 10; j++ {
					dn := entryDN(i, j)
					if err := cli.Add(dn, map[string][]string{"owner": {h.Name()}}); err != nil {
						t.Errorf("add %s: %v", dn, err)
					}
				}
			})
		}
		wg.Wait()
		es, err := dir.Search("o=esg", ScopeSub, "(owner=*)")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 40 {
			t.Fatalf("concurrent adds: %d entries, want 40", len(es))
		}
		srv.Close()
	})
}

func entryDN(i, j int) string {
	return "cn=c" + string(rune('1'+i)) + "-" + string(rune('a'+j)) + ",o=esg"
}
