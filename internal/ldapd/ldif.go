package ldapd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DumpLDIF writes every entry in the tree in LDIF form, parents before
// children, attributes sorted, suitable for fixtures and debugging.
func (d *Dir) DumpLDIF(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var dns []string
	var walk func(p string)
	walk = func(p string) {
		kids := append([]string(nil), d.children[p]...)
		sort.Strings(kids)
		for _, c := range kids {
			dns = append(dns, c)
			walk(c)
		}
	}
	walk("")
	for _, dn := range dns {
		e := d.entries[dn]
		if _, err := fmt.Fprintf(w, "dn: %s\n", e.DN); err != nil {
			return err
		}
		attrs := make([]string, 0, len(e.Attrs))
		for a := range e.Attrs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			for _, v := range e.Attrs[a] {
				if _, err := fmt.Fprintf(w, "%s: %s\n", a, v); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadLDIF reads LDIF records (dn line followed by attr lines, blank-line
// separated; '#' comments ignored) and adds each as an entry.
func (d *Dir) LoadLDIF(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var dn string
	attrs := map[string][]string{}
	flush := func() error {
		if dn == "" {
			return nil
		}
		err := d.Add(dn, attrs)
		dn = ""
		attrs = map[string][]string{}
		return err
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.TrimSpace(line) == "" {
			if err := flush(); err != nil {
				return fmt.Errorf("ldif line %d: %w", lineNo, err)
			}
			continue
		}
		i := strings.Index(line, ":")
		if i <= 0 {
			return fmt.Errorf("ldif line %d: %w: %q", lineNo, ErrBadDN, line)
		}
		key := strings.TrimSpace(line[:i])
		val := strings.TrimSpace(line[i+1:])
		if strings.EqualFold(key, "dn") {
			if err := flush(); err != nil {
				return fmt.Errorf("ldif line %d: %w", lineNo, err)
			}
			dn = val
			continue
		}
		if dn == "" {
			return fmt.Errorf("ldif line %d: attribute before dn", lineNo)
		}
		attrs[strings.ToLower(key)] = append(attrs[strings.ToLower(key)], val)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
