package ldapd

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// figure6Dir builds the replica catalog of the paper's Figure 6 as a DIT.
func figure6Dir(t *testing.T) *Dir {
	t.Helper()
	d := NewDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add("o=esg", map[string][]string{"objectclass": {"organization"}}))
	must(d.Add("lc=CO2 measurements 1998,o=esg", map[string][]string{
		"objectclass": {"logicalcollection"},
		"filename":    {"jan98.nc", "feb98.nc", "mar98.nc"},
	}))
	must(d.Add("lc=CO2 measurements 1999,o=esg", map[string][]string{
		"objectclass": {"logicalcollection"},
		"filename":    {"jan99.nc"},
	}))
	must(d.Add("loc=jupiter.isi.edu,lc=CO2 measurements 1998,o=esg", map[string][]string{
		"objectclass": {"location"},
		"protocol":    {"gsiftp"},
		"hostname":    {"jupiter.isi.edu"},
		"path":        {"/data/co2"},
		"filename":    {"jan98.nc", "feb98.nc"},
	}))
	must(d.Add("loc=sprite.llnl.gov,lc=CO2 measurements 1998,o=esg", map[string][]string{
		"objectclass": {"location"},
		"protocol":    {"gsiftp"},
		"hostname":    {"sprite.llnl.gov"},
		"path":        {"/pcmdi/co2"},
		"filename":    {"jan98.nc", "feb98.nc", "mar98.nc"},
	}))
	must(d.Add("lf=jan98.nc,lc=CO2 measurements 1998,o=esg", map[string][]string{
		"objectclass": {"logicalfile"},
		"size":        {"1048576000"},
	}))
	return d
}

func TestAddRequiresParent(t *testing.T) {
	d := NewDir()
	err := d.Add("loc=x,lc=y,o=esg", nil)
	if !errors.Is(err, ErrNoSuchParent) {
		t.Fatalf("err = %v, want ErrNoSuchParent", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	d := NewDir()
	d.Add("o=esg", nil)
	if err := d.Add("o=esg", nil); !errors.Is(err, ErrEntryExists) {
		t.Fatalf("err = %v, want ErrEntryExists", err)
	}
}

func TestDNNormalization(t *testing.T) {
	d := NewDir()
	if err := d.Add("O=ESG", nil); err != nil {
		t.Fatal(err)
	}
	// Attribute name case-folds; value case preserved.
	es, err := d.Search("o=ESG", ScopeBase, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].DN != "o=ESG" {
		t.Fatalf("got %v", es)
	}
	if _, err := NormalizeDN("nonsense"); !errors.Is(err, ErrBadDN) {
		t.Fatalf("NormalizeDN accepted garbage: %v", err)
	}
}

func TestScopes(t *testing.T) {
	d := figure6Dir(t)
	base, _ := d.Search("o=esg", ScopeBase, "")
	if len(base) != 1 {
		t.Fatalf("base: %d entries, want 1", len(base))
	}
	one, _ := d.Search("o=esg", ScopeOne, "")
	if len(one) != 2 {
		t.Fatalf("one: %d entries, want 2 collections", len(one))
	}
	sub, _ := d.Search("o=esg", ScopeSub, "")
	if len(sub) != 6 {
		t.Fatalf("sub: %d entries, want 6", len(sub))
	}
}

func TestSearchFilters(t *testing.T) {
	d := figure6Dir(t)
	cases := []struct {
		filter string
		want   int
	}{
		{"(objectclass=location)", 2},
		{"(objectclass=LOCATION)", 2}, // value match is case-insensitive
		{"(hostname=jupiter.isi.edu)", 1},
		{"(&(objectclass=location)(filename=mar98.nc))", 1},
		{"(|(hostname=jupiter.isi.edu)(hostname=sprite.llnl.gov))", 2},
		{"(!(objectclass=location))", 4},
		{"(filename=*98.nc)", 3}, // 1998 collection + both locations
		{"(filename=jan*)", 4},
		{"(hostname=*isi*)", 1},
		{"(size>=1000000000)", 1},
		{"(size<=1000)", 0},
		{"(hostname=*)", 2},
		{"(&(objectclass=location)(|(filename=mar98.nc)(hostname=jupiter.isi.edu)))", 2},
	}
	for _, tc := range cases {
		got, err := d.Search("o=esg", ScopeSub, tc.filter)
		if err != nil {
			t.Errorf("%s: %v", tc.filter, err)
			continue
		}
		if len(got) != tc.want {
			t.Errorf("%s: %d entries, want %d", tc.filter, len(got), tc.want)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	for _, f := range []string{
		"objectclass=x", "(objectclass=x", "()", "(&)", "((a=b))", "(a>b)", "(=x)",
	} {
		if _, err := parseFilter(f); err == nil {
			t.Errorf("parseFilter(%q) succeeded, want error", f)
		}
	}
}

func TestModifySemantics(t *testing.T) {
	d := figure6Dir(t)
	dn := "loc=jupiter.isi.edu,lc=CO2 measurements 1998,o=esg"
	// Add a file to the partial location.
	if err := d.Modify(dn, []Mod{{Op: ModAdd, Attr: "filename", Values: []string{"mar98.nc"}}}); err != nil {
		t.Fatal(err)
	}
	es, _ := d.Search(dn, ScopeBase, "(filename=mar98.nc)")
	if len(es) != 1 {
		t.Fatal("ModAdd did not take effect")
	}
	// Delete one value.
	if err := d.Modify(dn, []Mod{{Op: ModDelete, Attr: "filename", Values: []string{"jan98.nc"}}}); err != nil {
		t.Fatal(err)
	}
	es, _ = d.Search(dn, ScopeBase, "")
	if got := es[0].GetAll("filename"); len(got) != 2 {
		t.Fatalf("filenames after delete = %v", got)
	}
	// Replace.
	if err := d.Modify(dn, []Mod{{Op: ModReplace, Attr: "path", Values: []string{"/new"}}}); err != nil {
		t.Fatal(err)
	}
	es, _ = d.Search(dn, ScopeBase, "")
	if es[0].Get("path") != "/new" {
		t.Fatal("ModReplace did not take effect")
	}
	// Deleting a missing value fails atomically.
	err := d.Modify(dn, []Mod{
		{Op: ModAdd, Attr: "extra", Values: []string{"v"}},
		{Op: ModDelete, Attr: "filename", Values: []string{"nope.nc"}},
	})
	if err == nil {
		t.Fatal("delete of missing value succeeded")
	}
	es, _ = d.Search(dn, ScopeBase, "")
	if es[0].Get("extra") != "" {
		t.Fatal("failed Modify was partially applied")
	}
}

func TestDeleteLeafOnly(t *testing.T) {
	d := figure6Dir(t)
	if err := d.Delete("lc=CO2 measurements 1998,o=esg"); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("err = %v, want ErrNotLeaf", err)
	}
	if err := d.Delete("lf=jan98.nc,lc=CO2 measurements 1998,o=esg"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("lf=jan98.nc,lc=CO2 measurements 1998,o=esg"); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("second delete: %v, want ErrNoSuchEntry", err)
	}
}

func TestSearchResultsAreClones(t *testing.T) {
	d := figure6Dir(t)
	es, _ := d.Search("o=esg", ScopeBase, "")
	es[0].Attrs["objectclass"][0] = "mutated"
	es2, _ := d.Search("o=esg", ScopeBase, "")
	if es2[0].Get("objectclass") == "mutated" {
		t.Fatal("search results alias directory storage")
	}
}

func TestLDIFRoundTrip(t *testing.T) {
	d := figure6Dir(t)
	var b strings.Builder
	if err := d.DumpLDIF(&b); err != nil {
		t.Fatal(err)
	}
	d2 := NewDir()
	if err := d2.LoadLDIF(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip: %d entries, want %d", d2.Len(), d.Len())
	}
	var b2 strings.Builder
	d2.DumpLDIF(&b2)
	if b.String() != b2.String() {
		t.Fatal("LDIF round trip not stable")
	}
}

func TestLDIFComments(t *testing.T) {
	d := NewDir()
	err := d.LoadLDIF(strings.NewReader("# fixture\ndn: o=esg\nobjectclass: organization\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("entries = %d", d.Len())
	}
}

// TestDirInvariantsUnderRandomOps drives random add/delete/modify
// operations and checks structural invariants: every entry's parent
// exists, children index matches entries.
func TestDirInvariantsUnderRandomOps(t *testing.T) {
	d := NewDir()
	d.Add("o=esg", nil)
	rng := uint64(12345)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var dns []string
	dns = append(dns, "o=esg")
	for i := 0; i < 2000; i++ {
		switch next(3) {
		case 0: // add under random parent
			parent := dns[next(len(dns))]
			dn := fmt.Sprintf("cn=e%d,%s", i, parent)
			if err := d.Add(dn, map[string][]string{"seq": {fmt.Sprint(i)}}); err == nil {
				dns = append(dns, dn)
			}
		case 1: // delete random
			dn := dns[next(len(dns))]
			if err := d.Delete(dn); err == nil {
				for j, x := range dns {
					if x == dn {
						dns = append(dns[:j], dns[j+1:]...)
						break
					}
				}
			}
		case 2: // modify random
			dn := dns[next(len(dns))]
			d.Modify(dn, []Mod{{Op: ModReplace, Attr: "touched", Values: []string{"y"}}})
		}
	}
	// Invariants.
	d.mu.RLock()
	defer d.mu.RUnlock()
	for dn := range d.entries {
		if p := ParentDN(dn); p != "" {
			if _, ok := d.entries[p]; !ok {
				t.Fatalf("entry %s has missing parent %s", dn, p)
			}
		}
	}
	childCount := 0
	for p, kids := range d.children {
		for _, c := range kids {
			childCount++
			if _, ok := d.entries[c]; !ok {
				t.Fatalf("children index lists missing entry %s", c)
			}
			if ParentDN(c) != p {
				t.Fatalf("children index wrong parent for %s", c)
			}
		}
	}
	if childCount != len(d.entries) {
		t.Fatalf("children index has %d entries, tree has %d", childCount, len(d.entries))
	}
}
