package ldapd

import (
	"errors"
	"testing"
)

// FuzzFilter drives the RFC 4515-style filter parser with arbitrary
// input: it must either return a usable filter tree or ErrBadFilter,
// never panic — and an accepted tree must evaluate without panicking.
func FuzzFilter(f *testing.F) {
	for _, seed := range []string{
		"(objectclass=grishost)",
		"(&(objectclass=grishost)(site=anl))",
		"(|(cn=a)(cn=b))",
		"(!(cn=a))",
		"(cn=*)",
		"(cn=pcm*nc)",
		"(cn=*middle*)",
		"(bandwidthbps>=1000000)",
		"(latencyns<=50000000)",
		"(&(a=1)(|(b=2)(!(c=3))))",
		"()",
		"(",
		")",
		"((a=b))",
		"(a=b",
		"(=b)",
		"(a>b)",
		"  (cn=x)  ",
		"(cn=a)(cn=b)",
	} {
		f.Add(seed)
	}
	entry := &Entry{DN: "cn=pcm-00.nc,o=esg", Attrs: map[string][]string{
		"objectclass":  {"grishost", "top"},
		"cn":           {"pcm-00.nc"},
		"site":         {"anl"},
		"bandwidthbps": {"100000000"},
		"latencyns":    {"24000000"},
		"empty":        {},
	}}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := parseFilter(s)
		if err != nil {
			if !errors.Is(err, ErrBadFilter) {
				t.Fatalf("parseFilter(%q) error %v is not ErrBadFilter", s, err)
			}
			if n != nil {
				t.Fatalf("parseFilter(%q) returned node and error", s)
			}
			return
		}
		if n == nil {
			t.Fatalf("parseFilter(%q) returned nil node and nil error", s)
		}
		n.matches(entry)
		n.matches(&Entry{DN: "cn=empty"})
	})
}
