package ldapd

import (
	"fmt"
	"strconv"
	"strings"
)

// node is a parsed search filter.
type node struct {
	op       byte // '&', '|', '!', '=', '>', '<', 'p' (presence)
	kids     []*node
	attr     string
	value    string   // for =, >=, <=
	patterns []string // for substring matches: parts split on '*'
	anchorL  bool     // pattern anchored at start
	anchorR  bool     // pattern anchored at end
}

// parseFilter parses an RFC 4515-style filter string supporting
// (attr=value), (attr=*), substring wildcards, (attr>=v), (attr<=v),
// and the boolean combinators & | !.
func parseFilter(s string) (*node, error) {
	p := &fparser{s: s}
	n, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("%w: trailing data at %d in %q", ErrBadFilter, p.i, s)
	}
	return n, nil
}

type fparser struct {
	s string
	i int
}

func (p *fparser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *fparser) parse() (*node, error) {
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != '(' {
		return nil, fmt.Errorf("%w: expected '(' at %d in %q", ErrBadFilter, p.i, p.s)
	}
	p.i++
	p.skipSpace()
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("%w: unexpected end in %q", ErrBadFilter, p.s)
	}
	var n *node
	switch p.s[p.i] {
	case '&', '|':
		op := p.s[p.i]
		p.i++
		n = &node{op: op}
		for {
			p.skipSpace()
			if p.i < len(p.s) && p.s[p.i] == ')' {
				break
			}
			kid, err := p.parse()
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, kid)
		}
		if len(n.kids) == 0 {
			return nil, fmt.Errorf("%w: empty %c in %q", ErrBadFilter, op, p.s)
		}
	case '!':
		p.i++
		kid, err := p.parse()
		if err != nil {
			return nil, err
		}
		n = &node{op: '!', kids: []*node{kid}}
		p.skipSpace()
	default:
		var err error
		n, err = p.parseSimple()
		if err != nil {
			return nil, err
		}
	}
	if p.i >= len(p.s) || p.s[p.i] != ')' {
		return nil, fmt.Errorf("%w: expected ')' at %d in %q", ErrBadFilter, p.i, p.s)
	}
	p.i++
	return n, nil
}

func (p *fparser) parseSimple() (*node, error) {
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != '=' && p.s[p.i] != '>' && p.s[p.i] != '<' && p.s[p.i] != ')' {
		p.i++
	}
	if p.i >= len(p.s) || p.s[p.i] == ')' {
		return nil, fmt.Errorf("%w: missing comparator in %q", ErrBadFilter, p.s)
	}
	attr := strings.ToLower(strings.TrimSpace(p.s[start:p.i]))
	if attr == "" {
		return nil, fmt.Errorf("%w: empty attribute in %q", ErrBadFilter, p.s)
	}
	var op byte
	switch p.s[p.i] {
	case '=':
		op = '='
		p.i++
	case '>', '<':
		op = p.s[p.i]
		p.i++
		if p.i >= len(p.s) || p.s[p.i] != '=' {
			return nil, fmt.Errorf("%w: expected '=' after %c in %q", ErrBadFilter, op, p.s)
		}
		p.i++
	}
	vstart := p.i
	for p.i < len(p.s) && p.s[p.i] != ')' {
		p.i++
	}
	value := p.s[vstart:p.i]
	n := &node{op: op, attr: attr, value: value}
	if op == '=' {
		if value == "*" {
			n.op = 'p'
		} else if strings.Contains(value, "*") {
			n.patterns = strings.Split(value, "*")
			n.anchorL = !strings.HasPrefix(value, "*")
			n.anchorR = !strings.HasSuffix(value, "*")
		}
	}
	return n, nil
}

// matches evaluates the filter against an entry. Attribute comparison is
// case-insensitive for values, as common LDAP matching rules are.
func (n *node) matches(e *Entry) bool {
	switch n.op {
	case '&':
		for _, k := range n.kids {
			if !k.matches(e) {
				return false
			}
		}
		return true
	case '|':
		for _, k := range n.kids {
			if k.matches(e) {
				return true
			}
		}
		return false
	case '!':
		return !n.kids[0].matches(e)
	case 'p':
		return len(e.Attrs[n.attr]) > 0
	case '=':
		for _, v := range e.Attrs[n.attr] {
			if n.patterns != nil {
				if matchSubstring(strings.ToLower(v), n) {
					return true
				}
			} else if strings.EqualFold(v, n.value) {
				return true
			}
		}
		return false
	case '>', '<':
		for _, v := range e.Attrs[n.attr] {
			if compareOrdered(v, n.value, n.op) {
				return true
			}
		}
		return false
	}
	return false
}

// compareOrdered compares numerically when both sides parse as numbers,
// lexically otherwise. op is '>' for >= and '<' for <=.
func compareOrdered(v, bound string, op byte) bool {
	fv, errV := strconv.ParseFloat(strings.TrimSpace(v), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(bound), 64)
	if errV == nil && errB == nil {
		if op == '>' {
			return fv >= fb
		}
		return fv <= fb
	}
	if op == '>' {
		return v >= bound
	}
	return v <= bound
}

func matchSubstring(v string, n *node) bool {
	parts := n.patterns
	s := v
	for i, part := range parts {
		part = strings.ToLower(part)
		if part == "" {
			continue
		}
		idx := strings.Index(s, part)
		if idx < 0 {
			return false
		}
		if i == 0 && n.anchorL && idx != 0 {
			return false
		}
		s = s[idx+len(part):]
	}
	if n.anchorR {
		last := strings.ToLower(parts[len(parts)-1])
		if last != "" && !strings.HasSuffix(v, last) {
			return false
		}
	}
	return true
}
