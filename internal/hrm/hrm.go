// Package hrm implements the Hierarchical Resource Manager of §4: the
// component that fronts a mass storage system (HPSS at LBNL in the
// paper) and stages files from tape to its local disk cache before the
// request manager moves them over the WAN with GridFTP. It models a tape
// library (drives, mount and seek latencies, streaming read rate), an
// LRU disk cache with pinning, and exposes both a local API and an RPC
// service (the paper's CORBA interface).
package hrm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gridftp"
	"esgrid/internal/gsi"
	"esgrid/internal/netlogger"
	"esgrid/internal/vtime"
)

// Provenance site tag(s) for the delays this package schedules on
// the virtual clock (flight-recorder attribution).
var siteStageWait = vtime.RegisterSite("hrm.stage-wait")


// Errors returned by the HRM.
var (
	ErrNotOnTape   = errors.New("hrm: file not in the archive")
	ErrNotStaged   = errors.New("hrm: file not staged to disk cache")
	ErrCacheThrash = errors.New("hrm: cache too small for pinned working set")
)

// Config describes the mass storage system.
type Config struct {
	// Drives is the number of tape drives (concurrent stages).
	Drives int
	// MountTime is charged when a drive must switch tapes.
	MountTime time.Duration
	// SeekTime is charged per staging to position the tape.
	SeekTime time.Duration
	// ReadBps is the tape streaming rate, bits/second.
	ReadBps float64
	// CacheBytes is the disk cache capacity.
	CacheBytes int64
}

// DefaultConfig is modelled on a year-2000 HPSS installation: a handful
// of drives, ~minute mounts, ~14 MB/s streaming.
var DefaultConfig = Config{
	Drives:     4,
	MountTime:  45 * time.Second,
	SeekTime:   20 * time.Second,
	ReadBps:    112e6, // 14 MB/s
	CacheBytes: 200 << 30,
}

// TapeFile is one archived file.
type TapeFile struct {
	Name string
	Size int64
	Tape string // tape cartridge label
}

// Stats counts cache and staging activity.
type Stats struct {
	Hits, Misses  int64
	StagedBytes   int64
	EvictedBytes  int64
	TotalWait     time.Duration
	MountsCharged int64
}

// HRM manages one mass storage system.
type HRM struct {
	clk vtime.Clock
	cfg Config

	// Observability (Instrument): life-line events and the
	// hrm.stage.wait histogram. Nil when uninstrumented.
	host     string
	nlog     *netlogger.Log
	stageHst *netlogger.LogHistogram

	mu      sync.Mutex
	cond    vtime.Cond
	archive map[string]TapeFile
	cache   *diskCache
	drives  []string // tape currently mounted in each drive; "" = empty
	busy    []bool
	stats   Stats

	// Fault injection (the public injector API consumed by chaos):
	// faultDelay adds tape-mount/robot stall time to every cache-miss
	// staging; faultErr fails every staging outright while set.
	faultDelay time.Duration
	faultErr   error
}

// New creates an HRM on the given clock.
func New(clk vtime.Clock, cfg Config) *HRM {
	if cfg.Drives < 1 {
		cfg.Drives = 1
	}
	h := &HRM{
		clk:     clk,
		cfg:     cfg,
		archive: map[string]TapeFile{},
		cache:   newDiskCache(cfg.CacheBytes),
		drives:  make([]string, cfg.Drives),
		busy:    make([]bool, cfg.Drives),
	}
	h.cond = clk.NewCond(&h.mu)
	return h
}

// Instrument attaches observability: staging requests are logged as
// hrm.stage.start/end events on host (tagged with any propagated trace
// context) and waits feed the hrm.stage.wait histogram. Either argument
// may be nil.
func (h *HRM) Instrument(host string, log *netlogger.Log, metrics *netlogger.Registry) {
	h.host = host
	h.nlog = log
	h.stageHst = metrics.LogHist("hrm.stage.wait")
}

// SetStageDelay injects d of extra tape-machinery latency (a stuck mount
// robot, a drive retrying) into every cache-miss staging; 0 clears it.
func (h *HRM) SetStageDelay(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faultDelay = d
}

// SetStageError makes every staging request fail with err until cleared
// with nil (the mass storage system refusing service).
func (h *HRM) SetStageError(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faultErr = err
}

// AddTapeFile registers an archived file.
func (h *HRM) AddTapeFile(f TapeFile) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.archive[f.Name] = f
}

// Stats returns a snapshot of activity counters.
func (h *HRM) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// CacheUsed returns bytes resident in the disk cache.
func (h *HRM) CacheUsed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cache.used
}

// IsStaged reports whether the file is resident in the disk cache.
func (h *HRM) IsStaged(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cache.has(name)
}

// Stage makes the file resident in the disk cache, reading it from tape
// if necessary, and pins it until Release. It returns the time the
// caller waited.
func (h *HRM) Stage(name string) (time.Duration, error) {
	return h.StageCtx(name, "")
}

// StageCtx is Stage carrying a life-line trace context ("" for none),
// which tags the hrm.stage.start/end events of an instrumented HRM.
func (h *HRM) StageCtx(name, trid string) (time.Duration, error) {
	h.emitStage("hrm.stage.start", name, trid)
	wait, err := h.stage(name)
	h.stageHst.Observe(wait.Seconds())
	if err != nil {
		h.emitStage("hrm.stage.end", name, trid, "err", err.Error())
	} else {
		h.emitStage("hrm.stage.end", name, trid,
			"wait_ms", fmt.Sprint(wait.Milliseconds()))
	}
	return wait, err
}

func (h *HRM) emitStage(event, name, trid string, kv ...string) {
	if h.nlog == nil {
		return
	}
	fields := append([]string{"file", name}, kv...)
	if trid != "" {
		fields = append(fields, "trid", trid)
	}
	h.nlog.Emit(h.host, event, fields...)
}

func (h *HRM) stage(name string) (time.Duration, error) {
	start := h.clk.Now()
	h.mu.Lock()
	if err := h.faultErr; err != nil {
		h.mu.Unlock()
		return 0, err
	}
	f, ok := h.archive[name]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotOnTape, name)
	}
	if h.cache.has(name) {
		h.cache.pin(name)
		h.stats.Hits++
		h.mu.Unlock()
		return 0, nil
	}
	h.stats.Misses++
	// Acquire a drive, preferring one with the right tape mounted.
	drive := -1
	for {
		drive = h.pickDriveLocked(f.Tape)
		if drive >= 0 {
			break
		}
		h.cond.Wait()
	}
	h.busy[drive] = true
	needMount := h.drives[drive] != f.Tape
	stall := h.faultDelay
	h.mu.Unlock()

	// Tape machinery time: mount (if switching), seek, stream the bytes,
	// plus any injected stall (chaos hrm.stall faults).
	d := h.cfg.SeekTime + time.Duration(float64(f.Size)*8/h.cfg.ReadBps*float64(time.Second)) + stall
	if needMount {
		d += h.cfg.MountTime
	}
	vtime.SleepTagged(h.clk, siteStageWait, d)

	h.mu.Lock()
	if needMount {
		h.stats.MountsCharged++
	}
	h.drives[drive] = f.Tape
	h.busy[drive] = false
	evicted, err := h.cache.insert(name, f.Size, true)
	if err == nil {
		h.stats.StagedBytes += f.Size
		h.stats.EvictedBytes += evicted
		h.stats.TotalWait += h.clk.Now().Sub(start)
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	if err != nil {
		return h.clk.Now().Sub(start), err
	}
	return h.clk.Now().Sub(start), nil
}

// pickDriveLocked returns a free drive index, preferring one whose
// mounted tape matches; -1 if all drives are busy.
func (h *HRM) pickDriveLocked(tape string) int {
	free := -1
	for i := range h.drives {
		if h.busy[i] {
			continue
		}
		if h.drives[i] == tape {
			return i
		}
		if free < 0 {
			free = i
		}
	}
	return free
}

// Release unpins a staged file so the cache may evict it.
func (h *HRM) Release(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cache.unpin(name)
}

// Store returns a gridftp.FileStore view of this HRM: files are servable
// only while staged, exactly as the paper's GridFTP-fronted HPSS works.
func (h *HRM) Store() gridftp.FileStore { return (*hrmStore)(h) }

type hrmStore HRM

func (s *hrmStore) Open(name string) (gridftp.Source, error) {
	h := (*HRM)(s)
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.archive[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotOnTape, name)
	}
	if !h.cache.has(name) {
		return nil, fmt.Errorf("%w: %s", ErrNotStaged, name)
	}
	h.cache.touch(name)
	return gridftp.NewVirtualSource(f.Size), nil
}

func (s *hrmStore) Stat(name string) (int64, error) {
	h := (*HRM)(s)
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.archive[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotOnTape, name)
	}
	return f.Size, nil
}

func (s *hrmStore) Create(name string, size int64) (gridftp.Sink, error) {
	return nil, gridftp.ErrStoreReadOnly
}

// --- RPC service (the CORBA interface of §4) ---

// StageRequest is the RPC payload for hrm.stage.
type StageRequest struct {
	File string `json:"file"`
	// TRID is an optional life-line trace context propagated by the
	// caller (the RM), correlating this staging with its request span.
	TRID string `json:"trid,omitempty"`
}

// StageReply reports the staging outcome.
type StageReply struct {
	WaitMs int64 `json:"wait_ms"`
	Size   int64 `json:"size"`
}

// RegisterRPC exposes the HRM on an esgrpc server under "hrm.*".
func (h *HRM) RegisterRPC(srv *esgrpc.Server) {
	srv.Handle("hrm.stage", func(_ *gsi.Peer, params json.RawMessage) (any, error) {
		var req StageRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		wait, err := h.StageCtx(req.File, req.TRID)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		size := h.archive[req.File].Size
		h.mu.Unlock()
		return StageReply{WaitMs: wait.Milliseconds(), Size: size}, nil
	})
	srv.Handle("hrm.release", func(_ *gsi.Peer, params json.RawMessage) (any, error) {
		var req StageRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		h.Release(req.File)
		return nil, nil
	})
	srv.Handle("hrm.stats", func(_ *gsi.Peer, _ json.RawMessage) (any, error) {
		return h.Stats(), nil
	})
}

// --- disk cache ---

// diskCache is an LRU byte-budgeted cache with pinning. Caller holds the
// HRM mutex.
type diskCache struct {
	capacity int64
	used     int64
	items    map[string]*cacheItem
	seq      int64
}

type cacheItem struct {
	size   int64
	pins   int
	lastAt int64 // LRU sequence
}

func newDiskCache(capacity int64) *diskCache {
	return &diskCache{capacity: capacity, items: map[string]*cacheItem{}}
}

func (c *diskCache) has(name string) bool {
	_, ok := c.items[name]
	return ok
}

func (c *diskCache) touch(name string) {
	if it, ok := c.items[name]; ok {
		c.seq++
		it.lastAt = c.seq
	}
}

func (c *diskCache) pin(name string) {
	if it, ok := c.items[name]; ok {
		it.pins++
		c.touch(name)
	}
}

func (c *diskCache) unpin(name string) {
	if it, ok := c.items[name]; ok && it.pins > 0 {
		it.pins--
	}
}

// insert adds a file, evicting unpinned LRU entries as needed; it
// reports the bytes evicted, or ErrCacheThrash if pinned entries leave
// no room.
func (c *diskCache) insert(name string, size int64, pinned bool) (evicted int64, err error) {
	if it, ok := c.items[name]; ok {
		if pinned {
			it.pins++
		}
		c.touch(name)
		return 0, nil
	}
	if size > c.capacity {
		return 0, fmt.Errorf("%w: file of %d bytes exceeds cache of %d", ErrCacheThrash, size, c.capacity)
	}
	for c.used+size > c.capacity {
		victim := ""
		var oldest int64 = 1<<63 - 1
		for n, it := range c.items {
			if it.pins == 0 && it.lastAt < oldest {
				victim, oldest = n, it.lastAt
			}
		}
		if victim == "" {
			return evicted, fmt.Errorf("%w: need %d bytes, all %d resident bytes pinned", ErrCacheThrash, size, c.used)
		}
		evicted += c.items[victim].size
		c.used -= c.items[victim].size
		delete(c.items, victim)
	}
	c.seq++
	it := &cacheItem{size: size, lastAt: c.seq}
	if pinned {
		it.pins = 1
	}
	c.items[name] = it
	c.used += size
	return evicted, nil
}
