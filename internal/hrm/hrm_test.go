package hrm

import (
	"errors"
	"testing"
	"time"

	"esgrid/internal/esgrpc"
	"esgrid/internal/gridftp"
	"esgrid/internal/netlogger"
	"esgrid/internal/simnet"
	"esgrid/internal/vtime"
)

const gb = int64(1) << 30

// tapeStream returns the streaming time of n bytes at 112 Mb/s.
func tapeStream(n int64) time.Duration {
	secs := float64(n) * 8 / 112e6
	return time.Duration(secs * float64(time.Second))
}

func testHRM(clk vtime.Clock) *HRM {
	h := New(clk, Config{
		Drives:     2,
		MountTime:  45 * time.Second,
		SeekTime:   15 * time.Second,
		ReadBps:    112e6,
		CacheBytes: 10 * gb,
	})
	h.AddTapeFile(TapeFile{Name: "a.nc", Size: 2 * gb, Tape: "T001"})
	h.AddTapeFile(TapeFile{Name: "b.nc", Size: 2 * gb, Tape: "T001"})
	h.AddTapeFile(TapeFile{Name: "c.nc", Size: 2 * gb, Tape: "T002"})
	h.AddTapeFile(TapeFile{Name: "d.nc", Size: 9 * gb, Tape: "T003"})
	return h
}

func TestStageChargesTapeTime(t *testing.T) {
	clk := vtime.NewSim(1)
	clk.Run(func() {
		h := testHRM(clk)
		t0 := clk.Now()
		wait, err := h.Stage("a.nc")
		if err != nil {
			t.Fatal(err)
		}
		elapsed := clk.Now().Sub(t0)
		// mount 45s + seek 15s + 2GB at 14MB/s ~ 153s => ~213s total.
		want := 45*time.Second + 15*time.Second + tapeStream(2*gb)
		if d := elapsed - want; d < -time.Second || d > time.Second {
			t.Fatalf("stage took %v, want ~%v", elapsed, want)
		}
		if wait < want-time.Second {
			t.Fatalf("reported wait %v too small", wait)
		}
		if !h.IsStaged("a.nc") {
			t.Fatal("file not resident after stage")
		}
	})
}

func TestStageCacheHitIsFree(t *testing.T) {
	clk := vtime.NewSim(2)
	clk.Run(func() {
		h := testHRM(clk)
		h.Stage("a.nc")
		t0 := clk.Now()
		wait, err := h.Stage("a.nc")
		if err != nil || wait != 0 {
			t.Fatalf("second stage: wait=%v err=%v", wait, err)
		}
		if clk.Now().Sub(t0) != 0 {
			t.Fatal("cache hit consumed virtual time")
		}
		st := h.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestStageSameTapeSkipsMount(t *testing.T) {
	clk := vtime.NewSim(3)
	clk.Run(func() {
		h := testHRM(clk)
		h.Stage("a.nc") // mounts T001 on a drive
		t0 := clk.Now()
		h.Stage("b.nc") // same tape: no mount charge
		elapsed := clk.Now().Sub(t0)
		want := 15*time.Second + tapeStream(2*gb)
		if d := elapsed - want; d < -time.Second || d > time.Second {
			t.Fatalf("same-tape stage took %v, want ~%v (no mount)", elapsed, want)
		}
		if h.Stats().MountsCharged != 1 {
			t.Fatalf("mounts = %d, want 1", h.Stats().MountsCharged)
		}
	})
}

func TestDriveContention(t *testing.T) {
	clk := vtime.NewSim(4)
	clk.Run(func() {
		// One drive: two concurrent stages must serialize.
		h := New(clk, Config{Drives: 1, SeekTime: 10 * time.Second, ReadBps: 800e6, CacheBytes: 100 * gb})
		h.AddTapeFile(TapeFile{Name: "x.nc", Size: gb, Tape: "T1"})
		h.AddTapeFile(TapeFile{Name: "y.nc", Size: gb, Tape: "T1"})
		t0 := clk.Now()
		wg := vtime.NewWaitGroup(clk)
		wg.Go(func() { h.Stage("x.nc") })
		wg.Go(func() { h.Stage("y.nc") })
		wg.Wait()
		// Each: seek 10s + ~10.7s read; serialized ~41s, parallel would be ~21s.
		if elapsed := clk.Now().Sub(t0); elapsed < 38*time.Second {
			t.Fatalf("stages overlapped on one drive: %v", elapsed)
		}
	})
}

func TestCacheEvictionLRU(t *testing.T) {
	clk := vtime.NewSim(5)
	clk.Run(func() {
		h := testHRM(clk) // 10GB cache
		h.Stage("a.nc")   // 2GB
		h.Stage("b.nc")   // 2GB
		h.Release("a.nc")
		h.Release("b.nc")
		h.Stage("c.nc") // 2GB; fits
		h.Release("c.nc")
		// d.nc is 9GB: must evict a and b (LRU order), not c... a is
		// oldest, then b; evicting both frees 4GB -> need 9GB total with
		// 6GB resident: evict a, b, then c? 2+2+2=6 used; 9 needs 3 evictions.
		if _, err := h.Stage("d.nc"); err != nil {
			t.Fatal(err)
		}
		if h.IsStaged("a.nc") || h.IsStaged("b.nc") || h.IsStaged("c.nc") {
			t.Fatal("eviction did not remove older entries")
		}
		if !h.IsStaged("d.nc") {
			t.Fatal("d.nc not resident")
		}
		if h.CacheUsed() != 9*gb {
			t.Fatalf("cache used = %d", h.CacheUsed())
		}
	})
}

func TestPinnedFilesNotEvicted(t *testing.T) {
	clk := vtime.NewSim(6)
	clk.Run(func() {
		h := testHRM(clk)
		h.Stage("a.nc") // pinned
		h.Stage("b.nc") // pinned
		// 4GB pinned; d.nc needs 9GB of 10GB -> thrash error.
		_, err := h.Stage("d.nc")
		if !errors.Is(err, ErrCacheThrash) {
			t.Fatalf("err = %v, want ErrCacheThrash", err)
		}
		h.Release("a.nc")
		h.Release("b.nc")
		if _, err := h.Stage("d.nc"); err != nil {
			t.Fatalf("after release: %v", err)
		}
	})
}

func TestStageUnknownFile(t *testing.T) {
	clk := vtime.NewSim(7)
	clk.Run(func() {
		h := testHRM(clk)
		if _, err := h.Stage("nope.nc"); !errors.Is(err, ErrNotOnTape) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestStoreServesOnlyStagedFiles(t *testing.T) {
	clk := vtime.NewSim(8)
	clk.Run(func() {
		h := testHRM(clk)
		store := h.Store()
		if _, err := store.Open("a.nc"); !errors.Is(err, ErrNotStaged) {
			t.Fatalf("open unstaged: %v", err)
		}
		if _, err := store.Open("zzz.nc"); !errors.Is(err, ErrNotOnTape) {
			t.Fatalf("open unknown: %v", err)
		}
		if size, err := store.Stat("a.nc"); err != nil || size != 2*gb {
			t.Fatalf("stat = %d, %v", size, err)
		}
		h.Stage("a.nc")
		src, err := store.Open("a.nc")
		if err != nil {
			t.Fatal(err)
		}
		if src.Size() != 2*gb {
			t.Fatalf("source size = %d", src.Size())
		}
		if _, err := store.Create("w.nc", 1); !errors.Is(err, gridftp.ErrStoreReadOnly) {
			t.Fatalf("create on HRM store: %v", err)
		}
	})
}

func TestHRMOverRPC(t *testing.T) {
	clk := vtime.NewSim(9)
	clk.Run(func() {
		n := simnet.New(clk)
		lbnl := n.AddHost("lbnl", simnet.HostConfig{})
		rm := n.AddHost("rm", simnet.HostConfig{})
		n.AddLink("lbnl", "rm", simnet.LinkConfig{CapacityBps: 100e6, Delay: 10 * time.Millisecond})

		h := testHRM(clk)
		srv := esgrpc.NewServer(clk, nil)
		h.RegisterRPC(srv)
		l, _ := lbnl.Listen(":4000")
		clk.Go(func() { srv.Serve(l) })

		cli, err := esgrpc.Dial(clk, rm, "lbnl:4000", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		var rep StageReply
		if err := cli.Call("hrm.stage", StageRequest{File: "a.nc"}, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Size != 2*gb || rep.WaitMs < 100000 {
			t.Fatalf("reply = %+v", rep)
		}
		if !h.IsStaged("a.nc") {
			t.Fatal("not staged via RPC")
		}
		if err := cli.Call("hrm.release", StageRequest{File: "a.nc"}, nil); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := cli.Call("hrm.stats", nil, &st); err != nil {
			t.Fatal(err)
		}
		if st.Misses != 1 {
			t.Fatalf("stats over RPC = %+v", st)
		}
		if err := cli.Call("hrm.stage", StageRequest{File: "nope"}, nil); err == nil {
			t.Fatal("staging unknown file over RPC succeeded")
		}
	})
}

// TestStagedThenTransferred reproduces §4's flow: stage from tape, then
// GridFTP the file off the cache host over the WAN.
func TestStagedThenTransferred(t *testing.T) {
	clk := vtime.NewSim(10)
	clk.Run(func() {
		n := simnet.New(clk)
		lbnl := n.AddHost("lbnl", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		ncar := n.AddHost("ncar", simnet.HostConfig{DefaultBufferBytes: 1 << 20})
		n.AddLink("lbnl", "ncar", simnet.LinkConfig{CapacityBps: 622e6, Delay: 15 * time.Millisecond})

		h := testHRM(clk)
		gsrv, err := gridftp.NewServer(gridftp.Config{
			Clock: clk, Net: lbnl, Host: "lbnl", Store: h.Store(),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, _ := lbnl.Listen(":2811")
		clk.Go(func() { gsrv.Serve(l) })

		c, err := gridftp.Dial(gridftp.ClientConfig{
			Clock: clk, Net: ncar, Parallelism: 2, BufferBytes: 1 << 20,
		}, "lbnl:2811")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Transfer before staging fails with 550.
		sink := gridftp.NewVirtualSink(2 * gb)
		if _, err := c.Get("a.nc", sink); err == nil {
			t.Fatal("transfer of unstaged file succeeded")
		}
		if _, err := h.Stage("a.nc"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get("a.nc", sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Complete(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStageCtxEmitsTracedEvents(t *testing.T) {
	clk := vtime.NewSim(5)
	clk.Run(func() {
		h := testHRM(clk)
		nlog := netlogger.NewLog(clk)
		metrics := netlogger.NewRegistry(clk)
		h.Instrument("lbnl-hpss", nlog, metrics)
		if _, err := h.StageCtx("a.nc", "7.3"); err != nil {
			t.Fatal(err)
		}
		starts := nlog.Named("hrm.stage.start")
		ends := nlog.Named("hrm.stage.end")
		if len(starts) != 1 || len(ends) != 1 {
			t.Fatalf("got %d start, %d end events", len(starts), len(ends))
		}
		for _, ev := range []netlogger.Event{starts[0], ends[0]} {
			if ev.Fields["trid"] != "7.3" || ev.Fields["file"] != "a.nc" {
				t.Errorf("event fields = %v", ev.Fields)
			}
			if ev.Host != "lbnl-hpss" {
				t.Errorf("event host = %q", ev.Host)
			}
		}
		if ends[0].Fields["wait_ms"] == "" {
			t.Errorf("end event missing wait_ms: %v", ends[0].Fields)
		}
		hst := metrics.LogHist("hrm.stage.wait")
		if hst.Count() != 1 {
			t.Fatalf("stage.wait observations = %d, want 1", hst.Count())
		}
		// mount+seek+stream of 2GB ≈ 213s.
		if m := hst.Mean(); m < 200 || m > 230 {
			t.Errorf("stage wait mean %.1fs, want ~213s", m)
		}
		// Cache hit: second stage is instant and untraced waits still count.
		if _, err := h.StageCtx("a.nc", ""); err != nil {
			t.Fatal(err)
		}
		if hst.Count() != 2 {
			t.Errorf("stage.wait observations = %d, want 2", hst.Count())
		}
		hits := nlog.Named("hrm.stage.start")
		if got := hits[1].Fields["trid"]; got != "" {
			t.Errorf("untraced stage trid = %q, want empty or absent", got)
		}
	})
}
