// Package analysis is the headless CDAT/VCDAT analog (§3): once the
// request manager has delivered the data files, it extracts variables,
// subsets them by region and time, computes the usual climate statistics,
// and renders fields as ASCII shade maps or PGM images — the stand-in for
// the Figure 3 visualization.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"esgrid/internal/cdf"
)

// Errors returned by the package.
var (
	ErrNoCoord    = errors.New("analysis: file lacks lat/lon coordinate variables")
	ErrBadTime    = errors.New("analysis: time index out of range")
	ErrEmptyField = errors.New("analysis: empty field")
)

// Field is a 2D (lat x lon) slice of a variable at one time step.
type Field struct {
	Name string
	Lats []float64
	Lons []float64
	Data []float64 // row-major, len = len(Lats)*len(Lons)
}

// At returns the value at lat index i, lon index j.
func (f *Field) At(i, j int) float64 { return f.Data[i*len(f.Lons)+j] }

// ExtractField pulls one time step of a (time, lat, lon) variable.
func ExtractField(file *cdf.File, varName string, timeIndex int) (*Field, error) {
	lats, err := file.ReadAll("lat")
	if err != nil {
		return nil, ErrNoCoord
	}
	lons, err := file.ReadAll("lon")
	if err != nil {
		return nil, ErrNoCoord
	}
	shape, err := file.Shape(varName)
	if err != nil {
		return nil, err
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("analysis: variable %q is not (time, lat, lon)", varName)
	}
	if timeIndex < 0 || timeIndex >= shape[0] {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadTime, timeIndex, shape[0])
	}
	data, err := file.ReadSlab(varName, []int{timeIndex, 0, 0}, []int{1, shape[1], shape[2]})
	if err != nil {
		return nil, err
	}
	return &Field{Name: varName, Lats: lats, Lons: lons, Data: data}, nil
}

// TimeMean averages a (time, lat, lon) variable over all time steps.
func TimeMean(file *cdf.File, varName string) (*Field, error) {
	shape, err := file.Shape(varName)
	if err != nil {
		return nil, err
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("analysis: variable %q is not (time, lat, lon)", varName)
	}
	acc := make([]float64, shape[1]*shape[2])
	for t := 0; t < shape[0]; t++ {
		f, err := ExtractField(file, varName, t)
		if err != nil {
			return nil, err
		}
		for i, v := range f.Data {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(shape[0])
	}
	f, err := ExtractField(file, varName, 0)
	if err != nil {
		return nil, err
	}
	f.Data = acc
	return f, nil
}

// Subset restricts the field to a lat/lon box (inclusive bounds,
// longitudes in [0, 360)).
func (f *Field) Subset(latMin, latMax, lonMin, lonMax float64) (*Field, error) {
	var li []int
	for i, la := range f.Lats {
		if la >= latMin && la <= latMax {
			li = append(li, i)
		}
	}
	var lj []int
	for j, lo := range f.Lons {
		if lo >= lonMin && lo <= lonMax {
			lj = append(lj, j)
		}
	}
	if len(li) == 0 || len(lj) == 0 {
		return nil, ErrEmptyField
	}
	out := &Field{
		Name: f.Name,
		Lats: make([]float64, len(li)),
		Lons: make([]float64, len(lj)),
		Data: make([]float64, len(li)*len(lj)),
	}
	for a, i := range li {
		out.Lats[a] = f.Lats[i]
		for b, j := range lj {
			out.Lons[b] = f.Lons[j]
			out.Data[a*len(lj)+b] = f.At(i, j)
		}
	}
	return out, nil
}

// Stats summarizes the field.
type Stats struct {
	Min, Max, Mean, AreaMean float64
}

// Stats computes plain and area-weighted (cos latitude) statistics.
func (f *Field) Stats() Stats {
	if len(f.Data) == 0 {
		return Stats{}
	}
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, wsum, wtot float64
	for i, la := range f.Lats {
		w := math.Cos(la * math.Pi / 180)
		if w < 0 {
			w = 0
		}
		for j := range f.Lons {
			v := f.At(i, j)
			sum += v
			wsum += w * v
			wtot += w
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
	}
	st.Mean = sum / float64(len(f.Data))
	if wtot > 0 {
		st.AreaMean = wsum / wtot
	}
	return st
}

// ZonalMean returns the mean over longitude at each latitude.
func (f *Field) ZonalMean() []float64 {
	out := make([]float64, len(f.Lats))
	for i := range f.Lats {
		var s float64
		for j := range f.Lons {
			s += f.At(i, j)
		}
		out[i] = s / float64(len(f.Lons))
	}
	return out
}

// Anomaly returns f minus g (same shape), the model-vs-observation
// intercomparison of §1.
func (f *Field) Anomaly(g *Field) (*Field, error) {
	if len(f.Data) != len(g.Data) {
		return nil, fmt.Errorf("analysis: shape mismatch %d vs %d", len(f.Data), len(g.Data))
	}
	out := &Field{Name: f.Name + "-anom", Lats: f.Lats, Lons: f.Lons, Data: make([]float64, len(f.Data))}
	for i := range f.Data {
		out.Data[i] = f.Data[i] - g.Data[i]
	}
	return out, nil
}

// shades orders characters by increasing intensity.
const shades = " .:-=+*#%@"

// RenderASCII draws the field as a shade map with latitude labels — the
// headless Figure 3.
func (f *Field) RenderASCII(width int) string {
	if len(f.Data) == 0 {
		return "(empty field)\n"
	}
	if width <= 0 || width > len(f.Lons) {
		width = len(f.Lons)
	}
	st := f.Stats()
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  min=%.2f max=%.2f mean=%.2f\n", f.Name, st.Min, st.Max, st.Mean)
	// Latitudes render north to south.
	for i := len(f.Lats) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%6.1f |", f.Lats[i])
		for c := 0; c < width; c++ {
			j := c * len(f.Lons) / width
			v := (f.At(i, j) - st.Min) / span
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%7s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%7s 0%sE360\n", "", strings.Repeat(" ", width-6))
	return b.String()
}

// PGM encodes the field as a binary PGM (P5) grayscale image, north up.
func (f *Field) PGM() []byte {
	ny, nx := len(f.Lats), len(f.Lons)
	st := f.Stats()
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	hdr := fmt.Sprintf("P5\n%d %d\n255\n", nx, ny)
	out := make([]byte, 0, len(hdr)+nx*ny)
	out = append(out, hdr...)
	for i := ny - 1; i >= 0; i-- {
		for j := 0; j < nx; j++ {
			v := (f.At(i, j) - st.Min) / span
			out = append(out, byte(v*255))
		}
	}
	return out
}
