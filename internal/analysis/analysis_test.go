package analysis

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"esgrid/internal/cdf"
	"esgrid/internal/climate"
)

func monthFile(t *testing.T) *cdf.File {
	t.Helper()
	m := climate.NewModel("pcm", climate.GridSpec{NLat: 16, NLon: 32, StepsPerMonth: 4})
	f, err := m.MonthlyFile(climate.VarTemperature, 1998, 7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractField(t *testing.T) {
	f := monthFile(t)
	fld, err := ExtractField(f, "tas", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fld.Lats) != 16 || len(fld.Lons) != 32 || len(fld.Data) != 512 {
		t.Fatalf("field shape: %d lats, %d lons, %d data", len(fld.Lats), len(fld.Lons), len(fld.Data))
	}
	if _, err := ExtractField(f, "tas", 99); !errors.Is(err, ErrBadTime) {
		t.Fatalf("bad time err = %v", err)
	}
	if _, err := ExtractField(f, "nope", 0); err == nil {
		t.Fatal("unknown variable extracted")
	}
}

func TestFieldStatsPhysical(t *testing.T) {
	f := monthFile(t)
	fld, _ := ExtractField(f, "tas", 0)
	st := fld.Stats()
	if st.Min < 200 || st.Max > 320 {
		t.Fatalf("temperature range [%f, %f] implausible", st.Min, st.Max)
	}
	if st.Mean <= st.Min || st.Mean >= st.Max {
		t.Fatal("mean outside range")
	}
	// Area weighting emphasizes the (warm) tropics: weighted mean above
	// the plain mean for a poleward-cooling field.
	if st.AreaMean <= st.Mean {
		t.Fatalf("area-weighted mean %.2f should exceed plain mean %.2f", st.AreaMean, st.Mean)
	}
}

func TestSubsetTropics(t *testing.T) {
	f := monthFile(t)
	fld, _ := ExtractField(f, "tas", 0)
	trop, err := fld.Subset(-20, 20, 0, 360)
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range trop.Lats {
		if la < -20 || la > 20 {
			t.Fatalf("subset contains lat %v", la)
		}
	}
	if trop.Stats().Mean <= fld.Stats().Mean {
		t.Fatal("tropical subset not warmer than globe")
	}
	if _, err := fld.Subset(95, 99, 0, 10); !errors.Is(err, ErrEmptyField) {
		t.Fatalf("empty subset err = %v", err)
	}
}

func TestZonalMeanShape(t *testing.T) {
	f := monthFile(t)
	fld, _ := ExtractField(f, "tas", 0)
	zm := fld.ZonalMean()
	if len(zm) != len(fld.Lats) {
		t.Fatalf("zonal mean length %d", len(zm))
	}
	// Warmest zonal band should be tropical.
	best := 0
	for i := range zm {
		if zm[i] > zm[best] {
			best = i
		}
	}
	if la := fld.Lats[best]; la < -30 || la > 30 {
		t.Fatalf("warmest band at lat %v", la)
	}
}

func TestTimeMeanAndAnomaly(t *testing.T) {
	f := monthFile(t)
	mean, err := TimeMean(f, "tas")
	if err != nil {
		t.Fatal(err)
	}
	fld, _ := ExtractField(f, "tas", 0)
	anom, err := fld.Anomaly(mean)
	if err != nil {
		t.Fatal(err)
	}
	st := anom.Stats()
	if math.Abs(st.Mean) > 2 {
		t.Fatalf("anomaly mean %.2f too large", st.Mean)
	}
	// Mismatched shapes must error.
	sub, _ := fld.Subset(-20, 20, 0, 360)
	if _, err := sub.Anomaly(mean); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestRenderASCII(t *testing.T) {
	f := monthFile(t)
	fld, _ := ExtractField(f, "tas", 0)
	out := fld.RenderASCII(64)
	if !strings.Contains(out, "tas") || !strings.Contains(out, "min=") {
		t.Fatalf("render header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 16 lat rows + 2 axis rows
	if len(lines) != 19 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	// North on top.
	if !strings.Contains(lines[1], "84.4") && !strings.Contains(lines[1], "84.") {
		t.Fatalf("first row not northernmost: %q", lines[1])
	}
}

func TestPGMWellFormed(t *testing.T) {
	f := monthFile(t)
	fld, _ := ExtractField(f, "tas", 0)
	img := fld.PGM()
	if !bytes.HasPrefix(img, []byte("P5\n32 16\n255\n")) {
		t.Fatalf("pgm header: %q", img[:20])
	}
	if len(img) != len("P5\n32 16\n255\n")+16*32 {
		t.Fatalf("pgm length %d", len(img))
	}
}
