package lint

import (
	"go/ast"
	"go/types"
)

// VTimeClock forbids wall-clock reads and timers on simulated paths.
// Every experiment, trace, and chaos soak in this repo runs on
// vtime.Clock; a stray time.Now or time.Sleep silently couples the
// event stream to the host scheduler and breaks equal-seed
// byte-identity. Only internal/vtime — the one place the Real clock is
// allowed to touch the wall — is exempt. Legitimate wall-timing sites
// (operator-facing elapsed prints, the scale experiment's wall budget)
// carry //esglint:wallclock <reason>.
var VTimeClock = &Analyzer{
	Name:   "vtimeclock",
	Doc:    "forbid time.Now/Sleep/After/Since/Tick/NewTimer/NewTicker outside internal/vtime",
	Escape: "wallclock",
	Exempt: isVtimePath,
	Run:    runVTimeClock,
}

// wallClockFuncs are the package time functions that read the wall
// clock or schedule on it.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

func runVTimeClock(pass *Pass) error {
	if pass.Analyzer.Exempt(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods like Time.After/Time.Sub only do arithmetic on
			// already-obtained instants; the package-level functions are
			// the wall-clock reads.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; simulated paths must use vtime.Clock (or annotate //esglint:wallclock <reason>)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
