package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WorkerShared polices the vtime.Runner contract (DESIGN.md §13): a
// RunTask body runs concurrently on worker lanes during a Fan, so it
// must be effect-free with respect to the simulation — writes confined
// to task-local state, every observable effect applied by the caller
// after the fan in canonical task order. An effectful operation inside
// a task body is exactly the bug the differential suite exists to
// catch, except the analyzer catches it at vet time and even on paths
// no differential config reaches.
//
// Flagged inside any method named RunTask with the Runner signature
// (task, worker int):
//
//   - go statements, channel sends/receives/closes — publishing to or
//     synchronizing with other goroutines mid-fan;
//   - calls into internal/vtime — clock reads, sleeps, timer and event
//     scheduling all mutate the event stream;
//   - calls into math/rand — draws advance shared RNG state in
//     lane-dependent order;
//   - calls into package sync — a task taking a lock the advancing
//     goroutine holds (Net.mu during a flush) deadlocks the fan.
//
// sync/atomic stays legal: it is how the pool itself publishes results,
// and lane-local atomics are the sanctioned escape valve. Genuinely
// safe uses (say, a lane-local progress channel drained after the fan)
// carry //esglint:workershared <reason>.
var WorkerShared = &Analyzer{
	Name:   "workershared",
	Doc:    "flag effectful operations inside worker-pool RunTask bodies",
	Escape: "workershared",
	Run:    runWorkerShared,
}

func runWorkerShared(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isRunTaskDecl(pass, fd) {
				continue
			}
			checkTaskBody(pass, fd.Body)
		}
	}
	return nil
}

// isRunTaskDecl reports whether fd is a method named RunTask with the
// vtime.Runner signature: two int parameters, no results. The shape is
// distinctive enough that matching on it (rather than proving the
// receiver implements the interface) keeps the analyzer independent of
// where Runner is declared.
func isRunTaskDecl(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "RunTask" {
		return false
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 0 || sig.Params().Len() != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		b, ok := sig.Params().At(i).Type().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
	}
	return true
}

// taskForbiddenPkgs maps package paths whose calls are effectful from a
// worker lane to the reason fragment reported.
var taskForbiddenPkgs = map[string]string{
	"math/rand":    "RNG call",
	"math/rand/v2": "RNG call",
	"sync":         "blocking sync call",
}

func checkTaskBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			reportTaskEffect(pass, n.Pos(), "go statement")
		case *ast.SendStmt:
			reportTaskEffect(pass, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportTaskEffect(pass, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					reportTaskEffect(pass, n.Pos(), "channel close")
					return true
				}
			}
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if isVtimePath(path) {
				reportTaskEffect(pass, n.Pos(), "clock/scheduler call "+fn.Pkg().Name()+"."+fn.Name())
				return true
			}
			if what, ok := taskForbiddenPkgs[path]; ok {
				reportTaskEffect(pass, n.Pos(), what+" "+fn.Pkg().Name()+"."+fn.Name())
			}
		}
		return true
	})
}

func reportTaskEffect(pass *Pass, pos token.Pos, what string) {
	pass.Reportf(pos,
		"%s inside RunTask: fan task bodies must be effect-free — confine writes to task-local state and apply effects after the fan in canonical order, or annotate //esglint:workershared <reason>",
		what)
}
