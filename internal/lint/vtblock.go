package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VTBlock enforces the first interprocedural leg of the determinism
// contract (DESIGN.md §10): no mutex may be held across a call that may
// block on virtual time. A goroutine that parks while holding a lock
// serializes every other goroutine that needs it behind a virtual-time
// advance — at best a latent deadlock (the advancing goroutine itself
// needs the lock), at worst the PR8 teardown-race class where teardown
// observes state mid-update because the updater is parked under its own
// lock.
//
// The analysis is whole-program. For every function the analyzer
// computes — and exports through the facts layer, so the knowledge
// crosses package boundaries in dependency order — a MayBlock fact:
// the function directly suspends on virtual time (Sim.Sleep, Cond.Wait,
// Sim.Fan, Sim.Run, WaitGroup.Wait, a channel receive or select, a
// telemetry frame read) or calls, transitively through any number of
// packages, something that does. It also exports SpawnsGoroutine facts
// (consumed by hotpath). Within each function, lock/unlock pairing is
// tracked flow-insensitively in source order per body: x.Lock()/x.RLock()
// adds x to the held set, x.Unlock()/x.RUnlock() removes it, a deferred
// unlock holds to the end of the body. Any call to a may-block function
// (or a direct receive/select) while the held set is non-empty is a
// finding.
//
// Exemptions: internal/vtime itself (its internals are the blocking
// machinery — facts are still computed there and exported for
// everyone else), and Cond.Wait/WaitTimeout called while holding a lock
// (the condition variable releases its locker before suspending; that
// is the sanctioned pattern). Genuinely safe sites — a lock provably
// disjoint from everything the callee's blocking path touches — carry
// //esglint:vtblock <reason>.
var VTBlock = &Analyzer{
	Name:       "vtblock",
	Doc:        "flag mutexes held across calls that may (transitively) block on virtual time",
	Escape:     "vtblock",
	NeedsFacts: true,
	Exempt:     isVtimePath,
	Run:        runVTBlock,
}

func runVTBlock(pass *Pass) error {
	funcs := packageFuncs(pass)
	computeBlockFacts(pass, funcs)
	if pass.Analyzer.Exempt(pass.Path) {
		return nil
	}
	for _, fd := range funcs {
		checkLocksHeld(pass, fd)
	}
	return nil
}

// mayBlockVia resolves whether calling fn may block, consulting the
// seed set first and then the fact store (same-package facts are
// already exported by the local fixpoint; dependency facts were
// exported when their package was analyzed).
func mayBlockVia(pass *Pass, fn *types.Func) (string, bool) {
	if via, ok := blockSeed(fn); ok {
		return via, true
	}
	var f MayBlock
	if pass.ImportObjectFact(fn, &f) {
		return f.Via, true
	}
	return "", false
}

// computeBlockFacts runs the intra-package fixpoint: a function blocks
// (or spawns) if its attributed body blocks (spawns) directly or calls
// a function already known to. Functions are scanned in position order
// and the loop runs until no new fact appears, so mutual recursion
// converges and the result is independent of declaration order.
func computeBlockFacts(pass *Pass, funcs []funcDecl) {
	type state struct{ blockVia, spawnVia string }
	local := make(map[*types.Func]*state, len(funcs))
	for _, fd := range funcs {
		local[fd.fn] = &state{}
	}

	scan := func(fd funcDecl) (blockVia, spawnVia string) {
		st := local[fd.fn]
		blockVia, spawnVia = st.blockVia, st.spawnVia
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if spawnVia == "" {
					spawnVia = "go statement"
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && blockVia == "" {
					blockVia = "channel receive"
				}
			case *ast.SelectStmt:
				// The select as a whole blocks unless it has a default;
				// its communication ops belong to the select, not to the
				// surrounding flow, so only the clause bodies are walked.
				if blockVia == "" && !selectHasDefault(n) {
					blockVia = "select"
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, stmt := range cc.Body {
							inspectAttributed(stmt, visit)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				if blockVia == "" {
					if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							blockVia = "range over channel"
						}
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn == nil {
					return true
				}
				if blockVia == "" {
					if via, seeded := blockSeed(fn); seeded {
						blockVia = via
					} else if via, ok := mayBlockVia(pass, fn); ok {
						blockVia = callName(fn) + " → " + firstHop(via)
					} else if st, ok := local[fn]; ok && st.blockVia != "" {
						blockVia = callName(fn) + " → " + firstHop(st.blockVia)
					}
				}
				if spawnVia == "" {
					if via, ok := spawnSeed(fn); ok {
						spawnVia = via
					} else {
						var f SpawnsGoroutine
						if pass.ImportObjectFact(fn, &f) {
							spawnVia = callName(fn)
						} else if st, ok := local[fn]; ok && st.spawnVia != "" {
							spawnVia = callName(fn)
						}
					}
				}
			}
			return true
		}
		inspectAttributed(fd.decl.Body, visit)
		return blockVia, spawnVia
	}

	for changed := true; changed; {
		changed = false
		for _, fd := range funcs {
			st := local[fd.fn]
			blockVia, spawnVia := scan(fd)
			if blockVia != st.blockVia || spawnVia != st.spawnVia {
				st.blockVia, st.spawnVia = blockVia, spawnVia
				changed = true
			}
		}
	}

	for _, fd := range funcs {
		st := local[fd.fn]
		if st.blockVia != "" {
			pass.ExportObjectFact(fd.fn, &MayBlock{Via: st.blockVia})
		}
		if st.spawnVia != "" {
			pass.ExportObjectFact(fd.fn, &SpawnsGoroutine{Via: st.spawnVia})
		}
	}
}

// firstHop truncates a via chain to its first element so exported
// chains stay short: "a → b → c" reads as "a → …" beyond one hop.
func firstHop(via string) string {
	for i := 0; i+2 < len(via); i++ {
		if via[i] == ' ' && via[i+1] == 0xe2 { // " →"
			return via[:i] + " → …"
		}
	}
	return via
}

// callName renders fn for a via chain: pkg.Recv.Name or pkg.Name.
func callName(fn *types.Func) string {
	name := recvPrefix(fn) + fn.Name()
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// heldLock is one mutex the flow-insensitive walk currently considers
// held: the rendered receiver expression plus the read/write mode.
type heldLock struct {
	key  string
	name string // for diagnostics: "s.mu" or "s.mu (RLock)"
}

// checkLocksHeld walks one function body in source order, maintaining
// the held-lock set, and reports blocking constructs reached while it
// is non-empty. Deferred statements are not walked: a deferred unlock
// keeps the lock held (the common mu.Lock(); defer mu.Unlock() shape),
// and a deferred call runs at return where this walk's held set no
// longer applies.
func checkLocksHeld(pass *Pass, fd funcDecl) {
	held := map[string]string{} // key -> display name
	report := func(pos token.Pos, what string) {
		lock := ""
		for _, name := range held {
			if lock == "" || name < lock {
				lock = name
			}
		}
		pass.Reportf(pos,
			"%s held across %s, which may block on virtual time; unlock before blocking or annotate //esglint:vtblock <reason>",
			lock, what)
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Not walked: a deferred Unlock pins the lock for the rest of
			// the body (deliberately no delete), and any other deferred
			// call runs at return, outside this walk's flow.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				report(n.Pos(), "a channel receive")
			}
		case *ast.SelectStmt:
			// One finding for the select itself; its communication ops
			// belong to it, so only the clause bodies are walked further.
			if len(held) > 0 && !selectHasDefault(n) {
				report(n.Pos(), "a select with no default")
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						inspectAttributed(stmt, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if len(held) > 0 {
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						report(n.Pos(), "a range over a channel")
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					key := types.ExprString(sel.X)
					switch fn.Name() {
					case "Lock":
						held[key] = key
					case "RLock":
						held[key+"/R"] = key + " (RLock)"
					case "Unlock":
						delete(held, key)
					case "RUnlock":
						delete(held, key+"/R")
					}
				}
				return true
			}
			if len(held) == 0 || condWaitExempt(fn) {
				return true
			}
			if via, ok := mayBlockVia(pass, fn); ok {
				what := "a call to " + callName(fn)
				if via != callName(fn) {
					what += " (may block via " + via + ")"
				}
				report(n.Pos(), what)
			}
		}
		return true
	}
	inspectAttributed(fd.decl.Body, visit)
}
