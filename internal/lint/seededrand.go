package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the process-global math/rand state in non-test
// code. Replay-seed chaos soaks and equal-seed determinism tests depend
// on every random draw flowing from an explicitly seeded *rand.Rand
// threaded down from config (the pattern internal/chaos/random.go and
// internal/vtime/sim.go already follow); the package-level functions
// draw from a shared source whose consumption order depends on
// goroutine scheduling.
var SeededRand = &Analyzer{
	Name:   "seededrand",
	Doc:    "forbid math/rand package-level functions; require a seeded *rand.Rand",
	Escape: "rand",
	Run:    runSeededRand,
}

// randConstructors are the math/rand{,/v2} functions that build an
// explicitly seeded source or operate on one, and are therefore allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes *rand.Rand
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true, // rand/v2
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand / Source are fine — only the
			// package-level globals share hidden state.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global source; thread an explicitly seeded *rand.Rand from config",
				path, fn.Name())
			return true
		})
	}
	return nil
}
