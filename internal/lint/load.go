package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Name       string
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the JSON stream. -export records each dependency's compiled
// export data in the build cache, which lets the loader type-check the
// main module's packages from source while importing every dependency
// (stdlib included) from export data — no network, no GOPATH layout.
func goList(dir string, patterns []string) ([]listPkg, error) {
	return goListArgs(dir, []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Name",
	}, patterns)
}

// goListSyntax is goList without -export and -deps: pattern resolution
// and file discovery only, no compilation of dependencies. The
// syntax-only load path uses it, which is what makes `esglint -only
// managedgo` start in milliseconds instead of paying a full
// build-cache-priming `go list -export` run.
func goListSyntax(dir string, patterns []string) ([]listPkg, error) {
	return goListArgs(dir, []string{
		"list",
		"-json=ImportPath,Dir,GoFiles,Standard,Name",
	}, patterns)
}

func goListArgs(dir string, base, patterns []string) ([]listPkg, error) {
	args := append(base, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths through compiled export data
// recorded by `go list -export`, falling back to already-checked local
// packages (in-module dependencies, or fixture-tree packages when driven
// by the analysistest harness).
type exportImporter struct {
	gc      types.Importer
	local   map[string]*types.Package
	exports map[string]string // import path -> export data file

	// Set by the analysistest harness only.
	srcRoot   string
	fset      *token.FileSet
	localPkgs []*Package // fixture packages in load order (deps before dependents)
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	if exports == nil {
		exports = map[string]string{}
	}
	im := &exportImporter{
		local:   map[string]*types.Package{},
		exports: exports,
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := im.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	im.gc = importer.ForCompiler(fset, "gc", lookup)
	return im
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	return im.gc.Import(path)
}

// LoadPackages loads and type-checks the non-stdlib packages matched by
// patterns (resolved relative to dir, a directory inside a Go module),
// plus their in-module dependencies, in dependency order. Test files are
// not loaded: the esglint invariants govern non-test code, and tests
// exercise the invariant machinery itself (fixed clocks, raw kv arity).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		// Main packages have no export data; dependency packages do, but
		// preferring the source-checked result keeps one *types.Package
		// identity per path across the load.
		imp.local[p.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// LoadPackagesSyntax loads the non-stdlib packages matched by patterns
// parsed but not type-checked: Types and Info are nil. It never
// compiles anything — no `go list -export`, no dependency walk — so a
// selection of purely syntactic analyzers (Analyzer.SyntaxOnly) starts
// without priming the build cache.
func LoadPackagesSyntax(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goListSyntax(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files})
	}
	return out, nil
}

// check type-checks one package from parsed source.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
