// Package lint is esglint: a suite of static analyzers that enforce the
// repo's determinism and virtual-time invariants at vet time instead of
// by convention. Every headline result — byte-identical equal-seed JSONL
// exports, replay-seed chaos soaks, life-line traces on the virtual
// clock — rests on invariants in two tiers.
//
// Per-file (syntax and types, one package at a time):
//
//  1. simulated paths read only the virtual clock (vtimeclock),
//  2. randomness is explicitly seeded and threaded from config
//     (seededrand),
//  3. anything folded into the emitted event stream is canonically
//     ordered (maprange) and structurally well-formed (emitkv),
//  4. locks are never copied (mutexcopy) and fan task bodies are
//     effect-free (workershared).
//
// Whole-program (interprocedural, propagated through the facts layer in
// facts.go):
//
//  5. no lock is held across a call that may block on virtual time
//     (vtblock),
//  6. every goroutine is a managed one Sim.Run can join (managedgo),
//  7. functions annotated //esglint:hotpath contain no obvious
//     allocation sources (hotpath).
//
// The analyzers are written against a small in-repo kernel whose API
// deliberately mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, object facts, analysistest-style want comments), so that
// swapping the kernel for the upstream module is a mechanical change;
// the repo's stdlib-only constraint is kept intact (see DESIGN.md §10).
//
// Escape hatch: a comment of the form
//
//	//esglint:<name> <reason>
//
// on the flagged line or the line directly above suppresses the analyzer
// whose escape is <name> (e.g. //esglint:wallclock real elapsed time for
// the operator). The reason is mandatory: an escape with no reason does
// not suppress and is itself reported. Escapes that no longer suppress
// anything are reported by the staleescape audit, so the escape
// inventory in the tree always matches the set of live exceptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "vtimeclock"
	Doc  string // one-paragraph description of what it reports

	// Escape, when non-empty, names the //esglint:<Escape> annotation
	// that suppresses this analyzer's diagnostics on the annotated line
	// (reason required). Empty means the analyzer has no escape hatch.
	Escape string

	// SyntaxOnly marks an analyzer that needs parsed files but no type
	// information. When every selected analyzer is syntax-only the
	// driver skips `go list -export` and the type-check entirely.
	SyntaxOnly bool

	// NeedsFacts marks an analyzer that exports or imports object facts
	// (facts.go). Fact-using analyzers see packages in dependency order,
	// so imported facts are always complete.
	NeedsFacts bool

	// Exempt, when non-nil, reports package paths this analyzer
	// deliberately stays silent in (e.g. vtimeclock inside
	// internal/vtime, the one package allowed to touch the wall clock).
	// The staleescape audit consults it so documentation escapes inside
	// exempt packages are not reported as dead.
	Exempt func(path string) bool

	// Run reports diagnostics on pass via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // package import path
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package // nil under a syntax-only load
	Info     *types.Info    // nil under a syntax-only load

	diags *[]Diagnostic
	facts *factStore
	// markUsed records that the annotation at (file, line) is load-
	// bearing even though it suppressed no diagnostic — the hotpath
	// marker annotations, chiefly — so staleescape keeps quiet about it.
	markUsed func(file string, line int)
}

// Reportf records a diagnostic at pos attributed to the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// MarkAnnotationUsed records that the esglint annotation at (file, line)
// is consumed by this analyzer as a marker rather than a suppression,
// exempting it from the staleescape audit.
func (p *Pass) MarkAnnotationUsed(file string, line int) {
	if p.markUsed != nil {
		p.markUsed(file, line)
	}
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// StaleEscapeAnalyzer names the pseudo-analyzer that attributes the
// dead-escape audit's diagnostics; like the "esglint" annotation audit
// it runs inside the driver, not as an entry in All.
const StaleEscapeAnalyzer = "staleescape"

// Analyze runs the given analyzers over a single package. It is the
// single-package form of AnalyzeProgram; facts do not cross into or out
// of the call, so interprocedural analyzers see only local and seeded
// knowledge. The fixture harness and single-package tests use it.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return AnalyzeProgram([]*Package{pkg}, analyzers)
}

// AnalyzeProgram runs the analyzers over every package, propagating
// facts across package boundaries, and returns the surviving
// diagnostics in (file, line, column, analyzer) order.
//
// Determinism: packages are visited in topologically sorted import
// order with lexicographic tie-breaks, so fact propagation — and with
// it every diagnostic — is a pure function of the source tree,
// independent of the order pkgs arrived in (the property
// TestFactPropagationOrderIndependent pins).
//
// Beyond the analyzers' own findings the driver reports, from
// pseudo-analyzers:
//
//   - "esglint": escapes with a missing reason, and annotations naming
//     no known escape;
//   - "staleescape": escapes that suppressed no diagnostic of their
//     analyzer anywhere in the program (dead escapes rot the audit
//     trail). Only audited when the owning analyzer actually ran and
//     does not exempt the package.
func AnalyzeProgram(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	ordered := topoSortPackages(pkgs)

	facts := newFactStore()
	used := map[annKey]bool{}
	markUsed := func(file string, line int) { used[annKey{file, line}] = true }

	type pkgAnns struct {
		path string
		anns map[string]map[int]annotation
	}
	var allAnns []pkgAnns

	var diags []Diagnostic
	for _, pkg := range ordered {
		anns := collectAnnotations(pkg.Fset, pkg.Files)
		allAnns = append(allAnns, pkgAnns{pkg.Path, anns})

		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if pkg.Info == nil && !a.SyntaxOnly {
				return nil, fmt.Errorf("%s: %s: analyzer needs type information but the load was syntax-only", a.Name, pkg.Path)
			}
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
				markUsed: markUsed,
			}
			if a.NeedsFacts {
				pass.facts = facts
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}

		pkgDiags = suppress(pkg.Fset, pkgDiags, analyzers, anns, used)
		pkgDiags = append(pkgDiags, auditAnnotations(anns, analyzers)...)
		diags = append(diags, pkgDiags...)
	}

	for _, pa := range allAnns {
		diags = append(diags, staleEscapes(pa.path, pa.anns, analyzers, used)...)
	}

	sort.Slice(diags, func(i, j int) bool { return positionLess(fset, diags[i], diags[j]) })
	return diags, nil
}

// isVtimePath matches the real clock package and its fixture twin.
func isVtimePath(path string) bool {
	return path == "internal/vtime" || strings.HasSuffix(path, "/internal/vtime")
}
