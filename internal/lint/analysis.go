// Package lint is esglint: a suite of static analyzers that enforce the
// repo's determinism and virtual-time invariants at vet time instead of
// by convention. Every headline result — byte-identical equal-seed JSONL
// exports, replay-seed chaos soaks, life-line traces on the virtual
// clock — rests on three invariants:
//
//  1. simulated paths read only the virtual clock (vtimeclock),
//  2. randomness is explicitly seeded and threaded from config
//     (seededrand),
//  3. anything folded into the emitted event stream is canonically
//     ordered (maprange) and structurally well-formed (emitkv).
//
// The analyzers are written against a small in-repo kernel whose API
// deliberately mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, analysistest-style want comments), so that swapping the
// kernel for the upstream module is a mechanical change; the repo's
// stdlib-only constraint is kept intact (see DESIGN.md §10).
//
// Escape hatch: a comment of the form
//
//	//esglint:<name> <reason>
//
// on the flagged line or the line directly above suppresses the analyzer
// whose escape is <name> (e.g. //esglint:wallclock real elapsed time for
// the operator). The reason is mandatory: an escape with no reason does
// not suppress and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "vtimeclock"
	Doc  string // one-paragraph description of what it reports

	// Escape, when non-empty, names the //esglint:<Escape> annotation
	// that suppresses this analyzer's diagnostics on the annotated line
	// (reason required). Empty means the analyzer has no escape hatch.
	Escape string

	// Run reports diagnostics on pass via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // package import path
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos attributed to the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyze runs the given analyzers over pkg, applies annotation escapes,
// and returns the surviving diagnostics in (file, line, column, analyzer)
// order. Escapes with a missing reason, and esglint annotations that name
// no known escape, are reported as diagnostics from the pseudo-analyzer
// "esglint".
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	anns := collectAnnotations(pkg.Fset, pkg.Files)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}

	diags = suppress(pkg.Fset, diags, analyzers, anns)
	diags = append(diags, auditAnnotations(anns, analyzers)...)

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
