package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// The facts layer: interprocedural state analyzers attach to objects
// (functions, mostly) and read back across package boundaries. The
// shape deliberately mirrors golang.org/x/tools/go/analysis object
// facts — ExportObjectFact / ImportObjectFact keyed by (object, fact
// type) — so that porting the suite onto the upstream module stays the
// mechanical change DESIGN.md §10 promises. The one structural
// difference: upstream serializes facts into export data between
// separate driver processes, while this kernel analyzes the whole
// program in one process, so the store is a plain in-memory map shared
// by every pass of one AnalyzeProgram run.
//
// Determinism contract: facts must make analyzer output a pure function
// of the source tree. AnalyzeProgram guarantees packages are visited in
// topologically sorted import order (ties broken by import path), so an
// importer always sees its dependencies' facts fully computed, and the
// same tree produces the same facts regardless of load order — see
// TestFactPropagationOrderIndependent.

// A Fact is interprocedural information attached to a types.Object.
// Implementations must be pointer types; AFact is a marker.
type Fact interface{ AFact() }

// MayBlock marks a function that may suspend the calling goroutine on
// virtual time: directly (Sim.Sleep, Cond.Wait, Fan, a channel receive,
// a telemetry frame read) or by calling something that does. Via names
// the first blocking reason on a shortest known chain, for diagnostics.
type MayBlock struct{ Via string }

// AFact implements Fact.
func (*MayBlock) AFact() {}

func (f *MayBlock) String() string { return "mayBlock(via " + f.Via + ")" }

// SpawnsGoroutine marks a function that starts a goroutine — a bare go
// statement or a managed-spawn helper (Clock.Go, Sim.Go,
// WaitGroup.Go) — directly or transitively. Via names the first spawn
// site reason on a known chain.
type SpawnsGoroutine struct{ Via string }

// AFact implements Fact.
func (*SpawnsGoroutine) AFact() {}

func (f *SpawnsGoroutine) String() string { return "spawnsGoroutine(via " + f.Via + ")" }

// factKey identifies one fact: which object, which fact type.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore holds every fact exported during one AnalyzeProgram run.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

// ExportObjectFact associates fact with obj, overwriting any previous
// fact of the same type. The pass's analyzer must declare NeedsFacts.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("lint: analyzer %s exports facts without NeedsFacts", p.Analyzer.Name))
	}
	if obj == nil {
		return
	}
	p.facts.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the fact of fact's type attached to obj into
// fact and reports whether one was found. obj may belong to any package
// analyzed earlier in the program (or this one).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	f, ok := p.facts.m[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ObjectFact is one exported fact, for deterministic enumeration.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// AllObjectFacts returns every fact in the store, sorted by the
// object's package path, object name, and fact type name — a canonical
// order independent of map iteration and load order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	out := make([]ObjectFact, 0, len(p.facts.m))
	for k, f := range p.facts.m {
		out = append(out, ObjectFact{Obj: k.obj, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := objPkgPath(out[i].Obj), objPkgPath(out[j].Obj)
		if pi != pj {
			return pi < pj
		}
		if out[i].Obj.Name() != out[j].Obj.Name() {
			return out[i].Obj.Name() < out[j].Obj.Name()
		}
		ti := reflect.TypeOf(out[i].Fact).String()
		tj := reflect.TypeOf(out[j].Fact).String()
		if ti != tj {
			return ti < tj
		}
		return out[i].Obj.Pos() < out[j].Obj.Pos()
	})
	return out
}

func objPkgPath(o types.Object) string {
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}

// topoSortPackages orders pkgs dependencies-first, ties broken by
// import path, independent of the input order. Only edges between
// packages in the set matter; everything else (stdlib) is already
// compiled export data with no facts to contribute.
func topoSortPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		if _, dup := byPath[p.Path]; dup {
			continue
		}
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)

	// deps[p] = in-set packages p imports (directly).
	deps := make(map[string][]string, len(paths))
	indeg := make(map[string]int, len(paths))
	for _, path := range paths {
		p := byPath[path]
		if p.Types == nil {
			continue // syntax-only load: no import graph, lexical order
		}
		for _, imp := range p.Types.Imports() {
			if _, in := byPath[imp.Path()]; in && imp.Path() != path {
				deps[path] = append(deps[path], imp.Path())
				indeg[path]++
			}
		}
	}
	rdeps := map[string][]string{}
	for path, ds := range deps {
		for _, d := range ds {
			rdeps[d] = append(rdeps[d], path)
		}
	}

	var out []*Package
	emitted := map[string]bool{}
	for len(out) < len(paths) {
		// Pick the lexicographically smallest ready package. O(n^2) is
		// fine at repo scale and keeps the order obviously canonical.
		picked := ""
		for _, path := range paths {
			if !emitted[path] && indeg[path] == 0 {
				picked = path
				break
			}
		}
		if picked == "" {
			// Import cycle (impossible in valid Go): fall back to lexical
			// order over the remainder rather than looping forever.
			for _, path := range paths {
				if !emitted[path] {
					emitted[path] = true
					out = append(out, byPath[path])
				}
			}
			break
		}
		emitted[picked] = true
		out = append(out, byPath[picked])
		for _, r := range rdeps[picked] {
			indeg[r]--
		}
	}
	return out
}

// positionLess orders two diagnostics by (file, line, column, analyzer,
// message) under fset.
func positionLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}
