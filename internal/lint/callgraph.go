package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Shared interprocedural machinery for the facts-based analyzers: the
// per-package function table, the blocking/spawning seed sets, and the
// rules for attributing a func literal's behavior to its enclosing
// declaration.

// funcDecl pairs one declared function with its types object.
type funcDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

// packageFuncs returns the package's declared functions with bodies, in
// file/position order — the canonical iteration order every fixpoint
// and every exported fact follows.
func packageFuncs(pass *Pass) []funcDecl {
	var out []funcDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			out = append(out, funcDecl{fn: fn, decl: fd})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// isTelemetryPath matches the telemetry plane package and its fixture
// twin.
func isTelemetryPath(path string) bool {
	return path == "internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

// blockSeedNames are the internal/vtime functions and interface methods
// that suspend the calling goroutine on virtual time. They are seeded
// by name rather than discovered because the interface methods
// (Clock.Sleep, Cond.Wait) have no bodies to analyze, and the Sim
// methods below them block through runtime primitives (channel
// receives) the call-graph walk attributes to internal/vtime anyway.
var blockSeedNames = map[string]bool{
	"Sleep":       true, // Clock.Sleep, Sim.Sleep
	"SleepSite":   true, // Sim.SleepSite
	"park":        true, // Sim.park — every cond/timer wait funnels through it
	"Run":         true, // Sim.Run joins managed goroutines
	"Fan":         true, // Sim.Fan barriers on the worker pool
	"Wait":        true, // Cond.Wait, WaitGroup.Wait
	"WaitTimeout": true,
}

// blockSeed reports whether calling fn may directly block on virtual
// time, with a short reason for diagnostics. Roots: the vtime blocking
// primitives and the telemetry plane's length-prefixed frame read
// (which parks on simnet conn reads through an io.Reader the call graph
// cannot see through).
func blockSeed(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if isVtimePath(path) && blockSeedNames[fn.Name()] {
		return "vtime." + recvPrefix(fn) + fn.Name(), true
	}
	if isTelemetryPath(path) && fn.Name() == "ReadFrame" {
		return "telemetry.ReadFrame", true
	}
	return "", false
}

// condWaitExempt reports whether fn is Cond.Wait/WaitTimeout (interface
// or chanCond implementation): the one blocking call that is legal with
// its own lock held, because the condition variable releases the locker
// before suspending and relocks before returning.
func condWaitExempt(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !isVtimePath(fn.Pkg().Path()) {
		return false
	}
	if fn.Name() != "Wait" && fn.Name() != "WaitTimeout" {
		return false
	}
	recv := recvTypeName(fn)
	return recv == "Cond" || recv == "chanCond"
}

// spawnSeed reports whether calling fn starts a goroutine by design:
// the managed-spawn helpers themselves. (Bare go statements are
// managedgo's business; here they only feed the SpawnsGoroutine fact.)
func spawnSeed(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || !isVtimePath(fn.Pkg().Path()) {
		return "", false
	}
	if fn.Name() == "Go" {
		return "vtime." + recvPrefix(fn) + "Go", true
	}
	return "", false
}

// recvTypeName returns the name of fn's receiver type ("" for
// package-level functions), with any pointer indirection stripped.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if n, ok := t.(*types.Interface); ok {
		_ = n // unnamed interface receiver: no name
	}
	return ""
}

func recvPrefix(fn *types.Func) string {
	if n := recvTypeName(fn); n != "" {
		return n + "."
	}
	return ""
}

// detachedLit reports whether lit's body runs outside the enclosing
// function's own control flow, so its behavior must not be attributed
// to the encloser: a literal passed as an argument to a call (a
// callback — Clock.Go, Sim.Schedule, AfterFunc, sort.Slice — whose
// execution context is the callee's business). Immediately invoked
// literals, including deferred ones, stay attributed. (Literals under
// go statements never reach this check: inspectAttributed skips go
// subtrees wholesale.)
func detachedLit(lit *ast.FuncLit, parent ast.Node) bool {
	if p, ok := parent.(*ast.CallExpr); ok {
		// Immediately invoked: func(){...}() — the literal is the callee.
		if ast.Unparen(p.Fun) == ast.Expr(lit) {
			return false
		}
		// Passed as an argument: a callback.
		for _, arg := range p.Args {
			if ast.Unparen(arg) == ast.Expr(lit) {
				return true
			}
		}
	}
	return false
}

// inspectAttributed walks body like ast.Inspect, restricted to code
// that runs on the enclosing function's own goroutine: go-statement
// subtrees are reported (the *ast.GoStmt node itself reaches visit) but
// never descended into, and func literals detached per detachedLit are
// skipped.
func inspectAttributed(body ast.Node, visit func(n ast.Node) bool) {
	var parents []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			parents = parents[:len(parents)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && len(parents) > 0 {
			if detachedLit(lit, parents[len(parents)-1]) {
				return false
			}
		}
		if g, ok := n.(*ast.GoStmt); ok {
			visit(g)
			return false
		}
		parents = append(parents, n)
		if !visit(n) {
			parents = parents[:len(parents)-1]
			return false
		}
		return true
	})
}
